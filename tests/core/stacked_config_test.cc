#include <gtest/gtest.h>

#include "core/encoder.h"
#include "core/lightmob.h"
#include "data/point.h"
#include "nn/ops.h"
#include "nn/stacked.h"

namespace adamove::core {
namespace {

ModelConfig StackedConfig(int64_t layers) {
  ModelConfig c;
  c.num_locations = 10;
  c.num_users = 2;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.rnn_layers = layers;
  c.lambda = 0.0;
  return c;
}

std::vector<data::Point> Points(int n) {
  std::vector<data::Point> out;
  int64_t t = 1333238400;
  for (int i = 0; i < n; ++i) {
    out.push_back({1, i % 10, t});
    t += 3 * data::kSecondsPerHour;
  }
  return out;
}

TEST(StackedConfigTest, MultiLayerEncoderKeepsPrefixProperty) {
  common::Rng rng(1);
  TrajectoryEncoder enc(StackedConfig(3), rng);
  auto pts = Points(5);
  nn::Tensor full = enc.Forward(pts, false);
  EXPECT_EQ(full.rows(), 5);
  EXPECT_EQ(full.cols(), 8);
  auto prefix = std::vector<data::Point>(pts.begin(), pts.begin() + 2);
  nn::Tensor h = enc.Forward(prefix, false);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(h.at(1, c), full.at(1, c), 1e-5f);
  }
}

TEST(StackedConfigTest, MoreLayersMeanMoreParameters) {
  LightMob one(StackedConfig(1));
  LightMob three(StackedConfig(3));
  EXPECT_GT(three.NumParameters(), one.NumParameters());
  // Each extra LSTM layer adds (H*4H + H*4H + 4H) parameters.
  const int64_t per_layer = 8 * 32 + 8 * 32 + 32;
  EXPECT_EQ(three.NumParameters() - one.NumParameters(), 2 * per_layer);
}

TEST(StackedConfigTest, StackedModelTrainsAndAdapts) {
  LightMob model(StackedConfig(2));
  data::Sample s;
  s.user = 1;
  s.recent = Points(6);
  s.target = {1, 3, s.recent.back().timestamp + 3600};
  model.ZeroGrad();
  nn::Tensor loss = model.Loss(s, true);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  // PTTA consumes stacked prefix representations just the same.
  nn::Tensor reps = model.PrefixRepresentations(s);
  EXPECT_EQ(reps.rows(), 6);
  EXPECT_EQ(reps.cols(), 8);
}

TEST(StackedConfigTest, RejectsZeroLayers) {
  common::Rng rng(2);
  ModelConfig c = StackedConfig(0);
  EXPECT_DEATH(TrajectoryEncoder(c, rng), "CHECK");
}

}  // namespace
}  // namespace adamove::core
