#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/ptta.h"
#include "nn/layers.h"

namespace adamove::core {
namespace {

// Parameter: (T prefix count, H hidden, L locations, M capacity, seed).
using Params = std::tuple<int, int, int, int, int>;

class PttaPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    std::tie(t_, h_, l_, m_, seed_) = GetParam();
    rng_ = std::make_unique<common::Rng>(static_cast<uint64_t>(seed_));
    reps_ = nn::Tensor::Randn({t_, h_}, *rng_, 1.0f);
    classifier_ = std::make_unique<nn::Linear>(h_, l_, *rng_);
    labels_.resize(static_cast<size_t>(t_ - 1));
    for (auto& label : labels_) label = rng_->UniformInt(0, l_ - 1);
  }

  // Reference implementation of steps 2-3: brute-force top-M by similarity
  // then exact centroid.
  std::vector<float> ReferenceAdjusted() const {
    const auto& weight = classifier_->weight().data();
    std::vector<float> adjusted = weight;
    const float* h_test = reps_.data().data() + (t_ - 1) * h_;
    auto cosine = [&](const float* a, const float* b) {
      double dot = 0, na = 0, nb = 0;
      for (int i = 0; i < h_; ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
      }
      return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
    };
    for (int64_t label = 0; label < l_; ++label) {
      std::vector<std::pair<double, int>> candidates;  // (sim, k)
      for (int k = 0; k + 1 < t_; ++k) {
        if (labels_[static_cast<size_t>(k)] != label) continue;
        const float* h_k = reps_.data().data() + k * h_;
        candidates.emplace_back(cosine(h_test, h_k), k);
      }
      if (candidates.empty()) continue;
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (static_cast<int>(candidates.size()) > m_) candidates.resize(m_);
      std::vector<double> acc(static_cast<size_t>(h_));
      for (int i = 0; i < h_; ++i) acc[i] = weight[i * l_ + label];
      for (const auto& [sim, k] : candidates) {
        const float* h_k = reps_.data().data() + k * h_;
        for (int i = 0; i < h_; ++i) acc[i] += h_k[i];
      }
      for (int i = 0; i < h_; ++i) {
        adjusted[i * l_ + label] = static_cast<float>(
            acc[i] / (1.0 + static_cast<double>(candidates.size())));
      }
    }
    return adjusted;
  }

  int t_, h_, l_, m_, seed_;
  std::unique_ptr<common::Rng> rng_;
  nn::Tensor reps_;
  std::unique_ptr<nn::Linear> classifier_;
  std::vector<int64_t> labels_;
};

TEST_P(PttaPropertyTest, MatchesBruteForceReference) {
  // The streaming Algorithm-1 implementation must agree with a brute-force
  // sort-and-average reference on arbitrary inputs. (Ties in similarity are
  // measure-zero for random reps.)
  PttaConfig config;
  config.capacity = m_;
  TestTimeAdapter adapter(config);
  std::vector<float> got =
      adapter.AdjustedWeights(reps_, labels_, *classifier_);
  std::vector<float> want = ReferenceAdjusted();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-4f) << "entry " << i;
  }
}

TEST_P(PttaPropertyTest, OnlyLabeledColumnsChange) {
  PttaConfig config;
  config.capacity = m_;
  TestTimeAdapter adapter(config);
  std::vector<float> adjusted =
      adapter.AdjustedWeights(reps_, labels_, *classifier_);
  const auto& original = classifier_->weight().data();
  std::vector<bool> labeled(static_cast<size_t>(l_), false);
  for (int64_t label : labels_) labeled[static_cast<size_t>(label)] = true;
  for (int64_t col = 0; col < l_; ++col) {
    if (labeled[static_cast<size_t>(col)]) continue;
    for (int i = 0; i < h_; ++i) {
      EXPECT_EQ(adjusted[i * l_ + col], original[i * l_ + col]);
    }
  }
}

TEST_P(PttaPropertyTest, StatsCountColumnsAndPatterns) {
  PttaConfig config;
  config.capacity = m_;
  TestTimeAdapter adapter(config);
  AdapterStats stats;
  adapter.AdjustedWeights(reps_, labels_, *classifier_, &stats);
  EXPECT_EQ(stats.patterns_generated, t_ - 1);
  std::vector<bool> labeled(static_cast<size_t>(l_), false);
  int distinct = 0;
  for (int64_t label : labels_) {
    if (!labeled[static_cast<size_t>(label)]) {
      labeled[static_cast<size_t>(label)] = true;
      ++distinct;
    }
  }
  EXPECT_EQ(stats.columns_updated, distinct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PttaPropertyTest,
    ::testing::Values(Params{3, 4, 5, 1, 1}, Params{6, 8, 4, 2, 2},
                      Params{12, 16, 30, 5, 3}, Params{25, 8, 3, 5, 4},
                      Params{40, 32, 100, 3, 5}, Params{8, 8, 8, 20, 6}));

}  // namespace
}  // namespace adamove::core
