#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "core/lightmob.h"
#include "data/point.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_locations = 8;
  c.num_users = 2;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<data::Sample> MakeSamples(int n) {
  std::vector<data::Sample> out;
  int64_t t = 1333238400;
  for (int i = 0; i < n; ++i) {
    data::Sample s;
    s.user = i % 2;
    for (int k = 0; k < 3 + i % 3; ++k) {
      s.recent.push_back({s.user, (i + k) % 8, t});
      t += 2 * data::kSecondsPerHour;
    }
    s.target = {s.user, (i + 5) % 8, t};
    out.push_back(s);
  }
  return out;
}

TEST(EvaluatorTest, FrozenAndAdaptedCountAllSamples) {
  LightMob model(SmallConfig());
  auto samples = MakeSamples(12);
  EvalResult frozen = Evaluate(model, samples);
  EXPECT_EQ(frozen.metrics.count, 12);
  TestTimeAdapter adapter{PttaConfig{}};
  EvalResult adapted = EvaluateWithAdapter(model, samples, adapter);
  EXPECT_EQ(adapted.metrics.count, 12);
}

TEST(EvaluatorTest, EmptySampleSetGivesZeroes) {
  LightMob model(SmallConfig());
  EvalResult r = Evaluate(model, {});
  EXPECT_EQ(r.metrics.count, 0);
  EXPECT_EQ(r.avg_ms_per_sample, 0.0);
}

TEST(EvaluatorTest, AdapterChangesResultsVsFrozen) {
  LightMob model(SmallConfig());
  auto samples = MakeSamples(12);
  EvalResult frozen = Evaluate(model, samples);
  TestTimeAdapter adapter{PttaConfig{}};
  EvalResult adapted = EvaluateWithAdapter(model, samples, adapter);
  // With multi-point trajectories the adapter rewrites classifier columns,
  // so at least the MRR is expected to differ on an untrained model.
  EXPECT_NE(adapted.metrics.mrr, frozen.metrics.mrr);
}

TEST(EvaluatorTest, DeterministicAcrossRuns) {
  LightMob model(SmallConfig());
  auto samples = MakeSamples(10);
  TestTimeAdapter adapter{PttaConfig{}};
  EvalResult a = EvaluateWithAdapter(model, samples, adapter);
  EvalResult b = EvaluateWithAdapter(model, samples, adapter);
  EXPECT_EQ(a.metrics.rec1, b.metrics.rec1);
  EXPECT_EQ(a.metrics.mrr, b.metrics.mrr);
}

}  // namespace
}  // namespace adamove::core
