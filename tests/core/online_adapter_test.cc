#include "core/online_adapter.h"

#include <gtest/gtest.h>

#include "core/lightmob.h"
#include "data/point.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_locations = 10;
  c.num_users = 4;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

data::Sample MakeSample(int64_t user, std::vector<int64_t> recent,
                        int64_t target, int64_t t0 = 1333238400) {
  data::Sample s;
  s.user = user;
  int64_t t = t0;
  for (int64_t l : recent) {
    s.recent.push_back({user, l, t});
    t += 3 * data::kSecondsPerHour;
  }
  s.target = {user, target, t};
  return s;
}

TEST(OnlineAdapterTest, ObserveAccumulatesBoundedPatterns) {
  OnlineAdapter adapter{PttaConfig{}};
  std::vector<float> pattern = {1, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 100; ++i) {
    adapter.Observe(1, pattern, 3, 1000 + i);
  }
  // Per-location FIFO cap bounds memory.
  EXPECT_LE(adapter.PatternCount(1), 32u);
  EXPECT_EQ(adapter.PatternCount(2), 0u);
  adapter.Reset();
  EXPECT_EQ(adapter.PatternCount(1), 0u);
}

TEST(OnlineAdapterTest, PredictMatchesFrozenWhenEmpty) {
  LightMob model(SmallConfig());
  OnlineAdapter adapter{PttaConfig{}};
  data::Sample s = MakeSample(1, {1, 2, 3}, 4);
  nn::Tensor reps = model.PrefixRepresentations(s);
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  std::vector<float> adapted =
      adapter.Predict(model, 1, query, s.target.timestamp);
  std::vector<float> frozen = model.Scores(s);
  ASSERT_EQ(adapted.size(), frozen.size());
  for (size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_NEAR(adapted[i], frozen[i], 1e-4f);
  }
}

TEST(OnlineAdapterTest, RepeatedObservationsBoostZeroedColumn) {
  LightMob model(SmallConfig());
  // Zero out location 7's column so its frozen score is just the bias.
  nn::Tensor weight = model.classifier().weight();
  const int64_t num_loc = model.classifier().out_features();
  for (int64_t i = 0; i < model.classifier().in_features(); ++i) {
    weight.data()[static_cast<size_t>(i * num_loc + 7)] = 0.0f;
  }
  OnlineAdapter adapter{PttaConfig{}};
  data::Sample s = MakeSample(1, {2, 7, 2, 7, 2, 7, 2}, 7);
  std::vector<float> frozen = model.Scores(s);
  std::vector<float> adapted = adapter.ObserveAndPredict(model, s);
  EXPECT_GT(adapted[7], frozen[7]);
  // State persists: a later sample of the same user still benefits.
  data::Sample later = MakeSample(1, {2}, 7, s.target.timestamp + 3600);
  std::vector<float> later_scores = adapter.ObserveAndPredict(model, later);
  EXPECT_GT(later_scores[7], model.Scores(later)[7]);
}

TEST(OnlineAdapterTest, StateIsPerUser) {
  LightMob model(SmallConfig());
  OnlineAdapter adapter{PttaConfig{}};
  adapter.ObserveAndPredict(model, MakeSample(1, {2, 7, 2, 7}, 7));
  EXPECT_GT(adapter.PatternCount(1), 0u);
  EXPECT_EQ(adapter.PatternCount(2), 0u);
}

TEST(OnlineAdapterTest, OldPatternsAgeOut) {
  LightMob model(SmallConfig());
  nn::Tensor weight = model.classifier().weight();
  const int64_t num_loc = model.classifier().out_features();
  for (int64_t i = 0; i < model.classifier().in_features(); ++i) {
    weight.data()[static_cast<size_t>(i * num_loc + 7)] = 0.0f;
  }
  OnlineAdapter adapter{PttaConfig{}, /*max_age_seconds=*/3600};
  data::Sample s = MakeSample(1, {2, 7, 2, 7, 2}, 7);
  adapter.ObserveAndPredict(model, s);
  // A query far in the future finds only stale patterns -> frozen scores.
  data::Sample future = MakeSample(1, {2}, 7,
                                   s.target.timestamp + 100 * 24 * 3600);
  nn::Tensor reps = model.PrefixRepresentations(future);
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  std::vector<float> scores =
      adapter.Predict(model, 1, query, future.target.timestamp);
  EXPECT_NEAR(scores[7], model.Scores(future)[7], 1e-4f);
}

/// The state two adapters hold for one user, as comparable bytes (the wire
/// encoding is deterministic, so bit-identical state <=> identical bytes).
std::string StateBytes(const OnlineAdapter& adapter, int64_t user) {
  std::string bytes;
  OnlineAdapter::EncodeUser(adapter.ExportUser(user), &bytes);
  return bytes;
}

/// The deferred-drain parity invariant (DESIGN.md §16): buffering a mixed
/// observation sequence through ObserveDeferred and draining leaves the
/// knowledge base bit-identical to inline Observe calls of the same
/// sequence — including interleavings where some observations went inline.
TEST(OnlineAdapterTest, DeferredDrainMatchesInlineBitIdentically) {
  LightMob model(SmallConfig());
  OnlineAdapter inline_run{PttaConfig{}};
  OnlineAdapter deferred_run{PttaConfig{}};
  const int64_t user = 2;  // must index into SmallConfig's user embedding
  int64_t t = 1333238400;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> pattern(8, 0.0f);
    pattern[static_cast<size_t>(i % 8)] = 1.0f + static_cast<float>(i) * 0.25f;
    const int64_t location = i % 7;
    inline_run.Observe(user, pattern, location, t);
    if (i % 3 == 0) {
      // Interleaved inline observation: the deferred adapter must drain its
      // backlog first or the arrival order would fork.
      deferred_run.DrainPending(user);
      deferred_run.Observe(user, pattern, location, t);
    } else {
      deferred_run.ObserveDeferred(user, std::move(pattern), location, t);
    }
    t += 3600;
  }
  EXPECT_GT(deferred_run.PendingCount(user), 0u);
  EXPECT_EQ(deferred_run.DirtyUserCount(), 1u);
  deferred_run.DrainPending(user);
  EXPECT_EQ(deferred_run.PendingCount(user), 0u);
  EXPECT_EQ(deferred_run.DirtyUserCount(), 0u);
  EXPECT_EQ(StateBytes(deferred_run, user), StateBytes(inline_run, user));

  // And the adapted predictions agree bit for bit.
  data::Sample s = MakeSample(user, {2, 4, 6}, 1, t);
  nn::Tensor reps = model.PrefixRepresentations(s);
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  const std::vector<float> a =
      inline_run.Predict(model, user, query, s.target.timestamp);
  const std::vector<float> b =
      deferred_run.Predict(model, user, query, s.target.timestamp);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

/// Pending coalescing is exact: with > kMaxCandidatesPerLocation deltas
/// buffered for one location, the oldest are dropped — which is provably
/// what Observe's FIFO cap would have done on drain, so the post-drain
/// state still matches the inline run of the *full* sequence.
TEST(OnlineAdapterTest, PendingCoalescingDropsOnlyWhatTheFifoCapWould) {
  OnlineAdapter inline_run{PttaConfig{}};
  OnlineAdapter deferred_run{PttaConfig{}};
  const int64_t user = 2;
  size_t coalesced = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<float> pattern(4, static_cast<float>(i));
    inline_run.Observe(user, pattern, 3, 1000 + i);
    coalesced +=
        deferred_run.ObserveDeferred(user, std::move(pattern), 3, 1000 + i);
  }
  // The buffer is bounded exactly like the knowledge base.
  EXPECT_EQ(deferred_run.PendingCount(user), 32u);
  EXPECT_EQ(coalesced, 100u - 32u);
  EXPECT_EQ(deferred_run.DrainPending(user), 32u);
  EXPECT_EQ(StateBytes(deferred_run, user), StateBytes(inline_run, user));
  EXPECT_EQ(deferred_run.PatternCount(user), 32u);
}

/// The user wire codec carries pending deltas, and stays byte-identical to
/// the pre-deferral encoding for clean users (the backward-compat contract:
/// old snapshots decode as pending-free, new clean frames decode under old
/// expectations).
TEST(OnlineAdapterTest, PendingSectionRoundTripsAndCleanUsersAreUnchanged) {
  OnlineAdapter adapter{PttaConfig{}};
  const int64_t user = 9;
  adapter.Observe(user, {1, 2, 3, 4}, 5, 1000);
  const std::string clean_bytes = StateBytes(adapter, user);

  adapter.ObserveDeferred(user, {5, 6, 7, 8}, 2, 2000);
  adapter.ObserveDeferred(user, {9, 10, 11, 12}, 5, 3000);
  const OnlineAdapter::UserSnapshot snap = adapter.ExportUser(user);
  ASSERT_EQ(snap.pending.size(), 2u);
  std::string dirty_bytes;
  OnlineAdapter::EncodeUser(snap, &dirty_bytes);
  // The pending section is strictly appended: the clean prefix is intact.
  ASSERT_GT(dirty_bytes.size(), clean_bytes.size());
  EXPECT_EQ(dirty_bytes.compare(0, clean_bytes.size(), clean_bytes), 0);

  OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(static_cast<bool>(OnlineAdapter::DecodeUser(dirty_bytes, &back)));
  ASSERT_EQ(back.pending.size(), 2u);
  EXPECT_EQ(back.pending[0].pattern, snap.pending[0].pattern);
  EXPECT_EQ(back.pending[0].next_location, 2);
  EXPECT_EQ(back.pending[0].timestamp, 2000);
  EXPECT_EQ(back.pending[1].next_location, 5);

  // Old-format bytes (exactly what a clean user encodes to) decode with an
  // empty pending buffer, not an error.
  OnlineAdapter::UserSnapshot old_format;
  ASSERT_TRUE(
      static_cast<bool>(OnlineAdapter::DecodeUser(clean_bytes, &old_format)));
  EXPECT_TRUE(old_format.pending.empty());

  // Adopt of the dirty snapshot round-trips through a fresh adapter: the
  // user is dirty there too, and drains to the same final state.
  OnlineAdapter fresh{PttaConfig{}};
  OnlineAdapter::UserSnapshot copy = snap;
  fresh.Adopt(std::move(copy));
  EXPECT_EQ(fresh.PendingCount(user), 2u);
  adapter.DrainPending(user);
  fresh.DrainPending(user);
  EXPECT_EQ(StateBytes(fresh, user), StateBytes(adapter, user));
}

/// A pending-only user (buffered observations, nothing drained yet) is real
/// state: Adopt keeps it, and Forget clears both the buffer and the dirty
/// mark.
TEST(OnlineAdapterTest, PendingOnlyUsersSurviveAdoptAndForgetClearsDirty) {
  OnlineAdapter::UserSnapshot snap;
  snap.user = 6;
  OnlineAdapter::PendingDelta delta;
  delta.pattern = {1, 2, 3};
  delta.next_location = 4;
  delta.timestamp = 500;
  snap.pending.push_back(delta);

  OnlineAdapter adapter{PttaConfig{}};
  adapter.Adopt(std::move(snap));
  EXPECT_EQ(adapter.UserCount(), 1u);
  EXPECT_EQ(adapter.PendingCount(6), 1u);
  EXPECT_EQ(adapter.PendingTotal(), 1u);
  EXPECT_EQ(adapter.DirtyUsers(), std::vector<int64_t>{6});

  adapter.Forget(6);
  EXPECT_EQ(adapter.UserCount(), 0u);
  EXPECT_EQ(adapter.PendingCount(6), 0u);
  EXPECT_EQ(adapter.DirtyUserCount(), 0u);

  // An adopted empty-pending + empty-locations snapshot stays absent.
  OnlineAdapter::UserSnapshot empty;
  empty.user = 6;
  adapter.Adopt(std::move(empty));
  EXPECT_EQ(adapter.UserCount(), 0u);
}

/// DrainSomePending walks dirty users in ascending order with an exact
/// budget — the deterministic background-drain primitive.
TEST(OnlineAdapterTest, DrainSomePendingHonoursBudgetInUserOrder) {
  OnlineAdapter adapter{PttaConfig{}};
  for (int64_t user : {30, 10, 20}) {
    adapter.ObserveDeferred(user, {1, 2}, 1, 100);
  }
  EXPECT_EQ(adapter.DirtyUserCount(), 3u);
  EXPECT_EQ(adapter.DrainSomePending(2), 2u);  // drains users 10 and 20
  EXPECT_EQ(adapter.DirtyUsers(), std::vector<int64_t>{30});
  EXPECT_EQ(adapter.DrainSomePending(0), 1u);  // 0 = the rest
  EXPECT_EQ(adapter.DirtyUserCount(), 0u);
  EXPECT_EQ(adapter.PendingTotal(), 0u);
}

}  // namespace
}  // namespace adamove::core
