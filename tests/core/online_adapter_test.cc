#include "core/online_adapter.h"

#include <gtest/gtest.h>

#include "core/lightmob.h"
#include "data/point.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_locations = 10;
  c.num_users = 4;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

data::Sample MakeSample(int64_t user, std::vector<int64_t> recent,
                        int64_t target, int64_t t0 = 1333238400) {
  data::Sample s;
  s.user = user;
  int64_t t = t0;
  for (int64_t l : recent) {
    s.recent.push_back({user, l, t});
    t += 3 * data::kSecondsPerHour;
  }
  s.target = {user, target, t};
  return s;
}

TEST(OnlineAdapterTest, ObserveAccumulatesBoundedPatterns) {
  OnlineAdapter adapter{PttaConfig{}};
  std::vector<float> pattern = {1, 0, 0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 100; ++i) {
    adapter.Observe(1, pattern, 3, 1000 + i);
  }
  // Per-location FIFO cap bounds memory.
  EXPECT_LE(adapter.PatternCount(1), 32u);
  EXPECT_EQ(adapter.PatternCount(2), 0u);
  adapter.Reset();
  EXPECT_EQ(adapter.PatternCount(1), 0u);
}

TEST(OnlineAdapterTest, PredictMatchesFrozenWhenEmpty) {
  LightMob model(SmallConfig());
  OnlineAdapter adapter{PttaConfig{}};
  data::Sample s = MakeSample(1, {1, 2, 3}, 4);
  nn::Tensor reps = model.PrefixRepresentations(s);
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  std::vector<float> adapted =
      adapter.Predict(model, 1, query, s.target.timestamp);
  std::vector<float> frozen = model.Scores(s);
  ASSERT_EQ(adapted.size(), frozen.size());
  for (size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_NEAR(adapted[i], frozen[i], 1e-4f);
  }
}

TEST(OnlineAdapterTest, RepeatedObservationsBoostZeroedColumn) {
  LightMob model(SmallConfig());
  // Zero out location 7's column so its frozen score is just the bias.
  nn::Tensor weight = model.classifier().weight();
  const int64_t num_loc = model.classifier().out_features();
  for (int64_t i = 0; i < model.classifier().in_features(); ++i) {
    weight.data()[static_cast<size_t>(i * num_loc + 7)] = 0.0f;
  }
  OnlineAdapter adapter{PttaConfig{}};
  data::Sample s = MakeSample(1, {2, 7, 2, 7, 2, 7, 2}, 7);
  std::vector<float> frozen = model.Scores(s);
  std::vector<float> adapted = adapter.ObserveAndPredict(model, s);
  EXPECT_GT(adapted[7], frozen[7]);
  // State persists: a later sample of the same user still benefits.
  data::Sample later = MakeSample(1, {2}, 7, s.target.timestamp + 3600);
  std::vector<float> later_scores = adapter.ObserveAndPredict(model, later);
  EXPECT_GT(later_scores[7], model.Scores(later)[7]);
}

TEST(OnlineAdapterTest, StateIsPerUser) {
  LightMob model(SmallConfig());
  OnlineAdapter adapter{PttaConfig{}};
  adapter.ObserveAndPredict(model, MakeSample(1, {2, 7, 2, 7}, 7));
  EXPECT_GT(adapter.PatternCount(1), 0u);
  EXPECT_EQ(adapter.PatternCount(2), 0u);
}

TEST(OnlineAdapterTest, OldPatternsAgeOut) {
  LightMob model(SmallConfig());
  nn::Tensor weight = model.classifier().weight();
  const int64_t num_loc = model.classifier().out_features();
  for (int64_t i = 0; i < model.classifier().in_features(); ++i) {
    weight.data()[static_cast<size_t>(i * num_loc + 7)] = 0.0f;
  }
  OnlineAdapter adapter{PttaConfig{}, /*max_age_seconds=*/3600};
  data::Sample s = MakeSample(1, {2, 7, 2, 7, 2}, 7);
  adapter.ObserveAndPredict(model, s);
  // A query far in the future finds only stale patterns -> frozen scores.
  data::Sample future = MakeSample(1, {2}, 7,
                                   s.target.timestamp + 100 * 24 * 3600);
  nn::Tensor reps = model.PrefixRepresentations(future);
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  std::vector<float> scores =
      adapter.Predict(model, 1, query, future.target.timestamp);
  EXPECT_NEAR(scores[7], model.Scores(future)[7], 1e-4f);
}

}  // namespace
}  // namespace adamove::core
