#include "core/adamove.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "data/preprocess.h"
#include "data/synthetic.h"

namespace adamove::core {
namespace {

// One shared small-but-shifted world for all end-to-end tests (building and
// training it once keeps the suite fast on a single core).
class AdaMoveE2eTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig sc;
    sc.num_users = 24;
    sc.num_locations = 90;
    sc.num_days = 150;
    sc.checkins_per_day = 3.0;
    sc.shift_time_frac = 0.65;
    sc.shift_user_frac = 0.9;   // strong, reliable shift
    sc.shift_anchor_frac = 0.8;
    sc.seed = 2024;
    data::SyntheticResult world = data::GenerateSynthetic(sc);
    data::PreprocessConfig pc;
    pc.min_users_per_location = 2;
    data::PreprocessedData pre = data::Preprocess(world.trajectories, pc);
    data::SplitConfig split;
    split.eval_samples.context_sessions = 5;
    dataset_ = new data::Dataset(data::MakeDataset(pre, split));

    ModelConfig mc;
    mc.num_locations = dataset_->num_locations;
    mc.num_users = dataset_->num_users;
    mc.hidden_size = 32;
    mc.location_emb_dim = 16;
    mc.time_emb_dim = 8;
    mc.user_emb_dim = 8;
    mc.lambda = 0.5;
    model_ = new AdaMove(mc);
    TrainConfig tc;
    tc.max_epochs = 6;
    tc.max_val_samples = 200;
    model_->Train(*dataset_, tc);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static AdaMove* model_;
};

data::Dataset* AdaMoveE2eTest::dataset_ = nullptr;
AdaMove* AdaMoveE2eTest::model_ = nullptr;

TEST_F(AdaMoveE2eTest, TrainingProducesUsefulModel) {
  EvalResult frozen = model_->EvaluateFrozen(dataset_->test);
  // Far better than the 1/num_locations random baseline.
  EXPECT_GT(frozen.metrics.rec1,
            3.0 / static_cast<double>(dataset_->num_locations));
  EXPECT_LE(frozen.metrics.rec1, 1.0);
}

TEST_F(AdaMoveE2eTest, PttaImprovesOverFrozenUnderShift) {
  // The headline claim: with a distribution shift in the test period,
  // test-time adaptation beats the frozen model on Rec@1.
  EvalResult frozen = model_->EvaluateFrozen(dataset_->test);
  EvalResult adapted = model_->EvaluateTta(dataset_->test);
  EXPECT_GT(adapted.metrics.rec1, frozen.metrics.rec1);
}

TEST_F(AdaMoveE2eTest, PredictReturnsAdaptedArgmax) {
  const data::Sample& s = dataset_->test.front();
  std::vector<float> scores = model_->Predict(s);
  EXPECT_EQ(scores.size(),
            static_cast<size_t>(dataset_->num_locations));
  const int64_t top = model_->PredictLocation(s);
  for (float v : scores) {
    EXPECT_LE(v, scores[static_cast<size_t>(top)]);
  }
}

TEST_F(AdaMoveE2eTest, SaveLoadRoundTripsPredictions) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "adamove_e2e_ckpt.bin")
          .string();
  ASSERT_TRUE(model_->Save(path));

  ModelConfig mc = model_->model().config();
  AdaMove restored(mc);
  const data::Sample& s = dataset_->test.front();
  // Fresh model (same seed ⇒ same init as the *untrained* model) must not
  // match the trained one... unless loading works.
  ASSERT_TRUE(restored.Load(path));
  EXPECT_EQ(restored.Predict(s), model_->Predict(s));
  std::remove(path.c_str());
}

TEST_F(AdaMoveE2eTest, MetricsAreConsistentAcrossBands) {
  EvalResult r = model_->EvaluateTta(dataset_->test);
  EXPECT_LE(r.metrics.rec1, r.metrics.rec5);
  EXPECT_LE(r.metrics.rec5, r.metrics.rec10);
  EXPECT_GE(r.metrics.mrr, r.metrics.rec1);
  EXPECT_EQ(r.metrics.count, static_cast<int64_t>(dataset_->test.size()));
}

}  // namespace
}  // namespace adamove::core
