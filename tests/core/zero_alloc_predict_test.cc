// The tentpole pin (DESIGN.md §14): once warm, the plan-mode inference path
// performs ZERO heap allocations per request — the static-plan encode
// (ForwardPlanner::EncodeInto), the adapted predict
// (OnlineAdapter::PredictInto = CollectRebuildJobs + ScoreCollectedJobsInto
// over the caller's scratch), and the frozen fallback (PredictFrozenInto).
// Counted by the common/alloc_probe operator-new interposition; under
// sanitizer builds the probe is compiled out and the assertions degrade to
// plain execution (the ASan stage then proves the same requests leak-free
// instead). Runs in every scripts/check.sh stage via the `plan` label.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/alloc_probe.h"
#include "core/forward_plan.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "core/ptta.h"
#include "data/dataset.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_locations = 12;
  c.num_users = 4;
  c.location_emb_dim = 6;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.hidden_size = 8;
  c.encoder = EncoderType::kLstm;
  c.lambda = 0.0;
  c.seed = 31;
  return c;
}

data::Sample MakeSample(int64_t user, int len, int64_t t0) {
  data::Sample sample;
  sample.user = user;
  int64_t t = t0;
  for (int i = 0; i < len; ++i) {
    sample.recent.push_back({user, (user + i) % 12, t});
    t += 3 * data::kSecondsPerHour;
  }
  sample.target = {user, (user + len) % 12, t};
  return sample;
}

class ZeroAllocPredictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<LightMob>(SmallConfig());
    planner_ = std::make_unique<ForwardPlanner>(*model_);
    // Populate the knowledge base: several locations for the user, so the
    // adapted path genuinely collects and scores rebuild jobs.
    int64_t t = 1333238400;
    for (int i = 0; i < 24; ++i) {
      std::vector<float> pattern(8);
      for (size_t j = 0; j < pattern.size(); ++j) {
        pattern[j] = 0.1f * static_cast<float>(i + 1) - 0.05f * j;
      }
      adapter_.Observe(/*user=*/1, pattern, i % 6, t);
      t += 600;
    }
    query_time_ = t;
  }

  std::unique_ptr<LightMob> model_;
  std::unique_ptr<ForwardPlanner> planner_;
  OnlineAdapter adapter_{PttaConfig{}};
  int64_t query_time_ = 0;
};

TEST_F(ZeroAllocPredictTest, SteadyStatePlanEncodeAllocatesNothing) {
  const data::Sample sample = MakeSample(1, 6, 1333238400);
  PlanScratch scratch;
  ASSERT_TRUE(planner_->EncodeInto(sample, &scratch));  // warm-up: compiles
  common::AllocProbeScope window;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(planner_->EncodeInto(sample, &scratch));
  }
  if (common::AllocProbeAvailable()) {
    EXPECT_EQ(window.allocations(), 0u) << "plan encode allocated";
    EXPECT_EQ(window.frees(), 0u);
  }
  EXPECT_EQ(scratch.rows, 6);
  EXPECT_EQ(scratch.cols, 8);
}

TEST_F(ZeroAllocPredictTest, SteadyStatePredictAllocatesNothing) {
  const data::Sample sample = MakeSample(1, 6, 1333238400);
  PlanScratch encode;
  ASSERT_TRUE(planner_->EncodeInto(sample, &encode));
  OnlineAdapter::PredictScratch predict;
  AdapterStats stats;
  const float* query = encode.reps.data() + (encode.rows - 1) * encode.cols;
  // Warm-up request grows every capacity; the window then covers 100 full
  // steady-state requests (encode + adapted predict with diagnostics).
  adapter_.PredictInto(*model_, 1, query, encode.cols, query_time_, &predict,
                       &stats);
  ASSERT_GT(stats.columns_updated, 0);  // the adapted path really ran
  common::AllocProbeScope window;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(planner_->EncodeInto(sample, &encode));
    adapter_.PredictInto(*model_, 1, query, encode.cols, query_time_,
                         &predict, &stats);
  }
  if (common::AllocProbeAvailable()) {
    EXPECT_EQ(window.allocations(), 0u) << "steady-state Predict allocated";
    EXPECT_EQ(window.frees(), 0u) << "arena churned";
  }
  EXPECT_EQ(predict.scores.size(), 12u);
}

TEST_F(ZeroAllocPredictTest, SteadyStateFrozenPredictAllocatesNothing) {
  const data::Sample sample = MakeSample(2, 5, 1333238400);
  PlanScratch encode;
  ASSERT_TRUE(planner_->EncodeInto(sample, &encode));
  std::vector<float> scores;
  const float* query = encode.reps.data() + (encode.rows - 1) * encode.cols;
  OnlineAdapter::PredictFrozenInto(*model_, query, encode.cols, &scores);
  ASSERT_NO_ALLOCATIONS({
    for (int i = 0; i < 100; ++i) {
      OnlineAdapter::PredictFrozenInto(*model_, query, encode.cols, &scores);
    }
  });
  EXPECT_EQ(scores.size(), 12u);
}

TEST_F(ZeroAllocPredictTest, SteadyStateScoreCollectedJobsAllocatesNothing) {
  const data::Sample sample = MakeSample(1, 6, 1333238400);
  PlanScratch encode;
  ASSERT_TRUE(planner_->EncodeInto(sample, &encode));
  const float* query = encode.reps.data() + (encode.rows - 1) * encode.cols;
  OnlineAdapter::PredictScratch scratch;
  adapter_.PredictInto(*model_, 1, query, encode.cols, query_time_,
                       &scratch);
  ASSERT_FALSE(scratch.jobs.empty());
  std::vector<float> scores(scratch.scores);
  common::AllocProbeScope window;
  for (int i = 0; i < 100; ++i) {
    OnlineAdapter::ScoreCollectedJobsInto(*model_, query, encode.cols,
                                          scratch.jobs, scratch.arena,
                                          &scores);
  }
  if (common::AllocProbeAvailable()) {
    EXPECT_EQ(window.allocations(), 0u);
    EXPECT_EQ(window.frees(), 0u);
  }
  // And the scratch-scored result equals the canonical Predict output.
  const std::vector<float> reference = adapter_.Predict(
      *model_, 1, std::vector<float>(query, query + encode.cols),
      query_time_);
  ASSERT_EQ(scores.size(), reference.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    ASSERT_EQ(scores[i], reference[i]) << "score " << i;
  }
}

/// The legacy vector-returning APIs are wrappers over the Into variants, so
/// their arithmetic is single-sourced: spot-check bit-identity.
TEST_F(ZeroAllocPredictTest, IntoVariantsMatchLegacyApisBitExactly) {
  const data::Sample sample = MakeSample(1, 6, 1333238400);
  PlanScratch encode;
  ASSERT_TRUE(planner_->EncodeInto(sample, &encode));
  const float* query = encode.reps.data() + (encode.rows - 1) * encode.cols;
  const std::vector<float> query_vec(query, query + encode.cols);

  OnlineAdapter::PredictScratch scratch;
  adapter_.PredictInto(*model_, 1, query, encode.cols, query_time_,
                       &scratch);
  const std::vector<float> legacy =
      adapter_.Predict(*model_, 1, query_vec, query_time_);
  ASSERT_EQ(scratch.scores.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    ASSERT_EQ(scratch.scores[i], legacy[i]);
  }

  std::vector<float> frozen_into;
  OnlineAdapter::PredictFrozenInto(*model_, query, encode.cols,
                                   &frozen_into);
  const std::vector<float> frozen =
      OnlineAdapter::PredictFrozen(*model_, query_vec);
  ASSERT_EQ(frozen_into.size(), frozen.size());
  for (size_t i = 0; i < frozen.size(); ++i) {
    ASSERT_EQ(frozen_into[i], frozen[i]);
  }
}

}  // namespace
}  // namespace adamove::core
