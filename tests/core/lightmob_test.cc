#include "core/lightmob.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/point.h"
#include "nn/ops.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig(double lambda = 0.8) {
  ModelConfig c;
  c.num_locations = 20;
  c.num_users = 4;
  c.hidden_size = 16;
  c.location_emb_dim = 8;
  c.time_emb_dim = 4;
  c.user_emb_dim = 4;
  c.lambda = lambda;
  return c;
}

data::Sample MakeSample(std::vector<int64_t> recent,
                        std::vector<int64_t> history, int64_t target) {
  data::Sample s;
  s.user = 2;
  // Recent timestamps are anchored at a fixed instant so that samples with
  // different history lengths still embed identical recent points.
  int64_t t = 1333238400 - 5 * data::kSecondsPerHour *
                               static_cast<int64_t>(history.size());
  for (int64_t l : history) {
    s.history.push_back({s.user, l, t});
    t += 5 * data::kSecondsPerHour;
  }
  t = 1333238400;
  for (int64_t l : recent) {
    s.recent.push_back({s.user, l, t});
    t += 5 * data::kSecondsPerHour;
  }
  s.target = {s.user, target, t};
  return s;
}

TEST(LightMobTest, ScoresHaveOneEntryPerLocation) {
  LightMob model(SmallConfig());
  auto scores = model.Scores(MakeSample({1, 2, 3}, {4, 5}, 6));
  EXPECT_EQ(scores.size(), 20u);
}

TEST(LightMobTest, LossIsFiniteAndPositive) {
  LightMob model(SmallConfig());
  nn::Tensor loss =
      model.Loss(MakeSample({1, 2, 3}, {4, 5, 6}, 7), /*training=*/true);
  EXPECT_TRUE(std::isfinite(loss.item()));
  // CE alone is ~log(20) ≈ 3; contrastive can subtract at most ~1+log K.
  EXPECT_GT(loss.item(), 0.0f);
}

TEST(LightMobTest, LambdaZeroHasNoHistoryBranch) {
  LightMob base(SmallConfig(0.0), "LSTM");
  EXPECT_EQ(base.name(), "LSTM");
  data::Sample with_hist = MakeSample({1, 2, 3}, {4, 5, 6}, 7);
  data::Sample without_hist = MakeSample({1, 2, 3}, {}, 7);
  // With λ = 0 the history must not influence the loss at all.
  EXPECT_FLOAT_EQ(base.Loss(with_hist, false).item(),
                  base.Loss(without_hist, false).item());
}

TEST(LightMobTest, ContrastiveTermSkippedWhenAllNextLocationsAreTarget) {
  LightMob model(SmallConfig());
  // recent = <5, 5, 5>, target 5: every prefix's next location equals the
  // target, so §III-C filtering leaves no negatives.
  data::Sample s = MakeSample({5, 5, 5}, {1, 2}, 5);
  nn::Tensor h_rec = model.encoder().Forward(s.recent, false);
  nn::Tensor h_hist = model.encoder().Forward(s.history, false);
  EXPECT_FALSE(model.ContrastiveTerm(h_rec, h_hist, s).defined());
}

TEST(LightMobTest, ContrastiveTermPresentWithValidNegatives) {
  LightMob model(SmallConfig());
  data::Sample s = MakeSample({5, 6, 7}, {1, 2}, 9);
  nn::Tensor h_rec = model.encoder().Forward(s.recent, false);
  nn::Tensor h_hist = model.encoder().Forward(s.history, false);
  nn::Tensor con = model.ContrastiveTerm(h_rec, h_hist, s);
  ASSERT_TRUE(con.defined());
  EXPECT_TRUE(std::isfinite(con.item()));
}

TEST(LightMobTest, ContrastiveLossChangesLossValue) {
  data::Sample s = MakeSample({5, 6, 7, 8}, {1, 2, 3}, 9);
  LightMob with(SmallConfig(0.8));
  LightMob without(SmallConfig(0.0));
  // Same seed => identical encoder/classifier init, so any difference comes
  // from the contrastive term.
  const float a = with.Loss(s, false).item();
  const float b = without.Loss(s, false).item();
  EXPECT_NE(a, b);
}

TEST(LightMobTest, PrefixRepresentationsMatchScoresPath) {
  // The last prefix representation run through the classifier must equal
  // Scores() — this ties PTTA's view of the model to normal inference.
  LightMob model(SmallConfig());
  data::Sample s = MakeSample({3, 1, 4, 1, 5}, {2, 6}, 9);
  nn::Tensor reps = model.PrefixRepresentations(s);
  EXPECT_EQ(reps.rows(), 5);
  EXPECT_EQ(reps.cols(), 16);
  nn::Tensor logits =
      model.classifier().Forward(nn::Row(reps, reps.rows() - 1));
  const auto scores = model.Scores(s);
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], logits.data()[i], 1e-5f);
  }
}

TEST(LightMobTest, GradientsFlowThroughHybridLoss) {
  LightMob model(SmallConfig());
  model.ZeroGrad();
  nn::Tensor loss = model.Loss(MakeSample({1, 2, 3}, {4, 5, 6}, 7), true);
  loss.Backward();
  // At least the classifier and the encoder must receive gradient signal.
  int params_with_grad = 0;
  for (auto& p : model.Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        ++params_with_grad;
        break;
      }
    }
  }
  EXPECT_GT(params_with_grad, 5);
}

TEST(LightMobTest, ParameterCountMatchesArchitecture) {
  ModelConfig c = SmallConfig(0.0);
  LightMob model(c);
  // loc emb 20*8 + time emb 48*4 + user emb 4*4 + LSTM ((16+16)*64 + 64)
  // + classifier 16*20 + 20.
  const int64_t expected = 20 * 8 + 48 * 4 + 4 * 4 +
                           (16 * 64 + 16 * 64 + 64) + 16 * 20 + 20;
  EXPECT_EQ(model.NumParameters(), expected);
}

TEST(LightMobTest, EncoderVariantsAllWork) {
  for (EncoderType type :
       {EncoderType::kRnn, EncoderType::kLstm, EncoderType::kGru,
        EncoderType::kTransformer}) {
    ModelConfig c = SmallConfig();
    c.encoder = type;
    c.transformer_heads = 4;
    LightMob model(c);
    auto scores = model.Scores(MakeSample({1, 2, 3}, {4}, 5));
    EXPECT_EQ(scores.size(), 20u) << EncoderTypeName(type);
    nn::Tensor loss = model.Loss(MakeSample({1, 2, 3}, {4, 5}, 6), true);
    EXPECT_TRUE(std::isfinite(loss.item())) << EncoderTypeName(type);
  }
}

}  // namespace
}  // namespace adamove::core
