#include "core/metrics.h"

#include <gtest/gtest.h>

namespace adamove::core {
namespace {

TEST(MetricsTest, RankOfTopScore) {
  EXPECT_EQ(MetricAccumulator::RankOf({0.1f, 0.9f, 0.5f}, 1), 1);
  EXPECT_EQ(MetricAccumulator::RankOf({0.1f, 0.9f, 0.5f}, 2), 2);
  EXPECT_EQ(MetricAccumulator::RankOf({0.1f, 0.9f, 0.5f}, 0), 3);
}

TEST(MetricsTest, TiesBreakByIndex) {
  // Equal scores: the earlier index wins the better rank.
  EXPECT_EQ(MetricAccumulator::RankOf({0.5f, 0.5f}, 0), 1);
  EXPECT_EQ(MetricAccumulator::RankOf({0.5f, 0.5f}, 1), 2);
}

TEST(MetricsTest, RejectsBadTarget) {
  EXPECT_DEATH(MetricAccumulator::RankOf({0.5f}, 1), "CHECK");
}

TEST(MetricsTest, AccumulatesRecallBands) {
  MetricAccumulator acc;
  // 12 locations; craft ranks 1, 3, 7, 12.
  std::vector<float> scores(12);
  for (int i = 0; i < 12; ++i) scores[i] = static_cast<float>(12 - i);
  acc.Add(scores, 0);   // rank 1
  acc.Add(scores, 2);   // rank 3
  acc.Add(scores, 6);   // rank 7
  acc.Add(scores, 11);  // rank 12
  Metrics m = acc.Result();
  EXPECT_EQ(m.count, 4);
  EXPECT_DOUBLE_EQ(m.rec1, 0.25);
  EXPECT_DOUBLE_EQ(m.rec5, 0.5);
  EXPECT_DOUBLE_EQ(m.rec10, 0.75);
  // MRR@10 = (1 + 1/3 + 1/7 + 0) / 4
  EXPECT_NEAR(m.mrr, (1.0 + 1.0 / 3 + 1.0 / 7) / 4.0, 1e-12);
}

TEST(MetricsTest, EmptyAccumulatorIsZero) {
  Metrics m = MetricAccumulator().Result();
  EXPECT_EQ(m.count, 0);
  EXPECT_EQ(m.rec1, 0.0);
  EXPECT_EQ(m.mrr, 0.0);
}

TEST(MetricsTest, MonotonicBands) {
  // Rec@1 <= Rec@5 <= Rec@10 always.
  MetricAccumulator acc;
  std::vector<float> scores(20);
  for (int i = 0; i < 20; ++i) scores[i] = static_cast<float>(i % 7);
  for (int t = 0; t < 20; ++t) acc.Add(scores, t);
  Metrics m = acc.Result();
  EXPECT_LE(m.rec1, m.rec5);
  EXPECT_LE(m.rec5, m.rec10);
  EXPECT_LE(m.mrr, m.rec10);
  EXPECT_GE(m.mrr, m.rec1);
}

}  // namespace
}  // namespace adamove::core
