#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/lightmob.h"
#include "data/point.h"

namespace adamove::core {
namespace {

// A tiny, perfectly learnable corpus: location cycles 0->1->2->0 for a
// handful of users.
data::Dataset CyclicDataset(int64_t num_locations = 6, int samples = 120) {
  data::Dataset ds;
  ds.num_locations = num_locations;
  ds.num_users = 2;
  int64_t t = 1333238400;
  for (int i = 0; i < samples; ++i) {
    data::Sample s;
    s.user = i % 2;
    const int64_t start = i % 3;
    for (int k = 0; k < 4; ++k) {
      s.recent.push_back({s.user, (start + k) % 3, t});
      t += 2 * data::kSecondsPerHour;
    }
    s.target = {s.user, (start + 4) % 3, t};
    if (i % 4 == 0) {
      ds.val.push_back(s);
    } else {
      ds.train.push_back(s);
    }
  }
  ds.test = ds.val;
  return ds;
}

ModelConfig TinyConfig() {
  ModelConfig c;
  c.num_locations = 6;
  c.num_users = 2;
  c.hidden_size = 12;
  c.location_emb_dim = 6;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

TEST(TrainerTest, LearnsCyclicPattern) {
  LightMob model(TinyConfig());
  TrainConfig tc;
  tc.max_epochs = 25;
  tc.batch_size = 16;
  tc.learning_rate = 1e-2;
  tc.decay_factor = 0.8;  // gentle schedule for this tiny corpus
  Trainer trainer(tc);
  auto logs = trainer.Train(model, CyclicDataset());
  ASSERT_FALSE(logs.empty());
  // Loss decreases and validation accuracy becomes (near) perfect.
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  EXPECT_GE(logs.back().val_rec1, 0.9);
  // Test evaluation agrees.
  EvalResult result = Evaluate(model, CyclicDataset().test);
  EXPECT_GE(result.metrics.rec1, 0.9);
}

TEST(TrainerTest, StopsEarlyWhenLrHitsFloor) {
  LightMob model(TinyConfig());
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.learning_rate = 2e-4;   // one decay (x0.5) reaches the 1e-4 floor
  tc.decay_factor = 0.5;
  Trainer trainer(tc);
  auto logs = trainer.Train(model, CyclicDataset(6, 40));
  // With a plateau on epoch 2 the schedule must terminate well before 30.
  EXPECT_LT(logs.size(), 30u);
}

TEST(TrainerTest, EpochLogsCarrySchedule) {
  LightMob model(TinyConfig());
  TrainConfig tc;
  tc.max_epochs = 3;
  Trainer trainer(tc);
  auto logs = trainer.Train(model, CyclicDataset(6, 40));
  for (size_t i = 0; i < logs.size(); ++i) {
    EXPECT_EQ(logs[i].epoch, static_cast<int>(i) + 1);
    EXPECT_GT(logs[i].learning_rate, 0.0);
    EXPECT_GE(logs[i].val_rec1, 0.0);
    EXPECT_LE(logs[i].val_rec1, 1.0);
  }
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  auto run = [] {
    LightMob model(TinyConfig());
    TrainConfig tc;
    tc.max_epochs = 3;
    Trainer trainer(tc);
    trainer.Train(model, CyclicDataset(6, 40));
    return Evaluate(model, CyclicDataset(6, 40).test).metrics.rec1;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(TrainerTest, RejectsEmptyTrainingSet) {
  LightMob model(TinyConfig());
  data::Dataset empty;
  Trainer trainer(TrainConfig{});
  EXPECT_DEATH(trainer.Train(model, empty), "CHECK");
}

TEST(EvaluatorTest, CountsEverySample) {
  LightMob model(TinyConfig());
  data::Dataset ds = CyclicDataset(6, 40);
  EvalResult result = Evaluate(model, ds.test);
  EXPECT_EQ(result.metrics.count, static_cast<int64_t>(ds.test.size()));
  EXPECT_GE(result.avg_ms_per_sample, 0.0);
}

}  // namespace
}  // namespace adamove::core
