#include "core/distill.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/lightmob.h"
#include "data/point.h"
#include "nn/ops.h"

namespace adamove::core {
namespace {

ModelConfig TinyConfig(double lambda = 0.0) {
  ModelConfig c;
  c.num_locations = 6;
  c.num_users = 2;
  c.hidden_size = 12;
  c.location_emb_dim = 6;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = lambda;
  return c;
}

// Cyclic corpus (same as trainer_test): 0->1->2->0 shifted by start.
data::Dataset CyclicDataset(int samples = 90) {
  data::Dataset ds;
  ds.num_locations = 6;
  ds.num_users = 2;
  int64_t t = 1333238400;
  for (int i = 0; i < samples; ++i) {
    data::Sample s;
    s.user = i % 2;
    const int64_t start = i % 3;
    for (int k = 0; k < 4; ++k) {
      s.recent.push_back({s.user, (start + k) % 3, t});
      t += 2 * data::kSecondsPerHour;
    }
    s.target = {s.user, (start + 4) % 3, t};
    (i % 4 == 0 ? ds.val : ds.train).push_back(s);
  }
  ds.test = ds.val;
  return ds;
}

TEST(DistillationLossTest, ZeroWhenStudentMatchesTeacher) {
  // Identical logits => KL(p||q) = 0 (up to float error).
  std::vector<float> logits = {1.0f, 2.0f, 0.5f, -1.0f};
  nn::Tensor student = nn::Tensor::FromVector({1, 4}, logits, true);
  DistillConfig config;
  nn::Tensor loss = DistillationLoss(student, logits, config);
  // The implementation returns the soft cross-entropy (KL + teacher
  // entropy); matching distributions minimize it at H(p) * T^2.
  nn::Tensor self_entropy = DistillationLoss(student, logits, config);
  EXPECT_NEAR(loss.item(), self_entropy.item(), 1e-6f);
  // Any *other* student distribution has strictly higher soft CE.
  std::vector<float> other = {2.0f, 1.0f, -0.5f, 1.0f};
  nn::Tensor worse = DistillationLoss(
      nn::Tensor::FromVector({1, 4}, other, true), logits, config);
  EXPECT_GT(worse.item(), loss.item());
}

TEST(DistillationLossTest, GradientPullsTowardTeacher) {
  // Teacher prefers class 0; a uniform student should get a negative
  // gradient on logit 0 (push up) and positive on the rest.
  std::vector<float> teacher = {5.0f, 0.0f, 0.0f};
  nn::Tensor student = nn::Tensor::Zeros({1, 3}, true);
  DistillConfig config;
  DistillationLoss(student, teacher, config).Backward();
  EXPECT_LT(student.grad()[0], 0.0f);
  EXPECT_GT(student.grad()[1], 0.0f);
  EXPECT_GT(student.grad()[2], 0.0f);
}

TEST(DistillationLossTest, TemperatureSoftensTargets) {
  std::vector<float> teacher = {5.0f, 0.0f, 0.0f};
  nn::Tensor student = nn::Tensor::Zeros({1, 3}, true);
  DistillConfig sharp;
  sharp.temperature = 1.0;
  DistillConfig soft;
  soft.temperature = 5.0;
  student.ZeroGrad();
  DistillationLoss(student, teacher, sharp).Backward();
  const float sharp_g0 = student.grad()[0] / 1.0f;  // T^2 = 1
  student.ZeroGrad();
  DistillationLoss(student, teacher, soft).Backward();
  const float soft_g0 = student.grad()[0] / 25.0f;  // undo T^2
  // Softer targets spread mass: the per-unit pull toward class 0 weakens.
  EXPECT_LT(std::abs(soft_g0), std::abs(sharp_g0));
}

TEST(DistillationLossTest, RejectsMismatchedSizes) {
  nn::Tensor student = nn::Tensor::Zeros({1, 3}, true);
  EXPECT_DEATH(DistillationLoss(student, {1.0f, 2.0f}, DistillConfig{}),
               "CHECK");
}

TEST(DistillTrainTest, StudentLearnsFromTeacher) {
  data::Dataset ds = CyclicDataset();
  // Teacher: trained conventionally to high accuracy.
  LightMob teacher(TinyConfig());
  TrainConfig tc;
  tc.max_epochs = 20;
  tc.batch_size = 16;
  tc.decay_factor = 0.8;
  Trainer(tc).Train(teacher, ds);
  const double teacher_rec1 = Evaluate(teacher, ds.test).metrics.rec1;
  ASSERT_GT(teacher_rec1, 0.8);

  // Student: fresh model trained only through distillation + CE.
  ModelConfig student_config = TinyConfig();
  student_config.seed = 99;  // different init
  LightMob student(student_config, "Student");
  DistillConfig dc;
  auto logs = DistillTrain(teacher, student, ds, tc, dc);
  ASSERT_FALSE(logs.empty());
  EXPECT_LT(logs.back().train_loss, logs.front().train_loss);
  const double student_rec1 = Evaluate(student, ds.test).metrics.rec1;
  EXPECT_GT(student_rec1, 0.8);
}

TEST(DistillTrainTest, PureSoftTargetsAlsoTeach) {
  // mu = 1: the student never sees a hard label, only the teacher.
  data::Dataset ds = CyclicDataset();
  LightMob teacher(TinyConfig());
  TrainConfig tc;
  tc.max_epochs = 20;
  tc.batch_size = 16;
  tc.decay_factor = 0.8;
  Trainer(tc).Train(teacher, ds);
  LightMob student(TinyConfig(), "Student");
  DistillConfig dc;
  dc.mu = 1.0;
  DistillTrain(teacher, student, ds, tc, dc);
  EXPECT_GT(Evaluate(student, ds.test).metrics.rec1, 0.5);
}

}  // namespace
}  // namespace adamove::core
