#include "core/encoder.h"

#include <gtest/gtest.h>

#include "core/history_attention.h"
#include "data/point.h"
#include "nn/ops.h"

namespace adamove::core {
namespace {

ModelConfig SmallConfig() {
  ModelConfig c;
  c.num_locations = 10;
  c.num_users = 3;
  c.hidden_size = 12;
  c.location_emb_dim = 6;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  return c;
}

std::vector<data::Point> Points(std::vector<int64_t> locs, int64_t user = 1) {
  std::vector<data::Point> out;
  int64_t t = 1333238400;
  for (int64_t l : locs) {
    out.push_back({user, l, t});
    t += 3 * data::kSecondsPerHour;
  }
  return out;
}

TEST(PointEmbeddingTest, ConcatenatesThreeEmbeddings) {
  common::Rng rng(1);
  PointEmbedding emb(SmallConfig(), rng);
  EXPECT_EQ(emb.dim(), 6 + 4 + 2);
  nn::Tensor e = emb.Forward(Points({1, 2, 3}));
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 12);
}

TEST(PointEmbeddingTest, SameUserSharesUserSlice) {
  common::Rng rng(2);
  PointEmbedding emb(SmallConfig(), rng);
  nn::Tensor e = emb.Forward(Points({1, 5}, /*user=*/2));
  // Last user_emb_dim columns identical across rows (same user).
  for (int64_t c = 10; c < 12; ++c) {
    EXPECT_FLOAT_EQ(e.at(0, c), e.at(1, c));
  }
  // Location slice differs (different locations).
  bool loc_differs = false;
  for (int64_t c = 0; c < 6; ++c) {
    if (e.at(0, c) != e.at(1, c)) loc_differs = true;
  }
  EXPECT_TRUE(loc_differs);
}

TEST(PointEmbeddingTest, TimeSlotDistinguishesWeekend) {
  common::Rng rng(3);
  PointEmbedding emb(SmallConfig(), rng);
  // Same location/user/hour; one point on Thursday (epoch day 0), one on
  // Saturday (epoch day 2): time slices must differ.
  std::vector<data::Point> pts = {
      {1, 4, 10 * data::kSecondsPerHour},
      {1, 4, 2 * data::kSecondsPerDay + 10 * data::kSecondsPerHour}};
  nn::Tensor e = emb.Forward(pts);
  bool time_differs = false;
  for (int64_t c = 6; c < 10; ++c) {
    if (e.at(0, c) != e.at(1, c)) time_differs = true;
  }
  EXPECT_TRUE(time_differs);
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_FLOAT_EQ(e.at(0, c), e.at(1, c));  // same location slice
  }
}

TEST(PointEmbeddingTest, RejectsOutOfRangeLocation) {
  common::Rng rng(4);
  PointEmbedding emb(SmallConfig(), rng);
  EXPECT_DEATH(emb.Forward(Points({10})), "CHECK");
}

class TrajectoryEncoderTest : public ::testing::TestWithParam<EncoderType> {};

TEST_P(TrajectoryEncoderTest, CausalAcrossAllFamilies) {
  ModelConfig c = SmallConfig();
  c.encoder = GetParam();
  c.transformer_heads = 4;
  c.dropout = 0.0f;
  common::Rng rng(5);
  TrajectoryEncoder enc(c, rng);
  auto pts = Points({1, 2, 3, 4, 5});
  nn::Tensor full = enc.Forward(pts, false);
  EXPECT_EQ(full.rows(), 5);
  EXPECT_EQ(full.cols(), c.hidden_size);
  // Prefix property: encoding the 3-point prefix reproduces row 2.
  auto prefix = std::vector<data::Point>(pts.begin(), pts.begin() + 3);
  nn::Tensor h = enc.Forward(prefix, false);
  for (int64_t col = 0; col < c.hidden_size; ++col) {
    EXPECT_NEAR(h.at(2, col), full.at(2, col), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, TrajectoryEncoderTest,
                         ::testing::Values(EncoderType::kRnn,
                                           EncoderType::kLstm,
                                           EncoderType::kGru,
                                           EncoderType::kTransformer),
                         [](const auto& info) {
                           return EncoderTypeName(info.param);
                         });

TEST(EncoderTypeNameTest, CoversAllTypes) {
  EXPECT_EQ(EncoderTypeName(EncoderType::kRnn), "RNN");
  EXPECT_EQ(EncoderTypeName(EncoderType::kLstm), "LSTM");
  EXPECT_EQ(EncoderTypeName(EncoderType::kGru), "GRU");
  EXPECT_EQ(EncoderTypeName(EncoderType::kTransformer), "Transformer");
}

TEST(HistoryAttentionTest, OutputMatchesRecentShape) {
  common::Rng rng(6);
  HistoryAttention attn(8, rng);
  nn::Tensor h_hist = nn::Tensor::Randn({5, 8}, rng);
  nn::Tensor h_rec = nn::Tensor::Randn({3, 8}, rng);
  nn::Tensor out = attn.Forward(h_hist, h_rec);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
}

TEST(HistoryAttentionTest, OutputIsConvexishCombinationOfValues) {
  // With a single history entry, attention output = V row exactly.
  common::Rng rng(7);
  HistoryAttention attn(4, rng);
  nn::Tensor h_hist = nn::Tensor::Randn({1, 4}, rng);
  nn::Tensor h_rec = nn::Tensor::Randn({2, 4}, rng);
  nn::Tensor out = attn.Forward(h_hist, h_rec);
  // Both query rows attend to the single history row -> identical outputs.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.at(0, c), out.at(1, c));
  }
}

TEST(HistoryAttentionTest, GradientsFlowToProjections) {
  common::Rng rng(8);
  HistoryAttention attn(4, rng);
  nn::Tensor h_hist = nn::Tensor::Randn({3, 4}, rng);
  nn::Tensor h_rec = nn::Tensor::Randn({2, 4}, rng);
  nn::Sum(nn::Mul(attn.Forward(h_hist, h_rec),
                  attn.Forward(h_hist, h_rec)))
      .Backward();
  for (auto& p : attn.Parameters()) {
    bool any = false;
    for (float g : p.grad()) any = any || g != 0.0f;
    EXPECT_TRUE(any);
  }
}

}  // namespace
}  // namespace adamove::core
