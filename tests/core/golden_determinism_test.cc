#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "core/adamove.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "nn/kernels.h"

namespace adamove::core {
namespace {

// The golden file pins the *scalar* backend's arithmetic (the bit-identical
// reference). Force it through the env knob so the dispatcher's override
// path is exercised end to end; the SIMD backend is tolerance-bounded, not
// bit-identical, and is covered by kernels_backend_test instead.
const bool kScalarPinned = [] {
  setenv("ADAMOVE_KERNEL_BACKEND", "scalar", /*overwrite=*/1);
  nn::kernels::RefreshBackendFromEnv();
  return true;
}();

/// End-to-end golden determinism: a fully seeded train -> adapt -> evaluate
/// run must produce Rec@K / MRR values that are (a) bit-identical between
/// ADAMOVE_NUM_THREADS=1 and 8 — the repo-wide "parallelism is scheduling,
/// never arithmetic" contract, end to end — and (b) equal to the checked-in
/// golden file, so any unintended numeric drift (refactor, compiler flag,
/// fault-layer residue) fails CI instead of silently shifting results.
///
/// Regenerate the golden after an *intended* numeric change with
///   ADAMOVE_UPDATE_GOLDEN=1 ./build/tests/adamove_golden_determinism_test

#ifndef ADAMOVE_GOLDEN_DIR
#error "build must define ADAMOVE_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

struct GoldenMetrics {
  double frozen_rec1, frozen_rec5, frozen_rec10, frozen_mrr;
  double tta_rec1, tta_rec5, tta_rec10, tta_mrr;
  int64_t count;
};

GoldenMetrics RunPipeline() {
  data::SyntheticConfig sc;
  sc.num_users = 12;
  sc.num_locations = 40;
  sc.num_days = 80;
  sc.checkins_per_day = 3.0;
  sc.shift_time_frac = 0.65;
  sc.shift_user_frac = 0.9;
  sc.shift_anchor_frac = 0.8;
  sc.seed = 99;
  data::SyntheticResult world = data::GenerateSynthetic(sc);
  data::PreprocessConfig pc;
  pc.min_users_per_location = 2;
  data::PreprocessedData pre = data::Preprocess(world.trajectories, pc);
  data::SplitConfig split;
  split.eval_samples.context_sessions = 5;
  const data::Dataset dataset = data::MakeDataset(pre, split);

  ModelConfig mc;
  mc.num_locations = dataset.num_locations;
  mc.num_users = dataset.num_users;
  mc.hidden_size = 16;
  mc.location_emb_dim = 8;
  mc.time_emb_dim = 4;
  mc.user_emb_dim = 4;
  mc.lambda = 0.5;
  AdaMove model(mc);
  TrainConfig tc;
  tc.max_epochs = 3;
  tc.max_val_samples = 100;
  model.Train(dataset, tc);

  const EvalResult frozen = model.EvaluateFrozen(dataset.test);
  const EvalResult tta = model.EvaluateTta(dataset.test);
  return GoldenMetrics{frozen.metrics.rec1,  frozen.metrics.rec5,
                       frozen.metrics.rec10, frozen.metrics.mrr,
                       tta.metrics.rec1,     tta.metrics.rec5,
                       tta.metrics.rec10,    tta.metrics.mrr,
                       tta.metrics.count};
}

/// %.17g: enough digits that a double survives the text round-trip exactly,
/// so "equal to golden" really means bit-equal.
std::string Format(const GoldenMetrics& m) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "frozen_rec1 %.17g\nfrozen_rec5 %.17g\nfrozen_rec10 %.17g\n"
                "frozen_mrr %.17g\ntta_rec1 %.17g\ntta_rec5 %.17g\n"
                "tta_rec10 %.17g\ntta_mrr %.17g\ncount %lld\n",
                m.frozen_rec1, m.frozen_rec5, m.frozen_rec10, m.frozen_mrr,
                m.tta_rec1, m.tta_rec5, m.tta_rec10, m.tta_mrr,
                static_cast<long long>(m.count));
  return buf;
}

TEST(GoldenDeterminismTest, PipelineIsThreadInvariantAndMatchesGolden) {
  common::SetKernelThreads(1);
  const GoldenMetrics single = RunPipeline();
  common::SetKernelThreads(8);
  const GoldenMetrics multi = RunPipeline();
  common::SetKernelThreads(0);  // restore the environment default

  // (a) Thread invariance, bit-for-bit (EXPECT_EQ on doubles, no tolerance).
  EXPECT_EQ(single.frozen_rec1, multi.frozen_rec1);
  EXPECT_EQ(single.frozen_rec5, multi.frozen_rec5);
  EXPECT_EQ(single.frozen_rec10, multi.frozen_rec10);
  EXPECT_EQ(single.frozen_mrr, multi.frozen_mrr);
  EXPECT_EQ(single.tta_rec1, multi.tta_rec1);
  EXPECT_EQ(single.tta_rec5, multi.tta_rec5);
  EXPECT_EQ(single.tta_rec10, multi.tta_rec10);
  EXPECT_EQ(single.tta_mrr, multi.tta_mrr);
  EXPECT_EQ(single.count, multi.count);

  // Sanity: the run trained a real model and adaptation did something.
  EXPECT_GT(single.count, 0);
  EXPECT_GT(single.frozen_rec10, 0.0);

  // (b) Pin against the checked-in golden file.
  const std::string golden_path =
      std::string(ADAMOVE_GOLDEN_DIR) + "/e2e_metrics.txt";
  const std::string actual = Format(single);
  if (std::getenv("ADAMOVE_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " — run with ADAMOVE_UPDATE_GOLDEN=1 once";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "metrics drifted from the golden pin; if the numeric change is "
         "intended, regenerate with ADAMOVE_UPDATE_GOLDEN=1";
}

}  // namespace
}  // namespace adamove::core
