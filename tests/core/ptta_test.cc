#include "core/ptta.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lightmob.h"
#include "data/point.h"

namespace adamove::core {
namespace {

// A deterministic classifier with hand-set weights for the algebraic tests.
class FixedClassifierFixture : public ::testing::Test {
 protected:
  FixedClassifierFixture() : rng_(1), classifier_(2, 3, rng_, true) {
    // Θ (H=2, L=3): column l = θ_l.
    // θ_0 = (1, 0), θ_1 = (0, 1), θ_2 = (1, 1)
    classifier_.weight().data() = {1, 0, 1,
                                   0, 1, 1};
    classifier_.bias().data() = {0, 0, 0};
  }
  common::Rng rng_;
  nn::Linear classifier_;
};

TEST_F(FixedClassifierFixture, WeightUpdateAveragesPatternsWithTheta) {
  // reps: three prefix patterns + the test pattern h_test = (1, 0).
  nn::Tensor reps = nn::Tensor::FromVector(
      {4, 2}, {1, 0,    // h_0, label 1
               0, 2,    // h_1, label 1
               3, 0,    // h_2, label 0
               1, 0});  // h_test
  PttaConfig config;  // PTTA: similarity importance, true labels
  config.capacity = 5;
  TestTimeAdapter adapter(config);
  AdapterStats stats;
  std::vector<float> adjusted =
      adapter.AdjustedWeights(reps, {1, 1, 0}, classifier_, &stats);
  EXPECT_EQ(stats.patterns_generated, 3);
  EXPECT_EQ(stats.columns_updated, 2);
  // θ'_0 = mean(θ_0=(1,0), h_2=(3,0)) = (2, 0)
  EXPECT_FLOAT_EQ(adjusted[0 * 3 + 0], 2.0f);
  EXPECT_FLOAT_EQ(adjusted[1 * 3 + 0], 0.0f);
  // θ'_1 = mean(θ_1=(0,1), h_0=(1,0), h_1=(0,2)) = (1/3, 1)
  EXPECT_NEAR(adjusted[0 * 3 + 1], 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(adjusted[1 * 3 + 1], 1.0f, 1e-6f);
  // θ'_2 untouched (no pattern labeled 2).
  EXPECT_FLOAT_EQ(adjusted[0 * 3 + 2], 1.0f);
  EXPECT_FLOAT_EQ(adjusted[1 * 3 + 2], 1.0f);
}

TEST_F(FixedClassifierFixture, CapacityKeepsMostSimilarPatterns) {
  // h_test = (1, 0). Patterns all labeled 0 with decreasing similarity:
  // (1,0) sim 1; (1,1) sim ~0.707; (0,1) sim 0.
  nn::Tensor reps = nn::Tensor::FromVector(
      {4, 2}, {1, 0, 1, 1, 0, 1, 1, 0});
  PttaConfig config;
  config.capacity = 2;  // keep the two most similar of the three
  TestTimeAdapter adapter(config);
  std::vector<float> adjusted =
      adapter.AdjustedWeights(reps, {0, 0, 0}, classifier_, nullptr);
  // Kept: (1,0) and (1,1); θ'_0 = mean((1,0), (1,0), (1,1)) = (1, 1/3).
  EXPECT_NEAR(adjusted[0 * 3 + 0], 1.0f, 1e-6f);
  EXPECT_NEAR(adjusted[1 * 3 + 0], 1.0f / 3.0f, 1e-6f);
}

TEST_F(FixedClassifierFixture, EntropyImportanceSelectsConfidentPatterns) {
  // Pattern (10,0): very confident (low entropy). Pattern (0.01, 0.01):
  // near-uniform logits (high entropy). With capacity 1 and entropy
  // importance, the confident one is kept.
  nn::Tensor reps = nn::Tensor::FromVector(
      {3, 2}, {10, 0, 0.01f, 0.01f, 1, 0});
  PttaConfig config;
  config.capacity = 1;
  config.similarity_importance = false;  // "w/ ent" variant
  TestTimeAdapter adapter(config);
  std::vector<float> adjusted =
      adapter.AdjustedWeights(reps, {0, 0}, classifier_, nullptr);
  // θ'_0 = mean(θ_0=(1,0), (10,0)) = (5.5, 0)
  EXPECT_NEAR(adjusted[0 * 3 + 0], 5.5f, 1e-5f);
  EXPECT_NEAR(adjusted[1 * 3 + 0], 0.0f, 1e-5f);
}

TEST(TopMBufferTest, LinearAndHeapKeepIdenticalSets) {
  common::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int capacity = 1 + static_cast<int>(rng.UniformInt(0, 7));
    TopMBuffer linear(capacity, /*use_heap=*/false);
    TopMBuffer heap(capacity, /*use_heap=*/true);
    const int n = 50;
    for (int i = 0; i < n; ++i) {
      const float imp = static_cast<float>(rng.Uniform(-1.0, 1.0));
      linear.Offer(imp, i);
      heap.Offer(imp, i);
    }
    auto a = linear.Ids();
    auto b = heap.Ids();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "trial " << trial;
    EXPECT_LE(static_cast<int>(a.size()), capacity);
  }
}

TEST(TopMBufferTest, KeepsLargestImportances) {
  TopMBuffer buf(2, false);
  buf.Offer(0.1f, 0);
  buf.Offer(0.9f, 1);
  buf.Offer(0.5f, 2);
  buf.Offer(0.7f, 3);
  auto ids = buf.Ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int>{1, 3}));
}

// --- End-to-end adapter behaviour on a real model -------------------------

class PttaModelTest : public ::testing::Test {
 protected:
  PttaModelTest() {
    config_.num_locations = 12;
    config_.num_users = 3;
    config_.hidden_size = 16;
    config_.location_emb_dim = 8;
    config_.time_emb_dim = 4;
    config_.user_emb_dim = 4;
    config_.lambda = 0.0;
    model_ = std::make_unique<LightMob>(config_);
  }

  data::Sample MakeSample(std::vector<int64_t> locations,
                          int64_t target) const {
    data::Sample s;
    s.user = 1;
    int64_t t = 1333238400;
    for (int64_t l : locations) {
      s.recent.push_back({s.user, l, t});
      t += 3 * data::kSecondsPerHour;
    }
    s.target = {s.user, target, t};
    return s;
  }

  ModelConfig config_;
  std::unique_ptr<LightMob> model_;
};

TEST_F(PttaModelTest, AdaptationBoostsRepeatedTrueLabel) {
  // Zero out location 7's classifier column: the frozen model can only give
  // it the bias. PTTA sees 7 as the true next location of several prefixes
  // whose patterns resemble the test pattern (same repeating trajectory),
  // so the adapted column — a centroid of those patterns — must score
  // strictly higher than the frozen column.
  nn::Tensor weight = model_->classifier().weight();
  const int64_t num_loc = model_->classifier().out_features();
  for (int64_t i = 0; i < model_->classifier().in_features(); ++i) {
    weight.data()[static_cast<size_t>(i * num_loc + 7)] = 0.0f;
  }
  data::Sample sample = MakeSample({2, 7, 2, 7, 2, 7, 2}, 7);
  std::vector<float> frozen = model_->Scores(sample);
  TestTimeAdapter adapter(PttaConfig{});
  std::vector<float> adapted = adapter.Predict(*model_, sample);
  EXPECT_GT(adapted[7], frozen[7]);
  // Columns with no labeled pattern are untouched (e.g. location 0).
  EXPECT_FLOAT_EQ(adapted[0], frozen[0]);
}

TEST_F(PttaModelTest, SingletonTrajectoryFallsBackToFrozen) {
  data::Sample sample = MakeSample({4}, 5);
  TestTimeAdapter adapter(PttaConfig{});
  std::vector<float> adapted = adapter.Predict(*model_, sample);
  std::vector<float> frozen = model_->Scores(sample);
  ASSERT_EQ(adapted.size(), frozen.size());
  for (size_t i = 0; i < adapted.size(); ++i) {
    EXPECT_NEAR(adapted[i], frozen[i], 1e-4f);
  }
}

TEST_F(PttaModelTest, AdapterDoesNotMutateModel) {
  data::Sample sample = MakeSample({2, 7, 2, 7, 2}, 7);
  const std::vector<float> weights_before =
      model_->classifier().weight().data();
  TestTimeAdapter adapter(PttaConfig{});
  adapter.Predict(*model_, sample);
  EXPECT_EQ(model_->classifier().weight().data(), weights_before);
}

TEST_F(PttaModelTest, VariantsProduceDifferentScores) {
  data::Sample sample = MakeSample({2, 7, 3, 7, 2, 9, 2}, 7);
  PttaConfig ptta;                       // similarity + true labels
  PttaConfig ent = ptta;
  ent.similarity_importance = false;     // w/ ent
  ent.capacity = 1;
  PttaConfig pseudo = ptta;
  pseudo.use_true_labels = false;        // w/ pseudo-label
  const auto s_ptta = TestTimeAdapter(ptta).Predict(*model_, sample);
  const auto s_ent = TestTimeAdapter(ent).Predict(*model_, sample);
  const auto s_pseudo = TestTimeAdapter(pseudo).Predict(*model_, sample);
  EXPECT_NE(s_ptta, s_pseudo);
  EXPECT_NE(s_ptta, s_ent);
}

TEST_F(PttaModelTest, T3aConfigIsPseudoLabelPlusEntropy) {
  PttaConfig t3a = T3aConfig(7);
  EXPECT_FALSE(t3a.similarity_importance);
  EXPECT_FALSE(t3a.use_true_labels);
  EXPECT_EQ(t3a.capacity, 7);
}

TEST_F(PttaModelTest, HeapKnowledgeBaseAgreesWithLinearScan) {
  // PttaConfig::use_heap swaps the knowledge-base maintenance structure,
  // never its contents: predictions must agree with the linear scan.
  data::Sample sample = MakeSample({2, 7, 3, 7, 2, 9, 2, 7, 9}, 7);
  PttaConfig linear;  // use_heap = false
  PttaConfig heap = linear;
  heap.use_heap = true;
  AdapterStats linear_stats, heap_stats;
  const auto s_linear =
      TestTimeAdapter(linear).Predict(*model_, sample, &linear_stats);
  const auto s_heap =
      TestTimeAdapter(heap).Predict(*model_, sample, &heap_stats);
  ASSERT_EQ(s_linear.size(), s_heap.size());
  for (size_t i = 0; i < s_linear.size(); ++i) {
    // The kept sets are identical but their iteration order may differ, so
    // the centroid sums can differ in the last ulp.
    EXPECT_FLOAT_EQ(s_linear[i], s_heap[i]) << "location " << i;
  }
  EXPECT_EQ(linear_stats.columns_updated, heap_stats.columns_updated);
  EXPECT_EQ(linear_stats.weight_bytes_touched,
            heap_stats.weight_bytes_touched);

  // Same agreement for the materializing entry point, with a capacity small
  // enough that the buffers actually evict.
  linear.capacity = heap.capacity = 2;
  nn::Tensor reps = model_->PrefixRepresentations(sample);
  std::vector<int64_t> labels;
  for (size_t k = 1; k < sample.recent.size(); ++k) {
    labels.push_back(sample.recent[k].location);
  }
  const auto w_linear = TestTimeAdapter(linear).AdjustedWeights(
      reps, labels, model_->classifier(), nullptr);
  const auto w_heap = TestTimeAdapter(heap).AdjustedWeights(
      reps, labels, model_->classifier(), nullptr);
  ASSERT_EQ(w_linear.size(), w_heap.size());
  for (size_t i = 0; i < w_linear.size(); ++i) {
    EXPECT_FLOAT_EQ(w_linear[i], w_heap[i]) << "index " << i;
  }
}

TEST_F(PttaModelTest, SparsePredictMatchesMaterializedAdjustedWeights) {
  // Predict() rebuilds only the adjusted columns; scoring the fully
  // materialized Θ' must give the same result.
  data::Sample sample = MakeSample({2, 7, 3, 7, 2, 9, 2}, 7);
  TestTimeAdapter adapter(PttaConfig{});
  AdapterStats predict_stats;
  const std::vector<float> sparse =
      adapter.Predict(*model_, sample, &predict_stats);

  nn::Tensor reps = model_->PrefixRepresentations(sample);
  std::vector<int64_t> labels;
  for (size_t k = 1; k < sample.recent.size(); ++k) {
    labels.push_back(sample.recent[k].location);
  }
  AdapterStats full_stats;
  const std::vector<float> adjusted = adapter.AdjustedWeights(
      reps, labels, model_->classifier(), &full_stats);
  const int64_t hidden = reps.cols();
  const int64_t num_loc = model_->classifier().out_features();
  const float* h_test = reps.data().data() + (reps.rows() - 1) * hidden;
  const auto& bias = model_->classifier().bias().data();
  for (int64_t l = 0; l < num_loc; ++l) {
    float acc = 0.0f;
    for (int64_t i = 0; i < hidden; ++i) {
      if (h_test[i] == 0.0f) continue;
      acc += h_test[i] * adjusted[static_cast<size_t>(i * num_loc + l)];
    }
    EXPECT_FLOAT_EQ(sparse[static_cast<size_t>(l)],
                    acc + bias[static_cast<size_t>(l)])
        << "location " << l;
  }

  // The sparse path touches columns_updated * H * 4 bytes — strictly fewer
  // than the full {H, L} copy the materializing path reports.
  EXPECT_EQ(predict_stats.columns_updated, full_stats.columns_updated);
  EXPECT_EQ(predict_stats.weight_bytes_touched,
            predict_stats.columns_updated * hidden *
                static_cast<int64_t>(sizeof(float)));
  EXPECT_EQ(full_stats.weight_bytes_touched,
            hidden * num_loc * static_cast<int64_t>(sizeof(float)));
  EXPECT_LT(predict_stats.weight_bytes_touched,
            full_stats.weight_bytes_touched);
}

TEST_F(PttaModelTest, DeterministicAcrossCalls) {
  data::Sample sample = MakeSample({1, 2, 3, 4, 5, 6}, 3);
  TestTimeAdapter adapter(PttaConfig{});
  EXPECT_EQ(adapter.Predict(*model_, sample),
            adapter.Predict(*model_, sample));
}

}  // namespace
}  // namespace adamove::core
