#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "serve/adapt_scheduler.h"
#include "serve/load_gen.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"

namespace adamove::serve {
namespace {

using common::FaultRegistry;
using common::FaultSpec;

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 8;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<data::Sample> MakeStream(int users, int steps_per_user) {
  std::vector<data::Sample> stream;
  for (int u = 0; u < users; ++u) {
    std::vector<data::Point> window;
    int64_t t = 1333238400 + u * 100;
    for (int s = 0; s < steps_per_user; ++s) {
      const int64_t loc = (u + s) % 12;
      window.push_back({u, loc, t});
      if (static_cast<int>(window.size()) > 6) window.erase(window.begin());
      data::Sample sample;
      sample.user = u;
      sample.recent = window;
      t += 3 * data::kSecondsPerHour;
      sample.target = {u, (u + s + 1) % 12, t};
      stream.push_back(sample);
    }
  }
  return stream;
}

bool AllFinite(const std::vector<float>& scores) {
  for (float s : scores) {
    if (!std::isfinite(s)) return false;
  }
  return true;
}

/// One user's complete stored state as comparable bytes (pending included —
/// EncodeUser appends the dirty section), via the extraction primitive.
std::string StoreUserBytes(SessionStore& store, int64_t user) {
  core::OnlineAdapter::UserSnapshot snap;
  if (!store.ExtractUser(user, &snap)) return {};
  std::string bytes;
  core::OnlineAdapter::EncodeUser(snap, &bytes);
  return bytes;
}

constexpr const char* kAdaptEnvKnobs[] = {
    "ADAMOVE_ADAPT_MODE",      "ADAMOVE_ADAPT_HIGH",
    "ADAMOVE_ADAPT_LOW",       "ADAMOVE_ADAPT_EWMA",
    "ADAMOVE_ADAPT_MAX_STALE", "ADAMOVE_ADAPT_DRAIN_USERS",
};

/// Owns the process-global fault registry AND the ADAMOVE_ADAPT_* process
/// environment: both are cleared on both sides of every test so a failure
/// in one case cannot leak chaos (or a scheduler override) into the next.
class OverloadChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    FaultRegistry::Instance().SetSeed(7);
    for (const char* knob : kAdaptEnvKnobs) unsetenv(knob);
  }
  void TearDown() override {
    FaultRegistry::Instance().DisarmAll();
    for (const char* knob : kAdaptEnvKnobs) unsetenv(knob);
  }
};

/// The pressure signal itself: trips at the high watermark, holds through
/// the hysteresis band, recovers only at the low watermark, and counts each
/// crossing exactly once. Both saturation arms (queue depth and oldest
/// wait) are exercised.
TEST_F(OverloadChaosTest, PressureGaugeTripsWithHysteresisAndCountsSwitches) {
  AdaptSchedulerConfig config;
  config.high_watermark = 0.75;
  config.low_watermark = 0.35;
  config.ewma_alpha = 1.0;  // raw instantaneous pressure: exact thresholds
  PressureGauge gauge(config);

  EXPECT_FALSE(gauge.deferred());
  gauge.Update(50, 100, 0.0, 1000.0);  // 0.50: below high -> still inline
  EXPECT_FALSE(gauge.deferred());
  gauge.Update(80, 100, 0.0, 1000.0);  // 0.80: trips
  EXPECT_TRUE(gauge.deferred());
  EXPECT_EQ(gauge.mode_switches(), 1u);
  gauge.Update(50, 100, 0.0, 1000.0);  // 0.50: inside the band -> holds
  EXPECT_TRUE(gauge.deferred());
  EXPECT_EQ(gauge.mode_switches(), 1u);
  gauge.Update(10, 100, 0.0, 1000.0);  // 0.10: at/below low -> recovers
  EXPECT_FALSE(gauge.deferred());
  EXPECT_EQ(gauge.mode_switches(), 2u);
  // The wait arm saturates the gauge even with an empty queue.
  gauge.Update(0, 100, 900.0, 1000.0);  // max(0.0, 0.9) = 0.9: trips again
  EXPECT_TRUE(gauge.deferred());
  EXPECT_EQ(gauge.mode_switches(), 3u);

  // EWMA smoothing: with alpha 0.5 a single saturated report (1.0 from 0)
  // lands at 0.5 — under the high watermark — and only a sustained overload
  // trips the gauge. One calm report then cannot recover it on its own.
  AdaptSchedulerConfig smooth = config;
  smooth.ewma_alpha = 0.5;
  PressureGauge slow(smooth);
  slow.Update(100, 100, 0.0, 1000.0);  // ewma 0.5: not tripped
  EXPECT_FALSE(slow.deferred());
  slow.Update(100, 100, 0.0, 1000.0);  // ewma 0.75: tripped
  EXPECT_TRUE(slow.deferred());
  slow.Update(0, 100, 0.0, 1000.0);  // ewma 0.375: inside the band, holds
  EXPECT_TRUE(slow.deferred());
  slow.Update(0, 100, 0.0, 1000.0);  // ewma 0.1875: recovers
  EXPECT_FALSE(slow.deferred());
}

/// ADAMOVE_ADAPT_* resolution: every knob overrides its config field, kAuto
/// resolves through the env (defaulting to the legacy inline mode), and an
/// unknown mode string fails safe to inline.
TEST_F(OverloadChaosTest, AdaptConfigResolvesEnvironmentKnobs) {
  // Unconfigured: kAuto resolves to the legacy bit-identical path.
  EXPECT_EQ(AdaptSchedulerConfig{}.Resolve().mode, AdaptMode::kInline);

  setenv("ADAMOVE_ADAPT_MODE", "elastic", 1);
  setenv("ADAMOVE_ADAPT_HIGH", "0.9", 1);
  setenv("ADAMOVE_ADAPT_LOW", "0.1", 1);
  setenv("ADAMOVE_ADAPT_EWMA", "0.5", 1);
  setenv("ADAMOVE_ADAPT_MAX_STALE", "17", 1);
  setenv("ADAMOVE_ADAPT_DRAIN_USERS", "9", 1);
  const AdaptSchedulerConfig resolved = AdaptSchedulerConfig{}.Resolve();
  EXPECT_EQ(resolved.mode, AdaptMode::kElastic);
  EXPECT_DOUBLE_EQ(resolved.high_watermark, 0.9);
  EXPECT_DOUBLE_EQ(resolved.low_watermark, 0.1);
  EXPECT_DOUBLE_EQ(resolved.ewma_alpha, 0.5);
  EXPECT_EQ(resolved.max_stale, 17u);
  EXPECT_EQ(resolved.drain_users_per_batch, 9u);

  // An explicit (non-kAuto) config mode wins over the environment.
  AdaptSchedulerConfig pinned;
  pinned.mode = AdaptMode::kDeferredAlways;
  EXPECT_EQ(pinned.Resolve().mode, AdaptMode::kDeferredAlways);

  setenv("ADAMOVE_ADAPT_MODE", "deferred", 1);
  EXPECT_EQ(AdaptSchedulerConfig{}.Resolve().mode, AdaptMode::kDeferredAlways);
  setenv("ADAMOVE_ADAPT_MODE", "sideways", 1);  // unknown -> fail safe
  EXPECT_EQ(AdaptSchedulerConfig{}.Resolve().mode, AdaptMode::kInline);

  // The band is clamped into sanity: low is capped at high, alpha into
  // (0, 1], so a hostile environment cannot wedge the gauge.
  setenv("ADAMOVE_ADAPT_LOW", "5.0", 1);
  setenv("ADAMOVE_ADAPT_HIGH", "0.6", 1);
  setenv("ADAMOVE_ADAPT_EWMA", "7.0", 1);
  const AdaptSchedulerConfig clamped = AdaptSchedulerConfig{}.Resolve();
  EXPECT_LE(clamped.low_watermark, clamped.high_watermark);
  EXPECT_LE(clamped.ewma_alpha, 1.0);
}

/// THE tentpole invariant, end to end through the service: a fully deferred
/// run — every request answered from stale cached state, every ingest
/// buffered — converges, after one drain, to per-user state that is
/// byte-for-byte identical to the inline run of the same request sequence.
TEST_F(OverloadChaosTest, DeferredRunDrainsToInlineBitIdenticalState) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(4, 12);

  // Inline reference: the legacy path over the same sequence.
  SessionStore inline_store{SessionStoreConfig{}};
  {
    ServiceConfig config;
    config.workers = 1;
    config.max_batch = 1;
    config.adapt.mode = AdaptMode::kInline;
    PredictionService service(model, inline_store, config);
    for (const auto& sample : stream) {
      const Prediction p = service.Submit(sample).get();
      EXPECT_EQ(p.outcome, RequestOutcome::kOk);
      EXPECT_FALSE(p.stale_adapt);
    }
    service.Shutdown();
    EXPECT_EQ(service.Stats().stale_adapt_requests, 0u);
    EXPECT_EQ(service.Stats().deferred_ingests, 0u);
  }

  // Deferred run: same sequence, every adapt-path request deferred.
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.adapt.mode = AdaptMode::kDeferredAlways;
  PredictionService service(model, store, config);
  size_t stale_seen = 0;
  uint32_t max_depth = 0;
  for (const auto& sample : stream) {
    const Prediction p = service.Submit(sample).get();
    // A stale answer is still a valid on-time adapted response: kOk, with
    // the deferral flagged out of band.
    EXPECT_EQ(p.outcome, RequestOutcome::kOk);
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
    if (p.stale_adapt) {
      ++stale_seen;
      max_depth = std::max(max_depth, p.stale_depth);
    }
  }
  service.Shutdown();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.stale_adapt_requests, stale_seen);
  EXPECT_GT(stats.stale_adapt_requests, 0u);
  EXPECT_GT(stats.deferred_ingests, 0u);
  EXPECT_EQ(stats.stale_depth.Count(), stale_seen);
  EXPECT_EQ(static_cast<uint32_t>(stats.stale_depth.MaxUs()), max_depth);
  EXPECT_GT(store.DirtyUserCount(), 0u);
  EXPECT_GT(store.PendingDeltaCount(), 0u);

  // Pressure "subsides" (the run ended); one full drain must leave zero
  // deferred residue and bit-identical per-user state.
  store.DrainDirtyUsers(0);
  EXPECT_EQ(store.DirtyUserCount(), 0u);
  EXPECT_EQ(store.PendingDeltaCount(), 0u);
  for (int64_t user = 0; user < 4; ++user) {
    const std::string drained = StoreUserBytes(store, user);
    const std::string reference = StoreUserBytes(inline_store, user);
    ASSERT_FALSE(reference.empty()) << "user " << user;
    EXPECT_EQ(drained, reference) << "user " << user;
  }
}

/// Bounded staleness by construction: with a tiny max_stale, a deferred
/// predict that finds the buffer at the bound is forced inline (drain +
/// fresh rebuild), so the observed staleness depth can never run away even
/// in kDeferredAlways.
TEST_F(OverloadChaosTest, MaxStaleBoundForcesInlineRebuilds) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.adapt.mode = AdaptMode::kDeferredAlways;
  config.adapt.max_stale = 4;
  PredictionService service(model, store, config);

  // One user, many requests: without the bound the pending buffer would
  // grow with every request.
  const std::vector<data::Sample> stream = MakeStream(1, 30);
  for (const auto& sample : stream) {
    const Prediction p = service.Submit(sample).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kOk);
  }
  service.Shutdown();

  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.forced_inline_rebuilds, 0u);
  EXPECT_GT(stats.stale_adapt_requests, 0u);
  // Depth is sampled after the request buffers its own transitions, so the
  // reachable maximum is (max_stale - 1) + the per-request transition count
  // (the rolling window holds at most 6 points -> at most 5 transitions).
  EXPECT_LE(stats.stale_depth.MaxUs(), 4.0 - 1.0 + 5.0);
  // The bound also caps the live buffer itself.
  EXPECT_LE(store.PendingDeltaCount(), 4u + 5u);
}

/// `serve.adapt_schedule` chaos: a misfiring scheduler defers every batch
/// even though the gauge reads calm. The fault must only ever cost
/// freshness — never an observation: after the fault clears and the store
/// drains, per-user state is bit-identical to the inline run.
TEST_F(OverloadChaosTest, SchedulerMisfireFaultDefersButLosesNothing) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(4, 10);

  SessionStore inline_store{SessionStoreConfig{}};
  {
    ServiceConfig config;
    config.workers = 1;
    config.max_batch = 1;
    config.adapt.mode = AdaptMode::kInline;
    PredictionService service(model, inline_store, config);
    for (const auto& sample : stream) (void)service.Submit(sample).get();
    service.Shutdown();
  }

  FaultRegistry::Instance().Arm("serve.adapt_schedule", FaultSpec{1.0, 0, true});
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.adapt.mode = AdaptMode::kElastic;
  config.adapt.high_watermark = 1e9;  // the gauge itself can never trip
  config.adapt.drain_users_per_batch = 0;  // no background catch-up either
  PredictionService service(model, store, config);
  for (const auto& sample : stream) {
    const Prediction p = service.Submit(sample).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kOk);
    EXPECT_TRUE(p.stale_adapt);  // every batch misfired into deferral
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
  }
  service.Shutdown();
  EXPECT_FALSE(service.adapt_deferred());  // the gauge stayed calm throughout
  EXPECT_EQ(service.Stats().adapt_mode_switches, 0u);
  EXPECT_EQ(service.Stats().stale_adapt_requests, stream.size());
  EXPECT_GT(
      FaultRegistry::Instance().StatsFor("serve.adapt_schedule").evaluations,
      0u);

  FaultRegistry::Instance().DisarmAll();
  store.DrainDirtyUsers(0);
  EXPECT_EQ(store.DirtyUserCount(), 0u);
  EXPECT_EQ(store.PendingDeltaCount(), 0u);
  for (int64_t user = 0; user < 4; ++user) {
    const std::string drained = StoreUserBytes(store, user);
    const std::string reference = StoreUserBytes(inline_store, user);
    ASSERT_FALSE(reference.empty()) << "user " << user;
    EXPECT_EQ(drained, reference) << "user " << user;
  }
}

/// Headline acceptance: true open-loop bursts at three intensities against
/// an elastic service with the scheduler fault armed at a partial rate.
/// Arrivals, completions, sheds and source drops must balance exactly on
/// both sides of the admission boundary, delivered scores stay finite, and
/// after every burst one drain clears all deferred residue.
TEST_F(OverloadChaosTest, OpenLoopBurstsKeepExactAccountingUnderChaos) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream =
      BuildReplayStream(MakeStream(8, 25), /*min_requests=*/600);

  FaultRegistry::Instance().Arm("serve.adapt_schedule", FaultSpec{0.2, 0, true});

  uint64_t stale_total = 0;
  const double rates[] = {2000.0, 8000.0, 32000.0};
  for (const double qps : rates) {
    SessionStore store{SessionStoreConfig{}};
    ServiceConfig config;
    config.workers = 2;
    config.max_batch = 8;
    config.max_wait_us = 500;
    config.queue_capacity = 32;
    config.adapt.mode = AdaptMode::kElastic;
    // An aggressive band so the burst genuinely exercises pressure-driven
    // deferral (trip at 5% queue occupancy) on top of the armed fault.
    config.adapt.high_watermark = 0.05;
    config.adapt.low_watermark = 0.02;
    config.adapt.ewma_alpha = 1.0;
    PredictionService service(model, store, config);

    LoadGenConfig lg;
    lg.open_loop = true;
    lg.target_qps = qps;
    lg.clients = 4;
    lg.max_requests = 600;
    lg.max_in_flight = 64;
    lg.track_hits = true;
    const LoadGenResult result = RunLoadGen(service, stream, lg);
    service.Shutdown();

    // Generator-side ledger: every scheduled arrival is delivered, shed at
    // admission, or dropped at the source — nothing vanishes.
    EXPECT_EQ(result.arrivals, 600u) << "qps " << qps;
    EXPECT_EQ(result.arrivals,
              result.completed + result.shed + result.dropped_arrivals)
        << "qps " << qps;
    EXPECT_GT(result.completed, 0u) << "qps " << qps;
    EXPECT_LE(result.hits, result.scored);
    EXPECT_LE(result.scored, result.completed);

    // Service-side ledger mirrors it exactly (source drops never submitted).
    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.accounted(), result.completed + result.shed)
        << "qps " << qps;
    EXPECT_EQ(stats.completed, result.completed) << "qps " << qps;
    EXPECT_EQ(stats.stale_adapt_requests, stats.stale_depth.Count());
    stale_total += stats.stale_adapt_requests;

    // Post-burst convergence: one drain, zero deferred residue.
    store.DrainDirtyUsers(0);
    EXPECT_EQ(store.DirtyUserCount(), 0u) << "qps " << qps;
    EXPECT_EQ(store.PendingDeltaCount(), 0u) << "qps " << qps;
  }

  // Across three bursts the deferral rung must actually have been used —
  // the armed fault alone guarantees it statistically (~75+ batches/run).
  EXPECT_GT(stale_total, 0u);
  EXPECT_GT(
      FaultRegistry::Instance().StatsFor("serve.adapt_schedule").evaluations,
      0u);
  EXPECT_GT(FaultRegistry::Instance().StatsFor("serve.adapt_schedule").fired,
            0u);
}

}  // namespace
}  // namespace adamove::serve
