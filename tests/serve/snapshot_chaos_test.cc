#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/durable_io.h"
#include "common/fault_injection.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"

namespace adamove::serve {
namespace {

using common::FaultRegistry;
using common::FaultSpec;

/// Crash-safe snapshot/restore chaos suite (DESIGN.md §11). The acceptance
/// contract: recovery is bit-identical to the last durable snapshot, or a
/// cleanly detected corruption/torn-tail fallback — never UB, never a
/// half-imported user, and a failed commit never damages the previous
/// durable generation.

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 8;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<float> Pattern(int user, int step) {
  std::vector<float> p(8, 0.0f);
  p[static_cast<size_t>(user % 8)] = 1.0f;
  p[static_cast<size_t>(step % 8)] += 0.5f + 0.01f * static_cast<float>(step);
  return p;
}

/// Deterministic store population: `steps` observations per user across a
/// few locations.
void Populate(SessionStore& store, int users, int steps, int step0 = 0) {
  for (int u = 0; u < users; ++u) {
    for (int s = step0; s < step0 + steps; ++s) {
      store.Observe(u, Pattern(u, s), (u + s) % 12,
                    1000000 + s * 3600 + u);
    }
  }
}

data::Sample MakeSample(int user, int steps) {
  data::Sample sample;
  sample.user = user;
  int64_t t = 1333238400 + user * 100;
  for (int s = 0; s < steps; ++s) {
    sample.recent.push_back({user, (user + s) % 12, t});
    t += 3 * data::kSecondsPerHour;
  }
  sample.target = {user, (user + steps) % 12, t};
  return sample;
}

std::string ReadAllOrDie(const std::string& path) {
  std::string bytes;
  common::IoResult r = common::ReadFileAll(path, &bytes);
  EXPECT_TRUE(r) << r.error;
  return bytes;
}

/// Byte offset where frame `index`'s payload begins (after its 8-byte
/// header), computed from the parsed frame sizes — so corruption tests can
/// aim at a provably-payload byte instead of guessing.
size_t PayloadOffsetOfFrame(const std::string& path, size_t index) {
  common::FramedRead framed;
  common::IoResult r =
      common::ReadFramedFile(path, kSnapshotMagic, &framed);
  EXPECT_TRUE(r) << r.error;
  EXPECT_GT(framed.frames.size(), index);
  size_t offset = 4;  // magic
  for (size_t f = 0; f < index; ++f) {
    offset += 8 + framed.frames[f].size();
  }
  return offset + 8;
}

class SnapshotChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    FaultRegistry::Instance().SetSeed(7);
  }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(SnapshotChaosTest, SnapshotRestoreRoundTripIsBitIdentical) {
  const std::string path = TempPath("adamove_snap_roundtrip.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 6, 10);

  SnapshotStats written;
  ASSERT_TRUE(store.Snapshot(path, &written));
  EXPECT_EQ(written.users, 6u);
  EXPECT_EQ(written.patterns, 60u);
  EXPECT_EQ(written.bytes, std::filesystem::file_size(path));

  // Identical state encodes to identical bytes (the determinism that makes
  // "bit-identical recovery" testable at all).
  const std::string path2 = TempPath("adamove_snap_roundtrip2.bin");
  ASSERT_TRUE(store.Snapshot(path2));
  EXPECT_EQ(ReadAllOrDie(path), ReadAllOrDie(path2));

  // Restore into a fresh store: per-user state and re-encoded bytes match.
  SessionStore restored{SessionStoreConfig{}};
  SnapshotStats read;
  common::IoResult r = restored.Restore(path, &read);
  ASSERT_TRUE(r) << r.error;
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.users, 6u);
  EXPECT_EQ(read.patterns, 60u);
  EXPECT_EQ(restored.UserCount(), 6u);
  for (int u = 0; u < 6; ++u) {
    EXPECT_EQ(restored.PatternCount(u), store.PatternCount(u)) << u;
  }
  const std::string path3 = TempPath("adamove_snap_roundtrip3.bin");
  ASSERT_TRUE(restored.Snapshot(path3));
  EXPECT_EQ(ReadAllOrDie(path), ReadAllOrDie(path3));

  std::remove(path.c_str());
  std::remove(path2.c_str());
  std::remove(path3.c_str());
}

TEST_F(SnapshotChaosTest, FailedCommitLeavesPreviousSnapshotIntact) {
  const std::string path = TempPath("adamove_snap_failed_commit.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 4, 6);
  ASSERT_TRUE(store.Snapshot(path));
  const std::string durable = ReadAllOrDie(path);

  // The store moves on; each subsequent commit attempt fails at a different
  // stage. The durable file must stay byte-identical through all of them.
  Populate(store, 4, 6, /*step0=*/6);
  for (const char* point : {"io.snapshot_write", "io.snapshot_fsync"}) {
    FaultRegistry::Instance().Arm(point, FaultSpec{1.0, 0, true});
    common::IoResult r = store.Snapshot(path);
    FaultRegistry::Instance().DisarmAll();
    EXPECT_FALSE(r) << point;
    EXPECT_EQ(ReadAllOrDie(path), durable) << point;
    EXPECT_FALSE(std::filesystem::exists(common::TempPathFor(path)))
        << point;
  }

  // Recovery after the failed commits lands exactly on the last durable
  // generation — the 4-user, 6-pattern state, not the in-memory 12.
  SessionStore recovered{SessionStoreConfig{}};
  ASSERT_TRUE(recovered.Restore(path));
  for (int u = 0; u < 4; ++u) {
    EXPECT_EQ(recovered.PatternCount(u), 6u) << u;
  }
  std::remove(path.c_str());
}

/// Headline acceptance: io.snapshot_write / io.snapshot_fsync /
/// io.snapshot_read armed at 10% while snapshots, restores, and state
/// mutation interleave. Invariant at every step: a restore (when its read
/// side survives) recovers state bit-identical to the last snapshot that
/// committed durably — never a blend, never a partial user, never a crash.
TEST_F(SnapshotChaosTest, ChaosLoopRecoversLastDurableSnapshotBitIdentical) {
  const std::string path = TempPath("adamove_snap_chaos.bin");
  const std::string verify = TempPath("adamove_snap_chaos_verify.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 5, 4);
  ASSERT_TRUE(store.Snapshot(path));  // generation 0, pre-chaos
  std::string durable = ReadAllOrDie(path);

  for (const char* point :
       {"io.snapshot_write", "io.snapshot_fsync", "io.snapshot_read"}) {
    FaultRegistry::Instance().Arm(point, FaultSpec{0.1, 0, true});
  }

  int commits = 0, commit_failures = 0, read_failures = 0;
  for (int iter = 0; iter < 40; ++iter) {
    Populate(store, 5, 1, /*step0=*/4 + iter);
    SnapshotStats stats;
    if (store.Snapshot(path, &stats)) {
      ++commits;
      // Capture the new durable generation with the fault layer quiesced so
      // the oracle itself cannot fail; re-arm for the next iteration.
      FaultRegistry::Instance().Disarm("io.snapshot_read");
      durable = ReadAllOrDie(path);
      FaultRegistry::Instance().Arm("io.snapshot_read",
                                    FaultSpec{0.1, 0, true});
      EXPECT_EQ(stats.bytes, durable.size());
    } else {
      ++commit_failures;
    }

    if (iter % 4 == 3) {
      SessionStore recovered{SessionStoreConfig{}};
      SnapshotStats rs;
      common::IoResult r = recovered.Restore(path, &rs);
      if (!r) {
        // Only the injected read fault may fail a restore here: the file on
        // disk is always a complete durable generation.
        EXPECT_NE(r.error.find("io.snapshot_read"), std::string::npos)
            << r.error;
        ++read_failures;
        continue;
      }
      EXPECT_FALSE(rs.torn_tail);
      // Bit-identical recovery: re-encoding the recovered state reproduces
      // the durable file exactly. Quiesce via per-point Disarm (NOT
      // DisarmAll, which would drop the evaluation counters and restart
      // every point's deterministic fire sequence at index 0).
      for (const char* point :
           {"io.snapshot_write", "io.snapshot_fsync", "io.snapshot_read"}) {
        FaultRegistry::Instance().Disarm(point);
      }
      ASSERT_TRUE(recovered.Snapshot(verify));
      EXPECT_EQ(ReadAllOrDie(verify), durable) << "iter " << iter;
      for (const char* point :
           {"io.snapshot_write", "io.snapshot_fsync", "io.snapshot_read"}) {
        FaultRegistry::Instance().Arm(point, FaultSpec{0.1, 0, true});
      }
    }
  }
  FaultRegistry::Instance().DisarmAll();
  // The loop must have exercised both outcomes, or it tested nothing.
  EXPECT_GT(commits, 0);
  EXPECT_GT(commit_failures + read_failures, 0);
  std::remove(path.c_str());
  std::remove(verify.c_str());
}

TEST_F(SnapshotChaosTest, TornTailRecoversTheVerifiedPrefix) {
  const std::string path = TempPath("adamove_snap_torn.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 6, 5);
  SnapshotStats written;
  ASSERT_TRUE(store.Snapshot(path, &written));
  const std::string full = ReadAllOrDie(path);

  // Cut the file a few bytes into user frame 4's payload (frames: header,
  // then one per user): the verified prefix — header + 3 whole users — is
  // imported, the torn tail is reported, and no user is half-imported:
  // every restored user carries their complete 5 patterns.
  const size_t cut = PayloadOffsetOfFrame(path, 4) + 3;
  ASSERT_TRUE(common::WriteFileAtomic(
      path, std::string_view(full).substr(0, cut)));
  SessionStore recovered{SessionStoreConfig{}};
  SnapshotStats rs;
  common::IoResult r = recovered.Restore(path, &rs);
  ASSERT_TRUE(r) << r.error;
  EXPECT_TRUE(rs.torn_tail);
  EXPECT_LT(rs.users, written.users);
  EXPECT_EQ(recovered.UserCount(), rs.users);
  for (int u = 0; u < 6; ++u) {
    const size_t n = recovered.PatternCount(u);
    EXPECT_TRUE(n == 0u || n == 5u) << "user " << u << " half-imported";
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotChaosTest, CorruptFrameSalvagesPrefixAndNamesTheDamage) {
  const std::string path = TempPath("adamove_snap_flip.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 6, 5);
  ASSERT_TRUE(store.Snapshot(path));
  std::string bytes = ReadAllOrDie(path);

  // Flip one payload bit inside user frame 4: restore reports the CRC
  // error, yet every user before the damage is salvaged whole.
  bytes[PayloadOffsetOfFrame(path, 4) + 5] ^= 0x10;
  ASSERT_TRUE(common::WriteFileAtomic(path, bytes));
  SessionStore recovered{SessionStoreConfig{}};
  SnapshotStats rs;
  common::IoResult r = recovered.Restore(path, &rs);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("crc32c"), std::string::npos) << r.error;
  EXPECT_GT(rs.users, 0u);
  EXPECT_LT(rs.users, 6u);
  EXPECT_EQ(recovered.UserCount(), rs.users);
  for (int u = 0; u < 6; ++u) {
    const size_t n = recovered.PatternCount(u);
    EXPECT_TRUE(n == 0u || n == 5u) << "user " << u;
  }
  std::remove(path.c_str());
}

TEST_F(SnapshotChaosTest, StaleTempFileFromACrashedCommitIsIgnored) {
  const std::string path = TempPath("adamove_snap_stale_tmp.bin");
  SessionStore store{SessionStoreConfig{}};
  Populate(store, 3, 4);
  ASSERT_TRUE(store.Snapshot(path));
  const std::string durable = ReadAllOrDie(path);

  // A crash between temp write and rename leaves `<path>.tmp` behind.
  // Restore must read only the durable path, and the next successful
  // commit replaces both.
  ASSERT_TRUE(common::WriteFileAtomic(common::TempPathFor(path),
                                      "garbage from a dead writer"));
  // (WriteFileAtomic to the temp path stages through `<path>.tmp.tmp`;
  // what matters is that `<path>.tmp` now holds garbage.)
  SessionStore recovered{SessionStoreConfig{}};
  ASSERT_TRUE(recovered.Restore(path));
  EXPECT_EQ(recovered.UserCount(), 3u);

  Populate(store, 3, 1, /*step0=*/4);
  ASSERT_TRUE(store.Snapshot(path));
  EXPECT_NE(ReadAllOrDie(path), durable);
  EXPECT_FALSE(std::filesystem::exists(common::TempPathFor(path)));
  std::remove(path.c_str());
}

/// Warm start through the full service: not-yet-restored users are served
/// the frozen base model as kDegraded (exact accounting via
/// warm_start_fallbacks), restored users get the adapted path, and no
/// fresh state is created for pending users that a late frame would
/// clobber.
TEST_F(SnapshotChaosTest, WarmStartServesFrozenUntilUserIsRestored) {
  const std::string path = TempPath("adamove_snap_warm.bin");
  core::LightMob model(SmallConfig());

  // Build the pre-crash state by serving real traffic, then snapshot it.
  SessionStore before{SessionStoreConfig{}};
  {
    ServiceConfig config;
    config.workers = 1;
    config.max_batch = 1;
    PredictionService service(model, before, config);
    for (int u = 0; u < 4; ++u) {
      service.Submit(MakeSample(u, 6)).get();
    }
    service.Shutdown();
  }
  ASSERT_TRUE(before.Snapshot(path));

  // "Restart": fresh store, warm-start gate up, restore NOT yet run.
  SessionStore after{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  PredictionService service(model, after, config);
  after.BeginWarmStart();

  // A request while the user's state is still on disk: frozen fallback,
  // bit-identical to PredictFrozen, and crucially no state materialises.
  const data::Sample sample = MakeSample(2, 6);
  const nn::Tensor reps = model.PrefixRepresentations(sample);
  const std::vector<float> frozen = after.PredictFrozen(model, reps);
  Prediction p = service.Submit(sample).get();
  EXPECT_EQ(p.outcome, RequestOutcome::kDegraded);
  ASSERT_EQ(p.scores.size(), frozen.size());
  for (size_t j = 0; j < frozen.size(); ++j) {
    ASSERT_EQ(p.scores[j], frozen[j]) << "score " << j;
  }
  EXPECT_EQ(after.PatternCount(2), 0u);
  EXPECT_EQ(service.Stats().warm_start_fallbacks, 1u);

  // State lands; gate still up: restored users take the adapted path now
  // (progressive recovery — no waiting for EndWarmStart).
  ASSERT_TRUE(after.Restore(path));
  EXPECT_TRUE(after.warm_starting());
  p = service.Submit(sample).get();
  EXPECT_EQ(p.outcome, RequestOutcome::kOk);
  after.EndWarmStart();

  // Exact accounting: 2 completed, 1 degraded, and that one degradation is
  // the warm-start fallback.
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.degraded_requests, 1u);
  EXPECT_EQ(stats.warm_start_fallbacks, 1u);
  EXPECT_EQ(stats.ok_requests(), 1u);
  std::remove(path.c_str());
}

/// The asynchronous warm-start API end-to-end: WarmStartAsync runs the
/// restore off-thread while the service answers, WaitWarmStart reports the
/// restore accounting, and the gate is down afterwards.
TEST_F(SnapshotChaosTest, WarmStartAsyncRestoresWhileServing) {
  const std::string path = TempPath("adamove_snap_warm_async.bin");
  core::LightMob model(SmallConfig());
  SessionStore before{SessionStoreConfig{}};
  Populate(before, 6, 8);
  ASSERT_TRUE(before.Snapshot(path));

  SessionStore after{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 2;
  config.max_batch = 4;
  PredictionService service(model, after, config);
  service.WarmStartAsync(path);
  // Traffic races the restore; every response is valid regardless of
  // whether its user's frame has landed yet.
  for (int u = 0; u < 6; ++u) {
    const Prediction p = service.Submit(MakeSample(u, 5)).get();
    ASSERT_EQ(p.scores.size(), 12u);
    ASSERT_TRUE(p.outcome == RequestOutcome::kOk ||
                p.outcome == RequestOutcome::kDegraded);
  }
  SnapshotStats rs;
  common::IoResult r = service.WaitWarmStart(&rs);
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(rs.users, 6u);
  EXPECT_EQ(rs.patterns, 48u);
  EXPECT_FALSE(after.warm_starting());

  // After the warm start every user's snapshot state is resident (plus
  // whatever the traffic added on top).
  for (int u = 0; u < 6; ++u) {
    EXPECT_GE(after.PatternCount(u), 8u) << u;
  }
  service.Shutdown();
  std::remove(path.c_str());
}

/// A restore hitting the injected read fault mid-warm-start must leave the
/// service in the degraded-but-correct cold-start posture: gate down,
/// serving continues, and the error is reported to the operator.
TEST_F(SnapshotChaosTest, WarmStartSurvivesInjectedReadFault) {
  const std::string path = TempPath("adamove_snap_warm_fault.bin");
  core::LightMob model(SmallConfig());
  SessionStore before{SessionStoreConfig{}};
  Populate(before, 3, 4);
  ASSERT_TRUE(before.Snapshot(path));

  FaultRegistry::Instance().Arm("io.snapshot_read", FaultSpec{1.0, 0, true});
  SessionStore after{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  PredictionService service(model, after, config);
  service.WarmStartAsync(path);
  common::IoResult r = service.WaitWarmStart();
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("io.snapshot_read"), std::string::npos) << r.error;
  EXPECT_FALSE(after.warm_starting());  // gate is down even on failure
  FaultRegistry::Instance().DisarmAll();

  // Cold start: the service still answers (and may now build fresh state).
  const Prediction p = service.Submit(MakeSample(1, 5)).get();
  EXPECT_EQ(p.outcome, RequestOutcome::kOk);
  ASSERT_EQ(p.scores.size(), 12u);
  service.Shutdown();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::serve
