#include "serve/session_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/lightmob.h"

namespace adamove::serve {
namespace {

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 10;
  c.num_users = 16;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<float> Pattern(float seed) {
  return {seed, 1, 0, 0, 0, 0, 0, 0};
}

/// Users that collide onto / avoid a shard, found via the store's own hash.
std::vector<int64_t> UsersOnShard(const SessionStore& store, int shard,
                                  int count) {
  std::vector<int64_t> users;
  for (int64_t u = 0; static_cast<int>(users.size()) < count; ++u) {
    if (store.ShardOf(u) == shard) users.push_back(u);
  }
  return users;
}

TEST(SessionStoreTest, LruEvictsLeastRecentlyTouchedUser) {
  SessionStoreConfig config;
  config.num_shards = 1;  // single stripe => global LRU order
  config.max_resident_users = 2;
  SessionStore store(config);

  store.Observe(1, Pattern(1), 3, 1000);
  store.Observe(2, Pattern(2), 3, 1001);
  store.Observe(1, Pattern(1), 4, 1002);  // touch 1 => 2 is now the victim
  store.Observe(3, Pattern(3), 3, 1003);  // over cap => evict 2

  EXPECT_EQ(store.EvictionCount(), 1u);
  EXPECT_EQ(store.UserCount(), 2u);
  EXPECT_EQ(store.PatternCount(2), 0u);  // evicted via OnlineAdapter::Forget
  EXPECT_EQ(store.PatternCount(1), 2u);
  EXPECT_EQ(store.PatternCount(3), 1u);

  store.Observe(4, Pattern(4), 3, 1004);  // evicts 1 (3 is fresher)
  EXPECT_EQ(store.EvictionCount(), 2u);
  EXPECT_EQ(store.PatternCount(1), 0u);
  EXPECT_EQ(store.PatternCount(3), 1u);
}

TEST(SessionStoreTest, ForgetDropsOnlyThatUser) {
  SessionStoreConfig config;
  SessionStore store(config);
  store.Observe(7, Pattern(1), 2, 10);
  store.Observe(8, Pattern(1), 2, 10);
  store.Forget(7);
  EXPECT_EQ(store.PatternCount(7), 0u);
  EXPECT_EQ(store.PatternCount(8), 1u);
  EXPECT_EQ(store.UserCount(), 1u);
  store.Forget(7);  // idempotent on absent users
  EXPECT_EQ(store.UserCount(), 1u);
}

TEST(SessionStoreTest, ShardsAreIsolated) {
  SessionStoreConfig config;
  config.num_shards = 4;
  config.max_resident_users = 4;  // cap of 1 per shard
  SessionStore store(config);
  // One user per distinct shard: per-shard caps never interact.
  std::vector<int64_t> users;
  for (int shard = 0; shard < 4; ++shard) {
    users.push_back(UsersOnShard(store, shard, 1)[0]);
  }
  for (int64_t u : users) store.Observe(u, Pattern(1), 2, 100);
  EXPECT_EQ(store.UserCount(), 4u);
  EXPECT_EQ(store.EvictionCount(), 0u);
  // A second user on shard 0 evicts only shard 0's resident.
  const int64_t second = UsersOnShard(store, 0, 2)[1];
  store.Observe(second, Pattern(2), 2, 101);
  EXPECT_EQ(store.EvictionCount(), 1u);
  EXPECT_EQ(store.PatternCount(users[0]), 0u);
  for (size_t i = 1; i < users.size(); ++i) {
    EXPECT_EQ(store.PatternCount(users[i]), 1u) << "shard " << i;
  }
}

TEST(SessionStoreTest, ObserveAndPredictEncodedMatchesOnlineAdapter) {
  core::LightMob model(SmallConfig());
  data::Sample sample;
  sample.user = 3;
  int64_t t = 1333238400;
  for (int64_t l : {1, 2, 7, 2, 7}) {
    sample.recent.push_back({3, l, t});
    t += 3 * data::kSecondsPerHour;
  }
  sample.target = {3, 7, t};

  core::OnlineAdapter reference{core::PttaConfig{}};
  std::vector<float> expected = reference.ObserveAndPredict(model, sample);

  SessionStore store{SessionStoreConfig{}};
  nn::Tensor reps = model.PrefixRepresentations(sample);
  std::vector<float> got = store.ObserveAndPredictEncoded(model, sample, reps);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], expected[i]) << "score " << i;  // bit-identical
  }
  EXPECT_EQ(store.PatternCount(3), reference.PatternCount(3));
}

TEST(SessionStoreTest, ConcurrentObservePredictSmoke) {
  core::LightMob model(SmallConfig());
  SessionStoreConfig config;
  config.num_shards = 8;
  config.max_resident_users = 64;
  SessionStore store(config);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const std::vector<float> query = Pattern(static_cast<float>(tid));
      for (int i = 0; i < kIters; ++i) {
        // Writers and readers hit interleaved users across all shards:
        // Predict on one user runs concurrently with Observe on others.
        const int64_t user = (tid * kIters + i) % 32;
        store.Observe(user, Pattern(static_cast<float>(i)), i % 10,
                      1000 + i);
        const std::vector<float> scores =
            store.Predict(model, user, query, 2000 + i);
        if (scores.size() != 10u) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(store.UserCount(), 32u);
  size_t patterns = 0;
  for (int64_t u = 0; u < 32; ++u) patterns += store.PatternCount(u);
  EXPECT_GT(patterns, 0u);
}

/// Regression: Forget racing LRU eviction under a resident-user cap. Both
/// paths mutate the same shard's lru/lru_pos/adapter triple; a historical
/// failure mode is Forget erasing a user whose LRU iterator an in-flight
/// eviction still holds (iterator invalidation => UB only TSan/ASan see).
/// The test drives both paths hard on one shard, then asserts the store is
/// still internally consistent and drainable to empty.
TEST(SessionStoreTest, ConcurrentForgetRacesEvictionUnderCap) {
  SessionStoreConfig config;
  config.num_shards = 2;
  config.max_resident_users = 8;  // cap of 4 per shard => constant eviction
  SessionStore store(config);
  const std::vector<int64_t> users = UsersOnShard(store, 0, 16);

  constexpr int kObservers = 4;
  constexpr int kForgetters = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kObservers; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kIters; ++i) {
        // Rotating user order per thread: every user is repeatedly inserted,
        // touched to the LRU front, and pushed out by later arrivals.
        const int64_t user = users[static_cast<size_t>((tid + i) % 16)];
        store.Observe(user, Pattern(static_cast<float>(i)), i % 10, 1000 + i);
      }
    });
  }
  for (int tid = 0; tid < kForgetters; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kIters; ++i) {
        // Forget the very users the observers are cycling, including ones
        // currently being evicted or not resident at all.
        store.Forget(users[static_cast<size_t>((tid * 3 + i) % 16)]);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Consistency after the storm: residency respects the cap, and every
  // resident user still has coherent state (PatternCount answers).
  EXPECT_LE(store.UserCount(), 8u);
  size_t resident = 0;
  for (int64_t u : users) {
    if (store.PatternCount(u) > 0) ++resident;
  }
  EXPECT_LE(resident, store.UserCount());

  // Drain: forgetting everyone leaves a genuinely empty store — no orphaned
  // LRU entries keep phantom users alive.
  for (int64_t u : users) store.Forget(u);
  EXPECT_EQ(store.UserCount(), 0u);
  for (int64_t u : users) EXPECT_EQ(store.PatternCount(u), 0u);
}

/// Regression: Forget racing an in-flight Restore while the LRU cap evicts.
/// Restore installs users frame by frame under the shard mutex and touches
/// the LRU, so three writers now contend for the same shard state: the
/// restorer (TouchLocked + Adopt), observers (TouchLocked + Observe +
/// eviction), and forgetters. The hazards are the same iterator-invalidation
/// family as the Forget/eviction race, plus Adopt resurrecting a user a
/// concurrent Forget just dropped — afterwards the store must still be
/// internally consistent and drainable.
TEST(SessionStoreTest, ConcurrentForgetRacesRestoreUnderCap) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "adamove_store_restore_race.bin")
          .string();
  // Snapshot 16 users' state from an unbounded donor store.
  SessionStoreConfig donor_config;
  donor_config.num_shards = 2;
  SessionStore donor(donor_config);
  std::vector<int64_t> users = UsersOnShard(donor, 0, 16);
  for (int64_t u : users) {
    for (int s = 0; s < 4; ++s) {
      donor.Observe(u, Pattern(static_cast<float>(s)), s % 10, 1000 + s);
    }
  }
  ASSERT_TRUE(donor.Snapshot(path));

  SessionStoreConfig config;
  config.num_shards = 2;
  config.max_resident_users = 8;  // cap of 4 per shard => constant eviction
  SessionStore store(config);
  // Same hash => same shard layout: every snapshot user lands on shard 0 of
  // `store` too, maximising contention with the observers/forgetters.
  constexpr int kObservers = 3;
  constexpr int kForgetters = 3;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    // The restorer: repeatedly re-imports the snapshot while the other
    // threads churn — each pass installs users the forgetters are dropping.
    for (int pass = 0; pass < 6; ++pass) {
      SnapshotStats stats;
      ASSERT_TRUE(store.Restore(path, &stats));
      ASSERT_EQ(stats.users, 16u);
    }
  });
  for (int tid = 0; tid < kObservers; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kIters; ++i) {
        const int64_t user = users[static_cast<size_t>((tid + i) % 16)];
        store.Observe(user, Pattern(static_cast<float>(i)), i % 10, 2000 + i);
      }
    });
  }
  for (int tid = 0; tid < kForgetters; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kIters; ++i) {
        store.Forget(users[static_cast<size_t>((tid * 5 + i) % 16)]);
      }
    });
  }
  for (auto& t : threads) t.join();

  // Consistency after the storm: the cap held throughout, every resident
  // user answers PatternCount, and the store drains to genuinely empty.
  EXPECT_LE(store.UserCount(), 8u);
  for (int64_t u : users) store.Forget(u);
  EXPECT_EQ(store.UserCount(), 0u);
  for (int64_t u : users) EXPECT_EQ(store.PatternCount(u), 0u);
  std::remove(path.c_str());
}

/// Minimal in-memory cold tier: stores whatever snapshot it is handed.
/// (serve/ cannot depend on shard/'s CompactStore, and the property under
/// test is what the *store* hands the tier, not how the tier packs it.)
class MapColdTier : public ColdTier {
 public:
  bool Take(int64_t user, core::OnlineAdapter::UserSnapshot* out) override {
    auto it = frames_.find(user);
    if (it == frames_.end()) return false;
    *out = std::move(it->second);
    frames_.erase(it);
    return true;
  }
  void Accept(core::OnlineAdapter::UserSnapshot&& snap) override {
    frames_[snap.user] = std::move(snap);
  }
  const core::OnlineAdapter::UserSnapshot* Peek(int64_t user) const {
    auto it = frames_.find(user);
    return it == frames_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<int64_t, core::OnlineAdapter::UserSnapshot> frames_;
};

data::Sample WalkSample(int64_t user, std::initializer_list<int64_t> recent,
                        int64_t target, int64_t t0) {
  data::Sample s;
  s.user = user;
  int64_t t = t0;
  for (int64_t l : recent) {
    s.recent.push_back({user, l, t});
    t += 3 * data::kSecondsPerHour;
  }
  s.target = {user, target, t};
  return s;
}

/// Regression for the elastic scheduler (DESIGN.md §16): LRU-evicting a
/// *dirty* user must dehydrate the pending deltas into the cold tier with
/// the rest of the state — rehydrating and draining then yields exactly the
/// state an inline run of the same observations produces. A cold tier that
/// dropped the buffer would silently lose observations under overload.
TEST(SessionStoreTest, DirtyUserEvictionDehydratesPendingDeltas) {
  core::LightMob model(SmallConfig());
  const data::Sample sample = WalkSample(1, {1, 2, 7, 2, 7}, 7, 1333238400);
  const nn::Tensor reps = model.PrefixRepresentations(sample);

  // Reference: the identical request served inline on a plain store.
  SessionStoreConfig ref_config;
  ref_config.num_shards = 1;
  SessionStore reference(ref_config);
  std::vector<AdaptStatus> ref_statuses;
  const std::vector<std::vector<float>> ref_scores =
      reference.BatchObserveAndPredictEncoded(
          model, {{&sample, SessionStore::RepsView(reps)}}, &ref_statuses);
  ASSERT_EQ(ref_statuses[0], AdaptStatus::kAdapted);

  MapColdTier tier;
  SessionStoreConfig config;
  config.num_shards = 1;  // single stripe => user 2 evicts user 1
  config.max_resident_users = 1;
  config.cold_tier = &tier;
  SessionStore store(config);

  // Serve the same request deferred: observations land in the pending
  // buffer, the prediction is the (empty-cache => frozen) stale rung.
  BatchAdaptOptions options;
  options.mode = AdaptExecMode::kDeferred;
  std::vector<AdaptStatus> statuses;
  BatchAdaptStats adapt_stats;
  (void)store.BatchObserveAndPredictEncoded(
      model, {{&sample, SessionStore::RepsView(reps)}}, options, &statuses,
      &adapt_stats);
  ASSERT_EQ(statuses[0], AdaptStatus::kStaleAdapt);
  EXPECT_GT(adapt_stats.deferred_ingests, 0u);
  EXPECT_EQ(store.DirtyUserCount(), 1u);
  const size_t pending_before = store.PendingDeltaCount();
  ASSERT_GT(pending_before, 0u);
  EXPECT_EQ(store.PatternCount(1), 0u);  // nothing ingested yet

  // Evict the dirty user: the cold frame must carry the pending buffer.
  store.Observe(2, Pattern(9), 3, 2000000000);
  EXPECT_EQ(store.DirtyUserCount(), 0u);
  EXPECT_EQ(store.PendingDeltaCount(), 0u);
  const core::OnlineAdapter::UserSnapshot* frame = tier.Peek(1);
  ASSERT_NE(frame, nullptr);
  EXPECT_TRUE(frame->locations.empty());
  EXPECT_EQ(frame->pending.size(), pending_before);

  // Rehydrate (Predict touches the user) and drain: bit-identical to the
  // inline run — eviction lost nothing, reordered nothing.
  std::vector<float> query(reps.data().end() - reps.cols(),
                           reps.data().end());
  (void)store.Predict(model, 1, query, sample.target.timestamp);
  EXPECT_EQ(tier.Peek(1), nullptr);
  EXPECT_EQ(store.DirtyUserCount(), 1u);
  EXPECT_EQ(store.DrainDirtyUsers(0), 1u);
  EXPECT_EQ(store.DirtyUserCount(), 0u);

  core::OnlineAdapter::UserSnapshot drained;
  ASSERT_TRUE(store.ExtractUser(1, &drained));
  core::OnlineAdapter::UserSnapshot inline_state;
  ASSERT_TRUE(reference.ExtractUser(1, &inline_state));
  std::string drained_bytes;
  std::string inline_bytes;
  core::OnlineAdapter::EncodeUser(drained, &drained_bytes);
  core::OnlineAdapter::EncodeUser(inline_state, &inline_bytes);
  EXPECT_EQ(drained_bytes, inline_bytes);
}

/// The lazy-rebuild rung: an *inline* predict that finds pending deltas
/// drains them first, so a single request self-heals the backlog and is
/// served fresh — scores bit-identical to the never-deferred run.
TEST(SessionStoreTest, InlinePredictLazilyDrainsPendingBacklog) {
  core::LightMob model(SmallConfig());
  const data::Sample first = WalkSample(3, {1, 2, 7, 2}, 7, 1333238400);
  const data::Sample second =
      WalkSample(3, {2, 7, 2, 7}, 7, first.target.timestamp);
  const nn::Tensor first_reps = model.PrefixRepresentations(first);
  const nn::Tensor second_reps = model.PrefixRepresentations(second);

  // Reference: both requests inline.
  SessionStore reference{SessionStoreConfig{}};
  (void)reference.BatchObserveAndPredictEncoded(
      model, {{&first, SessionStore::RepsView(first_reps)}});
  const std::vector<std::vector<float>> want =
      reference.BatchObserveAndPredictEncoded(
          model, {{&second, SessionStore::RepsView(second_reps)}});

  // Deferred first request, inline second: the second must lazy-drain.
  SessionStore store{SessionStoreConfig{}};
  BatchAdaptOptions deferred;
  deferred.mode = AdaptExecMode::kDeferred;
  std::vector<AdaptStatus> statuses;
  (void)store.BatchObserveAndPredictEncoded(
      model, {{&first, SessionStore::RepsView(first_reps)}}, deferred,
      &statuses, nullptr);
  ASSERT_EQ(statuses[0], AdaptStatus::kStaleAdapt);

  BatchAdaptStats adapt_stats;
  const std::vector<std::vector<float>> got =
      store.BatchObserveAndPredictEncoded(
          model, {{&second, SessionStore::RepsView(second_reps)}},
          BatchAdaptOptions{}, &statuses, &adapt_stats);
  ASSERT_EQ(statuses[0], AdaptStatus::kAdapted);
  EXPECT_EQ(adapt_stats.lazy_rebuilds, 1u);
  EXPECT_EQ(store.PendingDeltaCount(), 0u);
  ASSERT_EQ(got[0].size(), want[0].size());
  for (size_t i = 0; i < got[0].size(); ++i) {
    ASSERT_EQ(got[0][i], want[0][i]) << "score " << i;
  }
}

}  // namespace
}  // namespace adamove::serve
