#include "serve/prediction_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "serve/load_gen.h"

namespace adamove::serve {
namespace {

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 8;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

/// A deterministic per-user check-in stream: every user walks its own
/// location cycle, one sample per step with a growing recent window.
std::vector<data::Sample> MakeStream(int users, int steps_per_user) {
  std::vector<data::Sample> stream;
  for (int u = 0; u < users; ++u) {
    std::vector<data::Point> window;
    int64_t t = 1333238400 + u * 100;
    for (int s = 0; s < steps_per_user; ++s) {
      const int64_t loc = (u + s) % 12;
      window.push_back({u, loc, t});
      if (static_cast<int>(window.size()) > 6) window.erase(window.begin());
      data::Sample sample;
      sample.user = u;
      sample.recent = window;
      t += 3 * data::kSecondsPerHour;
      sample.target = {u, (u + s + 1) % 12, t};
      stream.push_back(sample);
    }
  }
  return stream;
}

/// With max_batch=1 and one worker, the service must be *bit-identical* to
/// driving core::OnlineAdapter::ObserveAndPredict over the same stream —
/// micro-batching and sharding are pure scheduling, never arithmetic.
TEST(PredictionServiceTest, MaxBatch1IsBitIdenticalToOnlineAdapter) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(4, 10);

  core::OnlineAdapter reference{core::PttaConfig{}};
  std::vector<std::vector<float>> expected;
  for (const auto& sample : stream) {
    expected.push_back(reference.ObserveAndPredict(model, sample));
  }

  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  PredictionService service(model, store, config);
  for (size_t i = 0; i < stream.size(); ++i) {
    const Prediction p = service.Submit(stream[i]).get();
    ASSERT_EQ(p.scores.size(), expected[i].size());
    for (size_t j = 0; j < p.scores.size(); ++j) {
      // EXPECT_EQ, not NEAR: the acceptance bar is bit-exactness.
      ASSERT_EQ(p.scores[j], expected[i][j])
          << "request " << i << " score " << j;
    }
  }
  service.Shutdown();
  EXPECT_EQ(service.Stats().completed, stream.size());
}

TEST(PredictionServiceTest, MicroBatchingServesAllRequestsConcurrently) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 4;
  config.max_batch = 8;
  config.max_wait_us = 500;
  config.queue_capacity = 64;  // small: exercises Submit backpressure
  PredictionService service(model, store, config);

  const std::vector<data::Sample> stream = MakeStream(8, 25);
  std::vector<std::thread> clients;
  std::atomic<int> bad_scores{0};
  constexpr int kClients = 4;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < stream.size();
           i += kClients) {
        const Prediction p = service.Submit(stream[i]).get();
        if (p.scores.size() != 12u) bad_scores.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.Shutdown();

  EXPECT_EQ(bad_scores.load(), 0);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, stream.size());
  EXPECT_EQ(stats.queue_us.Count(), stream.size());
  EXPECT_EQ(stats.encode_us.Count(), stream.size());
  EXPECT_EQ(stats.adapt_us.Count(), stream.size());
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.MeanBatchSize(), 1.0);
}

TEST(PredictionServiceTest, TrySubmitRejectsWhenFullInsteadOfBlocking) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  // max_batch > capacity + a long flush deadline: the worker holds the
  // 2 queued requests for the full 200 ms window, so the queue is
  // observably full while the remaining arrivals pour in.
  config.max_batch = 8;
  config.max_wait_us = 200 * 1000;
  config.queue_capacity = 2;
  PredictionService service(model, store, config);
  const std::vector<data::Sample> stream = MakeStream(1, 8);

  std::vector<std::future<Prediction>> accepted;
  int rejected = 0;
  for (const auto& sample : stream) {
    std::future<Prediction> f;
    if (service.TrySubmit(sample, &f)) {
      accepted.push_back(std::move(f));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // capacity 2 cannot absorb 8 instant arrivals
  for (auto& f : accepted) EXPECT_EQ(f.get().scores.size(), 12u);
  service.Shutdown();
}

TEST(PredictionServiceTest, ShutdownDrainsOutstandingRequests) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 2;
  config.max_batch = 4;
  PredictionService service(model, store, config);
  const std::vector<data::Sample> stream = MakeStream(2, 10);
  std::vector<std::future<Prediction>> inflight;
  for (const auto& sample : stream) {
    inflight.push_back(service.Submit(sample));
  }
  service.Shutdown();  // must resolve every future before returning
  for (auto& f : inflight) {
    EXPECT_EQ(f.get().scores.size(), 12u);
  }
  EXPECT_EQ(service.Stats().completed, stream.size());
}

TEST(PredictionServiceTest, LoadGenReportsThroughputAndLatency) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 2;
  PredictionService service(model, store, config);

  const std::vector<data::Sample> raw = MakeStream(4, 10);
  const std::vector<data::Sample> stream =
      BuildReplayStream(raw, /*min_requests=*/100);
  EXPECT_GE(stream.size(), 100u);
  // Replay stream is ordered by target timestamp.
  for (size_t i = 1; i < stream.size() && i < raw.size(); ++i) {
    EXPECT_LE(stream[i - 1].target.timestamp, stream[i].target.timestamp);
  }

  LoadGenConfig lg;
  lg.clients = 4;
  lg.max_requests = 100;
  const LoadGenResult result = RunLoadGen(service, stream, lg);
  service.Shutdown();
  EXPECT_EQ(result.completed, 100u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_EQ(result.e2e_us.Count(), 100u);
  EXPECT_GT(result.e2e_us.QuantileUs(0.5), 0.0);
}

}  // namespace
}  // namespace adamove::serve
