#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <future>
#include <vector>

#include "common/fault_injection.h"
#include "common/qfloat.h"
#include "common/rng.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "serve/load_gen.h"
#include "serve/prediction_service.h"
#include "serve/session_store.h"
#include "shard/compact_store.h"
#include "shard/sharded_service.h"

namespace adamove::serve {
namespace {

using common::FaultRegistry;
using common::FaultSpec;

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 8;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<data::Sample> MakeStream(int users, int steps_per_user) {
  std::vector<data::Sample> stream;
  for (int u = 0; u < users; ++u) {
    std::vector<data::Point> window;
    int64_t t = 1333238400 + u * 100;
    for (int s = 0; s < steps_per_user; ++s) {
      const int64_t loc = (u + s) % 12;
      window.push_back({u, loc, t});
      if (static_cast<int>(window.size()) > 6) window.erase(window.begin());
      data::Sample sample;
      sample.user = u;
      sample.recent = window;
      t += 3 * data::kSecondsPerHour;
      sample.target = {u, (u + s + 1) % 12, t};
      stream.push_back(sample);
    }
  }
  return stream;
}

bool AllFinite(const std::vector<float>& scores) {
  for (float s : scores) {
    if (!std::isfinite(s)) return false;
  }
  return true;
}

/// The chaos suite owns the process-global registry: disarm on both sides of
/// every test so a failure in one case cannot leak faults into the next.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    FaultRegistry::Instance().SetSeed(7);
  }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

constexpr const char* kAllFaultPoints[] = {
    "core.kb.ingest",      "core.kb.lookup",       "serve.session_lookup",
    "serve.ptta_generate", "serve.encode_forward", "serve.batch_flush",
};

/// Headline acceptance: every fault point armed at 10%, LoadGen at several
/// offered rates. The service must never crash, must deliver finite
/// correctly-sized scores for every non-shed request, and the stats ledger
/// must account for every submission.
TEST_F(ChaosTest, SurvivesAllFaultPointsAtTenPercentUnderLoad) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream =
      BuildReplayStream(MakeStream(8, 25), /*min_requests=*/400);

  for (const char* point : kAllFaultPoints) {
    FaultRegistry::Instance().Arm(point, FaultSpec{0.1, 0, true});
  }

  const double rates[] = {0.0, 2000.0, 500.0};  // closed-loop max + 2 paced
  for (const double qps : rates) {
    SessionStore store{SessionStoreConfig{}};
    ServiceConfig config;
    config.workers = 4;
    config.max_batch = 8;
    config.max_wait_us = 500;
    config.queue_capacity = 64;
    PredictionService service(model, store, config);

    LoadGenConfig lg;
    lg.clients = 4;
    lg.max_requests = 400;
    lg.target_qps = qps;
    const LoadGenResult result = RunLoadGen(service, stream, lg);
    service.Shutdown();

    // Under kBlock every submission is eventually delivered with scores.
    EXPECT_EQ(result.completed, 400u) << "qps " << qps;
    EXPECT_EQ(result.shed, 0u);
    // With six points at 10% each, degradations must actually happen —
    // otherwise the chaos run silently tested nothing.
    EXPECT_GT(result.degraded, 0u) << "qps " << qps;

    const ServiceStats stats = service.Stats();
    EXPECT_EQ(stats.completed, 400u);
    EXPECT_EQ(stats.accounted(), 400u);
    EXPECT_EQ(stats.completed,
              stats.ok_requests() + stats.degraded_requests + stats.timeouts);
    EXPECT_EQ(stats.degraded_requests, result.degraded);

    // Availability bar: >= 99% of non-shed requests got valid predictions.
    // Delivery is structurally 100% here; assert the explicit ratio anyway
    // so the acceptance criterion is stated in the test.
    EXPECT_GE(static_cast<double>(result.completed),
              0.99 * static_cast<double>(result.completed + result.shed));
  }

  // Every armed point was actually exercised by the three runs.
  for (const char* point : kAllFaultPoints) {
    EXPECT_GT(FaultRegistry::Instance().StatsFor(point).evaluations, 0u)
        << point;
  }
}

/// "Never returns garbage": under heavy faulting every delivered score
/// vector has the model's output width and only finite entries.
TEST_F(ChaosTest, DegradedScoresAreFiniteAndCorrectlySized) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 2;
  config.max_batch = 4;
  PredictionService service(model, store, config);

  for (const char* point : kAllFaultPoints) {
    FaultRegistry::Instance().Arm(point, FaultSpec{0.5, 0, true});
  }

  const std::vector<data::Sample> stream = MakeStream(4, 20);
  std::vector<std::future<Prediction>> inflight;
  for (const auto& sample : stream) inflight.push_back(service.Submit(sample));
  size_t degraded = 0;
  for (auto& f : inflight) {
    const Prediction p = f.get();
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
    if (p.outcome != RequestOutcome::kOk) ++degraded;
  }
  service.Shutdown();
  EXPECT_GT(degraded, 0u);
}

/// The degradation ladder's bottom rung is the *real* base model, not a
/// canned response: with the session lookup failing 100% of the time, the
/// service must return exactly OnlineAdapter::PredictFrozen for each query.
TEST_F(ChaosTest, FallbackIsBitIdenticalToFrozenBaseModel) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(3, 8);

  std::vector<std::vector<float>> expected;
  for (const auto& sample : stream) {
    const nn::Tensor reps = model.PrefixRepresentations(sample);
    const int64_t last = reps.rows() - 1;
    std::vector<float> query(static_cast<size_t>(reps.cols()));
    for (int64_t j = 0; j < reps.cols(); ++j) {
      query[static_cast<size_t>(j)] = reps.at(last, j);
    }
    expected.push_back(core::OnlineAdapter::PredictFrozen(model, query));
  }

  FaultRegistry::Instance().Arm("serve.session_lookup",
                                FaultSpec{1.0, 0, true});
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  PredictionService service(model, store, config);
  for (size_t i = 0; i < stream.size(); ++i) {
    const Prediction p = service.Submit(stream[i]).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kDegraded);
    ASSERT_EQ(p.scores.size(), expected[i].size());
    for (size_t j = 0; j < p.scores.size(); ++j) {
      ASSERT_EQ(p.scores[j], expected[i][j]) << "request " << i;
    }
  }
  service.Shutdown();
  // The faulted lookups never wrote per-user state.
  EXPECT_EQ(store.UserCount(), 0u);
  EXPECT_EQ(service.Stats().degraded_requests, stream.size());
}

/// Recovery contract: once faults clear, a fresh store served through the
/// (previously chaos-stressed) service is bit-identical to the plain
/// OnlineAdapter reference — the fault layer leaves zero arithmetic residue.
TEST_F(ChaosTest, ConvergesToBitIdenticalAfterFaultsClear) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(4, 10);

  // Phase 1: chaos. Outputs are allowed to differ; the service must survive.
  for (const char* point : kAllFaultPoints) {
    FaultRegistry::Instance().Arm(point, FaultSpec{0.3, 0, true});
  }
  {
    SessionStore store{SessionStoreConfig{}};
    ServiceConfig config;
    config.workers = 2;
    config.max_batch = 4;
    PredictionService service(model, store, config);
    for (const auto& sample : stream) {
      const Prediction p = service.Submit(sample).get();
      ASSERT_EQ(p.scores.size(), 12u);
    }
    service.Shutdown();
  }

  // Phase 2: faults cleared -> the serving path must match the reference
  // adapter bit-for-bit on fresh state.
  FaultRegistry::Instance().DisarmAll();
  core::OnlineAdapter reference{core::PttaConfig{}};
  std::vector<std::vector<float>> expected;
  for (const auto& sample : stream) {
    expected.push_back(reference.ObserveAndPredict(model, sample));
  }
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  PredictionService service(model, store, config);
  for (size_t i = 0; i < stream.size(); ++i) {
    const Prediction p = service.Submit(stream[i]).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kOk);
    ASSERT_EQ(p.scores.size(), expected[i].size());
    for (size_t j = 0; j < p.scores.size(); ++j) {
      ASSERT_EQ(p.scores[j], expected[i][j])
          << "request " << i << " score " << j;
    }
  }
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.ok_requests(), stream.size());
  EXPECT_EQ(stats.degraded_requests, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

/// Deadline semantics: a delay-only encoder fault pushes every request past
/// a 1 ms deadline, so all of them are served the frozen fallback as
/// kTimedOut — still with valid scores, still fully accounted.
TEST_F(ChaosTest, DeadlineOverrunsServeFallbackAsTimedOut) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.deadline_us = 1000;
  PredictionService service(model, store, config);

  // prob 1, 5 ms delay, noerror: slows the encode stage without tripping the
  // retry/degrade path, so the only degradation cause is the deadline.
  FaultRegistry::Instance().Arm("serve.encode_forward",
                                FaultSpec{1.0, 5000, /*error=*/false});

  const std::vector<data::Sample> stream = MakeStream(2, 5);
  for (const auto& sample : stream) {
    const Prediction p = service.Submit(sample).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kTimedOut);
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
  }
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.timeouts, stream.size());
  EXPECT_EQ(stats.completed, stream.size());
  // Timed-out requests skipped adaptation entirely: no state was written.
  EXPECT_EQ(store.UserCount(), 0u);
}

/// Shed policy: at capacity, Submit resolves immediately as kShed with no
/// scores, and the ledger still balances (completed + shed = submitted).
TEST_F(ChaosTest, ShedPolicyRejectsOverflowAndAccountsForIt) {
  core::LightMob model(SmallConfig());
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  // As in the TrySubmit test: a long flush window holds the queued requests
  // so the 2-slot queue is observably full for the remaining arrivals.
  config.max_batch = 8;
  config.max_wait_us = 200 * 1000;
  config.queue_capacity = 2;
  config.overflow = OverflowPolicy::kShed;
  PredictionService service(model, store, config);

  const std::vector<data::Sample> stream = MakeStream(1, 8);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : stream) futures.push_back(service.Submit(sample));
  size_t delivered = 0;
  size_t shed = 0;
  for (auto& f : futures) {
    const Prediction p = f.get();
    if (p.outcome == RequestOutcome::kShed) {
      EXPECT_TRUE(p.scores.empty());
      ++shed;
    } else {
      EXPECT_EQ(p.scores.size(), 12u);
      ++delivered;
    }
  }
  service.Shutdown();
  EXPECT_GT(shed, 0u);  // capacity 2 cannot absorb 8 instant arrivals
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed_requests, shed);
  EXPECT_EQ(stats.completed, delivered);
  EXPECT_EQ(stats.accounted(), stream.size());
}

/// `core.state_hydrate` at 100%: rehydration from the cold tier is blocked,
/// so cold users get the frozen base model (bit-identical to PredictFrozen)
/// and — the invariant that keeps the fault recoverable — NEITHER tier is
/// mutated: no fresh hot state that would fork the cold blob, no cold Take
/// that would lose it. Once the fault clears, the original adapted state
/// hydrates and serves.
///
/// Note this point (and serve.router_lookup below) is deliberately NOT in
/// kAllFaultPoints: it only evaluates when a cold tier is configured, which
/// the plain-SessionStore chaos runs above never do.
TEST_F(ChaosTest, StateHydrateFaultServesFrozenAndMutatesNeitherTier) {
  core::LightMob model(SmallConfig());
  common::Rng rng(11);
  shard::CompactStore cold;
  SessionStoreConfig store_config;
  store_config.num_shards = 2;
  store_config.max_resident_users = 2;
  store_config.cold_tier = &cold;
  store_config.canonicalize_patterns = true;
  SessionStore store(store_config);

  // Populate 6 users; the 2-user cap pushes most of them cold.
  int64_t t = 1333238400;
  for (int64_t user = 0; user < 6; ++user) {
    for (int i = 0; i < 6; ++i) {
      std::vector<float> pattern(8);
      for (float& x : pattern) {
        x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
      }
      store.Observe(user, pattern, (user + i) % 12, t);
      t += 600;
    }
  }
  ASSERT_GT(cold.GetStats().users, 0u);
  const auto cold_before = cold.GetStats();
  const std::vector<int64_t> hot_before = store.ResidentUsers();
  // A user that is currently cold (guaranteed: 6 users, at most 4 hot).
  int64_t cold_user = -1;
  for (int64_t user = 0; user < 6; ++user) {
    if (!std::count(hot_before.begin(), hot_before.end(), user)) {
      cold_user = user;
      break;
    }
  }
  ASSERT_GE(cold_user, 0);

  FaultRegistry::Instance().Arm("core.state_hydrate", FaultSpec{1.0, 0, true});

  std::vector<float> query(8);
  for (float& x : query) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  const std::vector<float> frozen =
      core::OnlineAdapter::PredictFrozen(model, query);
  const std::vector<float> got = store.Predict(model, cold_user, query, t);
  ASSERT_EQ(got.size(), frozen.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], frozen[i]) << "score " << i;
  }
  // Blocked Observe drops the observation rather than forking fresh state.
  store.Observe(cold_user, query, 0, t);

  // Neither tier moved: the blob is still cold and byte-for-byte intact,
  // and the hot tier holds exactly the users it held before.
  EXPECT_EQ(cold.GetStats().users, cold_before.users);
  EXPECT_EQ(cold.GetStats().blob_bytes, cold_before.blob_bytes);
  EXPECT_EQ(cold.GetStats().takes, cold_before.takes);
  EXPECT_EQ(store.ResidentUsers(), hot_before);

  // The serving path accounts it as a degradation, scores still valid.
  ServiceConfig service_config;
  service_config.workers = 1;
  service_config.max_batch = 1;
  PredictionService service(model, store, service_config);
  const std::vector<data::Sample> stream = MakeStream(6, 2);
  size_t degraded = 0;
  for (const auto& sample : stream) {
    const Prediction p = service.Submit(sample).get();
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
    if (p.outcome == RequestOutcome::kDegraded) ++degraded;
  }
  service.Shutdown();
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(service.Stats().accounted(), stream.size());
  EXPECT_GT(FaultRegistry::Instance().StatsFor("core.state_hydrate").fired,
            0u);

  // Recovery: fault cleared, the cold user hydrates with its state intact.
  FaultRegistry::Instance().DisarmAll();
  const uint64_t takes_before = cold.GetStats().takes;
  (void)store.Predict(model, cold_user, query, t);
  EXPECT_GT(cold.GetStats().takes, takes_before);
  EXPECT_GT(store.PatternCount(cold_user), 0u);
}

/// `serve.router_lookup` at 100%: placement fails for every request, so the
/// sharded layer admits each one to a live fallback group frozen-only. The
/// ladder holds: never a crash, every request kDegraded with valid frozen
/// scores, exact accounting, and zero per-user state created on groups the
/// ring never chose.
TEST_F(ChaosTest, RouterLookupFaultFallsBackFrozenWithExactAccounting) {
  core::LightMob model(SmallConfig());
  shard::ShardedServiceConfig config;
  config.num_shards = 2;
  config.service.workers = 2;
  config.service.max_batch = 4;
  shard::ShardedService sharded(model, config);

  FaultRegistry::Instance().Arm("serve.router_lookup",
                                FaultSpec{1.0, 0, true});
  const std::vector<data::Sample> stream = MakeStream(6, 4);
  std::vector<std::future<Prediction>> futures;
  for (const auto& sample : stream) futures.push_back(sharded.Submit(sample));
  for (auto& f : futures) {
    const Prediction p = f.get();
    EXPECT_EQ(p.outcome, RequestOutcome::kDegraded);
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
  }
  EXPECT_EQ(sharded.RouterFallbacks(), stream.size());
  uint64_t accounted = 0;
  uint64_t degraded = 0;
  size_t users = 0;
  for (const auto& group : sharded.Stats()) {
    accounted += group.service.accounted();
    degraded += group.service.degraded_requests;
    users += group.hot_users + group.cold_users;
  }
  EXPECT_EQ(accounted, stream.size());
  EXPECT_EQ(degraded, stream.size());
  EXPECT_EQ(users, 0u);  // frozen-only admission writes no state, ever
  sharded.Shutdown();

  // Partial outage: at 30% the service mixes adapted and fallback service,
  // survives, and the ledger still balances exactly.
  FaultRegistry::Instance().DisarmAll();
  FaultRegistry::Instance().SetSeed(7);
  FaultRegistry::Instance().Arm("serve.router_lookup",
                                FaultSpec{0.3, 0, true});
  shard::ShardedService partial(model, config);
  std::vector<std::future<Prediction>> mixed;
  for (const auto& sample : stream) mixed.push_back(partial.Submit(sample));
  for (auto& f : mixed) {
    const Prediction p = f.get();
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
  }
  uint64_t partial_accounted = 0;
  uint64_t partial_degraded = 0;
  for (const auto& group : partial.Stats()) {
    partial_accounted += group.service.accounted();
    partial_degraded += group.service.degraded_requests;
  }
  EXPECT_EQ(partial_accounted, stream.size());
  EXPECT_GT(partial.RouterFallbacks(), 0u);
  EXPECT_LT(partial.RouterFallbacks(), stream.size());
  // With no other fault armed, router fallbacks are the only degradations.
  EXPECT_EQ(partial_degraded, partial.RouterFallbacks());
  partial.Shutdown();
}

/// `serve.plan_execute` at 100%: the static-plan rung of the ladder fails on
/// every request, the service falls back to the graph walk — which is
/// BIT-IDENTICAL, so every request stays kOk and only the plan_fallbacks
/// visibility counter ticks. Like core.state_hydrate above, this point is
/// deliberately NOT in kAllFaultPoints: it only evaluates in plan forward
/// mode, which those runs never select.
TEST_F(ChaosTest, PlanExecuteFaultFallsBackToBitIdenticalGraphWalk) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream = MakeStream(4, 10);

  // Reference: the plain adapter fed the same stream (graph arithmetic).
  core::OnlineAdapter reference{core::PttaConfig{}};
  std::vector<std::vector<float>> expected;
  for (const auto& sample : stream) {
    expected.push_back(reference.ObserveAndPredict(model, sample));
  }

  FaultRegistry::Instance().Arm("serve.plan_execute", FaultSpec{1.0, 0, true});
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.forward = ServiceForwardMode::kPlan;
  PredictionService service(model, store, config);
  for (size_t i = 0; i < stream.size(); ++i) {
    const Prediction p = service.Submit(stream[i]).get();
    EXPECT_EQ(p.outcome, RequestOutcome::kOk) << "request " << i;
    ASSERT_EQ(p.scores.size(), expected[i].size());
    for (size_t j = 0; j < p.scores.size(); ++j) {
      ASSERT_EQ(p.scores[j], expected[i][j])
          << "request " << i << " score " << j;
    }
  }
  service.Shutdown();
  const ServiceStats stats = service.Stats();
  // Every request took the fallback; none of them degraded.
  EXPECT_EQ(stats.plan_fallbacks, stream.size());
  EXPECT_EQ(stats.ok_requests(), stream.size());
  EXPECT_EQ(stats.degraded_requests, 0u);
  EXPECT_GT(FaultRegistry::Instance().StatsFor("serve.plan_execute").fired,
            0u);
}

/// Endurance: 10k requests through the plan-mode service with the plan
/// fault firing at a partial rate. Exact outcome accounting must hold —
/// every submission completes, plan_fallbacks equals exactly the number of
/// fired faults, nothing degrades — and (under the sanitizer stages) the
/// plan arenas neither leak nor race across the faulted/unfaulted mix.
TEST_F(ChaosTest, PlanFaultEnduresTenThousandRequestsWithExactAccounting) {
  core::LightMob model(SmallConfig());
  const std::vector<data::Sample> stream =
      BuildReplayStream(MakeStream(8, 25), /*min_requests=*/10000);

  FaultRegistry::Instance().Arm("serve.plan_execute", FaultSpec{0.3, 0, true});
  SessionStore store{SessionStoreConfig{}};
  ServiceConfig config;
  config.workers = 4;
  config.max_batch = 8;
  config.max_wait_us = 500;
  config.queue_capacity = 64;
  config.forward = ServiceForwardMode::kPlan;
  PredictionService service(model, store, config);

  LoadGenConfig lg;
  lg.clients = 4;
  lg.max_requests = 10000;
  lg.target_qps = 0.0;  // closed loop, as fast as the service drains
  const LoadGenResult result = RunLoadGen(service, stream, lg);
  service.Shutdown();

  EXPECT_EQ(result.completed, 10000u);
  EXPECT_EQ(result.shed, 0u);
  EXPECT_EQ(result.degraded, 0u);  // plan fallback is not a degradation

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 10000u);
  EXPECT_EQ(stats.accounted(), 10000u);
  EXPECT_EQ(stats.ok_requests() + stats.timeouts, 10000u);
  EXPECT_EQ(stats.degraded_requests, 0u);

  // Exact fault ledger: the point is evaluated once per request, and every
  // fired evaluation is one (and only one) graph fallback.
  const common::FaultPointStats fault =
      FaultRegistry::Instance().StatsFor("serve.plan_execute");
  EXPECT_EQ(fault.evaluations, 10000u);
  EXPECT_EQ(stats.plan_fallbacks, fault.fired);
  EXPECT_GT(fault.fired, 0u);
  EXPECT_LT(fault.fired, 10000u);  // 30%: both paths genuinely exercised
}

}  // namespace
}  // namespace adamove::serve
