// Parameterized shape sweep: the core differentiable ops must pass numeric
// gradient checks for a spread of matrix shapes, not just the hand-picked
// ones in ops_grad_test.cc.

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

using Shape = std::tuple<int, int, int>;  // n, k, m

class OpsShapeSweepTest : public ::testing::TestWithParam<Shape> {};

TEST_P(OpsShapeSweepTest, MatMulChainGradients) {
  auto [n, k, m] = GetParam();
  common::Rng rng(static_cast<uint64_t>(n * 100 + k * 10 + m));
  Tensor a = Tensor::Randn({n, k}, rng, 0.5f, true);
  Tensor b = Tensor::Randn({k, m}, rng, 0.5f, true);
  Tensor c = Tensor::Randn({1, m}, rng, 0.5f, true);
  ExpectGradientsMatch({a, b, c}, [&] {
    Tensor y = Add(MatMul(a, b), c);  // bias broadcast across n rows
    return Sum(Mul(y, y));
  });
}

TEST_P(OpsShapeSweepTest, SoftmaxCrossEntropyGradients) {
  auto [n, k, m] = GetParam();
  (void)k;
  common::Rng rng(static_cast<uint64_t>(n * 7 + m));
  Tensor logits = Tensor::Randn({n, m + 1}, rng, 1.0f, true);
  std::vector<int64_t> targets;
  for (int i = 0; i < n; ++i) targets.push_back(i % (m + 1));
  ExpectGradientsMatch({logits}, [&] { return CrossEntropy(logits, targets); });
}

TEST_P(OpsShapeSweepTest, AttentionGradients) {
  auto [n, k, m] = GetParam();
  (void)m;
  common::Rng rng(static_cast<uint64_t>(n * 13 + k));
  Tensor q = Tensor::Randn({n, k}, rng, 0.5f, true);
  Tensor kv = Tensor::Randn({n, k}, rng, 0.5f, true);
  ExpectGradientsMatch({q, kv}, [&] {
    Tensor o = ScaledDotAttention(q, kv, kv, /*causal=*/true);
    return Sum(Mul(o, o));
  });
}

TEST_P(OpsShapeSweepTest, SoftmaxRowsStillSumToOne) {
  auto [n, k, m] = GetParam();
  (void)k;
  common::Rng rng(static_cast<uint64_t>(n + m * 31));
  Tensor a = Tensor::Randn({n, m + 1}, rng, 3.0f);
  Tensor y = Softmax(a);
  for (int64_t r = 0; r < n; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c <= m; ++c) sum += y.at(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpsShapeSweepTest,
                         ::testing::Values(Shape{1, 1, 1}, Shape{1, 5, 3},
                                           Shape{4, 1, 6}, Shape{5, 3, 1},
                                           Shape{3, 7, 2}, Shape{8, 2, 8}),
                         [](const ::testing::TestParamInfo<Shape>& info) {
                           // No structured bindings here: the commas inside
                           // [n, k, m] are not protected from the macro.
                           std::string name = "n";
                           name += std::to_string(std::get<0>(info.param));
                           name += 'k';
                           name += std::to_string(std::get<1>(info.param));
                           name += 'm';
                           name += std::to_string(std::get<2>(info.param));
                           return name;
                         });

}  // namespace
}  // namespace adamove::nn
