// Plan-IR static verifier (DESIGN.md §15). Two halves:
//
//  1. Soundness on real plans: every plan the tracer compiles across the
//     same family × hidden-dim matrix the bit-identity suite exercises
//     (RNN/LSTM/GRU × hidden 1..17, stacked variants, every sequence
//     length) must verify clean — the verifier may not reject the
//     compiler's actual output.
//  2. The mutation suite: programmatically corrupt compiled plans — one
//     mutation per invariant class — and assert each is rejected with a
//     diagnostic precise enough to name the offending check and op/value.
//     These corruptions are exactly the silent-memory-corruption bugs the
//     executor cannot catch at run time.
//
// Also here: the ADAMOVE_PLAN_VERIFY knob parsing and the ForwardPlanner
// integration counters (one verification per compile, none per steady-state
// request in kCompile mode, one per revalidation in kParanoid).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/forward_plan.h"
#include "core/lightmob.h"
#include "data/dataset.h"
#include "nn/plan/encoder_trace.h"
#include "nn/plan/plan.h"
#include "nn/plan/verifier.h"

namespace adamove::nn::plan {
namespace {

core::ModelConfig Config(core::EncoderType encoder, int64_t hidden,
                         int64_t layers = 1) {
  core::ModelConfig c;
  c.num_locations = 10;
  c.num_users = 4;
  c.location_emb_dim = 5;
  c.time_emb_dim = 3;
  c.user_emb_dim = 2;
  c.hidden_size = hidden;
  c.encoder = encoder;
  c.rnn_layers = layers;
  c.lambda = 0.0;
  c.seed = 29;
  return c;
}

std::vector<const Embedding*> Tables(const core::LightMob& model) {
  const core::PointEmbedding& e = model.trajectory_encoder()->embedding();
  return {&e.location_embedding(), &e.time_embedding(),
          &e.user_embedding()};
}

std::shared_ptr<const CompiledPlan> Compile(const core::LightMob& model,
                                            int64_t seq_len) {
  return CompileEncoderForward(Tables(model),
                               model.trajectory_encoder()->seq(), seq_len);
}

constexpr core::EncoderType kFamilies[] = {
    core::EncoderType::kRnn, core::EncoderType::kLstm,
    core::EncoderType::kGru};

// --- half 1: the tracer's real output always verifies --------------------

TEST(PlanVerifierTest, EveryMatrixPlanVerifiesClean) {
  for (const core::EncoderType encoder : kFamilies) {
    for (int64_t hidden = 1; hidden <= 17; ++hidden) {
      core::LightMob model(Config(encoder, hidden));
      for (const int64_t seq_len : {1, 5}) {
        auto plan = Compile(model, seq_len);
        ASSERT_NE(plan, nullptr);
        const VerifyResult result = VerifyPlan(*plan);
        EXPECT_TRUE(result.ok)
            << core::EncoderTypeName(encoder) << " hidden " << hidden
            << " seq " << seq_len << ": " << result.message;
      }
    }
  }
}

TEST(PlanVerifierTest, StackedEncoderPlansVerifyClean) {
  for (const core::EncoderType encoder : kFamilies) {
    core::LightMob model(Config(encoder, 9, /*layers=*/2));
    for (int64_t seq_len = 1; seq_len <= 8; ++seq_len) {
      auto plan = Compile(model, seq_len);
      ASSERT_NE(plan, nullptr);
      const VerifyResult result = VerifyPlan(*plan);
      EXPECT_TRUE(result.ok) << core::EncoderTypeName(encoder) << " seq "
                             << seq_len << ": " << result.message;
    }
  }
}

// --- half 2: the mutation suite ------------------------------------------

/// A mutable copy of a known-good LSTM plan (seq 5, hidden 8 — long enough
/// that the arena has real slot reuse to corrupt) plus lookup helpers.
class PlanMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    model_ = std::make_unique<core::LightMob>(
        Config(core::EncoderType::kLstm, 8));
    auto compiled = Compile(*model_, 5);
    ASSERT_NE(compiled, nullptr);
    plan_ = *compiled;
    ASSERT_TRUE(VerifyPlan(plan_).ok);
  }

  /// Asserts the mutated plan is rejected by check `check`, with the
  /// diagnostic naming `subject` (an "op N" / "value N" reference).
  void ExpectRejected(const std::string& check, const std::string& subject) {
    const VerifyResult result = VerifyPlan(plan_);
    ASSERT_FALSE(result.ok)
        << "mutation survived verification (" << check << ")";
    EXPECT_NE(result.message.find("plan-verify[" + check + "]"),
              std::string::npos)
        << "wrong check fired: " << result.message;
    EXPECT_NE(result.message.find(subject), std::string::npos)
        << "diagnostic does not name " << subject << ": " << result.message;
  }

  ValueId FirstTemp() const {
    for (size_t i = 0; i < plan_.values.size(); ++i) {
      if (plan_.values[i].kind == ValueKind::kTemp) {
        return static_cast<ValueId>(i);
      }
    }
    return kNoValue;
  }

  ValueId FirstWeight() const {
    for (size_t i = 0; i < plan_.values.size(); ++i) {
      if (plan_.values[i].kind == ValueKind::kWeight) {
        return static_cast<ValueId>(i);
      }
    }
    return kNoValue;
  }

  /// Two temps with intersecting live intervals, currently-disjoint arena
  /// ranges, that never appear in the same op (so the corruption is only
  /// catchable by the arena-overlap proof, not the per-op alias check) and
  /// whose overlap keeps the second temp in bounds.
  std::pair<ValueId, ValueId> OverlappableTempPair() const {
    const auto co_occur = [&](ValueId x, ValueId y) {
      for (const Op& op : plan_.ops) {
        const bool has_x = op.a == x || op.b == x || op.dst == x;
        const bool has_y = op.a == y || op.b == y || op.dst == y;
        if (has_x && has_y) return true;
      }
      return false;
    };
    for (size_t i = 0; i < plan_.values.size(); ++i) {
      const Value& a = plan_.values[i];
      if (a.kind != ValueKind::kTemp) continue;
      for (size_t j = 0; j < plan_.values.size(); ++j) {
        if (i == j) continue;
        const Value& b = plan_.values[j];
        if (b.kind != ValueKind::kTemp) continue;
        const bool lifetimes_cross =
            a.first_def <= b.last_use && b.first_def <= a.last_use;
        const bool bytes_disjoint =
            a.arena_offset + a.elems <= b.arena_offset ||
            b.arena_offset + b.elems <= a.arena_offset;
        const bool refit_in_bounds =
            a.arena_offset + b.elems <= plan_.arena_elems;
        if (lifetimes_cross && bytes_disjoint && refit_in_bounds &&
            !co_occur(static_cast<ValueId>(i), static_cast<ValueId>(j))) {
          return {static_cast<ValueId>(i), static_cast<ValueId>(j)};
        }
      }
    }
    return {kNoValue, kNoValue};
  }

  std::unique_ptr<core::LightMob> model_;
  CompiledPlan plan_;
};

TEST_F(PlanMutationTest, OverlappingLiveIntervalsSharingBytesRejected) {
  auto [keep, move] = OverlappableTempPair();
  ASSERT_NE(keep, kNoValue);
  plan_.values[static_cast<size_t>(move)].arena_offset =
      plan_.values[static_cast<size_t>(keep)].arena_offset;
  ExpectRejected("arena-overlap", "value " + std::to_string(keep));
}

TEST_F(PlanMutationTest, OutOfBoundsArenaOffsetRejected) {
  const ValueId temp = FirstTemp();
  ASSERT_NE(temp, kNoValue);
  // Aligned and past the end, so the bounds check (not alignment) is what
  // must catch it.
  plan_.values[static_cast<size_t>(temp)].arena_offset =
      (plan_.arena_elems + 15) / 16 * 16;
  ExpectRejected("arena-bounds", "value " + std::to_string(temp));
}

TEST_F(PlanMutationTest, MisalignedArenaOffsetRejected) {
  const ValueId temp = FirstTemp();
  ASSERT_NE(temp, kNoValue);
  plan_.values[static_cast<size_t>(temp)].arena_offset += 1;
  ExpectRejected("arena-align", "value " + std::to_string(temp));
}

TEST_F(PlanMutationTest, UseBeforeDefRejected) {
  // Swap the first op (a gather defining part of the encoder input) with
  // the first MatMul that consumes that input: the read now precedes the
  // definition.
  size_t matmul = 0;
  while (matmul < plan_.ops.size() &&
         plan_.ops[matmul].kind != OpKind::kMatMul) {
    ++matmul;
  }
  ASSERT_LT(matmul, plan_.ops.size());
  std::swap(plan_.ops[0], plan_.ops[matmul]);
  ExpectRejected("use-before-def", "op 0");
}

TEST_F(PlanMutationTest, CyclicOpOrderRejected) {
  // Rotate the final op (which consumes nearly the whole dataflow) to the
  // front — the moral equivalent of a dependency cycle in a linear
  // schedule: an op scheduled before its inputs exist.
  std::rotate(plan_.ops.begin(), plan_.ops.end() - 1, plan_.ops.end());
  ExpectRejected("use-before-def", "op 0");
}

TEST_F(PlanMutationTest, WrongElemsRejected) {
  // Shrink the gather destination (the concatenated embedding buffer): the
  // traced ops now write past the value's recorded size.
  const ValueId dst = plan_.ops[0].dst;
  ASSERT_NE(dst, kNoValue);
  plan_.values[static_cast<size_t>(dst)].elems -= 1;
  ExpectRejected("bounds", "value " + std::to_string(dst));
}

TEST_F(PlanMutationTest, NullWeightRejected) {
  const ValueId w = FirstWeight();
  ASSERT_NE(w, kNoValue);
  plan_.values[static_cast<size_t>(w)].weight_data = nullptr;
  ExpectRejected("weight", "value " + std::to_string(w));
}

TEST_F(PlanMutationTest, FingerprintNotCoveringWeightsRejected) {
  ASSERT_FALSE(plan_.weight_fingerprint.empty());
  plan_.weight_fingerprint.pop_back();
  ExpectRejected("fingerprint", "weight");
}

TEST_F(PlanMutationTest, InputAliasingFreshOutputRejected) {
  // Turn a unary activation into an in-place op: reading the bytes the op
  // is defining.
  size_t unary = 0;
  while (unary < plan_.ops.size() &&
         plan_.ops[unary].kind != OpKind::kSigmoid &&
         plan_.ops[unary].kind != OpKind::kTanh) {
    ++unary;
  }
  ASSERT_LT(unary, plan_.ops.size());
  Op& op = plan_.ops[unary];
  op.a = op.dst;
  op.a_off = op.dst_off;
  ExpectRejected("alias", "op " + std::to_string(unary));
}

TEST_F(PlanMutationTest, DoubleDefinitionRejected) {
  // Re-running the last op redefines the output elements it wrote.
  plan_.ops.push_back(plan_.ops.back());
  ExpectRejected("single-def",
                 "op " + std::to_string(plan_.ops.size() - 1));
}

TEST_F(PlanMutationTest, DishonestLiveIntervalRejected) {
  // Shrinking a temp's recorded interval is exactly the lie that lets the
  // packer alias two live buffers.
  ValueId victim = kNoValue;
  for (size_t i = 0; i < plan_.values.size(); ++i) {
    const Value& v = plan_.values[i];
    if (v.kind == ValueKind::kTemp && v.last_use > v.first_def) {
      victim = static_cast<ValueId>(i);
      break;
    }
  }
  ASSERT_NE(victim, kNoValue);
  plan_.values[static_cast<size_t>(victim)].last_use =
      plan_.values[static_cast<size_t>(victim)].first_def;
  ExpectRejected("interval", "value " + std::to_string(victim));
}

TEST_F(PlanMutationTest, EmptyPlanRejected) {
  plan_.ops.clear();
  ExpectRejected("structure", "empty");
}

// --- the env knob and planner integration --------------------------------

TEST(PlanVerifyModeTest, ParsesEnvKnob) {
  const char* saved = std::getenv("ADAMOVE_PLAN_VERIFY");
  const std::string restore = saved == nullptr ? "" : saved;
  ::setenv("ADAMOVE_PLAN_VERIFY", "off", 1);
  EXPECT_EQ(PlanVerifyModeFromEnv(), VerifyMode::kOff);
  ::setenv("ADAMOVE_PLAN_VERIFY", "paranoid", 1);
  EXPECT_EQ(PlanVerifyModeFromEnv(), VerifyMode::kParanoid);
  ::setenv("ADAMOVE_PLAN_VERIFY", "compile", 1);
  EXPECT_EQ(PlanVerifyModeFromEnv(), VerifyMode::kCompile);
  // Unknown values fall back to the safe default: verification on.
  ::setenv("ADAMOVE_PLAN_VERIFY", "bogus", 1);
  EXPECT_EQ(PlanVerifyModeFromEnv(), VerifyMode::kCompile);
  ::unsetenv("ADAMOVE_PLAN_VERIFY");
  EXPECT_EQ(PlanVerifyModeFromEnv(), VerifyMode::kCompile);
  if (saved != nullptr) ::setenv("ADAMOVE_PLAN_VERIFY", restore.c_str(), 1);
}

data::Sample VerifierSample(int len) {
  data::Sample sample;
  sample.user = 1;
  int64_t t = 1333238400;
  for (int i = 0; i < len; ++i) {
    sample.recent.push_back({1, (1 + i) % 10, t});
    t += 5 * data::kSecondsPerHour;
  }
  sample.target = {1, (1 + len) % 10, t};
  return sample;
}

TEST(PlannerVerifyIntegrationTest, CompileModeVerifiesOncePerCompile) {
  core::LightMob model(Config(core::EncoderType::kLstm, 8));
  core::ForwardPlanner planner(model);
  planner.SetVerifyModeForTest(VerifyMode::kCompile);
  core::PlanScratch scratch;
  const data::Sample sample = VerifierSample(5);
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  EXPECT_EQ(planner.compiles(), 1);
  EXPECT_EQ(planner.verifies(), 1);
  EXPECT_EQ(planner.verify_rejects(), 0);
  // Steady state: cached plan, no re-verification — the zero-per-request
  // half of the bench gate.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  }
  EXPECT_EQ(planner.compiles(), 1);
  EXPECT_EQ(planner.verifies(), 1);
}

TEST(PlannerVerifyIntegrationTest, ParanoidModeReverifiesEveryRevalidation) {
  core::LightMob model(Config(core::EncoderType::kGru, 6));
  core::ForwardPlanner planner(model);
  planner.SetVerifyModeForTest(VerifyMode::kParanoid);
  core::PlanScratch scratch;
  const data::Sample sample = VerifierSample(4);
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  EXPECT_EQ(planner.verifies(), 1);  // the compile-time pass
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  }
  EXPECT_EQ(planner.verifies(), 4);  // + one per cached-plan revalidation
  EXPECT_EQ(planner.verify_rejects(), 0);
}

TEST(PlannerVerifyIntegrationTest, OffModeSkipsVerification) {
  core::LightMob model(Config(core::EncoderType::kRnn, 7));
  core::ForwardPlanner planner(model);
  planner.SetVerifyModeForTest(VerifyMode::kOff);
  core::PlanScratch scratch;
  const data::Sample sample = VerifierSample(3);
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  EXPECT_EQ(planner.compiles(), 1);
  EXPECT_EQ(planner.verifies(), 0);
}

}  // namespace
}  // namespace adamove::nn::plan
