#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamove::nn {
namespace {

/// Shape and bounds violations are programmer errors and must abort (the
/// no-exceptions policy: a silent out-of-range read in the serving path is
/// worse than a crash). These tests pin the abort behaviour of the Tensor
/// API surface that core/ and serve/ lean on.

TEST(TensorDeathTest, FromVectorRejectsSizeMismatch) {
  EXPECT_DEATH(Tensor::FromVector({2, 3}, {1, 2, 3, 4}), "CHECK");
  EXPECT_DEATH(Tensor::FromVector({2}, {1, 2, 3}), "CHECK");
}

TEST(TensorDeathTest, FromVectorAcceptsMatchingSize) {
  const Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorDeathTest, AtRejectsOutOfRangeIndices) {
  const Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_DEATH(t.at(2, 0), "CHECK");   // row past the end
  EXPECT_DEATH(t.at(0, 3), "CHECK");   // col past the end
  EXPECT_DEATH(t.at(-1, 0), "CHECK");  // negative row
  EXPECT_DEATH(t.at(0, -1), "CHECK");  // negative col
}

TEST(TensorDeathTest, SetRejectsOutOfRangeIndices) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_DEATH(t.set(2, 0, 1.0f), "CHECK");
  EXPECT_DEATH(t.set(0, 2, 1.0f), "CHECK");
  t.set(1, 1, 9.0f);  // in range: fine
  EXPECT_EQ(t.at(1, 1), 9.0f);
}

TEST(TensorDeathTest, MatMulRejectsInnerDimensionMismatch) {
  const Tensor a = Tensor::Zeros({2, 3});
  const Tensor b = Tensor::Zeros({4, 2});  // inner dims 3 vs 4
  EXPECT_DEATH(MatMul(a, b), "CHECK");
}

TEST(TensorDeathTest, MatMulAcceptsCompatibleShapes) {
  const Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b = Tensor::Zeros({3, 4});
  const Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 4);
}

TEST(TensorDeathTest, SliceRejectsOutOfRangeWindows) {
  const Tensor t = Tensor::Zeros({3, 4});
  EXPECT_DEATH(SliceRows(t, 2, 2), "CHECK");  // 2+2 > 3 rows
  EXPECT_DEATH(SliceCols(t, 4, 1), "CHECK");  // start past the end
  EXPECT_DEATH(Row(t, 3), "CHECK");
}

}  // namespace
}  // namespace adamove::nn
