#include "nn/serialize.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/durable_io.h"
#include "common/rng.h"
#include "nn/layers.h"

namespace adamove::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripsNamedParameters) {
  common::Rng rng(1);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({2}, rng);
  const std::string path = TempPath("adamove_ser_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}, {"b", b}}));

  Tensor a2 = Tensor::Zeros({3, 4});
  Tensor b2 = Tensor::Zeros({2});
  ASSERT_TRUE(LoadParameters(path, {{"a", a2}, {"b", b2}}));
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnMissingEntry) {
  common::Rng rng(2);
  Tensor a = Tensor::Randn({2, 2}, rng);
  const std::string path = TempPath("adamove_ser_missing.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}}));
  Tensor b = Tensor::Zeros({2, 2});
  EXPECT_FALSE(LoadParameters(path, {{"not_there", b}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnShapeMismatch) {
  common::Rng rng(3);
  Tensor a = Tensor::Randn({2, 2}, rng);
  const std::string path = TempPath("adamove_ser_shape.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}}));
  Tensor wrong = Tensor::Zeros({2, 3});
  EXPECT_FALSE(LoadParameters(path, {{"a", wrong}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnMissingFileOrBadMagic) {
  Tensor a = Tensor::Zeros({1});
  EXPECT_FALSE(LoadParameters("/nonexistent/path.bin", {{"a", a}}));
  const std::string path = TempPath("adamove_ser_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadParameters(path, {{"a", a}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleRoundTripPreservesForward) {
  common::Rng rng(4);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Randn({2, 4}, rng);
  const std::vector<float> before = layer.Forward(x).data();

  const std::string path = TempPath("adamove_ser_module.bin");
  ASSERT_TRUE(SaveModule(path, layer));

  common::Rng rng2(999);
  Linear restored(4, 3, rng2);  // different init
  EXPECT_NE(restored.Forward(x).data(), before);
  ASSERT_TRUE(LoadModule(path, restored));
  EXPECT_EQ(restored.Forward(x).data(), before);
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleNamesAreHierarchical) {
  common::Rng rng(5);
  Linear layer(2, 2, rng);
  auto named = layer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(SerializeTest, SavesWriteTheV2FramedFormat) {
  common::Rng rng(6);
  Tensor a = Tensor::Randn({2, 3}, rng);
  const std::string path = TempPath("adamove_ser_v2magic.bin");
  ASSERT_TRUE(SaveParametersStatus(path, {{"a", a}}));
  // The file is a durable_io framed file under the v2 magic: header frame
  // {version=2, count} plus one frame per tensor.
  common::FramedRead framed;
  ASSERT_TRUE(common::ReadFramedFile(path, kCheckpointMagicV2, &framed));
  EXPECT_FALSE(framed.torn_tail);
  ASSERT_EQ(framed.frames.size(), 2u);
  common::WireReader header(framed.frames[0]);
  uint32_t version = 0, count = 0;
  ASSERT_TRUE(header.ReadU32(&version));
  ASSERT_TRUE(header.ReadU32(&count));
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(count, 1u);
  std::remove(path.c_str());
}

TEST(SerializeTest, LegacyV1FilesStillLoad) {
  common::Rng rng(7);
  Tensor a = Tensor::Randn({3, 2}, rng);
  Tensor b = Tensor::Randn({5}, rng);
  const std::string path = TempPath("adamove_ser_v1compat.bin");
  ASSERT_TRUE(SaveParametersV1(path, {{"a", a}, {"b", b}}));

  Tensor a2 = Tensor::Zeros({3, 2});
  Tensor b2 = Tensor::Zeros({5});
  common::IoResult r = LoadParametersStatus(path, {{"a", a2}, {"b", b2}});
  ASSERT_TRUE(r) << r.error;
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());
  std::remove(path.c_str());
}

TEST(SerializeTest, V1ToV2MigrationPreservesModule) {
  common::Rng rng(8);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Randn({2, 4}, rng);
  const std::vector<float> before = layer.Forward(x).data();

  // The upgrade path: a model checkpointed under the legacy format is
  // loaded, re-saved in v2, and reloaded — forwards stay bit-identical.
  const std::string v1_path = TempPath("adamove_ser_migrate_v1.bin");
  const std::string v2_path = TempPath("adamove_ser_migrate_v2.bin");
  ASSERT_TRUE(SaveParametersV1(v1_path, layer.NamedParameters()));
  common::Rng rng2(999);
  Linear migrated(4, 3, rng2);
  ASSERT_TRUE(LoadModuleStatus(v1_path, migrated));
  ASSERT_TRUE(SaveModuleStatus(v2_path, migrated));
  common::Rng rng3(555);
  Linear restored(4, 3, rng3);
  ASSERT_TRUE(LoadModuleStatus(v2_path, restored));
  EXPECT_EQ(restored.Forward(x).data(), before);
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
}

TEST(SerializeTest, HostileV1CountIsRejectedBeforeAllocating) {
  // A v1 file whose count field claims 2^31 entries: the hardened parser
  // must bound it against the bytes actually present instead of looping
  // (or reserving) by the hostile value.
  std::string bytes;
  common::AppendU32(&bytes, kCheckpointMagicV1);
  common::AppendU32(&bytes, 0x80000000u);
  const std::string path = TempPath("adamove_ser_hostile_count.bin");
  ASSERT_TRUE(common::WriteFileAtomic(path, bytes));
  Tensor a = Tensor::Zeros({1});
  common::IoResult r = LoadParametersStatus(path, {{"a", a}});
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("entry count"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(SerializeTest, StructuredErrorsNameTheOffendingEntry) {
  // One good record followed by a record whose shape overruns the file:
  // the error names the entry by index and name.
  std::string bytes;
  common::AppendU32(&bytes, kCheckpointMagicV1);
  common::AppendU32(&bytes, 2);  // two entries
  common::AppendU32(&bytes, 4);  // name "good"
  bytes += "good";
  common::AppendU32(&bytes, 1);  // rank 1
  common::AppendU32(&bytes, 2);  // dim 2
  const float payload[2] = {1.0f, 2.0f};
  common::AppendF32Array(&bytes, payload, 2);
  common::AppendU32(&bytes, 3);  // name "bad"
  bytes += "bad";
  common::AppendU32(&bytes, 1);    // rank 1
  common::AppendU32(&bytes, 100);  // dim 100: far beyond the bytes present
  const std::string path = TempPath("adamove_ser_offender.bin");
  ASSERT_TRUE(common::WriteFileAtomic(path, bytes));
  Tensor a = Tensor::Zeros({2});
  common::IoResult r = LoadParametersStatus(path, {{"good", a}});
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("entry 1"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("'bad'"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("shape larger"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(SerializeTest, ZeroLengthNamesAreRejected) {
  std::string bytes;
  common::AppendU32(&bytes, kCheckpointMagicV1);
  common::AppendU32(&bytes, 1);
  common::AppendU32(&bytes, 0);  // zero-length name
  common::AppendU32(&bytes, 0);  // rank 0
  const std::string path = TempPath("adamove_ser_zeroname.bin");
  ASSERT_TRUE(common::WriteFileAtomic(path, bytes));
  Tensor a = Tensor::Zeros({1});
  common::IoResult r = LoadParametersStatus(path, {{"a", a}});
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("zero-length name"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(SerializeTest, V2TornTailIsAHardError) {
  common::Rng rng(9);
  Tensor a = Tensor::Randn({8, 8}, rng);
  const std::string path = TempPath("adamove_ser_torn.bin");
  ASSERT_TRUE(SaveParametersStatus(path, {{"a", a}}));
  std::string bytes;
  ASSERT_TRUE(common::ReadFileAll(path, &bytes));
  // A checkpoint cut off mid-tensor is useless — unlike serving snapshots,
  // every tensor is required, so a torn tail must fail the load.
  ASSERT_TRUE(
      common::WriteFileAtomic(path, std::string_view(bytes)
                                        .substr(0, bytes.size() - 10)));
  Tensor a2 = Tensor::Zeros({8, 8});
  common::IoResult r = LoadParametersStatus(path, {{"a", a2}});
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("torn tail"), std::string::npos) << r.error;
  std::remove(path.c_str());
}

TEST(SerializeTest, FailedLoadLeavesEveryTensorUntouched) {
  common::Rng rng(10);
  Tensor a = Tensor::Randn({2, 2}, rng);
  Tensor b = Tensor::Randn({3}, rng);
  const std::string path = TempPath("adamove_ser_atomic_load.bin");
  ASSERT_TRUE(SaveParametersStatus(path, {{"a", a}, {"b", b}}));

  // `b` has the wrong shape, so the load must fail — and `a`, though
  // present and well-formed in the file, must not have been written either
  // (verify-all-then-apply-all: no half-loaded model).
  Tensor a2 = Tensor::Zeros({2, 2});
  Tensor b2 = Tensor::Zeros({4});
  const std::vector<float> a2_before = a2.data();
  common::IoResult r = LoadParametersStatus(path, {{"a", a2}, {"b", b2}});
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("shape mismatch"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("'b'"), std::string::npos) << r.error;
  EXPECT_EQ(a2.data(), a2_before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::nn
