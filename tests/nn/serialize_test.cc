#include "nn/serialize.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"

namespace adamove::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripsNamedParameters) {
  common::Rng rng(1);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor b = Tensor::Randn({2}, rng);
  const std::string path = TempPath("adamove_ser_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}, {"b", b}}));

  Tensor a2 = Tensor::Zeros({3, 4});
  Tensor b2 = Tensor::Zeros({2});
  ASSERT_TRUE(LoadParameters(path, {{"a", a2}, {"b", b2}}));
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnMissingEntry) {
  common::Rng rng(2);
  Tensor a = Tensor::Randn({2, 2}, rng);
  const std::string path = TempPath("adamove_ser_missing.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}}));
  Tensor b = Tensor::Zeros({2, 2});
  EXPECT_FALSE(LoadParameters(path, {{"not_there", b}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnShapeMismatch) {
  common::Rng rng(3);
  Tensor a = Tensor::Randn({2, 2}, rng);
  const std::string path = TempPath("adamove_ser_shape.bin");
  ASSERT_TRUE(SaveParameters(path, {{"a", a}}));
  Tensor wrong = Tensor::Zeros({2, 3});
  EXPECT_FALSE(LoadParameters(path, {{"a", wrong}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, FailsOnMissingFileOrBadMagic) {
  Tensor a = Tensor::Zeros({1});
  EXPECT_FALSE(LoadParameters("/nonexistent/path.bin", {{"a", a}}));
  const std::string path = TempPath("adamove_ser_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadParameters(path, {{"a", a}}));
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleRoundTripPreservesForward) {
  common::Rng rng(4);
  Linear layer(4, 3, rng);
  Tensor x = Tensor::Randn({2, 4}, rng);
  const std::vector<float> before = layer.Forward(x).data();

  const std::string path = TempPath("adamove_ser_module.bin");
  ASSERT_TRUE(SaveModule(path, layer));

  common::Rng rng2(999);
  Linear restored(4, 3, rng2);  // different init
  EXPECT_NE(restored.Forward(x).data(), before);
  ASSERT_TRUE(LoadModule(path, restored));
  EXPECT_EQ(restored.Forward(x).data(), before);
  std::remove(path.c_str());
}

TEST(SerializeTest, ModuleNamesAreHierarchical) {
  common::Rng rng(5);
  Linear layer(2, 2, rng);
  auto named = layer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

}  // namespace
}  // namespace adamove::nn
