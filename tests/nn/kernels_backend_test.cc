// Cross-backend agreement suite for the kernel dispatch layer (DESIGN.md
// §13): every kernel is run under the scalar backend (the bit-identical
// reference) and under the simd backend, across odd and remainder-heavy
// sizes 1..17 that stress every vector-width tail path.
//
//   * Exact-class kernels (VecMatCols, VecMatColsF64, Axpy) must agree
//     bit-for-bit: their simd implementations preserve the scalar
//     per-element operation sequence.
//   * Tolerance-class kernels (MatMul*, the transcendental fused
//     activations, softmax, entropy, the PTTA centroid dot) must agree to
//     tight numeric tolerances.
//
// On hosts without vector kernels, requesting kSimd installs scalar (the
// dispatcher's availability fallback), so every comparison degenerates to
// scalar-vs-scalar and still passes — the suite is portable by design.
//
// Also here: the dispatcher-observability tests (ADAMOVE_KERNEL_BACKEND
// env override must be visible through ActiveBackend/BackendDescription)
// and the unaligned-load regression test (kernels take interior, deliberately
// misaligned pointers; runs under the `nn` label so the UBSan stage of
// scripts/check.sh proves the loads are UB-free on every backend).

#include "nn/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/rng.h"

namespace adamove::nn {
namespace {

namespace k = ::adamove::nn::kernels;

/// Sizes that exercise: size-1 degenerate, sub-vector-width, exact widths
/// (4, 8, 16), and every remainder class around them.
constexpr int64_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 15, 16, 17};

bool SimdAvailable() {
  k::SetBackendForTest(k::Backend::kSimd);
  const bool available = k::ActiveBackend() == k::Backend::kSimd;
  k::SetBackendForTest(k::Backend::kScalar);
  return available;
}

std::vector<float> RandomVec(size_t n, common::Rng& rng,
                             double zero_fraction = 0.15) {
  std::vector<float> v(n);
  for (auto& x : v) {
    // Exact zeros exercise the scalar skip-zero shortcuts, which must not
    // perturb cross-backend agreement.
    x = rng.Uniform(0.0, 1.0) < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.Uniform(-2.0, 2.0));
  }
  return v;
}

/// Runs `fn` (which writes its result into caller-captured storage) once
/// per backend and returns the two results via out-params.
template <typename Fn>
void OnBothBackends(Fn fn, std::vector<float>* scalar_out,
                    std::vector<float>* simd_out) {
  k::SetBackendForTest(k::Backend::kScalar);
  *scalar_out = fn();
  k::SetBackendForTest(k::Backend::kSimd);
  *simd_out = fn();
  k::SetBackendForTest(k::Backend::kScalar);
}

void ExpectBitIdentical(const std::vector<float>& ref,
                        const std::vector<float>& got,
                        const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(ref[i], got[i]) << what << " diverges at [" << i << "]";
  }
}

void ExpectClose(const std::vector<float>& ref, const std::vector<float>& got,
                 const std::string& what, double rtol = 2e-5) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double tol =
        rtol * std::max(1.0, std::abs(static_cast<double>(ref[i])));
    EXPECT_NEAR(ref[i], got[i], tol) << what << " at [" << i << "]";
  }
}

// -- exact-class kernels ------------------------------------------------------

TEST(KernelsBackendTest, VecMatColsBitIdenticalAcrossBackends) {
  common::Rng rng(101);
  for (int64_t n : kSizes) {
    for (int64_t m : kSizes) {
      const std::vector<float> x = RandomVec(static_cast<size_t>(n), rng);
      const std::vector<float> w = RandomVec(static_cast<size_t>(n * m), rng);
      for (bool skip_zero : {false, true}) {
        std::vector<float> ref, got;
        OnBothBackends(
            [&] {
              std::vector<float> out(static_cast<size_t>(m), 0.25f);
              k::VecMatCols(x.data(), w.data(), out.data(), n, m, skip_zero);
              return out;
            },
            &ref, &got);
        ExpectBitIdentical(ref, got,
                           "VecMatCols n=" + std::to_string(n) +
                               " m=" + std::to_string(m) +
                               " skip=" + std::to_string(skip_zero));
      }
    }
  }
}

TEST(KernelsBackendTest, VecMatColsF64BitIdenticalAcrossBackends) {
  common::Rng rng(102);
  for (int64_t n : kSizes) {
    for (int64_t m : kSizes) {
      const std::vector<float> x = RandomVec(static_cast<size_t>(n), rng);
      const std::vector<float> w = RandomVec(static_cast<size_t>(n * m), rng);
      std::vector<float> ref, got;
      OnBothBackends(
          [&] {
            std::vector<float> out(static_cast<size_t>(m), 0.0f);
            k::VecMatColsF64(x.data(), w.data(), out.data(), n, m);
            return out;
          },
          &ref, &got);
      ExpectBitIdentical(ref, got,
                         "VecMatColsF64 n=" + std::to_string(n) +
                             " m=" + std::to_string(m));
    }
  }
}

TEST(KernelsBackendTest, AxpyBitIdenticalAcrossBackends) {
  common::Rng rng(103);
  for (int64_t n : kSizes) {
    const std::vector<float> x = RandomVec(static_cast<size_t>(n), rng);
    const std::vector<float> y0 = RandomVec(static_cast<size_t>(n), rng);
    for (float alpha : {0.0f, 1.0f, -0.37f}) {
      std::vector<float> ref, got;
      OnBothBackends(
          [&] {
            std::vector<float> y = y0;
            k::Axpy(n, alpha, x.data(), y.data());
            return y;
          },
          &ref, &got);
      ExpectBitIdentical(ref, got,
                         "Axpy n=" + std::to_string(n) +
                             " alpha=" + std::to_string(alpha));
    }
  }
}

// -- tolerance-class kernels --------------------------------------------------

TEST(KernelsBackendTest, MatMulVariantsAgreeAcrossBackends) {
  common::Rng rng(104);
  for (int64_t n : {1, 3, 4, 5, 8, 17}) {
    for (int64_t kk : {1, 2, 7, 16}) {
      for (int64_t m : kSizes) {
        const auto nu = static_cast<size_t>(n), ku = static_cast<size_t>(kk),
                   mu = static_cast<size_t>(m);
        const std::vector<float> a_nk = RandomVec(nu * ku, rng);
        const std::vector<float> b_km = RandomVec(ku * mu, rng);
        const std::vector<float> a_kn = RandomVec(ku * nu, rng);
        const std::vector<float> b_mk = RandomVec(mu * ku, rng);
        const std::vector<float> c0 = RandomVec(nu * mu, rng, 0.0);
        const std::string shape = " n=" + std::to_string(n) +
                                  " k=" + std::to_string(kk) +
                                  " m=" + std::to_string(m);
        std::vector<float> ref, got;
        OnBothBackends(
            [&] {
              std::vector<float> c = c0;
              k::MatMulNN(a_nk.data(), b_km.data(), c.data(), n, kk, m);
              return c;
            },
            &ref, &got);
        ExpectClose(ref, got, "MatMulNN" + shape);
        OnBothBackends(
            [&] {
              std::vector<float> c = c0;
              k::MatMulTN(a_kn.data(), b_km.data(), c.data(), kk, n, m);
              return c;
            },
            &ref, &got);
        ExpectClose(ref, got, "MatMulTN" + shape);
        OnBothBackends(
            [&] {
              std::vector<float> c = c0;
              k::MatMulNT(a_nk.data(), b_mk.data(), c.data(), n, kk, m);
              return c;
            },
            &ref, &got);
        ExpectClose(ref, got, "MatMulNT" + shape);
      }
    }
  }
}

TEST(KernelsBackendTest, FusedBiasActivationsAgreeAcrossBackends) {
  common::Rng rng(105);
  for (int64_t rows : {1, 3, 8, 17}) {
    for (int64_t cols : kSizes) {
      const auto ru = static_cast<size_t>(rows), cu = static_cast<size_t>(cols);
      // Wide range so the tanh/sigmoid large-|x| branches and the exp
      // clamp paths are hit, not just the polynomial core.
      std::vector<float> x(ru * cu);
      for (auto& v : x) v = static_cast<float>(rng.Uniform(-12.0, 12.0));
      const std::vector<float> brow = RandomVec(cu, rng);
      const std::vector<float> bfull = RandomVec(ru * cu, rng);
      const std::string shape =
          " rows=" + std::to_string(rows) + " cols=" + std::to_string(cols);
      for (bool broadcast : {true, false}) {
        const float* bias = broadcast ? brow.data() : bfull.data();
        std::vector<float> ref, got;
        OnBothBackends(
            [&] {
              std::vector<float> out(ru * cu);
              k::BiasTanh(x.data(), bias, out.data(), rows, cols, broadcast);
              return out;
            },
            &ref, &got);
        ExpectClose(ref, got, "BiasTanh" + shape, 4e-6);
        OnBothBackends(
            [&] {
              std::vector<float> out(ru * cu);
              k::BiasSigmoid(x.data(), bias, out.data(), rows, cols,
                             broadcast);
              return out;
            },
            &ref, &got);
        ExpectClose(ref, got, "BiasSigmoid" + shape, 4e-6);
      }
    }
  }
}

TEST(KernelsBackendTest, SoftmaxFamilyAgreesAcrossBackends) {
  common::Rng rng(106);
  for (int64_t rows : {1, 2, 5}) {
    for (int64_t cols : kSizes) {
      const auto ru = static_cast<size_t>(rows), cu = static_cast<size_t>(cols);
      std::vector<float> x(ru * cu);
      for (auto& v : x) v = static_cast<float>(rng.Uniform(-30.0, 30.0));
      std::vector<int64_t> valid(ru);
      for (int64_t r = 0; r < rows; ++r) {
        valid[static_cast<size_t>(r)] =
            1 + static_cast<int64_t>(rng.Uniform(0.0, 1.0) *
                                     static_cast<double>(cols - 1) + 0.5);
      }
      const std::string shape =
          " rows=" + std::to_string(rows) + " cols=" + std::to_string(cols);
      std::vector<float> ref, got;
      OnBothBackends(
          [&] {
            std::vector<float> out(ru * cu);
            k::SoftmaxRows(x.data(), out.data(), rows, cols);
            return out;
          },
          &ref, &got);
      ExpectClose(ref, got, "SoftmaxRows" + shape, 4e-6);
      OnBothBackends(
          [&] {
            std::vector<float> out(ru * cu);
            k::MaskedSoftmaxRows(x.data(), out.data(), rows, cols,
                                 valid.data());
            return out;
          },
          &ref, &got);
      ExpectClose(ref, got, "MaskedSoftmaxRows" + shape, 4e-6);
      // Masked-out tail must be exactly zero on every backend.
      k::SetBackendForTest(k::Backend::kSimd);
      std::vector<float> masked(ru * cu);
      k::MaskedSoftmaxRows(x.data(), masked.data(), rows, cols, valid.data());
      k::SetBackendForTest(k::Backend::kScalar);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = valid[static_cast<size_t>(r)]; c < cols; ++c) {
          EXPECT_EQ(0.0f, masked[static_cast<size_t>(r * cols + c)]) << shape;
        }
      }
    }
  }
}

TEST(KernelsBackendTest, SoftmaxEntropyAgreesAcrossBackends) {
  common::Rng rng(107);
  for (int64_t n : kSizes) {
    std::vector<float> logits(static_cast<size_t>(n));
    for (auto& v : logits) v = static_cast<float>(rng.Uniform(-10.0, 10.0));
    k::SetBackendForTest(k::Backend::kScalar);
    const float ref = k::SoftmaxEntropy(logits.data(), n);
    k::SetBackendForTest(k::Backend::kSimd);
    const float got = k::SoftmaxEntropy(logits.data(), n);
    k::SetBackendForTest(k::Backend::kScalar);
    EXPECT_NEAR(ref, got, 1e-5) << "SoftmaxEntropy n=" << n;
    EXPECT_GE(got, -1e-6f);  // entropy is non-negative on every backend
  }
}

TEST(KernelsBackendTest, PttaCentroidDotAgreesAcrossBackends) {
  common::Rng rng(108);
  for (int64_t h : kSizes) {
    for (int64_t keep : {0, 1, 2, 5}) {
      for (int64_t wstride : {1, 3}) {
        const std::vector<float> query =
            RandomVec(static_cast<size_t>(h), rng);
        const std::vector<float> wcol =
            RandomVec(static_cast<size_t>(h * wstride), rng);
        const std::vector<float> patterns =
            RandomVec(static_cast<size_t>(std::max<int64_t>(keep, 1) * h),
                      rng);
        k::SetBackendForTest(k::Backend::kScalar);
        const double ref = k::PttaCentroidDot(query.data(), wcol.data(),
                                              wstride, patterns.data(), keep,
                                              h);
        k::SetBackendForTest(k::Backend::kSimd);
        const double got = k::PttaCentroidDot(query.data(), wcol.data(),
                                              wstride, patterns.data(), keep,
                                              h);
        k::SetBackendForTest(k::Backend::kScalar);
        // Per-element centroid arithmetic is identical (double, ascending
        // k); only the final dot reduction is reassociated, so the bound is
        // double-precision-tight.
        EXPECT_NEAR(ref, got, 1e-10 * std::max(1.0, std::abs(ref)))
            << "PttaCentroidDot h=" << h << " keep=" << keep
            << " wstride=" << wstride;
      }
    }
  }
}

// -- dispatcher observability -------------------------------------------------

TEST(KernelsBackendTest, EnvOverrideForcesScalar) {
  setenv("ADAMOVE_KERNEL_BACKEND", "scalar", /*overwrite=*/1);
  EXPECT_EQ(k::Backend::kScalar, k::RefreshBackendFromEnv());
  EXPECT_EQ(k::Backend::kScalar, k::ActiveBackend());
  EXPECT_STREQ("scalar", k::BackendName(k::ActiveBackend()));
  EXPECT_EQ("scalar", k::BackendDescription());
  unsetenv("ADAMOVE_KERNEL_BACKEND");
  k::SetBackendForTest(k::Backend::kScalar);
}

TEST(KernelsBackendTest, EnvOverrideRequestsSimdWithAvailabilityFallback) {
  const bool simd = SimdAvailable();
  setenv("ADAMOVE_KERNEL_BACKEND", "simd", /*overwrite=*/1);
  const k::Backend active = k::RefreshBackendFromEnv();
  if (simd) {
    EXPECT_EQ(k::Backend::kSimd, active);
    EXPECT_STREQ("simd", k::BackendName(active));
    // The description names the concrete ISA, e.g. "simd (avx2+fma)".
    EXPECT_EQ(0u, k::BackendDescription().find("simd"));
  } else {
    // No vector kernels on this host: the request falls back to scalar
    // instead of crashing on unsupported instructions.
    EXPECT_EQ(k::Backend::kScalar, active);
  }
  unsetenv("ADAMOVE_KERNEL_BACKEND");
  k::SetBackendForTest(k::Backend::kScalar);
}

TEST(KernelsBackendTest, DefaultSelectionPicksBestAvailable) {
  const bool simd = SimdAvailable();
  unsetenv("ADAMOVE_KERNEL_BACKEND");
  const k::Backend active = k::RefreshBackendFromEnv();
  EXPECT_EQ(simd ? k::Backend::kSimd : k::Backend::kScalar, active);
  // On x86 the CPUID gate and the selection must agree.
  if (common::CpuHasAvx2() && common::CpuHasFma()) {
    EXPECT_EQ(k::Backend::kSimd, active);
  }
  k::SetBackendForTest(k::Backend::kScalar);
}

// -- unaligned-load regression ------------------------------------------------

// Kernels receive interior pointers in production (Row() views, arena
// offsets, strided classifier columns), so no backend may assume its inputs
// are vector-aligned. Feed every kernel deliberately offset views of an
// aligned allocation; under the UBSan stage of scripts/check.sh this proves
// the loads are UB-free, and the cross-backend comparison proves the tail
// handling is still right at misaligned bases.
TEST(KernelsBackendTest, KernelsAcceptMisalignedPointers) {
  common::Rng rng(109);
  constexpr int64_t kN = 9, kK = 7, kM = 13;
  constexpr size_t kSlack = 16;
  common::AlignedBuffer<float> pool(3 * kSlack + 4096);
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  for (size_t offset : {1u, 3u, 5u}) {
    // Carve three disjoint, deliberately misaligned regions out of the pool.
    float* a = pool.data() + offset;
    float* b = a + kN * kK + static_cast<ptrdiff_t>(kSlack);
    float* c = b + kK * kM + static_cast<ptrdiff_t>(kSlack);
    ASSERT_NE(0u, reinterpret_cast<uintptr_t>(a) % 32);
    for (k::Backend backend : {k::Backend::kScalar, k::Backend::kSimd}) {
      k::SetBackendForTest(backend);
      std::vector<float> out(kN * kM, 0.0f);
      k::MatMulNN(a, b, out.data(), kN, kK, kM);
      k::VecMatCols(a, b, out.data(), kK, kM, /*skip_zero=*/true);
      k::VecMatColsF64(a, b, out.data(), kK, kM);
      k::BiasTanh(b, a, out.data(), kK, kM, /*broadcast_bias=*/true);
      k::BiasSigmoid(b, a, out.data(), kK, kM, /*broadcast_bias=*/true);
      k::Axpy(kN * kK, 0.5f, a, c);
      k::SoftmaxRows(b, out.data(), kK, kM);
      const double dot = k::PttaCentroidDot(a, b, 2, c, 3, kK);
      EXPECT_TRUE(std::isfinite(dot));
      for (float v : out) EXPECT_TRUE(std::isfinite(v));
    }
  }
  k::SetBackendForTest(k::Backend::kScalar);
}

}  // namespace
}  // namespace adamove::nn
