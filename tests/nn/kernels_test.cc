// Determinism contract of the parallel compute kernels: results must be
// bit-identical to a serial reference at any thread count (1, 2, 8),
// including odd shapes and sizes that do not divide the internal tiles.
// Runs under the `concurrency` ctest label so ADAMOVE_SANITIZE=thread
// exercises the ParallelFor fan-out.

#include "nn/kernels.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace adamove::nn {
namespace {

// Every comparison in this file is against the historical serial loops
// verbatim, i.e. against the scalar backend's definition of the arithmetic.
// Pin it for the whole binary; scalar-vs-simd agreement has its own suite
// (kernels_backend_test).
const bool kScalarPinned = [] {
  kernels::SetBackendForTest(kernels::Backend::kScalar);
  return true;
}();

constexpr int kThreadCounts[] = {1, 2, 8};

// Runs `fn` once per swept thread count, then restores the default pool.
template <typename Fn>
void ForEachThreadCount(Fn fn) {
  for (int threads : kThreadCounts) {
    common::SetKernelThreads(threads);
    fn(threads);
  }
  common::SetKernelThreads(0);
}

std::vector<float> RandomVec(size_t n, common::Rng& rng,
                             double zero_fraction = 0.1) {
  std::vector<float> v(n);
  for (auto& x : v) {
    // Exact zeros exercise the skip-zero shortcuts the kernels must
    // replicate from the historical serial loops.
    x = rng.Uniform(0.0, 1.0) < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return v;
}

// -- serial references (the historical loops, verbatim) ----------------------

void RefMatMulNN(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * m;
      for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void RefMatMulTN(const float* a, const float* b, float* c, int64_t k,
                 int64_t n, int64_t m) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * n;
    const float* brow = b + p * m;
    for (int64_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * m;
      for (int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void RefMatMulNT(const float* a, const float* b, float* c, int64_t n,
                 int64_t k, int64_t m) {
  for (int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (int64_t j = 0; j < m; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

// Shapes chosen so row tiles (8) and column tiles (128) never divide
// evenly, plus degenerate vector cases.
struct Shape {
  int64_t n, k, m;
};
const Shape kShapes[] = {{1, 7, 13},   {3, 5, 2},    {17, 23, 31},
                         {33, 129, 65}, {8, 16, 128}, {70, 67, 259}};

TEST(KernelsTest, MatMulNNBitIdenticalAcrossThreadCounts) {
  common::Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.n * s.k), rng);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.m), rng);
    std::vector<float> expected(static_cast<size_t>(s.n * s.m), 0.0f);
    RefMatMulNN(a.data(), b.data(), expected.data(), s.n, s.k, s.m);
    ForEachThreadCount([&](int threads) {
      std::vector<float> got(expected.size(), 0.0f);
      kernels::MatMulNN(a.data(), b.data(), got.data(), s.n, s.k, s.m);
      EXPECT_EQ(got, expected) << "threads=" << threads << " n=" << s.n
                               << " k=" << s.k << " m=" << s.m;
    });
  }
}

TEST(KernelsTest, MatMulTNBitIdenticalAcrossThreadCounts) {
  common::Rng rng(12);
  for (const Shape& s : kShapes) {
    // A is {k, n}: transpose-first operand.
    const auto a = RandomVec(static_cast<size_t>(s.k * s.n), rng);
    const auto b = RandomVec(static_cast<size_t>(s.k * s.m), rng);
    std::vector<float> expected(static_cast<size_t>(s.n * s.m), 0.0f);
    RefMatMulTN(a.data(), b.data(), expected.data(), s.k, s.n, s.m);
    ForEachThreadCount([&](int threads) {
      std::vector<float> got(expected.size(), 0.0f);
      kernels::MatMulTN(a.data(), b.data(), got.data(), s.k, s.n, s.m);
      EXPECT_EQ(got, expected) << "threads=" << threads << " n=" << s.n
                               << " k=" << s.k << " m=" << s.m;
    });
  }
}

TEST(KernelsTest, MatMulNTBitIdenticalAcrossThreadCounts) {
  common::Rng rng(13);
  for (const Shape& s : kShapes) {
    const auto a = RandomVec(static_cast<size_t>(s.n * s.k), rng);
    // B is {m, k}: transpose-second operand.
    const auto b = RandomVec(static_cast<size_t>(s.m * s.k), rng);
    std::vector<float> expected(static_cast<size_t>(s.n * s.m), 0.0f);
    RefMatMulNT(a.data(), b.data(), expected.data(), s.n, s.k, s.m);
    ForEachThreadCount([&](int threads) {
      std::vector<float> got(expected.size(), 0.0f);
      kernels::MatMulNT(a.data(), b.data(), got.data(), s.n, s.k, s.m);
      EXPECT_EQ(got, expected) << "threads=" << threads << " n=" << s.n
                               << " k=" << s.k << " m=" << s.m;
    });
  }
}

TEST(KernelsTest, VecMatColsMatchesPerColumnDots) {
  common::Rng rng(14);
  const int64_t n = 67, m = 259;
  const auto x = RandomVec(static_cast<size_t>(n), rng, 0.2);
  const auto w = RandomVec(static_cast<size_t>(n * m), rng);
  for (bool skip_zero : {false, true}) {
    std::vector<float> expected(static_cast<size_t>(m));
    for (int64_t l = 0; l < m; ++l) {
      float acc = 0.0f;
      for (int64_t i = 0; i < n; ++i) {
        if (skip_zero && x[static_cast<size_t>(i)] == 0.0f) continue;
        acc += x[static_cast<size_t>(i)] * w[static_cast<size_t>(i * m + l)];
      }
      expected[static_cast<size_t>(l)] = acc;
    }
    ForEachThreadCount([&](int threads) {
      std::vector<float> got(static_cast<size_t>(m), -1.0f);
      kernels::VecMatCols(x.data(), w.data(), got.data(), n, m, skip_zero);
      EXPECT_EQ(got, expected)
          << "threads=" << threads << " skip_zero=" << skip_zero;
    });
  }
}

TEST(KernelsTest, TransposeAssignAndAccumulate) {
  common::Rng rng(15);
  const int64_t n = 33, m = 259;
  const auto a = RandomVec(static_cast<size_t>(n * m), rng);
  std::vector<float> expected(static_cast<size_t>(m * n), 0.5f);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      expected[static_cast<size_t>(j * n + i)] =
          a[static_cast<size_t>(i * m + j)];
    }
  }
  std::vector<float> expected_acc(static_cast<size_t>(m * n), 0.5f);
  for (size_t i = 0; i < expected_acc.size(); ++i) {
    expected_acc[i] += expected[i];
  }
  ForEachThreadCount([&](int threads) {
    std::vector<float> got(static_cast<size_t>(m * n), 0.5f);
    kernels::TransposeInto(a.data(), got.data(), n, m, /*accumulate=*/false);
    EXPECT_EQ(got, expected) << "threads=" << threads;
    std::vector<float> got_acc = expected;  // start from a^T, add a^T again
    for (auto& v : got_acc) v = 0.5f;
    kernels::TransposeInto(a.data(), got_acc.data(), n, m,
                           /*accumulate=*/false);
    kernels::TransposeInto(a.data(), got_acc.data(), n, m,
                           /*accumulate=*/true);
    for (size_t i = 0; i < got_acc.size(); ++i) {
      EXPECT_EQ(got_acc[i], expected[i] + expected[i])
          << "threads=" << threads << " i=" << i;
    }
  });
}

TEST(KernelsTest, FusedBiasActivationsMatchTwoStepReference) {
  common::Rng rng(16);
  const int64_t rows = 37, cols = 131;
  const auto x = RandomVec(static_cast<size_t>(rows * cols), rng);
  const auto bias_row = RandomVec(static_cast<size_t>(cols), rng);
  const auto bias_full = RandomVec(static_cast<size_t>(rows * cols), rng);
  for (bool broadcast : {true, false}) {
    const float* b = broadcast ? bias_row.data() : bias_full.data();
    std::vector<float> want_tanh(x.size()), want_sig(x.size());
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r * cols + c);
        const float pre = x[i] + (broadcast ? b[c] : b[i]);
        want_tanh[i] = std::tanh(pre);
        want_sig[i] = 1.0f / (1.0f + std::exp(-pre));
      }
    }
    ForEachThreadCount([&](int threads) {
      std::vector<float> got(x.size());
      kernels::BiasTanh(x.data(), b, got.data(), rows, cols, broadcast);
      EXPECT_EQ(got, want_tanh)
          << "threads=" << threads << " broadcast=" << broadcast;
      kernels::BiasSigmoid(x.data(), b, got.data(), rows, cols, broadcast);
      EXPECT_EQ(got, want_sig)
          << "threads=" << threads << " broadcast=" << broadcast;
    });
  }
}

TEST(KernelsTest, AxpyBitIdenticalAcrossThreadCounts) {
  common::Rng rng(17);
  const int64_t n = 100003;  // prime: chunks never divide evenly
  const auto x = RandomVec(static_cast<size_t>(n), rng);
  const auto y0 = RandomVec(static_cast<size_t>(n), rng);
  std::vector<float> expected = y0;
  for (int64_t i = 0; i < n; ++i) {
    expected[static_cast<size_t>(i)] += 0.37f * x[static_cast<size_t>(i)];
  }
  ForEachThreadCount([&](int threads) {
    std::vector<float> got = y0;
    kernels::Axpy(n, 0.37f, x.data(), got.data());
    EXPECT_EQ(got, expected) << "threads=" << threads;
  });
}

TEST(KernelsTest, MaskedSoftmaxMatchesDenseSoftmaxWithAdditiveMask) {
  common::Rng rng(18);
  const int64_t t = 41;
  const auto x = RandomVec(static_cast<size_t>(t * t), rng, 0.0);
  std::vector<int64_t> valid(static_cast<size_t>(t));
  for (int64_t r = 0; r < t; ++r) valid[static_cast<size_t>(r)] = r + 1;
  // Reference: -1e9 additive mask then the dense row softmax.
  std::vector<float> masked = x;
  for (int64_t r = 0; r < t; ++r) {
    for (int64_t c = r + 1; c < t; ++c) {
      masked[static_cast<size_t>(r * t + c)] += -1e9f;
    }
  }
  std::vector<float> expected(masked.size());
  common::SetKernelThreads(1);
  kernels::SoftmaxRows(masked.data(), expected.data(), t, t);
  ForEachThreadCount([&](int threads) {
    std::vector<float> got(expected.size(), -1.0f);
    kernels::MaskedSoftmaxRows(x.data(), got.data(), t, t, valid.data());
    EXPECT_EQ(got, expected) << "threads=" << threads;
  });
}

// -- op level: forward AND backward identical at every thread count ---------

TEST(KernelsTest, MatMulOpForwardBackwardBitIdenticalAcrossThreadCounts) {
  common::Rng rng(19);
  const int64_t n = 35, k = 67, m = 131;
  const auto av = RandomVec(static_cast<size_t>(n * k), rng);
  const auto bv = RandomVec(static_cast<size_t>(k * m), rng);
  std::vector<float> out1, ga1, gb1;
  ForEachThreadCount([&](int threads) {
    Tensor a = Tensor::FromVector({n, k}, av, /*requires_grad=*/true);
    Tensor b = Tensor::FromVector({k, m}, bv, /*requires_grad=*/true);
    Tensor y = MatMul(a, b);
    Sum(Mul(y, y)).Backward();
    if (threads == 1) {
      out1 = y.data();
      ga1 = a.grad();
      gb1 = b.grad();
    } else {
      EXPECT_EQ(y.data(), out1) << "threads=" << threads;
      EXPECT_EQ(a.grad(), ga1) << "threads=" << threads;
      EXPECT_EQ(b.grad(), gb1) << "threads=" << threads;
    }
  });
}

TEST(KernelsTest, CausalSoftmaxOpMatchesMaskedReferenceWithGrad) {
  common::Rng rng(20);
  const int64_t t = 19;
  const auto xv = RandomVec(static_cast<size_t>(t * t), rng, 0.0);
  // Reference: materialized additive mask + dense Softmax.
  Tensor xr = Tensor::FromVector({t, t}, xv, /*requires_grad=*/true);
  Tensor mask = Tensor::Zeros({t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = i + 1; j < t; ++j) mask.set(i, j, -1e9f);
  }
  Tensor yr = Softmax(Add(xr, mask));
  Sum(Mul(yr, yr)).Backward();
  ForEachThreadCount([&](int threads) {
    Tensor x = Tensor::FromVector({t, t}, xv, /*requires_grad=*/true);
    Tensor y = CausalSoftmax(x);
    Sum(Mul(y, y)).Backward();
    EXPECT_EQ(y.data(), yr.data()) << "threads=" << threads;
    ASSERT_EQ(x.grad().size(), xr.grad().size());
    for (size_t i = 0; i < x.grad().size(); ++i) {
      EXPECT_FLOAT_EQ(x.grad()[i], xr.grad()[i])
          << "threads=" << threads << " i=" << i;
    }
  });
}

TEST(KernelsTest, FusedAddActivationOpsMatchSeparateOpsWithGrad) {
  common::Rng rng(21);
  const int64_t rows = 9, cols = 33;
  const auto av = RandomVec(static_cast<size_t>(rows * cols), rng);
  const auto bv = RandomVec(static_cast<size_t>(cols), rng);
  Tensor ar = Tensor::FromVector({rows, cols}, av, true);
  Tensor br = Tensor::FromVector({1, cols}, bv, true);
  Tensor yr = Tanh(Add(ar, br));
  Sum(Mul(yr, yr)).Backward();
  ForEachThreadCount([&](int threads) {
    Tensor a = Tensor::FromVector({rows, cols}, av, true);
    Tensor b = Tensor::FromVector({1, cols}, bv, true);
    Tensor y = AddTanh(a, b);
    Sum(Mul(y, y)).Backward();
    EXPECT_EQ(y.data(), yr.data()) << "threads=" << threads;
    EXPECT_EQ(a.grad(), ar.grad()) << "threads=" << threads;
    EXPECT_EQ(b.grad(), br.grad()) << "threads=" << threads;
  });
  Tensor ys = Sigmoid(Add(ar, br));
  ForEachThreadCount([&](int threads) {
    Tensor a = Tensor::FromVector({rows, cols}, av, true);
    Tensor b = Tensor::FromVector({1, cols}, bv, true);
    Tensor y = AddSigmoid(a, b);
    EXPECT_EQ(y.data(), ys.data()) << "threads=" << threads;
  });
}

TEST(KernelsTest, NestedParallelForRunsInline) {
  // A chunk body that itself calls ParallelFor must not deadlock on the
  // shared pool; the nested loop runs inline on the owning thread.
  common::SetKernelThreads(4);
  std::vector<int> hits(64, 0);
  common::ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t outer = lo; outer < hi; ++outer) {
      common::ParallelFor(0, 8, 1, [&](int64_t l2, int64_t h2) {
        for (int64_t inner = l2; inner < h2; ++inner) {
          hits[static_cast<size_t>(outer * 8 + inner)] += 1;
        }
      });
    }
  });
  common::SetKernelThreads(0);
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace adamove::nn
