#include "nn/layers.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace adamove::nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  common::Rng rng(1);
  Linear layer(3, 5, rng);
  EXPECT_EQ(layer.in_features(), 3);
  EXPECT_EQ(layer.out_features(), 5);
  EXPECT_TRUE(layer.has_bias());
  Tensor x = Tensor::Randn({4, 3}, rng);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 5);
}

TEST(LinearTest, NoBiasVariant) {
  common::Rng rng(2);
  Linear layer(3, 5, rng, /*with_bias=*/false);
  EXPECT_FALSE(layer.has_bias());
  EXPECT_EQ(layer.Parameters().size(), 1u);
  // y(0) must be exactly 0 for a zero input without bias.
  Tensor x = Tensor::Zeros({1, 3});
  Tensor y = layer.Forward(x);
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
}

TEST(LinearTest, MatchesManualMatMul) {
  common::Rng rng(3);
  Linear layer(2, 2, rng);
  Tensor x = Tensor::FromVector({1, 2}, {1.0f, -1.0f});
  Tensor manual = Add(MatMul(x, layer.weight()), layer.bias());
  EXPECT_EQ(layer.Forward(x).data(), manual.data());
}

TEST(LinearTest, RejectsWrongInputWidth) {
  common::Rng rng(4);
  Linear layer(3, 5, rng);
  Tensor x = Tensor::Zeros({1, 4});
  EXPECT_DEATH(layer.Forward(x), "CHECK");
}

TEST(EmbeddingTest, LooksUpRows) {
  common::Rng rng(5);
  Embedding emb(6, 3, rng);
  Tensor y = emb.Forward({4, 4, 0});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 3);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_EQ(y.at(0, c), y.at(1, c));  // same index, same row
    EXPECT_EQ(y.at(0, c), emb.weight().at(4, c));
  }
}

TEST(EmbeddingTest, RejectsOutOfRange) {
  common::Rng rng(6);
  Embedding emb(6, 3, rng);
  EXPECT_DEATH(emb.Forward({6}), "CHECK");
  EXPECT_DEATH(emb.Forward({-1}), "CHECK");
}

TEST(LayerNormLayerTest, NormalizesRows) {
  LayerNormLayer ln(8);
  common::Rng rng(7);
  Tensor x = Tensor::Randn({3, 8}, rng, 5.0f);
  Tensor y = ln.Forward(x);
  // Default gain 1, bias 0: each row ~ zero mean, unit variance.
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0.0f, var = 0.0f;
    for (int64_t c = 0; c < 8; ++c) mean += y.at(r, c);
    mean /= 8.0f;
    for (int64_t c = 0; c < 8; ++c) {
      var += (y.at(r, c) - mean) * (y.at(r, c) - mean);
    }
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(ModuleTest, ParameterTreeCollectsHierarchically) {
  class Composite : public Module {
   public:
    explicit Composite(common::Rng& rng)
        : inner_(std::make_unique<Linear>(2, 2, rng)) {
      own_ = RegisterParameter("own", Tensor::Zeros({3}));
      RegisterModule("inner", inner_.get());
    }
    Tensor own_;
    std::unique_ptr<Linear> inner_;
  };
  common::Rng rng(8);
  Composite composite(rng);
  EXPECT_EQ(composite.Parameters().size(), 3u);  // own + weight + bias
  auto named = composite.NamedParameters();
  ASSERT_EQ(named.size(), 3u);
  EXPECT_EQ(named[0].first, "own");
  EXPECT_EQ(named[1].first, "inner.weight");
  EXPECT_EQ(named[2].first, "inner.bias");
  EXPECT_EQ(composite.NumParameters(), 3 + 4 + 2);
}

TEST(ModuleTest, ZeroGradClearsWholeTree) {
  common::Rng rng(9);
  Linear layer(2, 2, rng);
  Tensor x = Tensor::Randn({1, 2}, rng);
  Sum(Mul(layer.Forward(x), layer.Forward(x))).Backward();
  bool any_nonzero = false;
  for (auto& p : layer.Parameters()) {
    for (float g : p.grad()) any_nonzero = any_nonzero || g != 0.0f;
  }
  ASSERT_TRUE(any_nonzero);
  layer.ZeroGrad();
  for (auto& p : layer.Parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModuleTest, RegisteredParametersRequireGrad) {
  common::Rng rng(10);
  Linear layer(2, 2, rng);
  for (auto& p : layer.Parameters()) EXPECT_TRUE(p.requires_grad());
}

}  // namespace
}  // namespace adamove::nn
