// Static forward plans (DESIGN.md §14): the compiled plan must be
// BIT-IDENTICAL to the autograd graph walk it replaces — same op order,
// same kernels, same roundings — across every encoder family the tracer
// supports, hidden sizes 1..17 (every vector-width remainder class), both
// kernel backends, and 1 vs 8 kernel threads. Also here: the plan cache's
// behaviour (one compile per sequence length, revalidation, invalidation)
// and the graceful untraceable-family fallback.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_for.h"
#include "core/forward_plan.h"
#include "core/lightmob.h"
#include "data/dataset.h"
#include "nn/autograd_mode.h"
#include "nn/kernels.h"
#include "nn/tensor.h"

namespace adamove::core {
namespace {

namespace k = ::adamove::nn::kernels;

ModelConfig Config(EncoderType encoder, int64_t hidden,
                   int64_t layers = 1) {
  ModelConfig c;
  c.num_locations = 10;
  c.num_users = 4;
  c.location_emb_dim = 5;
  c.time_emb_dim = 3;
  c.user_emb_dim = 2;
  c.hidden_size = hidden;
  c.encoder = encoder;
  c.rnn_layers = layers;
  c.lambda = 0.0;
  c.seed = 29;
  return c;
}

data::Sample MakeSample(int64_t user, int len) {
  data::Sample sample;
  sample.user = user;
  int64_t t = 1333238400 + user * 977;
  for (int i = 0; i < len; ++i) {
    sample.recent.push_back({user, (user + i) % 10, t});
    t += 5 * data::kSecondsPerHour;
  }
  sample.target = {user, (user + len) % 10, t};
  return sample;
}

nn::Tensor GraphReps(LightMob& model, const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  return model.trajectory_encoder()->Forward(sample.recent,
                                             /*training=*/false);
}

void ExpectPlanMatchesGraphExactly(LightMob& model,
                                   const data::Sample& sample,
                                   const char* context) {
  ForwardPlanner planner(model);
  PlanScratch scratch;
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch)) << context;
  const nn::Tensor graph = GraphReps(model, sample);
  ASSERT_EQ(scratch.rows, graph.rows()) << context;
  ASSERT_EQ(scratch.cols, graph.cols()) << context;
  const float* plan = scratch.reps.data();
  for (int64_t i = 0; i < graph.rows() * graph.cols(); ++i) {
    ASSERT_EQ(plan[i], graph.data()[static_cast<size_t>(i)])
        << context << " element " << i;
  }
}

bool SimdAvailable() {
  k::SetBackendForTest(k::Backend::kSimd);
  const bool available = k::ActiveBackend() == k::Backend::kSimd;
  k::SetBackendForTest(k::Backend::kScalar);
  return available;
}

/// Restores the default dispatch state whichever way a test exits.
class PlanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    k::SetBackendForTest(k::Backend::kScalar);
    common::SetKernelThreads(1);
  }
};

constexpr EncoderType kTraceableFamilies[] = {
    EncoderType::kRnn, EncoderType::kLstm, EncoderType::kGru};

TEST_F(PlanTest, BitIdenticalAcrossFamiliesDimsBackendsAndThreads) {
  std::vector<k::Backend> backends = {k::Backend::kScalar};
  if (SimdAvailable()) backends.push_back(k::Backend::kSimd);
  const data::Sample sample = MakeSample(1, 5);
  for (const k::Backend backend : backends) {
    k::SetBackendForTest(backend);
    for (const int threads : {1, 8}) {
      common::SetKernelThreads(threads);
      for (const EncoderType encoder : kTraceableFamilies) {
        for (int64_t hidden = 1; hidden <= 17; ++hidden) {
          LightMob model(Config(encoder, hidden));
          const std::string context =
              EncoderTypeName(encoder) + " hidden " + std::to_string(hidden) +
              " backend " + std::to_string(static_cast<int>(backend)) +
              " threads " + std::to_string(threads);
          ExpectPlanMatchesGraphExactly(model, sample, context.c_str());
        }
      }
    }
  }
}

TEST_F(PlanTest, BitIdenticalForStackedEncodersAndEverySequenceLength) {
  for (const EncoderType encoder : kTraceableFamilies) {
    LightMob model(Config(encoder, 9, /*layers=*/2));
    for (int len = 1; len <= 8; ++len) {
      const std::string context = EncoderTypeName(encoder) +
                                  " stacked-2 len " + std::to_string(len);
      ExpectPlanMatchesGraphExactly(model, MakeSample(2, len),
                                    context.c_str());
    }
  }
}

TEST_F(PlanTest, CacheCompilesOncePerSequenceLength) {
  LightMob model(Config(EncoderType::kLstm, 8));
  ForwardPlanner planner(model);
  ASSERT_TRUE(planner.traceable());
  PlanScratch scratch;
  ASSERT_TRUE(planner.EncodeInto(MakeSample(0, 4), &scratch));
  ASSERT_TRUE(planner.EncodeInto(MakeSample(1, 4), &scratch));
  EXPECT_EQ(planner.compiles(), 1);  // same shape -> cached plan reused
  ASSERT_TRUE(planner.EncodeInto(MakeSample(1, 6), &scratch));
  EXPECT_EQ(planner.compiles(), 2);  // new sequence length -> one compile
  planner.InvalidateAll();
  ASSERT_TRUE(planner.EncodeInto(MakeSample(0, 4), &scratch));
  EXPECT_EQ(planner.compiles(), 3);  // hot-swap hook dropped the cache
  ExpectPlanMatchesGraphExactly(model, MakeSample(0, 4), "post-invalidate");
}

TEST_F(PlanTest, UntraceableFamilyFallsBackToGraphGracefully) {
  LightMob model(Config(EncoderType::kTransformer, 8));
  ForwardPlanner planner(model);
  EXPECT_TRUE(planner.traceable());  // there is an encoder to look at...
  PlanScratch scratch;
  // ...but its sequence layer has no trace, so plan encode declines and the
  // caller uses the graph walk. The negative result is cached: no re-trace
  // attempt (and no compile) on subsequent requests.
  EXPECT_FALSE(planner.EncodeInto(MakeSample(0, 4), &scratch));
  EXPECT_FALSE(planner.EncodeInto(MakeSample(0, 4), &scratch));
  EXPECT_EQ(planner.compiles(), 0);
  // The model-level API stays correct in plan mode via the same fallback.
  const nn::Tensor reps = model.PrefixRepresentations(MakeSample(0, 4));
  EXPECT_EQ(reps.rows(), 4);
  EXPECT_EQ(reps.cols(), 8);
}

/// An in-place weight overwrite keeps cached plans valid AND live (they
/// borrow the storage), while a model whose weights moved is caught by the
/// per-use fingerprint revalidation. Here: mutate a weight in place and
/// confirm the cached plan picks the new values up without a recompile.
TEST_F(PlanTest, CachedPlanTracksInPlaceWeightUpdates) {
  LightMob model(Config(EncoderType::kGru, 7));
  ForwardPlanner planner(model);
  PlanScratch scratch;
  const data::Sample sample = MakeSample(3, 5);
  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  EXPECT_EQ(planner.compiles(), 1);

  // In-place update of an encoder weight (what a checkpoint hot-swap into
  // existing tensors does): Tensor handles share storage, so writing
  // through the parameter list mutates the live weights without moving
  // them.
  std::vector<nn::Tensor> params = model.encoder().Parameters();
  ASSERT_FALSE(params.empty());
  for (float& x : params.front().data()) x += 0.125f;

  ASSERT_TRUE(planner.EncodeInto(sample, &scratch));
  EXPECT_EQ(planner.compiles(), 1);  // same storage -> no recompile
  const nn::Tensor graph = GraphReps(model, sample);
  for (int64_t i = 0; i < graph.rows() * graph.cols(); ++i) {
    ASSERT_EQ(scratch.reps.data()[i], graph.data()[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace adamove::core
