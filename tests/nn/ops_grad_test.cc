#include "nn/ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/tensor.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

Tensor RandT(std::vector<int64_t> shape, uint64_t seed, float scale = 1.0f) {
  common::Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

TEST(OpsForwardTest, AddBroadcastsSingleRow) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({1, 3}, {10, 20, 30});
  Tensor y = Add(a, b);
  EXPECT_EQ(y.at(0, 0), 11.0f);
  EXPECT_EQ(y.at(1, 2), 36.0f);
}

TEST(OpsForwardTest, MatMulMatchesHandComputation) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor y = MatMul(a, b);
  EXPECT_EQ(y.at(0, 0), 19.0f);
  EXPECT_EQ(y.at(0, 1), 22.0f);
  EXPECT_EQ(y.at(1, 0), 43.0f);
  EXPECT_EQ(y.at(1, 1), 50.0f);
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = RandT({3, 7}, 11);
  Tensor y = Softmax(a);
  for (int64_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 7; ++c) {
      sum += y.at(r, c);
      EXPECT_GT(y.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsForwardTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 1002.0f});
  Tensor y = Softmax(a);
  EXPECT_NEAR(y.at(0, 0) + y.at(0, 1) + y.at(0, 2), 1.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(y.at(0, 0)));
}

TEST(OpsForwardTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = RandT({2, 5}, 12);
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(ls.at(r, c), std::log(s.at(r, c)), 1e-5f);
    }
  }
}

TEST(OpsForwardTest, TransposeRoundTrips) {
  Tensor a = RandT({3, 5}, 13);
  Tensor y = Transpose(Transpose(a));
  EXPECT_EQ(y.data(), a.data());
}

TEST(OpsForwardTest, ConcatAndSliceAreInverse) {
  Tensor a = RandT({2, 3}, 14);
  Tensor b = RandT({2, 4}, 15);
  Tensor cat = ConcatCols({a, b});
  EXPECT_EQ(cat.cols(), 7);
  Tensor a2 = SliceCols(cat, 0, 3);
  Tensor b2 = SliceCols(cat, 3, 4);
  EXPECT_EQ(a2.data(), a.data());
  EXPECT_EQ(b2.data(), b.data());
}

TEST(OpsForwardTest, GatherRowsPicksRows) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.at(0, 0), 5.0f);
  EXPECT_EQ(y.at(1, 1), 2.0f);
  EXPECT_EQ(y.at(2, 1), 6.0f);
}

TEST(OpsForwardTest, EmbeddingLookupGathers) {
  Tensor w = Tensor::FromVector({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor y = EmbeddingLookup(w, {2, 2, 0});
  EXPECT_EQ(y.at(0, 0), 20.0f);
  EXPECT_EQ(y.at(1, 1), 21.0f);
  EXPECT_EQ(y.at(2, 0), 0.0f);
}

TEST(OpsForwardTest, CosSimRowsOnKnownVectors) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 0});
  Tensor b = Tensor::FromVector({3, 2}, {1, 0, 0, 1, -1, 0});
  Tensor y = CosSimRows(a, b);
  EXPECT_NEAR(y.item(0), 1.0f, 1e-6f);
  EXPECT_NEAR(y.item(1), 0.0f, 1e-6f);
  EXPECT_NEAR(y.item(2), -1.0f, 1e-6f);
}

TEST(OpsForwardTest, CrossEntropyOfUniformLogitsIsLogL) {
  Tensor logits = Tensor::Zeros({2, 8});
  Tensor loss = CrossEntropy(logits, {0, 5});
  EXPECT_NEAR(loss.item(), std::log(8.0f), 1e-5f);
}

TEST(OpsForwardTest, DropoutIdentityWhenNotTraining) {
  common::Rng rng(3);
  Tensor a = RandT({4, 4}, 16);
  Tensor y = Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.data(), a.data());
}

TEST(OpsForwardTest, DropoutZeroesAndRescales) {
  common::Rng rng(3);
  Tensor a = Tensor::Full({1, 1000}, 1.0f);
  Tensor y = Dropout(a, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);
    }
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(OpsForwardTest, CausalAttentionIgnoresFuture) {
  // With causal masking, row 0 of the output depends only on row 0 of V.
  Tensor q = RandT({3, 4}, 17);
  Tensor k = RandT({3, 4}, 18);
  Tensor v1 = RandT({3, 4}, 19);
  Tensor out1 = ScaledDotAttention(q, k, v1, /*causal=*/true);
  // Change the future rows of v; row 0 must be unchanged.
  Tensor v2 = v1.Detach();
  v2.set(1, 0, 99.0f);
  v2.set(2, 3, -99.0f);
  Tensor out2 = ScaledDotAttention(q, k, v2, /*causal=*/true);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out1.at(0, c), out2.at(0, c));
  }
}

// ---------------------------------------------------------------------------
// Gradient checks for every differentiable op.
// ---------------------------------------------------------------------------

TEST(OpsGradTest, Add) {
  Tensor a = RandT({3, 4}, 21), b = RandT({3, 4}, 22);
  ExpectGradientsMatch({a, b}, [&] { return Sum(Mul(Add(a, b), Add(a, b))); });
}

TEST(OpsGradTest, AddRowBroadcast) {
  Tensor a = RandT({3, 4}, 23), b = RandT({1, 4}, 24);
  ExpectGradientsMatch({a, b}, [&] { return Sum(Mul(Add(a, b), Add(a, b))); });
}

TEST(OpsGradTest, SubRowBroadcast) {
  Tensor a = RandT({3, 4}, 25), b = RandT({1, 4}, 26);
  ExpectGradientsMatch({a, b}, [&] { return Sum(Mul(Sub(a, b), Sub(a, b))); });
}

TEST(OpsGradTest, MulAndScalarOps) {
  Tensor a = RandT({2, 3}, 27), b = RandT({2, 3}, 28);
  ExpectGradientsMatch({a, b}, [&] {
    return Sum(ScalarAdd(ScalarMul(Mul(a, b), 1.7f), 0.3f));
  });
}

TEST(OpsGradTest, MatMul) {
  Tensor a = RandT({3, 4}, 29), b = RandT({4, 5}, 30);
  ExpectGradientsMatch({a, b}, [&] { return Sum(Mul(MatMul(a, b), MatMul(a, b))); });
}

TEST(OpsGradTest, Transpose) {
  Tensor a = RandT({3, 4}, 31);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(Transpose(a), Transpose(a))); });
}

TEST(OpsGradTest, ConcatColsAndRows) {
  Tensor a = RandT({2, 3}, 32), b = RandT({2, 2}, 33), c = RandT({1, 5}, 34);
  ExpectGradientsMatch({a, b, c}, [&] {
    Tensor cat = ConcatRows({ConcatCols({a, b}), c});
    return Sum(Mul(cat, cat));
  });
}

TEST(OpsGradTest, SliceColsAndRows) {
  Tensor a = RandT({4, 6}, 35);
  ExpectGradientsMatch({a}, [&] {
    Tensor s = SliceRows(SliceCols(a, 1, 4), 1, 2);
    return Sum(Mul(s, s));
  });
}

TEST(OpsGradTest, GatherRows) {
  Tensor a = RandT({4, 3}, 36);
  ExpectGradientsMatch({a}, [&] {
    Tensor g = GatherRows(a, {3, 0, 3, 1});
    return Sum(Mul(g, g));
  });
}

TEST(OpsGradTest, UnaryNonlinearities) {
  Tensor a = RandT({2, 4}, 37);
  ExpectGradientsMatch({a}, [&] { return Sum(Tanh(a)); });
  ExpectGradientsMatch({a}, [&] { return Sum(Sigmoid(a)); });
  ExpectGradientsMatch({a}, [&] { return Sum(Exp(a)); });
}

TEST(OpsGradTest, ReluAwayFromKink) {
  Tensor a = Tensor::FromVector({1, 4}, {-2.0f, -0.5f, 0.5f, 2.0f}, true);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(Relu(a), Relu(a))); });
}

TEST(OpsGradTest, LogAndSqrtOnPositiveInputs) {
  Tensor a = Tensor::FromVector({1, 4}, {0.5f, 1.0f, 2.0f, 3.0f}, true);
  ExpectGradientsMatch({a}, [&] { return Sum(Log(a)); });
  ExpectGradientsMatch({a}, [&] { return Sum(Sqrt(a)); });
}

TEST(OpsGradTest, SumAndMean) {
  Tensor a = RandT({3, 3}, 38);
  ExpectGradientsMatch({a}, [&] { return Mean(Mul(a, a)); });
}

TEST(OpsGradTest, Softmax) {
  Tensor a = RandT({2, 5}, 39);
  Tensor w = RandT({2, 5}, 40);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(Softmax(a), w)); });
}

TEST(OpsGradTest, LogSoftmax) {
  Tensor a = RandT({2, 5}, 41);
  Tensor w = RandT({2, 5}, 42);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(LogSoftmax(a), w)); });
}

TEST(OpsGradTest, LayerNorm) {
  Tensor a = RandT({3, 6}, 43);
  Tensor g = RandT({1, 6}, 44);
  Tensor b = RandT({1, 6}, 45);
  Tensor w = RandT({3, 6}, 46);
  ExpectGradientsMatch({a, g, b},
                       [&] { return Sum(Mul(LayerNorm(a, g, b), w)); });
}

TEST(OpsGradTest, EmbeddingLookup) {
  Tensor w = RandT({5, 3}, 47);
  ExpectGradientsMatch({w}, [&] {
    Tensor e = EmbeddingLookup(w, {0, 2, 2, 4});
    return Sum(Mul(e, e));
  });
}

TEST(OpsGradTest, CosSimRows) {
  Tensor a = RandT({1, 4}, 48);
  Tensor b = RandT({3, 4}, 49);
  ExpectGradientsMatch({a, b}, [&] { return Sum(CosSimRows(a, b)); });
}

TEST(OpsGradTest, NllAndCrossEntropy) {
  Tensor logits = RandT({3, 6}, 50);
  ExpectGradientsMatch({logits},
                       [&] { return CrossEntropy(logits, {1, 0, 5}); });
}

TEST(OpsGradTest, ScaledDotAttentionCausalAndNot) {
  Tensor q = RandT({3, 4}, 51, 0.5f);
  Tensor k = RandT({3, 4}, 52, 0.5f);
  Tensor v = RandT({3, 4}, 53, 0.5f);
  ExpectGradientsMatch({q, k, v}, [&] {
    Tensor o = ScaledDotAttention(q, k, v, /*causal=*/false);
    return Sum(Mul(o, o));
  });
  ExpectGradientsMatch({q, k, v}, [&] {
    Tensor o = ScaledDotAttention(q, k, v, /*causal=*/true);
    return Sum(Mul(o, o));
  });
}

}  // namespace
}  // namespace adamove::nn
