#include "nn/optim.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"

namespace adamove::nn {
namespace {

// Minimizes f(w) = ||w - target||^2 and checks convergence.
template <typename Opt>
double MinimizeQuadratic(Opt& opt, Tensor w, const Tensor& target,
                         int steps) {
  double last = 0.0;
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor diff = Sub(w, target);
    Tensor loss = Sum(Mul(diff, diff));
    loss.Backward();
    opt.Step();
    last = loss.item();
  }
  return last;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  common::Rng rng(1);
  Tensor w = Tensor::Randn({1, 4}, rng, 1.0f, true);
  Tensor target = Tensor::FromVector({1, 4}, {1, -2, 3, -4});
  Sgd sgd({w}, 0.05);
  const double final_loss = MinimizeQuadratic(sgd, w, target, 200);
  EXPECT_LT(final_loss, 1e-4);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  common::Rng rng(2);
  Tensor w = Tensor::Randn({1, 4}, rng, 1.0f, true);
  Tensor target = Tensor::FromVector({1, 4}, {1, -2, 3, -4});
  Adam adam({w}, 0.1);
  const double final_loss = MinimizeQuadratic(adam, w, target, 300);
  EXPECT_LT(final_loss, 1e-3);
}

TEST(AdamTest, FirstStepHasMagnitudeNearLr) {
  // With bias correction, the very first Adam step is ~lr in magnitude.
  Tensor w = Tensor::FromVector({1}, {0.0f}, true);
  Adam adam({w}, 0.01, 0.9, 0.999, 1e-8, /*clip=*/0.0);
  w.grad()[0] = 123.0f;
  adam.Step();
  EXPECT_NEAR(w.item(), -0.01f, 1e-4f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Tensor w = Tensor::FromVector({1, 2}, {0, 0}, true);
  w.grad()[0] = 3.0f;
  w.grad()[1] = 4.0f;  // norm 5
  std::vector<Tensor> params{w};
  ClipGradNorm(params, 1.0);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad()[1], 0.8f, 1e-5f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Tensor w = Tensor::FromVector({1, 2}, {0, 0}, true);
  w.grad()[0] = 0.3f;
  w.grad()[1] = 0.4f;
  std::vector<Tensor> params{w};
  ClipGradNorm(params, 1.0);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(w.grad()[1], 0.4f);
}

TEST(PlateauDecayTest, DecaysOnNoImprovementAndStopsAtMinLr) {
  Tensor w = Tensor::Zeros({1}, true);
  Sgd opt({w}, 1e-2);
  PlateauDecay decay(0.1, 1e-4, /*patience=*/1);
  EXPECT_TRUE(decay.Update(0.5, opt));  // improvement
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-2);
  EXPECT_TRUE(decay.Update(0.4, opt));  // plateau -> decay to 1e-3
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-3);
  // Second plateau -> 1e-4 which is <= min: training should stop.
  EXPECT_FALSE(decay.Update(0.4, opt));
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 1e-4);
}

TEST(PlateauDecayTest, TracksBestAccuracy) {
  Tensor w = Tensor::Zeros({1}, true);
  Sgd opt({w}, 1e-2);
  PlateauDecay decay;
  decay.Update(0.3, opt);
  decay.Update(0.6, opt);
  decay.Update(0.5, opt);
  EXPECT_DOUBLE_EQ(decay.best(), 0.6);
}

}  // namespace
}  // namespace adamove::nn
