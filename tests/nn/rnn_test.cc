#include "nn/rnn.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

class RnnFamilyTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<SequenceEncoder> MakeEncoder(int64_t in, int64_t hidden,
                                               common::Rng& rng) const {
    switch (GetParam()) {
      case 0: return std::make_unique<RnnEncoder>(in, hidden, rng);
      case 1: return std::make_unique<LstmEncoder>(in, hidden, rng);
      default: return std::make_unique<GruEncoder>(in, hidden, rng);
    }
  }
};

TEST_P(RnnFamilyTest, OutputShape) {
  common::Rng rng(1);
  auto enc = MakeEncoder(5, 7, rng);
  Tensor x = Tensor::Randn({4, 5}, rng);
  Tensor h = enc->Forward(x, /*training=*/false);
  EXPECT_EQ(h.rows(), 4);
  EXPECT_EQ(h.cols(), 7);
  EXPECT_EQ(enc->hidden_size(), 7);
}

TEST_P(RnnFamilyTest, CausalPrefixProperty) {
  // Row t of the full-sequence output must equal the last row of the
  // encoding of the prefix x[0..t] — the property PTTA relies on.
  common::Rng rng(2);
  auto enc = MakeEncoder(4, 6, rng);
  Tensor x = Tensor::Randn({5, 4}, rng);
  Tensor full = enc->Forward(x, false);
  for (int64_t t = 1; t <= 5; ++t) {
    Tensor prefix = SliceRows(x, 0, t);
    Tensor h = enc->Forward(prefix, false);
    for (int64_t c = 0; c < 6; ++c) {
      EXPECT_FLOAT_EQ(h.at(t - 1, c), full.at(t - 1, c))
          << "t=" << t << " c=" << c;
    }
  }
}

TEST_P(RnnFamilyTest, DeterministicForward) {
  common::Rng rng(3);
  auto enc = MakeEncoder(3, 5, rng);
  Tensor x = Tensor::Randn({6, 3}, rng);
  Tensor h1 = enc->Forward(x, false);
  Tensor h2 = enc->Forward(x, false);
  EXPECT_EQ(h1.data(), h2.data());
}

TEST_P(RnnFamilyTest, GradientsFlowToAllParameters) {
  common::Rng rng(4);
  auto enc = MakeEncoder(3, 4, rng);
  Tensor x = Tensor::Randn({5, 3}, rng);
  Tensor h = enc->Forward(x, true);
  Sum(Mul(h, h)).Backward();
  int nonzero_params = 0;
  for (auto& p : enc->Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        ++nonzero_params;
        break;
      }
    }
  }
  EXPECT_EQ(nonzero_params, static_cast<int>(enc->Parameters().size()));
}

TEST_P(RnnFamilyTest, GradCheckAgainstNumeric) {
  common::Rng rng(5);
  auto enc = MakeEncoder(2, 3, rng);
  Tensor x = Tensor::Randn({3, 2}, rng, 0.5f, /*requires_grad=*/true);
  std::vector<Tensor> inputs = enc->Parameters();
  inputs.push_back(x);
  ExpectGradientsMatch(inputs, [&] {
    Tensor h = enc->Forward(x, false);
    return Sum(Mul(h, h));
  });
}

INSTANTIATE_TEST_SUITE_P(AllCells, RnnFamilyTest, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           switch (info.param) {
                             case 0: return "Rnn";
                             case 1: return "Lstm";
                             default: return "Gru";
                           }
                         });

TEST(LstmTest, ForgetBiasInitializedToOne) {
  common::Rng rng(6);
  LstmEncoder enc(3, 4, rng);
  auto named = enc.NamedParameters();
  bool found = false;
  for (auto& [name, t] : named) {
    if (name == "bias") {
      found = true;
      // Gates i,f,g,o: columns [H, 2H) are the forget gate.
      for (int64_t c = 4; c < 8; ++c) EXPECT_FLOAT_EQ(t.at(0, c), 1.0f);
      for (int64_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(t.at(0, c), 0.0f);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LstmTest, HiddenStateStaysBounded) {
  // tanh-gated cells keep |h| <= 1 regardless of sequence length.
  common::Rng rng(7);
  LstmEncoder enc(2, 3, rng);
  Tensor x = Tensor::Randn({200, 2}, rng, 3.0f);
  Tensor h = enc.Forward(x, false);
  for (float v : h.data()) {
    EXPECT_LE(std::abs(v), 1.0f + 1e-5f);
  }
}

}  // namespace
}  // namespace adamove::nn
