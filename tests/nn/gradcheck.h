#ifndef ADAMOVE_TESTS_NN_GRADCHECK_H_
#define ADAMOVE_TESTS_NN_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace adamove::nn::testing {

/// Compares the analytic gradient of `loss_fn` w.r.t. each input against a
/// central finite difference. `loss_fn` must build a fresh graph from the
/// inputs' current data each time it is called and return a scalar tensor.
inline void ExpectGradientsMatch(
    std::vector<Tensor> inputs, const std::function<Tensor()>& loss_fn,
    double eps = 1e-3, double rtol = 5e-2, double atol = 1e-3) {
  // Analytic pass.
  for (auto& in : inputs) in.ZeroGrad();
  Tensor loss = loss_fn();
  ASSERT_EQ(loss.size(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) analytic.push_back(in.grad());

  // Numeric pass.
  for (size_t t = 0; t < inputs.size(); ++t) {
    auto& data = inputs[t].data();
    for (size_t i = 0; i < data.size(); ++i) {
      const float orig = data[i];
      data[i] = orig + static_cast<float>(eps);
      const double up = loss_fn().item();
      data[i] = orig - static_cast<float>(eps);
      const double down = loss_fn().item();
      data[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double a = analytic[t][i];
      const double tol = atol + rtol * std::max(std::abs(numeric),
                                                std::abs(a));
      EXPECT_NEAR(a, numeric, tol)
          << "input " << t << " element " << i;
    }
  }
}

}  // namespace adamove::nn::testing

#endif  // ADAMOVE_TESTS_NN_GRADCHECK_H_
