#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "common/durable_io.h"
#include "common/rng.h"
#include "nn/serialize.h"
#include "nn/tensor.h"

namespace adamove::nn {
namespace {

/// Seeded byte-level fuzz of the checkpoint loader. The property under test
/// is the hostile-input contract of DESIGN.md §11: arbitrary corruption —
/// truncation, bit flips, inserted/deleted bytes, duplicated frames,
/// zero-length names — must never crash the loader (no UB for the
/// sanitizers, no ADAMOVE_CHECK abort, no unbounded allocation). Every
/// corrupt file either fails with a structured error that leaves the target
/// tensors untouched, or — where the damage is undetectable — loads values
/// with exactly the requested shapes.

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::pair<std::string, Tensor>> MakeParams(uint64_t seed) {
  common::Rng rng(seed);
  return {{"encoder.weight", Tensor::Randn({6, 4}, rng)},
          {"encoder.bias", Tensor::Randn({6}, rng)},
          {"classifier.weight", Tensor::Randn({4, 6}, rng)}};
}

std::vector<std::pair<std::string, Tensor>> ZeroParams() {
  return {{"encoder.weight", Tensor::Zeros({6, 4})},
          {"encoder.bias", Tensor::Zeros({6})},
          {"classifier.weight", Tensor::Zeros({4, 6})}};
}

/// One random byte-level mutation over the whole file image.
std::string Mutate(const std::string& bytes, common::Rng& rng) {
  std::string out = bytes;
  const int op = static_cast<int>(rng.UniformInt(0, 3));
  switch (op) {
    case 0:  // truncate anywhere, including to empty
      out.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()))));
      break;
    case 1:  // flip 1..8 bits of one byte (mask never zero)
      if (!out.empty()) {
        const size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(out.size()) - 1));
        out[i] = static_cast<char>(out[i] ^
                                   static_cast<char>(rng.UniformInt(1, 255)));
      }
      break;
    case 2:  // insert one random byte
      out.insert(out.begin() +
                     rng.UniformInt(0, static_cast<int64_t>(out.size())),
                 static_cast<char>(rng.UniformInt(0, 255)));
      break;
    case 3:  // delete one byte
      if (!out.empty()) {
        out.erase(out.begin() + rng.UniformInt(
                                    0, static_cast<int64_t>(out.size()) - 1));
      }
      break;
  }
  return out;
}

/// Drives one corpus of mutated images through the loader and checks the
/// no-crash / untouched-on-failure / deterministic contract.
void FuzzImage(const std::string& valid, const char* tmp_name,
               uint64_t seed, int trials) {
  common::Rng rng(seed);
  const std::string path = TempPath(tmp_name);
  for (int trial = 0; trial < trials; ++trial) {
    std::string bytes = valid;
    const int hits = static_cast<int>(rng.UniformInt(1, 8));
    for (int h = 0; h < hits; ++h) bytes = Mutate(bytes, rng);
    ASSERT_TRUE(common::WriteFileAtomic(path, bytes));

    auto params = ZeroParams();
    const common::IoResult first = LoadParametersStatus(path, params);
    if (!first) {
      // Failed loads are structured (non-empty error) and atomic: no
      // tensor was touched, not even ones earlier in the file.
      EXPECT_FALSE(first.error.empty()) << "trial " << trial;
      for (const auto& [name, t] : params) {
        for (float v : t.data()) {
          ASSERT_EQ(v, 0.0f) << "trial " << trial << ": '" << name
                             << "' was partially written by a failed load";
        }
      }
    } else {
      // An accepted file must fill every tensor at its requested shape
      // (ApplyEntries guarantees it; this guards the invariant under fuzz).
      for (const auto& [name, t] : params) {
        ASSERT_EQ(t.data().size(), static_cast<size_t>(t.size()))
            << "trial " << trial;
      }
    }
    // Determinism: the same bytes parse to the same outcome.
    auto params_again = ZeroParams();
    const common::IoResult second = LoadParametersStatus(path, params_again);
    ASSERT_EQ(second.ok, first.ok) << "trial " << trial;
    ASSERT_EQ(second.error, first.error) << "trial " << trial;
  }
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, V2SurvivesByteLevelCorruption) {
  const std::string path = TempPath("adamove_ckpt_fuzz_v2_base.bin");
  ASSERT_TRUE(SaveParametersStatus(path, MakeParams(11)));
  std::string valid;
  ASSERT_TRUE(common::ReadFileAll(path, &valid));
  std::remove(path.c_str());
  FuzzImage(valid, "adamove_ckpt_fuzz_v2.bin", 20260805, 400);
}

TEST(CheckpointFuzzTest, LegacyV1SurvivesByteLevelCorruption) {
  const std::string path = TempPath("adamove_ckpt_fuzz_v1_base.bin");
  ASSERT_TRUE(SaveParametersV1(path, MakeParams(12)));
  std::string valid;
  ASSERT_TRUE(common::ReadFileAll(path, &valid));
  std::remove(path.c_str());
  // v1 has no CRC, so more damage is undetectable — the contract is still
  // "never crash, fail atomically or load shape-correct values".
  FuzzImage(valid, "adamove_ckpt_fuzz_v1.bin", 4242, 400);
}

TEST(CheckpointFuzzTest, TruncationAtEveryByteFailsCleanly) {
  const std::string path = TempPath("adamove_ckpt_fuzz_trunc.bin");
  ASSERT_TRUE(SaveParametersStatus(path, MakeParams(13)));
  std::string valid;
  ASSERT_TRUE(common::ReadFileAll(path, &valid));

  // Every strict prefix of a checkpoint is incomplete by construction (all
  // tensors are required), so every cut must fail with a structured error —
  // the CRC/torn-tail layer may not pass any of them through as ok.
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    ASSERT_TRUE(common::WriteFileAtomic(
        path, std::string_view(valid).substr(0, cut)));
    auto params = ZeroParams();
    const common::IoResult r = LoadParametersStatus(path, params);
    ASSERT_FALSE(r) << "cut " << cut << " unexpectedly loaded";
    ASSERT_FALSE(r.error.empty()) << "cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(CheckpointFuzzTest, DuplicatedTensorFramesAreRejected) {
  const std::string path = TempPath("adamove_ckpt_fuzz_dup.bin");
  auto params = MakeParams(14);
  ASSERT_TRUE(SaveParametersStatus(path, params));
  common::FramedRead framed;
  ASSERT_TRUE(common::ReadFramedFile(path, kCheckpointMagicV2, &framed));
  ASSERT_EQ(framed.frames.size(), params.size() + 1);

  // Appending a copy of a tensor frame breaks the header's declared count.
  {
    common::FramedFileWriter writer(kCheckpointMagicV2);
    for (const std::string& f : framed.frames) writer.AddFrame(f);
    writer.AddFrame(framed.frames[1]);
    ASSERT_TRUE(writer.Commit(path));
    auto into = ZeroParams();
    common::IoResult r = LoadParametersStatus(path, into);
    EXPECT_FALSE(r);
    EXPECT_NE(r.error.find("frames follow"), std::string::npos) << r.error;
  }
  // Keeping the count consistent but repeating a name is caught by the
  // duplicate-entry check instead.
  {
    common::FramedFileWriter writer(kCheckpointMagicV2);
    std::string header;
    common::AppendU32(&header, 2);  // version
    common::AppendU32(&header, 2);  // two tensors...
    writer.AddFrame(header);
    writer.AddFrame(framed.frames[1]);
    writer.AddFrame(framed.frames[1]);  // ...but the same one twice
    ASSERT_TRUE(writer.Commit(path));
    auto into = ZeroParams();
    common::IoResult r = LoadParametersStatus(path, into);
    EXPECT_FALSE(r);
    EXPECT_NE(r.error.find("duplicate entry"), std::string::npos) << r.error;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::nn
