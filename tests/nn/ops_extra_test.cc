#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/stacked.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

Tensor RandT(std::vector<int64_t> shape, uint64_t seed, float scale = 1.0f) {
  common::Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

TEST(OpsExtraForwardTest, DivMatchesElementwise) {
  Tensor a = Tensor::FromVector({1, 3}, {6, 9, -4});
  Tensor b = Tensor::FromVector({1, 3}, {2, 3, 4});
  Tensor y = Div(a, b);
  EXPECT_FLOAT_EQ(y.item(0), 3.0f);
  EXPECT_FLOAT_EQ(y.item(1), 3.0f);
  EXPECT_FLOAT_EQ(y.item(2), -1.0f);
}

TEST(OpsExtraForwardTest, DivByZeroIsClampedNotInf) {
  Tensor a = Tensor::FromVector({1, 1}, {1.0f});
  Tensor b = Tensor::FromVector({1, 1}, {0.0f});
  Tensor y = Div(a, b);
  EXPECT_TRUE(std::isfinite(y.item()));
}

TEST(OpsExtraForwardTest, PowAndClampAndAbsAndNeg) {
  Tensor a = Tensor::FromVector({1, 4}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Pow(a, 2.0f).item(3), 16.0f);
  EXPECT_FLOAT_EQ(Clamp(a, 1.5f, 3.5f).item(0), 1.5f);
  EXPECT_FLOAT_EQ(Clamp(a, 1.5f, 3.5f).item(3), 3.5f);
  Tensor b = Tensor::FromVector({1, 2}, {-2, 2});
  EXPECT_FLOAT_EQ(Abs(b).item(0), 2.0f);
  EXPECT_FLOAT_EQ(Neg(b).item(1), -2.0f);
}

TEST(OpsExtraForwardTest, RowSumAndRowMean) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s = RowSum(a);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_FLOAT_EQ(s.item(0), 6.0f);
  EXPECT_FLOAT_EQ(s.item(1), 15.0f);
  Tensor m = RowMean(a);
  EXPECT_FLOAT_EQ(m.item(0), 2.0f);
  EXPECT_FLOAT_EQ(m.item(1), 5.0f);
}

TEST(OpsExtraGradTest, Div) {
  Tensor a = RandT({2, 3}, 61);
  // Keep divisors away from zero for a clean finite-difference check.
  Tensor b = Tensor::FromVector({2, 3}, {1.5f, -2.0f, 2.5f, 3.0f, -1.2f, 2.2f},
                                true);
  ExpectGradientsMatch({a, b}, [&] { return Sum(Mul(Div(a, b), Div(a, b))); });
}

TEST(OpsExtraGradTest, PowOnPositiveInputs) {
  Tensor a = Tensor::FromVector({1, 4}, {0.5f, 1.0f, 2.0f, 3.0f}, true);
  ExpectGradientsMatch({a}, [&] { return Sum(Pow(a, 3.0f)); });
  ExpectGradientsMatch({a}, [&] { return Sum(Pow(a, 0.5f)); });
}

TEST(OpsExtraGradTest, ClampAwayFromEdges) {
  Tensor a = Tensor::FromVector({1, 4}, {-2.0f, -0.4f, 0.4f, 2.0f}, true);
  ExpectGradientsMatch({a},
                       [&] { return Sum(Mul(Clamp(a, -1, 1), Clamp(a, -1, 1))); });
}

TEST(OpsExtraGradTest, AbsAwayFromZero) {
  Tensor a = Tensor::FromVector({1, 4}, {-2.0f, -0.5f, 0.5f, 2.0f}, true);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(Abs(a), Abs(a))); });
}

TEST(OpsExtraGradTest, RowSumRowMean) {
  Tensor a = RandT({3, 4}, 62);
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(RowSum(a), RowSum(a))); });
  ExpectGradientsMatch({a}, [&] { return Sum(Mul(RowMean(a), RowMean(a))); });
}

TEST(StackedEncoderTest, ChainsLayersAndStaysCausal) {
  common::Rng rng(63);
  std::vector<std::unique_ptr<SequenceEncoder>> layers;
  layers.push_back(std::make_unique<LstmEncoder>(5, 8, rng));
  layers.push_back(std::make_unique<GruEncoder>(8, 8, rng));
  StackedEncoder stacked(std::move(layers));
  EXPECT_EQ(stacked.num_layers(), 2u);
  EXPECT_EQ(stacked.hidden_size(), 8);
  Tensor x = Tensor::Randn({6, 5}, rng);
  Tensor full = stacked.Forward(x, false);
  EXPECT_EQ(full.rows(), 6);
  EXPECT_EQ(full.cols(), 8);
  // Prefix property survives stacking.
  Tensor h = stacked.Forward(SliceRows(x, 0, 3), false);
  for (int64_t c = 0; c < 8; ++c) {
    EXPECT_NEAR(h.at(2, c), full.at(2, c), 1e-5f);
  }
}

TEST(StackedEncoderTest, CollectsParametersFromAllLayers) {
  common::Rng rng(64);
  std::vector<std::unique_ptr<SequenceEncoder>> layers;
  layers.push_back(std::make_unique<LstmEncoder>(4, 6, rng));
  layers.push_back(std::make_unique<LstmEncoder>(6, 6, rng));
  StackedEncoder stacked(std::move(layers));
  // Each LSTM layer has w_ih, w_hh, bias.
  EXPECT_EQ(stacked.Parameters().size(), 6u);
  // Gradients flow to the *first* layer through the second.
  Tensor x = Tensor::Randn({3, 4}, rng);
  Tensor h = stacked.Forward(x, true);
  Sum(Mul(h, h)).Backward();
  bool first_layer_has_grad = false;
  auto named = stacked.NamedParameters();
  for (auto& [name, t] : named) {
    if (name.rfind("layer0.", 0) == 0) {
      for (float g : t.grad()) {
        if (g != 0.0f) first_layer_has_grad = true;
      }
    }
  }
  EXPECT_TRUE(first_layer_has_grad);
}

}  // namespace
}  // namespace adamove::nn
