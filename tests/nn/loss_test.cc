#include "nn/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

TEST(InfoNceTest, MatchesHandComputation) {
  // anchor == positive (sim 1), one orthogonal negative (sim 0).
  Tensor anchor = Tensor::FromVector({1, 2}, {1, 0});
  Tensor positive = Tensor::FromVector({1, 2}, {2, 0});  // same direction
  Tensor negatives = Tensor::FromVector({1, 2}, {0, 3});
  Tensor loss = InfoNceLoss(anchor, positive, negatives);
  // L = -1 + log(exp(0)) = -1
  EXPECT_NEAR(loss.item(), -1.0f, 1e-5f);
}

TEST(InfoNceTest, PaperFormExcludesPositiveFromDenominator) {
  common::Rng rng(1);
  Tensor anchor = Tensor::Randn({1, 4}, rng);
  Tensor positive = Tensor::Randn({1, 4}, rng);
  Tensor negatives = Tensor::Randn({3, 4}, rng);
  const float paper = InfoNceLoss(anchor, positive, negatives, false).item();
  const float textbook =
      InfoNceLoss(anchor, positive, negatives, true).item();
  // Adding the positive to the denominator can only increase the loss.
  EXPECT_GT(textbook, paper);
}

TEST(InfoNceTest, LowerWhenPositiveCloserThanNegatives) {
  Tensor anchor = Tensor::FromVector({1, 2}, {1, 0});
  Tensor near = Tensor::FromVector({1, 2}, {1, 0.1f});
  Tensor far = Tensor::FromVector({1, 2}, {-1, 0});
  Tensor negatives = Tensor::FromVector({2, 2}, {0, 1, -1, 0});
  const float good = InfoNceLoss(anchor, near, negatives).item();
  const float bad = InfoNceLoss(anchor, far, negatives).item();
  EXPECT_LT(good, bad);
}

TEST(InfoNceTest, MoreNegativesIncreaseLoss) {
  common::Rng rng(2);
  Tensor anchor = Tensor::Randn({1, 4}, rng);
  Tensor positive = anchor.Detach();
  Tensor one_neg = Tensor::Randn({1, 4}, rng);
  Tensor many_neg = ConcatRows({one_neg, Tensor::Randn({4, 4}, rng)});
  EXPECT_LT(InfoNceLoss(anchor, positive, one_neg).item(),
            InfoNceLoss(anchor, positive, many_neg).item());
}

TEST(InfoNceTest, GradCheck) {
  common::Rng rng(3);
  Tensor anchor = Tensor::Randn({1, 3}, rng, 1.0f, true);
  Tensor positive = Tensor::Randn({1, 3}, rng, 1.0f, true);
  Tensor negatives = Tensor::Randn({2, 3}, rng, 1.0f, true);
  ExpectGradientsMatch({anchor, positive, negatives}, [&] {
    return InfoNceLoss(anchor, positive, negatives);
  });
}

TEST(CrossEntropyTest, PerfectPredictionHasNearZeroLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {100.0f, 0.0f, 0.0f});
  EXPECT_NEAR(CrossEntropy(logits, {0}).item(), 0.0f, 1e-5f);
}

TEST(CrossEntropyTest, AveragesOverBatch) {
  Tensor logits = Tensor::Zeros({4, 10});
  EXPECT_NEAR(CrossEntropy(logits, {0, 1, 2, 3}).item(), std::log(10.0f),
              1e-5f);
}

TEST(CrossEntropyTest, RejectsOutOfRangeTarget) {
  Tensor logits = Tensor::Zeros({1, 3});
  EXPECT_DEATH(CrossEntropy(logits, {3}), "CHECK");
}

}  // namespace
}  // namespace adamove::nn
