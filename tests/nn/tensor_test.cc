#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/autograd_mode.h"
#include "nn/ops.h"

namespace adamove::nn {
namespace {

TEST(TensorTest, ZerosHasRightShapeAndValues) {
  Tensor t = Tensor::Zeros({3, 4});
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full({2, 2}, 1.5f);
  for (float v : t.data()) EXPECT_EQ(v, 1.5f);
  Tensor s = Tensor::Scalar(-2.0f);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.item(), -2.0f);
}

TEST(TensorTest, FromVectorChecksSize) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "CHECK");
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  common::Rng rng1(5), rng2(5), rng3(6);
  Tensor a = Tensor::Randn({4, 4}, rng1, 1.0f);
  Tensor b = Tensor::Randn({4, 4}, rng2, 1.0f);
  Tensor c = Tensor::Randn({4, 4}, rng3, 1.0f);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
}

TEST(TensorTest, OneDTensorBehavesAsRow) {
  Tensor t = Tensor::FromVector({3}, {1, 2, 3});
  EXPECT_EQ(t.rows(), 1);
  EXPECT_EQ(t.cols(), 3);
}

TEST(TensorTest, BackwardThroughChain) {
  Tensor x = Tensor::FromVector({1}, {3.0f}, /*requires_grad=*/true);
  // y = (2x)^2 via mul; dy/dx = 8x = 24
  Tensor two_x = ScalarMul(x, 2.0f);
  Tensor y = Mul(two_x, two_x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 24.0f);
}

TEST(TensorTest, BackwardDiamondGraphAccumulates) {
  // z = x*x + x*x: both branches flow into x; dz/dx = 4x.
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor a = Mul(x, x);
  Tensor b = Mul(x, x);
  Tensor z = Add(a, b);
  z.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0f);
}

TEST(TensorTest, BackwardRequiresScalar) {
  Tensor x = Tensor::Zeros({2, 2}, true);
  EXPECT_DEATH(x.Backward(), "CHECK");
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Mul(x, x).Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, DetachBreaksGraph) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  Tensor y = Mul(x, x).Detach();
  EXPECT_FALSE(y.requires_grad());
  EXPECT_EQ(y.item(), 4.0f);
  // Using the detached value downstream must not touch x's grad.
  Tensor z = Mul(y, y);
  EXPECT_FALSE(z.requires_grad());
}

TEST(TensorTest, NoGradGuardDisablesTape) {
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  {
    NoGradGuard guard;
    Tensor y = Mul(x, x);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.impl()->parents.empty());
  }
  // Tape is back on outside the guard.
  Tensor y = Mul(x, x);
  EXPECT_TRUE(y.requires_grad());
}

TEST(TensorTest, NoGradGuardNests) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard g1;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard g2;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TensorTest, GradientAccumulatesAcrossBackwards) {
  Tensor x = Tensor::FromVector({1}, {3.0f}, true);
  Mul(x, x).Backward();
  Mul(x, x).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);  // 6 + 6
}

TEST(TensorTest, GraphNodesFreeAfterLossIsDropped) {
  // Regression test: backward_fn must not hold a shared_ptr to its own
  // node, or every training step leaks its whole graph.
  Tensor x = Tensor::FromVector({1}, {2.0f}, true);
  std::weak_ptr<TensorImpl> intermediate;
  {
    Tensor y = Mul(x, x);
    intermediate = y.impl();
    Tensor z = Mul(y, y);
    z.Backward();
  }
  EXPECT_TRUE(intermediate.expired());
}

TEST(TensorTest, DeepChainBackwardDoesNotOverflowStack) {
  // The iterative topological sort must handle graphs thousands deep.
  Tensor x = Tensor::FromVector({1}, {1.0f}, true);
  Tensor y = x;
  for (int i = 0; i < 20000; ++i) y = ScalarAdd(y, 0.0f);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

}  // namespace
}  // namespace adamove::nn
