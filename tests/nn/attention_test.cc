#include "nn/attention.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"
#include "tests/nn/gradcheck.h"

namespace adamove::nn {
namespace {

using ::adamove::nn::testing::ExpectGradientsMatch;

TEST(MultiHeadAttentionTest, OutputShapeSelfAttention) {
  common::Rng rng(1);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x = Tensor::Randn({5, 8}, rng);
  Tensor y = mha.Forward(x, x, /*causal=*/false);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 8);
}

TEST(MultiHeadAttentionTest, CrossAttentionShapes) {
  common::Rng rng(2);
  MultiHeadAttention mha(8, 4, rng);
  Tensor q = Tensor::Randn({2, 8}, rng);
  Tensor kv = Tensor::Randn({7, 8}, rng);
  Tensor y = mha.Forward(q, kv, /*causal=*/false);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 8);
}

TEST(MultiHeadAttentionTest, RejectsIndivisibleHeads) {
  common::Rng rng(3);
  EXPECT_DEATH(MultiHeadAttention(10, 3, rng), "CHECK");
}

TEST(MultiHeadAttentionTest, CausalMaskBlocksFuture) {
  common::Rng rng(4);
  MultiHeadAttention mha(8, 2, rng);
  Tensor x1 = Tensor::Randn({4, 8}, rng);
  Tensor y1 = mha.Forward(x1, x1, /*causal=*/true);
  // Mutating the last position must not change earlier outputs.
  Tensor x2 = x1.Detach();
  for (int64_t c = 0; c < 8; ++c) x2.set(3, c, 5.0f);
  Tensor y2 = mha.Forward(x2, x2, /*causal=*/true);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_FLOAT_EQ(y1.at(r, c), y2.at(r, c)) << r << "," << c;
    }
  }
}

TEST(MultiHeadAttentionTest, GradCheck) {
  common::Rng rng(5);
  MultiHeadAttention mha(4, 2, rng);
  Tensor x = Tensor::Randn({3, 4}, rng, 0.5f, true);
  std::vector<Tensor> inputs = mha.Parameters();
  inputs.push_back(x);
  ExpectGradientsMatch(inputs, [&] {
    Tensor y = mha.Forward(x, x, true);
    return Sum(Mul(y, y));
  });
}

TEST(TransformerSeqEncoderTest, PrefixPropertyViaCausalMask) {
  common::Rng rng(6);
  TransformerSeqEncoder enc(5, 8, /*layers=*/2, /*heads=*/2, /*dropout=*/0.0f,
                            rng);
  Tensor x = Tensor::Randn({6, 5}, rng);
  Tensor full = enc.Forward(x, false);
  for (int64_t t = 2; t <= 6; t += 2) {
    Tensor h = enc.Forward(SliceRows(x, 0, t), false);
    for (int64_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(h.at(t - 1, c), full.at(t - 1, c), 1e-4f);
    }
  }
}

TEST(TransformerSeqEncoderTest, DropoutOnlyWhenTraining) {
  common::Rng rng(7);
  TransformerSeqEncoder enc(4, 8, 1, 2, /*dropout=*/0.5f, rng);
  Tensor x = Tensor::Randn({4, 4}, rng);
  Tensor a = enc.Forward(x, /*training=*/false);
  Tensor b = enc.Forward(x, /*training=*/false);
  EXPECT_EQ(a.data(), b.data());
  Tensor c = enc.Forward(x, /*training=*/true);
  Tensor d = enc.Forward(x, /*training=*/true);
  EXPECT_NE(c.data(), d.data());  // different dropout masks
}

TEST(PositionalEncodingTest, AddsDistinctPerPosition) {
  Tensor x = Tensor::Zeros({4, 6});
  Tensor y = AddPositionalEncoding(x);
  // Position 0: sin(0)=0, cos(0)=1 pattern.
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 1.0f);
  // Rows must differ pairwise.
  for (int64_t r = 1; r < 4; ++r) {
    bool differs = false;
    for (int64_t c = 0; c < 6; ++c) {
      if (y.at(r, c) != y.at(0, c)) differs = true;
    }
    EXPECT_TRUE(differs);
  }
}

TEST(TransformerSeqEncoderTest, GradientsReachAllParameters) {
  common::Rng rng(8);
  TransformerSeqEncoder enc(3, 8, 1, 2, 0.0f, rng);
  Tensor x = Tensor::Randn({4, 3}, rng);
  Sum(Mul(enc.Forward(x, true), enc.Forward(x, true))).Backward();
  int with_grad = 0;
  int total = 0;
  for (auto& p : enc.Parameters()) {
    ++total;
    for (float g : p.grad()) {
      if (g != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_EQ(with_grad, total);
}

}  // namespace
}  // namespace adamove::nn
