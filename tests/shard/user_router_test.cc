#include "shard/user_router.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

namespace adamove::shard {
namespace {

/// Restart determinism, pinned to literals: placement is a pure function of
/// the shard set — no std::hash, no process state — so these values must
/// hold in every build, on every machine, forever. If this test breaks, the
/// ring hash changed and every deployed placement (and persisted per-shard
/// snapshot naming) silently moved; that is a wire-format break and needs a
/// deliberate migration, not a test update.
TEST(UserRouterTest, PlacementIsPinnedAcrossRestarts) {
  UserRouter router;
  router.AddShard(0);
  router.AddShard(1);
  router.AddShard(2);
  const int expected[12] = {1, 1, 1, 2, 2, 2, 2, 1, 2, 2, 0, 0};
  for (int64_t user = 0; user < 12; ++user) {
    EXPECT_EQ(router.ShardFor(user), expected[user]) << "user " << user;
  }
  EXPECT_EQ(UserRouter::HashUser(0), 1866356842051463107ULL);
  EXPECT_EQ(UserRouter::HashUser(7), 9201996480574774396ULL);

  UserRouter eight;
  for (int s = 0; s < 8; ++s) eight.AddShard(s);
  const int expected8[8] = {4, 1, 1, 1, 2, 1, 7, 5};
  for (int64_t user = 100; user < 108; ++user) {
    EXPECT_EQ(eight.ShardFor(user), expected8[user - 100]) << "user " << user;
  }
}

TEST(UserRouterTest, PlacementIsIndependentOfBuildOrder) {
  UserRouter forward;
  UserRouter backward;
  for (int s = 0; s < 5; ++s) forward.AddShard(s);
  for (int s = 4; s >= 0; --s) backward.AddShard(s);
  for (int64_t user = 0; user < 5000; ++user) {
    ASSERT_EQ(forward.ShardFor(user), backward.ShardFor(user))
        << "user " << user;
  }
}

TEST(UserRouterTest, AddShardMovesBoundedFractionOfUsers) {
  const int kUsers = 20000;
  for (int n : {2, 4, 8}) {
    UserRouter before;
    for (int s = 0; s < n; ++s) before.AddShard(s);
    UserRouter after = before;
    after.AddShard(n);

    int moved = 0;
    for (int64_t user = 0; user < kUsers; ++user) {
      const int src = before.ShardFor(user);
      const int dst = after.ShardFor(user);
      if (src != dst) {
        ++moved;
        // Consistent hashing moves users only ONTO the new shard; a user
        // hopping between two old shards would mean unrelated arcs changed.
        EXPECT_EQ(dst, n) << "user " << user;
      }
    }
    // Expectation is K/(N+1); allow 2x slack for hash variance. With
    // modulo placement this would be ~K*N/(N+1), an order of magnitude
    // more, so the bound cleanly separates the two.
    EXPECT_GT(moved, 0);
    EXPECT_LT(moved, 2 * kUsers / (n + 1)) << "n=" << n;
  }
}

TEST(UserRouterTest, RemoveShardMovesOnlyTheRemovedShardsUsers) {
  const int kUsers = 20000;
  UserRouter before;
  for (int s = 0; s < 6; ++s) before.AddShard(s);
  UserRouter after = before;
  after.RemoveShard(3);

  int moved = 0;
  for (int64_t user = 0; user < kUsers; ++user) {
    const int src = before.ShardFor(user);
    const int dst = after.ShardFor(user);
    if (src != 3) {
      // Users not on the removed shard must not move at all.
      ASSERT_EQ(dst, src) << "user " << user;
    } else {
      EXPECT_NE(dst, 3);
      ++moved;
    }
  }
  // The removed shard held ~K/6 users; all of them (and only them) moved.
  EXPECT_GT(moved, kUsers / 12);
  EXPECT_LT(moved, kUsers / 3);
}

TEST(UserRouterTest, AddThenRemoveRestoresIdenticalPlacement) {
  UserRouter reference;
  for (int s = 0; s < 4; ++s) reference.AddShard(s);
  UserRouter churned = reference;
  churned.AddShard(7);
  churned.AddShard(9);
  churned.RemoveShard(7);
  churned.RemoveShard(9);
  // The ring is rebuilt from the shard set alone, so transient topology
  // leaves no residue.
  for (int64_t user = 0; user < 5000; ++user) {
    ASSERT_EQ(churned.ShardFor(user), reference.ShardFor(user))
        << "user " << user;
  }
}

TEST(UserRouterTest, VirtualNodesKeepTheLoadSplitNearFair) {
  const int kUsers = 60000;
  const int kShards = 6;
  UserRouter router;
  for (int s = 0; s < kShards; ++s) router.AddShard(s);
  std::map<int, int> load;
  for (int64_t user = 0; user < kUsers; ++user) {
    load[router.ShardFor(user)] += 1;
  }
  ASSERT_EQ(load.size(), static_cast<size_t>(kShards));
  const int fair = kUsers / kShards;
  for (const auto& [shard, count] : load) {
    // 64 vnodes/shard: worst arc imbalance stays well inside 2x of fair.
    EXPECT_GT(count, fair / 2) << "shard " << shard;
    EXPECT_LT(count, 2 * fair) << "shard " << shard;
  }
}

TEST(UserRouterTest, SingleShardOwnsEverythingAndNegativeUsersRoute) {
  UserRouter router;
  router.AddShard(42);
  for (int64_t user : {int64_t{0}, int64_t{-1}, int64_t{1} << 40,
                       -(int64_t{1} << 40)}) {
    EXPECT_EQ(router.ShardFor(user), 42);
  }
  EXPECT_TRUE(router.HasShard(42));
  EXPECT_FALSE(router.HasShard(0));
  EXPECT_EQ(router.NumShards(), 1u);
  EXPECT_EQ(router.Shards(), std::vector<int>{42});
}

}  // namespace
}  // namespace adamove::shard
