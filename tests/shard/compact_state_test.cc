#include "shard/compact_state.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/durable_io.h"
#include "common/qfloat.h"
#include "common/rng.h"
#include "core/lightmob.h"
#include "core/online_adapter.h"
#include "core/ptta.h"

namespace adamove::shard {
namespace {

using core::OnlineAdapter;

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 8;
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<float> RandomPattern(common::Rng& rng, size_t dim) {
  std::vector<float> p(dim);
  for (float& x : p) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  return p;
}

// ---- qfloat codec ---------------------------------------------------------

TEST(QfloatTest, CanonicalVectorsRoundTripBitIdentically) {
  common::Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> x = RandomPattern(rng, 16);
    common::QfloatCanonicalize(&x);
    common::QfloatBlock block;
    common::QfloatEncode(x.data(), x.size(), &block);
    std::vector<float> decoded;
    common::QfloatDecode(block, &decoded);
    ASSERT_EQ(decoded.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      // Bit-identical, not just close: the whole compact-tier contract.
      ASSERT_EQ(decoded[i], x[i]) << "trial " << trial << " elem " << i;
    }
  }
}

TEST(QfloatTest, CanonicalizeIsIdempotent) {
  common::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> x = RandomPattern(rng, 8);
    common::QfloatCanonicalize(&x);
    std::vector<float> once = x;
    common::QfloatCanonicalize(&x);
    EXPECT_EQ(x, once);
  }
}

TEST(QfloatTest, QuantizationErrorIsBoundedByHalfStep) {
  common::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<float> x = RandomPattern(rng, 8);
    std::vector<float> canonical = x;
    common::QfloatCanonicalize(&canonical);
    float max_abs = 0.0f;
    for (float v : x) max_abs = std::max(max_abs, std::fabs(v));
    // Max element lands in q ∈ [64, 128), so one quantization step is at
    // most max/64; round-to-nearest (plus the 127 clamp on the maximum
    // itself) keeps every element within one step.
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_LE(std::fabs(canonical[i] - x[i]), max_abs / 64.0f + 1e-9f);
    }
  }
}

TEST(QfloatTest, HandlesSubnormalAndZeroVectors) {
  std::vector<float> zeros(4, 0.0f);
  common::QfloatCanonicalize(&zeros);
  for (float v : zeros) EXPECT_EQ(v, 0.0f);

  // Subnormal magnitudes: the inverse scale exceeds float range (the
  // double-precision path inside the encoder); must stay finite and
  // idempotent, not overflow into UB.
  std::vector<float> tiny = {1e-40f, -3e-41f, 0.0f, 2e-40f};
  common::QfloatCanonicalize(&tiny);
  std::vector<float> again = tiny;
  common::QfloatCanonicalize(&again);
  EXPECT_EQ(tiny, again);
  for (float v : tiny) EXPECT_TRUE(std::isfinite(v));
}

TEST(QfloatTest, NonFiniteVectorsAreNotEncodable) {
  std::vector<float> with_nan = {1.0f, std::nanf(""), 2.0f};
  EXPECT_FALSE(common::QfloatEncodable(with_nan.data(), with_nan.size()));
  std::vector<float> with_inf = {1.0f, INFINITY};
  EXPECT_FALSE(common::QfloatEncodable(with_inf.data(), with_inf.size()));
  EXPECT_FALSE(common::QfloatEncodable(nullptr, 0));
  // Canonicalize must leave them untouched.
  std::vector<float> copy = with_nan;
  common::QfloatCanonicalize(&copy);
  EXPECT_EQ(copy[0], with_nan[0]);
  EXPECT_EQ(copy[2], with_nan[2]);
}

// ---- varint/zigzag wire primitives ---------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,      1,        127,        128,
                             16383,  16384,    (1ULL << 32) - 1,
                             1ULL << 32,       ~0ULL};
  for (uint64_t v : values) {
    std::string buf;
    common::AppendVarint(&buf, v);
    common::WireReader reader(buf);
    uint64_t back = 0;
    ASSERT_TRUE(reader.ReadVarint(&back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(VarintTest, ZigzagRoundTripsSignedValues) {
  const int64_t values[] = {0, -1, 1, -64, 63, -65, 1000000, -1000000,
                            INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    std::string buf;
    common::AppendZigzag(&buf, v);
    common::WireReader reader(buf);
    int64_t back = 0;
    ASSERT_TRUE(reader.ReadZigzag(&back)) << v;
    EXPECT_EQ(back, v);
  }
  // Small magnitudes stay small on the wire — the point of zigzag.
  std::string small;
  common::AppendZigzag(&small, -3);
  EXPECT_EQ(small.size(), 1u);
}

TEST(VarintTest, RejectsTruncationAndOverlongEncodings) {
  std::string buf;
  common::AppendVarint(&buf, 1ULL << 50);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    common::WireReader reader(std::string_view(buf).substr(0, cut));
    uint64_t v = 0;
    EXPECT_FALSE(reader.ReadVarint(&v)) << "cut " << cut;
    EXPECT_EQ(reader.remaining(), cut);  // consumed nothing
  }
  // Ten bytes whose continuation bit never clears.
  std::string runaway(10, static_cast<char>(0x80));
  common::WireReader r1(runaway);
  uint64_t v = 0;
  EXPECT_FALSE(r1.ReadVarint(&v));
  // A 10th byte carrying bits beyond 2^64 is an over-long encoding.
  std::string overlong(9, static_cast<char>(0x80));
  overlong.push_back(0x02);
  common::WireReader r2(overlong);
  EXPECT_FALSE(r2.ReadVarint(&v));
}

// ---- slab arena -----------------------------------------------------------

TEST(SlabArenaTest, AllocatesFreesAndReusesSlots) {
  common::SlabArena arena(4096);
  common::SlabArena::Block a = arena.Allocate(100);
  common::SlabArena::Block b = arena.Allocate(100);
  ASSERT_NE(a.data, nullptr);
  ASSERT_NE(b.data, nullptr);
  EXPECT_NE(a.data, b.data);
  EXPECT_EQ(arena.stats().live_blocks, 2u);
  EXPECT_EQ(arena.stats().used_bytes, 200u);

  arena.Free(a);
  EXPECT_EQ(arena.stats().live_blocks, 1u);
  // Same class, freed slot available: O(1) reuse of the same address.
  common::SlabArena::Block c = arena.Allocate(90);
  EXPECT_EQ(c.data, a.data);
  arena.Free(b);
  arena.Free(c);
  EXPECT_EQ(arena.stats().live_blocks, 0u);
  EXPECT_EQ(arena.stats().used_bytes, 0u);
  // Slabs stay reserved for reuse — eviction cost never includes munmap.
  EXPECT_GT(arena.stats().reserved_bytes, 0u);
}

TEST(SlabArenaTest, OversizeBlocksAreExactAndReclaimed) {
  common::SlabArena arena(1024);
  const size_t big = 10 * 1024;
  EXPECT_EQ(arena.SlotSizeFor(big), big);  // exact, no class rounding
  common::SlabArena::Block block = arena.Allocate(big);
  EXPECT_EQ(block.cls, -1);
  EXPECT_EQ(arena.stats().oversize_blocks, 1u);
  const uint64_t reserved = arena.stats().reserved_bytes;
  arena.Free(block);
  EXPECT_EQ(arena.stats().oversize_blocks, 0u);
  // Oversize memory really goes back (unlike slab slots).
  EXPECT_EQ(arena.stats().reserved_bytes, reserved - big);
}

TEST(SlabArenaTest, GeometricClassesBoundInternalWaste) {
  common::SlabArena arena(64 * 1024);
  for (size_t n : {1u, 32u, 33u, 100u, 1000u, 5000u, 60000u}) {
    const size_t slot = arena.SlotSizeFor(n);
    EXPECT_GE(slot, n);
    // x1.5 classes: a slot is never more than ~1.5x the request (plus the
    // 32-byte floor for tiny blobs).
    EXPECT_LE(slot, std::max<size_t>(32, n + n / 2));
  }
}

// ---- compact user codec ---------------------------------------------------

OnlineAdapter::UserSnapshot CanonicalSnapshot(int64_t user, int locations,
                                              int entries_per_location,
                                              size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  OnlineAdapter::UserSnapshot snap;
  snap.user = user;
  int64_t loc = 3;
  for (int l = 0; l < locations; ++l) {
    std::vector<OnlineAdapter::Entry> entries;
    int64_t t = 1333238400;
    for (int e = 0; e < entries_per_location; ++e) {
      OnlineAdapter::Entry entry;
      entry.pattern = RandomPattern(rng, dim);
      common::QfloatCanonicalize(&entry.pattern);
      entry.timestamp = t;
      t += 3600;
      entries.push_back(std::move(entry));
    }
    snap.locations.emplace_back(loc, std::move(entries));
    loc += 1 + static_cast<int64_t>(rng.Uniform() * 5);
  }
  return snap;
}

bool SnapshotsBitIdentical(const OnlineAdapter::UserSnapshot& a,
                           const OnlineAdapter::UserSnapshot& b) {
  if (a.user != b.user || a.locations.size() != b.locations.size()) {
    return false;
  }
  for (size_t l = 0; l < a.locations.size(); ++l) {
    if (a.locations[l].first != b.locations[l].first) return false;
    const auto& ea = a.locations[l].second;
    const auto& eb = b.locations[l].second;
    if (ea.size() != eb.size()) return false;
    for (size_t e = 0; e < ea.size(); ++e) {
      if (ea[e].timestamp != eb[e].timestamp) return false;
      if (ea[e].pattern != eb[e].pattern) return false;  // exact float ==
    }
  }
  if (a.pending.size() != b.pending.size()) return false;
  for (size_t p = 0; p < a.pending.size(); ++p) {
    if (a.pending[p].timestamp != b.pending[p].timestamp) return false;
    if (a.pending[p].next_location != b.pending[p].next_location) return false;
    if (a.pending[p].pattern != b.pending[p].pattern) return false;
  }
  return true;
}

TEST(CompactStateTest, CanonicalStateRoundTripsBitIdentically) {
  const OnlineAdapter::UserSnapshot snap =
      CanonicalSnapshot(-42, 6, 8, 16, 11);
  std::string encoded;
  CompactEncodeStats stats;
  EncodeCompactUser(snap, CompactOptions{}, &encoded, &stats);
  EXPECT_EQ(stats.locations, 6u);
  EXPECT_EQ(stats.patterns, 48u);
  // Canonical patterns always survive exact quantization.
  EXPECT_EQ(stats.raw_patterns, 0u);

  OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(static_cast<bool>(DecodeCompactUser(encoded, &back)))
      << DecodeCompactUser(encoded, &back).error;
  EXPECT_TRUE(SnapshotsBitIdentical(snap, back));

  int64_t user = 0;
  ASSERT_TRUE(static_cast<bool>(PeekCompactUser(encoded, &user)));
  EXPECT_EQ(user, -42);
}

TEST(CompactStateTest, NonCanonicalPatternsFallBackToLosslessRaw) {
  common::Rng rng(23);
  OnlineAdapter::UserSnapshot snap;
  snap.user = 7;
  std::vector<OnlineAdapter::Entry> entries;
  OnlineAdapter::Entry entry;
  entry.pattern = RandomPattern(rng, 16);  // NOT canonicalized
  entry.pattern[0] = 0.1f;                 // inexact in any 2^e grid
  entry.timestamp = 1000;
  entries.push_back(entry);
  snap.locations.emplace_back(5, std::move(entries));

  std::string encoded;
  CompactEncodeStats stats;
  EncodeCompactUser(snap, CompactOptions{}, &encoded, &stats);
  EXPECT_EQ(stats.raw_patterns, 1u);  // q8 refused: would not be exact

  OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(static_cast<bool>(DecodeCompactUser(encoded, &back)));
  EXPECT_TRUE(SnapshotsBitIdentical(snap, back));
}

TEST(CompactStateTest, CompactBlobIsAtLeastFourTimesSmallerThanResident) {
  const size_t dim = 64;  // hidden sizes the serving models actually use
  OnlineAdapter::UserSnapshot snap = CanonicalSnapshot(1, 8, 16, dim, 3);
  std::string compact;
  EncodeCompactUser(snap, CompactOptions{}, &compact);
  // The wire form is ~4x denser than the raw f32 wire encoding (1 byte per
  // element instead of 4, against small per-entry overheads)…
  std::string dense_wire;
  OnlineAdapter::EncodeUser(snap, &dense_wire);
  EXPECT_GE(static_cast<double>(dense_wire.size()),
            3.5 * static_cast<double>(compact.size()))
      << "wire " << dense_wire.size() << " vs compact " << compact.size();
  // …and the acceptance ratio — compact payload vs the *resident* dense
  // OnlineAdapter representation the user would otherwise occupy (pattern
  // payloads plus container overheads) — clears 4x with room to spare.
  core::OnlineAdapter adapter{core::PttaConfig{}};
  adapter.Adopt(std::move(snap));
  EXPECT_GE(static_cast<double>(adapter.ResidentBytes(1)),
            4.0 * static_cast<double>(compact.size()))
      << "resident " << adapter.ResidentBytes(1) << " vs compact "
      << compact.size();
}

TEST(CompactStateTest, HeterogeneousPatternSizesRoundTripBitIdentically) {
  // SessionStore::Observe accepts patterns of any size, so one user's
  // snapshot may mix dimensions (including empty). The codec must stay
  // lossless *and decodable* — a blob that cannot decode would abort the
  // process at the next hydration (CompactStore::Take CHECKs).
  common::Rng rng(41);
  OnlineAdapter::UserSnapshot snap;
  snap.user = 13;
  int64_t loc = 2;
  for (size_t dim : {8u, 3u, 0u, 16u}) {
    std::vector<OnlineAdapter::Entry> entries;
    OnlineAdapter::Entry wide;
    wide.pattern = RandomPattern(rng, dim);
    wide.timestamp = 1000 + loc;
    entries.push_back(std::move(wide));
    OnlineAdapter::Entry narrow;  // second size within the same location
    narrow.pattern = RandomPattern(rng, dim / 2);
    narrow.timestamp = 2000 + loc;
    entries.push_back(std::move(narrow));
    snap.locations.emplace_back(loc, std::move(entries));
    loc += 3;
  }

  std::string encoded;
  CompactEncodeStats stats;
  EncodeCompactUser(snap, CompactOptions{}, &encoded, &stats);
  EXPECT_EQ(stats.patterns, 8u);

  OnlineAdapter::UserSnapshot back;
  const common::IoResult decoded = DecodeCompactUser(encoded, &back);
  ASSERT_TRUE(static_cast<bool>(decoded)) << decoded.error;
  EXPECT_TRUE(SnapshotsBitIdentical(snap, back));

  int64_t user = 0;
  ASSERT_TRUE(static_cast<bool>(PeekCompactUser(encoded, &user)));
  EXPECT_EQ(user, 13);
}

TEST(CompactStateTest, DecodeRejectsCorruptBlobsStructurally) {
  const OnlineAdapter::UserSnapshot snap = CanonicalSnapshot(9, 3, 4, 8, 7);
  std::string encoded;
  EncodeCompactUser(snap, CompactOptions{}, &encoded);

  OnlineAdapter::UserSnapshot out;
  // Every truncation point fails cleanly (never an allocation blow-up).
  for (size_t cut = 0; cut + 1 < encoded.size(); cut += 3) {
    const common::IoResult r =
        DecodeCompactUser(std::string_view(encoded).substr(0, cut), &out);
    EXPECT_FALSE(static_cast<bool>(r)) << "cut " << cut;
  }
  // Trailing garbage is corruption, not slack.
  std::string padded = encoded + "x";
  EXPECT_FALSE(static_cast<bool>(DecodeCompactUser(padded, &out)));
  // Every single-byte flip either decodes to *something* valid or fails
  // with a structured error — it must never crash. (ASan/UBSan runs of
  // this test are the real assertion.)
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string flipped = encoded;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x5A);
    (void)DecodeCompactUser(flipped, &out);
  }
}

TEST(CompactStateTest, DecodeRejectsHostileCounts) {
  // Hand-built blob: user 1, dim 8, location count 2^40.
  std::string blob;
  common::AppendZigzag(&blob, 1);
  common::AppendVarint(&blob, 8);
  common::AppendVarint(&blob, 1ULL << 40);
  OnlineAdapter::UserSnapshot out;
  const common::IoResult r = DecodeCompactUser(blob, &out);
  ASSERT_FALSE(static_cast<bool>(r));
  EXPECT_NE(r.error.find("location count"), std::string::npos) << r.error;

  // Non-ascending locations (silent state merge if admitted).
  std::string blob2;
  common::AppendZigzag(&blob2, 1);
  common::AppendVarint(&blob2, 1);  // dim 1
  common::AppendVarint(&blob2, 2);  // two locations
  common::AppendZigzag(&blob2, 5);  // location 5
  common::AppendVarint(&blob2, 1);
  common::AppendZigzag(&blob2, 0);      // ts
  blob2.push_back(0);                   // raw mode
  common::AppendF32Array(&blob2, std::vector<float>{1.0f}.data(), 1);
  common::AppendZigzag(&blob2, -2);  // location 3 < 5
  common::AppendVarint(&blob2, 1);
  common::AppendZigzag(&blob2, 0);
  blob2.push_back(0);
  common::AppendF32Array(&blob2, std::vector<float>{1.0f}.data(), 1);
  const common::IoResult r2 = DecodeCompactUser(blob2, &out);
  ASSERT_FALSE(static_cast<bool>(r2));
  EXPECT_NE(r2.error.find("ascending"), std::string::npos) << r2.error;
}

// ---- pending-delta section (elastic adaptation, DESIGN.md §16) -----------

TEST(CompactStateTest, PendingDeltasRoundTripLosslessAndQuantized) {
  common::Rng rng(61);
  OnlineAdapter::UserSnapshot snap = CanonicalSnapshot(17, 3, 4, 8, 19);
  // Canonical (q8-exact), non-canonical (raw fallback) and off-dimension
  // (explicit-length raw) pending patterns, out-of-order locations, and a
  // timestamp regression — arrival order is whatever arrived.
  OnlineAdapter::PendingDelta canonical;
  canonical.pattern = RandomPattern(rng, 8);
  common::QfloatCanonicalize(&canonical.pattern);
  canonical.next_location = 9;
  canonical.timestamp = 5000;
  snap.pending.push_back(std::move(canonical));
  OnlineAdapter::PendingDelta raw;
  raw.pattern = RandomPattern(rng, 8);
  raw.pattern[2] = 0.1f;  // inexact in any 2^e grid
  raw.next_location = 1;
  raw.timestamp = 4000;  // earlier than the previous delta
  snap.pending.push_back(std::move(raw));
  OnlineAdapter::PendingDelta off_dim;
  off_dim.pattern = RandomPattern(rng, 3);
  off_dim.next_location = 9;
  off_dim.timestamp = 6000;
  snap.pending.push_back(std::move(off_dim));

  std::string encoded;
  CompactEncodeStats stats;
  EncodeCompactUser(snap, CompactOptions{}, &encoded, &stats);
  EXPECT_EQ(stats.patterns, 12u + 3u);
  EXPECT_EQ(stats.raw_patterns, 2u);  // the inexact + off-dim deltas

  OnlineAdapter::UserSnapshot back;
  const common::IoResult r = DecodeCompactUser(encoded, &back);
  ASSERT_TRUE(static_cast<bool>(r)) << r.error;
  EXPECT_TRUE(SnapshotsBitIdentical(snap, back));
}

TEST(CompactStateTest, CleanBlobsStayByteIdenticalAndDecodeWithoutPending) {
  // Backward compatibility both ways: a clean user's blob has no pending
  // section (byte-identical to the pre-deferral encoder), and decoding it
  // yields an empty pending buffer, not an error.
  const OnlineAdapter::UserSnapshot snap = CanonicalSnapshot(3, 2, 3, 8, 29);
  std::string clean;
  EncodeCompactUser(snap, CompactOptions{}, &clean);

  OnlineAdapter::UserSnapshot dirty = snap;
  common::Rng rng(7);
  OnlineAdapter::PendingDelta delta;
  delta.pattern = RandomPattern(rng, 8);
  delta.next_location = 2;
  delta.timestamp = 100;
  dirty.pending.push_back(std::move(delta));
  std::string dirty_encoded;
  EncodeCompactUser(dirty, CompactOptions{}, &dirty_encoded);
  // The pending section strictly appends: the clean blob is a prefix.
  ASSERT_GT(dirty_encoded.size(), clean.size());
  EXPECT_EQ(dirty_encoded.compare(0, clean.size(), clean), 0);

  OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(static_cast<bool>(DecodeCompactUser(clean, &back)));
  EXPECT_TRUE(back.pending.empty());
}

TEST(CompactStateTest, PendingOnlyUserRoundTrips) {
  // A user evicted mid-deferral may hold *only* buffered deltas; the codec
  // derives its dimension from them so q8 still applies.
  common::Rng rng(43);
  OnlineAdapter::UserSnapshot snap;
  snap.user = 21;
  for (int i = 0; i < 4; ++i) {
    OnlineAdapter::PendingDelta delta;
    delta.pattern = RandomPattern(rng, 8);
    common::QfloatCanonicalize(&delta.pattern);
    delta.next_location = i % 3;
    delta.timestamp = 1000 + i;
    snap.pending.push_back(std::move(delta));
  }
  std::string encoded;
  CompactEncodeStats stats;
  EncodeCompactUser(snap, CompactOptions{}, &encoded, &stats);
  EXPECT_EQ(stats.raw_patterns, 0u);  // dim came from the pending section
  OnlineAdapter::UserSnapshot back;
  const common::IoResult r = DecodeCompactUser(encoded, &back);
  ASSERT_TRUE(static_cast<bool>(r)) << r.error;
  EXPECT_TRUE(SnapshotsBitIdentical(snap, back));
}

TEST(CompactStateTest, DecodeRejectsHostilePendingSections) {
  OnlineAdapter::UserSnapshot snap = CanonicalSnapshot(5, 1, 1, 4, 53);
  std::string clean;
  EncodeCompactUser(snap, CompactOptions{}, &clean);
  OnlineAdapter::UserSnapshot out;

  // Explicit zero pending count: the encoder omits the empty section, so a
  // zero can only be corruption (or trailing garbage).
  std::string zero = clean;
  common::AppendVarint(&zero, 0);
  const common::IoResult r0 = DecodeCompactUser(zero, &out);
  ASSERT_FALSE(static_cast<bool>(r0));
  EXPECT_NE(r0.error.find("pending"), std::string::npos) << r0.error;

  // A pending count far beyond what the bytes could hold.
  std::string huge = clean;
  common::AppendVarint(&huge, 1ULL << 40);
  const common::IoResult r1 = DecodeCompactUser(huge, &out);
  ASSERT_FALSE(static_cast<bool>(r1));
  EXPECT_NE(r1.error.find("pending count"), std::string::npos) << r1.error;

  // A complete dirty blob survives neither truncation nor trailing bytes.
  snap.pending.push_back(OnlineAdapter::PendingDelta{{1.0f, 2.0f, 3.0f, 4.0f},
                                                     2, 900});
  std::string dirty;
  EncodeCompactUser(snap, CompactOptions{}, &dirty);
  // (cut == clean.size() is the valid pending-free blob, so start past it.)
  for (size_t cut = clean.size() + 1; cut < dirty.size(); ++cut) {
    const common::IoResult r =
        DecodeCompactUser(std::string_view(dirty).substr(0, cut), &out);
    EXPECT_FALSE(static_cast<bool>(r)) << "cut " << cut;
  }
  std::string padded = dirty + "x";
  EXPECT_FALSE(static_cast<bool>(DecodeCompactUser(padded, &out)));
  // Byte flips across the pending section: valid or structured error,
  // never a crash (the sanitizer stages are the real assertion).
  for (size_t i = clean.size(); i < dirty.size(); ++i) {
    std::string flipped = dirty;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x5A);
    (void)DecodeCompactUser(flipped, &out);
  }
}

// ---- the pinned acceptance property: dehydrate → rehydrate → Predict -----

TEST(CompactStateTest, RehydratedAdapterPredictsBitIdentically) {
  core::LightMob model(SmallConfig());
  const size_t hidden = 8;
  common::Rng rng(31);

  // Live adapter with canonical ingest (exactly what the shard serving
  // path does — serve::SessionStoreConfig::canonicalize_patterns).
  core::OnlineAdapter live{core::PttaConfig{}};
  const int64_t user = 4;
  int64_t t = 1333238400;
  for (int i = 0; i < 60; ++i) {
    std::vector<float> pattern = RandomPattern(rng, hidden);
    common::QfloatCanonicalize(&pattern);
    live.Observe(user, pattern, i % 12, t);
    t += 3600;
  }

  // Dehydrate through the compact codec, rehydrate into a fresh adapter.
  std::string blob;
  CompactEncodeStats stats;
  EncodeCompactUser(live.ExportUser(user), CompactOptions{}, &blob, &stats);
  EXPECT_EQ(stats.raw_patterns, 0u);  // fully quantized
  OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(static_cast<bool>(DecodeCompactUser(blob, &back)));
  core::OnlineAdapter rehydrated{core::PttaConfig{}};
  rehydrated.Adopt(std::move(back));

  // Predict must be bit-identical for arbitrary (non-canonical) queries.
  for (int q = 0; q < 20; ++q) {
    const std::vector<float> query = RandomPattern(rng, hidden);
    const std::vector<float> a = live.Predict(model, user, query, t);
    const std::vector<float> b = rehydrated.Predict(model, user, query, t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "query " << q << " score " << i;
    }
  }
}

TEST(CompactStateTest, PredictStatsReportResidentBytes) {
  core::LightMob model(SmallConfig());
  common::Rng rng(13);
  core::OnlineAdapter adapter{core::PttaConfig{}};
  EXPECT_EQ(adapter.ResidentBytes(), 0u);
  int64_t t = 1333238400;
  for (int i = 0; i < 20; ++i) {
    adapter.Observe(3, RandomPattern(rng, 8), i % 5, t);
    t += 3600;
  }
  EXPECT_GT(adapter.ResidentBytes(3), 0u);
  EXPECT_EQ(adapter.ResidentBytes(), adapter.ResidentBytes(3));
  core::AdapterStats stats;
  (void)adapter.Predict(model, 3, RandomPattern(rng, 8), t, &stats);
  EXPECT_EQ(stats.resident_bytes,
            static_cast<int64_t>(adapter.ResidentBytes(3)));
  EXPECT_GT(stats.columns_updated, 0);
}

}  // namespace
}  // namespace adamove::shard
