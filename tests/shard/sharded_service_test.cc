#include "shard/sharded_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "common/durable_io.h"
#include "common/qfloat.h"
#include "common/rng.h"
#include "core/lightmob.h"
#include "serve/session_store.h"
#include "shard/compact_state.h"
#include "shard/compact_store.h"

namespace adamove::shard {
namespace {

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 32;  // headroom: streams here go up to 16 distinct users
  c.hidden_size = 8;
  c.location_emb_dim = 4;
  c.time_emb_dim = 4;
  c.user_emb_dim = 2;
  c.lambda = 0.0;
  return c;
}

std::vector<data::Sample> MakeStream(int users, int steps_per_user) {
  std::vector<data::Sample> stream;
  for (int u = 0; u < users; ++u) {
    std::vector<data::Point> window;
    int64_t t = 1333238400 + u * 100;
    for (int s = 0; s < steps_per_user; ++s) {
      const int64_t loc = (u + s) % 12;
      window.push_back({u, loc, t});
      if (static_cast<int>(window.size()) > 6) window.erase(window.begin());
      data::Sample sample;
      sample.user = u;
      sample.recent = window;
      t += 3 * data::kSecondsPerHour;
      sample.target = {u, (u + s + 1) % 12, t};
      stream.push_back(sample);
    }
  }
  return stream;
}

bool AllFinite(const std::vector<float>& scores) {
  for (float s : scores) {
    if (!std::isfinite(s)) return false;
  }
  return true;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

ShardedServiceConfig SmallShardedConfig(int num_shards) {
  ShardedServiceConfig config;
  config.num_shards = num_shards;
  config.service.workers = 2;
  config.service.max_batch = 4;
  config.store.num_shards = 2;
  // A tiny hot cap per group so the cold tier is genuinely exercised.
  config.store.max_resident_users = 4;
  config.compact.slab_bytes = 16 * 1024;
  return config;
}

uint64_t TotalAccounted(const ShardedService& service) {
  uint64_t total = 0;
  for (const auto& group : service.Stats()) {
    total += group.service.accounted();
  }
  return total;
}

// ---- two-tier SessionStore + CompactStore, below the service layer -------

std::vector<float> RandomCanonicalPattern(common::Rng& rng, size_t dim) {
  std::vector<float> p(dim);
  for (float& x : p) x = static_cast<float>(rng.Uniform() * 2.0 - 1.0);
  common::QfloatCanonicalize(&p);
  return p;
}

TEST(TwoTierStoreTest, EvictionAndRehydrationAreBitInvisible) {
  core::LightMob model(SmallConfig());
  const int kUsers = 12;
  const size_t hidden = 8;

  CompactStore cold;
  serve::SessionStoreConfig tiered_config;
  tiered_config.num_shards = 2;
  tiered_config.max_resident_users = 3;  // far fewer than kUsers
  tiered_config.cold_tier = &cold;
  tiered_config.canonicalize_patterns = true;
  serve::SessionStore tiered(tiered_config);

  serve::SessionStoreConfig dense_config;
  dense_config.num_shards = 2;
  dense_config.canonicalize_patterns = true;  // same ingest, no cap
  serve::SessionStore dense(dense_config);

  common::Rng rng(3);
  int64_t t = 1333238400;
  for (int round = 0; round < 10; ++round) {
    for (int64_t user = 0; user < kUsers; ++user) {
      const std::vector<float> pattern = RandomCanonicalPattern(rng, hidden);
      const int64_t loc = (user + round) % 12;
      tiered.Observe(user, pattern, loc, t);
      dense.Observe(user, pattern, loc, t);
      t += 600;
    }
  }

  // The cap forced dehydration churn; nobody was forgotten.
  EXPECT_GT(tiered.DehydrationCount(), 0u);
  EXPECT_GT(cold.GetStats().users, 0u);
  EXPECT_LE(tiered.ResidentUsers().size(), 4u);

  // Every user predicts bit-identically to the uncapped store, whether the
  // answer came from hot state or a rehydrated cold blob.
  for (int64_t user = 0; user < kUsers; ++user) {
    const std::vector<float> query = RandomCanonicalPattern(rng, hidden);
    const std::vector<float> a = tiered.Predict(model, user, query, t);
    const std::vector<float> b = dense.Predict(model, user, query, t);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "user " << user << " score " << i;
    }
  }
  EXPECT_GT(tiered.HydrationCount(), 0u);

  // The compact tier's payload beats the dense representation of the same
  // cold users by ≥4x (the acceptance ratio, measured here at unit scale:
  // extract every cold user into an uncapped probe store and compare its
  // dense accounting against the blob bytes they occupied).
  const uint64_t cold_blob_bytes = cold.GetStats().blob_bytes;
  const std::vector<int64_t> hot_users = tiered.ResidentUsers();
  serve::SessionStoreConfig probe_config;
  probe_config.canonicalize_patterns = true;
  serve::SessionStore probe(probe_config);
  for (int64_t user = 0; user < kUsers; ++user) {
    if (std::binary_search(hot_users.begin(), hot_users.end(), user)) {
      continue;  // hot — not in the compact tier
    }
    core::OnlineAdapter::UserSnapshot snap;
    ASSERT_TRUE(tiered.ExtractUser(user, &snap));
    probe.InjectUser(std::move(snap));
  }
  const uint64_t cold_dense_bytes = probe.ResidentBytes();
  EXPECT_GT(cold_blob_bytes, 0u);
  EXPECT_GE(static_cast<double>(cold_dense_bytes),
            4.0 * static_cast<double>(cold_blob_bytes))
      << "dense " << cold_dense_bytes << " vs compact " << cold_blob_bytes;
}

TEST(TwoTierStoreTest, ExtractAndInjectMoveStateBetweenStores) {
  CompactStore cold_a;
  serve::SessionStoreConfig config_a;
  config_a.max_resident_users = 2;
  config_a.cold_tier = &cold_a;
  config_a.canonicalize_patterns = true;
  serve::SessionStore store_a(config_a);

  serve::SessionStore store_b(serve::SessionStoreConfig{});

  common::Rng rng(5);
  int64_t t = 1333238400;
  for (int64_t user = 0; user < 6; ++user) {
    for (int i = 0; i < 8; ++i) {
      store_a.Observe(user, RandomCanonicalPattern(rng, 8), (user + i) % 12,
                      t);
      t += 600;
    }
  }
  const size_t patterns_before = [&] {
    size_t total = 0;
    for (int64_t user = 0; user < 6; ++user) {
      // PatternCount only sees the hot tier; pull everyone hot first.
      core::OnlineAdapter::UserSnapshot snap;
      EXPECT_TRUE(store_a.ExtractUser(user, &snap));
      size_t n = 0;
      for (const auto& [loc, entries] : snap.locations) n += entries.size();
      total += n;
      store_b.InjectUser(std::move(snap));
    }
    return total;
  }();

  // Everything moved: source empty (both tiers), destination serves it all.
  EXPECT_EQ(store_a.UserCount(), 0u);
  EXPECT_EQ(cold_a.GetStats().users, 0u);
  size_t patterns_after = 0;
  for (int64_t user = 0; user < 6; ++user) {
    patterns_after += store_b.PatternCount(user);
  }
  EXPECT_EQ(patterns_after, patterns_before);
  EXPECT_EQ(patterns_before, 6u * 8u);

  core::OnlineAdapter::UserSnapshot missing;
  EXPECT_FALSE(store_a.ExtractUser(99, &missing));
}

TEST(TwoTierStoreTest, HeterogeneousPatternDimsSurviveDehydration) {
  // Regression: a user whose entries mix pattern sizes used to encode to a
  // blob that could not decode — aborting the process at the next
  // hydration (Take CHECKs decodability) instead of round-tripping.
  CompactStore cold;
  common::Rng rng(9);
  core::OnlineAdapter::UserSnapshot snap;
  snap.user = 3;
  int64_t loc = 1;
  for (size_t dim : {8u, 3u, 16u}) {
    std::vector<core::OnlineAdapter::Entry> entries;
    core::OnlineAdapter::Entry entry;
    entry.pattern = RandomCanonicalPattern(rng, dim);
    entry.timestamp = 1000 * loc;
    entries.push_back(std::move(entry));
    snap.locations.emplace_back(loc, std::move(entries));
    loc += 2;
  }
  const core::OnlineAdapter::UserSnapshot original = snap;

  cold.Accept(std::move(snap));
  core::OnlineAdapter::UserSnapshot back;
  ASSERT_TRUE(cold.Take(3, &back));
  ASSERT_EQ(back.locations.size(), original.locations.size());
  for (size_t l = 0; l < back.locations.size(); ++l) {
    EXPECT_EQ(back.locations[l].first, original.locations[l].first);
    const auto& got = back.locations[l].second;
    const auto& want = original.locations[l].second;
    ASSERT_EQ(got.size(), want.size());
    for (size_t e = 0; e < got.size(); ++e) {
      EXPECT_EQ(got[e].timestamp, want[e].timestamp);
      EXPECT_EQ(got[e].pattern, want[e].pattern);  // exact float ==
    }
  }
}

TEST(CompactStoreTest, LoadRejectsDuplicateUserFrames) {
  const std::string path = TempPath("adamove_compact_store_dup");
  common::Rng rng(11);
  core::OnlineAdapter::UserSnapshot snap;
  snap.user = 5;
  std::vector<core::OnlineAdapter::Entry> entries;
  core::OnlineAdapter::Entry entry;
  entry.pattern = RandomCanonicalPattern(rng, 8);
  entry.timestamp = 1000;
  entries.push_back(std::move(entry));
  snap.locations.emplace_back(2, std::move(entries));
  std::string blob;
  EncodeCompactUser(snap, CompactOptions{}, &blob);

  // Hand-built file whose declared count matches the frame count, but the
  // same user appears twice: Save never writes that, so Load must treat it
  // as corruption rather than silently loading fewer users than reported.
  common::FramedFileWriter writer(kCompactStoreMagic);
  std::string header;
  common::AppendU32(&header, 1);
  common::AppendU64(&header, 2);
  writer.AddFrame(header);
  writer.AddFrame(blob);
  writer.AddFrame(blob);
  ASSERT_TRUE(static_cast<bool>(writer.Commit(path)));

  CompactStore store;
  serve::SnapshotStats stats;
  const common::IoResult result = store.Load(path, &stats);
  EXPECT_FALSE(static_cast<bool>(result));
  EXPECT_NE(result.error.find("duplicate user"), std::string::npos)
      << result.error;
  std::remove(path.c_str());
}

// ---- the sharded service ---------------------------------------------------

TEST(ShardedServiceTest, ServesAcrossGroupsAndBalancesTheLedger) {
  core::LightMob model(SmallConfig());
  ShardedService service(model, SmallShardedConfig(3));
  ASSERT_EQ(service.Shards(), (std::vector<int>{0, 1, 2}));

  const std::vector<data::Sample> stream = MakeStream(8, 10);
  std::vector<std::future<serve::Prediction>> futures;
  futures.reserve(stream.size());
  for (const data::Sample& sample : stream) {
    futures.push_back(service.Submit(sample));
  }
  size_t delivered = 0;
  for (auto& f : futures) {
    const serve::Prediction p = f.get();
    ASSERT_NE(p.outcome, serve::RequestOutcome::kShed);
    ASSERT_EQ(p.scores.size(), 12u);
    EXPECT_TRUE(AllFinite(p.scores));
    ++delivered;
  }
  EXPECT_EQ(delivered, stream.size());
  EXPECT_EQ(TotalAccounted(service), stream.size());
  EXPECT_EQ(service.InTransitCount(), 0u);
  EXPECT_EQ(service.RouterFallbacks(), 0u);

  // Users actually spread over the groups (placement follows the router).
  size_t groups_with_users = 0;
  size_t total_users = 0;
  for (const auto& group : service.Stats()) {
    const size_t users = group.hot_users + group.cold_users;
    if (users > 0) ++groups_with_users;
    total_users += users;
  }
  EXPECT_GE(groups_with_users, 2u);
  EXPECT_EQ(total_users, 8u);

  const core::AdapterStats capacity = service.CapacityStats();
  EXPECT_GT(capacity.resident_bytes, 0);
  service.Shutdown();
}

TEST(ShardedServiceTest, AddShardMigratesExactlyTheReassignedUsers) {
  core::LightMob model(SmallConfig());
  ShardedService service(model, SmallShardedConfig(2));
  const int kUsers = 16;
  const std::vector<data::Sample> stream = MakeStream(kUsers, 6);
  std::vector<std::future<serve::Prediction>> futures;
  for (const data::Sample& sample : stream) {
    futures.push_back(service.Submit(sample));
  }
  for (auto& f : futures) f.get();

  std::vector<int> before(kUsers);
  for (int u = 0; u < kUsers; ++u) before[u] = service.ShardFor(u);

  const int added = service.AddShard();
  EXPECT_EQ(added, 2);
  EXPECT_EQ(service.Shards(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(service.InTransitCount(), 0u);

  uint64_t expected_moves = 0;
  for (int u = 0; u < kUsers; ++u) {
    const int now = service.ShardFor(u);
    if (now != before[u]) {
      EXPECT_EQ(now, added) << "user " << u;
      ++expected_moves;
    }
  }
  EXPECT_EQ(service.MigratedUsers(), expected_moves);
  // No user lost or duplicated by the migration.
  size_t total_users = 0;
  for (const auto& group : service.Stats()) {
    total_users += group.hot_users + group.cold_users;
  }
  EXPECT_EQ(total_users, static_cast<size_t>(kUsers));

  // The service still serves everyone after the rebalance.
  std::vector<std::future<serve::Prediction>> after;
  for (const data::Sample& sample : MakeStream(kUsers, 2)) {
    after.push_back(service.Submit(sample));
  }
  for (auto& f : after) {
    const serve::Prediction p = f.get();
    ASSERT_NE(p.outcome, serve::RequestOutcome::kShed);
    EXPECT_TRUE(AllFinite(p.scores));
  }
  service.Shutdown();
}

TEST(ShardedServiceTest, RemoveShardDrainsAndRehomesItsUsers) {
  core::LightMob model(SmallConfig());
  ShardedService service(model, SmallShardedConfig(3));
  const int kUsers = 16;
  std::vector<std::future<serve::Prediction>> futures;
  for (const data::Sample& sample : MakeStream(kUsers, 6)) {
    futures.push_back(service.Submit(sample));
  }
  for (auto& f : futures) f.get();

  ASSERT_TRUE(service.RemoveShard(1));
  EXPECT_EQ(service.Shards(), (std::vector<int>{0, 2}));
  EXPECT_EQ(service.InTransitCount(), 0u);
  for (int u = 0; u < kUsers; ++u) EXPECT_NE(service.ShardFor(u), 1);

  // The drained group is empty; everyone lives on the survivors.
  size_t total_users = 0;
  for (const auto& group : service.Stats()) {
    if (group.shard_id == 1) {
      EXPECT_TRUE(group.draining);
      EXPECT_EQ(group.hot_users + group.cold_users, 0u);
    } else {
      total_users += group.hot_users + group.cold_users;
    }
  }
  EXPECT_EQ(total_users, static_cast<size_t>(kUsers));

  // Invalid removals change nothing.
  EXPECT_FALSE(service.RemoveShard(1));   // already draining
  EXPECT_FALSE(service.RemoveShard(99));  // unknown
  ASSERT_TRUE(service.RemoveShard(0));
  EXPECT_FALSE(service.RemoveShard(2));  // last live shard stays
  EXPECT_EQ(service.Shards(), std::vector<int>{2});

  std::vector<std::future<serve::Prediction>> after;
  for (const data::Sample& sample : MakeStream(kUsers, 1)) {
    after.push_back(service.Submit(sample));
  }
  for (auto& f : after) {
    EXPECT_TRUE(AllFinite(f.get().scores));
  }
  service.Shutdown();
}

/// The TSan headline: topology churn while three threads pour traffic in.
/// Every future resolves with finite scores, the global ledger balances,
/// and no user is left in transit once the dust settles.
TEST(ShardedServiceTest, RebalanceWhileServingIsRaceFreeAndAccounted) {
  core::LightMob model(SmallConfig());
  ShardedService service(model, SmallShardedConfig(2));

  constexpr int kThreads = 3;
  constexpr int kUsers = 12;
  constexpr int kStepsPerThread = 8;
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    producers.emplace_back([&, th] {
      const std::vector<data::Sample> stream =
          MakeStream(kUsers, kStepsPerThread);
      for (size_t i = th; i < stream.size(); i += kThreads) {
        std::future<serve::Prediction> f = service.Submit(stream[i]);
        submitted.fetch_add(1, std::memory_order_relaxed);
        const serve::Prediction p = f.get();
        if (p.outcome == serve::RequestOutcome::kShed) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(p.scores.size(), 12u);
          ASSERT_TRUE(AllFinite(p.scores));
        }
      }
    });
  }

  // Concurrent topology churn: grow to 4 groups, shrink back to 2.
  const int s2 = service.AddShard();
  const int s3 = service.AddShard();
  ASSERT_TRUE(service.RemoveShard(s2));
  ASSERT_TRUE(service.RemoveShard(s3));

  for (std::thread& t : producers) t.join();

  EXPECT_EQ(service.InTransitCount(), 0u);
  EXPECT_EQ(TotalAccounted(service), submitted.load());
  EXPECT_EQ(shed.load(), 0u);  // kBlock overflow policy: nothing shed
  EXPECT_EQ(service.Shards(), (std::vector<int>{0, 1}));

  // State survived the churn: every user still owned exactly once.
  size_t total_users = 0;
  for (const auto& group : service.Stats()) {
    if (!group.draining) total_users += group.hot_users + group.cold_users;
  }
  EXPECT_EQ(total_users, static_cast<size_t>(kUsers));
  service.Shutdown();
}

TEST(ShardedServiceTest, SnapshotRestoreRoundTripsAcrossProcessBoundary) {
  const std::string prefix = TempPath("adamove_sharded_snap");
  core::LightMob model(SmallConfig());
  const int kUsers = 10;

  std::vector<size_t> users_per_group;
  {
    ShardedService service(model, SmallShardedConfig(2));
    std::vector<std::future<serve::Prediction>> futures;
    for (const data::Sample& sample : MakeStream(kUsers, 6)) {
      futures.push_back(service.Submit(sample));
    }
    for (auto& f : futures) f.get();
    for (const auto& group : service.Stats()) {
      users_per_group.push_back(group.hot_users + group.cold_users);
    }
    ASSERT_TRUE(service.Snapshot(prefix));
    service.Shutdown();
  }

  // A fresh "process": same topology, state only from the files.
  ShardedService restored(model, SmallShardedConfig(2));
  ASSERT_TRUE(restored.Restore(prefix));
  std::vector<size_t> restored_per_group;
  size_t total = 0;
  for (const auto& group : restored.Stats()) {
    restored_per_group.push_back(group.hot_users + group.cold_users);
    total += group.hot_users + group.cold_users;
  }
  EXPECT_EQ(restored_per_group, users_per_group);
  EXPECT_EQ(total, static_cast<size_t>(kUsers));

  // Missing files are an error, not silent emptiness.
  ShardedService empty(model, SmallShardedConfig(2));
  EXPECT_FALSE(empty.Restore(TempPath("adamove_sharded_snap_nonexistent")));

  for (int s = 0; s < 2; ++s) {
    std::remove((prefix + ".shard" + std::to_string(s) + ".hot").c_str());
    std::remove((prefix + ".shard" + std::to_string(s) + ".cold").c_str());
  }
  restored.Shutdown();
  empty.Shutdown();
}

TEST(ShardedServiceTest, DefaultNumShardsReadsTheEnvironment) {
  // No override in the test environment: documented fallback.
  EXPECT_GE(DefaultNumShards(), 1);
}

}  // namespace
}  // namespace adamove::shard
