// Tests that each simplified baseline actually exercises the mechanism the
// paper credits it for (history use, time intervals, flow graph, arrival
// time, contrastive alignment) — not just that it runs.

#include <gtest/gtest.h>

#include "baselines/clsprec.h"
#include "baselines/deepmove.h"
#include "baselines/getnext.h"
#include "baselines/lstpm.h"
#include "baselines/mclp.h"
#include "baselines/stan.h"
#include "data/point.h"

namespace adamove::baselines {
namespace {

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 12;
  c.num_users = 3;
  c.hidden_size = 16;
  c.location_emb_dim = 8;
  c.time_emb_dim = 4;
  c.user_emb_dim = 4;
  c.transformer_heads = 4;
  return c;
}

data::Sample MakeSample(std::vector<int64_t> recent,
                        std::vector<int64_t> history, int64_t target) {
  data::Sample s;
  s.user = 1;
  int64_t t = 1333238400 -
              4 * data::kSecondsPerHour * static_cast<int64_t>(history.size());
  for (int64_t l : history) {
    s.history.push_back({s.user, l, t});
    t += 4 * data::kSecondsPerHour;
  }
  t = 1333238400;
  for (int64_t l : recent) {
    s.recent.push_back({s.user, l, t});
    t += 4 * data::kSecondsPerHour;
  }
  s.target = {s.user, target, t};
  return s;
}

TEST(DeepMoveMechanismTest, HistoryChangesScores) {
  DeepMove model(SmallConfig());
  data::Sample with = MakeSample({1, 2, 3}, {4, 5, 6}, 7);
  data::Sample without = MakeSample({1, 2, 3}, {}, 7);
  EXPECT_NE(model.Scores(with), model.Scores(without));
}

TEST(DeepMoveMechanismTest, DifferentHistoriesChangeScores) {
  DeepMove model(SmallConfig());
  data::Sample a = MakeSample({1, 2, 3}, {4, 5, 6}, 7);
  data::Sample b = MakeSample({1, 2, 3}, {8, 9, 10}, 7);
  EXPECT_NE(model.Scores(a), model.Scores(b));
}

TEST(LstpmMechanismTest, HistorySessionStructureMatters) {
  Lstpm model(SmallConfig());
  // Same history locations, but one sample's history spans multiple
  // sessions (large gaps) while the other is one dense session: the
  // session-pooled long-term bank must differ.
  data::Sample dense = MakeSample({1, 2, 3}, {4, 5, 6, 7}, 8);
  data::Sample sparse = dense;
  // Spread history points 100 h apart (new session each).
  int64_t t = dense.history.front().timestamp -
              400 * data::kSecondsPerHour;
  for (auto& p : sparse.history) {
    p.timestamp = t;
    t += 100 * data::kSecondsPerHour;
  }
  EXPECT_NE(model.Scores(dense), model.Scores(sparse));
}

TEST(StanMechanismTest, TimeIntervalsChangeScores) {
  Stan model(SmallConfig());
  data::Sample fast = MakeSample({1, 2, 3, 4}, {}, 5);
  data::Sample slow = fast;
  // Same visit order and identical time-of-day slots (shift by whole days)
  // but different inter-check-in gaps.
  for (size_t i = 0; i < slow.recent.size(); ++i) {
    slow.recent[i].timestamp +=
        static_cast<int64_t>(i) * 7 * data::kSecondsPerDay;
  }
  slow.target.timestamp = slow.recent.back().timestamp + 3600;
  EXPECT_NE(model.Scores(fast), model.Scores(slow));
}

TEST(GetNextMechanismTest, FlowMapChangesScores) {
  GetNext model(SmallConfig());
  data::Sample query = MakeSample({1, 2}, {}, 3);
  const auto before_fit = model.Scores(query);
  // Corpus where 2 -> 3 dominates builds a flow edge used at inference.
  data::Dataset ds;
  ds.num_locations = 12;
  ds.num_users = 3;
  for (int i = 0; i < 20; ++i) ds.train.push_back(MakeSample({1, 2}, {}, 3));
  model.Fit(ds);
  EXPECT_NE(model.Scores(query), before_fit);
}

TEST(MclpMechanismTest, ArrivalTimeContextMatters) {
  Mclp model(SmallConfig());
  data::Sample morning = MakeSample({1, 2, 3}, {4, 5}, 6);
  data::Sample spread = morning;
  // Stretch the recent gaps so the estimated arrival slot changes.
  for (size_t i = 0; i < spread.recent.size(); ++i) {
    spread.recent[i].timestamp =
        morning.recent.front().timestamp +
        static_cast<int64_t>(i) * 11 * data::kSecondsPerHour;
  }
  spread.target.timestamp = spread.recent.back().timestamp + 3600;
  ASSERT_NE(Mclp::EstimateArrivalSlot(morning.recent),
            Mclp::EstimateArrivalSlot(spread.recent));
  EXPECT_NE(model.Scores(morning), model.Scores(spread));
}

TEST(ClspRecMechanismTest, ContrastiveTermRequiresHistory) {
  ClspRec model(SmallConfig());
  data::Sample with = MakeSample({1, 2, 3}, {4, 5, 6}, 7);
  data::Sample without = MakeSample({1, 2, 3}, {}, 7);
  // The loss with history includes the alignment term; its value must
  // differ from the CE-only loss of the history-free sample even though
  // the recent points are identical.
  const float a = model.Loss(with, false).item();
  const float b = model.Loss(without, false).item();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace adamove::baselines
