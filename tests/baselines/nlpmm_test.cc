#include "baselines/nlpmm.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/metrics.h"
#include "data/point.h"

namespace adamove::baselines {
namespace {

data::Sample MakeSample(int64_t user, std::vector<int64_t> recent,
                        int64_t target, int64_t t0 = 1333238400) {
  data::Sample s;
  s.user = user;
  int64_t t = t0;
  for (int64_t l : recent) {
    s.recent.push_back({user, l, t});
    t += 2 * data::kSecondsPerHour;
  }
  s.target = {user, target, t};
  return s;
}

data::Dataset SecondOrderCorpus() {
  // Location after (1, 2) is 3; after (4, 2) it is 5 — first-order counts
  // from "2" are ambiguous, second-order counts are not.
  data::Dataset ds;
  ds.num_locations = 8;
  ds.num_users = 1;
  for (int i = 0; i < 30; ++i) {
    ds.train.push_back(MakeSample(0, {1, 2}, 3));
    ds.train.push_back(MakeSample(0, {4, 2}, 5));
  }
  return ds;
}

TEST(NlpmmTest, SecondOrderDisambiguatesFirstOrderTies) {
  Nlpmm model(8);
  model.Fit(SecondOrderCorpus());
  auto after_12 = model.Scores(MakeSample(0, {1, 2}, 0));
  auto after_42 = model.Scores(MakeSample(0, {4, 2}, 0));
  EXPECT_GT(after_12[3], after_12[5]);
  EXPECT_GT(after_42[5], after_42[3]);
}

TEST(NlpmmTest, PersonalModelBeatsGlobalForDistinctUsers) {
  // User 0 always goes 1 -> 2; user 1 always goes 1 -> 3. Global counts are
  // split; the personal component must disambiguate.
  data::Dataset ds;
  ds.num_locations = 8;
  ds.num_users = 2;
  for (int i = 0; i < 20; ++i) {
    ds.train.push_back(MakeSample(0, {5, 1}, 2));
    ds.train.push_back(MakeSample(1, {5, 1}, 3));
  }
  Nlpmm model(8);
  model.Fit(ds);
  auto u0 = model.Scores(MakeSample(0, {5, 1}, 0));
  auto u1 = model.Scores(MakeSample(1, {5, 1}, 0));
  EXPECT_GT(u0[2], u0[3]);
  EXPECT_GT(u1[3], u1[2]);
}

TEST(NlpmmTest, NotTrainableAndRegistered) {
  core::ModelConfig config;
  config.num_locations = 8;
  config.num_users = 2;
  auto model = MakeModel("NLPMM", config);
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->trainable());
  EXPECT_EQ(model->name(), "NLPMM");
}

TEST(NlpmmTest, UnseenContextFallsBackToSlotCounts) {
  Nlpmm model(8);
  model.Fit(SecondOrderCorpus());
  // Last location 7 never appears in training: transition components are
  // empty, only the time-slot component fires; scores stay finite.
  auto scores = model.Scores(MakeSample(0, {7}, 0));
  for (float v : scores) EXPECT_TRUE(std::isfinite(v));
  float total = 0.0f;
  for (float v : scores) total += v;
  EXPECT_GT(total, 0.0f);  // slot counts from training still contribute
}

}  // namespace
}  // namespace adamove::baselines
