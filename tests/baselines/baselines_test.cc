#include "baselines/registry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/deepmove.h"
#include "baselines/markov.h"
#include "baselines/mclp.h"
#include "core/ptta.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/point.h"

namespace adamove::baselines {
namespace {

core::ModelConfig SmallConfig() {
  core::ModelConfig c;
  c.num_locations = 15;
  c.num_users = 3;
  c.hidden_size = 16;
  c.location_emb_dim = 8;
  c.time_emb_dim = 4;
  c.user_emb_dim = 4;
  c.transformer_heads = 4;
  return c;
}

data::Sample MakeSample(std::vector<int64_t> recent,
                        std::vector<int64_t> history, int64_t target) {
  data::Sample s;
  s.user = 1;
  int64_t t = 1333238400;
  for (int64_t l : history) {
    s.history.push_back({s.user, l, t});
    t += 4 * data::kSecondsPerHour;
  }
  for (int64_t l : recent) {
    s.recent.push_back({s.user, l, t});
    t += 4 * data::kSecondsPerHour;
  }
  s.target = {s.user, target, t};
  return s;
}

data::Dataset TinyDataset() {
  data::Dataset ds;
  ds.num_locations = 15;
  ds.num_users = 3;
  for (int i = 0; i < 60; ++i) {
    const int64_t start = i % 3;
    data::Sample s = MakeSample({start, start + 1, start + 2},
                                {start + 3, start + 4}, start + 3);
    s.user = i % 3;
    for (auto& p : s.recent) p.user = s.user;
    for (auto& p : s.history) p.user = s.user;
    s.target.user = s.user;
    (i % 5 == 0 ? ds.val : ds.train).push_back(s);
  }
  ds.test = ds.val;
  return ds;
}

class RegistryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryModelTest, ConstructsAndScores) {
  auto model = MakeModel(GetParam(), SmallConfig());
  ASSERT_NE(model, nullptr) << GetParam();
  EXPECT_EQ(model->name(), GetParam());
  EXPECT_EQ(model->num_locations(), 15);
  data::Dataset ds = TinyDataset();
  model->Fit(ds);  // no-op for most, required for Markov/GETNext
  auto scores = model->Scores(MakeSample({1, 2, 3}, {4, 5}, 6));
  EXPECT_EQ(scores.size(), 15u);
  for (float v : scores) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(RegistryModelTest, TrainableModelsHaveFiniteLossAndGradients) {
  auto model = MakeModel(GetParam(), SmallConfig());
  ASSERT_NE(model, nullptr);
  if (!model->trainable()) GTEST_SKIP() << "non-gradient model";
  model->Fit(TinyDataset());
  model->ZeroGrad();
  nn::Tensor loss =
      model->Loss(MakeSample({1, 2, 3}, {4, 5, 6}, 7), /*training=*/true);
  EXPECT_TRUE(std::isfinite(loss.item()));
  loss.Backward();
  int with_grad = 0;
  for (auto& p : model->Parameters()) {
    for (float g : p.grad()) {
      if (g != 0.0f) {
        ++with_grad;
        break;
      }
    }
  }
  EXPECT_GT(with_grad, 0) << GetParam();
}

TEST_P(RegistryModelTest, LearnsTinyPatternOrScoresIt) {
  // Every model must beat random (1/15) on the trivially learnable corpus.
  auto model = MakeModel(GetParam(), SmallConfig());
  ASSERT_NE(model, nullptr);
  data::Dataset ds = TinyDataset();
  model->Fit(ds);
  if (model->trainable()) {
    core::TrainConfig tc;
    tc.max_epochs = 8;
    tc.batch_size = 10;
    tc.learning_rate = 5e-3;
    core::Trainer(tc).Train(*model, ds);
  }
  core::MetricAccumulator acc;
  for (const auto& s : ds.test) acc.Add(model->Scores(s), s.target.location);
  EXPECT_GT(acc.Result().rec10, 2.0 / 15.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RegistryModelTest,
    ::testing::Values("LSTM", "DeepMove", "LSTPM", "STAN", "GETNext",
                      "CLSPRec", "MCLP", "MHSA", "LLM-Mob", "Markov",
                      "LightMob"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(MakeModel("NotAModel", SmallConfig()), nullptr);
}

TEST(RegistryTest, PaperBaselinesAreNineInOrder) {
  auto names = PaperBaselineNames();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "LSTM");
  EXPECT_EQ(names.back(), "LLM-Mob");
}

TEST(MarkovTest, PredictsObservedTransition) {
  MarkovModel markov(15);
  data::Dataset ds = TinyDataset();
  markov.Fit(ds);
  // In the corpus, 2 is always followed by 3.
  auto scores = markov.Scores(MakeSample({1, 2}, {}, 3));
  int64_t best = 0;
  for (int64_t l = 1; l < 15; ++l) {
    if (scores[static_cast<size_t>(l)] > scores[static_cast<size_t>(best)]) {
      best = l;
    }
  }
  EXPECT_EQ(best, 3);
}

TEST(DeepMoveTest, PrefixRepresentationsAreTwiceHidden) {
  DeepMove model(SmallConfig());
  data::Sample s = MakeSample({1, 2, 3, 4}, {5, 6}, 7);
  nn::Tensor reps = model.PrefixRepresentations(s);
  EXPECT_EQ(reps.rows(), 4);
  EXPECT_EQ(reps.cols(), 32);  // 2 * hidden
  EXPECT_EQ(model.classifier().in_features(), 32);
}

TEST(DeepMoveTest, WorksAsDeepTtaWithAdapter) {
  DeepMove model(SmallConfig());
  core::TestTimeAdapter adapter(core::PttaConfig{});
  data::Sample s = MakeSample({1, 2, 1, 2, 1}, {5, 6}, 2);
  auto scores = adapter.Predict(model, s);
  EXPECT_EQ(scores.size(), 15u);
  for (float v : scores) EXPECT_TRUE(std::isfinite(v));
}

TEST(MclpTest, ArrivalSlotEstimatorUsesMeanGap) {
  // Points at hours 0 and 4 on a Thursday (epoch day 0): mean gap 4 h,
  // estimated arrival hour 8, workday slot 8.
  std::vector<data::Point> recent = {
      {0, 1, 0}, {0, 2, 4 * data::kSecondsPerHour}};
  EXPECT_EQ(Mclp::EstimateArrivalSlot(recent), 8);
  // Single point: falls back to the 6 h prior.
  std::vector<data::Point> one = {{0, 1, 0}};
  EXPECT_EQ(Mclp::EstimateArrivalSlot(one), 6);
}

}  // namespace
}  // namespace adamove::baselines
