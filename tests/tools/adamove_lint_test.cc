// adamove_lint: the tokenizer, NOLINT scoping, all nine rules with their
// path exemptions, and the cross-registry checks. The two named regressions
// pin the defect classes of the old grep pipeline this tool replaced:
//
//   1. suppression-by-substring: `grep -v NOLINT` silenced every rule when
//      N-O-L-I-N-T appeared ANYWHERE on the line — including inside a string
//      literal — and a bare NOLINT suppressed rules it never named;
//   2. comment blindness: the grep comment stripper only recognized
//      line-LEADING `//`, so trailing comments and /* block comments */
//      mentioning a rule trigger produced false positives.
//
// The suite ends with the zero-false-positive gate: the real tree lints
// clean (mirroring what check.sh stage 4 enforces).

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adamove_lint/lint.h"

namespace adamove::lint {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> RulesHit(const std::string& path,
                                  const std::string& src) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : LintSource(path, src)) rules.push_back(d.rule);
  return rules;
}

bool Hit(const std::vector<std::string>& rules, const std::string& rule) {
  for (const std::string& r : rules) {
    if (r == rule) return true;
  }
  return false;
}

// --- tokenizer -----------------------------------------------------------

TEST(TokenizerTest, TrailingLineCommentLeavesCode) {
  const auto lines = Tokenize("int x = 1;  // std::mutex is mentioned here");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("std::mutex"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int x = 1;"), std::string::npos);
  EXPECT_NE(lines[0].comment.find("std::mutex"), std::string::npos);
}

TEST(TokenizerTest, InlineBlockCommentDoesNotFuseTokens) {
  const auto lines = Tokenize("ab/* comment */cd;");
  ASSERT_GE(lines.size(), 1u);
  // Removed comment chars become spaces, so `ab` and `cd` stay separate
  // tokens instead of fusing into `abcd`.
  EXPECT_EQ(lines[0].code.find("abcd"), std::string::npos);
  EXPECT_NE(lines[0].code.find("ab"), std::string::npos);
  EXPECT_NE(lines[0].code.find("cd"), std::string::npos);
  EXPECT_EQ(lines[0].comment, " comment ");
}

TEST(TokenizerTest, MultiLineBlockCommentSpansLines) {
  const auto lines = Tokenize("a; /* first\nstd::mutex inside\n*/ b;");
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[1].code.find("std::mutex"), std::string::npos);
  EXPECT_NE(lines[1].comment.find("std::mutex"), std::string::npos);
  EXPECT_NE(lines[2].code.find("b;"), std::string::npos);
}

TEST(TokenizerTest, StringContentsBlankedButCaptured) {
  const auto lines = Tokenize("Log(\"new Foo() \\\" escaped\"); int y;");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("new Foo"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int y;"), std::string::npos);
  ASSERT_EQ(lines[0].strings.size(), 1u);
  EXPECT_EQ(lines[0].strings[0], "new Foo() \\\" escaped");
}

TEST(TokenizerTest, CommentMarkersInsideStringsStayStrings) {
  const auto lines = Tokenize("a(\"// not a comment\"); b(\"/*\"); c();");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("c();"), std::string::npos);
  EXPECT_TRUE(lines[0].comment.empty());
  ASSERT_EQ(lines[0].strings.size(), 2u);
}

TEST(TokenizerTest, DigitSeparatorIsNotACharLiteral) {
  const auto lines = Tokenize("int n = 1'000'000; std::mutex m;");
  ASSERT_GE(lines.size(), 1u);
  // A naive tokenizer treats 1'000'000 as opening a char literal and
  // blanks the rest of the line, hiding the mutex.
  EXPECT_NE(lines[0].code.find("std::mutex"), std::string::npos);
}

TEST(TokenizerTest, CharLiteralContentsBlanked) {
  const auto lines = Tokenize("if (c == '\"') { x('n'); } y();");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_NE(lines[0].code.find("y();"), std::string::npos);
  EXPECT_TRUE(lines[0].strings.empty());  // the '"' char is not a string
}

TEST(TokenizerTest, RawStringLiteral) {
  const auto lines =
      Tokenize("auto s = R\"(new Foo() \" // not code)\"; int z;");
  ASSERT_GE(lines.size(), 1u);
  EXPECT_EQ(lines[0].code.find("new Foo"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int z;"), std::string::npos);
  ASSERT_EQ(lines[0].strings.size(), 1u);
  EXPECT_EQ(lines[0].strings[0], "new Foo() \" // not code");
}

// --- NOLINT parsing and scoping ------------------------------------------

TEST(NolintTest, BareAndScopedForms) {
  EXPECT_FALSE(ParseNolint(" ordinary comment").present);
  const Nolint bare = ParseNolint(" NOLINT: leaked on purpose");
  EXPECT_TRUE(bare.present);
  EXPECT_TRUE(bare.all);
  const Nolint scoped = ParseNolint(" NOLINT(raw-mutex, naked-new): why");
  EXPECT_TRUE(scoped.present);
  EXPECT_FALSE(scoped.all);
  EXPECT_TRUE(Suppresses(scoped, "raw-mutex"));
  EXPECT_TRUE(Suppresses(scoped, "naked-new"));
  EXPECT_FALSE(Suppresses(scoped, "rand"));
  EXPECT_TRUE(Suppresses(bare, "rand"));
}

// Regression 1: the old `grep -v NOLINT` dropped any line containing the
// substring anywhere — a string literal could silence every rule.
TEST(NolintTest, NolintInsideStringLiteralDoesNotSuppress) {
  const auto rules = RulesHit(
      "src/serve/foo.cc", "Record(\"NOLINT\"); std::mutex m_;\n");
  EXPECT_TRUE(Hit(rules, "raw-mutex"));
}

// Regression 1b: the old pipeline treated NOLINT(any-rule-at-all) as a
// blanket waiver; here the named list must match the firing rule.
TEST(NolintTest, WrongRuleListDoesNotSuppress) {
  EXPECT_TRUE(Hit(RulesHit("src/serve/foo.cc",
                           "std::mutex m_;  // NOLINT(naked-new): nope\n"),
                  "raw-mutex"));
  EXPECT_FALSE(Hit(RulesHit("src/serve/foo.cc",
                            "std::mutex m_;  // NOLINT(raw-mutex): ok\n"),
                   "raw-mutex"));
  EXPECT_FALSE(Hit(RulesHit("src/serve/foo.cc",
                            "std::mutex m_;  // NOLINT: blanket\n"),
                   "raw-mutex"));
}

// Regression 2: the old comment stripper recognized only line-leading `//`,
// so trailing and block comments mentioning a trigger failed the build.
TEST(CommentBlindnessTest, TrailingAndBlockCommentsDoNotTrip) {
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "int x;  // guards like std::mutex are banned\n")
                  .empty());
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "int y(/* no std::ofstream here */ 0);\n")
                  .empty());
  EXPECT_TRUE(RulesHit("src/core/foo.cc",
                       "/* block\n   std::mutex prose\n*/ int z;\n")
                  .empty());
  // ... while the same trigger in code still fires.
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", "std::mutex real_;\n"),
                  "raw-mutex"));
}

// --- the nine rules and their path scoping --------------------------------

TEST(RuleTest, RawMutexScope) {
  const std::string src = "std::lock_guard<std::mutex> l(m_);\n";
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", src), "raw-mutex"));
  EXPECT_TRUE(RulesHit("src/common/mutex.h", src).empty());
  EXPECT_TRUE(RulesHit("tests/core/foo.cc", src).empty());  // src/ only
}

TEST(RuleTest, NakedNew) {
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", "auto* p = new Foo(1);\n"),
                  "naked-new"));
  EXPECT_TRUE(
      RulesHit("src/core/foo.cc", "auto p = std::make_unique<Foo>(1);\n")
          .empty());
}

TEST(RuleTest, Rand) {
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", "int r = rand();\n"), "rand"));
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", "srand(42);\n"), "rand"));
  EXPECT_TRUE(RulesHit("src/core/foo.cc", "int r = my_rand();\n").empty());
}

TEST(RuleTest, RawWriteScope) {
  const std::string src = "std::ofstream out(path);\n";
  EXPECT_TRUE(Hit(RulesHit("src/serve/foo.cc", src), "raw-write"));
  EXPECT_TRUE(RulesHit("src/common/durable_io.cc", src).empty());
  EXPECT_TRUE(RulesHit("src/data/export.cc", src).empty());
  EXPECT_TRUE(Hit(RulesHit("src/serve/foo.cc", "auto* f = fopen(p, \"w\");\n"),
                  "raw-write"));
}

TEST(RuleTest, SessionStoreConstructionScope) {
  const std::string direct = "SessionStore store(config);\n";
  const std::string factory =
      "auto s = std::make_unique<serve::SessionStore>(config);\n";
  EXPECT_TRUE(Hit(RulesHit("src/serve/foo.cc", direct),
                  "session-store-construction"));
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", factory),
                  "session-store-construction"));
  EXPECT_TRUE(RulesHit("src/shard/group.cc", direct).empty());
  EXPECT_TRUE(RulesHit("src/serve/session_store.cc", direct).empty());
}

TEST(RuleTest, IntrinsicsScope) {
  const std::string avx = "__m256 v = _mm256_loadu_ps(p);\n";
  const std::string neon = "float32x4_t v = vld1q_f32(p);\n";
  EXPECT_TRUE(Hit(RulesHit("src/nn/kernels.cc", avx), "raw-intrinsics-x86"));
  EXPECT_TRUE(RulesHit("src/nn/kernels_avx2.cc", avx).empty());
  EXPECT_TRUE(Hit(RulesHit("src/nn/kernels.cc", neon), "raw-intrinsics-neon"));
  EXPECT_TRUE(RulesHit("src/nn/kernels_neon.cc", neon).empty());
}

TEST(RuleTest, PlanExecutorAllocScope) {
  const std::string src = "scratch_.push_back(v);\n";
  EXPECT_TRUE(Hit(RulesHit("src/nn/plan/executor.cc", src),
                  "plan-executor-alloc"));
  // The same idiom is fine anywhere else — the rule protects one contract.
  EXPECT_TRUE(RulesHit("src/core/foo.cc", src).empty());
  EXPECT_TRUE(Hit(RulesHit("src/nn/plan/executor.h", "Tensor t(1, 2);\n"),
                  "plan-executor-alloc"));
}

TEST(RuleTest, TodoLabel) {
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc", "// TODO: fix this\n"),
                  "todo-label"));
  EXPECT_TRUE(RulesHit("src/core/foo.cc", "// TODO(alice): fix this\n")
                  .empty());
  // Per-occurrence, not per-line: an owned TODO does not launder a bare one
  // (the grep version exempted the whole line).
  EXPECT_TRUE(Hit(RulesHit("src/core/foo.cc",
                           "// TODO(alice): split; TODO handle the rest\n"),
                  "todo-label"));
}

TEST(RuleTest, DiagnosticFormat) {
  const auto diags = LintSource("src/core/foo.cc", "int a;\nsrand(7);\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/core/foo.cc");
  EXPECT_EQ(diags[0].line, 2);
  const std::string text = FormatDiagnostic(diags[0]);
  EXPECT_EQ(text.rfind("src/core/foo.cc:2: rand: ", 0), 0u) << text;
}

// --- cross-registry checks over a synthetic mini-tree ---------------------

class CrossRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "adamove_lint_xreg";
    fs::remove_all(root_);
    fs::create_directories(root_ / "src" / "serve");
    fs::create_directories(root_ / "tests");
    fs::create_directories(root_ / "scripts");
    WriteFile("src/serve/svc.cc",
              "f = FaultPoint(\"serve.widget_frob\");\n"
              "n = common::EnvInt(\"ADAMOVE_WIDGETS\", 1);\n");
    WriteFile("tests/CMakeLists.txt",
              "set_tests_properties(t PROPERTIES LABELS \"alpha;beta\")\n");
    WriteFile("scripts/check.sh", "ctest -L 'alpha|gamma'\n");
    WriteFile("DESIGN.md", "nothing here yet\n");
    WriteFile("README.md", "nothing here yet\n");
  }

  void WriteFile(const std::string& rel, const std::string& text) {
    std::ofstream(root_ / rel) << text;
  }

  std::vector<std::string> Rules() {
    std::vector<std::string> rules;
    for (const Diagnostic& d : CrossRegistryLints(root_)) {
      rules.push_back(d.rule);
    }
    return rules;
  }

  fs::path root_;
};

TEST_F(CrossRegistryTest, ReportsEveryMissingRegistration) {
  const auto rules = Rules();
  EXPECT_TRUE(Hit(rules, "fault-point-docs"));
  EXPECT_TRUE(Hit(rules, "fault-point-coverage"));
  EXPECT_TRUE(Hit(rules, "env-docs"));
  EXPECT_TRUE(Hit(rules, "ctest-labels"));  // beta runs in no -L stage
  // alpha IS staged: exactly one label diagnostic.
  int labels = 0;
  for (const std::string& r : rules) labels += r == "ctest-labels" ? 1 : 0;
  EXPECT_EQ(labels, 1);
}

TEST_F(CrossRegistryTest, RegisteredEverywhereIsClean) {
  WriteFile("DESIGN.md", "point table: serve.widget_frob fires on frob\n");
  WriteFile("tests/svc_test.cc", "Arm(\"serve.widget_frob\", 1.0);\n");
  WriteFile("README.md", "set ADAMOVE_WIDGETS to tune widget count\n");
  WriteFile("scripts/check.sh", "ctest -L 'alpha|beta'\n");
  EXPECT_TRUE(Rules().empty());
}

TEST_F(CrossRegistryTest, FaultPointInCommentIsNotADeclaration) {
  WriteFile("src/serve/svc.cc",
            "// e.g. FaultPoint(\"serve.doc_example\") arms a point\n");
  WriteFile("README.md", "set ADAMOVE_WIDGETS\n");  // silence env-docs
  const auto rules = Rules();
  EXPECT_FALSE(Hit(rules, "fault-point-docs"));
  EXPECT_FALSE(Hit(rules, "fault-point-coverage"));
}

// --- THE gate: the real tree lints clean ----------------------------------

TEST(TreeTest, RepoHasZeroFindings) {
  const fs::path root(ADAMOVE_REPO_ROOT);
  ASSERT_TRUE(fs::exists(root / "src"));
  int files = 0;
  const std::vector<Diagnostic> diags = LintTree(root, &files);
  for (const Diagnostic& d : diags) {
    ADD_FAILURE() << FormatDiagnostic(d);
  }
  // Guard against silently scanning nothing.
  EXPECT_GT(files, 100);
}

}  // namespace
}  // namespace adamove::lint
