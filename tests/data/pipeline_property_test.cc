#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

namespace adamove::data {
namespace {

// Parameter: (users, locations, days, density, eval context c, seed).
using Params = std::tuple<int, int, int, double, int, int>;

class PipelinePropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    auto [users, locations, days, density, c, seed] = GetParam();
    SyntheticConfig config;
    config.num_users = users;
    config.num_locations = locations;
    config.num_days = days;
    config.checkins_per_day = density;
    config.seed = static_cast<uint64_t>(seed);
    world_ = GenerateSynthetic(config);
    PreprocessConfig pconfig;
    pconfig.min_users_per_location = 2;
    pre_ = Preprocess(world_.trajectories, pconfig);
    SplitConfig split;
    split.eval_samples.context_sessions = c;
    dataset_ = MakeDataset(pre_, split);
    pconfig_ = pconfig;
  }

  SyntheticResult world_;
  PreprocessedData pre_;
  Dataset dataset_;
  PreprocessConfig pconfig_;
};

TEST_P(PipelinePropertyTest, PreprocessedInvariantsHold) {
  std::set<int64_t> seen_users;
  for (const auto& user : pre_.users) {
    EXPECT_TRUE(seen_users.insert(user.user).second);  // dense & unique
    EXPECT_GE(static_cast<int>(user.sessions.size()),
              pconfig_.min_sessions_per_user);
    for (const auto& session : user.sessions) {
      EXPECT_GE(static_cast<int>(session.size()),
                pconfig_.min_points_per_session);
      // Session fits its window and is chronological.
      EXPECT_LE(session.back().timestamp - session.front().timestamp,
                static_cast<int64_t>(pconfig_.session_window_hours) *
                    kSecondsPerHour);
      for (size_t i = 1; i < session.size(); ++i) {
        EXPECT_GE(session[i].timestamp, session[i - 1].timestamp);
      }
      for (const auto& p : session) {
        EXPECT_GE(p.location, 0);
        EXPECT_LT(p.location, pre_.num_locations);
        EXPECT_EQ(p.user, user.user);
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen_users.size()), pre_.num_users);
}

TEST_P(PipelinePropertyTest, SampleInvariantsHold) {
  auto check = [&](const std::vector<Sample>& samples) {
    for (const auto& s : samples) {
      ASSERT_FALSE(s.recent.empty());
      EXPECT_GE(s.target.location, 0);
      EXPECT_LT(s.target.location, dataset_.num_locations);
      EXPECT_GE(s.user, 0);
      EXPECT_LT(s.user, dataset_.num_users);
      // Chronological: history < recent < target.
      if (!s.history.empty()) {
        EXPECT_LE(s.history.back().timestamp, s.recent.front().timestamp);
      }
      for (size_t i = 1; i < s.recent.size(); ++i) {
        EXPECT_GE(s.recent[i].timestamp, s.recent[i - 1].timestamp);
      }
      EXPECT_GE(s.target.timestamp, s.recent.back().timestamp);
    }
  };
  check(dataset_.train);
  check(dataset_.val);
  check(dataset_.test);
}

TEST_P(PipelinePropertyTest, SplitIsChronologicalPerUser) {
  // For every user, no test target precedes a train target.
  std::unordered_map<int64_t, int64_t> max_train;
  for (const auto& s : dataset_.train) {
    auto [it, inserted] = max_train.try_emplace(s.user, s.target.timestamp);
    if (!inserted) it->second = std::max(it->second, s.target.timestamp);
  }
  for (const auto& s : dataset_.test) {
    auto it = max_train.find(s.user);
    if (it == max_train.end()) continue;
    EXPECT_GT(s.target.timestamp, it->second) << "user " << s.user;
  }
}

TEST_P(PipelinePropertyTest, PipelineIsDeterministic) {
  auto [users, locations, days, density, c, seed] = GetParam();
  SyntheticConfig config;
  config.num_users = users;
  config.num_locations = locations;
  config.num_days = days;
  config.checkins_per_day = density;
  config.seed = static_cast<uint64_t>(seed);
  SyntheticResult again = GenerateSynthetic(config);
  PreprocessedData pre2 = Preprocess(again.trajectories, pconfig_);
  ASSERT_EQ(pre2.num_users, pre_.num_users);
  ASSERT_EQ(pre2.num_locations, pre_.num_locations);
  SplitConfig split;
  split.eval_samples.context_sessions = c;
  Dataset ds2 = MakeDataset(pre2, split);
  EXPECT_EQ(ds2.train.size(), dataset_.train.size());
  EXPECT_EQ(ds2.test.size(), dataset_.test.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelinePropertyTest,
    ::testing::Values(Params{15, 60, 60, 2.5, 1, 11},
                      Params{25, 80, 100, 3.0, 3, 12},
                      Params{20, 70, 80, 5.0, 5, 13},
                      Params{30, 100, 50, 4.0, 6, 14}));

}  // namespace
}  // namespace adamove::data
