#include "data/stats.h"

#include <gtest/gtest.h>

#include "data/point.h"

namespace adamove::data {
namespace {

PreprocessedData TwoUserData() {
  PreprocessedData data;
  data.num_users = 2;
  data.num_locations = 3;
  for (int64_t u = 0; u < 2; ++u) {
    UserSessions us;
    us.user = u;
    Session s1, s2;
    for (int k = 0; k < 5; ++k) {
      s1.push_back(Point{u, k % 3, static_cast<int64_t>(k) * kSecondsPerHour});
      s2.push_back(Point{u, (k + u) % 3,
                         30 * static_cast<int64_t>(kSecondsPerDay) +
                             static_cast<int64_t>(k) * kSecondsPerHour});
    }
    us.sessions = {s1, s2};
    data.users.push_back(us);
  }
  return data;
}

TEST(StatsTest, CountsUsersSessionsPoints) {
  DatasetStats stats = ComputeStats(TwoUserData());
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_locations, 3);
  EXPECT_EQ(stats.num_sessions, 4);
  EXPECT_EQ(stats.num_points, 20);
  EXPECT_DOUBLE_EQ(stats.avg_session_length, 5.0);
  EXPECT_DOUBLE_EQ(stats.avg_sessions_per_user, 2.0);
  EXPECT_EQ(stats.time_span_days, 30);
}

TEST(StatsTest, EmptyDataGivesZeroStats) {
  DatasetStats stats = ComputeStats(PreprocessedData{});
  EXPECT_EQ(stats.num_sessions, 0);
  EXPECT_EQ(stats.time_span_days, 0);
}

TEST(MobilitySimilarityTest, IdenticalDistributionGivesSimilarityOne) {
  // Users repeat the same visit pattern forever: every window matches the
  // historical distribution exactly.
  PreprocessedData data;
  data.num_users = 1;
  data.num_locations = 2;
  UserSessions us;
  us.user = 0;
  for (int day = 0; day < 120; day += 5) {
    Session s;
    for (int k = 0; k < 6; ++k) {
      s.push_back(Point{0, static_cast<int64_t>(k % 2),
                        static_cast<int64_t>(day) * kSecondsPerDay +
                            static_cast<int64_t>(k) * kSecondsPerHour});
    }
    us.sessions.push_back(s);
  }
  data.users.push_back(us);
  auto series = MobilitySimilaritySeries(data, /*history_days=*/30,
                                         /*window_days=*/14);
  ASSERT_FALSE(series.empty());
  for (double sim : series) EXPECT_NEAR(sim, 1.0, 1e-9);
}

TEST(MobilitySimilarityTest, DisjointLocationsGiveZero) {
  // Location 0 visited in the first 30 days, location 1 afterwards.
  PreprocessedData data;
  data.num_users = 1;
  data.num_locations = 2;
  UserSessions us;
  us.user = 0;
  for (int day = 0; day < 90; day += 3) {
    Session s;
    const int64_t loc = day < 30 ? 0 : 1;
    for (int k = 0; k < 5; ++k) {
      s.push_back(Point{0, loc,
                        static_cast<int64_t>(day) * kSecondsPerDay +
                            static_cast<int64_t>(k) * kSecondsPerHour});
    }
    us.sessions.push_back(s);
  }
  data.users.push_back(us);
  auto series = MobilitySimilaritySeries(data, 30, 14);
  ASSERT_FALSE(series.empty());
  for (double sim : series) EXPECT_NEAR(sim, 0.0, 1e-9);
}

TEST(VisitHeatmapTest, CountsVisitsPerWindow) {
  PreprocessedData data = TwoUserData();
  VisitHeatmap hm = ComputeVisitHeatmap(data, 0, /*window_days=*/14);
  ASSERT_EQ(hm.locations.size(), 3u);
  // User 0 visits locations {0,1,2} in window 0 and window 2 (day 30).
  for (const auto& row : hm.counts) {
    ASSERT_EQ(row.size(), 3u);  // 30 days / 14 -> 3 windows
  }
  int total = 0;
  for (const auto& row : hm.counts) {
    for (int c : row) total += c;
  }
  EXPECT_EQ(total, 10);  // user 0 has 10 points
}

TEST(VisitHeatmapTest, RejectsBadUser) {
  PreprocessedData data = TwoUserData();
  EXPECT_DEATH(ComputeVisitHeatmap(data, 7), "CHECK");
}

}  // namespace
}  // namespace adamove::data
