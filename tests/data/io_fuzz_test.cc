#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/checkin_io.h"
#include "data/foursquare_io.h"

namespace adamove::data {
namespace {

/// Seeded byte-level fuzz of the two ingestion formats. The property under
/// test is the loaders' tolerance contract: arbitrary corruption of data
/// lines (truncation, random bytes including NUL, NaN/inf tokens, separator
/// damage) must never crash or fail the load — every damaged line is either
/// parsed or counted as rejected, and the surviving subset round-trips.

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

constexpr const char* kBadTokens[] = {"nan",  "inf", "-inf", "NaN",
                                      "1e99", "",    "  ",   "-"};

/// Applies one random byte-level mutation. Never introduces '\n' so one
/// written line stays one read line (keeps the accounting invariant exact).
std::string Mutate(const std::string& line, char separator,
                   common::Rng& rng) {
  std::string out = line;
  const int op = static_cast<int>(rng.UniformInt(0, 4));
  auto random_byte = [&rng]() -> char {
    char b = static_cast<char>(rng.UniformInt(0, 255));
    return b == '\n' ? '\0' : b;  // embedded NULs are part of the menu
  };
  switch (op) {
    case 0:  // truncate
      out.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()))));
      break;
    case 1:  // replace one byte
      if (!out.empty()) {
        out[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(out.size()) - 1))] = random_byte();
      }
      break;
    case 2:  // insert one byte
      out.insert(out.begin() + rng.UniformInt(
                                   0, static_cast<int64_t>(out.size())),
                 random_byte());
      break;
    case 3:  // delete one byte
      if (!out.empty()) {
        out.erase(out.begin() + rng.UniformInt(
                                    0, static_cast<int64_t>(out.size()) - 1));
      }
      break;
    case 4: {  // replace one separated field with a hostile token
      std::vector<std::string> fields;
      std::string cell;
      size_t start = 0;
      for (size_t i = 0; i <= out.size(); ++i) {
        if (i == out.size() || out[i] == separator) {
          fields.push_back(out.substr(start, i - start));
          start = i + 1;
        }
      }
      const size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(fields.size()) - 1));
      fields[victim] = kBadTokens[rng.UniformInt(
          0, static_cast<int64_t>(std::size(kBadTokens)) - 1)];
      out.clear();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out += separator;
        out += fields[i];
      }
      break;
    }
  }
  return out;
}

size_t PointCount(const std::vector<Trajectory>& trajectories) {
  size_t n = 0;
  for (const auto& tr : trajectories) n += tr.points.size();
  return n;
}

/// user -> multiset of (location, timestamp); the order-independent content
/// of a loaded dataset.
std::map<int64_t, std::multiset<std::pair<int64_t, int64_t>>> Contents(
    const std::vector<Trajectory>& trajectories) {
  std::map<int64_t, std::multiset<std::pair<int64_t, int64_t>>> m;
  for (const auto& tr : trajectories) {
    for (const auto& p : tr.points) {
      m[tr.user].insert({p.location, p.timestamp});
    }
  }
  return m;
}

std::vector<std::string> ValidCsvLines() {
  std::vector<std::string> lines;
  for (int u = 0; u < 5; ++u) {
    for (int s = 0; s < 8; ++s) {
      lines.push_back(std::to_string(u) + "," + std::to_string((u + s) % 12) +
                      "," + std::to_string(1333238400 + s * 3600));
    }
  }
  return lines;
}

TEST(IoFuzzTest, CheckinCsvSurvivesByteLevelCorruption) {
  common::Rng rng(20250805);
  const std::vector<std::string> base = ValidCsvLines();
  const std::string path = TempPath("adamove_fuzz_checkin.csv");
  const std::string rt_path = TempPath("adamove_fuzz_checkin_rt.csv");

  for (int trial = 0; trial < 150; ++trial) {
    std::vector<std::string> lines = base;
    // Corrupt a random subset (at least one line per trial).
    const int hits = static_cast<int>(rng.UniformInt(1, 10));
    for (int h = 0; h < hits; ++h) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
      lines[i] = Mutate(lines[i], ',', rng);
    }
    size_t nonempty = 0;
    {
      std::ofstream out(path, std::ios::binary);
      out << "user,location,timestamp\n";
      for (const auto& l : lines) {
        if (!l.empty()) ++nonempty;
        out << l << '\n';
      }
    }

    std::vector<Trajectory> loaded;
    size_t rejected = 0;
    // Property 1: corruption of data rows never fails the load.
    ASSERT_TRUE(LoadCheckinsCsv(path, &loaded, &rejected)) << "trial " << trial;
    // Property 2: every non-empty line is accounted for — parsed or rejected.
    ASSERT_EQ(PointCount(loaded) + rejected, nonempty) << "trial " << trial;

    // Property 3: loading is deterministic.
    std::vector<Trajectory> again;
    size_t rejected_again = 0;
    ASSERT_TRUE(LoadCheckinsCsv(path, &again, &rejected_again));
    ASSERT_EQ(rejected_again, rejected);
    ASSERT_TRUE(Contents(again) == Contents(loaded));

    // Property 4: the surviving subset round-trips through save/load.
    ASSERT_TRUE(SaveCheckinsCsv(rt_path, loaded));
    std::vector<Trajectory> round;
    size_t rt_rejected = 0;
    ASSERT_TRUE(LoadCheckinsCsv(rt_path, &round, &rt_rejected));
    ASSERT_EQ(rt_rejected, 0u) << "trial " << trial;
    ASSERT_TRUE(Contents(round) == Contents(loaded)) << "trial " << trial;
  }
  std::remove(path.c_str());
  std::remove(rt_path.c_str());
}

std::vector<std::string> ValidTsvLines() {
  static const char* kVenues[] = {"4b5b9e7ff964a520900a29e3",
                                  "4a43c0aef964a520c6a61fe3",
                                  "4c5ef77bfff99c74eda954d3"};
  static const char* kTimes[] = {"Tue Apr 03 18:00:09 +0000 2012",
                                 "Wed Apr 04 06:22:01 +0000 2012",
                                 "Fri Jun 15 23:59:59 +0000 2012"};
  std::vector<std::string> lines;
  for (int u = 0; u < 4; ++u) {
    for (int s = 0; s < 6; ++s) {
      std::string line = std::to_string(470 + u);
      line += '\t';
      line += kVenues[(u + s) % 3];
      line += "\t4bf58dd8d48988d127951735\tArts & Crafts Store\t";
      line += "40.719810375488535\t-74.00258103213994\t-240\t";
      line += kTimes[s % 3];
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(IoFuzzTest, FoursquareTsvSurvivesByteLevelCorruption) {
  common::Rng rng(4041);
  const std::vector<std::string> base = ValidTsvLines();
  const std::string path = TempPath("adamove_fuzz_foursquare.txt");

  for (int trial = 0; trial < 150; ++trial) {
    std::vector<std::string> lines = base;
    const int hits = static_cast<int>(rng.UniformInt(1, 8));
    for (int h = 0; h < hits; ++h) {
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
      lines[i] = Mutate(lines[i], '\t', rng);
    }
    size_t nonempty = 0;
    {
      std::ofstream out(path, std::ios::binary);
      for (const auto& l : lines) {
        if (!l.empty()) ++nonempty;
        out << l << '\n';
      }
    }

    FoursquareLoadResult result;
    ASSERT_TRUE(LoadFoursquareTsv(path, &result)) << "trial " << trial;
    ASSERT_EQ(PointCount(result.trajectories) + result.skipped_lines, nonempty)
        << "trial " << trial;
    // Every surviving point references a venue the id table actually holds.
    const int64_t venues =
        static_cast<int64_t>(result.location_to_venue.size());
    for (const auto& tr : result.trajectories) {
      for (const auto& p : tr.points) {
        ASSERT_GE(p.location, 0);
        ASSERT_LT(p.location, venues);
      }
    }

    FoursquareLoadResult again;
    ASSERT_TRUE(LoadFoursquareTsv(path, &again));
    ASSERT_EQ(again.skipped_lines, result.skipped_lines);
    ASSERT_TRUE(Contents(again.trajectories) ==
                Contents(result.trajectories));
  }
  std::remove(path.c_str());
}

/// Unfuzzed sanity anchor: with zero corruption both loaders take every line
/// (guards against the fuzz passing vacuously because the base data itself
/// was partially rejected).
TEST(IoFuzzTest, BaselinesFullyParse) {
  {
    const std::string path = TempPath("adamove_fuzz_base.csv");
    std::ofstream out(path);
    out << "user,location,timestamp\n";
    for (const auto& l : ValidCsvLines()) out << l << '\n';
    out.close();
    std::vector<Trajectory> loaded;
    size_t rejected = 0;
    ASSERT_TRUE(LoadCheckinsCsv(path, &loaded, &rejected));
    EXPECT_EQ(rejected, 0u);
    EXPECT_EQ(PointCount(loaded), ValidCsvLines().size());
    std::remove(path.c_str());
  }
  {
    const std::string path = TempPath("adamove_fuzz_base.txt");
    std::ofstream out(path);
    for (const auto& l : ValidTsvLines()) out << l << '\n';
    out.close();
    FoursquareLoadResult result;
    ASSERT_TRUE(LoadFoursquareTsv(path, &result));
    EXPECT_EQ(result.skipped_lines, 0u);
    EXPECT_EQ(PointCount(result.trajectories), ValidTsvLines().size());
    EXPECT_EQ(result.location_to_venue.size(), 3u);
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace adamove::data
