#include "data/preprocess.h"

#include <gtest/gtest.h>

#include "data/point.h"

namespace adamove::data {
namespace {

Point P(int64_t user, int64_t loc, int64_t hours) {
  return Point{user, loc, hours * kSecondsPerHour};
}

TEST(TimeSlotTest, EncodesWorkdayAndWeekendSeparately) {
  // Unix epoch day 0 is a Thursday. Hour 10 on Thursday -> slot 10.
  EXPECT_EQ(TimeSlotOf(10 * kSecondsPerHour), 10);
  // Day 2 after epoch is a Saturday -> weekend slots 24..47.
  EXPECT_EQ(TimeSlotOf(2 * kSecondsPerDay + 10 * kSecondsPerHour), 34);
  // Day 3 is a Sunday.
  EXPECT_EQ(TimeSlotOf(3 * kSecondsPerDay), 24);
  // Day 4 is a Monday.
  EXPECT_EQ(TimeSlotOf(4 * kSecondsPerDay + 23 * kSecondsPerHour), 23);
}

TEST(SegmentSessionsTest, SplitsOnWindowBoundary) {
  Trajectory tr;
  tr.user = 0;
  tr.points = {P(0, 1, 0), P(0, 2, 10), P(0, 3, 71), P(0, 4, 73),
               P(0, 5, 80)};
  auto sessions = SegmentSessions(tr, /*window_hours=*/72);
  // First session opens at hour 0 and holds points up to hour 72.
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 3u);
  EXPECT_EQ(sessions[1].size(), 2u);
  EXPECT_EQ(sessions[1][0].location, 4);
}

TEST(SegmentSessionsTest, WindowAnchorsAtSessionStartNotLastPoint) {
  Trajectory tr;
  tr.user = 0;
  // Points every 48 h: each is within 72 h of the previous point but the
  // third is outside the window opened by the first.
  tr.points = {P(0, 1, 0), P(0, 2, 48), P(0, 3, 96)};
  auto sessions = SegmentSessions(tr, 72);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
}

TEST(SegmentSessionsTest, EmptyTrajectoryGivesNoSessions) {
  Trajectory tr;
  EXPECT_TRUE(SegmentSessions(tr, 72).empty());
}

class PreprocessPipelineTest : public ::testing::Test {
 protected:
  // Builds `num_users` users all visiting the same two locations in
  // `sessions_per_user` well-separated dense sessions.
  std::vector<Trajectory> MakeRegularCorpus(int num_users,
                                            int sessions_per_user,
                                            int points_per_session) {
    std::vector<Trajectory> out;
    for (int u = 0; u < num_users; ++u) {
      Trajectory tr;
      tr.user = 100 + u;  // raw ids not dense
      for (int s = 0; s < sessions_per_user; ++s) {
        for (int k = 0; k < points_per_session; ++k) {
          const int64_t t =
              (static_cast<int64_t>(s) * 200 + k) * kSecondsPerHour;
          tr.points.push_back(Point{tr.user, 1000 + (k % 2), t});
        }
      }
      out.push_back(tr);
    }
    return out;
  }
};

TEST_F(PreprocessPipelineTest, KeepsRegularUsersAndReindexes) {
  auto raw = MakeRegularCorpus(4, 6, 5);
  PreprocessConfig config;
  config.min_users_per_location = 3;
  PreprocessedData data = Preprocess(raw, config);
  EXPECT_EQ(data.num_users, 4);
  EXPECT_EQ(data.num_locations, 2);
  for (const auto& user : data.users) {
    EXPECT_EQ(user.sessions.size(), 6u);
    for (const auto& session : user.sessions) {
      for (const auto& p : session) {
        EXPECT_LT(p.location, data.num_locations);
        EXPECT_EQ(p.user, user.user);
      }
    }
  }
  // Raw id mapping preserved.
  EXPECT_EQ(data.user_to_raw[0], 100);
  EXPECT_EQ(data.location_to_raw.size(), 2u);
}

TEST_F(PreprocessPipelineTest, DropsUnpopularLocations) {
  auto raw = MakeRegularCorpus(4, 6, 5);
  // One user sprinkles in a location nobody else visits.
  raw[0].points.push_back(Point{raw[0].user, 9999, 5 * kSecondsPerHour});
  PreprocessConfig config;
  config.min_users_per_location = 3;
  PreprocessedData data = Preprocess(raw, config);
  EXPECT_EQ(data.num_locations, 2);  // 9999 filtered
}

TEST_F(PreprocessPipelineTest, DropsShortSessions) {
  auto raw = MakeRegularCorpus(4, 6, 5);
  // Add a far-future session with only 2 points to user 0: it must vanish.
  const int64_t base = 100000 * static_cast<int64_t>(kSecondsPerHour);
  raw[0].points.push_back(Point{raw[0].user, 1000, base});
  raw[0].points.push_back(Point{raw[0].user, 1001, base + 1});
  PreprocessConfig config;
  config.min_users_per_location = 3;
  PreprocessedData data = Preprocess(raw, config);
  EXPECT_EQ(data.users[0].sessions.size(), 6u);
}

TEST_F(PreprocessPipelineTest, DropsInactiveUsers) {
  auto raw = MakeRegularCorpus(4, 6, 5);
  raw.push_back(MakeRegularCorpus(1, 2, 5)[0]);  // only 2 sessions
  raw.back().user = 999;
  PreprocessConfig config;
  config.min_users_per_location = 3;
  PreprocessedData data = Preprocess(raw, config);
  EXPECT_EQ(data.num_users, 4);
}

TEST_F(PreprocessPipelineTest, SortsOutOfOrderPoints) {
  auto raw = MakeRegularCorpus(3, 6, 5);
  std::swap(raw[0].points[0], raw[0].points[3]);
  PreprocessConfig config;
  config.min_users_per_location = 3;
  PreprocessedData data = Preprocess(raw, config);
  for (const auto& session : data.users[0].sessions) {
    for (size_t i = 1; i < session.size(); ++i) {
      EXPECT_GE(session[i].timestamp, session[i - 1].timestamp);
    }
  }
}

TEST_F(PreprocessPipelineTest, EmptyInputGivesEmptyOutput) {
  PreprocessedData data = Preprocess({}, PreprocessConfig{});
  EXPECT_EQ(data.num_users, 0);
  EXPECT_EQ(data.num_locations, 0);
  EXPECT_TRUE(data.users.empty());
}

}  // namespace
}  // namespace adamove::data
