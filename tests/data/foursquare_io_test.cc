#include "data/foursquare_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace adamove::data {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParseFoursquareTimeTest, KnownTimestamps) {
  int64_t t = 0;
  // 2012-04-03 18:00:09 UTC = 1333476009.
  ASSERT_TRUE(ParseFoursquareTime("Tue Apr 03 18:00:09 +0000 2012", &t));
  EXPECT_EQ(t, 1333476009);
  // Epoch.
  ASSERT_TRUE(ParseFoursquareTime("Thu Jan 01 00:00:00 +0000 1970", &t));
  EXPECT_EQ(t, 0);
  // Leap-year day: 2012-02-29 12:00:00 UTC = 1330516800.
  ASSERT_TRUE(ParseFoursquareTime("Wed Feb 29 12:00:00 +0000 2012", &t));
  EXPECT_EQ(t, 1330516800);
}

TEST(ParseFoursquareTimeTest, RejectsGarbage) {
  int64_t t = 0;
  EXPECT_FALSE(ParseFoursquareTime("not a time", &t));
  EXPECT_FALSE(ParseFoursquareTime("Tue Xxx 03 18:00:09 +0000 2012", &t));
  EXPECT_FALSE(ParseFoursquareTime("Tue Apr 33 18:00:09 +0000 2012", &t));
  EXPECT_FALSE(ParseFoursquareTime("Tue Apr 03 25:00:09 +0000 2012", &t));
}

TEST(LoadFoursquareTsvTest, ParsesAndReindexesVenues) {
  const std::string path = TempPath("adamove_4sq.tsv");
  {
    std::ofstream out(path);
    out << "470\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\t"
           "Arts & Crafts Store\t40.72\t-74.0\t-240\t"
           "Tue Apr 03 18:00:09 +0000 2012\n";
    out << "470\t4a43c0aef964a520c6a61fe3\t4bf58dd8d48988d1df941735\t"
           "Bridge\t40.60\t-73.99\t-240\t"
           "Tue Apr 03 19:00:09 +0000 2012\n";
    out << "979\t49bbd6c0f964a520f4531fe3\t4bf58dd8d48988d127951735\t"
           "Arts & Crafts Store\t40.72\t-74.0\t-240\t"
           "Wed Apr 04 10:00:00 +0000 2012\n";
  }
  FoursquareLoadResult result;
  ASSERT_TRUE(LoadFoursquareTsv(path, &result));
  EXPECT_EQ(result.skipped_lines, 0u);
  ASSERT_EQ(result.trajectories.size(), 2u);
  EXPECT_EQ(result.location_to_venue.size(), 2u);
  // Same venue string maps to the same dense id across users.
  EXPECT_EQ(result.trajectories[0].points[0].location,
            result.trajectories[1].points[0].location);
  // Timezone offset (-240 min) applied: local = utc - 4h.
  EXPECT_EQ(result.trajectories[0].points[0].timestamp,
            1333476009 - 240 * 60);
  std::remove(path.c_str());
}

TEST(LoadFoursquareTsvTest, SkipsMalformedRowsAndCountsThem) {
  const std::string path = TempPath("adamove_4sq_bad.tsv");
  {
    std::ofstream out(path);
    out << "garbage line without tabs\n";
    out << "470\tv1\tc\tn\t1\t2\tnot_a_number\t"
           "Tue Apr 03 18:00:09 +0000 2012\n";
    out << "470\tv1\tc\tn\t1\t2\t-240\tTue Apr 03 18:00:09 +0000 2012\n";
  }
  FoursquareLoadResult result;
  ASSERT_TRUE(LoadFoursquareTsv(path, &result));
  EXPECT_EQ(result.skipped_lines, 2u);
  ASSERT_EQ(result.trajectories.size(), 1u);
  std::remove(path.c_str());
}

TEST(LoadFoursquareTsvTest, MissingFileFails) {
  FoursquareLoadResult result;
  EXPECT_FALSE(LoadFoursquareTsv("/does/not/exist.tsv", &result));
}

TEST(LoadFoursquareTsvTest, HandlesCarriageReturns) {
  const std::string path = TempPath("adamove_4sq_crlf.tsv");
  {
    std::ofstream out(path);
    out << "470\tv1\tc\tn\t1\t2\t-240\tTue Apr 03 18:00:09 +0000 2012\r\n";
  }
  FoursquareLoadResult result;
  ASSERT_TRUE(LoadFoursquareTsv(path, &result));
  EXPECT_EQ(result.skipped_lines, 0u);
  ASSERT_EQ(result.trajectories.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::data
