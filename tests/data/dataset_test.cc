#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/point.h"

namespace adamove::data {
namespace {

// A user with `n_sessions` sessions of `len` points each; session s visits
// locations s*10+k at hour s*200+k.
UserSessions MakeUser(int64_t user, int n_sessions, int len) {
  UserSessions us;
  us.user = user;
  for (int s = 0; s < n_sessions; ++s) {
    Session session;
    for (int k = 0; k < len; ++k) {
      session.push_back(Point{
          user, static_cast<int64_t>(s * 10 + k),
          (static_cast<int64_t>(s) * 200 + k) * kSecondsPerHour});
    }
    us.sessions.push_back(session);
  }
  return us;
}

TEST(BuildSamplesTest, OneSessionContextSlidesOverSession) {
  UserSessions user = MakeUser(0, 3, 4);
  SampleConfig config;
  config.context_sessions = 1;
  auto samples = BuildSamples(user, 0, 1, config);
  // Session of 4 points -> 3 samples (predict position 1, 2, 3).
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].recent.size(), 1u);
  EXPECT_EQ(samples[0].target.location, 1);
  EXPECT_EQ(samples[2].recent.size(), 3u);
  EXPECT_EQ(samples[2].target.location, 3);
  // c=1: no history beyond the current session for session 0.
  EXPECT_TRUE(samples[0].history.empty());
}

TEST(BuildSamplesTest, ContextSessionsPrependEarlierSessions) {
  UserSessions user = MakeUser(0, 4, 4);
  SampleConfig config;
  config.context_sessions = 3;
  auto samples = BuildSamples(user, 3, 4, config);  // last session only
  ASSERT_EQ(samples.size(), 3u);
  // recent = sessions 1,2 fully + prefix of session 3.
  EXPECT_EQ(samples[0].recent.size(), 4u + 4u + 1u);
  // history = session 0 only.
  EXPECT_EQ(samples[0].history.size(), 4u);
  EXPECT_EQ(samples[0].history[0].location, 0);
}

TEST(BuildSamplesTest, HistoryCapKeepsMostRecent) {
  UserSessions user = MakeUser(0, 5, 4);
  SampleConfig config;
  config.context_sessions = 1;
  config.max_history_points = 0;  // history is everything before session 4
  // Without the cap: sessions 0..3 -> 16 points... but context_sessions=1
  // means ctx_begin = 4, so history is sessions 0..3.
  auto uncapped = BuildSamples(user, 4, 5, config);
  ASSERT_FALSE(uncapped.empty());
  EXPECT_EQ(uncapped[0].history.size(), 16u);
  config.max_history_points = 6;
  auto capped = BuildSamples(user, 4, 5, config);
  EXPECT_EQ(capped[0].history.size(), 6u);
  // Kept points are the most recent (end of session 3).
  EXPECT_EQ(capped[0].history.back().location, 33);
}

TEST(BuildSamplesTest, RecentCapKeepsMostRecent) {
  UserSessions user = MakeUser(0, 4, 6);
  SampleConfig config;
  config.context_sessions = 4;
  config.max_recent_points = 5;
  auto samples = BuildSamples(user, 3, 4, config);
  for (const auto& s : samples) {
    EXPECT_LE(s.recent.size(), 5u);
  }
  // Target location is still the true next point of the session.
  EXPECT_EQ(samples[0].target.location, 31);
}

TEST(MakeDatasetTest, SplitsFractionsPerUser) {
  PreprocessedData data;
  data.num_locations = 100;
  data.num_users = 2;
  data.users.push_back(MakeUser(0, 10, 4));
  data.users.push_back(MakeUser(1, 10, 4));
  SplitConfig config;
  Dataset ds = MakeDataset(data, config);
  // 10 sessions: 7 train, 1 val, 2 test per user; 3 samples per session.
  EXPECT_EQ(ds.train.size(), 2u * 7u * 3u);
  EXPECT_EQ(ds.val.size(), 2u * 1u * 3u);
  EXPECT_EQ(ds.test.size(), 2u * 2u * 3u);
  EXPECT_EQ(ds.num_locations, 100);
  EXPECT_EQ(ds.num_users, 2);
}

TEST(MakeDatasetTest, TestSamplesComeFromLatestSessions) {
  PreprocessedData data;
  data.num_locations = 100;
  data.num_users = 1;
  data.users.push_back(MakeUser(0, 10, 4));
  Dataset ds = MakeDataset(data, SplitConfig{});
  // Train targets precede all test targets chronologically.
  int64_t max_train = 0, min_test = INT64_MAX;
  for (const auto& s : ds.train) {
    max_train = std::max(max_train, s.target.timestamp);
  }
  for (const auto& s : ds.test) {
    min_test = std::min(min_test, s.target.timestamp);
  }
  EXPECT_LT(max_train, min_test);
}

TEST(MakeDatasetTest, EvalContextWiderThanTrain) {
  PreprocessedData data;
  data.num_locations = 100;
  data.num_users = 1;
  data.users.push_back(MakeUser(0, 10, 4));
  SplitConfig config;
  config.eval_samples.context_sessions = 5;
  Dataset ds = MakeDataset(data, config);
  // Test samples should carry more recent context than train samples.
  size_t max_train_recent = 0, max_test_recent = 0;
  for (const auto& s : ds.train) {
    max_train_recent = std::max(max_train_recent, s.recent.size());
  }
  for (const auto& s : ds.test) {
    max_test_recent = std::max(max_test_recent, s.recent.size());
  }
  EXPECT_GT(max_test_recent, max_train_recent);
}

}  // namespace
}  // namespace adamove::data
