#include "data/synthetic.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/stats.h"

namespace adamove::data {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig c;
  c.num_users = 30;
  c.num_locations = 120;
  c.num_days = 120;
  c.checkins_per_day = 3.0;
  c.seed = 99;
  return c;
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticResult a = GenerateSynthetic(SmallConfig());
  SyntheticResult b = GenerateSynthetic(SmallConfig());
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (size_t u = 0; u < a.trajectories.size(); ++u) {
    EXPECT_EQ(a.trajectories[u].points.size(),
              b.trajectories[u].points.size());
    for (size_t i = 0; i < a.trajectories[u].points.size(); ++i) {
      EXPECT_TRUE(a.trajectories[u].points[i] == b.trajectories[u].points[i]);
    }
  }
  SyntheticConfig other = SmallConfig();
  other.seed = 100;
  SyntheticResult c = GenerateSynthetic(other);
  // A different seed produces a different corpus.
  bool any_diff = false;
  for (size_t u = 0; u < a.trajectories.size() && !any_diff; ++u) {
    if (a.trajectories[u].points.size() != c.trajectories[u].points.size()) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, TrajectoriesAreChronological) {
  SyntheticResult r = GenerateSynthetic(SmallConfig());
  for (const auto& tr : r.trajectories) {
    for (size_t i = 1; i < tr.points.size(); ++i) {
      EXPECT_GE(tr.points[i].timestamp, tr.points[i - 1].timestamp);
    }
  }
}

TEST(SyntheticTest, PointsAreWithinConfiguredRanges) {
  SyntheticConfig config = SmallConfig();
  SyntheticResult r = GenerateSynthetic(config);
  const int64_t end = config.start_timestamp +
                      static_cast<int64_t>(config.num_days) * kSecondsPerDay;
  int64_t total_points = 0;
  for (const auto& tr : r.trajectories) {
    total_points += static_cast<int64_t>(tr.points.size());
    for (const auto& p : tr.points) {
      EXPECT_GE(p.location, 0);
      EXPECT_LT(p.location, config.num_locations);
      EXPECT_GE(p.timestamp, config.start_timestamp);
      EXPECT_LT(p.timestamp, end);
    }
  }
  // Poisson(3)/day * 120 days * 30 users ≈ 10800 ± noise.
  EXPECT_GT(total_points, 8000);
  EXPECT_LT(total_points, 14000);
}

TEST(SyntheticTest, ShiftedUsersChangeAnchors) {
  SyntheticConfig config = SmallConfig();
  config.shift_user_frac = 0.5;
  config.anchor_churn_per_week = 0.0;  // isolate the one-shot shift
  SyntheticResult r = GenerateSynthetic(config);
  EXPECT_FALSE(r.shifted_users.empty());
  std::set<int64_t> shifted(r.shifted_users.begin(), r.shifted_users.end());
  for (int64_t u = 0; u < config.num_users; ++u) {
    const auto& before = r.anchors_before[static_cast<size_t>(u)];
    const auto& after = r.anchors_after[static_cast<size_t>(u)];
    if (shifted.count(u) > 0) {
      EXPECT_NE(before, after) << "user " << u;
      // Home anchor (index 0) survives a job change.
      EXPECT_EQ(before[0], after[0]);
    } else {
      EXPECT_EQ(before, after) << "user " << u;
    }
  }
}

TEST(SyntheticTest, GradualChurnDecaysSimilarityWithoutShiftEvent) {
  // With no one-shot shift but steady anchor churn, the biweekly mobility
  // similarity must still decay over time (the continuous drift of
  // Fig. 1(c)).
  SyntheticConfig config = SmallConfig();
  config.num_days = 200;
  config.shift_user_frac = 0.0;
  config.anchor_churn_per_week = 0.15;
  SyntheticResult r = GenerateSynthetic(config);
  PreprocessConfig pconfig;
  pconfig.min_users_per_location = 2;
  auto series = MobilitySimilaritySeries(
      Preprocess(r.trajectories, pconfig), 60, 14);
  ASSERT_GE(series.size(), 6u);
  const double early = (series[0] + series[1]) / 2.0;
  const double late =
      (series[series.size() - 1] + series[series.size() - 2]) / 2.0;
  EXPECT_GT(early, late);
}

TEST(SyntheticTest, ShiftedUsersVisitNewLocationsAfterShift) {
  SyntheticConfig config = SmallConfig();
  config.shift_user_frac = 1.0;
  config.explore_prob = 0.0;  // isolate the anchor behaviour
  SyntheticResult r = GenerateSynthetic(config);
  int users_with_new_locations = 0;
  for (const auto& tr : r.trajectories) {
    std::set<int64_t> before_locs, after_locs;
    for (const auto& p : tr.points) {
      (p.timestamp < r.shift_timestamp ? before_locs : after_locs)
          .insert(p.location);
    }
    for (int64_t l : after_locs) {
      if (before_locs.count(l) == 0) {
        ++users_with_new_locations;
        break;
      }
    }
  }
  // With a full shift, the vast majority of users visit novel locations.
  EXPECT_GT(users_with_new_locations,
            static_cast<int>(r.trajectories.size() * 3 / 4));
}

TEST(SyntheticTest, MobilitySimilarityDecaysAfterShift) {
  // The Fig. 1(c) phenomenon: biweekly similarity to the historical
  // distribution drops once the regime shift kicks in.
  SyntheticConfig config = SmallConfig();
  config.num_days = 200;
  config.shift_time_frac = 0.6;
  config.shift_user_frac = 0.9;
  config.shift_anchor_frac = 0.8;
  SyntheticResult r = GenerateSynthetic(config);
  PreprocessConfig pconfig;
  pconfig.min_users_per_location = 2;
  PreprocessedData data = Preprocess(r.trajectories, pconfig);
  auto series = MobilitySimilaritySeries(data, /*history_days=*/60,
                                         /*window_days=*/14);
  ASSERT_GE(series.size(), 6u);
  // Average of the first two windows (pre-shift) vs last two (post-shift).
  const double early = (series[0] + series[1]) / 2.0;
  const double late =
      (series[series.size() - 1] + series[series.size() - 2]) / 2.0;
  EXPECT_GT(early, late + 0.05);
}

TEST(SyntheticTest, PresetsSurvivePreprocessing) {
  for (auto preset : AllPresets()) {
    // Shrink to keep this test fast while checking the whole pipeline.
    ScalePreset(preset, 0.4);
    preset.synthetic.num_days = std::min(preset.synthetic.num_days, 100);
    SyntheticResult r = GenerateSynthetic(preset.synthetic);
    PreprocessedData data = Preprocess(r.trajectories, preset.preprocess);
    EXPECT_GT(data.num_users, preset.synthetic.num_users / 2)
        << preset.name;
    EXPECT_GT(data.num_locations, 10) << preset.name;
    DatasetStats stats = ComputeStats(data);
    EXPECT_GE(stats.avg_session_length, 5.0) << preset.name;
    // The pipeline must yield usable train/test splits.
    Dataset ds = MakeDataset(data, SplitConfig{});
    EXPECT_GT(ds.train.size(), 100u) << preset.name;
    EXPECT_GT(ds.test.size(), 20u) << preset.name;
  }
}

TEST(SyntheticTest, ScalePresetScalesUsersAndLocations) {
  DatasetPreset p = NycLikePreset();
  const int users = p.synthetic.num_users;
  const int locs = p.synthetic.num_locations;
  ScalePreset(p, 0.5);
  EXPECT_EQ(p.synthetic.num_users, users / 2);
  EXPECT_EQ(p.synthetic.num_locations, locs / 2);
  ScalePreset(p, 0.0);  // invalid factor: no-op
  EXPECT_EQ(p.synthetic.num_users, users / 2);
}

TEST(SyntheticTest, LymobPresetIsDenserAndShorter) {
  DatasetPreset nyc = NycLikePreset();
  DatasetPreset lymob = LymobLikePreset();
  EXPECT_EQ(lymob.synthetic.num_days, 75);
  EXPECT_GT(lymob.synthetic.checkins_per_day, nyc.synthetic.checkins_per_day);
  EXPECT_LT(lymob.synthetic.shift_user_frac, nyc.synthetic.shift_user_frac);
}

}  // namespace
}  // namespace adamove::data
