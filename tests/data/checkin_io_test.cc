#include "data/checkin_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace adamove::data {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(CheckinIoTest, RoundTrips) {
  std::vector<Trajectory> trajs(2);
  trajs[0].user = 3;
  trajs[0].points = {{3, 10, 1000}, {3, 11, 2000}};
  trajs[1].user = 7;
  trajs[1].points = {{7, 12, 1500}};
  const std::string path = TempPath("adamove_io_roundtrip.csv");
  ASSERT_TRUE(SaveCheckinsCsv(path, trajs));

  std::vector<Trajectory> loaded;
  ASSERT_TRUE(LoadCheckinsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].user, 3);
  ASSERT_EQ(loaded[0].points.size(), 2u);
  EXPECT_TRUE(loaded[0].points[1] == (Point{3, 11, 2000}));
  EXPECT_EQ(loaded[1].user, 7);
  std::remove(path.c_str());
}

TEST(CheckinIoTest, SortsPointsByTime) {
  const std::string path = TempPath("adamove_io_sort.csv");
  {
    std::ofstream out(path);
    out << "user,location,timestamp\n";
    out << "1,5,3000\n1,6,1000\n1,7,2000\n";
  }
  std::vector<Trajectory> loaded;
  ASSERT_TRUE(LoadCheckinsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].points[0].location, 6);
  EXPECT_EQ(loaded[0].points[1].location, 7);
  EXPECT_EQ(loaded[0].points[2].location, 5);
  std::remove(path.c_str());
}

TEST(CheckinIoTest, FailsOnMissingFile) {
  std::vector<Trajectory> loaded;
  EXPECT_FALSE(LoadCheckinsCsv("/nonexistent/file.csv", &loaded));
}

TEST(CheckinIoTest, SkipsAndCountsGarbageRows) {
  const std::string path = TempPath("adamove_io_garbage.csv");
  {
    std::ofstream out(path);
    out << "user,location,timestamp\n";
    out << "not_a_number,2,3\n";   // bad user
    out << "1,2,3\n";              // fine
    out << "1,2\n";                // truncated
    out << "1,nan,3\n";            // bad location
  }
  std::vector<Trajectory> loaded;
  size_t rejected = 0;
  ASSERT_TRUE(LoadCheckinsCsv(path, &loaded, &rejected));
  EXPECT_EQ(rejected, 3u);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].points.size(), 1u);
  std::remove(path.c_str());
}

TEST(CheckinIoTest, SkipsEmptyLines) {
  const std::string path = TempPath("adamove_io_empty.csv");
  {
    std::ofstream out(path);
    out << "user,location,timestamp\n";
    out << "1,2,3\n\n1,3,4\n";
  }
  std::vector<Trajectory> loaded;
  ASSERT_TRUE(LoadCheckinsCsv(path, &loaded));
  EXPECT_EQ(loaded[0].points.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::data
