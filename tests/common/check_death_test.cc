#include "common/check.h"

#include <gtest/gtest.h>

namespace adamove::common {
namespace {

/// The CHECK macros are the repo's only invariant-enforcement mechanism (no
/// exceptions), so their abort behaviour is itself contract: a violated
/// invariant must terminate the process with a diagnosable message, and a
/// satisfied one must be a no-op with exactly one evaluation per operand.

TEST(CheckDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH(ADAMOVE_CHECK(false), "CHECK failed: false");
  EXPECT_DEATH(ADAMOVE_CHECK(1 + 1 == 3), "CHECK failed");
}

TEST(CheckDeathTest, CheckPassesOnTrueCondition) {
  ADAMOVE_CHECK(true);
  ADAMOVE_CHECK(2 > 1);
}

TEST(CheckDeathTest, BinaryChecksAbortWithBothOperands) {
  // The failure message must carry the observed values — that is what makes
  // a production abort diagnosable from the log line alone.
  EXPECT_DEATH(ADAMOVE_CHECK_EQ(3, 4), "CHECK failed: 3 == 4 \\(3 vs 4\\)");
  EXPECT_DEATH(ADAMOVE_CHECK_NE(5, 5), "5 vs 5");
  EXPECT_DEATH(ADAMOVE_CHECK_LT(2, 2), "2 vs 2");
  EXPECT_DEATH(ADAMOVE_CHECK_LE(3, 2), "3 vs 2");
  EXPECT_DEATH(ADAMOVE_CHECK_GT(1, 2), "1 vs 2");
  EXPECT_DEATH(ADAMOVE_CHECK_GE(-1, 0), "-1 vs 0");
}

TEST(CheckDeathTest, BinaryChecksPassOnSatisfiedRelations) {
  ADAMOVE_CHECK_EQ(4, 4);
  ADAMOVE_CHECK_NE(4, 5);
  ADAMOVE_CHECK_LT(1, 2);
  ADAMOVE_CHECK_LE(2, 2);
  ADAMOVE_CHECK_GT(3, 2);
  ADAMOVE_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, OperandsAreEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&calls] { return ++calls; };
  ADAMOVE_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
  ADAMOVE_CHECK(bump() == 2);
  EXPECT_EQ(calls, 2);
}

TEST(CheckDeathTest, MessageIncludesSourceLocation) {
  EXPECT_DEATH(ADAMOVE_CHECK(false), "ADAMOVE FATAL.*check_death_test");
}

}  // namespace
}  // namespace adamove::common
