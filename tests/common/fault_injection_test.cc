#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/timer.h"

namespace adamove::common {
namespace {

/// Every test starts and ends with a clean registry — the registry is
/// process-global and the suite runs in one binary.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    FaultRegistry::Instance().SetSeed(1);
  }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultInjectionTest, DisabledRegistryNeverFires) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(FaultPoint("some.point"));
  }
  // Probing an unarmed point records nothing.
  EXPECT_EQ(FaultRegistry::Instance().StatsFor("some.point").evaluations, 0u);
}

TEST_F(FaultInjectionTest, ProbabilityExtremesAreDeterministic) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Arm("always", FaultSpec{1.0, 0, true});
  reg.Arm("never", FaultSpec{0.0, 0, true});
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(FaultPoint("always"));
    EXPECT_FALSE(FaultPoint("never"));
  }
  EXPECT_EQ(reg.StatsFor("always").fired, 200u);
  EXPECT_EQ(reg.StatsFor("never").fired, 0u);
  EXPECT_EQ(reg.StatsFor("never").evaluations, 200u);
}

TEST_F(FaultInjectionTest, DecisionSequenceIsSeedDeterministic) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.SetSeed(42);
  reg.Arm("p", FaultSpec{0.3, 0, true});
  std::vector<bool> first;
  for (int i = 0; i < 300; ++i) first.push_back(FaultPoint("p"));
  // Reseeding resets the per-point evaluation index: same seed, same walk.
  reg.SetSeed(42);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(FaultPoint("p"), first[static_cast<size_t>(i)]) << "eval " << i;
  }
  // A different seed produces a different walk.
  reg.SetSeed(43);
  bool any_diff = false;
  for (int i = 0; i < 300; ++i) {
    if (FaultPoint("p") != first[static_cast<size_t>(i)]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(FaultInjectionTest, FireRateTracksProbability) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Arm("tenth", FaultSpec{0.1, 0, true});
  int fired = 0;
  for (int i = 0; i < 5000; ++i) fired += FaultPoint("tenth") ? 1 : 0;
  EXPECT_GT(fired, 5000 * 0.05);
  EXPECT_LT(fired, 5000 * 0.2);
  EXPECT_EQ(reg.StatsFor("tenth").fired, static_cast<uint64_t>(fired));
  EXPECT_EQ(reg.StatsFor("tenth").evaluations, 5000u);
}

TEST_F(FaultInjectionTest, PointsAreIndependent) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Arm("a", FaultSpec{1.0, 0, true});
  reg.Arm("b", FaultSpec{0.0, 0, true});
  EXPECT_TRUE(FaultPoint("a"));
  EXPECT_FALSE(FaultPoint("b"));
  reg.Disarm("a");
  EXPECT_FALSE(FaultPoint("a"));  // disarmed point never fires
  EXPECT_TRUE(reg.IsArmed("b"));
  EXPECT_FALSE(reg.IsArmed("a"));
}

TEST_F(FaultInjectionTest, DelayOnlyFaultSleepsButReportsNoError) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Arm("slow", FaultSpec{1.0, 3000, /*error=*/false});
  Timer timer;
  EXPECT_FALSE(FaultPoint("slow"));
  EXPECT_GE(timer.ElapsedMs(), 2.0);  // ~3 ms injected, scheduler slack
  EXPECT_EQ(reg.StatsFor("slow").fired, 1u);
}

TEST_F(FaultInjectionTest, ConfigStringArmsPoints) {
  FaultRegistry& reg = FaultRegistry::Instance();
  EXPECT_TRUE(reg.ConfigureFromString(
      "serve.session_lookup=0.25;serve.encode_forward=1:500:noerror"));
  EXPECT_TRUE(reg.IsArmed("serve.session_lookup"));
  EXPECT_TRUE(reg.IsArmed("serve.encode_forward"));
  EXPECT_EQ(reg.ArmedPoints().size(), 2u);
  // The noerror point delays but reports success.
  EXPECT_FALSE(FaultPoint("serve.encode_forward"));
  EXPECT_EQ(reg.StatsFor("serve.encode_forward").fired, 1u);
}

TEST_F(FaultInjectionTest, MalformedConfigEntriesAreRejected) {
  FaultRegistry& reg = FaultRegistry::Instance();
  EXPECT_FALSE(reg.ConfigureFromString("=0.5"));           // empty name
  EXPECT_FALSE(reg.ConfigureFromString("p"));              // no value
  EXPECT_FALSE(reg.ConfigureFromString("p=garbage"));      // bad probability
  EXPECT_FALSE(reg.ConfigureFromString("p=1.5"));          // out of range
  EXPECT_FALSE(reg.ConfigureFromString("p=0.5:-3"));       // negative delay
  EXPECT_FALSE(reg.ConfigureFromString("p=0.5:10:bogus"));  // bad mode
  EXPECT_TRUE(reg.ArmedPoints().empty());
  // Valid entries before/after a malformed one still arm.
  EXPECT_FALSE(reg.ConfigureFromString("ok=0.5;bad;ok2=0.1"));
  EXPECT_TRUE(reg.IsArmed("ok"));
  EXPECT_TRUE(reg.IsArmed("ok2"));
}

TEST_F(FaultInjectionTest, DisarmAllClearsEverything) {
  FaultRegistry& reg = FaultRegistry::Instance();
  reg.Arm("x", FaultSpec{1.0, 0, true});
  EXPECT_TRUE(FaultPoint("x"));
  reg.DisarmAll();
  EXPECT_FALSE(FaultPoint("x"));
  EXPECT_EQ(reg.StatsFor("x").evaluations, 0u);  // counters dropped
  EXPECT_TRUE(reg.ArmedPoints().empty());
}

}  // namespace
}  // namespace adamove::common
