#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace adamove::common {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 20; ++i) {
    if (a2.UniformInt(0, 1000) != c.UniformInt(0, 1000)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
    const int64_t n = rng.UniformInt(5, 9);
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(2);
  std::vector<double> weights = {0.0, 8.0, 2.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 5000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 2);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.Categorical({0.0, 0.0, 0.0}), 0u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // 1/8! chance of false failure — fixed seed
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(BernoulliTest, ExtremesAreDeterministic) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xxxx", "1"});
  const std::string out = table.ToString();
  // Three lines: header, separator, row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  // All lines have equal width.
  size_t first_nl = out.find('\n');
  size_t second_nl = out.find('\n', first_nl + 1);
  EXPECT_EQ(first_nl, second_nl - first_nl - 1);
}

TEST(TablePrinterTest, FmtUsesFixedPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(0.12345), "0.1235");  // rounds
  EXPECT_EQ(TablePrinter::Fmt(0.1, 2), "0.10");
  EXPECT_EQ(TablePrinter::Fmt(12.0, 0), "12");
}

TEST(TablePrinterTest, RejectsWrongRowWidth) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only one"}), "CHECK");
}

TEST(EnvTest, ParsesAndFallsBack) {
  setenv("ADAMOVE_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("ADAMOVE_TEST_ENV_D", 1.0), 2.5);
  EXPECT_EQ(EnvInt("ADAMOVE_TEST_ENV_D", 7), 2);
  unsetenv("ADAMOVE_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(EnvDouble("ADAMOVE_TEST_ENV_D", 1.0), 1.0);
  setenv("ADAMOVE_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("ADAMOVE_TEST_ENV_D", 1.0), 1.0);
  unsetenv("ADAMOVE_TEST_ENV_D");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  const double t0 = timer.ElapsedMs();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedMs(), t0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMs(), 1000.0);
  EXPECT_NEAR(timer.ElapsedSec() * 1000.0, timer.ElapsedMs(), 50.0);
}

}  // namespace
}  // namespace adamove::common
