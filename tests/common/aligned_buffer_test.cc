// Contract tests for the kernel-layer scratch arena (DESIGN.md §13):
// 64-byte-aligned head, offset-stable appends across growth, allocation
// reuse via Clear(). Runs under the `nn` label so the UBSan stage of
// scripts/check.sh covers the aligned operator-new path too.

#include "common/aligned_buffer.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace adamove::common {
namespace {

TEST(AlignedBufferTest, DataIsCacheLineAlignedAtEverySize) {
  for (size_t n : {1u, 7u, 64u, 65u, 1000u}) {
    AlignedBuffer<float> buf(n);
    EXPECT_EQ(n, buf.size());
    EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(buf.data()) %
                      AlignedBuffer<float>::kAlignment);
  }
}

TEST(AlignedBufferTest, DefaultConstructedIsEmpty) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(0u, buf.size());
}

TEST(AlignedBufferTest, ResizePreservesExistingContents) {
  AlignedBuffer<int32_t> buf(8);
  for (size_t i = 0; i < 8; ++i) buf[i] = static_cast<int32_t>(i);
  buf.Resize(4096);  // forces reallocation
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<int32_t>(i), buf[i]);
  }
  EXPECT_EQ(0u, reinterpret_cast<uintptr_t>(buf.data()) %
                    AlignedBuffer<int32_t>::kAlignment);
}

TEST(AlignedBufferTest, AppendReturnsStableOffsetsAcrossGrowth) {
  // The arena-handle idiom of the batched PTTA rebuild: record offsets at
  // Append time, read them back after arbitrary later growth.
  AlignedBuffer<float> arena;
  std::vector<size_t> offsets;
  std::vector<std::vector<float>> chunks;
  for (int c = 0; c < 50; ++c) {
    std::vector<float> chunk(static_cast<size_t>(c % 17 + 1),
                             static_cast<float>(c));
    offsets.push_back(arena.Append(chunk.data(), chunk.size()));
    chunks.push_back(std::move(chunk));
  }
  for (size_t c = 0; c < chunks.size(); ++c) {
    const float* at = arena.data() + offsets[c];
    for (size_t i = 0; i < chunks[c].size(); ++i) {
      EXPECT_EQ(chunks[c][i], at[i]) << "chunk " << c << " elem " << i;
    }
  }
}

TEST(AlignedBufferTest, ClearKeepsAllocationForReuse) {
  AlignedBuffer<float> arena;
  arena.Append(std::vector<float>(100, 1.0f).data(), 100);
  const float* before = arena.data();
  arena.Clear();
  EXPECT_TRUE(arena.empty());
  // Re-filling within the old capacity must not reallocate (per-batch
  // arena reuse is the point of Clear over a fresh buffer).
  arena.Append(std::vector<float>(100, 2.0f).data(), 100);
  EXPECT_EQ(before, arena.data());
  EXPECT_EQ(2.0f, arena[99]);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<float> a(16);
  for (size_t i = 0; i < 16; ++i) a[i] = static_cast<float>(i);
  const float* p = a.data();
  AlignedBuffer<float> b(std::move(a));
  EXPECT_EQ(p, b.data());
  EXPECT_EQ(16u, b.size());
  EXPECT_EQ(0u, a.size());  // NOLINT(bugprone-use-after-move): pinned state
  EXPECT_EQ(nullptr, a.data());
  AlignedBuffer<float> c;
  c = std::move(b);
  EXPECT_EQ(p, c.data());
  EXPECT_EQ(15.0f, c[15]);
}

TEST(AlignedBufferTest, AppendEmptyChunkIsValidOffset) {
  AlignedBuffer<float> arena;
  const float x = 7.0f;
  EXPECT_EQ(0u, arena.Append(&x, 1));
  // A keep==0 rebuild job appends nothing but still needs a well-defined
  // arena offset.
  EXPECT_EQ(1u, arena.Append(nullptr, 0));
  EXPECT_EQ(1u, arena.size());
}

}  // namespace
}  // namespace adamove::common
