// Positive control: the same shapes as the negative cases, correctly
// locked. Must COMPILE under -Werror=thread-safety, proving the negative
// cases fail because of the analysis and not a broken include path or
// compiler setup.
#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Increment() ADAMOVE_EXCLUDES(mu_) {
    adamove::common::MutexLock lock(mu_);
    IncrementLocked();
  }

 private:
  void IncrementLocked() ADAMOVE_REQUIRES(mu_) { ++value_; }

  adamove::common::Mutex mu_;
  int value_ ADAMOVE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
