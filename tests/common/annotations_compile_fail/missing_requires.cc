// Negative-compile case: calls an ADAMOVE_REQUIRES(mu_) helper without
// holding the lock. Valid C++ — must be rejected by -Werror=thread-safety.
#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Store {
 public:
  // BUG under analysis: CompactLocked requires mu_, which is not held.
  void Rebalance() { CompactLocked(); }

 private:
  void CompactLocked() ADAMOVE_REQUIRES(mu_) { ++epoch_; }

  adamove::common::Mutex mu_;
  int epoch_ ADAMOVE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.Rebalance();
  return 0;
}
