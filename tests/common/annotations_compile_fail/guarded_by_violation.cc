// Negative-compile case: writes an ADAMOVE_GUARDED_BY field without holding
// its mutex. Valid C++ — the build must be failed by the thread-safety
// analysis (-Werror=thread-safety), not by the language.
#include "common/annotations.h"
#include "common/mutex.h"

namespace {

class Counter {
 public:
  // BUG under analysis: touches value_ with mu_ not held.
  void Increment() { ++value_; }

 private:
  adamove::common::Mutex mu_;
  int value_ ADAMOVE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}
