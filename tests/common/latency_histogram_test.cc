#include "common/latency_histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace adamove::common {
namespace {

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Everything at or below the minimum value lands in bucket 0.
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.5), 0);
  EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::kMinValueUs), 0);
  // The geometric midpoint of every bucket maps back to that bucket, and
  // bucket bounds bracket it.
  for (int k = 0; k < LatencyHistogram::kNumBuckets; k += 17) {
    const double lo = LatencyHistogram::BucketLowerUs(k);
    const double hi = LatencyHistogram::BucketUpperUs(k);
    const double mid = std::sqrt(lo * hi);
    EXPECT_EQ(LatencyHistogram::BucketIndex(mid), k) << "bucket " << k;
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
  }
  // Indices are monotone in the value.
  double prev = -1;
  for (double v = 1.0; v < 1e9; v *= 3.7) {
    const int idx = LatencyHistogram::BucketIndex(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  // Values beyond the top bucket clamp instead of overflowing.
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e300),
            LatencyHistogram::kNumBuckets - 1);
}

TEST(LatencyHistogramTest, QuantilesWithinBucketResolution) {
  LatencyHistogram h;
  EXPECT_EQ(h.QuantileUs(0.5), 0.0);  // empty
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(static_cast<double>(i));
  for (double v : values) h.Record(v);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_DOUBLE_EQ(h.MaxUs(), 1000.0);
  EXPECT_NEAR(h.MeanUs(), 500.5, 1e-9);
  // Log-bucketing guarantees ~kGrowth relative accuracy per quantile.
  for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = q * 1000.0;
    const double estimate = h.QuantileUs(q);
    EXPECT_NEAR(estimate, exact, exact * (LatencyHistogram::kGrowth - 1.0))
        << "q=" << q;
  }
  // Quantiles never exceed the observed max (top-bucket interpolation is
  // clamped), and q=1 reports exactly the max's clamp.
  EXPECT_LE(h.QuantileUs(0.999), h.MaxUs());
  EXPECT_DOUBLE_EQ(h.QuantileUs(1.0), 1000.0);
}

TEST(LatencyHistogramTest, QuantileInterpolatesInsideBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(50.0);  // one hot bucket
  const int k = LatencyHistogram::BucketIndex(50.0);
  const double lo = LatencyHistogram::BucketLowerUs(k);
  const double hi = LatencyHistogram::BucketUpperUs(k);
  const double q25 = h.QuantileUs(0.25);
  const double q75 = h.QuantileUs(0.75);
  // Interpolation positions ranks proportionally inside the bucket.
  EXPECT_GE(q25, lo);
  EXPECT_LE(q75, hi);
  EXPECT_LT(q25, q75);
}

TEST(LatencyHistogramTest, MergeMatchesRecordingEverythingInOne) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 500; ++i) {
    a.Record(static_cast<double>(i));
    combined.Record(static_cast<double>(i));
  }
  for (int i = 2000; i <= 2500; ++i) {
    b.Record(static_cast<double>(i));
    combined.Record(static_cast<double>(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_DOUBLE_EQ(a.SumUs(), combined.SumUs());
  EXPECT_DOUBLE_EQ(a.MaxUs(), combined.MaxUs());
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(a.QuantileUs(q), combined.QuantileUs(q)) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(10.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.QuantileUs(0.5), 0.0);
  EXPECT_EQ(h.MaxUs(), 0.0);
}

}  // namespace
}  // namespace adamove::common
