// The allocation-counting probe that pins the zero-allocation inference
// contract (DESIGN.md §14). Under sanitizer builds the interposed operator
// new/delete are compiled out and AllocProbeAvailable() is false — every
// assertion here degrades to "the code still runs", so the suite is safe
// under the ASan/TSan stages of scripts/check.sh too.

#include "common/alloc_probe.h"

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace adamove::common {
namespace {

TEST(AllocProbeTest, CountsOperatorNewAndDelete) {
  if (!AllocProbeAvailable()) GTEST_SKIP() << "probe disabled (sanitizer)";
  AllocProbeScope window;
  // Direct calls: a new-expression/delete pair may legally be elided by the
  // optimizer, but calls to the replaceable functions themselves may not.
  void* p = ::operator new(16);
  ::operator delete(p);
  EXPECT_GE(window.allocations(), 1u);
  EXPECT_GE(window.frees(), 1u);
}

TEST(AllocProbeTest, CountsContainerGrowthAndAlignedStorage) {
  if (!AllocProbeAvailable()) GTEST_SKIP() << "probe disabled (sanitizer)";
  {
    AllocProbeScope window;
    std::vector<double> v;
    v.reserve(64);
    EXPECT_GE(window.allocations(), 1u);
  }
  {
    // Over-aligned new routes through the align_val_t flavours — the path
    // AlignedBuffer's 64-byte arenas use.
    struct alignas(64) Wide {
      double d[8];
    };
    AllocProbeScope window;
    auto w = std::make_unique<Wide>();
    EXPECT_GE(window.allocations(), 1u);
    w.reset();
    EXPECT_GE(window.frees(), 1u);
  }
}

TEST(AllocProbeTest, ScopeSeesOnlyItsOwnThread) {
  if (!AllocProbeAvailable()) GTEST_SKIP() << "probe disabled (sanitizer)";
  AllocProbeScope window;
  std::thread other([] {
    std::vector<int> v(1024, 1);
    EXPECT_GT(v[0], 0);
  });
  other.join();
  // The other thread's vector (and any thread-internal allocations) must
  // not leak into this thread's window; joining allocates nothing here.
  const uint64_t after_join = window.allocations();
  std::vector<int> mine(16, 2);
  EXPECT_GT(window.allocations(), after_join);
}

TEST(AllocProbeTest, ZeroWindowOverAllocationFreeCode) {
  if (!AllocProbeAvailable()) GTEST_SKIP() << "probe disabled (sanitizer)";
  std::vector<float> v(256, 1.0f);
  AllocProbeScope window;
  float acc = 0.0f;
  for (float x : v) acc += x;
  v[0] = acc;  // keep the loop observable
  EXPECT_EQ(window.allocations(), 0u);
  EXPECT_EQ(window.frees(), 0u);
}

TEST(AllocProbeTest, AssertNoAllocationsMacroRunsTheScope) {
  // Valid on every build: when the probe is unavailable the macro still
  // executes its scope, just without the check.
  int side_effect = 0;
  ASSERT_NO_ALLOCATIONS({ side_effect = 42; });
  EXPECT_EQ(side_effect, 42);
}

}  // namespace
}  // namespace adamove::common
