#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace adamove::common {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.Submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
  }
}

TEST(ThreadPoolTest, ReturnsTaskValuesThroughFutures) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ForwardsArgumentsToTask) {
  ThreadPool pool(1);
  auto future = pool.Submit([](int a, int b) { return a + b; }, 40, 2);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptionsViaFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 7; });
  auto bad = pool.Submit([]() -> int {
    throw std::runtime_error("task failure");
  });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);  // single worker: tasks queue up behind each other
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins only after the queue is empty
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace adamove::common
