#include "common/durable_io.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/fault_injection.h"

namespace adamove::common {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class DurableIoTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }

  static void ArmAlways(const char* point) {
    FaultSpec spec;
    spec.probability = 1.0;
    FaultRegistry::Instance().Arm(point, spec);
  }
};

TEST_F(DurableIoTest, Crc32cMatchesKnownVectors) {
  // RFC 3720 test vectors for CRC-32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
}

TEST_F(DurableIoTest, Crc32cExtendIsIncremental) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Same bytes fed at arbitrary split points must agree with one pass.
  for (size_t cut : {size_t{1}, size_t{7}, data.size() - 1}) {
    uint32_t crc = ExtendCrc32c(0, data.data(), cut);
    crc = ExtendCrc32c(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "cut " << cut;
    EXPECT_NE(Crc32c(data.data(), cut), whole) << "cut " << cut;
  }
}

TEST_F(DurableIoTest, MaskUnmaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);  // stored form differs from raw CRC
  }
}

TEST_F(DurableIoTest, WireRoundTripAndBoundsChecks) {
  std::string bytes;
  AppendU32(&bytes, 0xDEADBEEFu);
  AppendU64(&bytes, 0x0123456789ABCDEFull);
  const float floats[3] = {1.5f, -2.25f, 0.0f};
  AppendF32Array(&bytes, floats, 3);

  WireReader reader(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::vector<float> back;
  ASSERT_TRUE(reader.ReadU32(&u32));
  ASSERT_TRUE(reader.ReadU64(&u64));
  ASSERT_TRUE(reader.ReadF32Array(3, &back));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(back, std::vector<float>({1.5f, -2.25f, 0.0f}));
  EXPECT_TRUE(reader.AtEnd());

  // Past the end: every Read* refuses and consumes nothing.
  EXPECT_FALSE(reader.ReadU32(&u32));
  WireReader short_reader(std::string_view(bytes).substr(0, 3));
  EXPECT_FALSE(short_reader.ReadU32(&u32));
  EXPECT_EQ(short_reader.position(), 0u);
  // Hostile count: the check precedes the allocation.
  WireReader hostile(bytes);
  std::vector<float> sink;
  EXPECT_FALSE(hostile.ReadF32Array(1u << 29, &sink));
}

TEST_F(DurableIoTest, WriteFileAtomicRoundTripsAndLeavesNoTemp) {
  const std::string path = TempPath("adamove_durable_atomic.bin");
  const std::string payload = "hello\0durable world";
  ASSERT_TRUE(WriteFileAtomic(path, payload));
  std::string back;
  ASSERT_TRUE(ReadFileAll(path, &back));
  EXPECT_EQ(back, payload);
  EXPECT_FALSE(std::filesystem::exists(TempPathFor(path)));
  std::remove(path.c_str());
}

TEST_F(DurableIoTest, ReadFileAllFailsOnMissingFile) {
  std::string out;
  IoResult r = ReadFileAll(TempPath("adamove_durable_nonexistent.bin"), &out);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("adamove_durable_nonexistent"), std::string::npos);
}

TEST_F(DurableIoTest, FramedRoundTrip) {
  constexpr uint32_t kMagic = 0xABCD1234;
  FramedFileWriter writer(kMagic);
  writer.AddFrame("first");
  writer.AddFrame("");  // empty frames are legal
  writer.AddFrame(std::string(1000, 'x'));
  EXPECT_EQ(writer.frame_count(), 3u);
  const std::string path = TempPath("adamove_durable_framed.bin");
  ASSERT_TRUE(writer.Commit(path));
  EXPECT_EQ(std::filesystem::file_size(path), writer.byte_size());

  FramedRead back;
  ASSERT_TRUE(ReadFramedFile(path, kMagic, &back));
  EXPECT_FALSE(back.torn_tail);
  ASSERT_EQ(back.frames.size(), 3u);
  EXPECT_EQ(back.frames[0], "first");
  EXPECT_EQ(back.frames[1], "");
  EXPECT_EQ(back.frames[2], std::string(1000, 'x'));
  std::remove(path.c_str());
}

TEST_F(DurableIoTest, FramedRejectsWrongMagic) {
  FramedFileWriter writer(0x11111111);
  writer.AddFrame("payload");
  const std::string path = TempPath("adamove_durable_magic.bin");
  ASSERT_TRUE(writer.Commit(path));
  FramedRead back;
  IoResult r = ReadFramedFile(path, 0x22222222, &back);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(DurableIoTest, TornTailYieldsVerifiedPrefix) {
  constexpr uint32_t kMagic = 0xABCD1234;
  FramedFileWriter writer(kMagic);
  writer.AddFrame("frame zero");
  writer.AddFrame("frame one");
  const std::string path = TempPath("adamove_durable_torn.bin");
  ASSERT_TRUE(writer.Commit(path));
  std::string bytes;
  ASSERT_TRUE(ReadFileAll(path, &bytes));
  std::remove(path.c_str());

  // Every proper prefix must parse as ok — never an error, never a frame
  // that wasn't fully written. This is exactly the state space a crash
  // between write() and fsync() can leave behind. Cuts landing precisely on
  // a frame boundary look like a clean (shorter) file; all others are a
  // detected torn tail.
  const size_t frame0_end = 4 + 8 + std::string("frame zero").size();
  for (size_t cut = 4; cut < bytes.size(); ++cut) {
    FramedRead partial;
    IoResult r = ParseFramedBytes(
        std::string_view(bytes).substr(0, cut), kMagic, &partial);
    ASSERT_TRUE(r) << "cut " << cut << ": " << r.error;
    const bool on_boundary = cut == 4 || cut == frame0_end;
    EXPECT_EQ(partial.torn_tail, !on_boundary) << "cut " << cut;
    // The verified prefix only ever holds complete, intact frames.
    EXPECT_EQ(partial.frames.size(), cut >= frame0_end ? 1u : 0u)
        << "cut " << cut;
    if (!partial.frames.empty()) {
      EXPECT_EQ(partial.frames[0], "frame zero");
    }
  }
}

TEST_F(DurableIoTest, CrcMismatchNamesFrameAndKeepsPrefix) {
  constexpr uint32_t kMagic = 0xABCD1234;
  FramedFileWriter writer(kMagic);
  writer.AddFrame("frame zero");
  writer.AddFrame("frame one");
  const std::string path = TempPath("adamove_durable_flip.bin");
  ASSERT_TRUE(writer.Commit(path));
  std::string bytes;
  ASSERT_TRUE(ReadFileAll(path, &bytes));
  std::remove(path.c_str());

  // Flip one payload bit in the second frame: magic(4) + frame0 header(8) +
  // payload(10) + frame1 header(8) puts frame 1's payload at offset 30.
  bytes[30] = static_cast<char>(bytes[30] ^ 0x01);
  FramedRead damaged;
  IoResult r = ParseFramedBytes(bytes, kMagic, &damaged);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("crc32c"), std::string::npos);
  EXPECT_NE(r.error.find("frame 1"), std::string::npos);
  // The intact frame before the damage is still delivered for salvage.
  ASSERT_EQ(damaged.frames.size(), 1u);
  EXPECT_EQ(damaged.frames[0], "frame zero");
}

TEST_F(DurableIoTest, OversizedLengthFieldIsRejectedNotAllocated) {
  std::string bytes;
  AppendU32(&bytes, 0xABCD1234u);   // magic
  AppendU32(&bytes, 0x7FFFFFFFu);   // hostile 2 GiB length
  AppendU32(&bytes, 0u);            // bogus crc
  FramedRead out;
  IoResult r = ParseFramedBytes(bytes, 0xABCD1234u, &out);
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("frame cap"), std::string::npos);
}

TEST_F(DurableIoTest, WriteFaultLeavesPreviousFileIntact) {
  const std::string path = TempPath("adamove_durable_wfault.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "generation one"));

  for (const char* point : {"io.snapshot_write", "io.snapshot_fsync"}) {
    ArmAlways(point);
    IoResult r = WriteFileAtomic(path, "generation two");
    FaultRegistry::Instance().DisarmAll();
    EXPECT_FALSE(r) << point;
    EXPECT_NE(r.error.find(".tmp"), std::string::npos) << r.error;
    // The previous durable generation survives the failed commit, and the
    // aborted temp file is cleaned up.
    std::string back;
    ASSERT_TRUE(ReadFileAll(path, &back)) << point;
    EXPECT_EQ(back, "generation one") << point;
    EXPECT_FALSE(std::filesystem::exists(TempPathFor(path))) << point;
  }
  std::remove(path.c_str());
}

TEST_F(DurableIoTest, ReadFaultFailsCleanly) {
  const std::string path = TempPath("adamove_durable_rfault.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "payload"));
  ArmAlways("io.snapshot_read");
  std::string out;
  IoResult r = ReadFileAll(path, &out);
  FaultRegistry::Instance().DisarmAll();
  EXPECT_FALSE(r);
  EXPECT_NE(r.error.find("io.snapshot_read"), std::string::npos);
  // Undamaged on disk: the fault models a transient read failure.
  ASSERT_TRUE(ReadFileAll(path, &out));
  EXPECT_EQ(out, "payload");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adamove::common
