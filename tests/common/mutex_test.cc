#include "common/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace adamove::common {
namespace {

/// Exercises the full annotation vocabulary the repo's locked subsystems
/// use: a guarded field, a REQUIRES helper, and EXCLUDES entry points.
/// Under ADAMOVE_ANALYZE=ON this class also serves as a compile-time
/// positive control inside the test tree.
class AnnotatedCounter {
 public:
  void Add(int delta) ADAMOVE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AddLocked(delta);
  }

  int Get() const ADAMOVE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

  /// Deliberately violates Add's EXCLUDES contract by calling it with mu_
  /// already held. Hidden from the static analysis (which would reject it
  /// at compile time — tests/common/annotations_compile_fail/ proves that)
  /// so the test can pin the *dynamic* backstop: Mutex::Lock aborts on
  /// re-entry instead of deadlocking.
  void AddReentrant() ADAMOVE_NO_THREAD_SAFETY_ANALYSIS {
    MutexLock lock(mu_);
    Add(1);
  }

 private:
  void AddLocked(int delta) ADAMOVE_REQUIRES(mu_) { value_ += delta; }

  mutable Mutex mu_;
  int value_ ADAMOVE_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, ContendedIncrementsAreSerialized) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  AnnotatedCounter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Get(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfterRelease) {
  Mutex mu;
  mu.Lock();
  // From another thread: the lock is held, TryLock must fail fast.
  std::thread contender([&mu] {
    const bool locked = mu.TryLock();
    EXPECT_FALSE(locked);
    if (locked) mu.Unlock();
  });
  contender.join();
  mu.Unlock();
  std::thread acquirer([&mu] {
    const bool locked = mu.TryLock();
    EXPECT_TRUE(locked);
    if (locked) mu.Unlock();
  });
  acquirer.join();
}

TEST(CondVarTest, PredicateWaitSeesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // test-local; guarded by mu by convention
  int payload = 0;
  std::thread producer([&] {
    {
      MutexLock lock(mu);
      payload = 42;
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] { return ready; });
    EXPECT_EQ(payload, 42);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      cv.Wait(mu, [&] { return go; });
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, WaitUntilTimesOutWithoutNotification) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
  // The mutex is re-acquired after the timeout: guarded state is usable.
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

/// The code under EXPECT_DEATH would be a compile error under the static
/// analysis; these helpers carry ADAMOVE_NO_THREAD_SAFETY_ANALYSIS so the
/// *runtime* re-entry backstop is what the child process exercises.
void DoubleLockSameThread(Mutex& mu) ADAMOVE_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock first(mu);
  MutexLock second(mu);  // same thread, same mutex: must abort, not hang
}

TEST(MutexDeathTest, ReentrantMutexLockAborts) {
  Mutex mu;
  EXPECT_DEATH(DoubleLockSameThread(mu), "re-entrant locking");
}

TEST(MutexDeathTest, ExcludesViolationAbortsAtReentry) {
  AnnotatedCounter counter;
  EXPECT_DEATH(counter.AddReentrant(), "re-entrant locking");
}

}  // namespace
}  // namespace adamove::common
