#ifndef ADAMOVE_DATA_POINT_H_
#define ADAMOVE_DATA_POINT_H_

#include <cstdint>
#include <vector>

namespace adamove::data {

/// A spatio-temporal check-in point (Definition 1 plus the user id that all
/// models embed): user `user` visited location `location` at unix time
/// `timestamp` (seconds).
struct Point {
  int64_t user = 0;
  int64_t location = 0;
  int64_t timestamp = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.user == b.user && a.location == b.location &&
           a.timestamp == b.timestamp;
  }
};

/// A user's chronologically ordered check-in sequence (Definition 2).
struct Trajectory {
  int64_t user = 0;
  std::vector<Point> points;
};

/// A session: the sub-trajectory inside one time window of T hours
/// (the paper uses T = 72 h).
using Session = std::vector<Point>;

constexpr int kSecondsPerHour = 3600;
constexpr int kSecondsPerDay = 24 * kSecondsPerHour;

/// Encodes a timestamp into the paper's 48 discrete time slots:
/// [0,23] hour-of-day on workdays, [24,47] hour-of-day on weekends.
/// The unix epoch (1970-01-01) was a Thursday.
inline int TimeSlotOf(int64_t timestamp) {
  const int64_t days = timestamp / kSecondsPerDay;
  const int hour = static_cast<int>((timestamp / kSecondsPerHour) % 24);
  const int day_of_week = static_cast<int>((days + 4) % 7);  // 0 = Sunday
  const bool weekend = (day_of_week == 0 || day_of_week == 6);
  return weekend ? 24 + hour : hour;
}

constexpr int kNumTimeSlots = 48;

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_POINT_H_
