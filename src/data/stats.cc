#include "data/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "data/point.h"

namespace adamove::data {

namespace {

// Cosine similarity between sparse distributions.
double SparseCosine(const std::unordered_map<int64_t, double>& a,
                    const std::unordered_map<int64_t, double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [k, v] : a) {
    na += v * v;
    auto it = b.find(k);
    if (it != b.end()) dot += v * it->second;
  }
  for (const auto& [k, v] : b) nb += v * v;
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

// Per-user visit distribution within [t0, t1), then averaged over users.
std::unordered_map<int64_t, double> AverageVisitDistribution(
    const PreprocessedData& data, int64_t t0, int64_t t1) {
  std::unordered_map<int64_t, double> avg;
  int users_with_data = 0;
  for (const auto& user : data.users) {
    std::unordered_map<int64_t, double> dist;
    double total = 0.0;
    for (const auto& session : user.sessions) {
      for (const auto& p : session) {
        if (p.timestamp >= t0 && p.timestamp < t1) {
          dist[p.location] += 1.0;
          total += 1.0;
        }
      }
    }
    if (total <= 0.0) continue;
    ++users_with_data;
    for (auto& [loc, cnt] : dist) cnt /= total;
    for (const auto& [loc, prob] : dist) avg[loc] += prob;
  }
  if (users_with_data > 0) {
    for (auto& [loc, prob] : avg) prob /= users_with_data;
  }
  return avg;
}

std::pair<int64_t, int64_t> TimeRange(const PreprocessedData& data) {
  int64_t tmin = std::numeric_limits<int64_t>::max();
  int64_t tmax = std::numeric_limits<int64_t>::min();
  for (const auto& user : data.users) {
    for (const auto& session : user.sessions) {
      for (const auto& p : session) {
        tmin = std::min(tmin, p.timestamp);
        tmax = std::max(tmax, p.timestamp);
      }
    }
  }
  if (tmin > tmax) return {0, 0};
  return {tmin, tmax};
}

}  // namespace

DatasetStats ComputeStats(const PreprocessedData& data) {
  DatasetStats stats;
  stats.num_users = data.num_users;
  stats.num_locations = data.num_locations;
  for (const auto& user : data.users) {
    stats.num_sessions += static_cast<int64_t>(user.sessions.size());
    for (const auto& session : user.sessions) {
      stats.num_points += static_cast<int64_t>(session.size());
    }
  }
  auto [tmin, tmax] = TimeRange(data);
  stats.time_span_days = (tmax - tmin) / kSecondsPerDay;
  if (stats.num_sessions > 0) {
    stats.avg_session_length =
        static_cast<double>(stats.num_points) /
        static_cast<double>(stats.num_sessions);
  }
  if (stats.num_users > 0) {
    stats.avg_sessions_per_user =
        static_cast<double>(stats.num_sessions) /
        static_cast<double>(stats.num_users);
  }
  return stats;
}

std::vector<double> MobilitySimilaritySeries(const PreprocessedData& data,
                                             int history_days,
                                             int window_days) {
  std::vector<double> series;
  auto [tmin, tmax] = TimeRange(data);
  if (tmax <= tmin) return series;
  const int64_t hist_end =
      tmin + static_cast<int64_t>(history_days) * kSecondsPerDay;
  auto hist = AverageVisitDistribution(data, tmin, hist_end);
  if (hist.empty()) return series;
  const int64_t window = static_cast<int64_t>(window_days) * kSecondsPerDay;
  for (int64_t t0 = hist_end; t0 + window <= tmax + 1; t0 += window) {
    auto w = AverageVisitDistribution(data, t0, t0 + window);
    series.push_back(w.empty() ? -1.0 : SparseCosine(hist, w));
  }
  return series;
}

VisitHeatmap ComputeVisitHeatmap(const PreprocessedData& data, int64_t user,
                                 int window_days) {
  VisitHeatmap heatmap;
  ADAMOVE_CHECK_GE(user, 0);
  ADAMOVE_CHECK_LT(user, static_cast<int64_t>(data.users.size()));
  const auto& sessions = data.users[static_cast<size_t>(user)].sessions;
  int64_t tmin = std::numeric_limits<int64_t>::max();
  int64_t tmax = std::numeric_limits<int64_t>::min();
  for (const auto& session : sessions) {
    for (const auto& p : session) {
      tmin = std::min(tmin, p.timestamp);
      tmax = std::max(tmax, p.timestamp);
    }
  }
  if (tmin > tmax) return heatmap;
  const int64_t window = static_cast<int64_t>(window_days) * kSecondsPerDay;
  const int num_windows =
      static_cast<int>((tmax - tmin) / window) + 1;
  std::map<int64_t, std::vector<int>> counts;  // ordered rows
  for (const auto& session : sessions) {
    for (const auto& p : session) {
      auto& row = counts[p.location];
      if (row.empty()) row.assign(static_cast<size_t>(num_windows), 0);
      const int w = static_cast<int>((p.timestamp - tmin) / window);
      ++row[static_cast<size_t>(w)];
    }
  }
  for (auto& [loc, row] : counts) {
    heatmap.locations.push_back(loc);
    heatmap.counts.push_back(std::move(row));
  }
  return heatmap;
}

}  // namespace adamove::data
