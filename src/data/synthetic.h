#ifndef ADAMOVE_DATA_SYNTHETIC_H_
#define ADAMOVE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/point.h"
#include "data/preprocess.h"

namespace adamove::data {

/// Configuration of the synthetic human-mobility simulator that substitutes
/// for the Foursquare (NYC/TKY) and LYMOB check-in datasets (see DESIGN.md
/// §2). Users follow weekly periodic routines over a personal set of anchor
/// locations (home/work/leisure) with Zipf-distributed exploration; at a
/// configurable point in time a fraction of users undergo a *regime shift*
/// (e.g. a job change) replacing part of their anchors — this produces the
/// temporal distribution shift the paper studies.
struct SyntheticConfig {
  int num_users = 120;
  int num_locations = 400;
  int num_days = 330;
  double checkins_per_day = 2.2;  // mean per user (Poisson)
  int anchors_per_user = 6;
  double zipf_exponent = 0.7;   // anchor/exploration popularity skew
  double explore_prob = 0.08;   // probability of a random (Zipf) check-in
  double shift_time_frac = 0.72;   // when in [0,1] of the span shifts occur
  double shift_user_frac = 0.6;    // fraction of users that shift
  double shift_anchor_frac = 0.6;  // fraction of non-home anchors replaced
  /// Gradual drift: per user per week, the probability of replacing one
  /// random non-home anchor with a fresh location. This produces the
  /// continuous decay of mobility similarity in Fig. 1(c) on top of the
  /// one-shot regime shift.
  double anchor_churn_per_week = 0.06;
  uint64_t seed = 42;
  int64_t start_timestamp = 1333238400;  // 2012-04-01 (as NYC/TKY)
};

/// Simulator output. Besides the raw check-in trajectories it exposes the
/// ground-truth regime-shift metadata used by the Fig. 10 case study.
struct SyntheticResult {
  std::vector<Trajectory> trajectories;
  int64_t shift_timestamp = 0;
  std::vector<int64_t> shifted_users;              // raw user ids
  std::vector<std::vector<int64_t>> anchors_before;  // [user][anchor] raw loc
  std::vector<std::vector<int64_t>> anchors_after;
};

/// Runs the simulator.
SyntheticResult GenerateSynthetic(const SyntheticConfig& config);

/// A named dataset preset: simulator config + the preprocessing /
/// evaluation hyper-parameters the paper uses for that dataset.
struct DatasetPreset {
  std::string name;
  SyntheticConfig synthetic;
  PreprocessConfig preprocess;
  int eval_context_sessions = 5;  // c in val/test (§IV-A: 5, 6, 5)
  double lambda = 0.8;            // LightMob trade-off λ (§IV-A)
};

/// Reduced-scale analogue of Foursquare New York (long span, large shift).
DatasetPreset NycLikePreset();
/// Reduced-scale analogue of Foursquare Tokyo (long span, strongest shift,
/// more users/locations).
DatasetPreset TkyLikePreset();
/// Reduced-scale analogue of LYMOB-CityD (75-day span, dense check-ins,
/// small shift).
DatasetPreset LymobLikePreset();

/// All three presets in the paper's order.
std::vector<DatasetPreset> AllPresets();

/// Multiplies user count (and proportionally locations) by `factor`,
/// keeping the rest of the dynamics; used by the bench scale knob.
void ScalePreset(DatasetPreset& preset, double factor);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_SYNTHETIC_H_
