#ifndef ADAMOVE_DATA_PREPROCESS_H_
#define ADAMOVE_DATA_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "data/point.h"

namespace adamove::data {

/// Pre-processing parameters from §IV-A of the paper. The paper's values are
/// the defaults; synthetic presets lower `min_users_per_location` because the
/// reduced-scale datasets have fewer users than Foursquare.
struct PreprocessConfig {
  /// Locations visited by fewer than this many distinct users are dropped.
  int min_users_per_location = 10;
  /// Session window T in hours.
  int session_window_hours = 72;
  /// Sessions with fewer points than this are dropped.
  int min_points_per_session = 5;
  /// Users with fewer sessions than this are dropped.
  int min_sessions_per_user = 5;
};

/// One user's data after preprocessing: sessions in chronological order,
/// with locations and user ids re-indexed to dense [0, n).
struct UserSessions {
  int64_t user = 0;  // dense re-indexed id
  std::vector<Session> sessions;
};

/// Output of the preprocessing pipeline.
struct PreprocessedData {
  std::vector<UserSessions> users;
  int64_t num_locations = 0;  // dense location vocabulary size
  int64_t num_users = 0;
  /// original location id for each dense id (for case studies / reporting)
  std::vector<int64_t> location_to_raw;
  std::vector<int64_t> user_to_raw;
};

/// Splits a chronologically ordered trajectory into sessions: a new session
/// starts when a point falls outside the `window_hours` window opened by the
/// current session's first point.
std::vector<Session> SegmentSessions(const Trajectory& trajectory,
                                     int window_hours);

/// Full pipeline of §IV-A: location filtering, session segmentation,
/// short-session and inactive-user removal, dense re-indexing.
PreprocessedData Preprocess(const std::vector<Trajectory>& raw,
                            const PreprocessConfig& config);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_PREPROCESS_H_
