#include "data/checkin_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace adamove::data {

bool SaveCheckinsCsv(const std::string& path,
                     const std::vector<Trajectory>& trajectories) {
  std::ofstream out(path);
  if (!out) return false;
  out << "user,location,timestamp\n";
  for (const auto& tr : trajectories) {
    for (const auto& p : tr.points) {
      out << tr.user << ',' << p.location << ',' << p.timestamp << '\n';
    }
  }
  return out.good();
}

namespace {

/// Parses one `user,location,timestamp` row; false on any malformed field.
bool ParseCheckinRow(const std::string& line, Point* p) {
  std::istringstream iss(line);
  std::string cell;
  char* end = nullptr;
  if (!std::getline(iss, cell, ',')) return false;
  p->user = std::strtoll(cell.c_str(), &end, 10);
  if (end == cell.c_str()) return false;
  if (!std::getline(iss, cell, ',')) return false;
  p->location = std::strtoll(cell.c_str(), &end, 10);
  if (end == cell.c_str()) return false;
  if (!std::getline(iss, cell, ',')) return false;
  p->timestamp = std::strtoll(cell.c_str(), &end, 10);
  if (end == cell.c_str()) return false;
  return true;
}

}  // namespace

bool LoadCheckinsCsv(const std::string& path,
                     std::vector<Trajectory>* trajectories,
                     size_t* rejected_lines) {
  if (rejected_lines != nullptr) *rejected_lines = 0;
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  std::map<int64_t, std::vector<Point>> by_user;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Point p;
    if (!ParseCheckinRow(line, &p)) {
      if (rejected_lines != nullptr) ++*rejected_lines;
      continue;
    }
    by_user[p.user].push_back(p);
  }
  trajectories->clear();
  for (auto& [user, points] : by_user) {
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) {
                return a.timestamp < b.timestamp;
              });
    Trajectory tr;
    tr.user = user;
    tr.points = std::move(points);
    trajectories->push_back(std::move(tr));
  }
  return true;
}

}  // namespace adamove::data
