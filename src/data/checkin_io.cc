#include "data/checkin_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>

namespace adamove::data {

bool SaveCheckinsCsv(const std::string& path,
                     const std::vector<Trajectory>& trajectories) {
  std::ofstream out(path);
  if (!out) return false;
  out << "user,location,timestamp\n";
  for (const auto& tr : trajectories) {
    for (const auto& p : tr.points) {
      out << tr.user << ',' << p.location << ',' << p.timestamp << '\n';
    }
  }
  return out.good();
}

namespace {

/// Parses one `user,location,timestamp` row; false on any malformed field.
/// Walks the row in place — no istringstream and no per-field substring
/// copies. strtoll cannot scan past a field's separator (',' is not a
/// digit), and comma positions are found on the std::string (so embedded
/// NUL bytes in a damaged row split fields exactly as the previous
/// getline-per-field parser did — the IO fuzz suite pins this).
bool ParseCheckinRow(const std::string& line, Point* p) {
  int64_t* const fields[3] = {&p->user, &p->location, &p->timestamp};
  size_t pos = 0;
  for (int i = 0; i < 3; ++i) {
    if (pos > line.size()) return false;
    const char* begin = line.c_str() + pos;
    char* end = nullptr;
    *fields[i] = std::strtoll(begin, &end, 10);
    if (end == begin) return false;
    if (i < 2) {
      const size_t comma = line.find(',', pos);
      if (comma == std::string::npos) return false;
      pos = comma + 1;
    }
  }
  return true;
}

}  // namespace

bool LoadCheckinsCsv(const std::string& path,
                     std::vector<Trajectory>* trajectories,
                     size_t* rejected_lines) {
  if (rejected_lines != nullptr) *rejected_lines = 0;
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;  // header
  std::map<int64_t, std::vector<Point>> by_user;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Point p;
    if (!ParseCheckinRow(line, &p)) {
      if (rejected_lines != nullptr) ++*rejected_lines;
      continue;
    }
    by_user[p.user].push_back(p);
  }
  trajectories->clear();
  for (auto& [user, points] : by_user) {
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) {
                return a.timestamp < b.timestamp;
              });
    Trajectory tr;
    tr.user = user;
    tr.points = std::move(points);
    trajectories->push_back(std::move(tr));
  }
  return true;
}

}  // namespace adamove::data
