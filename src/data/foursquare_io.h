#ifndef ADAMOVE_DATA_FOURSQUARE_IO_H_
#define ADAMOVE_DATA_FOURSQUARE_IO_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/point.h"

namespace adamove::data {

/// Loader for the Foursquare TSMC2014 check-in dumps (the NYC/TKY datasets
/// of the paper; dataset_TSMC2014_{NYC,TKY}.txt). Tab-separated columns:
///
///   user_id \t venue_id \t venue_category_id \t venue_category_name \t
///   latitude \t longitude \t timezone_offset_minutes \t UTC_time
///
/// where UTC_time looks like "Tue Apr 03 18:00:09 +0000 2012". Venue ids
/// (strings) are re-mapped to dense int64 location ids; the timezone offset
/// is applied so timestamps are in local time (the paper's time-slot coding
/// is local). Lines that fail to parse are skipped and counted.
struct FoursquareLoadResult {
  std::vector<Trajectory> trajectories;
  /// venue string id for each dense location id
  std::vector<std::string> location_to_venue;
  size_t skipped_lines = 0;
};

/// Loads a TSMC2014-format file; returns false only on IO failure (a file
/// that exists but has unparsable rows yields skipped_lines > 0 instead).
bool LoadFoursquareTsv(const std::string& path,
                       FoursquareLoadResult* result);

/// Parses the TSMC2014 UTC time format ("Tue Apr 03 18:00:09 +0000 2012")
/// into unix seconds; returns false on malformed input. Exposed for tests.
bool ParseFoursquareTime(const std::string& text, int64_t* unix_seconds);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_FOURSQUARE_IO_H_
