#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace adamove::data {

namespace {

// Anchor roles drive the weekly routine.
enum class Role : uint8_t { kHome, kWork, kLeisure };

// Hour-of-day activity profile (when people check in at all): morning,
// lunch, and evening peaks.
double HourActivity(int hour) {
  static constexpr double kProfile[24] = {
      0.2, 0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 1.0, 1.4, 1.2, 1.0, 1.3,
      1.5, 1.2, 1.0, 1.0, 1.1, 1.4, 1.8, 1.9, 1.6, 1.2, 0.8, 0.4};
  return kProfile[hour];
}

// Affinity of a role for (hour, weekend): encodes home-at-night,
// work-on-weekday-daytime, leisure-on-evenings/weekends.
double RoleAffinity(Role role, int hour, bool weekend) {
  switch (role) {
    case Role::kHome:
      if (hour <= 7 || hour >= 21) return 3.0;
      if (weekend && hour <= 10) return 2.0;
      return 0.4;
    case Role::kWork:
      if (!weekend && hour >= 9 && hour <= 18) return 3.5;
      if (!weekend) return 0.3;
      return 0.05;
    case Role::kLeisure:
      if (weekend && hour >= 10 && hour <= 22) return 2.5;
      if (!weekend && hour >= 18 && hour <= 22) return 2.0;
      return 0.3;
  }
  return 0.0;
}

// Canonical daily cycle home -> work -> leisure -> home gives check-in
// sequences strong first-order structure on top of the time-of-day
// periodicity; sequence models can exploit it, static counting cannot.
double TransitionBonus(Role prev, Role next) {
  auto idx = [](Role r) {
    switch (r) {
      case Role::kHome: return 0;
      case Role::kWork: return 1;
      case Role::kLeisure: return 2;
    }
    return 0;
  };
  const int d = (idx(next) - idx(prev) + 3) % 3;
  if (d == 1) return 6.0;  // the canonical next stage
  if (d == 0) return 1.0;  // staying put
  return 0.3;              // going backwards is rare
}

struct UserState {
  std::vector<int64_t> anchors;        // location ids
  std::vector<Role> roles;             // role per anchor
  std::vector<double> weights;         // per-anchor base preference
  int last_anchor = -1;                // index into anchors, -1 = none
  int last_leisure = -1;               // last visited leisure anchor index
  // Weekly habit: the last anchor is a "special" venue visited (almost)
  // only on one fixed weekday. A 72 h recent window usually misses the
  // previous visit, so predicting it requires long-term (historical)
  // knowledge — the signal DeepMove's attention and LightMob's contrastive
  // distillation exploit.
  int special_weekday = 0;
};

std::vector<double> ZipfWeights(int n, double exponent) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    w[static_cast<size_t>(i)] = 1.0 / std::pow(i + 1.0, exponent);
  }
  return w;
}

// Samples `count` distinct locations from the Zipf weights, excluding any
// in `exclude`.
std::vector<int64_t> SampleAnchors(int count,
                                   const std::vector<double>& zipf,
                                   const std::unordered_set<int64_t>& exclude,
                                   common::Rng& rng) {
  std::vector<int64_t> anchors;
  std::unordered_set<int64_t> chosen;
  int guard = 0;
  while (static_cast<int>(anchors.size()) < count && guard < 100000) {
    ++guard;
    const int64_t loc = static_cast<int64_t>(rng.Categorical(zipf));
    if (exclude.count(loc) > 0 || chosen.count(loc) > 0) continue;
    chosen.insert(loc);
    anchors.push_back(loc);
  }
  ADAMOVE_CHECK_EQ(static_cast<int>(anchors.size()), count);
  return anchors;
}

void AssignRolesAndWeights(UserState& user, common::Rng& rng) {
  const size_t n = user.anchors.size();
  user.roles.assign(n, Role::kLeisure);
  user.roles[0] = Role::kHome;
  if (n > 1) user.roles[1] = Role::kWork;
  user.weights.resize(n);
  for (size_t i = 0; i < n; ++i) {
    user.weights[i] = 0.5 + rng.Uniform(0.0, 1.0);
  }
  // Restricted to weekend days: the paper's 48-slot time coding only
  // distinguishes weekend from workday hours, so a weekend habit is
  // visible to the models (a "every Tuesday" habit would not be).
  user.special_weekday = rng.Bernoulli(0.5) ? 6 : 0;  // Sat or Sun
}

// The special (last) anchor fires strongly on its weekday's daytime and is
// effectively closed otherwise.
double SpecialAnchorWeight(const UserState& user, int day_of_week,
                           int hour) {
  if (day_of_week == user.special_weekday && hour >= 10 && hour <= 20) {
    return 10.0;
  }
  return 0.02;
}

}  // namespace

SyntheticResult GenerateSynthetic(const SyntheticConfig& config) {
  ADAMOVE_CHECK_GT(config.num_users, 0);
  ADAMOVE_CHECK_GT(config.num_locations, config.anchors_per_user);
  common::Rng rng(config.seed);
  const std::vector<double> zipf =
      ZipfWeights(config.num_locations, config.zipf_exponent);

  SyntheticResult result;
  result.shift_timestamp =
      config.start_timestamp +
      static_cast<int64_t>(config.shift_time_frac * config.num_days) *
          kSecondsPerDay;

  // Initialize users.
  std::vector<UserState> users(static_cast<size_t>(config.num_users));
  result.anchors_before.resize(users.size());
  result.anchors_after.resize(users.size());
  for (size_t u = 0; u < users.size(); ++u) {
    users[u].anchors =
        SampleAnchors(config.anchors_per_user, zipf, {}, rng);
    AssignRolesAndWeights(users[u], rng);
    result.anchors_before[u] = users[u].anchors;
  }
  // Decide who shifts.
  std::vector<bool> shifts(users.size(), false);
  for (size_t u = 0; u < users.size(); ++u) {
    if (rng.Bernoulli(config.shift_user_frac)) {
      shifts[u] = true;
      result.shifted_users.push_back(static_cast<int64_t>(u));
    }
  }

  std::poisson_distribution<int> poisson(config.checkins_per_day);

  result.trajectories.resize(users.size());
  for (size_t u = 0; u < users.size(); ++u) {
    result.trajectories[u].user = static_cast<int64_t>(u);
  }

  bool shift_applied = false;
  for (int day = 0; day < config.num_days; ++day) {
    const int64_t day_start =
        config.start_timestamp + static_cast<int64_t>(day) * kSecondsPerDay;
    // Apply the regime shift once the shift day is reached.
    if (!shift_applied && day_start >= result.shift_timestamp) {
      shift_applied = true;
      for (size_t u = 0; u < users.size(); ++u) {
        if (!shifts[u]) {
          result.anchors_after[u] = users[u].anchors;
          continue;
        }
        UserState& user = users[u];
        // Keep home (anchor 0); replace a fraction of the others with fresh
        // locations — the "job change" of Fig. 1(a).
        const int replace = std::max(
            1, static_cast<int>(std::ceil(
                   config.shift_anchor_frac *
                   static_cast<double>(user.anchors.size() - 1))));
        std::unordered_set<int64_t> exclude(user.anchors.begin(),
                                            user.anchors.end());
        std::vector<int64_t> fresh =
            SampleAnchors(replace, zipf, exclude, rng);
        // Replace the last `replace` anchors (work first when replace
        // covers it, matching a job change that also changes hangouts).
        for (int r = 0; r < replace; ++r) {
          const size_t slot = user.anchors.size() - 1 - static_cast<size_t>(r);
          user.anchors[slot] = fresh[static_cast<size_t>(r)];
        }
        // A job change always moves the workplace.
        if (user.anchors.size() > 1) {
          std::unordered_set<int64_t> exclude2(user.anchors.begin(),
                                               user.anchors.end());
          user.anchors[1] = SampleAnchors(1, zipf, exclude2, rng)[0];
        }
        for (auto& w : user.weights) w = 0.5 + rng.Uniform(0.0, 1.0);
        user.last_anchor = -1;
        user.last_leisure = -1;
        result.anchors_after[u] = user.anchors;
      }
    }

    const int64_t days_since_epoch = day_start / kSecondsPerDay;
    const int day_of_week = static_cast<int>((days_since_epoch + 4) % 7);
    const bool weekend = (day_of_week == 0 || day_of_week == 6);

    // Gradual anchor churn: once a week each user may swap one non-home
    // anchor for a fresh location (habits drift continuously).
    if (day % 7 == 0 && config.anchor_churn_per_week > 0.0) {
      for (auto& user : users) {
        if (!rng.Bernoulli(config.anchor_churn_per_week)) continue;
        if (user.anchors.size() < 2) continue;
        const size_t slot = static_cast<size_t>(
            rng.UniformInt(1, static_cast<int64_t>(user.anchors.size()) - 1));
        std::unordered_set<int64_t> exclude(user.anchors.begin(),
                                            user.anchors.end());
        user.anchors[slot] = SampleAnchors(1, zipf, exclude, rng)[0];
        user.weights[slot] = 0.5 + rng.Uniform(0.0, 1.0);
      }
    }

    for (size_t u = 0; u < users.size(); ++u) {
      UserState& user = users[u];
      int count = poisson(rng.engine());
      if (count <= 0) continue;
      // Draw check-in hours weighted by the activity profile, then sort so
      // the trajectory stays chronological.
      std::vector<double> hour_weights(24);
      for (int h = 0; h < 24; ++h) hour_weights[h] = HourActivity(h);
      std::vector<int64_t> times;
      times.reserve(static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        const int hour = static_cast<int>(rng.Categorical(hour_weights));
        const int64_t sec = rng.UniformInt(0, kSecondsPerHour - 1);
        times.push_back(day_start + hour * kSecondsPerHour + sec);
      }
      std::sort(times.begin(), times.end());
      for (int64_t t : times) {
        const int hour =
            static_cast<int>((t / kSecondsPerHour) % 24);
        int64_t loc;
        int anchor_idx = -1;
        if (rng.Bernoulli(config.explore_prob)) {
          loc = static_cast<int64_t>(rng.Categorical(zipf));
        } else {
          // Leisure anchors are visited in rotation: after leisure anchor i
          // the next leisure outing strongly prefers the next leisure
          // anchor in index order. This is pure *sequential* structure --
          // invisible to frequency counting, learnable by sequence models.
          std::vector<int> leisure_order;
          for (size_t a = 0; a < user.anchors.size(); ++a) {
            if (user.roles[a] == Role::kLeisure) {
              leisure_order.push_back(static_cast<int>(a));
            }
          }
          int preferred_leisure = -1;
          if (!leisure_order.empty()) {
            preferred_leisure = leisure_order[0];
            for (size_t i = 0; i < leisure_order.size(); ++i) {
              if (leisure_order[i] == user.last_leisure) {
                preferred_leisure =
                    leisure_order[(i + 1) % leisure_order.size()];
                break;
              }
            }
          }
          std::vector<double> w(user.anchors.size());
          for (size_t a = 0; a < user.anchors.size(); ++a) {
            w[a] = user.weights[a] *
                   RoleAffinity(user.roles[a], hour, weekend);
            if (user.last_anchor >= 0) {
              w[a] *= TransitionBonus(
                  user.roles[static_cast<size_t>(user.last_anchor)],
                  user.roles[a]);
            }
            if (a + 1 == user.anchors.size()) {
              // The special anchor follows its weekly habit, overriding the
              // leisure rotation.
              w[a] = user.weights[a] *
                     SpecialAnchorWeight(user, day_of_week, hour);
            } else if (user.roles[a] == Role::kLeisure) {
              w[a] *= (static_cast<int>(a) == preferred_leisure) ? 5.0 : 0.4;
            }
          }
          anchor_idx = static_cast<int>(rng.Categorical(w));
          loc = user.anchors[static_cast<size_t>(anchor_idx)];
          if (anchor_idx >= 0 &&
              user.roles[static_cast<size_t>(anchor_idx)] ==
                  Role::kLeisure) {
            user.last_leisure = anchor_idx;
          }
        }
        user.last_anchor = anchor_idx;
        result.trajectories[u].points.push_back(
            Point{static_cast<int64_t>(u), loc, t});
      }
    }
  }
  // Users who never shifted (or when the span ends before the shift day).
  for (size_t u = 0; u < users.size(); ++u) {
    if (result.anchors_after[u].empty()) {
      result.anchors_after[u] = users[u].anchors;
    }
  }
  return result;
}

DatasetPreset NycLikePreset() {
  DatasetPreset p;
  p.name = "NYC";
  p.synthetic.num_users = 120;
  p.synthetic.num_locations = 360;
  p.synthetic.num_days = 330;
  p.synthetic.checkins_per_day = 2.2;
  p.synthetic.shift_time_frac = 0.72;
  p.synthetic.shift_user_frac = 0.6;
  p.synthetic.shift_anchor_frac = 0.6;
  p.synthetic.anchor_churn_per_week = 0.08;
  p.synthetic.seed = 1201;
  p.preprocess.min_users_per_location = 3;
  p.eval_context_sessions = 5;
  // Paper: 0.8 on Foursquare-NYC; re-tuned on validation for the reduced-
  // scale synthetic analogue (the paper likewise tunes lambda per dataset).
  p.lambda = 0.2;
  return p;
}

DatasetPreset TkyLikePreset() {
  DatasetPreset p;
  p.name = "TKY";
  p.synthetic.num_users = 160;
  p.synthetic.num_locations = 520;
  p.synthetic.num_days = 330;
  p.synthetic.checkins_per_day = 3.0;
  // TKY shows the most pronounced shift in the paper (§IV-D).
  p.synthetic.shift_time_frac = 0.70;
  p.synthetic.shift_user_frac = 0.75;
  p.synthetic.shift_anchor_frac = 0.7;
  p.synthetic.anchor_churn_per_week = 0.12;
  p.synthetic.seed = 1302;
  p.preprocess.min_users_per_location = 3;
  p.eval_context_sessions = 6;
  // Paper: 0.2 on TKY (strongest shift => smallest lambda); re-tuned.
  p.lambda = 0.1;
  return p;
}

DatasetPreset LymobLikePreset() {
  DatasetPreset p;
  p.name = "LYMOB";
  p.synthetic.num_users = 140;
  p.synthetic.num_locations = 420;
  p.synthetic.num_days = 75;  // the real LYMOB span
  p.synthetic.checkins_per_day = 6.0;  // denser trajectories (§IV-E)
  // Short span => small distribution shift (§IV-B observation).
  p.synthetic.shift_time_frac = 0.8;
  p.synthetic.shift_user_frac = 0.4;
  p.synthetic.shift_anchor_frac = 0.4;
  p.synthetic.anchor_churn_per_week = 0.07;
  p.synthetic.seed = 1403;
  p.preprocess.min_users_per_location = 3;
  p.eval_context_sessions = 5;
  // Paper: 0.6 on LYMOB; re-tuned for the reduced-scale analogue.
  p.lambda = 0.2;
  return p;
}

std::vector<DatasetPreset> AllPresets() {
  return {NycLikePreset(), TkyLikePreset(), LymobLikePreset()};
}

void ScalePreset(DatasetPreset& preset, double factor) {
  if (factor <= 0.0) factor = 1.0;
  preset.synthetic.num_users = std::max(
      10, static_cast<int>(preset.synthetic.num_users * factor));
  preset.synthetic.num_locations = std::max(
      40, static_cast<int>(preset.synthetic.num_locations * factor));
}

}  // namespace adamove::data
