#include "data/preprocess.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace adamove::data {

std::vector<Session> SegmentSessions(const Trajectory& trajectory,
                                     int window_hours) {
  std::vector<Session> sessions;
  const int64_t window = static_cast<int64_t>(window_hours) * kSecondsPerHour;
  for (const Point& p : trajectory.points) {
    if (sessions.empty() ||
        p.timestamp - sessions.back().front().timestamp > window) {
      sessions.emplace_back();
    }
    if (!sessions.back().empty()) {
      ADAMOVE_CHECK_GE(p.timestamp, sessions.back().back().timestamp);
    }
    sessions.back().push_back(p);
  }
  return sessions;
}

PreprocessedData Preprocess(const std::vector<Trajectory>& raw,
                            const PreprocessConfig& config) {
  // 1. Count distinct users per location; keep popular locations.
  std::unordered_map<int64_t, std::unordered_set<int64_t>> loc_users;
  for (const auto& tr : raw) {
    for (const auto& p : tr.points) loc_users[p.location].insert(tr.user);
  }
  std::unordered_set<int64_t> kept_locations;
  for (const auto& [loc, users] : loc_users) {
    if (static_cast<int>(users.size()) >= config.min_users_per_location) {
      kept_locations.insert(loc);
    }
  }

  // 2. Per user: filter points, segment sessions, drop short sessions,
  //    drop inactive users.
  struct Candidate {
    int64_t raw_user;
    std::vector<Session> sessions;
  };
  std::vector<Candidate> candidates;
  for (const auto& tr : raw) {
    Trajectory filtered;
    filtered.user = tr.user;
    for (const auto& p : tr.points) {
      if (kept_locations.count(p.location) > 0) filtered.points.push_back(p);
    }
    if (filtered.points.empty()) continue;
    std::sort(filtered.points.begin(), filtered.points.end(),
              [](const Point& a, const Point& b) {
                return a.timestamp < b.timestamp;
              });
    std::vector<Session> sessions =
        SegmentSessions(filtered, config.session_window_hours);
    std::vector<Session> kept;
    for (auto& s : sessions) {
      if (static_cast<int>(s.size()) >= config.min_points_per_session) {
        kept.push_back(std::move(s));
      }
    }
    if (static_cast<int>(kept.size()) >= config.min_sessions_per_user) {
      candidates.push_back({tr.user, std::move(kept)});
    }
  }

  // 3. Dense re-indexing of users and surviving locations (location ids are
  //    assigned in first-appearance order for determinism).
  PreprocessedData out;
  std::unordered_map<int64_t, int64_t> loc_index;
  for (auto& cand : candidates) {
    UserSessions us;
    us.user = static_cast<int64_t>(out.users.size());
    out.user_to_raw.push_back(cand.raw_user);
    for (auto& session : cand.sessions) {
      for (auto& p : session) {
        auto [it, inserted] =
            loc_index.try_emplace(p.location,
                                  static_cast<int64_t>(loc_index.size()));
        if (inserted) out.location_to_raw.push_back(p.location);
        p.location = it->second;
        p.user = us.user;
      }
      us.sessions.push_back(std::move(session));
    }
    out.users.push_back(std::move(us));
  }
  out.num_users = static_cast<int64_t>(out.users.size());
  out.num_locations = static_cast<int64_t>(loc_index.size());
  return out;
}

}  // namespace adamove::data
