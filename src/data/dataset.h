#ifndef ADAMOVE_DATA_DATASET_H_
#define ADAMOVE_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/point.h"
#include "data/preprocess.h"

namespace adamove::data {

/// One supervised next-location sample built by the sliding-window strategy.
struct Sample {
  int64_t user = 0;
  /// The recent trajectory (model input): points of the current session's
  /// prefix preceded by up to c-1 full earlier sessions (Definition 3
  /// approximated at session granularity, as in the paper's setup).
  std::vector<Point> recent;
  /// Points before `recent` (most recent last), capped at a maximum length.
  /// Consumed by history-aware models (DeepMove/DeepTTA) and by LightMob's
  /// contrastive training branch.
  std::vector<Point> history;
  /// The point to predict; `target.location` is the label.
  Point target;
};

/// Sample-construction parameters.
struct SampleConfig {
  /// Number of sessions c forming the recent trajectory (context length).
  /// The paper trains with c = 1 and evaluates with c = 5/6/5 (NYC/TKY/LYMOB).
  int context_sessions = 1;
  /// Cap on the number of history points kept per sample (cost control for
  /// the attention branch; most recent points are kept).
  int max_history_points = 48;
  /// Cap on recent length (most recent points kept); 0 = uncapped.
  int max_recent_points = 64;
};

/// A dataset split into train/val/test sample sets over a shared location
/// and user vocabulary.
struct Dataset {
  std::vector<Sample> train;
  std::vector<Sample> val;
  std::vector<Sample> test;
  int64_t num_locations = 0;
  int64_t num_users = 0;
};

/// Per-user chronological session split: earliest 70 % of sessions -> train,
/// next 10 % -> val, last 20 % -> test (fractions configurable).
struct SplitConfig {
  double train_frac = 0.7;
  double val_frac = 0.1;
  SampleConfig train_samples;                 // c defaults to 1
  SampleConfig eval_samples{.context_sessions = 5};  // c per §IV-A
};

/// Builds sliding-window samples for the sessions of one user restricted to
/// session indices [begin, end); context sessions may reach back before
/// `begin` (test samples legitimately see earlier data as input context).
std::vector<Sample> BuildSamples(const UserSessions& user, int begin, int end,
                                 const SampleConfig& config);

/// Splits preprocessed data per §IV-A and materializes samples.
Dataset MakeDataset(const PreprocessedData& data, const SplitConfig& config);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_DATASET_H_
