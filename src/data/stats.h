#ifndef ADAMOVE_DATA_STATS_H_
#define ADAMOVE_DATA_STATS_H_

#include <cstdint>
#include <vector>

#include "data/preprocess.h"

namespace adamove::data {

/// Table I-style statistics of a preprocessed dataset. The paper counts
/// sessions as "trajectories".
struct DatasetStats {
  int64_t num_users = 0;
  int64_t num_locations = 0;
  int64_t num_sessions = 0;
  int64_t num_points = 0;
  int64_t time_span_days = 0;
  double avg_session_length = 0.0;
  double avg_sessions_per_user = 0.0;
};

DatasetStats ComputeStats(const PreprocessedData& data);

/// Reproduces the Fig. 1(c) analysis: the location-visit distribution of
/// each user over the earliest `history_days` is averaged into a historical
/// mobility distribution; afterwards, for every `window_days` window, the
/// same construction gives a biweekly distribution whose cosine similarity
/// to the historical one is reported.
///
/// Returns one similarity value per complete window after the history
/// period (empty windows are skipped and reported as -1).
std::vector<double> MobilitySimilaritySeries(const PreprocessedData& data,
                                             int history_days = 90,
                                             int window_days = 14);

/// Fig. 1(b): per-user visit heatmap — rows are locations this user ever
/// visited (dense ids), columns are consecutive `window_days` windows,
/// entries are visit counts.
struct VisitHeatmap {
  std::vector<int64_t> locations;       // row labels (dense location ids)
  std::vector<std::vector<int>> counts;  // [location][window]
};

VisitHeatmap ComputeVisitHeatmap(const PreprocessedData& data, int64_t user,
                                 int window_days = 14);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_STATS_H_
