#ifndef ADAMOVE_DATA_CHECKIN_IO_H_
#define ADAMOVE_DATA_CHECKIN_IO_H_

#include <string>
#include <vector>

#include "data/point.h"

namespace adamove::data {

/// Writes check-ins as CSV with header `user,location,timestamp` (unix
/// seconds), one row per point. Returns false on IO error.
bool SaveCheckinsCsv(const std::string& path,
                     const std::vector<Trajectory>& trajectories);

/// Loads check-ins from the CSV format above (a Foursquare-style dump can be
/// converted to this 3-column form). Rows are grouped by user and sorted by
/// time. Returns false on IO/parse error.
bool LoadCheckinsCsv(const std::string& path,
                     std::vector<Trajectory>* trajectories);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_CHECKIN_IO_H_
