#ifndef ADAMOVE_DATA_CHECKIN_IO_H_
#define ADAMOVE_DATA_CHECKIN_IO_H_

#include <string>
#include <vector>

#include "data/point.h"

namespace adamove::data {

/// Writes check-ins as CSV with header `user,location,timestamp` (unix
/// seconds), one row per point. Returns false on IO error.
bool SaveCheckinsCsv(const std::string& path,
                     const std::vector<Trajectory>& trajectories);

/// Loads check-ins from the CSV format above (a Foursquare-style dump can be
/// converted to this 3-column form). Rows are grouped by user and sorted by
/// time. Returns false only on IO failure (unopenable file / missing header
/// line); malformed data rows — truncated fields, unparsable numbers,
/// embedded garbage — are skipped and counted into `*rejected_lines` (when
/// non-null) instead of failing the whole file, so a corrupted dump degrades
/// to its parsable subset. Real-data ingestion should log the count.
bool LoadCheckinsCsv(const std::string& path,
                     std::vector<Trajectory>* trajectories,
                     size_t* rejected_lines = nullptr);

}  // namespace adamove::data

#endif  // ADAMOVE_DATA_CHECKIN_IO_H_
