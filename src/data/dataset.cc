#include "data/dataset.h"
#include <cmath>

#include <algorithm>

#include "common/check.h"

namespace adamove::data {

std::vector<Sample> BuildSamples(const UserSessions& user, int begin, int end,
                                 const SampleConfig& config) {
  ADAMOVE_CHECK_GE(begin, 0);
  ADAMOVE_CHECK_LE(end, static_cast<int>(user.sessions.size()));
  ADAMOVE_CHECK_GE(config.context_sessions, 1);
  std::vector<Sample> samples;
  for (int s = begin; s < end; ++s) {
    const Session& session = user.sessions[static_cast<size_t>(s)];
    const int ctx_begin = std::max(0, s - (config.context_sessions - 1));
    // Points from the c-1 preceding context sessions.
    std::vector<Point> context;
    for (int cs = ctx_begin; cs < s; ++cs) {
      const Session& prev = user.sessions[static_cast<size_t>(cs)];
      context.insert(context.end(), prev.begin(), prev.end());
    }
    // History: everything before the context window.
    std::vector<Point> history;
    for (int hs = 0; hs < ctx_begin; ++hs) {
      const Session& h = user.sessions[static_cast<size_t>(hs)];
      history.insert(history.end(), h.begin(), h.end());
    }
    if (config.max_history_points > 0 &&
        static_cast<int>(history.size()) > config.max_history_points) {
      history.erase(history.begin(),
                    history.end() - config.max_history_points);
    }
    // Slide over the current session: predict session[k] from the context
    // plus the session prefix [0, k).
    for (size_t k = 1; k < session.size(); ++k) {
      Sample sample;
      sample.user = user.user;
      sample.history = history;
      sample.recent = context;
      sample.recent.insert(sample.recent.end(), session.begin(),
                           session.begin() + static_cast<ptrdiff_t>(k));
      if (config.max_recent_points > 0 &&
          static_cast<int>(sample.recent.size()) > config.max_recent_points) {
        sample.recent.erase(
            sample.recent.begin(),
            sample.recent.end() - config.max_recent_points);
      }
      sample.target = session[k];
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

Dataset MakeDataset(const PreprocessedData& data, const SplitConfig& config) {
  Dataset out;
  out.num_locations = data.num_locations;
  out.num_users = data.num_users;
  for (const auto& user : data.users) {
    const int n = static_cast<int>(user.sessions.size());
    // Round to the nearest session so fractions like 0.7 + 0.1 do not lose a
    // session to floating-point truncation.
    int train_end = static_cast<int>(std::llround(n * config.train_frac));
    int val_end = static_cast<int>(
        std::llround(n * (config.train_frac + config.val_frac)));
    train_end = std::clamp(train_end, 1, n);
    val_end = std::clamp(val_end, train_end, n);
    auto train = BuildSamples(user, 0, train_end, config.train_samples);
    auto val = BuildSamples(user, train_end, val_end, config.eval_samples);
    auto test = BuildSamples(user, val_end, n, config.eval_samples);
    out.train.insert(out.train.end(), train.begin(), train.end());
    out.val.insert(out.val.end(), val.begin(), val.end());
    out.test.insert(out.test.end(), test.begin(), test.end());
  }
  return out;
}

}  // namespace adamove::data
