#include "data/foursquare_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

namespace adamove::data {

namespace {

int MonthIndex(const char* name) {
  static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                  "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  for (int i = 0; i < 12; ++i) {
    if (std::strncmp(name, kMonths[i], 3) == 0) return i;
  }
  return -1;
}

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

// Days from 1970-01-01 to the first day of `year`.
int64_t DaysToYear(int year) {
  int64_t days = 0;
  for (int y = 1970; y < year; ++y) days += IsLeap(y) ? 366 : 365;
  return days;
}

int64_t DaysToMonth(int year, int month) {
  static const int kCum[] = {0,   31,  59,  90,  120, 151,
                             181, 212, 243, 273, 304, 334};
  int64_t days = kCum[month];
  if (month >= 2 && IsLeap(year)) ++days;
  return days;
}

}  // namespace

bool ParseFoursquareTime(const std::string& text, int64_t* unix_seconds) {
  // "Tue Apr 03 18:00:09 +0000 2012"
  char weekday[8], month[8], tz[8];
  int day, hour, minute, second, year;
  if (std::sscanf(text.c_str(), "%3s %3s %d %d:%d:%d %7s %d", weekday, month,
                  &day, &hour, &minute, &second, tz, &year) != 8) {
    return false;
  }
  const int m = MonthIndex(month);
  // The year upper bound is a robustness guard, not pedantry: DaysToYear is
  // linear in the year, so an unbounded corrupted value ("99999999") would
  // stall ingestion for minutes instead of skipping one line.
  if (m < 0 || day < 1 || day > 31 || hour < 0 || hour > 23 || minute < 0 ||
      minute > 59 || second < 0 || second > 60 || year < 1970 ||
      year > 9999) {
    return false;
  }
  const int64_t days = DaysToYear(year) + DaysToMonth(year, m) + (day - 1);
  *unix_seconds = days * kSecondsPerDay + hour * 3600 + minute * 60 + second;
  return true;
}

bool LoadFoursquareTsv(const std::string& path,
                       FoursquareLoadResult* result) {
  std::ifstream in(path);
  if (!in) return false;
  result->trajectories.clear();
  result->location_to_venue.clear();
  result->skipped_lines = 0;

  std::unordered_map<std::string, int64_t> venue_index;
  std::map<int64_t, std::vector<Point>> by_user;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Strip a trailing \r from Windows-style dumps.
    if (line.back() == '\r') line.pop_back();
    std::istringstream iss(line);
    std::string user_str, venue, cat_id, cat_name, lat, lon, tz_offset, time;
    if (!std::getline(iss, user_str, '\t') ||
        !std::getline(iss, venue, '\t') ||
        !std::getline(iss, cat_id, '\t') ||
        !std::getline(iss, cat_name, '\t') ||
        !std::getline(iss, lat, '\t') || !std::getline(iss, lon, '\t') ||
        !std::getline(iss, tz_offset, '\t') || !std::getline(iss, time)) {
      ++result->skipped_lines;
      continue;
    }
    char* end = nullptr;
    const int64_t user = std::strtoll(user_str.c_str(), &end, 10);
    if (end == user_str.c_str()) {
      ++result->skipped_lines;
      continue;
    }
    const long tz_minutes = std::strtol(tz_offset.c_str(), &end, 10);
    if (end == tz_offset.c_str()) {
      ++result->skipped_lines;
      continue;
    }
    int64_t utc = 0;
    if (!ParseFoursquareTime(time, &utc)) {
      ++result->skipped_lines;
      continue;
    }
    auto [it, inserted] = venue_index.try_emplace(
        venue, static_cast<int64_t>(venue_index.size()));
    if (inserted) result->location_to_venue.push_back(venue);
    Point p;
    p.user = user;
    p.location = it->second;
    p.timestamp = utc + static_cast<int64_t>(tz_minutes) * 60;  // local time
    by_user[user].push_back(p);
  }
  for (auto& [user, points] : by_user) {
    std::sort(points.begin(), points.end(),
              [](const Point& a, const Point& b) {
                return a.timestamp < b.timestamp;
              });
    Trajectory tr;
    tr.user = user;
    tr.points = std::move(points);
    result->trajectories.push_back(std::move(tr));
  }
  return true;
}

}  // namespace adamove::data
