#include "common/cpu_features.h"

namespace adamove::common {

#if defined(__x86_64__) || defined(__i386__)

bool CpuHasAvx2() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
}

bool CpuHasFma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("fma") != 0;
}

#else

bool CpuHasAvx2() { return false; }
bool CpuHasFma() { return false; }

#endif

bool CpuHasNeon() {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

std::string CpuFeatureString() {
  if (CpuHasAvx2()) return CpuHasFma() ? "avx2+fma" : "avx2";
  if (CpuHasNeon()) return "neon";
  return "baseline";
}

}  // namespace adamove::common
