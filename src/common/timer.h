#ifndef ADAMOVE_COMMON_TIMER_H_
#define ADAMOVE_COMMON_TIMER_H_

#include <chrono>

namespace adamove::common {

/// Monotonic wall-clock stopwatch used for the efficiency experiments
/// (Table III) and benchmark harness timing.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/Reset, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Reset, in seconds.
  double ElapsedSec() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_TIMER_H_
