#ifndef ADAMOVE_COMMON_PARALLEL_FOR_H_
#define ADAMOVE_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace adamove::common {

/// Deterministic data-parallel loop over the index range [begin, end).
///
/// The range is partitioned into contiguous chunks and `fn(lo, hi)` is
/// invoked once per chunk, each chunk on exactly one thread. Because every
/// index is processed by exactly one invocation, a kernel whose per-index
/// work is self-contained (reads shared inputs, writes only outputs owned by
/// its indices, accumulates in the same order as a serial loop) produces
/// bit-identical results at any thread count — parallelism is scheduling,
/// never arithmetic.
///
/// `grain` is the minimum number of indices per chunk; ranges at or below
/// the grain (and all nested calls — a chunk body that itself calls
/// ParallelFor runs its inner loop serially) execute inline on the caller.
/// The caller always participates as a worker, so a pool of size T serves
/// T-way parallelism with T-1 pool threads.
///
/// Work is executed on a process-wide lazily-initialized ThreadPool shared
/// by every kernel call site (nn kernels, the PTTA hot path, batch scoring).
/// Its size comes from ADAMOVE_NUM_THREADS, defaulting to
/// std::thread::hardware_concurrency(). The serving subsystem's request
/// workers are separate threads; they share this one compute pool, so
/// oversubscription stays bounded regardless of how many requests are in
/// flight.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Threads the shared kernel pool targets (pool threads + the caller).
int KernelThreads();

/// Overrides the kernel-pool size (primarily for tests and benchmarks that
/// sweep thread counts). Joins and rebuilds the pool; must not be called
/// concurrently with in-flight ParallelFor calls. `n <= 0` restores the
/// ADAMOVE_NUM_THREADS / hardware_concurrency default.
void SetKernelThreads(int n);

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_PARALLEL_FOR_H_
