#ifndef ADAMOVE_COMMON_PARALLEL_FOR_H_
#define ADAMOVE_COMMON_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

namespace adamove::common {

/// Deterministic data-parallel loop over the index range [begin, end).
///
/// The range is partitioned into contiguous chunks and `fn(lo, hi)` is
/// invoked once per chunk, each chunk on exactly one thread. Because every
/// index is processed by exactly one invocation, a kernel whose per-index
/// work is self-contained (reads shared inputs, writes only outputs owned by
/// its indices, accumulates in the same order as a serial loop) produces
/// bit-identical results at any thread count — parallelism is scheduling,
/// never arithmetic.
///
/// `grain` is the minimum number of indices per chunk; ranges at or below
/// the grain (and all nested calls — a chunk body that itself calls
/// ParallelFor runs its inner loop serially) execute inline on the caller.
/// The caller always participates as a worker, so a pool of size T serves
/// T-way parallelism with T-1 pool threads.
///
/// Work is executed on a process-wide lazily-initialized ThreadPool shared
/// by every kernel call site (nn kernels, the PTTA hot path, batch scoring).
/// Its size comes from ADAMOVE_NUM_THREADS, defaulting to
/// std::thread::hardware_concurrency(). The serving subsystem's request
/// workers are separate threads; they share this one compute pool, so
/// oversubscription stays bounded regardless of how many requests are in
/// flight.
///
/// Declared as a template so the inline paths (serial region, nested call,
/// range at or below the grain) invoke the callable directly: type-erasing
/// a capturing kernel lambda into std::function heap-allocates at the call
/// site, which would break the zero-allocation contract of the static-plan
/// executor even though the pool is never touched.
namespace parallel_internal {
/// True when the calling thread must run chunks inline: inside a
/// SerialKernelRegion or already executing a ParallelFor chunk.
bool InSerialRegion();
/// Out-of-line pool path (chunking + future joins). Pays the type-erasure
/// allocation; only reached when the pool genuinely runs.
void ParallelForPool(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn);
}  // namespace parallel_internal

template <typename Fn>
void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  if (range <= grain || parallel_internal::InSerialRegion()) {
    fn(begin, end);
    return;
  }
  parallel_internal::ParallelForPool(begin, end, grain, fn);
}

/// Threads the shared kernel pool targets (pool threads + the caller).
int KernelThreads();

/// RAII scope that forces every ParallelFor on the calling thread to run
/// inline (no pool submission) for its lifetime. Values are unaffected —
/// chunking is scheduling, never arithmetic (DESIGN.md §13) — but the pool
/// path heap-allocates its future list, so zero-allocation request scopes
/// (the static-plan executor, the OnlineAdapter `*Into` entry points) pin
/// kernels serial with this guard. Nests safely: the innermost scope that
/// set the flag restores the previous state.
class SerialKernelRegion {
 public:
  SerialKernelRegion();
  ~SerialKernelRegion();
  SerialKernelRegion(const SerialKernelRegion&) = delete;
  SerialKernelRegion& operator=(const SerialKernelRegion&) = delete;

 private:
  bool previous_;
};

/// Overrides the kernel-pool size (primarily for tests and benchmarks that
/// sweep thread counts). Joins and rebuilds the pool; must not be called
/// concurrently with in-flight ParallelFor calls. `n <= 0` restores the
/// ADAMOVE_NUM_THREADS / hardware_concurrency default.
void SetKernelThreads(int n);

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_PARALLEL_FOR_H_
