#include "common/crc32c.h"

#include <array>

namespace adamove::common {

namespace {

/// Slice-by-4 tables, built once at first use. Table 0 is the classic
/// byte-at-a-time table for the reflected polynomial; tables 1-3 fold four
/// input bytes per step, which is plenty for the frame sizes we checksum
/// (the snapshot hot path is dominated by the fsync, not the CRC).
struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    constexpr uint32_t kPoly = 0x82F63B78U;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1U) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFU];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFU];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFU];
    }
  }
};

const Tables& GetTables() {
  static const Tables* tables = new Tables();  // NOLINT: leaked on purpose
  return *tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const Tables& tables = GetTables();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFU] ^ tables.t[2][(crc >> 8) & 0xFFU] ^
          tables.t[1][(crc >> 16) & 0xFFU] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xFFU];
  }
  return ~crc;
}

}  // namespace adamove::common
