#ifndef ADAMOVE_COMMON_DURABLE_IO_H_
#define ADAMOVE_COMMON_DURABLE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adamove::common {

/// Outcome of a persistence operation. The no-exceptions analogue of a
/// status: `ok` plus a human-readable error naming what went wrong (file,
/// frame index, offending field). Truthy iff ok, so call sites read
/// `if (!result) ...`.
struct IoResult {
  bool ok = true;
  std::string error;

  static IoResult Ok() { return IoResult{}; }
  static IoResult Fail(std::string message) {
    return IoResult{false, std::move(message)};
  }
  explicit operator bool() const { return ok; }
};

// ---------------------------------------------------------------------------
// Wire helpers: little-endian primitives over an in-memory byte string.
// Writers append to a std::string; WireReader is the only sanctioned way to
// parse untrusted checkpoint/snapshot bytes — every Read* is bounds-checked
// against the buffer, so a corrupt length field can never drive an
// allocation or a read past the end.
// ---------------------------------------------------------------------------

void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
/// Raw IEEE-754 float payload (host byte order; this repository's on-disk
/// formats, like v1 before them, target little-endian hosts).
void AppendF32Array(std::string* out, const float* data, size_t n);
/// LEB128 varint (7 bits per byte, high bit = continuation): the compact
/// integer encoding the shard subsystem's per-user state rides on.
void AppendVarint(std::string* out, uint64_t v);
/// Zigzag-mapped varint for signed values (small magnitudes of either sign
/// stay short — location/timestamp deltas).
void AppendZigzag(std::string* out, int64_t v);

/// Bounds-checked cursor over untrusted bytes. Every Read* returns false —
/// consuming nothing — when fewer bytes remain than requested.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  /// LEB128 varint; false on truncation or an over-long encoding (> 10
  /// bytes would overflow uint64 — treated as corruption, nothing consumed).
  bool ReadVarint(uint64_t* v);
  /// Zigzag-mapped varint (see AppendZigzag).
  bool ReadZigzag(int64_t* v);
  /// A view into the buffer (no copy); valid while the buffer lives.
  bool ReadBytes(size_t n, std::string_view* out);
  /// Reads `n` floats. The bounds check precedes the allocation, so a
  /// hostile count cannot trigger an unbounded resize.
  bool ReadF32Array(size_t n, std::vector<float>* out);

  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Durable atomic file replacement: write-to-temp, fsync, rename, fsync the
// parent directory. A reader never observes a half-written file — the
// destination either holds the complete previous version or the complete
// new one. This is the ONLY sanctioned way to write persistent state
// outside data/ (enforced by the raw-file-write rule in scripts/lint.sh).
//
// Fault points (armed via common::FaultRegistry, DESIGN.md §11):
//   io.snapshot_write  the payload write fails — temp removed, target intact
//   io.snapshot_fsync  the pre-rename fsync fails — temp removed, target
//                      intact (an unsynced rename could survive a crash with
//                      torn contents, so a failed fsync aborts the commit)
//   io.snapshot_read   the read side fails — caller takes its fallback
// ---------------------------------------------------------------------------

/// The deterministic temp path `WriteFileAtomic` stages through — exposed so
/// crash tests can plant stale temp files and assert they are ignored.
std::string TempPathFor(const std::string& path);

IoResult WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads a whole file (allocation bounded by the actual on-disk size).
IoResult ReadFileAll(const std::string& path, std::string* out);

// ---------------------------------------------------------------------------
// Framed record layer: file := magic u32, then frames of
//   u32 payload_length | u32 masked crc32c(payload) | payload bytes.
// The parser distinguishes three outcomes:
//   * every frame complete and CRC-clean  -> ok, torn_tail = false
//   * trailing partial frame (truncation) -> ok, torn_tail = true, frames
//     holds the complete verified prefix — crash-consistent recovery
//   * anything else (bad magic, CRC mismatch, oversized length) -> error
//     naming the frame; `frames` still holds the verified prefix so the
//     caller can salvage what was durable before the damage.
// ---------------------------------------------------------------------------

struct FramedRead {
  std::vector<std::string> frames;
  bool torn_tail = false;
};

/// Accumulates frames in memory, then commits them durably in one atomic
/// replace. Nothing touches the filesystem until Commit.
class FramedFileWriter {
 public:
  explicit FramedFileWriter(uint32_t magic);

  void AddFrame(std::string_view payload);
  size_t frame_count() const { return frame_count_; }
  /// Exact file size a Commit would write.
  uint64_t byte_size() const { return buffer_.size(); }

  IoResult Commit(const std::string& path) const;

 private:
  std::string buffer_;
  size_t frame_count_ = 0;
};

IoResult ParseFramedBytes(std::string_view bytes, uint32_t expected_magic,
                          FramedRead* out);

IoResult ReadFramedFile(const std::string& path, uint32_t expected_magic,
                        FramedRead* out);

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_DURABLE_IO_H_
