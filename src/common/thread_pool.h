#ifndef ADAMOVE_COMMON_THREAD_POOL_H_
#define ADAMOVE_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/check.h"
#include "common/mutex.h"

namespace adamove::common {

/// Fixed-size thread pool with a single shared FIFO queue — the execution
/// substrate of the serving subsystem. Deliberately work-stealing-free: the
/// serving workload is a stream of near-uniform, millisecond-scale tasks
/// (encoder forwards), so a shared queue under one mutex is both simpler and
/// cache-friendlier than per-thread deques.
///
/// Concurrency contract (checked under ADAMOVE_ANALYZE=ON): `queue_` and
/// `stop_` are guarded by `mu_`; workers block on `cv_`. Submit may be
/// called from any thread, including pool threads.
///
/// Exceptions thrown by a task are captured in the task's std::future and
/// rethrown at .get(), never on the pool thread (no-exceptions policy for
/// library code notwithstanding, user callables may throw).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    ADAMOVE_CHECK_GT(num_threads, 0);
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  /// Joins all workers after draining the queue: every task submitted
  /// before destruction runs to completion.
  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)`; the returned future yields the result (or
  /// rethrows the task's exception).
  template <typename F, typename... Args>
  auto Submit(F&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn),
         ... args = std::forward<Args>(args)]() mutable {
          return fn(std::move(args)...);
        });
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      ADAMOVE_CHECK(!stop_);  // submitting to a destroyed pool is a bug
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.NotifyOne();
    return result;
  }

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(mu_);
        if (queue_.empty()) return;  // stop_ set and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ ADAMOVE_GUARDED_BY(mu_);
  bool stop_ ADAMOVE_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_THREAD_POOL_H_
