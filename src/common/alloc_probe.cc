#include "common/alloc_probe.h"

#include <cstdlib>
#include <new>

// The probe stands down under ASan/TSan/MSan: their runtimes own the
// allocator (shadow memory, quarantine, happens-before on malloc/free) and
// replacing operator new underneath them would silently disable that
// instrumentation. UBSan does not interpose the allocator, so the probe
// stays live there and the zero-alloc contract is enforced in that stage
// too.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_MEMORY__)
#define ADAMOVE_ALLOC_PROBE_DISABLED 1
#endif
#if !defined(ADAMOVE_ALLOC_PROBE_DISABLED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ADAMOVE_ALLOC_PROBE_DISABLED 1
#endif
#endif

namespace adamove::common {

namespace {

// Plain (non-atomic) thread-locals: each thread only ever touches its own
// slot, so no synchronization is needed and the probe adds one increment
// per allocation to the hot path.
thread_local uint64_t tls_alloc_count = 0;
thread_local uint64_t tls_free_count = 0;

}  // namespace

bool AllocProbeAvailable() {
#if defined(ADAMOVE_ALLOC_PROBE_DISABLED)
  return false;
#else
  return true;
#endif
}

uint64_t ThreadAllocCount() { return tls_alloc_count; }
uint64_t ThreadFreeCount() { return tls_free_count; }

namespace internal_alloc_probe {

// Shared backends for the replaced operators below. All flavors funnel into
// malloc/posix_memalign so every deallocation path (sized, aligned, nothrow)
// can uniformly call free().

void* CountedAlloc(std::size_t size) noexcept {
  ++tls_alloc_count;
  if (size == 0) size = 1;  // malloc(0) may return nullptr legitimately
  return std::malloc(size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  ++tls_alloc_count;
  if (align < sizeof(void*)) align = sizeof(void*);  // posix_memalign floor
  if (size == 0) size = 1;
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size) != 0) return nullptr;
  return ptr;
}

void CountedFree(void* ptr) noexcept {
  if (ptr == nullptr) return;  // deleting null is not a deallocation
  ++tls_free_count;
  std::free(ptr);
}

[[noreturn]] void ThrowBadAlloc() { throw std::bad_alloc(); }

}  // namespace internal_alloc_probe

}  // namespace adamove::common

#if !defined(ADAMOVE_ALLOC_PROBE_DISABLED)

namespace probe = adamove::common::internal_alloc_probe;

// Replaceable global allocation functions ([new.delete] — replacing them is
// the standard-sanctioned interposition point). Every flavor is replaced so
// no allocation slips past the counter regardless of which overload the
// compiler selects.

void* operator new(std::size_t size) {
  void* ptr = probe::CountedAlloc(size);
  if (ptr == nullptr) probe::ThrowBadAlloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = probe::CountedAlloc(size);
  if (ptr == nullptr) probe::ThrowBadAlloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return probe::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return probe::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr =
      probe::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) probe::ThrowBadAlloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr =
      probe::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) probe::ThrowBadAlloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return probe::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return probe::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { probe::CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { probe::CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  probe::CountedFree(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  probe::CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  probe::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  probe::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  probe::CountedFree(ptr);
}

#endif  // !ADAMOVE_ALLOC_PROBE_DISABLED
