#ifndef ADAMOVE_COMMON_RNG_H_
#define ADAMOVE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace adamove::common {

/// Deterministic random source used throughout the library. Thin wrapper
/// around std::mt19937_64 with convenience draws; every component that needs
/// randomness takes an explicit Rng (or seed) so whole experiments are
/// bit-reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Returns 0 when all weights are zero.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double r = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_RNG_H_
