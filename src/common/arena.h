#ifndef ADAMOVE_COMMON_ARENA_H_
#define ADAMOVE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace adamove::common {

/// Slab allocator for byte blobs of mixed sizes — the storage engine of the
/// shard subsystem's compact per-user state (DESIGN.md §12).
///
/// Why not plain heap vectors: a million resident users means a million
/// small allocations whose malloc headers, size-bin slack and free-list
/// churn both inflate RSS and fragment it; eviction then returns memory to
/// the allocator, not to the OS, at unpredictable cost. The arena instead
/// carves fixed-size slots out of large slabs, one free list per size
/// class:
///
///   * Allocate = pop a free slot (or bump the newest slab)    — O(1)
///   * Free     = push the slot back onto its class free list  — O(1)
///   * fragmentation is bounded by the geometric class rounding (<= ~33%
///     internal waste) plus at most one partially-filled slab per class —
///     there is no external fragmentation to compact, ever.
///
/// Blobs larger than the biggest class (rare: a user whose knowledge base
/// is near the per-location cap everywhere) fall back to individually
/// heap-owned blocks, tracked so stats stay exact.
///
/// Thread-compatibility: like core::OnlineAdapter, the arena holds no lock
/// of its own; each shard::CompactStore stripe owns one arena and guards it
/// with the stripe mutex (ADAMOVE_GUARDED_BY), so locking happens exactly
/// once per operation at the stripe granularity.
class SlabArena {
 public:
  /// A leased blob. `data` stays valid until Free (slabs are never
  /// relocated); `cls` is internal bookkeeping callers must hand back
  /// unchanged.
  struct Block {
    char* data = nullptr;
    uint32_t size = 0;  // requested bytes (<= slot size of the class)
    int32_t cls = -1;   // size-class index; -1 = oversize heap block
  };

  struct Stats {
    uint64_t used_bytes = 0;      // sum of live Block::size
    uint64_t reserved_bytes = 0;  // slab + oversize bytes held from the OS
    uint64_t live_blocks = 0;
    uint64_t allocations = 0;
    uint64_t frees = 0;
    uint64_t oversize_blocks = 0;
  };

  /// `slab_bytes` is the granule requested from the heap per slab; each
  /// size class fills one slab before asking for the next.
  explicit SlabArena(size_t slab_bytes = 64 * 1024);

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Leases a block of at least `n` bytes (n > 0).
  Block Allocate(size_t n);

  /// Returns a block to its free list (O(1)). `block` must have come from
  /// this arena and not have been freed already.
  void Free(const Block& block);

  const Stats& stats() const { return stats_; }

  /// Slot size a request of `n` bytes rounds up to (oversize requests
  /// return n unchanged) — exposed so capacity planning and tests can
  /// reason about internal waste.
  size_t SlotSizeFor(size_t n) const;

 private:
  struct SizeClass {
    size_t slot_bytes = 0;
    std::vector<std::unique_ptr<char[]>> slabs;
    std::vector<char*> free_list;
    size_t bump_offset = 0;  // within the newest slab
  };

  size_t slab_bytes_;
  std::vector<SizeClass> classes_;
  /// Oversize blocks, keyed by address (exact ownership; O(1) expected).
  std::unordered_map<const char*, std::unique_ptr<char[]>> oversize_;
  Stats stats_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_ARENA_H_
