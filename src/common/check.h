#ifndef ADAMOVE_COMMON_CHECK_H_
#define ADAMOVE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace adamove::common {

/// Prints a fatal message with source location and aborts. Used by the CHECK
/// macros below; programmer errors (violated invariants, shape mismatches)
/// terminate the process rather than unwinding, following the no-exceptions
/// policy of this codebase.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const std::string& message) {
  std::fprintf(stderr, "[ADAMOVE FATAL] %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

namespace internal_check {

/// Builds the "a vs b" detail string for binary CHECK_xx macros.
template <typename A, typename B>
std::string BinaryFailureMessage(const char* expr, const A& a, const B& b) {
  std::ostringstream oss;
  oss << "CHECK failed: " << expr << " (" << a << " vs " << b << ")";
  return oss.str();
}

}  // namespace internal_check

}  // namespace adamove::common

/// CHECK(cond): aborts with a message when `cond` is false. Always on,
/// including release builds — invariants in a data system must not be
/// silently skipped.
#define ADAMOVE_CHECK(cond)                                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::adamove::common::FatalCheckFailure(__FILE__, __LINE__,          \
                                           "CHECK failed: " #cond);    \
    }                                                                   \
  } while (0)

#define ADAMOVE_CHECK_OP(op, a, b)                                          \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      ::adamove::common::FatalCheckFailure(                                 \
          __FILE__, __LINE__,                                               \
          ::adamove::common::internal_check::BinaryFailureMessage(          \
              #a " " #op " " #b, (a), (b)));                                \
    }                                                                       \
  } while (0)

#define ADAMOVE_CHECK_EQ(a, b) ADAMOVE_CHECK_OP(==, a, b)
#define ADAMOVE_CHECK_NE(a, b) ADAMOVE_CHECK_OP(!=, a, b)
#define ADAMOVE_CHECK_LT(a, b) ADAMOVE_CHECK_OP(<, a, b)
#define ADAMOVE_CHECK_LE(a, b) ADAMOVE_CHECK_OP(<=, a, b)
#define ADAMOVE_CHECK_GT(a, b) ADAMOVE_CHECK_OP(>, a, b)
#define ADAMOVE_CHECK_GE(a, b) ADAMOVE_CHECK_OP(>=, a, b)

#endif  // ADAMOVE_COMMON_CHECK_H_
