#ifndef ADAMOVE_COMMON_QFLOAT_H_
#define ADAMOVE_COMMON_QFLOAT_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace adamove::common {

/// Power-of-two int8 block quantization for pattern vectors (DESIGN.md §12).
///
/// A vector is stored as one shared exponent e plus one int8 per element,
/// reconstructing x_i = q_i * 2^e. The exponent is chosen so the magnitude
/// maximum lands in [64, 127] — six significant bits for the largest
/// element, which is ample for the cosine-similarity and centroid math the
/// knowledge base feeds (patterns are bounded tanh outputs, and similarity
/// ranking is insensitive to <1% per-element noise).
///
/// The whole point of the power-of-two scale is *exactness of the decoded
/// form*: q_i * 2^e is exactly representable in IEEE float for |q_i| <= 127
/// (7 mantissa bits against 24 available), and dividing a decoded value by
/// 2^e is again exact. Hence:
///
///   * Decode(Encode(x)) is a deterministic canonical vector x';
///   * Encode(x') reproduces exactly the same (e, q) — the codec is
///     idempotent on its own image (pinned by tests/shard/compact_state_test);
///   * dehydrate -> rehydrate round trips of canonical state are therefore
///     bit-identical, which is what lets the shard subsystem's compact tier
///     promise bit-identical Predict outputs across eviction cycles.
///
/// Vectors containing non-finite values (or empty ones) are not quantizable;
/// callers fall back to raw f32 storage (CompactState's per-entry mode byte).
struct QfloatBlock {
  /// Shared exponent: scale = 2^exponent.
  int exponent = 0;
  std::vector<int8_t> q;
};

/// True iff every element is finite (quantization would otherwise produce
/// garbage ranks instead of degrading gracefully).
inline bool QfloatEncodable(const float* x, size_t n) {
  if (n == 0) return false;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

/// Encodes `x` into (e, q). Pre-condition: QfloatEncodable(x, n).
inline void QfloatEncode(const float* x, size_t n, QfloatBlock* out) {
  float m = 0.0f;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  out->q.resize(n);
  if (m == 0.0f) {
    out->exponent = 0;
    for (size_t i = 0; i < n; ++i) out->q[i] = 0;
    return;
  }
  // m = frac * 2^k with frac in [0.5, 1), so m / 2^(k-7) lies in [64, 128).
  int k = 0;
  std::frexp(m, &k);
  out->exponent = k - 7;
  // Double precision: for subnormal inputs -exponent can exceed float's
  // range (2^155 overflows a float but not a double), and scaling by a
  // power of two stays exact in double for every float input.
  const double inv_scale = std::ldexp(1.0, -out->exponent);
  for (size_t i = 0; i < n; ++i) {
    // Multiplication by a power of two is exact; only the rounding to
    // integer loses information (once — see idempotence note above). The
    // magnitude maximum can round up to 128, so clamp into int8 range.
    long v = std::lround(static_cast<double>(x[i]) * inv_scale);
    if (v > 127) v = 127;
    if (v < -127) v = -127;
    out->q[i] = static_cast<int8_t>(v);
  }
}

/// Decodes (e, q) back to floats; exact (see header comment).
inline void QfloatDecode(const QfloatBlock& block, std::vector<float>* out) {
  const float scale = std::ldexp(1.0f, block.exponent);
  out->resize(block.q.size());
  for (size_t i = 0; i < block.q.size(); ++i) {
    (*out)[i] = static_cast<float>(block.q[i]) * scale;
  }
}

/// Projects `x` onto the codec's image in place: x -> Decode(Encode(x)).
/// The serving layer applies this once at pattern-ingest time (see
/// serve::SessionStoreConfig::canonicalize_patterns); every later
/// encode/decode cycle of the canonical vector is then lossless. Vectors
/// that are not encodable are left untouched (they stay raw-f32 forever).
inline void QfloatCanonicalize(std::vector<float>* x) {
  if (!QfloatEncodable(x->data(), x->size())) return;
  QfloatBlock block;
  QfloatEncode(x->data(), x->size(), &block);
  QfloatDecode(block, x);
}

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_QFLOAT_H_
