#ifndef ADAMOVE_COMMON_ALLOC_PROBE_H_
#define ADAMOVE_COMMON_ALLOC_PROBE_H_

#include <cstdint>

#include "common/check.h"

namespace adamove::common {

/// Allocation-counting probe (DESIGN.md §14).
///
/// alloc_probe.cc replaces the global `operator new` / `operator delete`
/// family with malloc-backed implementations that bump thread-local
/// counters, so a test can assert that a scope performed zero heap
/// allocations — the contract the static-forward-plan executor and the
/// `*Into` adapter entry points promise for steady-state requests.
///
/// The replacement operators are compiled out under ASan/TSan/MSan: those
/// runtimes interpose the allocator themselves, and stacking a second
/// interposition on top would bypass their poisoning/race instrumentation.
/// `AllocProbeAvailable()` reports whether the probe is live in this build;
/// `ASSERT_NO_ALLOCATIONS` degrades to "run the scope, assert nothing" when
/// it is not, so the `plan`-labeled suites stay runnable (and still exercise
/// the code under the sanitizer) in every check.sh stage.
///
/// Counters are per-thread: allocations made by other threads (e.g. kernel
/// pool workers) are invisible to the probing thread. Zero-alloc scopes must
/// therefore also pin kernels inline — see common::SerialKernelRegion.

/// True when the counting operator new/delete replacements are linked into
/// this build (plain and UBSan builds; false under ASan/TSan/MSan).
bool AllocProbeAvailable();

/// Number of heap allocations (any operator-new flavor) performed by the
/// calling thread since it started. Monotonic; meaningful only as a delta.
uint64_t ThreadAllocCount();

/// Number of heap deallocations performed by the calling thread.
uint64_t ThreadFreeCount();

/// RAII window over the calling thread's allocation counter.
class AllocProbeScope {
 public:
  AllocProbeScope()
      : start_allocs_(ThreadAllocCount()), start_frees_(ThreadFreeCount()) {}
  uint64_t allocations() const { return ThreadAllocCount() - start_allocs_; }
  uint64_t frees() const { return ThreadFreeCount() - start_frees_; }

 private:
  uint64_t start_allocs_;
  uint64_t start_frees_;
};

}  // namespace adamove::common

/// Runs `scope` (a statement or block) and aborts if the calling thread
/// performed any heap allocation while it ran. Compiles to a plain execution
/// of `scope` when the probe is unavailable (sanitizer builds), so tests
/// using it are safe to run in every check.sh stage.
#define ASSERT_NO_ALLOCATIONS(scope)                                      \
  do {                                                                    \
    ::adamove::common::AllocProbeScope adamove_alloc_probe_window_;       \
    { scope; }                                                            \
    if (::adamove::common::AllocProbeAvailable()) {                       \
      ADAMOVE_CHECK_EQ(adamove_alloc_probe_window_.allocations(),         \
                       static_cast<uint64_t>(0));                         \
    }                                                                     \
  } while (0)

#endif  // ADAMOVE_COMMON_ALLOC_PROBE_H_
