#include "common/parallel_for.h"

#include <algorithm>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/env.h"
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace adamove::common {

namespace {

// Set while a thread is executing a ParallelFor chunk; nested calls detect
// it and run inline instead of re-entering the pool (which could otherwise
// deadlock: a pool thread blocking on futures served by the same pool).
// SerialKernelRegion sets the same flag to pin kernels inline for
// zero-allocation request scopes.
thread_local bool tls_in_parallel_region = false;

int DefaultThreads() {
  int n = EnvInt("ADAMOVE_NUM_THREADS", 0);
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::max(n, 1);
}

// Constant-initialized (std::mutex's ctor is constexpr), so it is usable
// from any static initialization order.
Mutex g_pool_mu;

// `requested` <= 0 means "use the env default".
int g_requested_threads ADAMOVE_GUARDED_BY(g_pool_mu) = 0;
// Pool of (threads - 1) workers; null while single-threaded.
std::unique_ptr<ThreadPool> g_pool ADAMOVE_GUARDED_BY(g_pool_mu);
bool g_pool_built ADAMOVE_GUARDED_BY(g_pool_mu) = false;

// Returns the shared pool (building it on first use), or nullptr when the
// effective thread count is 1. The returned pool is used outside the lock:
// SetKernelThreads documents that it must not race in-flight ParallelFor
// calls, so the pointer stays valid for the duration of a loop.
ThreadPool* GetPool() {
  MutexLock lock(g_pool_mu);
  if (!g_pool_built) {
    const int threads =
        g_requested_threads > 0 ? g_requested_threads : DefaultThreads();
    if (threads > 1) {
      g_pool = std::make_unique<ThreadPool>(threads - 1);
    }
    g_pool_built = true;
  }
  return g_pool.get();
}

}  // namespace

SerialKernelRegion::SerialKernelRegion() : previous_(tls_in_parallel_region) {
  tls_in_parallel_region = true;
}

SerialKernelRegion::~SerialKernelRegion() {
  tls_in_parallel_region = previous_;
}

int KernelThreads() {
  MutexLock lock(g_pool_mu);
  if (g_pool_built) return g_pool ? g_pool->size() + 1 : 1;
  return g_requested_threads > 0 ? g_requested_threads : DefaultThreads();
}

void SetKernelThreads(int n) {
  MutexLock lock(g_pool_mu);
  g_requested_threads = n;
  g_pool.reset();  // joins existing workers
  g_pool_built = false;
}

bool parallel_internal::InSerialRegion() { return tls_in_parallel_region; }

void parallel_internal::ParallelForPool(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& fn) {
  // The inline template already handled empty/serial/at-grain ranges; this
  // path only re-checks for a pool (size 1 -> run inline after all).
  const int64_t range = end - begin;
  ThreadPool* pool = GetPool();
  if (pool == nullptr) {
    fn(begin, end);
    return;
  }
  const int64_t max_chunks =
      std::min<int64_t>(pool->size() + 1, (range + grain - 1) / grain);
  const int64_t chunk = (range + max_chunks - 1) / max_chunks;
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<size_t>(max_chunks) - 1);
  for (int64_t lo = begin + chunk; lo < end; lo += chunk) {
    const int64_t hi = std::min(lo + chunk, end);
    pending.push_back(pool->Submit([&fn, lo, hi] {
      tls_in_parallel_region = true;
      fn(lo, hi);
      tls_in_parallel_region = false;
    }));
  }
  // The caller runs the first chunk itself, then joins the rest.
  tls_in_parallel_region = true;
  fn(begin, std::min(begin + chunk, end));
  tls_in_parallel_region = false;
  for (auto& f : pending) f.get();
}

}  // namespace adamove::common
