#ifndef ADAMOVE_COMMON_CRC32C_H_
#define ADAMOVE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace adamove::common {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum used by every on-disk frame in this repository (durable_io
/// framed files, checkpoint v2 tensors, serving snapshots). Chosen over the
/// zlib CRC-32 because its error-detection properties are strictly better
/// for the short frames we write and it is the de-facto storage checksum
/// (iSCSI, ext4, LevelDB/RocksDB).
///
/// `Crc32c(data, n)` computes the checksum of one buffer;
/// `ExtendCrc32c(crc, data, n)` continues a running checksum so a frame can
/// be checksummed in pieces without concatenating. Both are pure functions
/// of the bytes — no global state, safe from any thread.
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

/// Masked form (the LevelDB trick): storing the CRC of data that itself
/// contains CRCs makes accidental collisions more likely, so stored
/// checksums are rotated and offset. Verification unmasks before comparing.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8U;
}

inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xA282EAD8U;
  return (rot >> 17) | (rot << 15);
}

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_CRC32C_H_
