#ifndef ADAMOVE_COMMON_MUTEX_H_
#define ADAMOVE_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/annotations.h"
#include "common/check.h"

namespace adamove::common {

/// The repo's only mutex. A thin wrapper over std::mutex that carries the
/// Clang thread-safety capability annotations (see annotations.h), so every
/// `ADAMOVE_GUARDED_BY(mu_)` field and `ADAMOVE_REQUIRES(mu_)` helper is
/// checked at compile time under `ADAMOVE_ANALYZE=ON`. Raw std::mutex /
/// std::lock_guard / std::condition_variable outside this header are
/// rejected by `scripts/lint.sh`.
///
/// Beyond the static contract, Lock() carries one dynamic check the static
/// analysis cannot make across translation units: re-entrant locking by the
/// owning thread (UB on std::mutex — a silent deadlock in practice) aborts
/// deterministically with a diagnostic instead. Cost: two relaxed atomic
/// stores per critical section and a relaxed load per Lock().
class ADAMOVE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADAMOVE_ACQUIRE() {
    if (owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
      FatalCheckFailure(__FILE__, __LINE__,
                        "Mutex::Lock: re-entrant locking — the calling "
                        "thread already holds this Mutex (would deadlock)");
    }
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void Unlock() ADAMOVE_RELEASE() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    mu_.unlock();
  }

  /// Non-blocking acquire; true iff the lock was taken.
  bool TryLock() ADAMOVE_TRY_ACQUIRE(true) {
    if (owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
      FatalCheckFailure(__FILE__, __LINE__,
                        "Mutex::TryLock: re-entrant locking — the calling "
                        "thread already holds this Mutex");
    }
    if (!mu_.try_lock()) return false;
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

 private:
  friend class CondVar;

  std::mutex mu_;
  /// Current owner for the re-entry check; thread::id{} when unlocked.
  /// Relaxed is enough: a thread only compares against its *own* id, and
  /// its own prior store is always visible to itself.
  std::atomic<std::thread::id> owner_{};
};

/// RAII critical section — the only way application code holds a Mutex.
/// Declared as a scoped capability so the analysis tracks the lock for
/// exactly this object's lifetime.
class ADAMOVE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ADAMOVE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ADAMOVE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to common::Mutex. Waits name the mutex they
/// release/re-acquire so the analysis can check the caller holds it
/// (`ADAMOVE_REQUIRES(mu)` on an argument is verified against the locks
/// held at the call site). Internally a std::condition_variable adopting
/// the wrapped std::mutex — no condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, re-acquires. Spurious
  /// wakeups happen; callers loop on their predicate (or use the predicate
  /// overload below).
  void Wait(Mutex& mu) ADAMOVE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native = Adopt(mu);
    cv_.wait(native);
    Restore(mu, native);
  }

  /// Loops `Wait` until `pred()` holds. The predicate runs with `mu` held.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) ADAMOVE_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Timed wait; std::cv_status::timeout iff `deadline` passed without a
  /// notification (the mutex is re-acquired either way).
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      ADAMOVE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native = Adopt(mu);
    const std::cv_status status = cv_.wait_until(native, deadline);
    Restore(mu, native);
    return status;
  }

  std::cv_status WaitFor(Mutex& mu, std::chrono::steady_clock::duration rel)
      ADAMOVE_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + rel);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// Hands the already-held native mutex to a unique_lock without
  /// re-locking, clearing the owner mark for the duration of the wait (the
  /// wait releases the mutex; another thread may legitimately own it).
  static std::unique_lock<std::mutex> Adopt(Mutex& mu) {
    mu.owner_.store(std::thread::id{}, std::memory_order_relaxed);
    return std::unique_lock<std::mutex>(mu.mu_, std::adopt_lock);
  }

  /// Re-marks the caller as owner and detaches the unique_lock so it does
  /// not unlock on destruction (the caller's MutexLock still owns the
  /// critical section).
  static void Restore(Mutex& mu, std::unique_lock<std::mutex>& native) {
    mu.owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    native.release();
  }

  std::condition_variable cv_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_MUTEX_H_
