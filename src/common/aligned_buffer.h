#ifndef ADAMOVE_COMMON_ALIGNED_BUFFER_H_
#define ADAMOVE_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace adamove::common {

/// A cache-line-aligned, trivially-copyable scratch buffer for the kernel
/// layer: data() is always 64-byte aligned, so a vector backend can use
/// aligned loads on the buffer head and never straddles a cache line it
/// didn't pay for. Deliberately tiny compared to std::vector — no
/// per-element construction, no initialization on Resize, move-only — the
/// contract a flat float arena actually needs (DESIGN.md §13).
///
/// Alignment is a *performance* contract, not a correctness one: kernels
/// must still use unaligned loads on interior pointers (the UBSan
/// regression test in tests/nn feeds every backend deliberately offset
/// views).
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer is raw storage: elements are moved with "
                "memcpy and never constructed or destroyed");

 public:
  static constexpr size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t n) { Resize(n); }
  ~AlignedBuffer() { Free(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) {
    ADAMOVE_CHECK_LT(i, size_);
    return data_[i];
  }
  const T& operator[](size_t i) const {
    ADAMOVE_CHECK_LT(i, size_);
    return data_[i];
  }

  /// Grows the allocation to hold at least `n` elements (contents
  /// preserved); never shrinks.
  void Reserve(size_t n) {
    if (n <= capacity_) return;
    size_t cap = capacity_ == 0 ? 64 : capacity_;
    while (cap < n) cap += cap / 2 + 1;
    T* grown = static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t{kAlignment}));
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(T));
    Free();
    data_ = grown;
    capacity_ = cap;
  }

  /// Sets the element count. New elements (beyond the previous size) are
  /// uninitialized — this is scratch storage, callers overwrite before
  /// reading.
  void Resize(size_t n) {
    Reserve(n);
    size_ = n;
  }

  /// Appends `n` elements copied from `src`, growing as needed; returns the
  /// element offset the copy landed at — the arena-handle idiom the batched
  /// PTTA rebuild uses (jobs record offsets, never pointers, so growth
  /// cannot invalidate them).
  size_t Append(const T* src, size_t n) {
    const size_t offset = size_;
    Resize(size_ + n);
    if (n > 0) std::memcpy(data_ + offset, src, n * sizeof(T));
    return offset;
  }

  /// Forgets the contents but keeps the allocation (per-batch arena reuse).
  void Clear() { size_ = 0; }

 private:
  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_ALIGNED_BUFFER_H_
