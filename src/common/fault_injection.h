#ifndef ADAMOVE_COMMON_FAULT_INJECTION_H_
#define ADAMOVE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace adamove::common {

/// Behaviour of one armed fault point each time it fires.
struct FaultSpec {
  /// Chance that an evaluation of the point fires, in [0, 1]. The decision
  /// sequence is deterministic: firing is a pure function of (registry seed,
  /// point name, per-point evaluation index), so a single-threaded replay
  /// with the same seed faults at exactly the same call indices.
  double probability = 0.0;
  /// Latency injected (sleep) every time the point fires; models slow
  /// dependencies rather than failed ones. 0 = no delay.
  int64_t delay_us = 0;
  /// Whether firing reports a failure to the instrumented call site (the
  /// site then takes its degradation path). false = delay-only fault.
  bool error = true;
};

/// Evaluation counters of one fault point (approximate under concurrency:
/// each counter is individually atomic).
struct FaultPointStats {
  uint64_t evaluations = 0;
  uint64_t fired = 0;
};

namespace fault_internal {
/// True iff at least one fault point is armed. The only state the disabled
/// hot path reads — see FaultPoint() below.
extern std::atomic<bool> g_any_armed;
/// Out-of-line evaluation of an armed registry (lookup + fire decision +
/// injected delay). Returns true when `point` fires in error mode.
bool EvaluateSlow(const char* point);
}  // namespace fault_internal

/// Process-wide catalogue of named fault points. Fault points are *always*
/// compiled into the instrumented call sites; when nothing is armed the
/// per-call cost is one relaxed atomic load and a predictable branch, and
/// the instrumented code path is bit-identical to the uninstrumented one
/// (pinned by tests).
///
/// Arming happens programmatically (Arm/Disarm) or via the ADAMOVE_FAULTS
/// environment variable, parsed once at first use:
///
///   ADAMOVE_FAULTS="point=prob[:delay_us[:noerror]](;point=...)*"
///   ADAMOVE_FAULTS_SEED=<uint64>   # decision-sequence seed (default 1)
///
/// e.g. ADAMOVE_FAULTS="serve.session_lookup=0.1;serve.encode_forward=0.05:200"
/// arms a 10% session-store failure and a 5% encoder failure with 200 us of
/// injected latency. `noerror` makes a point delay-only.
///
/// Catalogue of instrumented points (see DESIGN.md §9):
///   core.kb.ingest        OnlineAdapter::Observe — pattern dropped
///   core.kb.lookup        OnlineAdapter::Predict — frozen-only scores
///   serve.session_lookup  SessionStore::ObserveAndPredictEncoded — state
///                         unavailable, base-model fallback
///   core.state_hydrate    SessionStore cold-tier rehydration blocked —
///                         state unavailable, base-model fallback, neither
///                         tier mutated
///   serve.router_lookup   ShardedService routing fails — request admitted
///                         to a fallback group frozen-only (kDegraded)
///   serve.ptta_generate   pattern generation skipped — stale-KB prediction
///   serve.encode_forward  encoder forward fails — bounded retry
///   serve.plan_execute    static-plan execute fails — bit-identical graph
///                         fallback (request stays kOk; plan_fallbacks
///                         ticks)
///   serve.batch_flush     whole batch degrades to the base model
///   serve.adapt_schedule  elastic scheduler misfire — the batch is forced
///                         into deferred adaptation regardless of pressure
///                         (probed only in AdaptMode::kElastic services)
///   io.snapshot_write     durable_io payload write fails — commit aborted,
///                         previous durable file intact
///   io.snapshot_fsync     pre-rename fsync fails — commit aborted, previous
///                         durable file intact
///   io.snapshot_read      checkpoint/snapshot read fails — caller degrades
///                         (warm start serves the frozen base model)
class FaultRegistry {
 public:
  /// The process-wide registry (parses ADAMOVE_FAULTS on first call).
  static FaultRegistry& Instance();

  /// Arms (or re-arms) a fault point. Clamps probability to [0, 1].
  void Arm(const std::string& point, const FaultSpec& spec);

  /// Disarms one point (no-op if unknown). Its counters are kept.
  void Disarm(const std::string& point);

  /// Disarms every point and drops all counters — the "faults clear"
  /// transition of the chaos tests.
  void DisarmAll();

  /// Parses the ADAMOVE_FAULTS grammar above and arms each entry; returns
  /// false (arming nothing from the malformed entry) on a syntax error.
  bool ConfigureFromString(const std::string& config);

  /// Reseeds the deterministic fire-decision hash and resets every
  /// per-point evaluation index.
  void SetSeed(uint64_t seed);

  /// True iff `point` is currently armed.
  bool IsArmed(const std::string& point) const;

  /// Counters of one point (zeros if never evaluated).
  FaultPointStats StatsFor(const std::string& point) const;

  /// Names of all currently armed points.
  std::vector<std::string> ArmedPoints() const;

 private:
  FaultRegistry();
  friend bool fault_internal::EvaluateSlow(const char* point);

  struct State;
  State* state_;  // intentionally leaked: fault points outlive static dtors
};

/// Hot-path probe, placed at each instrumented site:
///
///   if (common::FaultPoint("serve.session_lookup")) {
///     ... degradation path ...
///   }
///
/// Returns true when the point is armed, its deterministic decision fires,
/// and the spec is an error fault (any injected delay has already been
/// slept). Zero overhead when no point is armed anywhere in the process.
inline bool FaultPoint(const char* point) {
  if (!fault_internal::g_any_armed.load(std::memory_order_relaxed)) {
    return false;
  }
  return fault_internal::EvaluateSlow(point);
}

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_FAULT_INJECTION_H_
