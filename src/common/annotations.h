#ifndef ADAMOVE_COMMON_ANNOTATIONS_H_
#define ADAMOVE_COMMON_ANNOTATIONS_H_

/// Clang thread-safety analysis attributes, wrapped so every locked
/// subsystem can state its concurrency contract in the type system and the
/// compiler proves it on each build — including the interleavings no test
/// reaches. On compilers without the attributes (GCC, MSVC) every macro
/// expands to nothing, so annotated code is portable; the contracts are
/// *checked* only by the `ADAMOVE_ANALYZE=ON` Clang build, which promotes
/// violations to errors via -Werror=thread-safety.
///
/// Conventions (see DESIGN.md §10):
///  * a shared field is declared `T x ADAMOVE_GUARDED_BY(mu_);`
///  * a private helper that assumes the lock is held is named `*Locked()`
///    and declared with `ADAMOVE_REQUIRES(mu_)`
///  * a public method that must NOT be called with the lock held (e.g. it
///    acquires it itself) is declared with `ADAMOVE_EXCLUDES(mu_)`
///  * locks are only ever held through `common::MutexLock` (a scoped
///    capability), never via manual Lock/Unlock pairs in application code.
#if defined(__clang__) && (!defined(SWIG))
#define ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a class as a lockable capability (e.g. a mutex). The string names
/// the capability kind in diagnostics ("mutex", "role", ...).
#define ADAMOVE_CAPABILITY(x) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define ADAMOVE_SCOPED_CAPABILITY \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field/variable may only be read or written while holding `x`.
#define ADAMOVE_GUARDED_BY(x) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define ADAMOVE_PT_GUARDED_BY(x) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and does
/// not release them). Attribute arguments may name sibling fields or even
/// members of the function's own parameters (`shard.mu`).
#define ADAMOVE_REQUIRES(...) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ADAMOVE_ACQUIRE(...) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases a capability acquired earlier.
#define ADAMOVE_RELEASE(...) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `result`.
#define ADAMOVE_TRY_ACQUIRE(result, ...) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (re-entry / deadlock guard).
#define ADAMOVE_EXCLUDES(...) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares that the function returns a reference to the capability that
/// guards its result (accessor pattern).
#define ADAMOVE_RETURN_CAPABILITY(x) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Runtime assertion that the capability is held; teaches the analysis a
/// fact it cannot prove (used sparingly, e.g. in callbacks).
#define ADAMOVE_ASSERT_CAPABILITY(x) \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment explaining why the contract cannot be expressed.
#define ADAMOVE_NO_THREAD_SAFETY_ANALYSIS \
  ADAMOVE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // ADAMOVE_COMMON_ANNOTATIONS_H_
