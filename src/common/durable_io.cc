#include "common/durable_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32c.h"
#include "common/fault_injection.h"

namespace adamove::common {

namespace {

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// Largest frame the parser will accept. On-disk lengths beyond this are
/// treated as corruption even when the file happens to be that large — no
/// legitimate writer produces gigabyte frames (the biggest real frame is a
/// classifier weight matrix, a few MB).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

/// Loop until all of `bytes` is written (write(2) may be short).
bool WriteAll(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory containing `path`, making the rename
/// itself durable. Failure is ignored: some filesystems reject directory
/// fsync, and the file data is already synced.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFFU);
  b[1] = static_cast<char>((v >> 8) & 0xFFU);
  b[2] = static_cast<char>((v >> 16) & 0xFFU);
  b[3] = static_cast<char>((v >> 24) & 0xFFU);
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendF32Array(std::string* out, const float* data, size_t n) {
  if (n == 0) return;  // data may be null for an empty array
  out->append(reinterpret_cast<const char*>(data), n * sizeof(float));
}

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void AppendZigzag(std::string* out, int64_t v) {
  AppendVarint(out, (static_cast<uint64_t>(v) << 1) ^
                        static_cast<uint64_t>(v >> 63));
}

bool WireReader::ReadVarint(uint64_t* v) {
  uint64_t value = 0;
  const size_t start = pos_;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= bytes_.size()) {
      pos_ = start;  // truncated: consume nothing
      return false;
    }
    const auto byte = static_cast<unsigned char>(bytes_[pos_++]);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject a 10th byte carrying bits beyond 64 (over-long encoding).
      if (shift == 63 && byte > 1) {
        pos_ = start;
        return false;
      }
      *v = value;
      return true;
    }
  }
  pos_ = start;  // continuation bit never cleared within 10 bytes
  return false;
}

bool WireReader::ReadZigzag(int64_t* v) {
  uint64_t u = 0;
  if (!ReadVarint(&u)) return false;
  *v = static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return false;
  const auto* b =
      reinterpret_cast<const unsigned char*>(bytes_.data() + pos_);
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  pos_ += 4;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return false;
  uint32_t lo = 0, hi = 0;
  ReadU32(&lo);
  ReadU32(&hi);
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool WireReader::ReadBytes(size_t n, std::string_view* out) {
  if (remaining() < n) return false;
  *out = bytes_.substr(pos_, n);
  pos_ += n;
  return true;
}

bool WireReader::ReadF32Array(size_t n, std::vector<float>* out) {
  if (n > remaining() / sizeof(float)) return false;
  out->resize(n);
  if (n != 0) {  // out->data() may be null when empty
    std::memcpy(out->data(), bytes_.data() + pos_, n * sizeof(float));
  }
  pos_ += n * sizeof(float);
  return true;
}

std::string TempPathFor(const std::string& path) { return path + ".tmp"; }

IoResult WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string temp = TempPathFor(path);
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoResult::Fail(Errno("open", temp));

  // Injected write failure (full disk, IO error): the temp file is removed
  // and the previous durable version of `path` is untouched.
  if (FaultPoint("io.snapshot_write") || !WriteAll(fd, bytes)) {
    ::close(fd);
    ::unlink(temp.c_str());
    return IoResult::Fail(Errno("write", temp));
  }
  // A commit is only claimed durable after the data reaches stable storage;
  // renaming an unsynced temp could survive a crash with torn contents, so
  // a failed (or injected) fsync aborts the whole commit.
  if (FaultPoint("io.snapshot_fsync") || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp.c_str());
    return IoResult::Fail(Errno("fsync", temp));
  }
  if (::close(fd) != 0) {
    ::unlink(temp.c_str());
    return IoResult::Fail(Errno("close", temp));
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return IoResult::Fail(Errno("rename", path));
  }
  SyncParentDir(path);
  return IoResult::Ok();
}

IoResult ReadFileAll(const std::string& path, std::string* out) {
  out->clear();
  if (FaultPoint("io.snapshot_read")) {
    return IoResult::Fail("read '" + path + "': injected io.snapshot_read");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoResult::Fail(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return IoResult::Fail(Errno("stat", path));
  }
  out->reserve(static_cast<size_t>(st.st_size));
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoResult::Fail(Errno("read", path));
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return IoResult::Ok();
}

FramedFileWriter::FramedFileWriter(uint32_t magic) {
  AppendU32(&buffer_, magic);
}

void FramedFileWriter::AddFrame(std::string_view payload) {
  AppendU32(&buffer_, static_cast<uint32_t>(payload.size()));
  AppendU32(&buffer_, MaskCrc32c(Crc32c(payload.data(), payload.size())));
  buffer_.append(payload.data(), payload.size());
  ++frame_count_;
}

IoResult FramedFileWriter::Commit(const std::string& path) const {
  return WriteFileAtomic(path, buffer_);
}

IoResult ParseFramedBytes(std::string_view bytes, uint32_t expected_magic,
                          FramedRead* out) {
  out->frames.clear();
  out->torn_tail = false;
  WireReader reader(bytes);
  uint32_t magic = 0;
  if (!reader.ReadU32(&magic)) {
    return IoResult::Fail("framed file shorter than its magic");
  }
  if (magic != expected_magic) {
    char hex[16];
    std::snprintf(hex, sizeof(hex), "%08X", magic);
    return IoResult::Fail("bad magic (found 0x" + std::string(hex) + ")");
  }
  while (!reader.AtEnd()) {
    const size_t frame_index = out->frames.size();
    // Fewer bytes than a frame header: the writer (or the filesystem) was
    // cut off mid-append — a clean torn tail, not corruption.
    if (reader.remaining() < 8) {
      out->torn_tail = true;
      return IoResult::Ok();
    }
    uint32_t length = 0, masked_crc = 0;
    reader.ReadU32(&length);
    reader.ReadU32(&masked_crc);
    if (length > kMaxFrameBytes) {
      return IoResult::Fail("frame " + std::to_string(frame_index) +
                            ": length " + std::to_string(length) +
                            " exceeds the frame cap");
    }
    if (length > reader.remaining()) {
      out->torn_tail = true;  // payload cut off mid-write
      return IoResult::Ok();
    }
    std::string_view payload;
    reader.ReadBytes(length, &payload);
    const uint32_t crc = Crc32c(payload.data(), payload.size());
    if (MaskCrc32c(crc) != masked_crc) {
      return IoResult::Fail("frame " + std::to_string(frame_index) +
                            ": crc32c mismatch");
    }
    out->frames.emplace_back(payload);
  }
  return IoResult::Ok();
}

IoResult ReadFramedFile(const std::string& path, uint32_t expected_magic,
                        FramedRead* out) {
  std::string bytes;
  IoResult read = ReadFileAll(path, &bytes);
  if (!read) return read;
  IoResult parsed = ParseFramedBytes(bytes, expected_magic, out);
  if (!parsed) {
    parsed.error = "'" + path + "': " + parsed.error;
  }
  return parsed;
}

}  // namespace adamove::common
