#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace adamove::common {

SlabArena::SlabArena(size_t slab_bytes) : slab_bytes_(slab_bytes) {
  ADAMOVE_CHECK_GE(slab_bytes_, 1024u);
  // Geometric size classes (x1.5): 32, 48, 64, 96, ... up to one slab.
  // x1.5 keeps worst-case internal waste at ~33% while needing only ~20
  // classes to span 32 B .. 64 KiB.
  size_t lo = 32;
  while (lo <= slab_bytes_) {
    classes_.push_back(SizeClass{lo, {}, {}, 0});
    const size_t hi = lo + lo / 2;
    if (hi <= lo) break;  // overflow guard (absurd slab_bytes)
    lo = hi;
  }
}

size_t SlabArena::SlotSizeFor(size_t n) const {
  for (const SizeClass& c : classes_) {
    if (n <= c.slot_bytes) return c.slot_bytes;
  }
  return n;  // oversize: exact heap block
}

SlabArena::Block SlabArena::Allocate(size_t n) {
  ADAMOVE_CHECK_GT(n, 0u);
  stats_.allocations += 1;
  stats_.live_blocks += 1;
  stats_.used_bytes += n;
  Block block;
  block.size = static_cast<uint32_t>(n);
  for (size_t ci = 0; ci < classes_.size(); ++ci) {
    SizeClass& c = classes_[ci];
    if (n > c.slot_bytes) continue;
    block.cls = static_cast<int32_t>(ci);
    if (!c.free_list.empty()) {
      block.data = c.free_list.back();
      c.free_list.pop_back();
      return block;
    }
    if (c.slabs.empty() || c.bump_offset + c.slot_bytes > slab_bytes_) {
      c.slabs.push_back(std::make_unique<char[]>(slab_bytes_));
      c.bump_offset = 0;
      stats_.reserved_bytes += slab_bytes_;
    }
    block.data = c.slabs.back().get() + c.bump_offset;
    c.bump_offset += c.slot_bytes;
    return block;
  }
  // Oversize: individually owned, exact-size heap block.
  auto owned = std::make_unique<char[]>(n);
  block.data = owned.get();
  block.cls = -1;
  stats_.reserved_bytes += n;
  stats_.oversize_blocks += 1;
  oversize_.emplace(block.data, std::move(owned));
  return block;
}

void SlabArena::Free(const Block& block) {
  ADAMOVE_CHECK(block.data != nullptr);
  stats_.frees += 1;
  ADAMOVE_CHECK_GT(stats_.live_blocks, 0u);
  stats_.live_blocks -= 1;
  stats_.used_bytes -= block.size;
  if (block.cls < 0) {
    auto it = oversize_.find(block.data);
    ADAMOVE_CHECK(it != oversize_.end());
    stats_.reserved_bytes -= block.size;
    stats_.oversize_blocks -= 1;
    oversize_.erase(it);
    return;
  }
  ADAMOVE_CHECK_LT(static_cast<size_t>(block.cls), classes_.size());
  classes_[static_cast<size_t>(block.cls)].free_list.push_back(block.data);
}

}  // namespace adamove::common
