#ifndef ADAMOVE_COMMON_ENV_H_
#define ADAMOVE_COMMON_ENV_H_

#include <cstdlib>
#include <string>

namespace adamove::common {

/// Reads a double-valued environment override (e.g. ADAMOVE_BENCH_SCALE);
/// returns `fallback` when unset or unparsable.
inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

/// Reads an integer-valued environment override; returns `fallback` when
/// unset or unparsable.
inline int EnvInt(const char* name, int fallback) {
  return static_cast<int>(EnvDouble(name, static_cast<double>(fallback)));
}

/// Reads a string-valued environment override (e.g. ADAMOVE_FORWARD);
/// returns `fallback` when unset or empty.
inline std::string EnvString(const char* name, const char* fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_ENV_H_
