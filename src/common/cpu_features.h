#ifndef ADAMOVE_COMMON_CPU_FEATURES_H_
#define ADAMOVE_COMMON_CPU_FEATURES_H_

#include <string>

namespace adamove::common {

// Runtime CPU feature detection behind the kernel backend dispatch
// (nn/kernels.h): the binary is compiled for the baseline ISA everywhere
// except the per-file vector translation units, and these probes decide at
// startup which of those units the dispatch table may point into.

/// True when the host CPU executes AVX2 instructions (x86 only; false on
/// every other architecture).
bool CpuHasAvx2();

/// True when the host CPU executes FMA3 instructions (x86 only).
bool CpuHasFma();

/// True when this binary targets AArch64/NEON (NEON is architecturally
/// mandatory there, so this is a compile-time fact, not a CPUID probe).
bool CpuHasNeon();

/// Human-readable summary of the vector features relevant to the kernel
/// backends, e.g. "avx2+fma", "avx2", "neon" or "baseline". Stable enough
/// to embed in benchmark context blocks.
std::string CpuFeatureString();

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_CPU_FEATURES_H_
