#ifndef ADAMOVE_COMMON_TABLE_PRINTER_H_
#define ADAMOVE_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace adamove::common {

/// Formats aligned ASCII tables for the benchmark harness so every bench
/// binary prints rows in the same style as the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; the number of cells must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to 4 decimals (the paper's precision).
  static std::string Fmt(double v, int precision = 4);

  /// Renders the table with a separator line under the header.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_TABLE_PRINTER_H_
