#ifndef ADAMOVE_COMMON_LATENCY_HISTOGRAM_H_
#define ADAMOVE_COMMON_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/check.h"

namespace adamove::common {

/// Log-bucketed latency histogram (microsecond-valued, HdrHistogram-style):
/// bucket k covers [kMinValueUs * kGrowth^k, kMinValueUs * kGrowth^(k+1)),
/// so relative quantile error is bounded by the ~9 % bucket width across the
/// whole 1 µs .. ~100 s range with a fixed 256-slot footprint.
///
/// Not internally synchronized: the serving workers each own one histogram
/// per stage and the reporter Merge()s them — merging is exact because every
/// instance shares the same bucket layout.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 256;
  static constexpr double kMinValueUs = 1.0;
  static constexpr double kGrowth = 1.09;

  void Record(double value_us) {
    counts_[static_cast<size_t>(BucketIndex(value_us))]++;
    count_++;
    sum_us_ += value_us;
    max_us_ = std::max(max_us_, value_us);
  }

  /// Adds `other`'s samples into this histogram (exact, same layout).
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) counts_[static_cast<size_t>(i)] +=
        other.counts_[static_cast<size_t>(i)];
    count_ += other.count_;
    sum_us_ += other.sum_us_;
    max_us_ = std::max(max_us_, other.max_us_);
  }

  /// Quantile estimate in microseconds, q in [0, 1]; linear interpolation by
  /// rank position inside the chosen bucket. 0 when empty.
  double QuantileUs(double q) const {
    if (count_ == 0) return 0.0;
    ADAMOVE_CHECK_GE(q, 0.0);
    ADAMOVE_CHECK_LE(q, 1.0);
    // Rank of the requested sample, 1-based, clamped into [1, count_].
    const uint64_t rank = std::min<uint64_t>(
        count_, std::max<uint64_t>(
                    1, static_cast<uint64_t>(
                           std::ceil(q * static_cast<double>(count_)))));
    uint64_t cumulative = 0;
    for (int k = 0; k < kNumBuckets; ++k) {
      const uint64_t c = counts_[static_cast<size_t>(k)];
      if (cumulative + c >= rank) {
        const double lo = BucketLowerUs(k);
        const double hi = BucketUpperUs(k);
        const double within =
            static_cast<double>(rank - cumulative) / static_cast<double>(c);
        // Clamp to the observed max: interpolation inside the top occupied
        // bucket must not report a latency that never happened.
        return std::min(lo + (hi - lo) * within, max_us_);
      }
      cumulative += c;
    }
    return max_us_;  // unreachable unless counts_/count_ diverge
  }

  uint64_t Count() const { return count_; }
  double SumUs() const { return sum_us_; }
  double MaxUs() const { return max_us_; }
  double MeanUs() const {
    return count_ == 0 ? 0.0 : sum_us_ / static_cast<double>(count_);
  }

  void Reset() {
    counts_.fill(0);
    count_ = 0;
    sum_us_ = 0.0;
    max_us_ = 0.0;
  }

  /// Bucket index of a value (exposed for tests of the boundary math).
  static int BucketIndex(double value_us) {
    if (!(value_us > kMinValueUs)) return 0;  // also catches NaN / negatives
    const int k = static_cast<int>(std::log(value_us / kMinValueUs) /
                                   std::log(kGrowth));
    return std::min(k, kNumBuckets - 1);
  }

  static double BucketLowerUs(int k) {
    return kMinValueUs * std::pow(kGrowth, k);
  }
  static double BucketUpperUs(int k) {
    return kMinValueUs * std::pow(kGrowth, k + 1);
  }

  /// "p50=… p95=… p99=… max=…" in milliseconds — the serving report format.
  std::string SummaryMs() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms",
                  QuantileUs(0.50) / 1000.0, QuantileUs(0.95) / 1000.0,
                  QuantileUs(0.99) / 1000.0, max_us_ / 1000.0);
    return std::string(buf);
  }

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double max_us_ = 0.0;
};

}  // namespace adamove::common

#endif  // ADAMOVE_COMMON_LATENCY_HISTOGRAM_H_
