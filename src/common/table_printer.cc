#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace adamove::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ADAMOVE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ADAMOVE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  // Built by string appends (block padding, not per-char stream inserts).
  std::string result;
  auto emit_row = [&](const std::vector<std::string>& row) {
    result += '|';
    for (size_t c = 0; c < row.size(); ++c) {
      result += ' ';
      result += row[c];
      result.append(widths[c] - row[c].size(), ' ');
      result += " |";
    }
    result += '\n';
  };
  emit_row(header_);
  result += '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    result.append(widths[c] + 2, '-');
    result += '|';
  }
  result += '\n';
  for (const auto& row : rows_) emit_row(row);
  return result;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace adamove::common
