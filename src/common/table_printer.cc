#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace adamove::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ADAMOVE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ADAMOVE_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << v;
  return oss.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      oss << ' ' << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) oss << ' ';
      oss << " |";
    }
    oss << '\n';
  };
  emit_row(header_);
  oss << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) oss << '-';
    oss << '|';
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace adamove::common
