#include "common/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/annotations.h"
#include "common/mutex.h"

namespace adamove::common {

namespace fault_internal {
std::atomic<bool> g_any_armed{false};
}  // namespace fault_internal

namespace {

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* s) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic fire decision for evaluation index `n` of a point:
/// a pure function of (seed, name, n), uniform on [0, 1).
double FireUniform(uint64_t seed, uint64_t name_hash, uint64_t n) {
  const uint64_t u = Mix64(Mix64(seed ^ name_hash) ^ n);
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

struct PointState {
  uint64_t name_hash = 0;
  bool armed = false;
  FaultSpec spec;
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> fired{0};
};

}  // namespace

struct FaultRegistry::State {
  mutable Mutex mu;
  // Pointer stability: PointState holds atomics and is referenced while the
  // map grows under new Arm() calls.
  std::unordered_map<std::string, std::unique_ptr<PointState>> points
      ADAMOVE_GUARDED_BY(mu);
  uint64_t seed ADAMOVE_GUARDED_BY(mu) = 1;
  int armed_count ADAMOVE_GUARDED_BY(mu) = 0;
};

FaultRegistry::FaultRegistry()
    : state_(new State) {  // NOLINT: intentionally leaked, outlives statics
  const char* seed_env = std::getenv("ADAMOVE_FAULTS_SEED");
  if (seed_env != nullptr && *seed_env != '\0') {
    MutexLock lock(state_->mu);
    state_->seed = std::strtoull(seed_env, nullptr, 10);
  }
  const char* faults = std::getenv("ADAMOVE_FAULTS");
  if (faults != nullptr && *faults != '\0') {
    ConfigureFromString(faults);
  }
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance =
      new FaultRegistry();  // NOLINT: leaked on purpose
  return *instance;
}

void FaultRegistry::Arm(const std::string& point, const FaultSpec& spec) {
  MutexLock lock(state_->mu);
  auto [it, inserted] =
      state_->points.try_emplace(point, std::make_unique<PointState>());
  PointState& ps = *it->second;
  if (inserted) ps.name_hash = HashName(point.c_str());
  if (!ps.armed) ++state_->armed_count;
  ps.armed = true;
  ps.spec = spec;
  ps.spec.probability = std::min(1.0, std::max(0.0, spec.probability));
  fault_internal::g_any_armed.store(state_->armed_count > 0,
                                    std::memory_order_relaxed);
}

void FaultRegistry::Disarm(const std::string& point) {
  MutexLock lock(state_->mu);
  auto it = state_->points.find(point);
  if (it == state_->points.end() || !it->second->armed) return;
  it->second->armed = false;
  --state_->armed_count;
  fault_internal::g_any_armed.store(state_->armed_count > 0,
                                    std::memory_order_relaxed);
}

void FaultRegistry::DisarmAll() {
  MutexLock lock(state_->mu);
  state_->points.clear();
  state_->armed_count = 0;
  fault_internal::g_any_armed.store(false, std::memory_order_relaxed);
}

bool FaultRegistry::ConfigureFromString(const std::string& config) {
  bool all_ok = true;
  size_t pos = 0;
  while (pos <= config.size()) {
    size_t end = config.find_first_of(";,", pos);
    if (end == std::string::npos) end = config.size();
    const std::string entry = config.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      all_ok = false;
      continue;
    }
    const std::string name = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    FaultSpec spec;
    char* cursor = nullptr;
    spec.probability = std::strtod(value.c_str(), &cursor);
    if (cursor == value.c_str() || spec.probability < 0.0 ||
        spec.probability > 1.0) {
      all_ok = false;
      continue;
    }
    if (*cursor == ':') {
      const char* delay_begin = cursor + 1;
      spec.delay_us = std::strtoll(delay_begin, &cursor, 10);
      if (cursor == delay_begin || spec.delay_us < 0) {
        all_ok = false;
        continue;
      }
    }
    if (*cursor == ':') {
      if (std::strcmp(cursor + 1, "noerror") != 0) {
        all_ok = false;
        continue;
      }
      spec.error = false;
    } else if (*cursor != '\0') {
      all_ok = false;
      continue;
    }
    Arm(name, spec);
  }
  return all_ok;
}

void FaultRegistry::SetSeed(uint64_t seed) {
  MutexLock lock(state_->mu);
  state_->seed = seed;
  for (auto& [name, ps] : state_->points) {
    ps->evaluations.store(0, std::memory_order_relaxed);
    ps->fired.store(0, std::memory_order_relaxed);
  }
}

bool FaultRegistry::IsArmed(const std::string& point) const {
  MutexLock lock(state_->mu);
  auto it = state_->points.find(point);
  return it != state_->points.end() && it->second->armed;
}

FaultPointStats FaultRegistry::StatsFor(const std::string& point) const {
  MutexLock lock(state_->mu);
  auto it = state_->points.find(point);
  FaultPointStats stats;
  if (it == state_->points.end()) return stats;
  stats.evaluations = it->second->evaluations.load(std::memory_order_relaxed);
  stats.fired = it->second->fired.load(std::memory_order_relaxed);
  return stats;
}

std::vector<std::string> FaultRegistry::ArmedPoints() const {
  MutexLock lock(state_->mu);
  std::vector<std::string> names;
  for (const auto& [name, ps] : state_->points) {
    if (ps->armed) names.push_back(name);
  }
  return names;
}

namespace {

// Eagerly construct the registry at load time. The hot path only reads
// g_any_armed, so without this touch a process that never calls the
// programmatic API would leave ADAMOVE_FAULTS unread and env-armed points
// silently inert.
[[maybe_unused]] const bool g_env_initialized =
    (FaultRegistry::Instance(), true);

}  // namespace

namespace fault_internal {

bool EvaluateSlow(const char* point) {
  FaultRegistry::State& state = *FaultRegistry::Instance().state_;
  uint64_t delay_us = 0;
  bool error = false;
  {
    MutexLock lock(state.mu);
    auto it = state.points.find(point);
    if (it == state.points.end() || !it->second->armed) return false;
    PointState& ps = *it->second;
    const uint64_t n = ps.evaluations.fetch_add(1, std::memory_order_relaxed);
    if (FireUniform(state.seed, ps.name_hash, n) >= ps.spec.probability) {
      return false;
    }
    ps.fired.fetch_add(1, std::memory_order_relaxed);
    delay_us = static_cast<uint64_t>(ps.spec.delay_us);
    error = ps.spec.error;
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return error;
}

}  // namespace fault_internal

}  // namespace adamove::common
