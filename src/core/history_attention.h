#ifndef ADAMOVE_CORE_HISTORY_ATTENTION_H_
#define ADAMOVE_CORE_HISTORY_ATTENTION_H_

#include <memory>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::core {

/// The attention that fuses historical-trajectory knowledge into recent
/// representations (Eqs. 7–8): Q is projected from the recent hiddens, K/V
/// from the historical hiddens, and the history-enhanced representations are
/// H̃_rec = Softmax(QKᵀ/√d_k) V. Used by LightMob at training time (to build
/// contrastive targets) and by DeepMove/DeepTTA at inference.
class HistoryAttention : public nn::Module {
 public:
  HistoryAttention(int64_t hidden_size, common::Rng& rng);

  /// h_hist: {T_h, H}, h_rec: {T_r, H} -> {T_r, H}.
  nn::Tensor Forward(const nn::Tensor& h_hist, const nn::Tensor& h_rec) const;

 private:
  std::unique_ptr<nn::Linear> wq_;
  std::unique_ptr<nn::Linear> wk_;
  std::unique_ptr<nn::Linear> wv_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_HISTORY_ATTENTION_H_
