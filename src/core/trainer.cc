#include "core/trainer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace adamove::core {

namespace {

// Validation Rec@1 on (a deterministic subset of) the validation samples.
double ValidationRec1(MobilityModel& model,
                      const std::vector<data::Sample>& val, int max_samples) {
  if (val.empty()) return 0.0;
  const size_t n = max_samples > 0
                       ? std::min(val.size(), static_cast<size_t>(max_samples))
                       : val.size();
  const size_t stride = std::max<size_t>(1, val.size() / n);
  MetricAccumulator acc;
  for (size_t i = 0; i < val.size(); i += stride) {
    acc.Add(model.Scores(val[i]), val[i].target.location);
  }
  return acc.Result().rec1;
}

}  // namespace

std::vector<EpochLog> Trainer::Train(MobilityModel& model,
                                     const data::Dataset& dataset) const {
  ADAMOVE_CHECK(!dataset.train.empty());
  common::Rng rng(config_.seed);
  nn::Adam optimizer(model.Parameters(), config_.learning_rate);
  nn::PlateauDecay scheduler(config_.decay_factor, config_.min_learning_rate,
                             config_.plateau_patience);

  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochLog> logs;
  const float inv_batch = 1.0f / static_cast<float>(config_.batch_size);
  const size_t epoch_samples =
      config_.max_train_samples_per_epoch > 0
          ? std::min(order.size(),
                     static_cast<size_t>(config_.max_train_samples_per_epoch))
          : order.size();
  for (int epoch = 1; epoch <= config_.max_epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    int in_batch = 0;
    optimizer.ZeroGrad();
    for (size_t i = 0; i < epoch_samples; ++i) {
      const size_t idx = order[i];
      nn::Tensor loss =
          model.Loss(dataset.train[idx], /*training=*/true);
      loss_sum += loss.item();
      // Average gradients over the batch.
      nn::ScalarMul(loss, inv_batch).Backward();
      if (++in_batch == config_.batch_size) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    EpochLog log;
    log.epoch = epoch;
    log.train_loss = loss_sum / static_cast<double>(epoch_samples);
    log.val_rec1 =
        ValidationRec1(model, dataset.val, config_.max_val_samples);
    const bool keep_going = scheduler.Update(log.val_rec1, optimizer);
    log.learning_rate = optimizer.learning_rate();
    logs.push_back(log);
    if (config_.verbose) {
      std::fprintf(stderr,
                   "[%s] epoch %d loss %.4f val@1 %.4f lr %.2e\n",
                   model.name().c_str(), epoch, log.train_loss, log.val_rec1,
                   log.learning_rate);
    }
    if (!keep_going) break;  // lr reached min: the paper's early stop
  }
  return logs;
}

}  // namespace adamove::core
