#ifndef ADAMOVE_CORE_FORWARD_PLAN_H_
#define ADAMOVE_CORE_FORWARD_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/annotations.h"
#include "common/mutex.h"
#include "core/encoder.h"
#include "core/model.h"
#include "nn/plan/executor.h"
#include "nn/plan/verifier.h"

namespace adamove::core {

/// Which encode path serves inference (DESIGN.md §14):
///  - kGraph: walk the autograd graph per request (the bit-identical
///    reference; allocates TensorImpl nodes per op);
///  - kPlan: execute a compiled static forward plan (same arithmetic, zero
///    heap allocations per request).
enum class ForwardMode : uint8_t { kGraph, kPlan };

/// Reads ADAMOVE_FORWARD (``graph`` | ``plan``; default graph). Unknown
/// values fall back to graph — the reference path is always safe.
ForwardMode ForwardModeFromEnv();

/// Per-thread (or per-serving-worker) mutable state for plan execution.
/// Everything reuses capacity: after the first request of a given shape,
/// encoding a sample performs zero heap allocations.
struct PlanScratch {
  nn::plan::PlanExecutor executor;
  std::vector<int64_t> locs;
  std::vector<int64_t> slots;
  std::vector<int64_t> users;
  common::AlignedBuffer<float> reps;  // {rows, cols} encode output
  int64_t rows = 0;
  int64_t cols = 0;
};

/// Compiles and caches static forward plans for one AdaptableModel, keyed
/// by sequence length (the only shape degree of freedom at serve time).
/// Thread-safe; plans are immutable and shared, executors live in
/// caller-owned PlanScratch.
///
/// Staleness: plans borrow the model's weight storage. Cached plans are
/// revalidated on every use by comparing their weight-pointer fingerprint
/// against the live model (allocation-free), which catches any checkpoint
/// hot-swap that reallocated tensor storage; an in-place overwrite keeps
/// pointers valid and needs no invalidation at all. InvalidateAll() is the
/// explicit belt-and-suspenders hook serving calls on hot-swap.
///
/// Verification: every freshly compiled plan is run through the static
/// verifier (nn/plan/verifier.h) before it may serve — once per compile,
/// zero per-request cost. A rejected plan is never cached or executed; the
/// sequence length is remembered as rejected (until weights change or
/// InvalidateAll) and callers fall back to the graph walk, with
/// verify_rejects() feeding ServiceStats::plan_verify_rejects.
/// ADAMOVE_PLAN_VERIFY picks the mode: `off`, `compile` (default), or
/// `paranoid` — the latter re-verifies the cached plan on every
/// weight-pointer revalidation, a corruption-hunting mode that puts the
/// verifier's cost (and allocations) on the request path.
class ForwardPlanner {
 public:
  explicit ForwardPlanner(const AdaptableModel& model);

  /// Whether the model exposed a trajectory encoder to trace. (A traceable
  /// model can still fail to compile — e.g. a transformer sequence layer —
  /// in which case EncodeInto returns false and callers use graph mode.)
  bool traceable() const { return seq_ != nullptr; }

  /// Encodes sample.recent through the compiled plan into scratch->reps
  /// ({scratch->rows, scratch->cols}, row k = prefix representation h_k).
  /// Returns false when no plan is available (untraceable model or encoder
  /// family); the caller falls back to the graph path. Bit-identical to
  /// graph-mode PrefixRepresentations under every backend.
  bool EncodeInto(const data::Sample& sample, PlanScratch* scratch);

  /// Drops every cached plan. Call after a checkpoint hot-swap; the next
  /// request recompiles against the new weights.
  void InvalidateAll();

  /// Plan compilations so far (distinct sequence lengths, plus recompiles
  /// after invalidation) — a test/diagnostic counter.
  int64_t compiles() const;

  /// Verifier runs so far. In kCompile mode this tracks compiles() (one
  /// verification per accepted compile); steady-state cache hits add
  /// nothing — the "0 ns per request" half of the bench gate.
  int64_t verifies() const;

  /// Plans the verifier rejected (each followed by a graph fallback).
  int64_t verify_rejects() const;

  /// Overrides the ADAMOVE_PLAN_VERIFY mode read at construction. Test
  /// hook; also drops cached rejection verdicts so the new mode applies.
  void SetVerifyModeForTest(nn::plan::VerifyMode mode);

 private:
  std::shared_ptr<const nn::plan::CompiledPlan> PlanFor(int64_t t);

  // Borrowed component pointers (stable: they are unique_ptr members of
  // the model); null when the model has no trajectory encoder.
  const PointEmbedding* embedding_ = nullptr;
  const nn::SequenceEncoder* seq_ = nullptr;
  std::vector<const nn::Embedding*> tables_;

  mutable common::Mutex mu_;
  std::map<int64_t, std::shared_ptr<const nn::plan::CompiledPlan>> plans_
      ADAMOVE_GUARDED_BY(mu_);
  int64_t compiles_ ADAMOVE_GUARDED_BY(mu_) = 0;
  int64_t verifies_ ADAMOVE_GUARDED_BY(mu_) = 0;
  int64_t verify_rejects_ ADAMOVE_GUARDED_BY(mu_) = 0;
  bool untraceable_ ADAMOVE_GUARDED_BY(mu_) = false;
  nn::plan::VerifyMode verify_mode_ ADAMOVE_GUARDED_BY(mu_);
  // Sequence lengths whose compiled plan failed verification for the
  // current weights: steady state pays one set lookup instead of a
  // recompile-and-reject per request. Cleared when weights move or on
  // InvalidateAll.
  std::set<int64_t> rejected_ ADAMOVE_GUARDED_BY(mu_);
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_FORWARD_PLAN_H_
