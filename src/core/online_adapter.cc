#include "core/online_adapter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/parallel_for.h"
#include "core/ptta.h"
#include "nn/kernels.h"

namespace adamove::core {

namespace {

/// Frozen-classifier scores without bias, written into `scores` (resized to
/// num_locations; zero-filled first because VecMatColsF64 accumulates):
/// scores[l] = query · θ_l. Shared by every predict flavour — adapted,
/// frozen, batched — so the fallback path is arithmetically identical to the
/// untouched-column path. VecMatColsF64 keeps the historical ascending-i
/// double accumulation per column on every backend.
void FrozenColumnScoresInto(const nn::Linear& classifier, const float* query,
                            int64_t hidden, std::vector<float>* scores) {
  ADAMOVE_CHECK_EQ(hidden, classifier.in_features());
  const int64_t num_loc = classifier.out_features();
  const std::vector<float>& weight = classifier.weight().data();
  scores->resize(static_cast<size_t>(num_loc));
  std::fill(scores->begin(), scores->end(), 0.0f);
  nn::kernels::VecMatColsF64(query, weight.data(), scores->data(), hidden,
                             num_loc);
}

void AddBias(const nn::Linear& classifier, std::vector<float>* scores) {
  if (!classifier.has_bias()) return;
  const auto& bias = classifier.bias().data();
  for (size_t l = 0; l < scores->size(); ++l) (*scores)[l] += bias[l];
}

float Cosine(const float* a, size_t n, const std::vector<float>& b) {
  ADAMOVE_CHECK_EQ(n, b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12 ? static_cast<float>(dot / denom) : 0.0f;
}

}  // namespace

void OnlineAdapter::Observe(int64_t user, const std::vector<float>& pattern,
                            int64_t next_location, int64_t timestamp) {
  ADAMOVE_CHECK(!pattern.empty());
  // Simulated ingestion failure: the pattern is dropped, the knowledge base
  // stays consistent (it just never saw this transition).
  if (common::FaultPoint("core.kb.ingest")) return;
  auto& entries = users_[user].by_location[next_location];
  entries.push_back(Entry{pattern, timestamp});
  if (entries.size() > kMaxCandidatesPerLocation) {
    entries.erase(entries.begin());  // FIFO: drop the oldest candidate
  }
}

size_t OnlineAdapter::ObserveDeferred(int64_t user,
                                      std::vector<float>&& pattern,
                                      int64_t next_location,
                                      int64_t timestamp) {
  ADAMOVE_CHECK(!pattern.empty());
  UserState& state = users_[user];
  state.pending.push_back(
      PendingDelta{std::move(pattern), next_location, timestamp});
  dirty_.insert(user);
  // Exact coalescing: Observe's per-location FIFO cap keeps only the newest
  // kMaxCandidatesPerLocation entries, so once that many deltas for one
  // location are buffered, the oldest buffered delta for it could never
  // survive the drain — drop it now and the post-drain state is unchanged.
  size_t for_location = 0;
  for (const PendingDelta& delta : state.pending) {
    if (delta.next_location == next_location) ++for_location;
  }
  if (for_location <= kMaxCandidatesPerLocation) return 0;
  for (auto it = state.pending.begin(); it != state.pending.end(); ++it) {
    if (it->next_location == next_location) {
      state.pending.erase(it);
      break;
    }
  }
  return 1;
}

size_t OnlineAdapter::DrainPending(int64_t user) {
  auto it = users_.find(user);
  if (it == users_.end() || it->second.pending.empty()) return 0;
  // Move the buffer out first: Observe touches users_ and could in
  // principle rehash the map under us.
  std::vector<PendingDelta> pending = std::move(it->second.pending);
  it->second.pending.clear();
  dirty_.erase(user);
  for (PendingDelta& delta : pending) {
    Observe(user, delta.pattern, delta.next_location, delta.timestamp);
  }
  return pending.size();
}

size_t OnlineAdapter::DrainSomePending(size_t max_users) {
  size_t drained = 0;
  while (!dirty_.empty() && (max_users == 0 || drained < max_users)) {
    DrainPending(*dirty_.begin());
    ++drained;
  }
  return drained;
}

size_t OnlineAdapter::PendingCount(int64_t user) const {
  auto it = users_.find(user);
  return it == users_.end() ? 0 : it->second.pending.size();
}

size_t OnlineAdapter::PendingTotal() const {
  size_t n = 0;
  for (int64_t user : dirty_) n += PendingCount(user);
  return n;
}

void OnlineAdapter::StoreRebuildCache(
    int64_t user, const std::vector<RebuildJob>& jobs,
    const common::AlignedBuffer<float>& arena) {
  auto it = users_.find(user);
  if (it == users_.end()) return;
  CachedRebuild& cache = it->second.cache;
  cache.jobs.clear();
  cache.patterns.clear();
  if (jobs.empty()) return;
  // A job's block spans keep * width floats; the width is the user's
  // pattern dimension, recoverable from any stored entry (jobs only exist
  // when entries do).
  size_t width = 0;
  for (const auto& [location, entries] : it->second.by_location) {
    if (!entries.empty()) {
      width = entries.front().pattern.size();
      break;
    }
  }
  if (width == 0) return;
  cache.jobs.reserve(jobs.size());
  for (const RebuildJob& job : jobs) {
    const size_t len = static_cast<size_t>(job.keep) * width;
    ADAMOVE_CHECK_LE(job.arena_offset + len, arena.size());
    RebuildJob rebased = job;
    rebased.arena_offset = cache.patterns.size();
    cache.patterns.insert(cache.patterns.end(),
                          arena.data() + job.arena_offset,
                          arena.data() + job.arena_offset + len);
    cache.jobs.push_back(rebased);
  }
}

size_t OnlineAdapter::CollectCachedJobs(int64_t user,
                                        common::AlignedBuffer<float>* arena,
                                        std::vector<RebuildJob>* jobs) const {
  auto it = users_.find(user);
  if (it == users_.end() || it->second.cache.jobs.empty()) return 0;
  const CachedRebuild& cache = it->second.cache;
  const size_t base = arena->size();
  arena->Append(cache.patterns.data(), cache.patterns.size());
  for (const RebuildJob& job : cache.jobs) {
    RebuildJob rebased = job;
    rebased.arena_offset += base;
    jobs->push_back(rebased);
  }
  return cache.jobs.size();
}

bool OnlineAdapter::HasRebuildCache(int64_t user) const {
  auto it = users_.find(user);
  return it != users_.end() && !it->second.cache.jobs.empty();
}

void OnlineAdapter::PredictFrozenInto(const AdaptableModel& model,
                                      const float* query, int64_t hidden,
                                      std::vector<float>* scores) {
  // Serial kernels: the pool path would allocate per-range futures, and the
  // §13 determinism contract makes scheduling value-neutral anyway.
  common::SerialKernelRegion serial;
  const nn::Linear& classifier = model.classifier();
  FrozenColumnScoresInto(classifier, query, hidden, scores);
  AddBias(classifier, scores);
}

std::vector<float> OnlineAdapter::PredictFrozen(
    const AdaptableModel& model, const std::vector<float>& query) {
  std::vector<float> scores;
  PredictFrozenInto(model, query.data(),
                    static_cast<int64_t>(query.size()), &scores);
  return scores;
}

size_t OnlineAdapter::CollectRebuildJobs(
    int64_t user, const std::vector<float>& query, int64_t query_time,
    common::AlignedBuffer<float>* arena,
    std::vector<RebuildJob>* jobs) const {
  // Ranking scratch hoisted out of the per-location loop: one allocation
  // per collect instead of one per adapted location. (The zero-alloc path
  // passes a reused scratch through the pointer overload instead.)
  std::vector<std::pair<float, const Entry*>> fresh;
  return CollectRebuildJobs(user, query.data(),
                            static_cast<int64_t>(query.size()), query_time,
                            arena, jobs, &fresh);
}

size_t OnlineAdapter::CollectRebuildJobs(
    int64_t user, const float* query, int64_t hidden, int64_t query_time,
    common::AlignedBuffer<float>* arena, std::vector<RebuildJob>* jobs,
    std::vector<std::pair<float, const Entry*>>* fresh) const {
  // Simulated knowledge-base lookup failure: the per-user adjustment is
  // skipped and the frozen scores stand — a valid base-model prediction.
  auto it = common::FaultPoint("core.kb.lookup") ? users_.end()
                                                 : users_.find(user);
  if (it == users_.end()) return 0;
  const size_t width = static_cast<size_t>(hidden);
  size_t appended = 0;
  for (const auto& [location, entries] : it->second.by_location) {
    // Fresh candidates ranked by similarity to the query pattern.
    fresh->clear();
    for (const auto& entry : entries) {
      if (max_age_seconds_ > 0 &&
          query_time - entry.timestamp > max_age_seconds_) {
        continue;
      }
      fresh->emplace_back(Cosine(query, width, entry.pattern), &entry);
    }
    if (fresh->empty()) continue;
    const size_t keep =
        std::min(fresh->size(), static_cast<size_t>(config_.capacity));
    std::partial_sort(fresh->begin(), fresh->begin() + keep, fresh->end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    RebuildJob job;
    job.location = location;
    job.keep = static_cast<int64_t>(keep);
    // Copy the kept patterns out in ranking order: the job survives any
    // later adapter mutation, and the centroid kernel reads them as one
    // contiguous {keep, hidden} block.
    job.arena_offset = arena->size();
    for (size_t k = 0; k < keep; ++k) {
      arena->Append((*fresh)[k].second->pattern.data(), width);
    }
    jobs->push_back(job);
    ++appended;
  }
  return appended;
}

void OnlineAdapter::ScoreCollectedJobsInto(
    const AdaptableModel& model, const float* query, int64_t hidden,
    const std::vector<RebuildJob>& jobs,
    const common::AlignedBuffer<float>& arena, std::vector<float>* scores) {
  common::SerialKernelRegion serial;
  const nn::Linear& classifier = model.classifier();
  const int64_t num_loc = classifier.out_features();
  const std::vector<float>& weight = classifier.weight().data();

  // Start from the frozen column scores; overwrite adapted columns below.
  FrozenColumnScoresInto(classifier, query, hidden, scores);
  for (const RebuildJob& job : jobs) {
    // θ'_l = mean({θ_l} ∪ kept patterns); score = query · θ'_l. The fused
    // kernel accumulates each centroid element exactly as the historical
    // loop pair (θ first, patterns in ranking order, double throughout).
    const double acc = nn::kernels::PttaCentroidDot(
        query, weight.data() + job.location, num_loc,
        arena.data() + job.arena_offset, job.keep, hidden);
    (*scores)[static_cast<size_t>(job.location)] = static_cast<float>(
        acc / (1.0 + static_cast<double>(job.keep)));
  }
  AddBias(classifier, scores);
}

std::vector<float> OnlineAdapter::ScoreCollectedJobs(
    const AdaptableModel& model, const std::vector<float>& query,
    const std::vector<RebuildJob>& jobs,
    const common::AlignedBuffer<float>& arena) {
  std::vector<float> scores;
  ScoreCollectedJobsInto(model, query.data(),
                         static_cast<int64_t>(query.size()), jobs, arena,
                         &scores);
  return scores;
}

void OnlineAdapter::PredictInto(const AdaptableModel& model, int64_t user,
                                const float* query, int64_t hidden,
                                int64_t query_time, PredictScratch* scratch,
                                AdapterStats* stats) const {
  scratch->arena.Clear();
  scratch->jobs.clear();
  CollectRebuildJobs(user, query, hidden, query_time, &scratch->arena,
                     &scratch->jobs, &scratch->fresh);
  ScoreCollectedJobsInto(model, query, hidden, scratch->jobs, scratch->arena,
                         &scratch->scores);
  if (stats != nullptr) {
    stats->columns_updated = static_cast<int>(scratch->jobs.size());
    stats->weight_bytes_touched = static_cast<int64_t>(scratch->jobs.size()) *
                                  hidden * static_cast<int64_t>(sizeof(float));
    stats->resident_bytes = static_cast<int64_t>(ResidentBytes(user));
  }
}

std::vector<float> OnlineAdapter::Predict(const AdaptableModel& model,
                                          int64_t user,
                                          const std::vector<float>& query,
                                          int64_t query_time,
                                          AdapterStats* stats) const {
  PredictScratch scratch;
  PredictInto(model, user, query.data(), static_cast<int64_t>(query.size()),
              query_time, &scratch, stats);
  return std::move(scratch.scores);
}

std::vector<float> OnlineAdapter::ObserveAndPredict(
    AdaptableModel& model, const data::Sample& sample) {
  nn::Tensor reps = model.PrefixRepresentations(sample);
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  for (int64_t k = 0; k + 1 < t; ++k) {
    std::vector<float> pattern(
        reps.data().begin() + k * hidden,
        reps.data().begin() + (k + 1) * hidden);
    Observe(sample.user, pattern,
            sample.recent[static_cast<size_t>(k + 1)].location,
            sample.recent[static_cast<size_t>(k + 1)].timestamp);
  }
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  return Predict(model, sample.user, query, sample.target.timestamp);
}

std::vector<int64_t> OnlineAdapter::Users() const {
  std::vector<int64_t> users;
  users.reserve(users_.size());
  for (const auto& [user, state] : users_) users.push_back(user);
  std::sort(users.begin(), users.end());
  return users;
}

OnlineAdapter::UserSnapshot OnlineAdapter::ExportUser(int64_t user) const {
  UserSnapshot snap;
  snap.user = user;
  auto it = users_.find(user);
  if (it == users_.end()) return snap;
  snap.locations.reserve(it->second.by_location.size());
  for (const auto& [location, entries] : it->second.by_location) {
    snap.locations.emplace_back(location, entries);
  }
  std::sort(snap.locations.begin(), snap.locations.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  snap.pending = it->second.pending;
  return snap;
}

void OnlineAdapter::Adopt(UserSnapshot&& snap) {
  UserState state;
  for (auto& [location, entries] : snap.locations) {
    if (entries.empty()) continue;
    if (entries.size() > kMaxCandidatesPerLocation) {
      // Same FIFO policy as Observe: the newest candidates win.
      entries.erase(entries.begin(),
                    entries.end() - kMaxCandidatesPerLocation);
    }
    state.by_location[location] = std::move(entries);
  }
  // Install pending deltas under the same per-location coalescing bound
  // ObserveDeferred enforces (newest win), so a hostile snapshot cannot
  // inflate the buffer past what a live deferral could hold.
  for (PendingDelta& delta : snap.pending) {
    if (delta.pattern.empty()) continue;
    size_t for_location = 0;
    for (const PendingDelta& kept : state.pending) {
      if (kept.next_location == delta.next_location) ++for_location;
    }
    state.pending.push_back(std::move(delta));
    if (for_location + 1 <= kMaxCandidatesPerLocation) continue;
    for (auto p = state.pending.begin(); p != state.pending.end(); ++p) {
      if (p->next_location == state.pending.back().next_location) {
        state.pending.erase(p);
        break;
      }
    }
  }
  if (state.by_location.empty() && state.pending.empty()) {
    users_.erase(snap.user);  // adopting an empty snapshot == Forget
    dirty_.erase(snap.user);
    return;
  }
  if (state.pending.empty()) {
    dirty_.erase(snap.user);
  } else {
    dirty_.insert(snap.user);
  }
  users_[snap.user] = std::move(state);
}

void OnlineAdapter::EncodeUser(const UserSnapshot& snap, std::string* out) {
  common::AppendU64(out, static_cast<uint64_t>(snap.user));
  common::AppendU32(out, static_cast<uint32_t>(snap.locations.size()));
  for (const auto& [location, entries] : snap.locations) {
    common::AppendU64(out, static_cast<uint64_t>(location));
    common::AppendU32(out, static_cast<uint32_t>(entries.size()));
    for (const Entry& entry : entries) {
      common::AppendU64(out, static_cast<uint64_t>(entry.timestamp));
      common::AppendU32(out, static_cast<uint32_t>(entry.pattern.size()));
      common::AppendF32Array(out, entry.pattern.data(), entry.pattern.size());
    }
  }
  // Pending-delta section, appended only when non-empty: a clean user's
  // frame is byte-identical to the pre-deferral format, so existing golden
  // snapshots (and old readers of clean users) are untouched. Decoders
  // treat end-of-frame after the locations as "no pending".
  if (snap.pending.empty()) return;
  common::AppendU32(out, static_cast<uint32_t>(snap.pending.size()));
  for (const PendingDelta& delta : snap.pending) {
    common::AppendU64(out, static_cast<uint64_t>(delta.timestamp));
    common::AppendU64(out, static_cast<uint64_t>(delta.next_location));
    common::AppendU32(out, static_cast<uint32_t>(delta.pattern.size()));
    common::AppendF32Array(out, delta.pattern.data(), delta.pattern.size());
  }
}

common::IoResult OnlineAdapter::DecodeUser(std::string_view bytes,
                                           UserSnapshot* out) {
  out->locations.clear();
  out->pending.clear();
  common::WireReader reader(bytes);
  uint64_t user = 0;
  if (!reader.ReadU64(&user)) {
    return common::IoResult::Fail("user frame: truncated user id");
  }
  out->user = static_cast<int64_t>(user);
  uint32_t location_count = 0;
  if (!reader.ReadU32(&location_count)) {
    return common::IoResult::Fail("user frame: truncated location count");
  }
  // A location record is at least id + entry count (12 bytes): a count
  // beyond remaining/12 is provably corrupt — reject before reserving.
  if (location_count > reader.remaining() / 12) {
    return common::IoResult::Fail(
        "user frame: location count " + std::to_string(location_count) +
        " larger than the frame could hold");
  }
  out->locations.reserve(location_count);
  for (uint32_t l = 0; l < location_count; ++l) {
    uint64_t location = 0;
    uint32_t entry_count = 0;
    if (!reader.ReadU64(&location) || !reader.ReadU32(&entry_count)) {
      return common::IoResult::Fail("user frame: truncated location record");
    }
    if (entry_count > reader.remaining() / 12) {
      return common::IoResult::Fail(
          "user frame: entry count " + std::to_string(entry_count) +
          " larger than the frame could hold");
    }
    std::vector<Entry> entries;
    entries.reserve(entry_count);
    for (uint32_t e = 0; e < entry_count; ++e) {
      Entry entry;
      uint64_t timestamp = 0;
      uint32_t pattern_len = 0;
      if (!reader.ReadU64(&timestamp) || !reader.ReadU32(&pattern_len)) {
        return common::IoResult::Fail("user frame: truncated entry header");
      }
      // A zero-length pattern would violate Observe's invariant and abort
      // downstream similarity math — reject it here, structurally.
      if (pattern_len == 0) {
        return common::IoResult::Fail("user frame: zero-length pattern");
      }
      if (!reader.ReadF32Array(pattern_len, &entry.pattern)) {
        return common::IoResult::Fail(
            "user frame: pattern length " + std::to_string(pattern_len) +
            " larger than the remaining frame");
      }
      entry.timestamp = static_cast<int64_t>(timestamp);
      entries.push_back(std::move(entry));
    }
    out->locations.emplace_back(static_cast<int64_t>(location),
                                std::move(entries));
  }
  if (reader.AtEnd()) return common::IoResult::Ok();  // no pending section
  uint32_t pending_count = 0;
  if (!reader.ReadU32(&pending_count)) {
    return common::IoResult::Fail("user frame: truncated pending count");
  }
  // A pending record is at least ts + location + length (20 bytes).
  if (pending_count == 0 || pending_count > reader.remaining() / 20) {
    return common::IoResult::Fail(
        "user frame: pending count " + std::to_string(pending_count) +
        " larger than the frame could hold");
  }
  out->pending.reserve(pending_count);
  for (uint32_t p = 0; p < pending_count; ++p) {
    PendingDelta delta;
    uint64_t timestamp = 0;
    uint64_t location = 0;
    uint32_t pattern_len = 0;
    if (!reader.ReadU64(&timestamp) || !reader.ReadU64(&location) ||
        !reader.ReadU32(&pattern_len)) {
      return common::IoResult::Fail("user frame: truncated pending record");
    }
    if (pattern_len == 0) {
      return common::IoResult::Fail("user frame: zero-length pending pattern");
    }
    if (!reader.ReadF32Array(pattern_len, &delta.pattern)) {
      return common::IoResult::Fail(
          "user frame: pending pattern length " + std::to_string(pattern_len) +
          " larger than the remaining frame");
    }
    delta.timestamp = static_cast<int64_t>(timestamp);
    delta.next_location = static_cast<int64_t>(location);
    out->pending.push_back(std::move(delta));
  }
  if (!reader.AtEnd()) {
    return common::IoResult::Fail("user frame: trailing bytes");
  }
  return common::IoResult::Ok();
}

size_t OnlineAdapter::Forget(int64_t user) {
  auto it = users_.find(user);
  if (it == users_.end()) return 0;
  size_t n = 0;
  for (const auto& [loc, entries] : it->second.by_location) {
    n += entries.size();
  }
  users_.erase(it);
  dirty_.erase(user);
  return n;
}

size_t OnlineAdapter::StateBytes(const UserState& state) {
  // Fixed per-node overhead standing in for the hash node header plus its
  // bucket slot — a deterministic proxy, not malloc truth, so the number is
  // reproducible across allocators and runs.
  constexpr size_t kMapNodeOverhead = 32;
  size_t bytes = sizeof(UserState) + kMapNodeOverhead;
  for (const auto& [location, entries] : state.by_location) {
    bytes += kMapNodeOverhead + sizeof(location) + sizeof(entries);
    bytes += entries.capacity() * sizeof(Entry);
    for (const Entry& entry : entries) {
      bytes += entry.pattern.capacity() * sizeof(float);
    }
  }
  bytes += state.pending.capacity() * sizeof(PendingDelta);
  for (const PendingDelta& delta : state.pending) {
    bytes += delta.pattern.capacity() * sizeof(float);
  }
  return bytes;
}

size_t OnlineAdapter::ResidentBytes(int64_t user) const {
  auto it = users_.find(user);
  return it == users_.end() ? 0 : StateBytes(it->second);
}

size_t OnlineAdapter::ResidentBytes() const {
  size_t bytes = 0;
  for (const auto& [user, state] : users_) bytes += StateBytes(state);
  return bytes;
}

size_t OnlineAdapter::PatternCount(int64_t user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return 0;
  size_t n = 0;
  for (const auto& [loc, entries] : it->second.by_location) {
    n += entries.size();
  }
  return n;
}

}  // namespace adamove::core
