#ifndef ADAMOVE_CORE_TRAINER_H_
#define ADAMOVE_CORE_TRAINER_H_

#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "data/dataset.h"

namespace adamove::core {

/// One training epoch's log line.
struct EpochLog {
  int epoch = 0;
  double train_loss = 0.0;
  double val_rec1 = 0.0;
  double learning_rate = 0.0;
};

/// The shared training loop used for LightMob and all trainable baselines:
/// Adam at lr 1e-2, per-sample losses accumulated into batches of 50,
/// learning-rate decay on validation-accuracy plateaus, early stop once the
/// rate reaches 1e-4 or `max_epochs` (30) is hit — the §IV-A recipe.
class Trainer {
 public:
  explicit Trainer(const TrainConfig& config) : config_(config) {}

  /// Trains in place; returns the per-epoch log.
  std::vector<EpochLog> Train(MobilityModel& model,
                              const data::Dataset& dataset) const;

 private:
  TrainConfig config_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_TRAINER_H_
