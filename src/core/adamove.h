#ifndef ADAMOVE_CORE_ADAMOVE_H_
#define ADAMOVE_CORE_ADAMOVE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/durable_io.h"
#include "core/config.h"
#include "core/evaluator.h"
#include "core/lightmob.h"
#include "core/ptta.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace adamove::core {

/// The AdaMove façade: LightMob training plus PTTA-adapted inference — the
/// complete system of the paper behind one API.
///
///   AdaMove model(model_config);
///   model.Train(dataset, train_config);
///   auto scores = model.Predict(sample);           // PTTA-adapted
///   auto result = model.EvaluateTta(dataset.test); // Table II row
class AdaMove {
 public:
  explicit AdaMove(const ModelConfig& model_config,
                   const PttaConfig& ptta_config = PttaConfig());

  /// Trains LightMob with the paper's recipe; returns the epoch log.
  std::vector<EpochLog> Train(const data::Dataset& dataset,
                              const TrainConfig& train_config);

  /// PTTA-adapted scores for one trajectory sample.
  std::vector<float> Predict(const data::Sample& sample) const;

  /// Adapted top-1 next location.
  int64_t PredictLocation(const data::Sample& sample) const;

  /// Full test-time-adaptive evaluation (accuracy + per-sample latency).
  EvalResult EvaluateTta(const std::vector<data::Sample>& samples) const;

  /// Frozen-model evaluation (the "w/o PTTA" ablation).
  EvalResult EvaluateFrozen(const std::vector<data::Sample>& samples) const;

  /// Saves / loads the trained LightMob weights. Save writes the v2
  /// checksummed checkpoint format through durable_io's atomic commit; Load
  /// sniffs the format and also accepts legacy v1 files read-only
  /// (DESIGN.md §11). The status variants surface the structured error
  /// (offending entry, corrupt field) instead of a bare bool.
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);
  common::IoResult SaveStatus(const std::string& path) const;
  common::IoResult LoadStatus(const std::string& path);

  LightMob& model() { return *model_; }
  const TestTimeAdapter& adapter() const { return adapter_; }

 private:
  std::unique_ptr<LightMob> model_;
  TestTimeAdapter adapter_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_ADAMOVE_H_
