#ifndef ADAMOVE_CORE_ONLINE_ADAPTER_H_
#define ADAMOVE_CORE_ONLINE_ADAPTER_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/durable_io.h"
#include "core/config.h"
#include "core/model.h"

namespace adamove::core {

struct AdapterStats;  // core/ptta.h

/// Streaming variant of PTTA for the real-time deployment §III-B sketches:
/// instead of rebuilding the knowledge base from scratch for every query,
/// the adapter keeps a *persistent per-user knowledge base* that absorbs
/// each observed transition once (pattern h_t with the next location as its
/// label) and answers queries from the accumulated state.
///
/// Differences from the per-sample TestTimeAdapter:
///  * O(1) incremental updates per new check-in instead of O(N) per query;
///  * patterns age out: each entry's importance is its similarity to the
///    *query* pattern, recomputed at prediction time over at most
///    `max_patterns_per_location` stored candidates (bounded memory);
///  * entries older than `max_age_seconds` relative to the query are
///    dropped — the analogue of the sliding recent-trajectory window.
///
/// Concurrency contract: OnlineAdapter is *thread-compatible*, never
/// thread-safe — it holds no lock of its own, by design: in the serving
/// layer each serve::SessionStore shard owns one adapter and declares it
/// `ADAMOVE_GUARDED_BY(shard mutex)` (common/annotations.h), so every
/// access is proven to hold the shard lock at compile time under
/// ADAMOVE_ANALYZE=ON. An internal mutex here would be redundant
/// double-locking at exactly the same granularity. Standalone users get
/// the same contract by wrapping the adapter in a common::Mutex-guarded
/// owner.
class OnlineAdapter {
 public:
  /// One stored candidate: the trajectory pattern plus the timestamp it was
  /// observed at (freshness ages out against this). Public because it is
  /// also the unit persisted by snapshots.
  struct Entry {
    std::vector<float> pattern;
    int64_t timestamp = 0;
  };

  /// One buffered (not yet ingested) transition of a deferred-mode user:
  /// exactly Observe's arguments, queued in arrival order. Draining the
  /// buffer replays them through Observe, so a drained user's knowledge
  /// base is bit-identical to an inline run of the same observations.
  struct PendingDelta {
    std::vector<float> pattern;
    int64_t next_location = 0;
    int64_t timestamp = 0;
  };

  /// The complete stored state of one user, in the deterministic order the
  /// snapshot wire format uses (locations ascending, entries in FIFO
  /// arrival order, pending deltas in arrival order) — so identical adapter
  /// state encodes to identical bytes, which is what lets the durability
  /// tests pin snapshots golden. `pending` is the deferred-mode ingest
  /// buffer; it travels with the user through eviction, migration and
  /// snapshots so deferral never loses observations.
  struct UserSnapshot {
    int64_t user = 0;
    std::vector<std::pair<int64_t, std::vector<Entry>>> locations;
    std::vector<PendingDelta> pending;
  };

  OnlineAdapter(const PttaConfig& config, int64_t max_age_seconds =
                                              5 * 72 * 3600 /* ~c=5 windows */)
      : config_(config), max_age_seconds_(max_age_seconds) {}

  /// Ingests one observed transition of `user`: the trajectory pattern
  /// `pattern` (the encoder state before the visit) whose true next
  /// location turned out to be `next_location` at `timestamp`.
  void Observe(int64_t user, const std::vector<float>& pattern,
               int64_t next_location, int64_t timestamp);

  /// Deferred-mode ingest: buffers the transition into the user's pending
  /// queue instead of touching the knowledge base. Pending deltas are
  /// coalesced exactly: at most kMaxCandidatesPerLocation deltas per next
  /// location are kept (dropping the oldest), because Observe's FIFO cap
  /// would discard anything older on drain anyway — so coalescing changes
  /// nothing about the post-drain state. Returns the number of deltas
  /// dropped by coalescing (0 or 1). Does not probe core.kb.ingest; the
  /// probe happens at drain time, when the observation actually lands.
  size_t ObserveDeferred(int64_t user, std::vector<float>&& pattern,
                         int64_t next_location, int64_t timestamp);

  /// Replays the user's pending deltas through Observe in arrival order and
  /// clears the buffer. Returns the number of deltas drained. With faults
  /// disarmed, Drain after any mix of ObserveDeferred calls leaves the
  /// knowledge base bit-identical to inline Observe calls of the same
  /// sequence (the deferred-drain parity invariant, pinned by tests).
  size_t DrainPending(int64_t user);

  /// Drains up to `max_users` dirty users (ascending user id — the
  /// deterministic order; 0 = all). Returns the number of users drained.
  size_t DrainSomePending(size_t max_users);

  /// Buffered deltas for a user (0 if unknown or clean).
  size_t PendingCount(int64_t user) const;

  /// Total buffered deltas across users.
  size_t PendingTotal() const;

  /// Users with a non-empty pending buffer.
  size_t DirtyUserCount() const { return dirty_.size(); }

  /// All dirty users, ascending.
  std::vector<int64_t> DirtyUsers() const {
    return std::vector<int64_t>(dirty_.begin(), dirty_.end());
  }

  /// Adapted scores for `user`'s current trajectory state: the model's
  /// classifier columns are replaced by centroids of {θ_l} ∪ the top-M
  /// stored patterns most similar to `query` that are fresh at
  /// `query_time`.
  ///
  /// Strictly read-only: neither the stored entries nor the model are
  /// mutated (the model is taken by const reference to enforce it), so
  /// Predict on one OnlineAdapter instance may run concurrently with
  /// Observe/Forget on *other* instances — the per-shard layout of
  /// serve::SessionStore. Calls on the *same* instance still need external
  /// synchronization against writers.
  ///
  /// `stats`, when non-null, reports capacity diagnostics for this call:
  /// columns_updated / weight_bytes_touched as in TestTimeAdapter, plus
  /// resident_bytes = this user's dense knowledge-base footprint.
  std::vector<float> Predict(const AdaptableModel& model, int64_t user,
                             const std::vector<float>& query,
                             int64_t query_time,
                             AdapterStats* stats = nullptr) const;

  /// One deferred adjusted-column rebuild produced by CollectRebuildJobs:
  /// which classifier column the knowledge base touches, how many patterns
  /// were kept for it, and where their contiguous copy starts in the
  /// pattern arena.
  struct RebuildJob {
    int64_t location = 0;
    int64_t keep = 0;
    size_t arena_offset = 0;
  };

  /// Reusable per-worker state for the zero-allocation predict path
  /// (DESIGN.md §14). Every container reuses capacity across requests, so
  /// after warm-up PredictInto / PredictFrozenInto / ScoreCollectedJobsInto
  /// perform zero heap allocations per request (pinned by
  /// tests/core/zero_alloc_predict_test.cc under the `plan` ctest label).
  struct PredictScratch {
    common::AlignedBuffer<float> arena;              // kept pattern copies
    std::vector<RebuildJob> jobs;                    // phase-1 output
    std::vector<std::pair<float, const Entry*>> fresh;  // ranking scratch
    std::vector<float> scores;                       // final scores
  };

  /// Phase 1 of Predict, factored out so the serving layer can run it for a
  /// whole micro-batch under the shard lock and defer the arithmetic: ranks
  /// each location's fresh-at-`query_time` candidates by similarity to
  /// `query`, copies the kept patterns into `arena` (contiguous, descending
  /// similarity — the order the centroid sums them) and appends one
  /// RebuildJob per touched location to `jobs`. Probes the core.kb.lookup
  /// fault point exactly as Predict does (on fault: appends nothing). Jobs
  /// record arena *offsets*, never pointers, so later appends (other
  /// requests in the batch) and subsequent adapter mutation (eviction,
  /// ingestion) cannot invalidate them. Returns the number of jobs
  /// appended.
  size_t CollectRebuildJobs(int64_t user, const std::vector<float>& query,
                            int64_t query_time,
                            common::AlignedBuffer<float>* arena,
                            std::vector<RebuildJob>* jobs) const;

  /// Allocation-free CollectRebuildJobs: the raw-pointer query variant the
  /// zero-alloc serving path feeds straight from a plan-encoded
  /// representation buffer, with the ranking scratch (`fresh`) supplied by
  /// the caller so its capacity is reused across requests. Identical
  /// arithmetic and arena layout to the vector overload (which delegates
  /// here). `query` must point at `hidden` floats.
  size_t CollectRebuildJobs(int64_t user, const float* query, int64_t hidden,
                            int64_t query_time,
                            common::AlignedBuffer<float>* arena,
                            std::vector<RebuildJob>* jobs,
                            std::vector<std::pair<float, const Entry*>>* fresh)
      const;

  /// Caches one user's collected rebuild (jobs + the kept-pattern bytes
  /// they reference) so a later deferred-mode predict can reuse it without
  /// re-ranking. `jobs` and `arena` are a CollectRebuildJobs result for
  /// this user; the kept patterns are copied out of `arena`, so the cache
  /// survives any later arena reuse. Purely derived state: it is never
  /// serialized, and Forget/Adopt drop it.
  void StoreRebuildCache(int64_t user, const std::vector<RebuildJob>& jobs,
                         const common::AlignedBuffer<float>& arena);

  /// Appends the user's cached rebuild jobs (rebased into `arena`) to
  /// `jobs` — the deferred-mode predict path: no ranking, one memcpy of
  /// the cached pattern block. Returns the number of jobs appended (0 when
  /// the user has no cache; the caller then serves frozen-column scores,
  /// which is the same scoring sweep with zero jobs).
  size_t CollectCachedJobs(int64_t user, common::AlignedBuffer<float>* arena,
                           std::vector<RebuildJob>* jobs) const;

  /// Whether the user has a cached rebuild.
  bool HasRebuildCache(int64_t user) const;

  /// Phase 2: frozen-classifier scores for `query` with the adjusted
  /// columns described by `jobs` (from CollectRebuildJobs with this same
  /// query) overwritten, plus bias — exactly Predict's arithmetic,
  /// bit-identical to the historical per-location centroid loops. Static
  /// and read-only on the model + arena snapshot (no adapter state), so the
  /// batched serving sweep runs it *outside* the shard lock, one contiguous
  /// vectorized pass per request.
  static std::vector<float> ScoreCollectedJobs(
      const AdaptableModel& model, const std::vector<float>& query,
      const std::vector<RebuildJob>& jobs,
      const common::AlignedBuffer<float>& arena);

  /// Allocation-free ScoreCollectedJobs: writes into `scores` (resized once
  /// to num_locations; capacity reuse makes steady state alloc-free) and
  /// forces kernels serial inside the call (common::SerialKernelRegion —
  /// value-neutral by the §13 determinism contract, and the thread-pool path
  /// would allocate futures). The vector overload delegates here, so the
  /// arithmetic is single-sourced and bit-identical.
  static void ScoreCollectedJobsInto(const AdaptableModel& model,
                                     const float* query, int64_t hidden,
                                     const std::vector<RebuildJob>& jobs,
                                     const common::AlignedBuffer<float>& arena,
                                     std::vector<float>* scores);

  /// Unadapted scores: `query` against the model's frozen classifier columns
  /// (plus bias) — exactly the scores Predict returns for locations the
  /// knowledge base never touched. This is the serving path's base-model
  /// fallback when per-user state is unavailable (fault, eviction, deadline):
  /// a degraded prediction that still comes from the real model. Touches no
  /// per-user state, hence static and safe without any shard lock.
  static std::vector<float> PredictFrozen(const AdaptableModel& model,
                                          const std::vector<float>& query);

  /// Allocation-free PredictFrozen (same delegation scheme as
  /// ScoreCollectedJobsInto). `query` must point at `hidden` floats; the
  /// result lands in `scores`, resized to num_locations.
  static void PredictFrozenInto(const AdaptableModel& model,
                                const float* query, int64_t hidden,
                                std::vector<float>* scores);

  /// Allocation-free Predict: phase 1 + phase 2 through the caller's
  /// PredictScratch (arena cleared, capacity kept), result in
  /// scratch->scores. Exactly Predict's arithmetic — Predict delegates
  /// here — with zero heap allocations per request once the scratch is
  /// warm.
  void PredictInto(const AdaptableModel& model, int64_t user,
                   const float* query, int64_t hidden, int64_t query_time,
                   PredictScratch* scratch,
                   AdapterStats* stats = nullptr) const;

  /// Convenience: encode `sample.recent` with the model, observe all of
  /// its transitions (idempotence is the caller's concern), and predict.
  std::vector<float> ObserveAndPredict(AdaptableModel& model,
                                       const data::Sample& sample);

  /// Stored patterns for a user (across locations); 0 if unknown.
  size_t PatternCount(int64_t user) const;

  /// Heap-byte estimate of one user's resident state (0 if unknown):
  /// pattern payloads plus container payloads and fixed per-node overheads.
  /// Deterministic accounting rather than malloc truth — close enough to
  /// compare the dense representation against the shard subsystem's compact
  /// tier (AdapterStats::resident_bytes, BENCH_capacity.json).
  size_t ResidentBytes(int64_t user) const;

  /// ResidentBytes summed over every resident user.
  size_t ResidentBytes() const;

  /// Drops the stored state of one user (no-op for unknown users) — the
  /// eviction hook used by serve::SessionStore's LRU policy. Returns the
  /// number of patterns dropped.
  size_t Forget(int64_t user);

  /// Distinct users with stored state.
  size_t UserCount() const { return users_.size(); }

  /// Whether `user` has any stored state — the warm-start gate's probe.
  bool HasUser(int64_t user) const { return users_.count(user) > 0; }

  /// All users with stored state, ascending — the deterministic snapshot
  /// iteration order.
  std::vector<int64_t> Users() const;

  /// Deep copy of one user's stored state (empty snapshot for unknown
  /// users), locations ascending.
  UserSnapshot ExportUser(int64_t user) const;

  /// Installs `snap` as the user's complete state, replacing whatever was
  /// stored. Enforces the per-location candidate cap (keeping the newest
  /// entries, matching Observe's FIFO policy), so even a hostile snapshot
  /// cannot inflate memory past the normal bound.
  void Adopt(UserSnapshot&& snap);

  /// Snapshot wire format (DESIGN.md §11): user id, then per location the
  /// id and its candidate entries. Encode/Decode are pure byte functions —
  /// no adapter state — so the serving layer can decode a frame before
  /// deciding which shard lock to take. Decode is strictly bounds-checked:
  /// corrupt counts/lengths fail with a structured error naming the field,
  /// never an allocation or out-of-range read.
  static void EncodeUser(const UserSnapshot& snap, std::string* out);
  static common::IoResult DecodeUser(std::string_view bytes,
                                     UserSnapshot* out);

  /// Drops state for all users.
  void Reset() {
    users_.clear();
    dirty_.clear();
  }

 private:
  /// One user's cached rebuild: CollectRebuildJobs output with the kept
  /// patterns copied into a private block (offsets rebased to 0). Derived
  /// state only — never serialized, dropped on Forget/Adopt.
  struct CachedRebuild {
    std::vector<RebuildJob> jobs;
    std::vector<float> patterns;
  };

  struct UserState {
    // location -> stored candidate patterns (bounded FIFO).
    std::unordered_map<int64_t, std::vector<Entry>> by_location;
    // Deferred-mode ingest buffer, arrival order (see ObserveDeferred).
    std::vector<PendingDelta> pending;
    // Last inline rebuild, reusable by deferred predicts (may be empty).
    CachedRebuild cache;
  };

  /// The ResidentBytes accounting for one user's state.
  static size_t StateBytes(const UserState& state);

  /// Per-location candidate cap (FIFO); the top-M by similarity are chosen
  /// from these at query time.
  static constexpr size_t kMaxCandidatesPerLocation = 32;

  PttaConfig config_;
  int64_t max_age_seconds_;
  std::unordered_map<int64_t, UserState> users_;
  /// Users with a non-empty pending buffer, ordered — so drains walk users
  /// deterministically and DirtyUsers() needs no sort.
  std::set<int64_t> dirty_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_ONLINE_ADAPTER_H_
