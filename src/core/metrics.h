#ifndef ADAMOVE_CORE_METRICS_H_
#define ADAMOVE_CORE_METRICS_H_

#include <cstdint>
#include <vector>

namespace adamove::core {

/// The paper's evaluation metrics: Rec@{1,5,10} and MRR@10 (§IV-A).
struct Metrics {
  double rec1 = 0.0;
  double rec5 = 0.0;
  double rec10 = 0.0;
  double mrr = 0.0;
  int64_t count = 0;
};

/// Streaming accumulator over (scores, target) pairs. The rank of the target
/// is 1 + the number of locations with a strictly higher score + the number
/// of earlier-indexed ties (deterministic tie-breaking).
class MetricAccumulator {
 public:
  void Add(const std::vector<float>& scores, int64_t target);

  /// Rank of `target` in `scores` (1-based); exposed for tests.
  static int64_t RankOf(const std::vector<float>& scores, int64_t target);

  Metrics Result() const;

 private:
  int64_t count_ = 0;
  int64_t hits1_ = 0;
  int64_t hits5_ = 0;
  int64_t hits10_ = 0;
  double reciprocal_sum_ = 0.0;  // MRR@10: 1/rank when rank <= 10, else 0
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_METRICS_H_
