#ifndef ADAMOVE_CORE_MODEL_H_
#define ADAMOVE_CORE_MODEL_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::core {

class TrajectoryEncoder;

/// Common interface of every next-location model in this repository
/// (AdaMove's LightMob and all baselines): a training loss per sample and
/// per-location scores at inference. One shared Trainer/Evaluator drives any
/// implementation.
class MobilityModel : public nn::Module {
 public:
  /// Scalar training loss for one sample (autograd-enabled).
  virtual nn::Tensor Loss(const data::Sample& sample, bool training) = 0;

  /// Unnormalized scores over all locations for one sample; higher = more
  /// likely next location. Runs without building the autograd tape.
  virtual std::vector<float> Scores(const data::Sample& sample) = 0;

  virtual std::string name() const = 0;
  virtual int64_t num_locations() const = 0;

  /// Whether the model learns by gradient descent (default). Non-gradient
  /// models (Markov, LLM-Mob) return false and implement Fit instead.
  virtual bool trainable() const { return true; }

  /// Non-gradient estimation / precomputation over the training split
  /// (transition counts, trajectory flow graphs, ...). Gradient models that
  /// also need corpus statistics (GETNext) override this too; the training
  /// harness calls Fit before gradient training.
  virtual void Fit(const data::Dataset& dataset) { (void)dataset; }
};

/// A model whose output layer can be adjusted by a test-time classifier
/// adjuster (PTTA / T3A). It must expose the prefix representations h_k of
/// the recent trajectory and its final FC classifier g_Θ.
class AdaptableModel : public MobilityModel {
 public:
  /// {T, H} matrix whose row k is the model's representation of the recent
  /// trajectory prefix recent[0..k] — the labeled-pattern source of
  /// Algorithm 1 step 1.
  virtual nn::Tensor PrefixRepresentations(const data::Sample& sample) = 0;

  /// The output classifier whose weight columns θ_l the adapters replace.
  virtual nn::Linear& classifier() = 0;

  /// Read-only classifier access: adapters that only *read* the frozen
  /// columns (OnlineAdapter::Predict, the serving path) take the model by
  /// const reference, which is what makes concurrent prediction sound.
  virtual const nn::Linear& classifier() const = 0;

  /// Logits of the final prefix with the autograd tape ON — the training
  /// path used by custom objectives (e.g. distillation) that need to
  /// backpropagate through the model beyond its built-in Loss().
  virtual nn::Tensor TrainingLogits(const data::Sample& sample,
                                    bool training) = 0;

  /// The trajectory encoder backing PrefixRepresentations, when the model
  /// has one — the hook the static forward-plan compiler (src/nn/plan)
  /// traces, and the forced-graph reference path the serving degradation
  /// ladder falls back to. nullptr (the default) means "graph mode only";
  /// models with bespoke encode paths (e.g. DeepMove's dual encoders) keep
  /// the default.
  virtual const TrajectoryEncoder* trajectory_encoder() const {
    return nullptr;
  }
  virtual TrajectoryEncoder* trajectory_encoder() { return nullptr; }
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_MODEL_H_
