#include "core/metrics.h"

#include "common/check.h"

namespace adamove::core {

int64_t MetricAccumulator::RankOf(const std::vector<float>& scores,
                                  int64_t target) {
  ADAMOVE_CHECK_GE(target, 0);
  ADAMOVE_CHECK_LT(target, static_cast<int64_t>(scores.size()));
  const float ts = scores[static_cast<size_t>(target)];
  int64_t rank = 1;
  for (int64_t i = 0; i < static_cast<int64_t>(scores.size()); ++i) {
    const float s = scores[static_cast<size_t>(i)];
    if (s > ts || (s == ts && i < target)) ++rank;
  }
  return rank;
}

void MetricAccumulator::Add(const std::vector<float>& scores, int64_t target) {
  const int64_t rank = RankOf(scores, target);
  ++count_;
  if (rank <= 1) ++hits1_;
  if (rank <= 5) ++hits5_;
  if (rank <= 10) {
    ++hits10_;
    reciprocal_sum_ += 1.0 / static_cast<double>(rank);
  }
}

Metrics MetricAccumulator::Result() const {
  Metrics m;
  m.count = count_;
  if (count_ == 0) return m;
  const double n = static_cast<double>(count_);
  m.rec1 = hits1_ / n;
  m.rec5 = hits5_ / n;
  m.rec10 = hits10_ / n;
  m.mrr = reciprocal_sum_ / n;
  return m;
}

}  // namespace adamove::core
