#include "core/evaluator.h"

#include "common/timer.h"

namespace adamove::core {

EvalResult Evaluate(MobilityModel& model,
                    const std::vector<data::Sample>& samples) {
  EvalResult result;
  MetricAccumulator acc;
  common::Timer timer;
  for (const auto& sample : samples) {
    acc.Add(model.Scores(sample), sample.target.location);
  }
  result.metrics = acc.Result();
  if (!samples.empty()) {
    result.avg_ms_per_sample =
        timer.ElapsedMs() / static_cast<double>(samples.size());
  }
  return result;
}

EvalResult EvaluateWithAdapter(AdaptableModel& model,
                               const std::vector<data::Sample>& samples,
                               const TestTimeAdapter& adapter) {
  EvalResult result;
  MetricAccumulator acc;
  common::Timer timer;
  for (const auto& sample : samples) {
    acc.Add(adapter.Predict(model, sample), sample.target.location);
  }
  result.metrics = acc.Result();
  if (!samples.empty()) {
    result.avg_ms_per_sample =
        timer.ElapsedMs() / static_cast<double>(samples.size());
  }
  return result;
}

}  // namespace adamove::core
