#include "core/lightmob.h"

#include <algorithm>

#include "common/check.h"
#include "nn/autograd_mode.h"
#include "nn/loss.h"
#include "nn/ops.h"

namespace adamove::core {

LightMob::LightMob(const ModelConfig& config, std::string name)
    : config_(config), name_(std::move(name)) {
  common::Rng rng(config.seed);
  encoder_ = std::make_unique<TrajectoryEncoder>(config, rng);
  classifier_ = std::make_unique<nn::Linear>(config.hidden_size,
                                             config.num_locations, rng);
  RegisterModule("encoder", encoder_.get());
  RegisterModule("classifier", classifier_.get());
  if (config.lambda > 0.0) {
    hist_attn_ = std::make_unique<HistoryAttention>(config.hidden_size, rng);
    RegisterModule("hist_attn", hist_attn_.get());
  }
  forward_mode_ = ForwardModeFromEnv();
  planner_ = std::make_unique<ForwardPlanner>(*this);
}

nn::Tensor LightMob::ContrastiveTerm(const nn::Tensor& h_rec,
                                     const nn::Tensor& h_hist,
                                     const data::Sample& sample) const {
  ADAMOVE_CHECK(hist_attn_ != nullptr);
  const int64_t t = h_rec.rows();
  if (t < 2) return nn::Tensor();
  // Negative candidates: prefix positions q whose *next* location differs
  // from the prediction target (§III-C filters out confusing prefixes whose
  // next location equals the target).
  std::vector<int64_t> negative_rows;
  for (int64_t q = 0; q + 1 < t; ++q) {
    if (sample.recent[static_cast<size_t>(q + 1)].location !=
        sample.target.location) {
      negative_rows.push_back(q);
    }
  }
  if (negative_rows.empty()) return nn::Tensor();
  nn::Tensor h_tilde = hist_attn_->Forward(h_hist, h_rec);
  nn::Tensor anchor = nn::Row(h_rec, t - 1);
  nn::Tensor positive = nn::Row(h_tilde, t - 1);
  nn::Tensor negatives = nn::GatherRows(h_tilde, negative_rows);
  return nn::InfoNceLoss(anchor, positive, negatives,
                         /*include_positive_in_denominator=*/false,
                         static_cast<float>(config_.contrastive_temperature));
}

nn::Tensor LightMob::Loss(const data::Sample& sample, bool training) {
  ADAMOVE_CHECK(!sample.recent.empty());
  nn::Tensor h_rec = encoder_->Forward(sample.recent, training);
  nn::Tensor h_last = nn::Row(h_rec, h_rec.rows() - 1);
  nn::Tensor logits = classifier_->Forward(h_last);
  nn::Tensor loss = nn::CrossEntropy(logits, {sample.target.location});
  if (config_.lambda > 0.0 && !sample.history.empty()) {
    nn::Tensor h_hist = encoder_->Forward(sample.history, training);
    nn::Tensor con = ContrastiveTerm(h_rec, h_hist, sample);
    if (con.defined()) {
      loss = nn::Add(loss,
                     nn::ScalarMul(con, static_cast<float>(config_.lambda)));
    }
  }
  return loss;
}

std::vector<float> LightMob::Scores(const data::Sample& sample) {
  nn::NoGradGuard no_grad;
  nn::Tensor h_rec = encoder_->Forward(sample.recent, /*training=*/false);
  nn::Tensor h_last = nn::Row(h_rec, h_rec.rows() - 1);
  return classifier_->Forward(h_last).data();
}

nn::Tensor LightMob::PrefixRepresentations(const data::Sample& sample) {
  if (forward_mode_ == ForwardMode::kPlan) {
    // One scratch per thread: evaluator loops and serving workers reuse its
    // arena/capacity, so steady-state plan encodes allocate only this
    // wrapping Tensor. The zero-alloc serving path (PredictionService)
    // consumes the scratch buffer directly instead.
    thread_local PlanScratch scratch;
    if (planner_->EncodeInto(sample, &scratch)) {
      nn::Tensor reps = nn::Tensor::Zeros({scratch.rows, scratch.cols});
      std::copy_n(scratch.reps.data(),
                  static_cast<size_t>(scratch.rows * scratch.cols),
                  reps.data().begin());
      return reps;
    }
  }
  nn::NoGradGuard no_grad;
  return encoder_->Forward(sample.recent, /*training=*/false);
}

nn::Tensor LightMob::TrainingLogits(const data::Sample& sample,
                                    bool training) {
  nn::Tensor h_rec = encoder_->Forward(sample.recent, training);
  return classifier_->Forward(nn::Row(h_rec, h_rec.rows() - 1));
}

}  // namespace adamove::core
