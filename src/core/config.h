#ifndef ADAMOVE_CORE_CONFIG_H_
#define ADAMOVE_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace adamove::core {

/// Sequential encoder families evaluated in Fig. 5.
enum class EncoderType : uint8_t { kRnn, kLstm, kGru, kTransformer };

std::string EncoderTypeName(EncoderType type);

/// Architecture hyper-parameters (§IV-A defaults: embeddings {48, 8, 16},
/// LSTM encoder; the Transformer variant uses 2 layers with 8 heads).
struct ModelConfig {
  int64_t num_locations = 0;  // required
  int64_t num_users = 0;      // required
  int64_t location_emb_dim = 48;
  int64_t time_emb_dim = 8;
  int64_t user_emb_dim = 16;
  int64_t hidden_size = 64;
  EncoderType encoder = EncoderType::kLstm;
  /// Stacked recurrent layers (RNN/LSTM/GRU families); the paper uses 1.
  int64_t rnn_layers = 1;
  int64_t transformer_layers = 2;
  int64_t transformer_heads = 8;
  float dropout = 0.1f;
  /// λ — weight of the contrastive loss in LightMob (Eq. 11).
  double lambda = 0.8;
  /// InfoNCE temperature (1.0 = the paper's Eq. 9 literally).
  double contrastive_temperature = 1.0;
  uint64_t seed = 7;
};

/// Training hyper-parameters (§IV-A: Adam, lr 1e-2 decayed on plateaus of
/// validation accuracy, stop at lr <= 1e-4, batch 50, at most 30 epochs).
struct TrainConfig {
  double learning_rate = 1e-2;
  double min_learning_rate = 1e-4;
  double decay_factor = 0.7;
  /// Consecutive non-improving epochs tolerated before a decay step.
  int plateau_patience = 2;
  int batch_size = 50;
  int max_epochs = 30;
  /// Validation samples used for the plateau schedule (0 = all; a cap keeps
  /// single-core epochs fast without changing the schedule's behaviour).
  int max_val_samples = 400;
  /// Training samples visited per epoch (0 = all). When capped, each epoch
  /// sees a different random subset (the shuffle runs first), so the whole
  /// corpus is still consumed across epochs — stochastic sub-epoch training.
  int max_train_samples_per_epoch = 0;
  uint64_t seed = 17;
  bool verbose = false;
};

/// PTTA / T3A knowledge-base parameters (§III-B; Algorithm 1).
struct PttaConfig {
  /// Capacity M of the knowledge base per location (paper default 5).
  int capacity = 5;
  /// Sample-importance strategy: true = cosine similarity to the test
  /// pattern (PTTA); false = negative prediction entropy (the paper's
  /// "w/ ent" ablation and T3A's strategy).
  bool similarity_importance = true;
  /// Label source: true = actual next locations from the test trajectory
  /// (PTTA); false = model pseudo-labels (the "w/ pseudo-label" ablation
  /// and T3A).
  bool use_true_labels = true;
  /// Knowledge-base maintenance: false = the paper's Algorithm 1 linear
  /// min-scan (O(M) per offer); true = the min-heap variant the paper
  /// suggests for O(log M) offers. Both keep identical contents.
  bool use_heap = false;
};

/// The classic T3A configuration (pseudo-labels + entropy importance).
inline PttaConfig T3aConfig(int capacity = 5) {
  PttaConfig c;
  c.capacity = capacity;
  c.similarity_importance = false;
  c.use_true_labels = false;
  return c;
}

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_CONFIG_H_
