#include "core/adamove.h"

#include <algorithm>

#include "nn/serialize.h"

namespace adamove::core {

AdaMove::AdaMove(const ModelConfig& model_config,
                 const PttaConfig& ptta_config)
    : model_(std::make_unique<LightMob>(model_config)),
      adapter_(ptta_config) {}

std::vector<EpochLog> AdaMove::Train(const data::Dataset& dataset,
                                     const TrainConfig& train_config) {
  Trainer trainer(train_config);
  return trainer.Train(*model_, dataset);
}

std::vector<float> AdaMove::Predict(const data::Sample& sample) const {
  return adapter_.Predict(*model_, sample);
}

int64_t AdaMove::PredictLocation(const data::Sample& sample) const {
  const std::vector<float> scores = Predict(sample);
  return static_cast<int64_t>(std::distance(
      scores.begin(), std::max_element(scores.begin(), scores.end())));
}

EvalResult AdaMove::EvaluateTta(
    const std::vector<data::Sample>& samples) const {
  return EvaluateWithAdapter(*model_, samples, adapter_);
}

EvalResult AdaMove::EvaluateFrozen(
    const std::vector<data::Sample>& samples) const {
  return Evaluate(*model_, samples);
}

bool AdaMove::Save(const std::string& path) const {
  return nn::SaveModule(path, *model_);
}

bool AdaMove::Load(const std::string& path) {
  return nn::LoadModule(path, *model_);
}

common::IoResult AdaMove::SaveStatus(const std::string& path) const {
  return nn::SaveModuleStatus(path, *model_);
}

common::IoResult AdaMove::LoadStatus(const std::string& path) {
  return nn::LoadModuleStatus(path, *model_);
}

}  // namespace adamove::core
