#include "core/ptta.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/parallel_for.h"
#include "nn/kernels.h"

namespace adamove::core {

namespace {

// Cosine similarity between two length-h float spans.
float Cosine(const float* a, const float* b, int64_t h) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (int64_t i = 0; i < h; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12f ? dot / denom : 0.0f;
}

// Logits of one pattern against the (original) classifier; weight is the
// {H, L} row-major matrix, bias {L} or empty. Column-parallel kernel. The
// scratch is a cache-line-aligned arena so the vector backend's column
// stripes start aligned.
void LogitsOf(const float* h, const std::vector<float>& weight,
              const std::vector<float>& bias, int64_t hidden, int64_t num_loc,
              common::AlignedBuffer<float>* out) {
  out->Resize(static_cast<size_t>(num_loc));
  nn::kernels::VecMatCols(h, weight.data(), out->data(), hidden, num_loc,
                          /*skip_zero=*/true);
  if (!bias.empty()) {
    float* o = out->data();
    for (int64_t l = 0; l < num_loc; ++l) o[l] += bias[l];
  }
}

int64_t ArgMax(const float* v, int64_t n) {
  int64_t best = 0;
  for (int64_t i = 1; i < n; ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

// Per-pattern importance of h_0..h_{T-2} (rows of `reps`) — Algorithm 1
// step 2. Patterns are independent, so the batch is split across the
// kernel pool; the entropy variant keeps one logits scratch per chunk.
std::vector<float> PatternImportance(const nn::Tensor& reps,
                                     const std::vector<float>& weight,
                                     const std::vector<float>& bias,
                                     int64_t hidden, int64_t num_loc,
                                     bool similarity_importance) {
  const int64_t t = reps.rows();
  const float* data = reps.data().data();
  const float* h_test = data + (t - 1) * hidden;
  std::vector<float> importance(static_cast<size_t>(t - 1));
  if (similarity_importance) {
    common::ParallelFor(
        0, t - 1, nn::kernels::GrainForWork(3 * hidden),
        [&](int64_t k0, int64_t k1) {
          for (int64_t k = k0; k < k1; ++k) {
            importance[static_cast<size_t>(k)] =
                Cosine(h_test, data + k * hidden, hidden);
          }
        });
  } else {
    common::ParallelFor(
        0, t - 1, nn::kernels::GrainForWork(hidden * num_loc),
        [&](int64_t k0, int64_t k1) {
          common::AlignedBuffer<float> logits;  // scratch reused per chunk
          for (int64_t k = k0; k < k1; ++k) {
            LogitsOf(data + k * hidden, weight, bias, hidden, num_loc,
                     &logits);
            // Entropy of softmax(logits); lower entropy = more reliable.
            importance[static_cast<size_t>(k)] =
                -nn::kernels::SoftmaxEntropy(logits.data(), num_loc);
          }
        });
  }
  return importance;
}

// Knowledge base: top-M patterns per location (Algorithm 1 lines 8-16).
// Following the normative text of §III-B (K_l = P_l^M ∪ {θ_l}) the original
// column θ_l is always retained and M bounds the *patterns* only.
std::unordered_map<int64_t, TopMBuffer> BuildKnowledgeBase(
    const std::vector<float>& importance, const std::vector<int64_t>& labels,
    int64_t num_loc, const PttaConfig& config) {
  std::unordered_map<int64_t, TopMBuffer> kb;
  for (size_t k = 0; k < labels.size(); ++k) {
    const int64_t label = labels[k];
    ADAMOVE_CHECK_GE(label, 0);
    ADAMOVE_CHECK_LT(label, num_loc);
    auto [it, inserted] =
        kb.try_emplace(label, TopMBuffer(config.capacity, config.use_heap));
    it->second.Offer(importance[k], static_cast<int>(k));
  }
  return kb;
}

// Eq. 2 for a single location: θ'_l = mean({θ_l} ∪ kept patterns), written
// into `column` (length H). Accumulates in double exactly as the historical
// full-matrix path did, so the float results are bit-identical.
void AdjustedColumn(const std::vector<float>& weight, int64_t hidden,
                    int64_t num_loc, int64_t label, const float* reps_data,
                    const std::vector<int>& kept, float* column) {
  std::vector<double> acc(static_cast<size_t>(hidden));
  for (int64_t i = 0; i < hidden; ++i) {
    acc[static_cast<size_t>(i)] = weight[i * num_loc + label];  // θ_l
  }
  for (int k : kept) {
    const float* h_k = reps_data + static_cast<int64_t>(k) * hidden;
    for (int64_t i = 0; i < hidden; ++i) {
      acc[static_cast<size_t>(i)] += h_k[i];
    }
  }
  const double inv = 1.0 / (1.0 + static_cast<double>(kept.size()));
  for (int64_t i = 0; i < hidden; ++i) {
    column[i] = static_cast<float>(acc[static_cast<size_t>(i)] * inv);
  }
}

// Score of `h` against one {H}-column: ascending-i float accumulation with
// the same skip-zero shortcut as the dense scoring loop (bit-identical to
// scoring a column of the materialized adjusted matrix).
float ColumnScore(const float* h, const float* column, int64_t hidden) {
  float acc = 0.0f;
  for (int64_t i = 0; i < hidden; ++i) {
    const float hv = h[i];
    if (hv == 0.0f) continue;
    acc += hv * column[i];
  }
  return acc;
}

}  // namespace

void TopMBuffer::Offer(float importance, int id) {
  if (capacity_ <= 0) return;
  if (!use_heap_) {
    // Algorithm 1 lines 11-16: fill, then replace the current minimum.
    if (static_cast<int>(items_.size()) < capacity_) {
      items_.emplace_back(importance, id);
      return;
    }
    auto min_it = std::min_element(items_.begin(), items_.end());
    if (importance > min_it->first) *min_it = {importance, id};
  } else {
    // Min-heap on importance: O(log M) per update.
    if (static_cast<int>(items_.size()) < capacity_) {
      items_.emplace_back(importance, id);
      std::push_heap(items_.begin(), items_.end(), std::greater<>());
      return;
    }
    if (importance > items_.front().first) {
      std::pop_heap(items_.begin(), items_.end(), std::greater<>());
      items_.back() = {importance, id};
      std::push_heap(items_.begin(), items_.end(), std::greater<>());
    }
  }
}

std::vector<int> TopMBuffer::Ids() const {
  std::vector<int> ids;
  ids.reserve(items_.size());
  for (const auto& [imp, id] : items_) ids.push_back(id);
  return ids;
}

std::vector<float> TestTimeAdapter::AdjustedWeights(
    const nn::Tensor& reps, const std::vector<int64_t>& labels,
    const nn::Linear& classifier, AdapterStats* stats) const {
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  const int64_t num_loc = classifier.out_features();
  ADAMOVE_CHECK_EQ(classifier.in_features(), hidden);
  ADAMOVE_CHECK_EQ(static_cast<int64_t>(labels.size()), t - 1);
  const std::vector<float>& weight = classifier.weight().data();  // {H, L}
  const std::vector<float> bias =
      classifier.has_bias() ? classifier.bias().data() : std::vector<float>();

  const std::vector<float> importance = PatternImportance(
      reps, weight, bias, hidden, num_loc, config_.similarity_importance);
  std::unordered_map<int64_t, TopMBuffer> kb =
      BuildKnowledgeBase(importance, labels, num_loc, config_);
  if (stats != nullptr) stats->patterns_generated = static_cast<int>(t - 1);

  // Weight update (Eq. 2): θ'_l = mean({θ_l} ∪ kept patterns). This entry
  // point materializes the full matrix (the ablation benches need it);
  // Predict() scores adjusted columns sparsely instead.
  std::vector<float> adjusted = weight;  // {H, L} row-major copy
  std::vector<float> column(static_cast<size_t>(hidden));
  for (const auto& [label, buffer] : kb) {
    const std::vector<int> kept = buffer.Ids();
    if (kept.empty()) continue;
    AdjustedColumn(weight, hidden, num_loc, label, reps.data().data(), kept,
                   column.data());
    for (int64_t i = 0; i < hidden; ++i) {
      adjusted[i * num_loc + label] = column[static_cast<size_t>(i)];
    }
    if (stats != nullptr) ++stats->columns_updated;
  }
  if (stats != nullptr) {
    stats->weight_bytes_touched =
        static_cast<int64_t>(adjusted.size() * sizeof(float));
  }
  return adjusted;
}

std::vector<float> TestTimeAdapter::Predict(AdaptableModel& model,
                                            const data::Sample& sample,
                                            AdapterStats* stats) const {
  // Step 1 (Autoregressive Pattern Generation): one causal forward pass
  // yields h_k for every prefix of the recent trajectory.
  nn::Tensor reps = model.PrefixRepresentations(sample);
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  nn::Linear& classifier = model.classifier();
  const int64_t num_loc = classifier.out_features();
  const std::vector<float>& weight = classifier.weight().data();
  const std::vector<float> bias =
      classifier.has_bias() ? classifier.bias().data() : std::vector<float>();
  const float* reps_data = reps.data().data();
  const float* h_test = reps_data + (t - 1) * hidden;

  // Inference (Eq. 3) against the *original* classifier first; the columns
  // the knowledge base touches are then re-scored sparsely below — the full
  // {H, L} matrix is never copied on the prediction path.
  std::vector<float> scores(static_cast<size_t>(num_loc));
  nn::kernels::VecMatCols(h_test, weight.data(), scores.data(), hidden,
                          num_loc, /*skip_zero=*/true);

  if (t >= 2) {
    // Labels for patterns h_0..h_{T-2}.
    std::vector<int64_t> labels(static_cast<size_t>(t - 1));
    if (config_.use_true_labels) {
      // The autoregressive structure gives the *actual* next location of
      // each prefix for free (§III-B "Main Idea", improvement over T3A).
      for (int64_t k = 0; k + 1 < t; ++k) {
        labels[static_cast<size_t>(k)] =
            sample.recent[static_cast<size_t>(k + 1)].location;
      }
    } else {
      // T3A-style pseudo-labels from the (frozen) original classifier.
      common::ParallelFor(
          0, t - 1, nn::kernels::GrainForWork(hidden * num_loc),
          [&](int64_t k0, int64_t k1) {
            common::AlignedBuffer<float> logits;
            for (int64_t k = k0; k < k1; ++k) {
              LogitsOf(reps_data + k * hidden, weight, bias, hidden, num_loc,
                       &logits);
              labels[static_cast<size_t>(k)] = ArgMax(logits.data(), num_loc);
            }
          });
    }

    const std::vector<float> importance = PatternImportance(
        reps, weight, bias, hidden, num_loc, config_.similarity_importance);
    std::unordered_map<int64_t, TopMBuffer> kb =
        BuildKnowledgeBase(importance, labels, num_loc, config_);
    if (stats != nullptr) stats->patterns_generated = static_cast<int>(t - 1);

    // Sparse Eq. 2 + Eq. 3: only columns with a labeled pattern are
    // adjusted, so only those are rebuilt ({H} scratch each) and re-scored.
    std::vector<float> column(static_cast<size_t>(hidden));
    for (const auto& [label, buffer] : kb) {
      const std::vector<int> kept = buffer.Ids();
      if (kept.empty()) continue;
      AdjustedColumn(weight, hidden, num_loc, label, reps_data, kept,
                     column.data());
      scores[static_cast<size_t>(label)] =
          ColumnScore(h_test, column.data(), hidden);
      if (stats != nullptr) {
        ++stats->columns_updated;
        stats->weight_bytes_touched +=
            static_cast<int64_t>(hidden * sizeof(float));
      }
    }
  }

  if (!bias.empty()) {
    for (int64_t l = 0; l < num_loc; ++l) {
      scores[static_cast<size_t>(l)] += bias[static_cast<size_t>(l)];
    }
  }
  return scores;
}

}  // namespace adamove::core
