#include "core/ptta.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"

namespace adamove::core {

namespace {

// Cosine similarity between two length-h float spans.
float Cosine(const float* a, const float* b, int64_t h) {
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (int64_t i = 0; i < h; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 1e-12f ? dot / denom : 0.0f;
}

// Logits of one pattern against the (original) classifier; weight is the
// {H, L} row-major matrix, bias {L} or empty.
void LogitsOf(const float* h, const std::vector<float>& weight,
              const std::vector<float>& bias, int64_t hidden, int64_t num_loc,
              std::vector<float>* out) {
  out->assign(static_cast<size_t>(num_loc), 0.0f);
  for (int64_t i = 0; i < hidden; ++i) {
    const float hv = h[i];
    if (hv == 0.0f) continue;
    const float* wrow = weight.data() + i * num_loc;
    for (int64_t l = 0; l < num_loc; ++l) (*out)[l] += hv * wrow[l];
  }
  if (!bias.empty()) {
    for (int64_t l = 0; l < num_loc; ++l) (*out)[l] += bias[l];
  }
}

// Entropy of softmax(logits); lower entropy = more reliable prediction.
float SoftmaxEntropy(const std::vector<float>& logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double denom = 0.0;
  for (float v : logits) denom += std::exp(static_cast<double>(v - mx));
  double entropy = 0.0;
  for (float v : logits) {
    const double p = std::exp(static_cast<double>(v - mx)) / denom;
    if (p > 1e-12) entropy -= p * std::log(p);
  }
  return static_cast<float>(entropy);
}

int64_t ArgMax(const std::vector<float>& v) {
  int64_t best = 0;
  for (int64_t i = 1; i < static_cast<int64_t>(v.size()); ++i) {
    if (v[static_cast<size_t>(i)] > v[static_cast<size_t>(best)]) best = i;
  }
  return best;
}

}  // namespace

void TopMBuffer::Offer(float importance, int id) {
  if (capacity_ <= 0) return;
  if (!use_heap_) {
    // Algorithm 1 lines 11-16: fill, then replace the current minimum.
    if (static_cast<int>(items_.size()) < capacity_) {
      items_.emplace_back(importance, id);
      return;
    }
    auto min_it = std::min_element(items_.begin(), items_.end());
    if (importance > min_it->first) *min_it = {importance, id};
  } else {
    // Min-heap on importance: O(log M) per update.
    if (static_cast<int>(items_.size()) < capacity_) {
      items_.emplace_back(importance, id);
      std::push_heap(items_.begin(), items_.end(), std::greater<>());
      return;
    }
    if (importance > items_.front().first) {
      std::pop_heap(items_.begin(), items_.end(), std::greater<>());
      items_.back() = {importance, id};
      std::push_heap(items_.begin(), items_.end(), std::greater<>());
    }
  }
}

std::vector<int> TopMBuffer::Ids() const {
  std::vector<int> ids;
  ids.reserve(items_.size());
  for (const auto& [imp, id] : items_) ids.push_back(id);
  return ids;
}

std::vector<float> TestTimeAdapter::AdjustedWeights(
    const nn::Tensor& reps, const std::vector<int64_t>& labels,
    const nn::Linear& classifier, AdapterStats* stats) const {
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  const int64_t num_loc = classifier.out_features();
  ADAMOVE_CHECK_EQ(classifier.in_features(), hidden);
  ADAMOVE_CHECK_EQ(static_cast<int64_t>(labels.size()), t - 1);
  const std::vector<float>& weight = classifier.weight().data();  // {H, L}
  const std::vector<float> bias =
      classifier.has_bias() ? classifier.bias().data() : std::vector<float>();

  const float* h_test = reps.data().data() + (t - 1) * hidden;

  // Per-pattern importance.
  std::vector<float> importance(static_cast<size_t>(t - 1));
  std::vector<float> logits;
  for (int64_t k = 0; k + 1 < t; ++k) {
    const float* h_k = reps.data().data() + k * hidden;
    if (config_.similarity_importance) {
      importance[static_cast<size_t>(k)] = Cosine(h_test, h_k, hidden);
    } else {
      LogitsOf(h_k, weight, bias, hidden, num_loc, &logits);
      importance[static_cast<size_t>(k)] = -SoftmaxEntropy(logits);
    }
  }

  // Knowledge base: top-M patterns per location. Following the normative
  // text of §III-B (K_l = P_l^M ∪ {θ_l}) the original column θ_l is always
  // retained and M bounds the *patterns* only.
  std::unordered_map<int64_t, TopMBuffer> kb;
  for (int64_t k = 0; k + 1 < t; ++k) {
    int64_t label = labels[static_cast<size_t>(k)];
    ADAMOVE_CHECK_GE(label, 0);
    ADAMOVE_CHECK_LT(label, num_loc);
    auto [it, inserted] = kb.try_emplace(
        label, TopMBuffer(config_.capacity, /*use_heap=*/false));
    it->second.Offer(importance[static_cast<size_t>(k)],
                     static_cast<int>(k));
  }
  if (stats != nullptr) stats->patterns_generated = static_cast<int>(t - 1);

  // Weight update (Eq. 2): θ'_l = mean({θ_l} ∪ kept patterns).
  std::vector<float> adjusted = weight;  // {H, L} row-major copy
  for (const auto& [label, buffer] : kb) {
    const std::vector<int> kept = buffer.Ids();
    if (kept.empty()) continue;
    std::vector<double> acc(static_cast<size_t>(hidden));
    for (int64_t i = 0; i < hidden; ++i) {
      acc[static_cast<size_t>(i)] = weight[i * num_loc + label];  // θ_l
    }
    for (int k : kept) {
      const float* h_k = reps.data().data() + static_cast<int64_t>(k) * hidden;
      for (int64_t i = 0; i < hidden; ++i) {
        acc[static_cast<size_t>(i)] += h_k[i];
      }
    }
    const double inv = 1.0 / (1.0 + static_cast<double>(kept.size()));
    for (int64_t i = 0; i < hidden; ++i) {
      adjusted[i * num_loc + label] =
          static_cast<float>(acc[static_cast<size_t>(i)] * inv);
    }
    if (stats != nullptr) ++stats->columns_updated;
  }
  return adjusted;
}

std::vector<float> TestTimeAdapter::Predict(AdaptableModel& model,
                                            const data::Sample& sample,
                                            AdapterStats* stats) const {
  // Step 1 (Autoregressive Pattern Generation): one causal forward pass
  // yields h_k for every prefix of the recent trajectory.
  nn::Tensor reps = model.PrefixRepresentations(sample);
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  nn::Linear& classifier = model.classifier();
  const int64_t num_loc = classifier.out_features();

  // Labels for patterns h_0..h_{T-2}.
  std::vector<int64_t> labels(static_cast<size_t>(t - 1));
  if (config_.use_true_labels) {
    // The autoregressive structure gives the *actual* next location of each
    // prefix for free (§III-B "Main Idea", improvement over T3A).
    for (int64_t k = 0; k + 1 < t; ++k) {
      labels[static_cast<size_t>(k)] =
          sample.recent[static_cast<size_t>(k + 1)].location;
    }
  } else {
    // T3A-style pseudo-labels from the (frozen) original classifier.
    const std::vector<float>& weight = classifier.weight().data();
    const std::vector<float> bias = classifier.has_bias()
                                        ? classifier.bias().data()
                                        : std::vector<float>();
    std::vector<float> logits;
    for (int64_t k = 0; k + 1 < t; ++k) {
      const float* h_k = reps.data().data() + k * hidden;
      LogitsOf(h_k, weight, bias, hidden, num_loc, &logits);
      labels[static_cast<size_t>(k)] = ArgMax(logits);
    }
  }

  std::vector<float> adjusted;
  if (t >= 2) {
    adjusted = AdjustedWeights(reps, labels, classifier, stats);
  } else {
    adjusted = classifier.weight().data();  // nothing to adapt from
  }

  // Inference (Eq. 3): scores of the test pattern under g_Θ'.
  const float* h_test = reps.data().data() + (t - 1) * hidden;
  std::vector<float> scores(static_cast<size_t>(num_loc), 0.0f);
  for (int64_t i = 0; i < hidden; ++i) {
    const float hv = h_test[i];
    if (hv == 0.0f) continue;
    const float* wrow = adjusted.data() + i * num_loc;
    for (int64_t l = 0; l < num_loc; ++l) scores[static_cast<size_t>(l)] +=
        hv * wrow[l];
  }
  if (classifier.has_bias()) {
    const auto& bias = classifier.bias().data();
    for (int64_t l = 0; l < num_loc; ++l) scores[static_cast<size_t>(l)] +=
        bias[static_cast<size_t>(l)];
  }
  return scores;
}

}  // namespace adamove::core
