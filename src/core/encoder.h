#ifndef ADAMOVE_CORE_ENCODER_H_
#define ADAMOVE_CORE_ENCODER_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "data/point.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/rnn.h"

namespace adamove::core {

/// The spatio-temporal point embedding of Eq. (4): each point becomes
/// [Emb(location); Emb(time-slot); Emb(user)]. Shared by the trajectory
/// encoder and by the attention-based baselines.
class PointEmbedding : public nn::Module {
 public:
  PointEmbedding(const ModelConfig& config, common::Rng& rng);

  /// points -> {T, dim} embedding matrix.
  nn::Tensor Forward(const std::vector<data::Point>& points) const;

  /// Derives the three per-point index arrays (location, time slot, user)
  /// Forward looks up — the shared definition the static forward-plan path
  /// feeds to its gather ops, so plan and graph mode index identically.
  /// Appends to the given vectors (callers Clear-and-reuse for capacity).
  void IndexArrays(const std::vector<data::Point>& points,
                   std::vector<int64_t>* locs, std::vector<int64_t>* slots,
                   std::vector<int64_t>* users) const;

  int64_t dim() const { return dim_; }
  nn::Embedding& location_embedding() { return *location_emb_; }
  /// Table accessors for the static forward-plan compiler (src/nn/plan).
  const nn::Embedding& location_embedding() const { return *location_emb_; }
  const nn::Embedding& time_embedding() const { return *time_emb_; }
  const nn::Embedding& user_embedding() const { return *user_emb_; }

 private:
  int64_t dim_;
  std::unique_ptr<nn::Embedding> location_emb_;
  std::unique_ptr<nn::Embedding> time_emb_;
  std::unique_ptr<nn::Embedding> user_emb_;
};

/// The trajectory encoder f_Φ of §III-C: each point is embedded per Eq. (4)
/// and the embedding sequence is run through a causal sequential encoder
/// (Eq. 5). Row t of the output encodes the trajectory prefix up to t, which
/// is exactly the mobility pattern h_t that PTTA consumes.
class TrajectoryEncoder : public nn::Module {
 public:
  TrajectoryEncoder(const ModelConfig& config, common::Rng& rng);

  /// points -> {T, hidden} prefix representations.
  nn::Tensor Forward(const std::vector<data::Point>& points, bool training);

  int64_t hidden_size() const { return seq_->hidden_size(); }
  int64_t input_size() const { return embedding_->dim(); }

  /// Component accessors for the static forward-plan compiler
  /// (src/nn/plan), which traces embedding + sequence layer into a flat op
  /// list.
  const PointEmbedding& embedding() const { return *embedding_; }
  const nn::SequenceEncoder& seq() const { return *seq_; }

 private:
  std::unique_ptr<PointEmbedding> embedding_;
  std::unique_ptr<nn::SequenceEncoder> seq_;
};

/// Builds the sequential layer for an encoder family.
std::unique_ptr<nn::SequenceEncoder> MakeSequenceEncoder(
    const ModelConfig& config, int64_t input_size, common::Rng& rng);

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_ENCODER_H_
