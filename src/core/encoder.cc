#include "core/encoder.h"

#include "common/check.h"
#include "nn/ops.h"
#include "nn/stacked.h"

namespace adamove::core {

std::string EncoderTypeName(EncoderType type) {
  switch (type) {
    case EncoderType::kRnn: return "RNN";
    case EncoderType::kLstm: return "LSTM";
    case EncoderType::kGru: return "GRU";
    case EncoderType::kTransformer: return "Transformer";
  }
  return "?";
}

namespace {

std::unique_ptr<nn::SequenceEncoder> MakeRecurrentLayer(
    EncoderType type, int64_t input_size, int64_t hidden_size,
    common::Rng& rng) {
  switch (type) {
    case EncoderType::kRnn:
      return std::make_unique<nn::RnnEncoder>(input_size, hidden_size, rng);
    case EncoderType::kLstm:
      return std::make_unique<nn::LstmEncoder>(input_size, hidden_size, rng);
    case EncoderType::kGru:
      return std::make_unique<nn::GruEncoder>(input_size, hidden_size, rng);
    case EncoderType::kTransformer:
      break;
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<nn::SequenceEncoder> MakeSequenceEncoder(
    const ModelConfig& config, int64_t input_size, common::Rng& rng) {
  if (config.encoder == EncoderType::kTransformer) {
    return std::make_unique<nn::TransformerSeqEncoder>(
        input_size, config.hidden_size, config.transformer_layers,
        config.transformer_heads, config.dropout, rng);
  }
  ADAMOVE_CHECK_GE(config.rnn_layers, 1);
  if (config.rnn_layers == 1) {
    return MakeRecurrentLayer(config.encoder, input_size,
                              config.hidden_size, rng);
  }
  std::vector<std::unique_ptr<nn::SequenceEncoder>> layers;
  layers.push_back(MakeRecurrentLayer(config.encoder, input_size,
                                      config.hidden_size, rng));
  for (int64_t i = 1; i < config.rnn_layers; ++i) {
    layers.push_back(MakeRecurrentLayer(config.encoder, config.hidden_size,
                                        config.hidden_size, rng));
  }
  return std::make_unique<nn::StackedEncoder>(std::move(layers));
}

PointEmbedding::PointEmbedding(const ModelConfig& config, common::Rng& rng) {
  ADAMOVE_CHECK_GT(config.num_locations, 0);
  ADAMOVE_CHECK_GT(config.num_users, 0);
  location_emb_ = std::make_unique<nn::Embedding>(
      config.num_locations, config.location_emb_dim, rng);
  time_emb_ = std::make_unique<nn::Embedding>(data::kNumTimeSlots,
                                              config.time_emb_dim, rng);
  user_emb_ = std::make_unique<nn::Embedding>(config.num_users,
                                              config.user_emb_dim, rng);
  dim_ = config.location_emb_dim + config.time_emb_dim + config.user_emb_dim;
  RegisterModule("loc_emb", location_emb_.get());
  RegisterModule("time_emb", time_emb_.get());
  RegisterModule("user_emb", user_emb_.get());
}

void PointEmbedding::IndexArrays(const std::vector<data::Point>& points,
                                 std::vector<int64_t>* locs,
                                 std::vector<int64_t>* slots,
                                 std::vector<int64_t>* users) const {
  locs->reserve(locs->size() + points.size());
  slots->reserve(slots->size() + points.size());
  users->reserve(users->size() + points.size());
  for (const auto& p : points) {
    locs->push_back(p.location);
    slots->push_back(data::TimeSlotOf(p.timestamp));
    users->push_back(p.user);
  }
}

nn::Tensor PointEmbedding::Forward(
    const std::vector<data::Point>& points) const {
  ADAMOVE_CHECK(!points.empty());
  std::vector<int64_t> locs, slots, users;
  IndexArrays(points, &locs, &slots, &users);
  return nn::ConcatCols({location_emb_->Forward(locs),
                         time_emb_->Forward(slots),
                         user_emb_->Forward(users)});
}

TrajectoryEncoder::TrajectoryEncoder(const ModelConfig& config,
                                     common::Rng& rng) {
  embedding_ = std::make_unique<PointEmbedding>(config, rng);
  seq_ = MakeSequenceEncoder(config, embedding_->dim(), rng);
  ADAMOVE_CHECK(seq_ != nullptr);
  RegisterModule("embedding", embedding_.get());
  RegisterModule("seq", seq_.get());
}

nn::Tensor TrajectoryEncoder::Forward(const std::vector<data::Point>& points,
                                      bool training) {
  return seq_->Forward(embedding_->Forward(points), training);
}

}  // namespace adamove::core
