#include "core/forward_plan.h"

#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/env.h"
#include "nn/plan/encoder_trace.h"

namespace adamove::core {

ForwardMode ForwardModeFromEnv() {
  const std::string mode = common::EnvString("ADAMOVE_FORWARD", "graph");
  if (mode == "plan") return ForwardMode::kPlan;
  return ForwardMode::kGraph;
}

ForwardPlanner::ForwardPlanner(const AdaptableModel& model)
    : verify_mode_(nn::plan::PlanVerifyModeFromEnv()) {
  const TrajectoryEncoder* encoder = model.trajectory_encoder();
  if (encoder == nullptr) return;
  embedding_ = &encoder->embedding();
  seq_ = &encoder->seq();
  // Table order must match PointEmbedding::Forward's ConcatCols order —
  // the gathers write the same column ranges the graph concat produces.
  tables_ = {&embedding_->location_embedding(), &embedding_->time_embedding(),
             &embedding_->user_embedding()};
}

std::shared_ptr<const nn::plan::CompiledPlan> ForwardPlanner::PlanFor(
    int64_t t) {
  common::MutexLock lock(mu_);
  if (untraceable_) return nullptr;
  if (rejected_.count(t) != 0) return nullptr;  // verified bad for these
                                                // weights; graph serves
  auto it = plans_.find(t);
  if (it != plans_.end()) {
    const auto& fp = it->second->weight_fingerprint;
    if (nn::plan::EncoderWeightsMatch(tables_, *seq_, fp.data(), fp.size())) {
      if (verify_mode_ == nn::plan::VerifyMode::kParanoid) {
        ++verifies_;
        nn::plan::VerifyResult check = nn::plan::VerifyPlan(*it->second);
        if (!check.ok) {
          ++verify_rejects_;
          std::fprintf(stderr,
                       "adamove: plan verifier rejected cached plan "
                       "(seq_len=%lld): %s — serving the graph walk\n",
                       static_cast<long long>(t), check.message.c_str());
          plans_.erase(it);
          rejected_.insert(t);
          return nullptr;
        }
      }
      return it->second;
    }
    // A weight tensor's storage moved (checkpoint hot-swap with
    // reallocation): every cached plan borrows stale pointers, and every
    // cached rejection verdict judged weights that no longer exist.
    plans_.clear();
    rejected_.clear();
  }
  auto plan = nn::plan::CompileEncoderForward(tables_, *seq_, t);
  if (plan == nullptr) {
    // Compile failure is a property of the encoder family (e.g.
    // transformer), not of this sequence length — remember it so steady
    // state is a single flag check instead of a re-trace per request.
    untraceable_ = true;
    return nullptr;
  }
  if (verify_mode_ != nn::plan::VerifyMode::kOff) {
    ++verifies_;
    nn::plan::VerifyResult check = nn::plan::VerifyPlan(*plan);
    if (!check.ok) {
      // An unverifiable plan never executes: raw-pointer interpretation of
      // a plan with a bad offset or lifetime is silent memory corruption.
      // The graph walk is bit-identical, so correctness is preserved and
      // only the zero-alloc property is lost for this sequence length.
      ++verify_rejects_;
      std::fprintf(stderr,
                   "adamove: plan verifier rejected compiled plan "
                   "(seq_len=%lld): %s — serving the graph walk\n",
                   static_cast<long long>(t), check.message.c_str());
      rejected_.insert(t);
      return nullptr;
    }
  }
  ++compiles_;
  plans_[t] = plan;
  return plan;
}

bool ForwardPlanner::EncodeInto(const data::Sample& sample,
                                PlanScratch* scratch) {
  if (seq_ == nullptr) return false;
  const int64_t t = static_cast<int64_t>(sample.recent.size());
  if (t <= 0) return false;
  std::shared_ptr<const nn::plan::CompiledPlan> plan = PlanFor(t);
  if (plan == nullptr) return false;
  ADAMOVE_CHECK_EQ(plan->num_index_inputs, 3);

  scratch->locs.clear();
  scratch->slots.clear();
  scratch->users.clear();
  embedding_->IndexArrays(sample.recent, &scratch->locs, &scratch->slots,
                          &scratch->users);
  if (scratch->executor.plan() != plan.get()) scratch->executor.Bind(plan);
  scratch->rows = plan->out_rows;
  scratch->cols = plan->out_cols;
  scratch->reps.Resize(static_cast<size_t>(plan->out_rows * plan->out_cols));
  const int64_t* inputs[3] = {scratch->locs.data(), scratch->slots.data(),
                              scratch->users.data()};
  scratch->executor.Run(inputs, scratch->reps.data());
  return true;
}

void ForwardPlanner::InvalidateAll() {
  common::MutexLock lock(mu_);
  plans_.clear();
  rejected_.clear();
  untraceable_ = false;
}

int64_t ForwardPlanner::compiles() const {
  common::MutexLock lock(mu_);
  return compiles_;
}

int64_t ForwardPlanner::verifies() const {
  common::MutexLock lock(mu_);
  return verifies_;
}

int64_t ForwardPlanner::verify_rejects() const {
  common::MutexLock lock(mu_);
  return verify_rejects_;
}

void ForwardPlanner::SetVerifyModeForTest(nn::plan::VerifyMode mode) {
  common::MutexLock lock(mu_);
  verify_mode_ = mode;
  rejected_.clear();
}

}  // namespace adamove::core
