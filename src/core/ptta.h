#ifndef ADAMOVE_CORE_PTTA_H_
#define ADAMOVE_CORE_PTTA_H_

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "nn/tensor.h"

namespace adamove::core {

/// Diagnostics of one adaptation call (used by tests and ablations).
struct AdapterStats {
  int patterns_generated = 0;   // |P| = |recent| - 1
  int columns_updated = 0;      // locations whose θ_l changed
  /// Classifier-weight bytes written by the adaptation: Predict() touches
  /// only the adjusted columns (columns_updated * H * 4); the materializing
  /// AdjustedWeights() entry point copies the full {H, L} matrix.
  int64_t weight_bytes_touched = 0;
  /// Resident per-user state behind the call: the streaming OnlineAdapter
  /// fills it with the queried user's knowledge-base footprint
  /// (OnlineAdapter::ResidentBytes) — the dense-representation number the
  /// shard subsystem's compact tier is measured against (DESIGN.md §12).
  /// The stateless per-sample TestTimeAdapter keeps nothing resident and
  /// leaves it 0.
  int64_t resident_bytes = 0;
};

/// Preference-aware Test-Time Adaptation (Algorithm 1) and its ablation
/// variants (T3A, w/ ent, w/ pseudo-label), selected via PttaConfig:
///
///   PTTA            = { similarity importance, true labels }
///   "w/ ent"        = { entropy importance,    true labels }
///   "w/ pseudo"     = { similarity importance, pseudo labels }
///   T3A             = { entropy importance,    pseudo labels }
///
/// The adapter is stateless across samples: following §III-B, only the
/// recent trajectory of the *current* test sample is used to adjust the
/// classifier, and the model itself is never mutated. Predict() never
/// materializes the adjusted {H, L} matrix — it scores against the original
/// weights and rebuilds only the columns the knowledge base touched
/// (bit-identical to scoring the full adjusted copy, at a fraction of the
/// bytes; see AdapterStats::weight_bytes_touched).
class TestTimeAdapter {
 public:
  explicit TestTimeAdapter(const PttaConfig& config) : config_(config) {}

  /// End-to-end Algorithm 1: generates labeled patterns from the sample's
  /// recent trajectory, builds the knowledge base, updates the classifier
  /// weights, and returns adapted scores for all locations.
  std::vector<float> Predict(AdaptableModel& model, const data::Sample& sample,
                             AdapterStats* stats = nullptr) const;

  /// Steps 2–3 of Algorithm 1 exposed for tests and ablations: given prefix
  /// representations `reps` ({T, H}; the last row is the test pattern
  /// h_{N_u}) and per-pattern labels for rows [0, T-2], returns the adjusted
  /// weight matrix Θ' as a flat {H, L} row-major vector. This entry point
  /// materializes the full matrix; the serving path (Predict) does not.
  std::vector<float> AdjustedWeights(const nn::Tensor& reps,
                                     const std::vector<int64_t>& labels,
                                     const nn::Linear& classifier,
                                     AdapterStats* stats = nullptr) const;

  const PttaConfig& config() const { return config_; }

 private:
  PttaConfig config_;
};

/// Internal knowledge-base helper exposed for the microbenchmark ablation:
/// maintains the top-M importance values with either a linear scan (the
/// paper's Algorithm 1 lines 13-16) or a min-heap (the paper's suggested
/// O(log M) priority queue). Both produce identical contents.
class TopMBuffer {
 public:
  TopMBuffer(int capacity, bool use_heap)
      : capacity_(capacity), use_heap_(use_heap) {}

  /// Offers (importance, id); keeps the M largest importances.
  void Offer(float importance, int id);

  /// Ids currently kept (unordered).
  std::vector<int> Ids() const;

 private:
  int capacity_;
  bool use_heap_;
  // (importance, id); when use_heap_ the vector is maintained as a min-heap.
  std::vector<std::pair<float, int>> items_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_PTTA_H_
