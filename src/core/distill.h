#ifndef ADAMOVE_CORE_DISTILL_H_
#define ADAMOVE_CORE_DISTILL_H_

#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "nn/tensor.h"

namespace adamove::core {

/// Teacher-student knowledge distillation — the extension the paper's
/// conclusion sketches as future work ("extend the base model in AdaMove to
/// a more powerful lightweight model that can distill knowledge
/// comprehensively, e.g., teacher-student model"). A history-aware teacher
/// (typically DeepMove) is trained first; the lightweight student (the base
/// model, recent-only) is then trained with
///
///   L = (1 - mu) * CE(student, label)
///     + mu * T^2 * KL( softmax(teacher/T) || softmax(student/T) )
///
/// so the student absorbs the teacher's history knowledge — an alternative
/// to LightMob's contrastive route, ablated in bench/ext_distillation.
struct DistillConfig {
  double mu = 0.5;          // soft-target weight
  double temperature = 2.0;  // softening temperature T
};

/// KL(p_teacher || p_student) * T^2 for a single sample's logits
/// ({1, L} each); the teacher side is treated as a constant.
nn::Tensor DistillationLoss(const nn::Tensor& student_logits,
                            const std::vector<float>& teacher_logits,
                            const DistillConfig& config);

/// Trains `student` on `dataset` with the hybrid hard/soft loss, querying
/// `teacher` (already trained, frozen) for soft targets. The usual Trainer
/// recipe (Adam, batches, plateau decay) is reused; returns the epoch log.
std::vector<EpochLog> DistillTrain(MobilityModel& teacher,
                                   AdaptableModel& student,
                                   const data::Dataset& dataset,
                                   const TrainConfig& train_config,
                                   const DistillConfig& distill_config);

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_DISTILL_H_
