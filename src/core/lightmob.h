#ifndef ADAMOVE_CORE_LIGHTMOB_H_
#define ADAMOVE_CORE_LIGHTMOB_H_

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/encoder.h"
#include "core/forward_plan.h"
#include "core/history_attention.h"
#include "core/model.h"

namespace adamove::core {

/// LightMob (§III-C): the base model (trajectory encoder f_Φ + FC predictor
/// g_Θ) that only consumes the recent trajectory at inference, trained with
/// the hybrid loss L = L_cls + λ·L_con (Eq. 11). The contrastive term pulls
/// the plain recent representation h_N towards its history-enhanced
/// counterpart h̃_N (Eqs. 7–9), so historical-trajectory knowledge is
/// memorized inside the encoder and the history branch can be dropped at
/// test time.
///
/// With λ = 0 this is exactly the paper's Base Model / LSTM baseline
/// (no history attention, no contrastive loss).
class LightMob : public AdaptableModel {
 public:
  explicit LightMob(const ModelConfig& config,
                    std::string name = "LightMob");

  // MobilityModel:
  nn::Tensor Loss(const data::Sample& sample, bool training) override;
  std::vector<float> Scores(const data::Sample& sample) override;
  std::string name() const override { return name_; }
  int64_t num_locations() const override { return config_.num_locations; }

  // AdaptableModel:
  nn::Tensor PrefixRepresentations(const data::Sample& sample) override;
  nn::Linear& classifier() override { return *classifier_; }
  const nn::Linear& classifier() const override { return *classifier_; }
  nn::Tensor TrainingLogits(const data::Sample& sample,
                            bool training) override;

  TrajectoryEncoder& encoder() { return *encoder_; }
  const ModelConfig& config() const { return config_; }

  /// Static-plan hooks: PrefixRepresentations consults ADAMOVE_FORWARD and,
  /// in plan mode, encodes through a compiled plan (bit-identical to the
  /// graph walk); the exposed encoder is also the serving layer's
  /// forced-graph reference path.
  const TrajectoryEncoder* trajectory_encoder() const override {
    return encoder_.get();
  }
  TrajectoryEncoder* trajectory_encoder() override { return encoder_.get(); }

  /// Builds the contrastive InfoNCE term for already-encoded recent/history
  /// representations; returns an undefined Tensor when no valid negative
  /// exists (the loss is skipped, matching the filtering rule of §III-C).
  /// Exposed for unit tests.
  nn::Tensor ContrastiveTerm(const nn::Tensor& h_rec,
                             const nn::Tensor& h_hist,
                             const data::Sample& sample) const;

 private:
  ModelConfig config_;
  std::string name_;
  std::unique_ptr<TrajectoryEncoder> encoder_;
  std::unique_ptr<HistoryAttention> hist_attn_;
  std::unique_ptr<nn::Linear> classifier_;
  // Plan-mode encode state: mode is pinned at construction from
  // ADAMOVE_FORWARD; the planner caches compiled plans per sequence length.
  ForwardMode forward_mode_ = ForwardMode::kGraph;
  std::unique_ptr<ForwardPlanner> planner_;
};

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_LIGHTMOB_H_
