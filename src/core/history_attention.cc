#include "core/history_attention.h"

#include "common/check.h"
#include "nn/ops.h"

namespace adamove::core {

HistoryAttention::HistoryAttention(int64_t hidden_size, common::Rng& rng) {
  wq_ = std::make_unique<nn::Linear>(hidden_size, hidden_size, rng, false);
  wk_ = std::make_unique<nn::Linear>(hidden_size, hidden_size, rng, false);
  wv_ = std::make_unique<nn::Linear>(hidden_size, hidden_size, rng, false);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
}

nn::Tensor HistoryAttention::Forward(const nn::Tensor& h_hist,
                                     const nn::Tensor& h_rec) const {
  ADAMOVE_CHECK_EQ(h_hist.cols(), h_rec.cols());
  nn::Tensor q = wq_->Forward(h_rec);
  nn::Tensor k = wk_->Forward(h_hist);
  nn::Tensor v = wv_->Forward(h_hist);
  return nn::ScaledDotAttention(q, k, v, /*causal=*/false);
}

}  // namespace adamove::core
