#include "core/distill.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "core/metrics.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace adamove::core {

nn::Tensor DistillationLoss(const nn::Tensor& student_logits,
                            const std::vector<float>& teacher_logits,
                            const DistillConfig& config) {
  ADAMOVE_CHECK_EQ(student_logits.rows(), 1);
  const int64_t l = student_logits.cols();
  ADAMOVE_CHECK_EQ(static_cast<int64_t>(teacher_logits.size()), l);
  const float inv_t = 1.0f / static_cast<float>(config.temperature);
  // Teacher soft targets (constant w.r.t. the student's graph).
  std::vector<float> p(teacher_logits.size());
  float mx = teacher_logits[0];
  for (float v : teacher_logits) mx = std::max(mx, v);
  double denom = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    p[i] = std::exp((teacher_logits[i] - mx) * inv_t);
    denom += p[i];
  }
  for (auto& v : p) v = static_cast<float>(v / denom);
  nn::Tensor teacher_probs = nn::Tensor::FromVector({1, l}, std::move(p));
  // KL(p || q) = Σ p log p − Σ p log q; the entropy term is constant, so
  // the differentiable objective is the soft cross-entropy −Σ p log q,
  // scaled by T² as in Hinton et al. to keep gradient magnitudes stable.
  nn::Tensor log_q = nn::LogSoftmax(nn::ScalarMul(student_logits, inv_t));
  nn::Tensor soft_ce = nn::Neg(nn::Sum(nn::Mul(teacher_probs, log_q)));
  return nn::ScalarMul(
      soft_ce, static_cast<float>(config.temperature * config.temperature));
}

std::vector<EpochLog> DistillTrain(MobilityModel& teacher,
                                   AdaptableModel& student,
                                   const data::Dataset& dataset,
                                   const TrainConfig& train_config,
                                   const DistillConfig& distill_config) {
  ADAMOVE_CHECK(!dataset.train.empty());
  common::Rng rng(train_config.seed);
  nn::Adam optimizer(student.Parameters(), train_config.learning_rate);
  nn::PlateauDecay scheduler(train_config.decay_factor,
                             train_config.min_learning_rate,
                             train_config.plateau_patience);

  std::vector<size_t> order(dataset.train.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t epoch_samples =
      train_config.max_train_samples_per_epoch > 0
          ? std::min(order.size(),
                     static_cast<size_t>(
                         train_config.max_train_samples_per_epoch))
          : order.size();
  const float inv_batch = 1.0f / static_cast<float>(train_config.batch_size);
  const float mu = static_cast<float>(distill_config.mu);

  std::vector<EpochLog> logs;
  for (int epoch = 1; epoch <= train_config.max_epochs; ++epoch) {
    rng.Shuffle(order);
    double loss_sum = 0.0;
    int in_batch = 0;
    optimizer.ZeroGrad();
    for (size_t i = 0; i < epoch_samples; ++i) {
      const data::Sample& sample = dataset.train[order[i]];
      // One student forward with the tape on serves both loss terms; the
      // (frozen) teacher provides soft targets via its no-grad Scores path.
      nn::Tensor logits = student.TrainingLogits(sample, /*training=*/true);
      nn::Tensor hard = nn::CrossEntropy(logits, {sample.target.location});
      nn::Tensor soft = DistillationLoss(logits, teacher.Scores(sample),
                                         distill_config);
      nn::Tensor loss = nn::Add(nn::ScalarMul(hard, 1.0f - mu),
                                nn::ScalarMul(soft, mu));
      loss_sum += loss.item();
      nn::ScalarMul(loss, inv_batch).Backward();
      if (++in_batch == train_config.batch_size) {
        optimizer.Step();
        optimizer.ZeroGrad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      optimizer.Step();
      optimizer.ZeroGrad();
    }
    // Validation Rec@1 for the plateau schedule.
    MetricAccumulator acc;
    if (!dataset.val.empty()) {
      const size_t cap =
          train_config.max_val_samples > 0
              ? std::min(dataset.val.size(),
                         static_cast<size_t>(train_config.max_val_samples))
              : dataset.val.size();
      const size_t stride = std::max<size_t>(1, dataset.val.size() / cap);
      for (size_t i = 0; i < dataset.val.size(); i += stride) {
        acc.Add(student.Scores(dataset.val[i]),
                dataset.val[i].target.location);
      }
    }
    EpochLog log;
    log.epoch = epoch;
    log.train_loss = loss_sum / static_cast<double>(epoch_samples);
    log.val_rec1 = acc.Result().rec1;
    const bool keep_going = scheduler.Update(log.val_rec1, optimizer);
    log.learning_rate = optimizer.learning_rate();
    logs.push_back(log);
    if (!keep_going) break;
  }
  return logs;
}

}  // namespace adamove::core
