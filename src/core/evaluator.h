#ifndef ADAMOVE_CORE_EVALUATOR_H_
#define ADAMOVE_CORE_EVALUATOR_H_

#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/model.h"
#include "core/ptta.h"
#include "data/dataset.h"

namespace adamove::core {

/// Evaluation output: accuracy metrics plus the average wall-clock cost per
/// sample (the quantity Table III reports).
struct EvalResult {
  Metrics metrics;
  double avg_ms_per_sample = 0.0;
};

/// Plain (frozen-model) evaluation.
EvalResult Evaluate(MobilityModel& model,
                    const std::vector<data::Sample>& samples);

/// Test-time-adaptive evaluation: every sample's prediction goes through
/// the given adapter (PTTA/T3A/...), re-adjusting the classifier from that
/// sample's recent trajectory.
EvalResult EvaluateWithAdapter(AdaptableModel& model,
                               const std::vector<data::Sample>& samples,
                               const TestTimeAdapter& adapter);

}  // namespace adamove::core

#endif  // ADAMOVE_CORE_EVALUATOR_H_
