#include "nn/rnn.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace adamove::nn {

namespace {

float UniformBound(int64_t hidden_size) {
  return 1.0f / std::sqrt(static_cast<float>(hidden_size));
}

}  // namespace

RnnEncoder::RnnEncoder(int64_t input_size, int64_t hidden_size,
                       common::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float b = UniformBound(hidden_size);
  w_ih_ = RegisterParameter(
      "w_ih", Tensor::RandUniform({input_size, hidden_size}, rng, b));
  w_hh_ = RegisterParameter(
      "w_hh", Tensor::RandUniform({hidden_size, hidden_size}, rng, b));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1, hidden_size}));
}

Tensor RnnEncoder::Forward(const Tensor& x, bool /*training*/) {
  ADAMOVE_CHECK_EQ(x.cols(), input_size_);
  const int64_t t_len = x.rows();
  // Pre-compute x W_ih for all steps at once.
  Tensor xw = Add(MatMul(x, w_ih_), bias_);
  Tensor h = Tensor::Zeros({1, hidden_size_});
  std::vector<Tensor> hiddens;
  hiddens.reserve(static_cast<size_t>(t_len));
  for (int64_t t = 0; t < t_len; ++t) {
    // Fused add+tanh kernel: one pass, one tape node (bit-identical to
    // Tanh(Add(...))).
    h = AddTanh(Row(xw, t), MatMul(h, w_hh_));
    hiddens.push_back(h);
  }
  return ConcatRows(hiddens);
}

LstmEncoder::LstmEncoder(int64_t input_size, int64_t hidden_size,
                         common::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float b = UniformBound(hidden_size);
  w_ih_ = RegisterParameter(
      "w_ih", Tensor::RandUniform({input_size, 4 * hidden_size}, rng, b));
  w_hh_ = RegisterParameter(
      "w_hh", Tensor::RandUniform({hidden_size, 4 * hidden_size}, rng, b));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1, 4 * hidden_size}));
  // Forget-gate bias init to 1 helps gradient flow early in training.
  for (int64_t c = hidden_size; c < 2 * hidden_size; ++c) {
    bias_.set(0, c, 1.0f);
  }
}

Tensor LstmEncoder::Forward(const Tensor& x, bool /*training*/) {
  ADAMOVE_CHECK_EQ(x.cols(), input_size_);
  const int64_t t_len = x.rows();
  const int64_t hs = hidden_size_;
  Tensor xw = Add(MatMul(x, w_ih_), bias_);
  Tensor h = Tensor::Zeros({1, hs});
  Tensor c = Tensor::Zeros({1, hs});
  std::vector<Tensor> hiddens;
  hiddens.reserve(static_cast<size_t>(t_len));
  for (int64_t t = 0; t < t_len; ++t) {
    Tensor gates = Add(Row(xw, t), MatMul(h, w_hh_));  // {1, 4H}
    Tensor i = Sigmoid(SliceCols(gates, 0, hs));
    Tensor f = Sigmoid(SliceCols(gates, hs, hs));
    Tensor g = Tanh(SliceCols(gates, 2 * hs, hs));
    Tensor o = Sigmoid(SliceCols(gates, 3 * hs, hs));
    c = Add(Mul(f, c), Mul(i, g));
    h = Mul(o, Tanh(c));
    hiddens.push_back(h);
  }
  return ConcatRows(hiddens);
}

GruEncoder::GruEncoder(int64_t input_size, int64_t hidden_size,
                       common::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  const float b = UniformBound(hidden_size);
  w_ih_ = RegisterParameter(
      "w_ih", Tensor::RandUniform({input_size, 3 * hidden_size}, rng, b));
  w_hh_ = RegisterParameter(
      "w_hh", Tensor::RandUniform({hidden_size, 3 * hidden_size}, rng, b));
  b_ih_ = RegisterParameter("b_ih", Tensor::Zeros({1, 3 * hidden_size}));
  b_hh_ = RegisterParameter("b_hh", Tensor::Zeros({1, 3 * hidden_size}));
}

Tensor GruEncoder::Forward(const Tensor& x, bool /*training*/) {
  ADAMOVE_CHECK_EQ(x.cols(), input_size_);
  const int64_t t_len = x.rows();
  const int64_t hs = hidden_size_;
  Tensor xw = Add(MatMul(x, w_ih_), b_ih_);
  Tensor h = Tensor::Zeros({1, hs});
  std::vector<Tensor> hiddens;
  hiddens.reserve(static_cast<size_t>(t_len));
  for (int64_t t = 0; t < t_len; ++t) {
    Tensor hw = Add(MatMul(h, w_hh_), b_hh_);  // {1, 3H}
    Tensor xt = Row(xw, t);
    Tensor r = AddSigmoid(SliceCols(xt, 0, hs), SliceCols(hw, 0, hs));
    Tensor z = AddSigmoid(SliceCols(xt, hs, hs), SliceCols(hw, hs, hs));
    Tensor n = AddTanh(SliceCols(xt, 2 * hs, hs),
                       Mul(r, SliceCols(hw, 2 * hs, hs)));
    // h = (1 - z) * n + z * h
    Tensor one_minus_z = ScalarAdd(ScalarMul(z, -1.0f), 1.0f);
    h = Add(Mul(one_minus_z, n), Mul(z, h));
    hiddens.push_back(h);
  }
  return ConcatRows(hiddens);
}

}  // namespace adamove::nn
