// The AVX2+FMA backend. This is the only translation unit compiled with
// -mavx2 -mfma (and -ffp-contract=off, so the scalar remainder loops below
// keep the exact mul-then-add semantics of the scalar backend — only the
// explicit _mm256_fmadd intrinsics fuse).
//
// Exactness classes (DESIGN.md §13):
//  * bit-identical to scalar: VecMatCols, VecMatColsF64, Axpy, and the
//    per-element centroid accumulation of PttaCentroidDot — these vectorize
//    across independent output columns, so each element still sees the same
//    mul/add sequence in the same order;
//  * tolerance-bounded: MatMul NN/TN/NT (FMA micro-panels reassociate
//    nothing but round once per fused step), the transcendental kernels
//    (polynomial exp/tanh instead of libm), and the entropy/dot reductions
//    (lane partials + horizontal sum).

#include "nn/kernels_backend.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/cpu_features.h"
#include "common/parallel_for.h"
#include "nn/kernels.h"

namespace adamove::nn::kernels {

namespace {

inline float Hsum8(__m256 v) {
  __m128 lo =
      _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

inline double Hsum4d(__m256d v) {
  __m128d lo =
      _mm_add_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

inline float Hmax8(__m256 v) {
  __m128 lo =
      _mm_max_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

// ---- polynomial exp/tanh/sigmoid ------------------------------------------
// Cephes-style expf: x = n·ln2 + r, e^x = 2^n · P(r). The scalar helpers
// perform the *identical* float operation sequence as the vector lanes
// (mul/add, never fused), so a row's remainder elements agree bit-for-bit
// with its vectorized prefix — the kernel's output does not depend on where
// the 8-lane stripes happen to fall.

constexpr float kExpLo = -87.33654f;  // exp underflows float below this
constexpr float kExpHi = 88.72283f;   // ~log(FLT_MAX); clamp above
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

inline float ExpScalar(float x0) {
  if (x0 < kExpLo) return 0.0f;
  const float x = std::min(x0, kExpHi);
  const float nf = std::nearbyintf(x * kLog2e);
  float r = x - nf * kLn2Hi;
  r = r - nf * kLn2Lo;
  float y = kExpC0;
  y = y * r + kExpC1;
  y = y * r + kExpC2;
  y = y * r + kExpC3;
  y = y * r + kExpC4;
  y = y * r + kExpC5;
  y = y * (r * r) + r + 1.0f;
  const int32_t n = static_cast<int32_t>(nf);
  const uint32_t bits = static_cast<uint32_t>(n + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return y * scale;
}

inline __m256 Exp8(__m256 x0) {
  const __m256 underflow =
      _mm256_cmp_ps(x0, _mm256_set1_ps(kExpLo), _CMP_LT_OQ);
  const __m256 x = _mm256_min_ps(x0, _mm256_set1_ps(kExpHi));
  const __m256 nf =
      _mm256_round_ps(_mm256_mul_ps(x, _mm256_set1_ps(kLog2e)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_sub_ps(x, _mm256_mul_ps(nf, _mm256_set1_ps(kLn2Hi)));
  r = _mm256_sub_ps(r, _mm256_mul_ps(nf, _mm256_set1_ps(kLn2Lo)));
  __m256 y = _mm256_set1_ps(kExpC0);
  y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(kExpC1));
  y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(kExpC2));
  y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(kExpC3));
  y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(kExpC4));
  y = _mm256_add_ps(_mm256_mul_ps(y, r), _mm256_set1_ps(kExpC5));
  const __m256 r2 = _mm256_mul_ps(r, r);
  y = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(y, r2), r),
                    _mm256_set1_ps(1.0f));
  const __m256i n = _mm256_cvtps_epi32(nf);
  const __m256i ebits =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(ebits));
  return _mm256_andnot_ps(underflow, y);
}

// Cephes tanhf split: odd polynomial below |x| = 0.625, exp form above
// (1 - 2/(e^{2|x|}+1) stays exact at ±1 for saturated inputs).
constexpr float kTanhSwitch = 0.625f;
constexpr float kTanhC0 = -5.70498872745e-3f;
constexpr float kTanhC1 = 2.06390887954e-2f;
constexpr float kTanhC2 = -5.37397155531e-2f;
constexpr float kTanhC3 = 1.33314422036e-1f;
constexpr float kTanhC4 = -3.33332819422e-1f;

inline float TanhScalar(float x) {
  const float ax = std::fabs(x);
  if (ax < kTanhSwitch) {
    const float z = x * x;
    float p = kTanhC0;
    p = p * z + kTanhC1;
    p = p * z + kTanhC2;
    p = p * z + kTanhC3;
    p = p * z + kTanhC4;
    return x + x * (z * p);
  }
  const float e = ExpScalar(2.0f * ax);
  const float t = 1.0f - 2.0f / (e + 1.0f);
  return x < 0.0f ? -t : t;
}

inline __m256 Tanh8(__m256 x) {
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 ax = _mm256_andnot_ps(sign_bit, x);
  const __m256 e = Exp8(_mm256_mul_ps(ax, _mm256_set1_ps(2.0f)));
  __m256 large =
      _mm256_sub_ps(_mm256_set1_ps(1.0f),
                    _mm256_div_ps(_mm256_set1_ps(2.0f),
                                  _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  large = _mm256_or_ps(large, _mm256_and_ps(x, sign_bit));
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhC0);
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhC1));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhC2));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhC3));
  p = _mm256_add_ps(_mm256_mul_ps(p, z), _mm256_set1_ps(kTanhC4));
  const __m256 small =
      _mm256_add_ps(x, _mm256_mul_ps(x, _mm256_mul_ps(z, p)));
  const __m256 use_small =
      _mm256_cmp_ps(ax, _mm256_set1_ps(kTanhSwitch), _CMP_LT_OQ);
  return _mm256_blendv_ps(large, small, use_small);
}

inline float SigmoidScalar(float x) {
  return 1.0f / (1.0f + ExpScalar(-x));
}

inline __m256 Sigmoid8(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = Exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

// ---- MatMul micro-panels ---------------------------------------------------
// 6 C rows × 16 C columns of FMA accumulators per panel (the classic BLIS
// shape): 12 ymm accumulators plus 2 streamed B vectors and 1 broadcast fill
// 15 of the 16 registers, and the 12 FMAs per p amortize the 8 loads (2 B
// stripes + 6 A broadcasts) well enough to be FMA-port-bound instead of
// load-bound. Each C element still accumulates in ascending p with one fused
// step per p — the same per-element sequence as the 8-wide row stripes below
// — so results are identical at any thread count and any panel split (the
// partition only decides panel membership, never accumulation order).

inline void MatMulNNPanel(const float* a, const float* b, float* c,
                          int64_t i0, int64_t rows, int64_t k, int64_t m) {
  const float* arow[6];
  float* crow[6];
  for (int64_t r = 0; r < rows; ++r) {
    arow[r] = a + (i0 + r) * k;
    crow[r] = c + (i0 + r) * m;
  }
  int64_t j = 0;
  if (rows == 6) {
    for (; j + 16 <= m; j += 16) {
      __m256 x00 = _mm256_loadu_ps(crow[0] + j);
      __m256 x01 = _mm256_loadu_ps(crow[0] + j + 8);
      __m256 x10 = _mm256_loadu_ps(crow[1] + j);
      __m256 x11 = _mm256_loadu_ps(crow[1] + j + 8);
      __m256 x20 = _mm256_loadu_ps(crow[2] + j);
      __m256 x21 = _mm256_loadu_ps(crow[2] + j + 8);
      __m256 x30 = _mm256_loadu_ps(crow[3] + j);
      __m256 x31 = _mm256_loadu_ps(crow[3] + j + 8);
      __m256 x40 = _mm256_loadu_ps(crow[4] + j);
      __m256 x41 = _mm256_loadu_ps(crow[4] + j + 8);
      __m256 x50 = _mm256_loadu_ps(crow[5] + j);
      __m256 x51 = _mm256_loadu_ps(crow[5] + j + 8);
      // p unrolled by 2 to amortize loop overhead against the 4-wide
      // front-end; each accumulator still sees one fused step per p in
      // ascending order, so the unroll does not change any result bit.
      int64_t p = 0;
      for (; p + 2 <= k; p += 2) {
        const float* bp = b + p * m + j;
        __m256 b0 = _mm256_loadu_ps(bp);
        __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(arow[0][p]);
        x00 = _mm256_fmadd_ps(av, b0, x00);
        x01 = _mm256_fmadd_ps(av, b1, x01);
        av = _mm256_set1_ps(arow[1][p]);
        x10 = _mm256_fmadd_ps(av, b0, x10);
        x11 = _mm256_fmadd_ps(av, b1, x11);
        av = _mm256_set1_ps(arow[2][p]);
        x20 = _mm256_fmadd_ps(av, b0, x20);
        x21 = _mm256_fmadd_ps(av, b1, x21);
        av = _mm256_set1_ps(arow[3][p]);
        x30 = _mm256_fmadd_ps(av, b0, x30);
        x31 = _mm256_fmadd_ps(av, b1, x31);
        av = _mm256_set1_ps(arow[4][p]);
        x40 = _mm256_fmadd_ps(av, b0, x40);
        x41 = _mm256_fmadd_ps(av, b1, x41);
        av = _mm256_set1_ps(arow[5][p]);
        x50 = _mm256_fmadd_ps(av, b0, x50);
        x51 = _mm256_fmadd_ps(av, b1, x51);
        const float* bq = bp + m;
        b0 = _mm256_loadu_ps(bq);
        b1 = _mm256_loadu_ps(bq + 8);
        av = _mm256_set1_ps(arow[0][p + 1]);
        x00 = _mm256_fmadd_ps(av, b0, x00);
        x01 = _mm256_fmadd_ps(av, b1, x01);
        av = _mm256_set1_ps(arow[1][p + 1]);
        x10 = _mm256_fmadd_ps(av, b0, x10);
        x11 = _mm256_fmadd_ps(av, b1, x11);
        av = _mm256_set1_ps(arow[2][p + 1]);
        x20 = _mm256_fmadd_ps(av, b0, x20);
        x21 = _mm256_fmadd_ps(av, b1, x21);
        av = _mm256_set1_ps(arow[3][p + 1]);
        x30 = _mm256_fmadd_ps(av, b0, x30);
        x31 = _mm256_fmadd_ps(av, b1, x31);
        av = _mm256_set1_ps(arow[4][p + 1]);
        x40 = _mm256_fmadd_ps(av, b0, x40);
        x41 = _mm256_fmadd_ps(av, b1, x41);
        av = _mm256_set1_ps(arow[5][p + 1]);
        x50 = _mm256_fmadd_ps(av, b0, x50);
        x51 = _mm256_fmadd_ps(av, b1, x51);
      }
      for (; p < k; ++p) {
        const float* bp = b + p * m + j;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(arow[0][p]);
        x00 = _mm256_fmadd_ps(av, b0, x00);
        x01 = _mm256_fmadd_ps(av, b1, x01);
        av = _mm256_set1_ps(arow[1][p]);
        x10 = _mm256_fmadd_ps(av, b0, x10);
        x11 = _mm256_fmadd_ps(av, b1, x11);
        av = _mm256_set1_ps(arow[2][p]);
        x20 = _mm256_fmadd_ps(av, b0, x20);
        x21 = _mm256_fmadd_ps(av, b1, x21);
        av = _mm256_set1_ps(arow[3][p]);
        x30 = _mm256_fmadd_ps(av, b0, x30);
        x31 = _mm256_fmadd_ps(av, b1, x31);
        av = _mm256_set1_ps(arow[4][p]);
        x40 = _mm256_fmadd_ps(av, b0, x40);
        x41 = _mm256_fmadd_ps(av, b1, x41);
        av = _mm256_set1_ps(arow[5][p]);
        x50 = _mm256_fmadd_ps(av, b0, x50);
        x51 = _mm256_fmadd_ps(av, b1, x51);
      }
      _mm256_storeu_ps(crow[0] + j, x00);
      _mm256_storeu_ps(crow[0] + j + 8, x01);
      _mm256_storeu_ps(crow[1] + j, x10);
      _mm256_storeu_ps(crow[1] + j + 8, x11);
      _mm256_storeu_ps(crow[2] + j, x20);
      _mm256_storeu_ps(crow[2] + j + 8, x21);
      _mm256_storeu_ps(crow[3] + j, x30);
      _mm256_storeu_ps(crow[3] + j + 8, x31);
      _mm256_storeu_ps(crow[4] + j, x40);
      _mm256_storeu_ps(crow[4] + j + 8, x41);
      _mm256_storeu_ps(crow[5] + j, x50);
      _mm256_storeu_ps(crow[5] + j + 8, x51);
    }
  }
  // 8-wide stripes (and all stripes of short panels), one row at a time.
  for (int64_t r = 0; r < rows; ++r) {
    const float* ar = arow[r];
    float* cr = crow[r];
    for (int64_t jj = j; jj + 8 <= m; jj += 8) {
      __m256 acc = _mm256_loadu_ps(cr + jj);
      for (int64_t p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(ar[p]),
                              _mm256_loadu_ps(b + p * m + jj), acc);
      }
      _mm256_storeu_ps(cr + jj, acc);
    }
    const int64_t jtail = j + ((m - j) / 8) * 8;
    for (int64_t jj = jtail; jj < m; ++jj) {
      float acc = cr[jj];
      for (int64_t p = 0; p < k; ++p) acc += ar[p] * b[p * m + jj];
      cr[jj] = acc;
    }
  }
}

void MatMulNNAvx2(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    int64_t i = r0;
    for (; i + 6 <= r1; i += 6) MatMulNNPanel(a, b, c, i, 6, k, m);
    if (i < r1) MatMulNNPanel(a, b, c, i, r1 - i, k, m);
  });
}

// TN: output row i is column i of A, so the broadcasts stride by n.
inline void MatMulTNPanel(const float* a, const float* b, float* c,
                          int64_t i0, int64_t rows, int64_t k, int64_t n,
                          int64_t m) {
  float* crow[4];
  for (int64_t r = 0; r < rows; ++r) crow[r] = c + (i0 + r) * m;
  int64_t j = 0;
  if (rows == 4) {
    for (; j + 16 <= m; j += 16) {
      __m256 x00 = _mm256_loadu_ps(crow[0] + j);
      __m256 x01 = _mm256_loadu_ps(crow[0] + j + 8);
      __m256 x10 = _mm256_loadu_ps(crow[1] + j);
      __m256 x11 = _mm256_loadu_ps(crow[1] + j + 8);
      __m256 x20 = _mm256_loadu_ps(crow[2] + j);
      __m256 x21 = _mm256_loadu_ps(crow[2] + j + 8);
      __m256 x30 = _mm256_loadu_ps(crow[3] + j);
      __m256 x31 = _mm256_loadu_ps(crow[3] + j + 8);
      for (int64_t p = 0; p < k; ++p) {
        const float* ap = a + p * n + i0;
        const float* bp = b + p * m + j;
        const __m256 b0 = _mm256_loadu_ps(bp);
        const __m256 b1 = _mm256_loadu_ps(bp + 8);
        __m256 av = _mm256_set1_ps(ap[0]);
        x00 = _mm256_fmadd_ps(av, b0, x00);
        x01 = _mm256_fmadd_ps(av, b1, x01);
        av = _mm256_set1_ps(ap[1]);
        x10 = _mm256_fmadd_ps(av, b0, x10);
        x11 = _mm256_fmadd_ps(av, b1, x11);
        av = _mm256_set1_ps(ap[2]);
        x20 = _mm256_fmadd_ps(av, b0, x20);
        x21 = _mm256_fmadd_ps(av, b1, x21);
        av = _mm256_set1_ps(ap[3]);
        x30 = _mm256_fmadd_ps(av, b0, x30);
        x31 = _mm256_fmadd_ps(av, b1, x31);
      }
      _mm256_storeu_ps(crow[0] + j, x00);
      _mm256_storeu_ps(crow[0] + j + 8, x01);
      _mm256_storeu_ps(crow[1] + j, x10);
      _mm256_storeu_ps(crow[1] + j + 8, x11);
      _mm256_storeu_ps(crow[2] + j, x20);
      _mm256_storeu_ps(crow[2] + j + 8, x21);
      _mm256_storeu_ps(crow[3] + j, x30);
      _mm256_storeu_ps(crow[3] + j + 8, x31);
    }
  }
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t i = i0 + r;
    float* cr = crow[r];
    for (int64_t jj = j; jj + 8 <= m; jj += 8) {
      __m256 acc = _mm256_loadu_ps(cr + jj);
      for (int64_t p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(a[p * n + i]),
                              _mm256_loadu_ps(b + p * m + jj), acc);
      }
      _mm256_storeu_ps(cr + jj, acc);
    }
    const int64_t jtail = j + ((m - j) / 8) * 8;
    for (int64_t jj = jtail; jj < m; ++jj) {
      float acc = cr[jj];
      for (int64_t p = 0; p < k; ++p) acc += a[p * n + i] * b[p * m + jj];
      cr[jj] = acc;
    }
  }
}

void MatMulTNAvx2(const float* a, const float* b, float* c, int64_t k,
                  int64_t n, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    int64_t i = r0;
    for (; i + 4 <= r1; i += 4) MatMulTNPanel(a, b, c, i, 4, k, n, m);
    if (i < r1) MatMulTNPanel(a, b, c, i, r1 - i, k, n, m);
  });
}

// NT: per output element a k-dot of two contiguous rows — vectorize the dot
// with 4 B rows sharing each streamed A vector.
void MatMulNTAvx2(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      int64_t j = 0;
      for (; j + 4 <= m; j += 4) {
        __m256 acc0 = _mm256_setzero_ps();
        __m256 acc1 = _mm256_setzero_ps();
        __m256 acc2 = _mm256_setzero_ps();
        __m256 acc3 = _mm256_setzero_ps();
        const float* b0 = b + (j + 0) * k;
        const float* b1 = b + (j + 1) * k;
        const float* b2 = b + (j + 2) * k;
        const float* b3 = b + (j + 3) * k;
        int64_t p = 0;
        for (; p + 8 <= k; p += 8) {
          const __m256 av = _mm256_loadu_ps(arow + p);
          acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0 + p), acc0);
          acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1 + p), acc1);
          acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2 + p), acc2);
          acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3 + p), acc3);
        }
        float t0 = Hsum8(acc0);
        float t1 = Hsum8(acc1);
        float t2 = Hsum8(acc2);
        float t3 = Hsum8(acc3);
        for (; p < k; ++p) {
          const float av = arow[p];
          t0 += av * b0[p];
          t1 += av * b1[p];
          t2 += av * b2[p];
          t3 += av * b3[p];
        }
        crow[j + 0] += t0;
        crow[j + 1] += t1;
        crow[j + 2] += t2;
        crow[j + 3] += t3;
      }
      for (; j < m; ++j) {
        const float* brow = b + j * k;
        __m256 acc = _mm256_setzero_ps();
        int64_t p = 0;
        for (; p + 8 <= k; p += 8) {
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + p),
                                _mm256_loadu_ps(brow + p), acc);
        }
        float t = Hsum8(acc);
        for (; p < k; ++p) t += arow[p] * brow[p];
        crow[j] += t;
      }
    }
  });
}

// ---- exact column-parallel kernels ----------------------------------------
// Vectorizing across output columns turns the scalar backend's stride-m
// column walks into contiguous row loads while leaving every column's
// ascending-i mul/add sequence untouched: fast *and* bit-identical.

void VecMatColsAvx2(const float* x, const float* w, float* out, int64_t n,
                    int64_t m, bool skip_zero) {
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    int64_t l = c0;
    for (; l + 8 <= c1; l += 8) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t i = 0; i < n; ++i) {
        const float xv = x[i];
        if (skip_zero && xv == 0.0f) continue;
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_set1_ps(xv),
                               _mm256_loadu_ps(w + i * m + l)));
      }
      _mm256_storeu_ps(out + l, acc);
    }
    for (; l < c1; ++l) {
      float acc = 0.0f;
      const float* col = w + l;
      if (skip_zero) {
        for (int64_t i = 0; i < n; ++i) {
          const float xv = x[i];
          if (xv == 0.0f) continue;
          acc += xv * col[i * m];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) acc += x[i] * col[i * m];
      }
      out[l] = acc;
    }
  });
}

void VecMatColsF64Avx2(const float* x, const float* w, float* out, int64_t n,
                       int64_t m) {
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    int64_t l = c0;
    for (; l + 4 <= c1; l += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int64_t i = 0; i < n; ++i) {
        const __m256d wd = _mm256_cvtps_pd(_mm_loadu_ps(w + i * m + l));
        const __m256d xd = _mm256_set1_pd(static_cast<double>(x[i]));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(xd, wd));
      }
      _mm_storeu_ps(out + l, _mm256_cvtpd_ps(acc));
    }
    for (; l < c1; ++l) {
      const float* col = w + l;
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        acc += static_cast<double>(x[i]) * col[i * m];
      }
      out[l] = static_cast<float>(acc);
    }
  });
}

void AxpyAvx2(int64_t n, float alpha, const float* x, float* y) {
  common::ParallelFor(0, n, GrainForWork(1), [=](int64_t lo, int64_t hi) {
    const __m256 av = _mm256_set1_ps(alpha);
    int64_t i = lo;
    for (; i + 8 <= hi; i += 8) {
      const __m256 yv = _mm256_add_ps(
          _mm256_loadu_ps(y + i), _mm256_mul_ps(av, _mm256_loadu_ps(x + i)));
      _mm256_storeu_ps(y + i, yv);
    }
    for (; i < hi; ++i) y[i] += alpha * x[i];
  });
}

// ---- transcendental row kernels -------------------------------------------

void BiasTanhAvx2(const float* x, const float* b, float* out, int64_t rows,
                  int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      int64_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        const __m256 pre = _mm256_add_ps(_mm256_loadu_ps(xrow + c),
                                         _mm256_loadu_ps(brow + c));
        _mm256_storeu_ps(orow + c, Tanh8(pre));
      }
      for (; c < cols; ++c) orow[c] = TanhScalar(xrow[c] + brow[c]);
    }
  });
}

void BiasSigmoidAvx2(const float* x, const float* b, float* out, int64_t rows,
                     int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      int64_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        const __m256 pre = _mm256_add_ps(_mm256_loadu_ps(xrow + c),
                                         _mm256_loadu_ps(brow + c));
        _mm256_storeu_ps(orow + c, Sigmoid8(pre));
      }
      for (; c < cols; ++c) orow[c] = SigmoidScalar(xrow[c] + brow[c]);
    }
  });
}

// One softmax row over xrow[0, v): vector max (max is order-invariant, so
// this matches the scalar max exactly), Exp8 written through orow, scalar
// ascending-order sum (position-fixed, thread-invariant), vector scale.
inline void SoftmaxRowAvx2(const float* xrow, float* orow, int64_t v) {
  float mx;
  if (v >= 8) {
    __m256 m8 = _mm256_loadu_ps(xrow);
    int64_t c = 8;
    for (; c + 8 <= v; c += 8) {
      m8 = _mm256_max_ps(m8, _mm256_loadu_ps(xrow + c));
    }
    mx = Hmax8(m8);
    for (; c < v; ++c) mx = std::max(mx, xrow[c]);
  } else {
    mx = xrow[0];
    for (int64_t c = 1; c < v; ++c) mx = std::max(mx, xrow[c]);
  }
  const __m256 mxv = _mm256_set1_ps(mx);
  int64_t c = 0;
  for (; c + 8 <= v; c += 8) {
    _mm256_storeu_ps(orow + c,
                     Exp8(_mm256_sub_ps(_mm256_loadu_ps(xrow + c), mxv)));
  }
  for (; c < v; ++c) orow[c] = ExpScalar(xrow[c] - mx);
  float denom = 0.0f;
  for (int64_t cc = 0; cc < v; ++cc) denom += orow[cc];
  const float inv = 1.0f / denom;
  const __m256 invv = _mm256_set1_ps(inv);
  c = 0;
  for (; c + 8 <= v; c += 8) {
    _mm256_storeu_ps(orow + c,
                     _mm256_mul_ps(_mm256_loadu_ps(orow + c), invv));
  }
  for (; c < v; ++c) orow[c] *= inv;
}

void MaskedSoftmaxRowsAvx2(const float* x, float* out, int64_t rows,
                           int64_t cols, const int64_t* valid) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t v = valid[r];
      float* orow = out + r * cols;
      SoftmaxRowAvx2(x + r * cols, orow, v);
      for (int64_t c = v; c < cols; ++c) orow[c] = 0.0f;
    }
  });
}

void SoftmaxRowsAvx2(const float* x, float* out, int64_t rows, int64_t cols) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      SoftmaxRowAvx2(x + r * cols, out + r * cols, cols);
    }
  });
}

// One-pass entropy: with e_i = exp(v_i - mx), S0 = Σe_i, S1 = Σe_i(v_i-mx),
// H = -Σ (e_i/S0)·log(e_i/S0) = log(S0) - S1/S0 — one Exp8 sweep instead of
// the scalar backend's two std::exp passes (whose tiny-p guard contributes
// O(1e-12·log) terms this form absorbs into the sum).
float SoftmaxEntropyAvx2(const float* logits, int64_t n) {
  float mx;
  if (n >= 8) {
    __m256 m8 = _mm256_loadu_ps(logits);
    int64_t c = 8;
    for (; c + 8 <= n; c += 8) {
      m8 = _mm256_max_ps(m8, _mm256_loadu_ps(logits + c));
    }
    mx = Hmax8(m8);
    for (; c < n; ++c) mx = std::max(mx, logits[c]);
  } else {
    mx = logits[0];
    for (int64_t c = 1; c < n; ++c) mx = std::max(mx, logits[c]);
  }
  const __m256 mxv = _mm256_set1_ps(mx);
  __m256 s0 = _mm256_setzero_ps();
  __m256 s1 = _mm256_setzero_ps();
  int64_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(logits + c), mxv);
    const __m256 e = Exp8(d);
    s0 = _mm256_add_ps(s0, e);
    s1 = _mm256_add_ps(s1, _mm256_mul_ps(e, d));
  }
  double sum0 = Hsum8(s0);
  double sum1 = Hsum8(s1);
  for (; c < n; ++c) {
    const float d = logits[c] - mx;
    const float e = ExpScalar(d);
    sum0 += e;
    sum1 += static_cast<double>(e) * d;
  }
  return static_cast<float>(std::log(sum0) - sum1 / sum0);
}

// Four centroid elements per step, accumulated in double exactly as the
// scalar backend (θ first, then patterns in arrival order); only the final
// query·centroid reduction uses lane partials.
double PttaCentroidDotAvx2(const float* query, const float* wcol,
                           int64_t wstride, const float* patterns,
                           int64_t keep, int64_t h) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= h; i += 4) {
    __m256d ci = _mm256_set_pd(
        wcol[(i + 3) * wstride], wcol[(i + 2) * wstride],
        wcol[(i + 1) * wstride], wcol[i * wstride]);
    for (int64_t k = 0; k < keep; ++k) {
      ci = _mm256_add_pd(ci,
                         _mm256_cvtps_pd(_mm_loadu_ps(patterns + k * h + i)));
    }
    const __m256d qd = _mm256_cvtps_pd(_mm_loadu_ps(query + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(qd, ci));
  }
  double result = Hsum4d(acc);
  for (; i < h; ++i) {
    double ci = wcol[i * wstride];
    for (int64_t k = 0; k < keep; ++k) ci += patterns[k * h + i];
    result += static_cast<double>(query[i]) * ci;
  }
  return result;
}

}  // namespace

const KernelTable* Avx2TableOrNull() {
  if (!common::CpuHasAvx2() || !common::CpuHasFma()) return nullptr;
  static const KernelTable table = {
      MatMulNNAvx2,      MatMulTNAvx2,         MatMulNTAvx2,
      VecMatColsAvx2,    VecMatColsF64Avx2,    BiasTanhAvx2,
      BiasSigmoidAvx2,   AxpyAvx2,             MaskedSoftmaxRowsAvx2,
      SoftmaxRowsAvx2,   SoftmaxEntropyAvx2,   PttaCentroidDotAvx2,
  };
  return &table;
}

}  // namespace adamove::nn::kernels

#else  // !(__AVX2__ && __FMA__): non-x86 build or flags missing

namespace adamove::nn::kernels {
const KernelTable* Avx2TableOrNull() { return nullptr; }
}  // namespace adamove::nn::kernels

#endif
