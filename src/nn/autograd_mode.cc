#include "nn/autograd_mode.h"

namespace adamove::nn {

namespace {
thread_local bool grad_mode_enabled = true;
}  // namespace

bool GradModeEnabled() { return grad_mode_enabled; }

namespace internal_autograd {
void SetGradMode(bool enabled) { grad_mode_enabled = enabled; }
}  // namespace internal_autograd

}  // namespace adamove::nn
