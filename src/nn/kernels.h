#ifndef ADAMOVE_NN_KERNELS_H_
#define ADAMOVE_NN_KERNELS_H_

#include <cstdint>
#include <string>

namespace adamove::nn::kernels {

// Thread-parallel, cache-blocked compute kernels over raw row-major float
// buffers — the arithmetic substrate beneath the autograd ops and the PTTA
// hot path. Style follows Caffe2's kernel layer: small explicit flat loops
// over raw pointers, parallelized with a ParallelFor over output rows (or
// columns for the vector×matrix case) on the shared common thread pool.
//
// Determinism contract: parallelism is scheduling, never arithmetic. Every
// output element is accumulated by exactly one thread, in the same order as
// the reference serial loop (ascending inner index, identical skip-zero
// shortcuts), so results are bit-identical to a single-threaded run at any
// thread count. Tiling only reorders *which element* is visited next, never
// the accumulation order *within* an element. This holds for every backend.
//
// Backends (DESIGN.md §13): each kernel below dispatches through a
// function-pointer table selected once, lazily, at first kernel use:
//   * scalar — the historical portable loops; the repo's arithmetic
//     reference. All golden pins are defined against it.
//   * simd   — AVX2+FMA on x86 hosts that support it (NEON subset on ARM).
//     Bit-identical to scalar for the column-parallel kernels (VecMatCols,
//     VecMatColsF64, Axpy) whose per-element operation sequence it
//     preserves; tolerance-bounded for MatMul* (FMA micro-panels) and the
//     transcendental kernels (polynomial exp/tanh).
// Selection: ADAMOVE_KERNEL_BACKEND=scalar forces the reference;
// ADAMOVE_KERNEL_BACKEND=simd requests vector kernels (falls back to scalar
// when the host can't run them); unset picks the best available.

/// Which kernel table is active. kSimd covers any vector ISA (AVX2 or NEON);
/// BackendDescription() names the specific one.
enum class Backend : uint8_t {
  kScalar = 0,
  kSimd = 1,
};

/// The active backend, selecting one (env var + CPUID) on first call.
Backend ActiveBackend();

/// Stable short name for a backend value: "scalar" or "simd".
const char* BackendName(Backend backend);

/// Human-readable description of the *active* backend, e.g. "scalar" or
/// "simd (avx2+fma)" — what benches and bench_serving print.
std::string BackendDescription();

/// Re-reads ADAMOVE_KERNEL_BACKEND and reselects. For tests and bench mains
/// that set the env var after startup; returns the newly active backend.
/// Must not race in-flight kernels (callers swap backends only between
/// self-contained computations).
Backend RefreshBackendFromEnv();

/// Installs `backend` directly (still subject to availability: requesting
/// kSimd on a host without vector kernels installs scalar). Test-only.
void SetBackendForTest(Backend backend);

/// C({n,m}) += A({n,k}) * B({k,m}). Per element: ascending p. Scalar backend
/// skips A(i,p) == 0 terms (matches the historical ikj loop bit-for-bit);
/// vector backends are tolerance-bounded against it.
void MatMulNN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// C({n,m}) += A({k,n})^T * B({k,m}). Per element: ascending p; scalar
/// backend skips A(p,i) == 0.
void MatMulTN(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t m);

/// C({n,m}) += A({n,k}) * B({m,k})^T. Per element: a single ascending-p dot
/// product accumulated locally (no skip-zero, as historically).
void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// out({m,n}) = a({n,m})^T (assignment) or += when `accumulate`. Pure data
/// movement — shared by all backends, always bit-exact.
void TransposeInto(const float* a, float* out, int64_t n, int64_t m,
                   bool accumulate);

/// out[l] = sum_i x[i] * w[i*m + l] for l in [0, m) — a row vector times a
/// row-major {n, m} matrix, parallelized over output columns. When
/// `skip_zero`, terms with x[i] == 0 are skipped (the PTTA LogitsOf
/// contract). Accumulation is a per-column float in ascending i; the simd
/// backend vectorizes *across* columns and is bit-identical to scalar.
void VecMatCols(const float* x, const float* w, float* out, int64_t n,
                int64_t m, bool skip_zero);

/// VecMatCols with per-column double accumulation (ascending i, no
/// skip-zero), rounded to float on store — the frozen-classifier scoring
/// semantics of OnlineAdapter. Bit-identical across backends.
void VecMatColsF64(const float* x, const float* w, float* out, int64_t n,
                   int64_t m);

// -- fused elementwise kernels (one pass, vectorization-friendly bodies) ----

/// out[r,c] = tanh(x[r,c] + b[c])  (bias_rows == 1: row-broadcast bias)
/// out[r,c] = tanh(x[r,c] + b[r,c]) otherwise.
void BiasTanh(const float* x, const float* b, float* out, int64_t rows,
              int64_t cols, bool broadcast_bias);

/// Same shapes as BiasTanh with sigmoid: out = 1 / (1 + exp(-(x + b))).
void BiasSigmoid(const float* x, const float* b, float* out, int64_t rows,
                 int64_t cols, bool broadcast_bias);

/// y[i] += alpha * x[i] for i in [0, n). Bit-identical across backends.
void Axpy(int64_t n, float alpha, const float* x, float* y);

/// Row-wise masked softmax: row r is a softmax over its first valid[r]
/// entries (max-subtracted, float accumulation in ascending column order,
/// exactly mirroring the dense Softmax loop); entries at and beyond
/// valid[r] are written as 0. valid[r] must be in [1, cols].
void MaskedSoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols,
                       const int64_t* valid);

/// Dense row-wise softmax (valid == cols for every row).
void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols);

/// Shannon entropy (nats) of softmax(logits) — the PTTA entropy-importance
/// primitive. Scalar backend reproduces the historical double-accumulation
/// loop exactly; simd is tolerance-bounded.
float SoftmaxEntropy(const float* logits, int64_t n);

/// The PTTA adjusted-column score core: with centroid
///   c[i] = wcol[i*wstride] + sum_k patterns[k*h + i],
/// returns sum_i query[i] * c[i], accumulated in double, ascending i, θ
/// first then patterns in arrival order per element — bit-identical to
/// materializing the centroid and dotting it (the historical loop pair).
double PttaCentroidDot(const float* query, const float* wcol, int64_t wstride,
                       const float* patterns, int64_t keep, int64_t h);

/// Suggested ParallelFor grain for a loop whose per-index cost is roughly
/// `per_item_work` scalar operations: chunks are sized so each task does at
/// least ~32k operations, keeping submit overhead negligible.
int64_t GrainForWork(int64_t per_item_work);

}  // namespace adamove::nn::kernels

#endif  // ADAMOVE_NN_KERNELS_H_
