#ifndef ADAMOVE_NN_KERNELS_H_
#define ADAMOVE_NN_KERNELS_H_

#include <cstdint>

namespace adamove::nn::kernels {

// Thread-parallel, cache-blocked compute kernels over raw row-major float
// buffers — the arithmetic substrate beneath the autograd ops and the PTTA
// hot path. Style follows Caffe2's kernel layer: small explicit flat loops
// over raw pointers, parallelized with a ParallelFor over output rows (or
// columns for the vector×matrix case) on the shared common thread pool.
//
// Determinism contract: parallelism is scheduling, never arithmetic. Every
// output element is accumulated by exactly one thread, in the same order as
// the reference serial loop (ascending inner index, identical skip-zero
// shortcuts), so results are bit-identical to a single-threaded run at any
// thread count. Tiling only reorders *which element* is visited next, never
// the accumulation order *within* an element.

/// C({n,m}) += A({n,k}) * B({k,m}). Per element: ascending p, skipping
/// A(i,p) == 0 (matches the historical ikj loop bit-for-bit).
void MatMulNN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// C({n,m}) += A({k,n})^T * B({k,m}). Per element: ascending p, skipping
/// A(p,i) == 0.
void MatMulTN(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t m);

/// C({n,m}) += A({n,k}) * B({m,k})^T. Per element: a single ascending-p dot
/// product accumulated in a local float (no skip-zero, as historically).
void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m);

/// out({m,n}) = a({n,m})^T (assignment) or += when `accumulate`.
void TransposeInto(const float* a, float* out, int64_t n, int64_t m,
                   bool accumulate);

/// out[l] = sum_i x[i] * w[i*m + l] for l in [0, m) — a row vector times a
/// row-major {n, m} matrix, parallelized over output columns. When
/// `skip_zero`, terms with x[i] == 0 are skipped (the PTTA LogitsOf
/// contract). Accumulation is a per-column float in ascending i.
void VecMatCols(const float* x, const float* w, float* out, int64_t n,
                int64_t m, bool skip_zero);

// -- fused elementwise kernels (one pass, vectorization-friendly bodies) ----

/// out[r,c] = tanh(x[r,c] + b[c])  (bias_rows == 1: row-broadcast bias)
/// out[r,c] = tanh(x[r,c] + b[r,c]) otherwise.
void BiasTanh(const float* x, const float* b, float* out, int64_t rows,
              int64_t cols, bool broadcast_bias);

/// Same shapes as BiasTanh with sigmoid: out = 1 / (1 + exp(-(x + b))).
void BiasSigmoid(const float* x, const float* b, float* out, int64_t rows,
                 int64_t cols, bool broadcast_bias);

/// y[i] += alpha * x[i] for i in [0, n).
void Axpy(int64_t n, float alpha, const float* x, float* y);

/// Row-wise masked softmax: row r is a softmax over its first valid[r]
/// entries (max-subtracted, float accumulation in ascending column order,
/// exactly mirroring the dense Softmax loop); entries at and beyond
/// valid[r] are written as 0. valid[r] must be in [1, cols].
void MaskedSoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols,
                       const int64_t* valid);

/// Dense row-wise softmax (valid == cols for every row).
void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols);

/// Suggested ParallelFor grain for a loop whose per-index cost is roughly
/// `per_item_work` scalar operations: chunks are sized so each task does at
/// least ~32k operations, keeping submit overhead negligible.
int64_t GrainForWork(int64_t per_item_work);

}  // namespace adamove::nn::kernels

#endif  // ADAMOVE_NN_KERNELS_H_
