#include "nn/attention.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace adamove::nn {

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads,
                                       common::Rng& rng)
    : model_dim_(model_dim), num_heads_(num_heads) {
  ADAMOVE_CHECK_GT(num_heads, 0);
  ADAMOVE_CHECK_EQ(model_dim % num_heads, 0);
  head_dim_ = model_dim / num_heads;
  wq_ = std::make_unique<Linear>(model_dim, model_dim, rng, false);
  wk_ = std::make_unique<Linear>(model_dim, model_dim, rng, false);
  wv_ = std::make_unique<Linear>(model_dim, model_dim, rng, false);
  wo_ = std::make_unique<Linear>(model_dim, model_dim, rng, false);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

Tensor MultiHeadAttention::Forward(const Tensor& q, const Tensor& kv,
                                   bool causal) const {
  ADAMOVE_CHECK_EQ(q.cols(), model_dim_);
  ADAMOVE_CHECK_EQ(kv.cols(), model_dim_);
  Tensor qp = wq_->Forward(q);
  Tensor kp = wk_->Forward(kv);
  Tensor vp = wv_->Forward(kv);
  std::vector<Tensor> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    Tensor qh = SliceCols(qp, h * head_dim_, head_dim_);
    Tensor kh = SliceCols(kp, h * head_dim_, head_dim_);
    Tensor vh = SliceCols(vp, h * head_dim_, head_dim_);
    heads.push_back(ScaledDotAttention(qh, kh, vh, causal));
  }
  return wo_->Forward(ConcatCols(heads));
}

TransformerEncoderLayer::TransformerEncoderLayer(int64_t model_dim,
                                                 int64_t num_heads,
                                                 int64_t ffn_dim,
                                                 float dropout,
                                                 common::Rng& rng)
    : dropout_(dropout) {
  mha_ = std::make_unique<MultiHeadAttention>(model_dim, num_heads, rng);
  ln1_ = std::make_unique<LayerNormLayer>(model_dim);
  ln2_ = std::make_unique<LayerNormLayer>(model_dim);
  ffn1_ = std::make_unique<Linear>(model_dim, ffn_dim, rng);
  ffn2_ = std::make_unique<Linear>(ffn_dim, model_dim, rng);
  RegisterModule("mha", mha_.get());
  RegisterModule("ln1", ln1_.get());
  RegisterModule("ln2", ln2_.get());
  RegisterModule("ffn1", ffn1_.get());
  RegisterModule("ffn2", ffn2_.get());
}

Tensor TransformerEncoderLayer::Forward(const Tensor& x, bool causal,
                                        bool training,
                                        common::Rng& rng) const {
  Tensor normed = ln1_->Forward(x);
  Tensor attn = mha_->Forward(normed, normed, causal);
  Tensor h = Add(x, Dropout(attn, dropout_, rng, training));
  Tensor ffn = ffn2_->Forward(Relu(ffn1_->Forward(ln2_->Forward(h))));
  return Add(h, Dropout(ffn, dropout_, rng, training));
}

TransformerSeqEncoder::TransformerSeqEncoder(int64_t input_size,
                                             int64_t hidden_size,
                                             int64_t num_layers,
                                             int64_t num_heads, float dropout,
                                             common::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      dropout_(dropout),
      dropout_rng_(rng.engine()()) {
  input_proj_ = std::make_unique<Linear>(input_size, hidden_size, rng);
  RegisterModule("input_proj", input_proj_.get());
  for (int64_t i = 0; i < num_layers; ++i) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        hidden_size, num_heads, 2 * hidden_size, dropout, rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
  final_ln_ = std::make_unique<LayerNormLayer>(hidden_size);
  RegisterModule("final_ln", final_ln_.get());
}

Tensor TransformerSeqEncoder::Forward(const Tensor& x, bool training) {
  ADAMOVE_CHECK_EQ(x.cols(), input_size_);
  Tensor h = AddPositionalEncoding(input_proj_->Forward(x));
  for (const auto& layer : layers_) {
    h = layer->Forward(h, /*causal=*/true, training, dropout_rng_);
  }
  return final_ln_->Forward(h);
}

Tensor AddPositionalEncoding(const Tensor& x) {
  const int64_t t_len = x.rows(), d = x.cols();
  Tensor pe = Tensor::Zeros({t_len, d});
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t i = 0; i < d; i += 2) {
      const double freq =
          std::pow(10000.0, -static_cast<double>(i) / static_cast<double>(d));
      pe.set(t, i, static_cast<float>(std::sin(t * freq)));
      if (i + 1 < d) {
        pe.set(t, i + 1, static_cast<float>(std::cos(t * freq)));
      }
    }
  }
  return Add(x, pe);
}

}  // namespace adamove::nn
