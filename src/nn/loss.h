#ifndef ADAMOVE_NN_LOSS_H_
#define ADAMOVE_NN_LOSS_H_

#include "nn/tensor.h"

namespace adamove::nn {

/// InfoNCE contrastive loss exactly as Eq. (9) of the AdaMove paper:
///
///   L = -log( exp(sim(anchor, positive)) / sum_k exp(sim(anchor, neg_k)) )
///     = -sim(anchor, positive) + logsumexp_k sim(anchor, neg_k)
///
/// where sim is cosine similarity. Note the paper's denominator ranges over
/// negatives only (it does not include the positive pair); `include_positive
/// _in_denominator` switches to the textbook InfoNCE form for ablation.
///
/// `temperature` divides the cosine similarities before the exp (the usual
/// InfoNCE temperature; 1.0 reproduces Eq. (9) literally, smaller values
/// sharpen the contrast as in CLIP-style training).
///
/// anchor: {1, H}; positive: {1, H}; negatives: {K, H} with K >= 1.
Tensor InfoNceLoss(const Tensor& anchor, const Tensor& positive,
                   const Tensor& negatives,
                   bool include_positive_in_denominator = false,
                   float temperature = 1.0f);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_LOSS_H_
