#ifndef ADAMOVE_NN_KERNELS_BACKEND_H_
#define ADAMOVE_NN_KERNELS_BACKEND_H_

#include <cstdint>

// Internal plumbing of the kernel backend dispatch (include only from
// src/nn/kernels*.cc and backend tests): one function-pointer table per
// backend, selected once at startup by kernels.cc. Each entry is the
// complete parallel kernel (ParallelFor inside), so a table swap changes
// arithmetic implementation and nothing else.
//
// Backend contract (DESIGN.md §13): the scalar table is the reference
// semantics — bit-identical to the historical serial loops at any thread
// count. A vector table must be *exact* (bit-identical to scalar) for
// kernels whose per-element accumulation order it preserves — VecMatCols,
// VecMatColsF64, Axpy, PttaCentroidDot's per-element centroid — and may be
// tolerance-bounded where it reassociates sums (MatMul*) or substitutes a
// polynomial exp (BiasTanh/BiasSigmoid/softmax/entropy). Which kernel is
// which is pinned by tests/nn/kernels_backend_test.cc.

namespace adamove::nn::kernels {

struct KernelTable {
  void (*matmul_nn)(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m);
  void (*matmul_tn)(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t m);
  void (*matmul_nt)(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m);
  void (*vec_mat_cols)(const float* x, const float* w, float* out, int64_t n,
                       int64_t m, bool skip_zero);
  void (*vec_mat_cols_f64)(const float* x, const float* w, float* out,
                           int64_t n, int64_t m);
  void (*bias_tanh)(const float* x, const float* b, float* out, int64_t rows,
                    int64_t cols, bool broadcast_bias);
  void (*bias_sigmoid)(const float* x, const float* b, float* out,
                       int64_t rows, int64_t cols, bool broadcast_bias);
  void (*axpy)(int64_t n, float alpha, const float* x, float* y);
  void (*masked_softmax_rows)(const float* x, float* out, int64_t rows,
                              int64_t cols, const int64_t* valid);
  void (*softmax_rows)(const float* x, float* out, int64_t rows,
                       int64_t cols);
  float (*softmax_entropy)(const float* logits, int64_t n);
  double (*ptta_centroid_dot)(const float* query, const float* wcol,
                              int64_t wstride, const float* patterns,
                              int64_t keep, int64_t h);
};

/// The scalar reference backend — always available.
const KernelTable& ScalarTable();

/// The AVX2+FMA backend; null when the binary lacks the translation unit
/// (non-x86 build) or the host CPU lacks avx2/fma.
const KernelTable* Avx2TableOrNull();

/// The NEON backend (vector float32x4 for the bandwidth-bound kernels,
/// scalar fallbacks for the rest); null off-ARM.
const KernelTable* NeonTableOrNull();

}  // namespace adamove::nn::kernels

#endif  // ADAMOVE_NN_KERNELS_BACKEND_H_
