#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel_for.h"
#include "nn/autograd_mode.h"
#include "nn/kernels.h"

namespace adamove::nn {

namespace {

constexpr float kEps = 1e-12f;

bool AnyRequiresGrad(std::initializer_list<const Tensor*> ts) {
  if (!GradModeEnabled()) return false;
  for (const Tensor* t : ts) {
    if (t->defined() && t->requires_grad()) return true;
  }
  return false;
}

std::shared_ptr<TensorImpl> NewNode(std::vector<int64_t> shape,
                                    bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(impl->size()), 0.0f);
  impl->requires_grad = requires_grad;
  return impl;
}

// Adds `src_grad` (the out-grad) into `dst`'s grad with optional row
// broadcast reduction: if dst has 1 row but the out tensor had R rows, the
// gradient is summed over rows.
void AccumulateWithRowBroadcast(TensorImpl* dst,
                                const std::vector<float>& out_grad,
                                int64_t out_rows, int64_t out_cols) {
  dst->EnsureGrad();
  int64_t dst_rows = dst->shape.size() == 1 ? 1 : dst->shape[0];
  if (dst_rows == out_rows) {
    for (size_t i = 0; i < out_grad.size(); ++i) dst->grad[i] += out_grad[i];
  } else {
    ADAMOVE_CHECK_EQ(dst_rows, 1);
    for (int64_t r = 0; r < out_rows; ++r) {
      for (int64_t c = 0; c < out_cols; ++c) {
        dst->grad[static_cast<size_t>(c)] +=
            out_grad[static_cast<size_t>(r * out_cols + c)];
      }
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  ADAMOVE_CHECK_EQ(a.cols(), b.cols());
  const bool broadcast = (b.rows() == 1 && a.rows() > 1);
  ADAMOVE_CHECK(broadcast || a.rows() == b.rows());
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  const auto& bd = b.data();
  for (int64_t r = 0; r < rows; ++r) {
    const size_t ao = static_cast<size_t>(r * cols);
    const size_t bo = broadcast ? 0 : ao;
    for (int64_t c = 0; c < cols; ++c) {
      out->data[ao + c] = ad[ao + c] + bd[bo + c];
    }
  }
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi, rows, cols]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        kernels::Axpy(static_cast<int64_t>(oi->grad.size()), 1.0f,
                      oi->grad.data(), ai->grad.data());
      }
      if (bi->requires_grad) {
        AccumulateWithRowBroadcast(bi.get(), oi->grad, rows, cols);
      }
    };
  }
  return Tensor(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  ADAMOVE_CHECK_EQ(a.cols(), b.cols());
  const bool broadcast = (b.rows() == 1 && a.rows() > 1);
  ADAMOVE_CHECK(broadcast || a.rows() == b.rows());
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  const auto& bd = b.data();
  for (int64_t r = 0; r < rows; ++r) {
    const size_t ao = static_cast<size_t>(r * cols);
    const size_t bo = broadcast ? 0 : ao;
    for (int64_t c = 0; c < cols; ++c) {
      out->data[ao + c] = ad[ao + c] - bd[bo + c];
    }
  }
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi, rows, cols]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) ai->grad[i] += oi->grad[i];
      }
      if (bi->requires_grad) {
        std::vector<float> neg(oi->grad.size());
        for (size_t i = 0; i < neg.size(); ++i) neg[i] = -oi->grad[i];
        AccumulateWithRowBroadcast(bi.get(), neg, rows, cols);
      }
    };
  }
  return Tensor(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  ADAMOVE_CHECK(a.shape() == b.shape());
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  const auto& bd = b.data();
  for (size_t i = 0; i < ad.size(); ++i) out->data[i] = ad[i] * bd[i];
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) {
          ai->grad[i] += oi->grad[i] * bi->data[i];
        }
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        for (size_t i = 0; i < oi->grad.size(); ++i) {
          bi->grad[i] += oi->grad[i] * ai->data[i];
        }
      }
    };
  }
  return Tensor(out);
}

Tensor ScalarMul(const Tensor& a, float s) {
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  for (size_t i = 0; i < ad.size(); ++i) out->data[i] = ad[i] * s;
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, s]() {
      ai->EnsureGrad();
      kernels::Axpy(static_cast<int64_t>(oi->grad.size()), s,
                    oi->grad.data(), ai->grad.data());
    };
  }
  return Tensor(out);
}

Tensor ScalarAdd(const Tensor& a, float s) {
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  for (size_t i = 0; i < ad.size(); ++i) out->data[i] = ad[i] + s;
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) ai->grad[i] += oi->grad[i];
    };
  }
  return Tensor(out);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  ADAMOVE_CHECK(a.shape() == b.shape());
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  const auto& bd = b.data();
  auto safe = [](float v) {
    return std::abs(v) < kEps ? (v < 0.0f ? -kEps : kEps) : v;
  };
  for (size_t i = 0; i < ad.size(); ++i) out->data[i] = ad[i] / safe(bd[i]);
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi, safe]() {
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        const float inv_b = 1.0f / safe(bi->data[i]);
        if (ai->requires_grad) {
          ai->EnsureGrad();
          ai->grad[i] += oi->grad[i] * inv_b;
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          bi->grad[i] -= oi->grad[i] * ai->data[i] * inv_b * inv_b;
        }
      }
    };
  }
  return Tensor(out);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  ADAMOVE_CHECK_EQ(k, b.rows());
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode({n, m}, rg);
  // Always the same kernel regardless of n: the causal-prefix contract
  // (rnn_test CausalPrefixProperty) requires row i of an n-row product to be
  // bit-identical to the same row computed alone, which holds within one
  // kernel (per-row arithmetic is row-count-invariant) but not across
  // kernels of different rounding classes (VecMatCols is exact-class, the
  // SIMD MatMulNN uses FMA).
  kernels::MatMulNN(a.data().data(), b.data().data(), out->data.data(), n, k,
                    m);
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi, n, k, m]() {
      if (ai->requires_grad) {
        ai->EnsureGrad();
        // dA += dC * B^T
        kernels::MatMulNT(oi->grad.data(), bi->data.data(), ai->grad.data(), n,
                          m, k);
      }
      if (bi->requires_grad) {
        bi->EnsureGrad();
        // dB += A^T * dC
        kernels::MatMulTN(ai->data.data(), oi->grad.data(), bi->grad.data(), n,
                          k, m);
      }
    };
  }
  return Tensor(out);
}

Tensor Transpose(const Tensor& a) {
  const int64_t n = a.rows(), m = a.cols();
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({m, n}, rg);
  kernels::TransposeInto(a.data().data(), out->data.data(), n, m,
                         /*accumulate=*/false);
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, n, m]() {
      ai->EnsureGrad();
      // dA += dOut^T; dOut is {m, n}.
      kernels::TransposeInto(oi->grad.data(), ai->grad.data(), m, n,
                             /*accumulate=*/true);
    };
  }
  return Tensor(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  ADAMOVE_CHECK(!parts.empty());
  const int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  bool rg = false;
  for (const auto& p : parts) {
    ADAMOVE_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
    rg = rg || p.requires_grad();
  }
  auto out = NewNode({rows, total_cols}, rg);
  int64_t col_off = 0;
  for (const auto& p : parts) {
    const int64_t pc = p.cols();
    const auto& pd = p.data();
    for (int64_t r = 0; r < rows; ++r) {
      std::copy_n(pd.begin() + r * pc, pc,
                  out->data.begin() + r * total_cols + col_off);
    }
    col_off += pc;
  }
  if (rg) {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    impls.reserve(parts.size());
    for (const auto& p : parts) impls.push_back(p.impl());
    TensorImpl* oi = out.get();
    out->parents = impls;
    out->backward_fn = [impls, oi, rows, total_cols]() {
      int64_t off = 0;
      for (auto& pi : impls) {
        const int64_t pc =
            pi->shape.size() == 1 ? pi->shape[0] : pi->shape[1];
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (int64_t r = 0; r < rows; ++r) {
            for (int64_t c = 0; c < pc; ++c) {
              pi->grad[static_cast<size_t>(r * pc + c)] +=
                  oi->grad[static_cast<size_t>(r * total_cols + off + c)];
            }
          }
        }
        off += pc;
      }
    };
  }
  return Tensor(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  ADAMOVE_CHECK(!parts.empty());
  const int64_t cols = parts[0].cols();
  int64_t total_rows = 0;
  bool rg = false;
  for (const auto& p : parts) {
    ADAMOVE_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
    rg = rg || p.requires_grad();
  }
  auto out = NewNode({total_rows, cols}, rg);
  int64_t row_off = 0;
  for (const auto& p : parts) {
    std::copy(p.data().begin(), p.data().end(),
              out->data.begin() + row_off * cols);
    row_off += p.rows();
  }
  if (rg) {
    std::vector<std::shared_ptr<TensorImpl>> impls;
    impls.reserve(parts.size());
    for (const auto& p : parts) impls.push_back(p.impl());
    TensorImpl* oi = out.get();
    out->parents = impls;
    out->backward_fn = [impls, oi, cols]() {
      int64_t off = 0;
      for (auto& pi : impls) {
        const int64_t pr = pi->shape.size() == 1 ? 1 : pi->shape[0];
        if (pi->requires_grad) {
          pi->EnsureGrad();
          for (int64_t i = 0; i < pr * cols; ++i) {
            pi->grad[static_cast<size_t>(i)] +=
                oi->grad[static_cast<size_t>(off * cols + i)];
          }
        }
        off += pr;
      }
    };
  }
  return Tensor(out);
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  const int64_t rows = a.rows(), cols = a.cols();
  ADAMOVE_CHECK_GE(start, 0);
  ADAMOVE_CHECK_GT(len, 0);
  ADAMOVE_CHECK_LE(start + len, cols);
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({rows, len}, rg);
  const auto& ad = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::copy_n(ad.begin() + r * cols + start, len,
                out->data.begin() + r * len);
  }
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, rows, cols, start, len]() {
      ai->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < len; ++c) {
          ai->grad[static_cast<size_t>(r * cols + start + c)] +=
              oi->grad[static_cast<size_t>(r * len + c)];
        }
      }
    };
  }
  return Tensor(out);
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  const int64_t rows = a.rows(), cols = a.cols();
  ADAMOVE_CHECK_GE(start, 0);
  ADAMOVE_CHECK_GT(len, 0);
  ADAMOVE_CHECK_LE(start + len, rows);
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({len, cols}, rg);
  std::copy_n(a.data().begin() + start * cols, len * cols, out->data.begin());
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, cols, start, len]() {
      ai->EnsureGrad();
      for (int64_t i = 0; i < len * cols; ++i) {
        ai->grad[static_cast<size_t>(start * cols + i)] +=
            oi->grad[static_cast<size_t>(i)];
      }
    };
  }
  return Tensor(out);
}

Tensor Row(const Tensor& a, int64_t r) { return SliceRows(a, r, 1); }

Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices) {
  const int64_t rows = a.rows(), cols = a.cols();
  const int64_t n = static_cast<int64_t>(indices.size());
  ADAMOVE_CHECK_GT(n, 0);
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({n, cols}, rg);
  const auto& ad = a.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t r = indices[static_cast<size_t>(i)];
    ADAMOVE_CHECK_GE(r, 0);
    ADAMOVE_CHECK_LT(r, rows);
    std::copy_n(ad.begin() + r * cols, cols, out->data.begin() + i * cols);
  }
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    auto idxs = std::make_shared<std::vector<int64_t>>(indices);
    out->parents = {ai};
    out->backward_fn = [ai, oi, idxs, cols]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < idxs->size(); ++i) {
        const int64_t r = (*idxs)[i];
        for (int64_t c = 0; c < cols; ++c) {
          ai->grad[static_cast<size_t>(r * cols + c)] +=
              oi->grad[i * static_cast<size_t>(cols) +
                       static_cast<size_t>(c)];
        }
      }
    };
  }
  return Tensor(out);
}

namespace {

template <typename Fwd, typename Bwd>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Bwd bwd) {
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  for (size_t i = 0; i < ad.size(); ++i) out->data[i] = fwd(ad[i]);
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, bwd]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        ai->grad[i] += oi->grad[i] * bwd(ai->data[i], oi->data[i]);
      }
    };
  }
  return Tensor(out);
}

}  // namespace

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

namespace {

// Shared machinery of AddTanh/AddSigmoid: out = act(a + b) with the same
// row-broadcast rule as Add, one fused pass each way. `bwd(y)` is dact/dpre
// expressed through the output value.
template <typename Bwd>
Tensor FusedAddActivation(const Tensor& a, const Tensor& b,
                          void (*kernel)(const float*, const float*, float*,
                                         int64_t, int64_t, bool),
                          Bwd bwd) {
  ADAMOVE_CHECK_EQ(a.cols(), b.cols());
  const bool broadcast = (b.rows() == 1 && a.rows() > 1);
  ADAMOVE_CHECK(broadcast || a.rows() == b.rows());
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode(a.shape(), rg);
  kernel(a.data().data(), b.data().data(), out->data.data(), rows, cols,
         broadcast);
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    out->backward_fn = [ai, bi, oi, rows, cols, bwd]() {
      // d(pre-activation) = g * act'(y); identical to the grad the separate
      // activation node would have handed the Add node.
      std::vector<float> dpre(oi->grad.size());
      for (size_t i = 0; i < dpre.size(); ++i) {
        dpre[i] = oi->grad[i] * bwd(oi->data[i]);
      }
      if (ai->requires_grad) {
        ai->EnsureGrad();
        for (size_t i = 0; i < dpre.size(); ++i) ai->grad[i] += dpre[i];
      }
      if (bi->requires_grad) {
        AccumulateWithRowBroadcast(bi.get(), dpre, rows, cols);
      }
    };
  }
  return Tensor(out);
}

}  // namespace

Tensor AddTanh(const Tensor& a, const Tensor& b) {
  return FusedAddActivation(a, b, kernels::BiasTanh,
                            [](float y) { return 1.0f - y * y; });
}

Tensor AddSigmoid(const Tensor& a, const Tensor& b) {
  return FusedAddActivation(a, b, kernels::BiasSigmoid,
                            [](float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::log(std::max(x, kEps)); },
      [](float x, float) { return 1.0f / std::max(x, kEps); });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y) { return 0.5f / std::max(y, kEps); });
}

Tensor Pow(const Tensor& a, float p) {
  return UnaryOp(
      a, [p](float x) { return std::pow(x, p); },
      [p](float x, float) { return p * std::pow(x, p - 1.0f); });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  ADAMOVE_CHECK_LE(lo, hi);
  return UnaryOp(
      a,
      [lo, hi](float x) { return std::min(std::max(x, lo), hi); },
      [lo, hi](float x, float) {
        return (x >= lo && x <= hi) ? 1.0f : 0.0f;
      });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::abs(x); },
      [](float x, float) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
}

Tensor Neg(const Tensor& a) { return ScalarMul(a, -1.0f); }

Tensor Sum(const Tensor& a) {
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({1}, rg);
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->data[0] = acc;
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi]() {
      ai->EnsureGrad();
      const float g = oi->grad[0];
      for (auto& v : ai->grad) v += g;
    };
  }
  return Tensor(out);
}

Tensor Mean(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.size());
  return ScalarMul(Sum(a), inv);
}

Tensor RowSum(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode({rows, 1}, rg);
  const auto& ad = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      acc += ad[static_cast<size_t>(r * cols + c)];
    }
    out->data[static_cast<size_t>(r)] = acc;
  }
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, rows, cols]() {
      ai->EnsureGrad();
      for (int64_t r = 0; r < rows; ++r) {
        const float g = oi->grad[static_cast<size_t>(r)];
        for (int64_t c = 0; c < cols; ++c) {
          ai->grad[static_cast<size_t>(r * cols + c)] += g;
        }
      }
    };
  }
  return Tensor(out);
}

Tensor RowMean(const Tensor& a) {
  return ScalarMul(RowSum(a), 1.0f / static_cast<float>(a.cols()));
}

Tensor Softmax(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  kernels::SoftmaxRows(a.data().data(), out->data.data(), rows, cols);
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, rows, cols]() {
      ai->EnsureGrad();
      common::ParallelFor(
          0, rows, kernels::GrainForWork(2 * cols),
          [ai, oi, cols](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const size_t off = static_cast<size_t>(r * cols);
              float dot = 0.0f;
              for (int64_t c = 0; c < cols; ++c) {
                dot += oi->grad[off + c] * oi->data[off + c];
              }
              for (int64_t c = 0; c < cols; ++c) {
                ai->grad[off + c] +=
                    oi->data[off + c] * (oi->grad[off + c] - dot);
              }
            }
          });
    };
  }
  return Tensor(out);
}

Tensor CausalSoftmax(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  ADAMOVE_CHECK_EQ(rows, cols);  // scores are {T, T}
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  auto valid = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) (*valid)[static_cast<size_t>(r)] = r + 1;
  kernels::MaskedSoftmaxRows(a.data().data(), out->data.data(), rows, cols,
                             valid->data());
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, rows, cols, valid]() {
      ai->EnsureGrad();
      common::ParallelFor(
          0, rows, kernels::GrainForWork(2 * cols),
          [ai, oi, cols, valid](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const int64_t v = (*valid)[static_cast<size_t>(r)];
              const size_t off = static_cast<size_t>(r * cols);
              float dot = 0.0f;
              for (int64_t c = 0; c < v; ++c) {
                dot += oi->grad[off + c] * oi->data[off + c];
              }
              // Masked positions have softmax output exactly 0, so their
              // gradient contribution is identically 0 — skip them.
              for (int64_t c = 0; c < v; ++c) {
                ai->grad[off + c] +=
                    oi->data[off + c] * (oi->grad[off + c] - dot);
              }
            }
          });
    };
  }
  return Tensor(out);
}

Tensor LogSoftmax(const Tensor& a) {
  const int64_t rows = a.rows(), cols = a.cols();
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  const float* ad = a.data().data();
  float* od = out->data.data();
  common::ParallelFor(
      0, rows, kernels::GrainForWork(2 * cols),
      [ad, od, cols](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          const size_t off = static_cast<size_t>(r * cols);
          float mx = ad[off];
          for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, ad[off + c]);
          float denom = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            denom += std::exp(ad[off + c] - mx);
          }
          const float lse = mx + std::log(denom);
          for (int64_t c = 0; c < cols; ++c) od[off + c] = ad[off + c] - lse;
        }
      });
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, rows, cols]() {
      ai->EnsureGrad();
      common::ParallelFor(
          0, rows, kernels::GrainForWork(2 * cols),
          [ai, oi, cols](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
              const size_t off = static_cast<size_t>(r * cols);
              float gsum = 0.0f;
              for (int64_t c = 0; c < cols; ++c) gsum += oi->grad[off + c];
              for (int64_t c = 0; c < cols; ++c) {
                ai->grad[off + c] +=
                    oi->grad[off + c] - std::exp(oi->data[off + c]) * gsum;
              }
            }
          });
    };
  }
  return Tensor(out);
}

Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float eps) {
  const int64_t rows = a.rows(), cols = a.cols();
  ADAMOVE_CHECK_EQ(gain.size(), cols);
  ADAMOVE_CHECK_EQ(bias.size(), cols);
  bool rg = AnyRequiresGrad({&a, &gain, &bias});
  auto out = NewNode(a.shape(), rg);
  const auto& ad = a.data();
  const auto& gd = gain.data();
  const auto& bd = bias.data();
  // Persist per-row inverse stddev and normalized values for the backward.
  auto inv_std = std::make_shared<std::vector<float>>(rows);
  auto xhat = std::make_shared<std::vector<float>>(ad.size());
  for (int64_t r = 0; r < rows; ++r) {
    const size_t off = static_cast<size_t>(r * cols);
    float mean = 0.0f;
    for (int64_t c = 0; c < cols; ++c) mean += ad[off + c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      const float d = ad[off + c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float istd = 1.0f / std::sqrt(var + eps);
    (*inv_std)[static_cast<size_t>(r)] = istd;
    for (int64_t c = 0; c < cols; ++c) {
      const float xh = (ad[off + c] - mean) * istd;
      (*xhat)[off + c] = xh;
      out->data[off + c] = gd[static_cast<size_t>(c)] * xh +
                           bd[static_cast<size_t>(c)];
    }
  }
  if (rg) {
    auto ai = a.impl(), gi = gain.impl(), bi = bias.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, gi, bi};
    out->backward_fn = [ai, gi, bi, oi, rows, cols, inv_std, xhat]() {
      for (int64_t r = 0; r < rows; ++r) {
        const size_t off = static_cast<size_t>(r * cols);
        const float istd = (*inv_std)[static_cast<size_t>(r)];
        if (gi->requires_grad) {
          gi->EnsureGrad();
          for (int64_t c = 0; c < cols; ++c) {
            gi->grad[static_cast<size_t>(c)] +=
                oi->grad[off + c] * (*xhat)[off + c];
          }
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          for (int64_t c = 0; c < cols; ++c) {
            bi->grad[static_cast<size_t>(c)] += oi->grad[off + c];
          }
        }
        if (ai->requires_grad) {
          ai->EnsureGrad();
          // dxhat = dy * gain; dx = istd*(dxhat - mean(dxhat)
          //                               - xhat * mean(dxhat*xhat))
          float m1 = 0.0f, m2 = 0.0f;
          for (int64_t c = 0; c < cols; ++c) {
            const float dxh =
                oi->grad[off + c] * gi->data[static_cast<size_t>(c)];
            m1 += dxh;
            m2 += dxh * (*xhat)[off + c];
          }
          m1 /= static_cast<float>(cols);
          m2 /= static_cast<float>(cols);
          for (int64_t c = 0; c < cols; ++c) {
            const float dxh =
                oi->grad[off + c] * gi->data[static_cast<size_t>(c)];
            ai->grad[off + c] +=
                istd * (dxh - m1 - (*xhat)[off + c] * m2);
          }
        }
      }
    };
  }
  return Tensor(out);
}

Tensor EmbeddingLookup(const Tensor& weight,
                       const std::vector<int64_t>& indices) {
  const int64_t v = weight.rows(), d = weight.cols();
  const int64_t n = static_cast<int64_t>(indices.size());
  ADAMOVE_CHECK_GT(n, 0);
  bool rg = AnyRequiresGrad({&weight});
  auto out = NewNode({n, d}, rg);
  const auto& wd = weight.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t idx = indices[static_cast<size_t>(i)];
    ADAMOVE_CHECK_GE(idx, 0);
    ADAMOVE_CHECK_LT(idx, v);
    std::copy_n(wd.begin() + idx * d, d, out->data.begin() + i * d);
  }
  if (rg) {
    auto wi = weight.impl();
    TensorImpl* oi = out.get();
    auto idxs = std::make_shared<std::vector<int64_t>>(indices);
    out->parents = {wi};
    out->backward_fn = [wi, oi, idxs, d]() {
      wi->EnsureGrad();
      const int64_t n = static_cast<int64_t>(idxs->size());
      for (int64_t i = 0; i < n; ++i) {
        const int64_t idx = (*idxs)[static_cast<size_t>(i)];
        for (int64_t c = 0; c < d; ++c) {
          wi->grad[static_cast<size_t>(idx * d + c)] +=
              oi->grad[static_cast<size_t>(i * d + c)];
        }
      }
    };
  }
  return Tensor(out);
}

Tensor CosSimRows(const Tensor& a, const Tensor& b) {
  ADAMOVE_CHECK_EQ(a.rows(), 1);
  const int64_t h = a.cols();
  ADAMOVE_CHECK_EQ(b.cols(), h);
  const int64_t k = b.rows();
  bool rg = AnyRequiresGrad({&a, &b});
  auto out = NewNode({k}, rg);
  const auto& ad = a.data();
  const auto& bd = b.data();
  float na = 0.0f;
  for (int64_t c = 0; c < h; ++c) na += ad[c] * ad[c];
  na = std::max(std::sqrt(na), kEps);
  auto norms_b = std::make_shared<std::vector<float>>(k);
  for (int64_t r = 0; r < k; ++r) {
    const size_t off = static_cast<size_t>(r * h);
    float nb = 0.0f, dot = 0.0f;
    for (int64_t c = 0; c < h; ++c) {
      nb += bd[off + c] * bd[off + c];
      dot += ad[c] * bd[off + c];
    }
    nb = std::max(std::sqrt(nb), kEps);
    (*norms_b)[static_cast<size_t>(r)] = nb;
    out->data[static_cast<size_t>(r)] = dot / (na * nb);
  }
  if (rg) {
    auto ai = a.impl(), bi = b.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai, bi};
    const float na_captured = na;
    out->backward_fn = [ai, bi, oi, norms_b, h, k, na_captured]() {
      for (int64_t r = 0; r < k; ++r) {
        const float g = oi->grad[static_cast<size_t>(r)];
        if (g == 0.0f) continue;
        const float s = oi->data[static_cast<size_t>(r)];
        const float nb = (*norms_b)[static_cast<size_t>(r)];
        const size_t off = static_cast<size_t>(r * h);
        if (ai->requires_grad) {
          ai->EnsureGrad();
          for (int64_t c = 0; c < h; ++c) {
            const float da = bi->data[off + c] / (na_captured * nb) -
                             s * ai->data[static_cast<size_t>(c)] /
                                 (na_captured * na_captured);
            ai->grad[static_cast<size_t>(c)] += g * da;
          }
        }
        if (bi->requires_grad) {
          bi->EnsureGrad();
          for (int64_t c = 0; c < h; ++c) {
            const float db = ai->data[static_cast<size_t>(c)] /
                                 (na_captured * nb) -
                             s * bi->data[off + c] / (nb * nb);
            bi->grad[off + c] += g * db;
          }
        }
      }
    };
  }
  return Tensor(out);
}

Tensor Dropout(const Tensor& a, float p, common::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  ADAMOVE_CHECK_LT(p, 1.0f);
  bool rg = AnyRequiresGrad({&a});
  auto out = NewNode(a.shape(), rg);
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(a.data().size());
  const auto& ad = a.data();
  for (size_t i = 0; i < ad.size(); ++i) {
    const float m = rng.Bernoulli(p) ? 0.0f : scale;
    (*mask)[i] = m;
    out->data[i] = ad[i] * m;
  }
  if (rg) {
    auto ai = a.impl();
    TensorImpl* oi = out.get();
    out->parents = {ai};
    out->backward_fn = [ai, oi, mask]() {
      ai->EnsureGrad();
      for (size_t i = 0; i < oi->grad.size(); ++i) {
        ai->grad[i] += oi->grad[i] * (*mask)[i];
      }
    };
  }
  return Tensor(out);
}

Tensor NllLoss(const Tensor& log_probs, const std::vector<int64_t>& targets) {
  const int64_t n = log_probs.rows(), l = log_probs.cols();
  ADAMOVE_CHECK_EQ(static_cast<int64_t>(targets.size()), n);
  bool rg = AnyRequiresGrad({&log_probs});
  auto out = NewNode({1}, rg);
  float acc = 0.0f;
  const auto& lp = log_probs.data();
  for (int64_t i = 0; i < n; ++i) {
    const int64_t t = targets[static_cast<size_t>(i)];
    ADAMOVE_CHECK_GE(t, 0);
    ADAMOVE_CHECK_LT(t, l);
    acc -= lp[static_cast<size_t>(i * l + t)];
  }
  out->data[0] = acc / static_cast<float>(n);
  if (rg) {
    auto li = log_probs.impl();
    TensorImpl* oi = out.get();
    auto tgt = std::make_shared<std::vector<int64_t>>(targets);
    out->parents = {li};
    out->backward_fn = [li, oi, tgt, n, l]() {
      li->EnsureGrad();
      const float g = oi->grad[0] / static_cast<float>(n);
      for (int64_t i = 0; i < n; ++i) {
        li->grad[static_cast<size_t>(i * l + (*tgt)[static_cast<size_t>(i)])] -=
            g;
      }
    };
  }
  return Tensor(out);
}

Tensor CrossEntropy(const Tensor& logits,
                    const std::vector<int64_t>& targets) {
  return NllLoss(LogSoftmax(logits), targets);
}

Tensor ScaledDotAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          bool causal) {
  const int64_t dk = q.cols();
  ADAMOVE_CHECK_EQ(k.cols(), dk);
  ADAMOVE_CHECK_EQ(k.rows(), v.rows());
  Tensor scores = ScalarMul(MatMul(q, Transpose(k)),
                            1.0f / std::sqrt(static_cast<float>(dk)));
  if (causal) {
    ADAMOVE_CHECK_EQ(q.rows(), k.rows());
    return MatMul(CausalSoftmax(scores), v);
  }
  return MatMul(Softmax(scores), v);
}

}  // namespace adamove::nn
