#ifndef ADAMOVE_NN_ATTENTION_H_
#define ADAMOVE_NN_ATTENTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/rnn.h"
#include "nn/tensor.h"

namespace adamove::nn {

/// Multi-head (self- or cross-) attention. Query/key/value projections are
/// {model_dim, model_dim}; heads are contiguous column blocks.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int64_t model_dim, int64_t num_heads, common::Rng& rng);

  /// q: {Tq, D}, kv: {Tk, D}. `causal` requires Tq == Tk and masks future
  /// positions (used by self-attention in causal sequence encoders).
  Tensor Forward(const Tensor& q, const Tensor& kv, bool causal) const;

  int64_t model_dim() const { return model_dim_; }

 private:
  int64_t model_dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

/// Pre-LN Transformer encoder layer: x + MHA(LN(x)); then x + FFN(LN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int64_t model_dim, int64_t num_heads,
                          int64_t ffn_dim, float dropout, common::Rng& rng);

  Tensor Forward(const Tensor& x, bool causal, bool training,
                 common::Rng& rng) const;

 private:
  float dropout_;
  std::unique_ptr<MultiHeadAttention> mha_;
  std::unique_ptr<LayerNormLayer> ln1_;
  std::unique_ptr<LayerNormLayer> ln2_;
  std::unique_ptr<Linear> ffn1_;
  std::unique_ptr<Linear> ffn2_;
};

/// Causal Transformer sequence encoder implementing SequenceEncoder: input
/// projection + sinusoidal positions + N pre-LN layers. The causal mask
/// preserves the prefix property required by PTTA. The paper's setting is
/// 2 layers with 8 heads.
class TransformerSeqEncoder : public SequenceEncoder {
 public:
  TransformerSeqEncoder(int64_t input_size, int64_t hidden_size,
                        int64_t num_layers, int64_t num_heads, float dropout,
                        common::Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  int64_t hidden_size() const override { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  float dropout_;
  common::Rng dropout_rng_;
  std::unique_ptr<Linear> input_proj_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::unique_ptr<LayerNormLayer> final_ln_;
};

/// Adds fixed sinusoidal positional encodings to a {T, D} tensor.
Tensor AddPositionalEncoding(const Tensor& x);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_ATTENTION_H_
