#ifndef ADAMOVE_NN_OPS_H_
#define ADAMOVE_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

namespace adamove::nn {

// Differentiable operations on Tensors. Every op builds the autograd graph
// when any input requires a gradient, and skips it otherwise (pure inference
// pays no tape cost). 2-D tensors are {rows, cols}, row-major; 1-D tensors
// behave as a single row where a matrix is expected.

/// Elementwise a + b. When `b` has a single row and `a` has many, `b` is
/// broadcast over the rows of `a` (bias addition).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (same broadcast rule as Add).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) a * b; same-shape only.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s for a compile-time-known scalar s.
Tensor ScalarMul(const Tensor& a, float s);

/// a + s elementwise.
Tensor ScalarAdd(const Tensor& a, float s);

/// Elementwise a / b; same-shape only. Divisors are clamped away from zero
/// (|b| >= 1e-12) for numeric safety.
Tensor Div(const Tensor& a, const Tensor& b);

/// Elementwise a^p for a scalar exponent (a clamped to >= 0 when p is
/// fractional would be caller's concern; gradient is p*a^(p-1)).
Tensor Pow(const Tensor& a, float p);

/// Elementwise clamp into [lo, hi]; gradient is 1 inside, 0 outside.
Tensor Clamp(const Tensor& a, float lo, float hi);

/// Elementwise absolute value (gradient sign(a); 0 at 0).
Tensor Abs(const Tensor& a);

/// Elementwise negation.
Tensor Neg(const Tensor& a);

/// Matrix product of a {N,K} and b {K,M} -> {N,M}.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor Transpose(const Tensor& a);

/// Concatenates tensors along columns; all inputs must share a row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates tensors along rows; all inputs must share a column count.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Column slice [start, start+len) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

/// Row slice [start, start+len) of a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);

/// Single row r as a {1, cols} tensor (differentiable).
Tensor Row(const Tensor& a, int64_t r);

/// Gathers rows of `a` by index -> {N, cols}; backward scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int64_t>& indices);

// -- nonlinearities ----------------------------------------------------------

Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);

/// Fused tanh(a + b) — one kernel pass instead of an Add node feeding a
/// Tanh node; same broadcast rule as Add (b with a single row is broadcast
/// over the rows of a). Bit-identical to Tanh(Add(a, b)).
Tensor AddTanh(const Tensor& a, const Tensor& b);

/// Fused sigmoid(a + b); same contract as AddTanh.
Tensor AddSigmoid(const Tensor& a, const Tensor& b);

Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped to >= 1e-12 for numeric safety.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);

// -- reductions & normalizations ----------------------------------------------

/// Sum of all elements -> scalar {1}.
Tensor Sum(const Tensor& a);

/// Mean of all elements -> scalar {1}.
Tensor Mean(const Tensor& a);

/// Per-row sum of a 2-D tensor -> {N, 1}.
Tensor RowSum(const Tensor& a);

/// Per-row mean of a 2-D tensor -> {N, 1}.
Tensor RowMean(const Tensor& a);

/// Row-wise softmax of a 2-D tensor.
Tensor Softmax(const Tensor& a);

/// Row-wise log-softmax (numerically stable).
Tensor LogSoftmax(const Tensor& a);

/// Causally masked row-wise softmax of square scores {T, T}: row i is a
/// softmax over columns [0, i] and exactly 0 beyond. Equivalent to (and
/// bit-identical with) adding a -1e9 upper-triangular mask before Softmax,
/// without materializing the mask tensor.
Tensor CausalSoftmax(const Tensor& a);

/// Row-wise LayerNorm with learned gain/bias ({1, cols} each), eps inside.
Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float eps = 1e-5f);

// -- embeddings & similarity ---------------------------------------------------

/// Gathers rows of `weight` {V,D} by index -> {N,D}; backward scatter-adds.
Tensor EmbeddingLookup(const Tensor& weight,
                       const std::vector<int64_t>& indices);

/// Cosine similarity between the single row `a` {1,H} and each row of `b`
/// {K,H} -> {K}. Norms are floored at 1e-12.
Tensor CosSimRows(const Tensor& a, const Tensor& b);

// -- regularization ------------------------------------------------------------

/// Inverted dropout: at train time zeroes each element w.p. p and rescales
/// by 1/(1-p); identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, common::Rng& rng, bool training);

// -- losses ---------------------------------------------------------------------

/// Mean negative log-likelihood of `targets` under row-wise `log_probs`
/// {N,L} (log-softmax outputs) -> scalar.
Tensor NllLoss(const Tensor& log_probs, const std::vector<int64_t>& targets);

/// Cross-entropy from raw logits {N,L} -> scalar (LogSoftmax + NllLoss).
Tensor CrossEntropy(const Tensor& logits, const std::vector<int64_t>& targets);

// -- attention convenience -------------------------------------------------------

/// Scaled dot-product attention: Softmax(Q K^T / sqrt(dk) + mask) V.
/// `causal` masks out j > i (future positions).
Tensor ScaledDotAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          bool causal);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_OPS_H_
