#ifndef ADAMOVE_NN_LAYERS_H_
#define ADAMOVE_NN_LAYERS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::nn {

/// Fully-connected layer: y = x W + b, x is {N, in}, W is {in, out}.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
         bool with_bias = true);

  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  /// Weight matrix {in, out}. Exposed because PTTA/T3A adjust the output
  /// classifier's columns directly at test time.
  Tensor weight() const { return weight_; }
  Tensor bias() const { return bias_; }
  bool has_bias() const { return bias_.defined(); }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;
};

/// ID-embedding table of shape {num_embeddings, dim}.
class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, common::Rng& rng);

  /// Looks up rows for each index -> {N, dim}.
  Tensor Forward(const std::vector<int64_t>& indices) const;

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }
  Tensor weight() const { return weight_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  Tensor weight_;
};

/// Learned row-wise LayerNorm.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gain_;
  Tensor bias_;
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_LAYERS_H_
