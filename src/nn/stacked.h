#ifndef ADAMOVE_NN_STACKED_H_
#define ADAMOVE_NN_STACKED_H_

#include <memory>
#include <vector>

#include "common/check.h"
#include "nn/rnn.h"

namespace adamove::nn {

/// Chains several causal sequence encoders: layer 0 maps {T, in} -> {T, H},
/// subsequent layers map {T, H} -> {T, H}. Composing causal layers stays
/// causal, so the prefix property PTTA needs is preserved (tested).
class StackedEncoder : public SequenceEncoder {
 public:
  explicit StackedEncoder(std::vector<std::unique_ptr<SequenceEncoder>> layers)
      : layers_(std::move(layers)) {
    ADAMOVE_CHECK(!layers_.empty());
    for (size_t i = 0; i < layers_.size(); ++i) {
      RegisterModule("layer" + std::to_string(i), layers_[i].get());
    }
  }

  Tensor Forward(const Tensor& x, bool training) override {
    Tensor h = x;
    for (auto& layer : layers_) h = layer->Forward(h, training);
    return h;
  }

  int64_t hidden_size() const override {
    return layers_.back()->hidden_size();
  }

  size_t num_layers() const { return layers_.size(); }

  /// Layer access for the static forward-plan compiler (src/nn/plan), which
  /// chains per-layer traces through intermediate arena buffers.
  const std::vector<std::unique_ptr<SequenceEncoder>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::unique_ptr<SequenceEncoder>> layers_;
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_STACKED_H_
