#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>

namespace adamove::nn {

namespace {

constexpr uint32_t kMagic = 0xADA30001;

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

void WriteString(std::ofstream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::ifstream& in, std::string* s) {
  uint32_t n = 0;
  if (!ReadU32(in, &n)) return false;
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  return in.good();
}

}  // namespace

bool SaveParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  WriteU32(out, kMagic);
  WriteU32(out, static_cast<uint32_t>(named_params.size()));
  for (const auto& [name, t] : named_params) {
    WriteString(out, name);
    WriteU32(out, static_cast<uint32_t>(t.shape().size()));
    for (int64_t d : t.shape()) WriteU32(out, static_cast<uint32_t>(d));
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  }
  return out.good();
}

bool LoadParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint32_t magic = 0, count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) return false;
  if (!ReadU32(in, &count)) return false;
  std::map<std::string, std::pair<std::vector<int64_t>, std::vector<float>>>
      entries;
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(in, &name)) return false;
    uint32_t rank = 0;
    if (!ReadU32(in, &rank)) return false;
    std::vector<int64_t> shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(in, &dim)) return false;
      shape[d] = static_cast<int64_t>(dim);
      numel *= shape[d];
    }
    std::vector<float> data(static_cast<size_t>(numel));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) return false;
    entries[name] = {std::move(shape), std::move(data)};
  }
  for (const auto& [name, t] : named_params) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      std::fprintf(stderr, "LoadParameters: missing entry '%s'\n",
                   name.c_str());
      return false;
    }
    if (it->second.first != t.shape()) {
      std::fprintf(stderr, "LoadParameters: shape mismatch for '%s'\n",
                   name.c_str());
      return false;
    }
    const_cast<Tensor&>(t).data() = it->second.second;
  }
  return true;
}

bool SaveModule(const std::string& path, const Module& module) {
  return SaveParameters(path, module.NamedParameters());
}

bool LoadModule(const std::string& path, const Module& module) {
  return LoadParameters(path, module.NamedParameters());
}

}  // namespace adamove::nn
