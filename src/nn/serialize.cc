#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <string_view>

namespace adamove::nn {

namespace {

using common::IoResult;
using common::WireReader;

/// Hostile-input bounds (DESIGN.md §11): every size field read from disk is
/// validated against these caps — and against the bytes actually present —
/// before it drives an allocation or a loop.
constexpr uint32_t kMaxNameLen = 4096;
constexpr uint32_t kMaxRank = 8;
constexpr int64_t kMaxTensorElems = int64_t{1} << 31;

struct ParsedEntry {
  std::vector<int64_t> shape;
  std::vector<float> data;
};
using EntryMap = std::map<std::string, ParsedEntry>;

std::string EntryLabel(size_t index, const std::string& name) {
  std::string label = "entry " + std::to_string(index);
  if (!name.empty()) label += " ('" + name + "')";
  return label;
}

/// Parses one tensor record — the shared wire layout of a v1 stream and a
/// v2 frame payload: name_len | name | rank | dims | floats. On success the
/// entry is added to `out`; on failure the error names the offending field.
IoResult ParseTensorRecord(WireReader& reader, size_t index, EntryMap* out) {
  uint32_t name_len = 0;
  if (!reader.ReadU32(&name_len)) {
    return IoResult::Fail(EntryLabel(index, "") + ": truncated name length");
  }
  if (name_len == 0) {
    return IoResult::Fail(EntryLabel(index, "") + ": zero-length name");
  }
  if (name_len > kMaxNameLen || name_len > reader.remaining()) {
    return IoResult::Fail(EntryLabel(index, "") + ": name length " +
                          std::to_string(name_len) + " out of bounds");
  }
  std::string_view name_bytes;
  reader.ReadBytes(name_len, &name_bytes);
  const std::string name(name_bytes);
  uint32_t rank = 0;
  if (!reader.ReadU32(&rank)) {
    return IoResult::Fail(EntryLabel(index, name) + ": truncated rank");
  }
  if (rank > kMaxRank) {
    return IoResult::Fail(EntryLabel(index, name) + ": rank " +
                          std::to_string(rank) + " exceeds the cap of " +
                          std::to_string(kMaxRank));
  }
  ParsedEntry entry;
  entry.shape.reserve(rank);
  int64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    uint32_t dim = 0;
    if (!reader.ReadU32(&dim)) {
      return IoResult::Fail(EntryLabel(index, name) + ": truncated shape");
    }
    entry.shape.push_back(static_cast<int64_t>(dim));
    numel *= static_cast<int64_t>(dim);
    if (numel > kMaxTensorElems) {
      return IoResult::Fail(EntryLabel(index, name) +
                            ": element count overflows the tensor cap");
    }
  }
  // The bounds check inside ReadF32Array is what makes a corrupt count or
  // dim field harmless: the allocation never exceeds the bytes present.
  if (!reader.ReadF32Array(static_cast<size_t>(numel), &entry.data)) {
    return IoResult::Fail(EntryLabel(index, name) +
                          ": shape larger than the remaining file");
  }
  if (!out->emplace(name, std::move(entry)).second) {
    return IoResult::Fail(EntryLabel(index, name) + ": duplicate entry");
  }
  return IoResult::Ok();
}

/// Hardened parser for the legacy v1 dump: magic | count | records.
IoResult ParseV1(std::string_view bytes, EntryMap* out) {
  WireReader reader(bytes);
  uint32_t magic = 0, count = 0;
  reader.ReadU32(&magic);  // caller sniffed it; cannot fail here
  if (!reader.ReadU32(&count)) {
    return IoResult::Fail("v1: truncated entry count");
  }
  // A record is at least name_len + rank (8 bytes), so a count beyond
  // remaining/8 is provably corrupt — reject before any allocation, which
  // fixes the historical unbounded-allocation on a corrupt count field.
  if (count > reader.remaining() / 8) {
    return IoResult::Fail("v1: entry count " + std::to_string(count) +
                          " larger than the file could hold");
  }
  for (uint32_t i = 0; i < count; ++i) {
    IoResult entry = ParseTensorRecord(reader, i, out);
    if (!entry) {
      entry.error = "v1 " + entry.error;
      return entry;
    }
  }
  if (!reader.AtEnd()) {
    return IoResult::Fail("v1: " + std::to_string(reader.remaining()) +
                          " trailing bytes after the last entry");
  }
  return IoResult::Ok();
}

/// Parser for the v2 framed format: header frame {version, count}, then one
/// frame per tensor. Frames already passed the CRC check in durable_io.
IoResult ParseV2(std::string_view bytes, EntryMap* out) {
  common::FramedRead framed;
  IoResult parsed =
      common::ParseFramedBytes(bytes, kCheckpointMagicV2, &framed);
  if (!parsed) return parsed;
  if (framed.torn_tail) {
    return IoResult::Fail("v2: torn tail after frame " +
                          std::to_string(framed.frames.size()) +
                          " (incomplete checkpoint)");
  }
  if (framed.frames.empty()) {
    return IoResult::Fail("v2: missing header frame");
  }
  WireReader header(framed.frames[0]);
  uint32_t version = 0, count = 0;
  if (!header.ReadU32(&version) || !header.ReadU32(&count) ||
      !header.AtEnd()) {
    return IoResult::Fail("v2: malformed header frame");
  }
  if (version != 2) {
    return IoResult::Fail("v2: unsupported version " +
                          std::to_string(version));
  }
  if (framed.frames.size() != static_cast<size_t>(count) + 1) {
    return IoResult::Fail(
        "v2: header declares " + std::to_string(count) + " tensors but " +
        std::to_string(framed.frames.size() - 1) + " frames follow");
  }
  for (size_t i = 1; i < framed.frames.size(); ++i) {
    WireReader record(framed.frames[i]);
    IoResult entry = ParseTensorRecord(record, i - 1, out);
    if (entry.ok && !record.AtEnd()) {
      entry = IoResult::Fail(EntryLabel(i - 1, "") +
                             ": trailing bytes inside the tensor frame");
    }
    if (!entry.ok) {
      entry.error = "v2 " + entry.error;
      return entry;
    }
  }
  return IoResult::Ok();
}

/// All-or-nothing application: every requested parameter is verified
/// (present, shape match) before any tensor is written, so a failed load
/// can never leave a half-loaded model.
IoResult ApplyEntries(
    const EntryMap& entries,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  for (const auto& [name, t] : named_params) {
    auto it = entries.find(name);
    if (it == entries.end()) {
      return IoResult::Fail("missing entry '" + name + "'");
    }
    if (it->second.shape != t.shape()) {
      return IoResult::Fail("shape mismatch for '" + name + "'");
    }
  }
  for (const auto& [name, t] : named_params) {
    const_cast<Tensor&>(t).data() = entries.at(name).data;
  }
  return IoResult::Ok();
}

void AppendTensorRecord(const std::string& name, const Tensor& t,
                        std::string* out) {
  common::AppendU32(out, static_cast<uint32_t>(name.size()));
  out->append(name);
  common::AppendU32(out, static_cast<uint32_t>(t.shape().size()));
  for (int64_t d : t.shape()) {
    common::AppendU32(out, static_cast<uint32_t>(d));
  }
  common::AppendF32Array(out, t.data().data(), t.data().size());
}

}  // namespace

common::IoResult SaveParametersStatus(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  common::FramedFileWriter writer(kCheckpointMagicV2);
  std::string header;
  common::AppendU32(&header, 2);  // format version
  common::AppendU32(&header, static_cast<uint32_t>(named_params.size()));
  writer.AddFrame(header);
  std::string record;
  for (const auto& [name, t] : named_params) {
    record.clear();
    AppendTensorRecord(name, t, &record);
    writer.AddFrame(record);
  }
  return writer.Commit(path);
}

common::IoResult LoadParametersStatus(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  std::string bytes;
  IoResult read = common::ReadFileAll(path, &bytes);
  if (!read) return read;
  WireReader sniff(bytes);
  uint32_t magic = 0;
  if (!sniff.ReadU32(&magic)) {
    return IoResult::Fail("'" + path + "': shorter than a checkpoint magic");
  }
  EntryMap entries;
  IoResult parsed;
  if (magic == kCheckpointMagicV1) {
    parsed = ParseV1(bytes, &entries);
  } else if (magic == kCheckpointMagicV2) {
    parsed = ParseV2(bytes, &entries);
  } else {
    parsed = IoResult::Fail("unrecognized checkpoint magic");
  }
  if (!parsed) {
    parsed.error = "'" + path + "': " + parsed.error;
    return parsed;
  }
  IoResult applied = ApplyEntries(entries, named_params);
  if (!applied) {
    applied.error = "'" + path + "': " + applied.error;
  }
  return applied;
}

common::IoResult SaveParametersV1(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  std::string bytes;
  common::AppendU32(&bytes, kCheckpointMagicV1);
  common::AppendU32(&bytes, static_cast<uint32_t>(named_params.size()));
  for (const auto& [name, t] : named_params) {
    AppendTensorRecord(name, t, &bytes);
  }
  return common::WriteFileAtomic(path, bytes);
}

bool SaveParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  const common::IoResult result = SaveParametersStatus(path, named_params);
  if (!result) {
    std::fprintf(stderr, "SaveParameters: %s\n", result.error.c_str());
  }
  return result.ok;
}

bool LoadParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params) {
  const common::IoResult result = LoadParametersStatus(path, named_params);
  if (!result) {
    std::fprintf(stderr, "LoadParameters: %s\n", result.error.c_str());
  }
  return result.ok;
}

bool SaveModule(const std::string& path, const Module& module) {
  return SaveParameters(path, module.NamedParameters());
}

bool LoadModule(const std::string& path, const Module& module) {
  return LoadParameters(path, module.NamedParameters());
}

common::IoResult SaveModuleStatus(const std::string& path,
                                  const Module& module) {
  return SaveParametersStatus(path, module.NamedParameters());
}

common::IoResult LoadModuleStatus(const std::string& path,
                                  const Module& module) {
  return LoadParametersStatus(path, module.NamedParameters());
}

}  // namespace adamove::nn
