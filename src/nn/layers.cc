#include "nn/layers.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace adamove::nn {

Linear::Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  ADAMOVE_CHECK_GT(in_features, 0);
  ADAMOVE_CHECK_GT(out_features, 0);
  // Xavier-uniform initialization.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      "weight", Tensor::RandUniform({in_features, out_features}, rng, bound));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({1, out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  ADAMOVE_CHECK_EQ(x.cols(), in_features_);
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

Embedding::Embedding(int64_t num_embeddings, int64_t dim, common::Rng& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  ADAMOVE_CHECK_GT(num_embeddings, 0);
  ADAMOVE_CHECK_GT(dim, 0);
  weight_ = RegisterParameter(
      "weight", Tensor::Randn({num_embeddings, dim}, rng, 0.1f));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices) const {
  return EmbeddingLookup(weight_, indices);
}

LayerNormLayer::LayerNormLayer(int64_t dim) {
  ADAMOVE_CHECK_GT(dim, 0);
  gain_ = RegisterParameter("gain", Tensor::Full({1, dim}, 1.0f));
  bias_ = RegisterParameter("bias", Tensor::Zeros({1, dim}));
}

Tensor LayerNormLayer::Forward(const Tensor& x) const {
  return LayerNorm(x, gain_, bias_);
}

}  // namespace adamove::nn
