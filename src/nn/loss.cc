#include "nn/loss.h"

#include "common/check.h"
#include "nn/ops.h"

namespace adamove::nn {

Tensor InfoNceLoss(const Tensor& anchor, const Tensor& positive,
                   const Tensor& negatives,
                   bool include_positive_in_denominator,
                   float temperature) {
  ADAMOVE_CHECK_EQ(anchor.rows(), 1);
  ADAMOVE_CHECK_EQ(positive.rows(), 1);
  ADAMOVE_CHECK_GE(negatives.rows(), 1);
  ADAMOVE_CHECK_GT(temperature, 0.0f);
  const float inv_t = 1.0f / temperature;
  Tensor pos_sim = ScalarMul(CosSimRows(anchor, positive), inv_t);  // {1}
  Tensor neg_sims = ScalarMul(CosSimRows(anchor, negatives), inv_t);  // {K}
  // Scaled similarities live in [-1/T, 1/T]; for the temperatures used here
  // exp/log stay in a safe range without max-subtraction.
  Tensor denom_terms = Exp(neg_sims);
  Tensor denom = Sum(denom_terms);
  if (include_positive_in_denominator) {
    denom = Add(denom, Exp(pos_sim));
  }
  // L = -pos + log(denominator)
  return Add(ScalarMul(pos_sim, -1.0f), Log(denom));
}

}  // namespace adamove::nn
