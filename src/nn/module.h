#ifndef ADAMOVE_NN_MODULE_H_
#define ADAMOVE_NN_MODULE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace adamove::nn {

/// Base class for neural-network building blocks. A Module owns named
/// parameters (Tensors with requires_grad) and may own named sub-modules;
/// Parameters()/NamedParameters() walk the whole tree, which is what the
/// optimizers and the serializer consume.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters in this module and its sub-modules.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> out;
    CollectParameters("", out, nullptr);
    return out;
  }

  /// Parameters with hierarchical dot-separated names (for serialization).
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const {
    std::vector<Tensor> tensors;
    std::vector<std::pair<std::string, Tensor>> named;
    CollectParameters("", tensors, &named);
    return named;
  }

  /// Zeroes every parameter gradient in the tree.
  void ZeroGrad() {
    for (auto& p : Parameters()) p.ZeroGrad();
  }

  /// Total number of scalar parameters (model size reporting).
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : Parameters()) n += p.size();
    return n;
  }

 protected:
  /// Registers a trainable parameter under `name`; returns it for storing.
  Tensor RegisterParameter(const std::string& name, Tensor t) {
    t.impl()->requires_grad = true;
    params_.emplace_back(name, t);
    return t;
  }

  /// Registers a sub-module (not owned) under `name`.
  void RegisterModule(const std::string& name, Module* m) {
    modules_.emplace_back(name, m);
  }

 private:
  void CollectParameters(
      const std::string& prefix, std::vector<Tensor>& out,
      std::vector<std::pair<std::string, Tensor>>* named) const {
    for (const auto& [name, t] : params_) {
      out.push_back(t);
      if (named != nullptr) {
        named->emplace_back(prefix.empty() ? name : prefix + "." + name, t);
      }
    }
    for (const auto& [name, m] : modules_) {
      m->CollectParameters(prefix.empty() ? name : prefix + "." + name, out,
                           named);
    }
  }

  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> modules_;
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_MODULE_H_
