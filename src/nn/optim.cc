#include "nn/optim.h"

#include <cmath>

#include "common/check.h"

namespace adamove::nn {

void ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  if (max_norm <= 0.0) return;
  double total = 0.0;
  for (auto& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  total = std::sqrt(total);
  if (total <= max_norm) return;
  const float scale = static_cast<float>(max_norm / (total + 1e-12));
  for (auto& p : params) {
    for (auto& g : p.grad()) g *= scale;
  }
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double clip)
    : Optimizer(std::move(params)), clip_(clip) {
  lr_ = lr;
}

void Sgd::Step() {
  ClipGradNorm(params_, clip_);
  const float lr = static_cast<float>(lr_);
  for (auto& p : params_) {
    auto& d = p.data();
    auto& g = p.grad();
    for (size_t i = 0; i < d.size(); ++i) d[i] -= lr * g[i];
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double clip)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      clip_(clip) {
  lr_ = lr;
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::Step() {
  ClipGradNorm(params_, clip_);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step_size = static_cast<float>(lr_ / bc1);
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& d = params_[i].data();
    auto& g = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < d.size(); ++j) {
      m[j] = static_cast<float>(beta1_) * m[j] +
             static_cast<float>(1.0 - beta1_) * g[j];
      v[j] = static_cast<float>(beta2_) * v[j] +
             static_cast<float>(1.0 - beta2_) * g[j] * g[j];
      const float vhat = static_cast<float>(static_cast<double>(v[j]) / bc2);
      d[j] -= step_size * m[j] /
              (std::sqrt(vhat) + static_cast<float>(eps_));
    }
  }
}

bool PlateauDecay::Update(double val_accuracy, Optimizer& opt) {
  if (val_accuracy > best_) {
    best_ = val_accuracy;
    bad_epochs_ = 0;
  } else {
    ++bad_epochs_;
    if (bad_epochs_ >= patience_) {
      opt.set_learning_rate(opt.learning_rate() * factor_);
      bad_epochs_ = 0;
    }
  }
  return opt.learning_rate() > min_lr_;
}

}  // namespace adamove::nn
