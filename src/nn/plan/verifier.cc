#include "nn/plan/verifier.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/env.h"

namespace adamove::nn::plan {

namespace {

// Mirrors the packer's slot granularity (plan.cc): offsets are multiples of
// 16 floats = 64 bytes, the AlignedBuffer cache-line contract.
constexpr int64_t kAlignElems = 16;

std::string Str(int64_t v) { return std::to_string(v); }

std::string ValueRef(ValueId id) { return "value " + Str(id); }

std::string OpRef(int32_t idx, const Op& op) {
  return "op " + Str(idx) + " (" + OpKindName(op.kind) + ")";
}

VerifyResult Fail(const char* check, const std::string& detail) {
  VerifyResult r;
  r.ok = false;
  r.message = std::string("plan-verify[") + check + "]: " + detail;
  return r;
}

/// One half-open element range [lo, hi) of a value.
struct Range {
  int64_t lo = 0;
  int64_t hi = 0;
};

/// Per-value verifier scratch, packed into one 32-byte record so the op
/// walk touches a single cache line per operand: the defined-range set
/// (single definition + definition-before-use queries) plus the derived
/// touch interval. Nearly every value in a real plan is defined as ONE
/// contiguous range (temps written once; output rows appended in order
/// merge as they land), so the set stays in the inline `single` range; the
/// rare fragmented values — strided gather destinations mid-fill — spill
/// to a side pool of sorted disjoint range vectors. This sits on the
/// verify-per-compile hot path the bench_plan <10%-of-compile gate prices.
struct ValueScratch {
  uint8_t mode = 0;         // defined set: 0 empty, 1 single, 2 spilled
  int32_t spill = -1;       // index into the spill pool when mode == 2
  int32_t first_touch = -1;
  int32_t last_touch = -1;
  Range single{};
};

using SpillPool = std::vector<std::vector<Range>>;

bool SetOverlaps(const ValueScratch& s, const SpillPool& spills, int64_t lo,
                 int64_t hi) {
  if (s.mode == 0) return false;
  if (s.mode == 1) return lo < s.single.hi && s.single.lo < hi;
  const std::vector<Range>& ranges = spills[static_cast<size_t>(s.spill)];
  // First range starting at or after lo; the one before it is the only
  // candidate overlapping from the left.
  auto it =
      std::lower_bound(ranges.begin(), ranges.end(), lo,
                       [](const Range& r, int64_t v) { return r.lo < v; });
  if (it != ranges.begin() && std::prev(it)->hi > lo) return true;
  return it != ranges.end() && it->lo < hi;
}

bool SetCovers(const ValueScratch& s, const SpillPool& spills, int64_t lo,
               int64_t hi) {
  if (s.mode == 0) return false;
  if (s.mode == 1) return s.single.lo <= lo && s.single.hi >= hi;
  const std::vector<Range>& ranges = spills[static_cast<size_t>(s.spill)];
  auto it =
      std::upper_bound(ranges.begin(), ranges.end(), lo,
                       [](int64_t v, const Range& r) { return v < r.lo; });
  if (it == ranges.begin()) return false;
  const Range& prev = *std::prev(it);
  return prev.lo <= lo && prev.hi >= hi;
}

/// Inserts [lo, hi), merging adjacent ranges. Caller checks SetOverlaps
/// first; double insertion is a verifier bug, not a plan property.
void SetInsert(ValueScratch* s, SpillPool* spills, int64_t lo, int64_t hi) {
  if (s->mode == 0) {
    s->single = {lo, hi};
    s->mode = 1;
    return;
  }
  if (s->mode == 1) {
    if (hi == s->single.lo) {
      s->single.lo = lo;
      return;
    }
    if (lo == s->single.hi) {
      s->single.hi = hi;
      return;
    }
    // Genuinely fragmented: spill to a sorted vector in the pool.
    s->spill = static_cast<int32_t>(spills->size());
    spills->emplace_back();
    std::vector<Range>& ranges = spills->back();
    if (lo < s->single.lo) {
      ranges.push_back({lo, hi});
      ranges.push_back(s->single);
    } else {
      ranges.push_back(s->single);
      ranges.push_back({lo, hi});
    }
    s->mode = 2;
    return;
  }
  std::vector<Range>& ranges = (*spills)[static_cast<size_t>(s->spill)];
  auto it =
      std::lower_bound(ranges.begin(), ranges.end(), lo,
                       [](const Range& r, int64_t v) { return r.lo < v; });
  if (it != ranges.begin() && std::prev(it)->hi == lo) {
    // Extend the left neighbor; maybe fuse with the right one too.
    auto prev = std::prev(it);
    prev->hi = hi;
    if (it != ranges.end() && it->lo == hi) {
      prev->hi = it->hi;
      ranges.erase(it);
    }
    return;
  }
  if (it != ranges.end() && it->lo == hi) {
    it->lo = lo;
    return;
  }
  ranges.insert(it, Range{lo, hi});
}

/// The element extents one op touches, re-derived from its kind and shape
/// fields — the verifier's independent model of the executor's pointer
/// arithmetic. At most two reads; writes are `w_rows` rows of `w_cols`
/// elements every `w_stride` (contiguous ops are the one-row case), kept as
/// a descriptor rather than materialized ranges: this sits on the
/// verify-per-compile hot path the bench_plan <10%-of-compile gate prices.
struct OpAccess {
  ValueId read_v[2] = {kNoValue, kNoValue};
  Range read_r[2] = {};
  int num_reads = 0;
  int64_t w_base = 0;
  int64_t w_rows = 1;
  int64_t w_stride = 0;  // row pitch; irrelevant when w_rows == 1
  int64_t w_cols = 0;    // width of each written row
};

// Derives `access` for ops[idx], checking the shape fields themselves
// (positive extents, non-negative offsets, gather stride/table geometry).
// Returns false with *fail set on malformed fields; the clean path builds
// no VerifyResult (and thus no std::string) at all. Force-inlined: the
// clean path is a dozen instructions, and the out-of-line call (argument
// spills + re-loads of `access` every op) measurably dominates it.
[[gnu::always_inline]] inline bool DeriveAccess(const CompiledPlan& plan,
                                                int32_t idx, OpAccess* access,
                                                VerifyResult* fail) {
  const Op& op = plan.ops[static_cast<size_t>(idx)];
  access->num_reads = 0;
  access->w_rows = 1;
  access->w_stride = 0;
  // Failure paths only — never built on the clean path.
  const auto where = [&] { return OpRef(idx, op); };
  const auto shape_fail = [&](std::string detail) {
    *fail = Fail("shape", where() + std::move(detail));
    return false;
  };
  if (op.a_off < 0 || op.b_off < 0 || op.dst_off < 0) {
    return shape_fail(": negative element offset");
  }
  access->w_base = op.dst_off;
  auto read = [&](ValueId v, int64_t lo, int64_t n) {
    access->read_v[access->num_reads] = v;
    access->read_r[access->num_reads] = {lo, lo + n};
    ++access->num_reads;
  };
  switch (op.kind) {
    case OpKind::kZero:
      if (op.cols <= 0) return shape_fail(": cols must be > 0");
      access->w_cols = op.cols;
      return true;
    case OpKind::kGather: {
      if (op.rows <= 0 || op.cols <= 0 || op.k <= 0) {
        return shape_fail(": rows, cols, k must be > 0");
      }
      if (op.index_input < 0 || op.index_input >= plan.num_index_inputs) {
        return shape_fail(": index input " + Str(op.index_input) +
                          " outside [0, " + Str(plan.num_index_inputs) + ")");
      }
      if (op.dst_stride < op.cols) {
        return shape_fail(": dst stride " + Str(op.dst_stride) +
                          " narrower than row width " + Str(op.cols));
      }
      // The gathered row is data-dependent (run-time bounds check against
      // k); statically the whole {k, cols} table is the read extent.
      read(op.a, 0, op.k * op.cols);
      access->w_rows = op.rows;
      access->w_stride = op.dst_stride;
      access->w_cols = op.cols;
      return true;
    }
    case OpKind::kMatMul:
      if (op.rows <= 0 || op.cols <= 0 || op.k <= 0) {
        return shape_fail(": rows, cols, k must be > 0");
      }
      read(op.a, op.a_off, op.rows * op.k);
      read(op.b, op.b_off, op.k * op.cols);
      access->w_cols = op.rows * op.cols;
      return true;
    case OpKind::kAdd:
    case OpKind::kAddTanh:
    case OpKind::kAddSigmoid:
      if (op.rows <= 0 || op.cols <= 0) {
        return shape_fail(": rows and cols must be > 0");
      }
      read(op.a, op.a_off, op.rows * op.cols);
      read(op.b, op.b_off, (op.broadcast ? 1 : op.rows) * op.cols);
      access->w_cols = op.rows * op.cols;
      return true;
    case OpKind::kMul:
      if (op.cols <= 0) return shape_fail(": cols must be > 0");
      read(op.a, op.a_off, op.cols);
      read(op.b, op.b_off, op.cols);
      access->w_cols = op.cols;
      return true;
    case OpKind::kScalarMul:
    case OpKind::kScalarAdd:
    case OpKind::kTanh:
    case OpKind::kSigmoid:
      if (op.cols <= 0) return shape_fail(": cols must be > 0");
      read(op.a, op.a_off, op.cols);
      access->w_cols = op.cols;
      return true;
  }
  return shape_fail(": unknown op kind");
}

// The operand slots an op kind actually consumes; any other slot must stay
// kNoValue so a stray id cannot smuggle in an unchecked dependency.
bool UsesB(OpKind kind) {
  switch (kind) {
    case OpKind::kMatMul:
    case OpKind::kAdd:
    case OpKind::kMul:
    case OpKind::kAddTanh:
    case OpKind::kAddSigmoid:
      return true;
    default:
      return false;
  }
}

bool UsesA(OpKind kind) { return kind != OpKind::kZero; }

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kZero: return "Zero";
    case OpKind::kGather: return "Gather";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kAdd: return "Add";
    case OpKind::kMul: return "Mul";
    case OpKind::kScalarMul: return "ScalarMul";
    case OpKind::kScalarAdd: return "ScalarAdd";
    case OpKind::kTanh: return "Tanh";
    case OpKind::kSigmoid: return "Sigmoid";
    case OpKind::kAddTanh: return "AddTanh";
    case OpKind::kAddSigmoid: return "AddSigmoid";
  }
  return "?";
}

VerifyMode PlanVerifyModeFromEnv() {
  const std::string mode = common::EnvString("ADAMOVE_PLAN_VERIFY", "compile");
  if (mode == "off") return VerifyMode::kOff;
  if (mode == "paranoid") return VerifyMode::kParanoid;
  return VerifyMode::kCompile;
}

VerifyResult VerifyPlan(const CompiledPlan& plan) {
  const int64_t num_values = static_cast<int64_t>(plan.values.size());
  const int32_t num_ops = static_cast<int32_t>(plan.ops.size());

  // --- 1. structure -------------------------------------------------------
  if (num_ops == 0) return Fail("structure", "empty op list");
  if (plan.num_index_inputs < 0) {
    return Fail("structure", "negative num_index_inputs");
  }
  if (plan.arena_elems < 0) return Fail("structure", "negative arena size");
  if (plan.output < 0 || plan.output >= num_values) {
    return Fail("output", "output id " + Str(plan.output) +
                              " outside [0, " + Str(num_values) + ")");
  }
  if (plan.out_rows <= 0 || plan.out_cols <= 0) {
    return Fail("output", "non-positive output shape {" + Str(plan.out_rows) +
                              ", " + Str(plan.out_cols) + "}");
  }

  // --- 2. per-value checks (kinds, weights, arena placement) -------------
  int64_t weight_count = 0;
  for (int64_t i = 0; i < num_values; ++i) {
    const Value& v = plan.values[static_cast<size_t>(i)];
    if (v.elems <= 0) {
      return Fail("value", ValueRef(static_cast<ValueId>(i)) +
                               ": non-positive size " + Str(v.elems));
    }
    switch (v.kind) {
      case ValueKind::kWeight: {
        if (v.weight_data == nullptr) {
          return Fail("weight", ValueRef(static_cast<ValueId>(i)) +
                                    ": null weight data");
        }
        const size_t slot = static_cast<size_t>(weight_count);
        if (slot >= plan.weight_fingerprint.size()) {
          return Fail("fingerprint",
                      ValueRef(static_cast<ValueId>(i)) +
                          ": weight slot " + Str(weight_count) +
                          " not covered by the fingerprint (size " +
                          Str(static_cast<int64_t>(
                              plan.weight_fingerprint.size())) +
                          ")");
        }
        if (plan.weight_fingerprint[slot] != v.weight_data) {
          return Fail("fingerprint",
                      ValueRef(static_cast<ValueId>(i)) +
                          ": fingerprint slot " + Str(weight_count) +
                          " does not match the weight's data pointer");
        }
        ++weight_count;
        break;
      }
      case ValueKind::kTemp: {
        if (v.arena_offset < 0) {
          return Fail("arena-bounds", ValueRef(static_cast<ValueId>(i)) +
                                          ": unplaced temp (offset " +
                                          Str(v.arena_offset) + ")");
        }
        if (v.arena_offset % kAlignElems != 0) {
          return Fail("arena-align",
                      ValueRef(static_cast<ValueId>(i)) + ": offset " +
                          Str(v.arena_offset) + " not " +
                          Str(kAlignElems * 4) + "-byte aligned");
        }
        if (v.arena_offset + v.elems > plan.arena_elems) {
          return Fail("arena-bounds",
                      ValueRef(static_cast<ValueId>(i)) + ": [" +
                          Str(v.arena_offset) + ", " +
                          Str(v.arena_offset + v.elems) +
                          ") exceeds arena size " + Str(plan.arena_elems));
        }
        if (v.first_def < 0 || v.last_use < v.first_def ||
            v.last_use >= num_ops) {
          return Fail("interval",
                      ValueRef(static_cast<ValueId>(i)) +
                          ": malformed live interval [" + Str(v.first_def) +
                          ", " + Str(v.last_use) + "]");
        }
        break;
      }
      case ValueKind::kOutput: {
        if (i != plan.output) {
          return Fail("output", "second kOutput " +
                                    ValueRef(static_cast<ValueId>(i)) +
                                    " (plan output is " + Str(plan.output) +
                                    ")");
        }
        if (v.elems != plan.out_rows * plan.out_cols) {
          return Fail("output", "output size " + Str(v.elems) +
                                    " != out_rows*out_cols = " +
                                    Str(plan.out_rows * plan.out_cols));
        }
        break;
      }
    }
  }
  if (plan.values[static_cast<size_t>(plan.output)].kind !=
      ValueKind::kOutput) {
    return Fail("output", "output id " + Str(plan.output) +
                              " is not a kOutput value");
  }
  if (static_cast<size_t>(weight_count) != plan.weight_fingerprint.size()) {
    return Fail("fingerprint",
                "fingerprint lists " +
                    Str(static_cast<int64_t>(plan.weight_fingerprint.size())) +
                    " pointers but the plan has " + Str(weight_count) +
                    " weights");
  }

  // --- 3. op walk: SSA + shape/bounds + alias freedom ---------------------
  // Defined ranges + derived touch interval per value, one record each.
  std::vector<ValueScratch> scratch(static_cast<size_t>(num_values));
  SpillPool spills;
  // Temps in order of first touch — ops are already topologically ordered,
  // so appending on first touch yields the birth-sorted sequence the
  // liveness sweep (pass 5) needs without a per-verify sort.
  std::vector<ValueId> birth_order;
  birth_order.reserve(static_cast<size_t>(num_values));

  OpAccess access;       // reused across ops
  VerifyResult derived;  // filled by DeriveAccess only on failure
  for (int32_t i = 0; i < num_ops; ++i) {
    const Op& op = plan.ops[static_cast<size_t>(i)];
    // Failure paths only — see DeriveAccess.
    const auto where = [&] { return OpRef(i, op); };
    // Operand slots: present ids in range, absent slots truly absent —
    // one pass per slot rather than a range sweep plus a presence sweep.
    if (op.dst < 0 || op.dst >= num_values) {
      if (op.dst == kNoValue) return Fail("structure", where() + ": no dst");
      return Fail("structure",
                  where() + ": operand " + Str(op.dst) + " outside [0, " +
                      Str(num_values) + ")");
    }
    if (UsesA(op.kind)) {
      if (op.a == kNoValue) {
        return Fail("structure", where() + ": missing input a");
      }
      if (op.a < 0 || op.a >= num_values) {
        return Fail("structure",
                    where() + ": operand " + Str(op.a) + " outside [0, " +
                        Str(num_values) + ")");
      }
    } else if (op.a != kNoValue) {
      return Fail("structure", where() + ": unexpected input a");
    }
    if (UsesB(op.kind)) {
      if (op.b == kNoValue) {
        return Fail("structure", where() + ": missing input b");
      }
      if (op.b < 0 || op.b >= num_values) {
        return Fail("structure",
                    where() + ": operand " + Str(op.b) + " outside [0, " +
                        Str(num_values) + ")");
      }
    } else if (op.b != kNoValue) {
      return Fail("structure", where() + ": unexpected input b");
    }
    const Value& dv = plan.values[static_cast<size_t>(op.dst)];
    if (dv.kind == ValueKind::kWeight) {
      return Fail("structure",
                  where() + ": writes weight " + ValueRef(op.dst));
    }
    if (op.kind == OpKind::kGather &&
        plan.values[static_cast<size_t>(op.a)].kind != ValueKind::kWeight) {
      return Fail("shape", where() + ": gather table " + ValueRef(op.a) +
                               " is not a weight");
    }

    if (!DeriveAccess(plan, i, &access, &derived)) return derived;

    // Gather tables must be exactly the {k, cols} geometry the run-time
    // row-bounds check assumes (k rows of cols floats, no slack).
    if (op.kind == OpKind::kGather) {
      const Value& table = plan.values[static_cast<size_t>(op.a)];
      if (table.elems != op.k * op.cols) {
        return Fail("shape", where() + ": table " + ValueRef(op.a) + " has " +
                                 Str(table.elems) + " elems, expected k*cols = " +
                                 Str(op.k * op.cols));
      }
    }

    // Reads: in bounds, fully defined, not aliasing this op's output.
    for (int j = 0; j < access.num_reads; ++j) {
      const ValueId rv = access.read_v[j];
      const Range range = access.read_r[j];
      const Value& src = plan.values[static_cast<size_t>(rv)];
      if (range.hi > src.elems) {
        return Fail("bounds", where() + ": reads " + ValueRef(rv) + " [" +
                                  Str(range.lo) + ", " + Str(range.hi) +
                                  ") past its " + Str(src.elems) + " elems");
      }
      // Alias freedom first (an in-place op is better reported as aliasing
      // than as reading its not-yet-defined output): the executor streams
      // reads while writing dst, so an input overlapping the freshly
      // defined output bytes is corruption — within one value (element
      // ranges) or across the arena (two temps whose packed byte ranges
      // intersect at this op).
      if (rv == op.dst) {
        for (int64_t r = 0; r < access.w_rows; ++r) {
          const int64_t w_lo = access.w_base + r * access.w_stride;
          const int64_t w_hi = w_lo + access.w_cols;
          if (range.lo < w_hi && w_lo < range.hi) {
            return Fail("alias", where() + ": input range [" + Str(range.lo) +
                                     ", " + Str(range.hi) + ") of " +
                                     ValueRef(rv) +
                                     " overlaps its own output range [" +
                                     Str(w_lo) + ", " + Str(w_hi) + ")");
          }
        }
      } else if (src.kind == ValueKind::kTemp &&
                 dv.kind == ValueKind::kTemp) {
        for (int64_t r = 0; r < access.w_rows; ++r) {
          const int64_t r_lo = src.arena_offset + range.lo;
          const int64_t r_hi = src.arena_offset + range.hi;
          const int64_t w_lo =
              dv.arena_offset + access.w_base + r * access.w_stride;
          const int64_t w_hi = w_lo + access.w_cols;
          if (r_lo < w_hi && w_lo < r_hi) {
            return Fail("alias",
                        where() + ": input " + ValueRef(rv) +
                            " shares arena bytes with its output " +
                            ValueRef(op.dst));
          }
        }
      }
      if (src.kind != ValueKind::kWeight) {
        ValueScratch& rs = scratch[static_cast<size_t>(rv)];
        if (!SetCovers(rs, spills, range.lo, range.hi)) {
          return Fail("use-before-def",
                      where() + ": reads " + ValueRef(rv) + " [" +
                          Str(range.lo) + ", " + Str(range.hi) +
                          ") before it is defined");
        }
        // Touch interval, maintained on the scratch line already in hand.
        // Weights are exempt: pass 4 never consults their interval.
        if (rs.first_touch < 0) {
          rs.first_touch = i;
          if (src.kind == ValueKind::kTemp) birth_order.push_back(rv);
        }
        rs.last_touch = i;
      }
    }

    // Writes: in bounds and single-definition per element.
    ValueScratch& ddef = scratch[static_cast<size_t>(op.dst)];
    for (int64_t r = 0; r < access.w_rows; ++r) {
      const int64_t w_lo = access.w_base + r * access.w_stride;
      const int64_t w_hi = w_lo + access.w_cols;
      if (w_hi > dv.elems) {
        return Fail("bounds", where() + ": writes " + ValueRef(op.dst) + " [" +
                                  Str(w_lo) + ", " + Str(w_hi) +
                                  ") past its " + Str(dv.elems) + " elems");
      }
      if (SetOverlaps(ddef, spills, w_lo, w_hi)) {
        return Fail("single-def",
                    where() + ": redefines elements [" + Str(w_lo) + ", " +
                        Str(w_hi) + ") of " + ValueRef(op.dst));
      }
      SetInsert(&ddef, &spills, w_lo, w_hi);
    }
    // Every op kind writes dst, so the write side alone determines dst's
    // touch interval update for this op.
    if (ddef.first_touch < 0) {
      ddef.first_touch = i;
      if (dv.kind == ValueKind::kTemp) birth_order.push_back(op.dst);
    }
    ddef.last_touch = i;
  }

  // --- 4. lifetime honesty: recorded intervals == derived intervals ------
  // The packer trusted Value::{first_def, last_use}; a recorded interval
  // narrower than the ops' real extent lets two live temps share bytes.
  for (int64_t i = 0; i < num_values; ++i) {
    const Value& v = plan.values[static_cast<size_t>(i)];
    if (v.kind == ValueKind::kWeight) continue;
    const ValueScratch& s = scratch[static_cast<size_t>(i)];
    if (s.first_touch < 0) {
      return Fail("interval", ValueRef(static_cast<ValueId>(i)) +
                                  ": never touched by any op");
    }
    if (v.first_def != s.first_touch || v.last_use != s.last_touch) {
      return Fail("interval",
                  ValueRef(static_cast<ValueId>(i)) +
                      ": recorded live interval [" + Str(v.first_def) + ", " +
                      Str(v.last_use) + "] != derived [" + Str(s.first_touch) +
                      ", " + Str(s.last_touch) + "]");
    }
  }

  // --- 5. the memory-planner proof: live temps never share bytes ----------
  // Sweep temps in birth order (first touch order, which pass 4 just proved
  // equals the recorded first_def). The active list holds only temps whose
  // live interval reaches the current birth point — the handful of values
  // genuinely live at once — so each new temp is checked against live
  // candidates only, never against every later occupant of its arena slot
  // (slot-reuse chains make that pairing quadratic: one slot hosts one
  // temp per recurrence step).
  struct ActiveTemp {
    ValueId id;
    int64_t lo;        // arena extent, in elements
    int64_t hi;
    int32_t last_use;  // recorded == derived after pass 4
  };
  std::vector<ActiveTemp> active;
  active.reserve(64);
  for (const ValueId id : birth_order) {
    const Value& v = plan.values[static_cast<size_t>(id)];
    const int32_t birth = v.first_def;
    const int64_t lo = v.arena_offset;
    const int64_t hi = v.arena_offset + v.elems;
    for (size_t a = 0; a < active.size();) {
      if (active[a].last_use < birth) {  // expired: lazily swap-erase
        active[a] = active.back();
        active.pop_back();
        continue;
      }
      if (lo < active[a].hi && active[a].lo < hi) {
        const Value& other = plan.values[static_cast<size_t>(active[a].id)];
        return Fail("arena-overlap",
                    ValueRef(active[a].id) + " [" + Str(other.arena_offset) +
                        ", " + Str(other.arena_offset + other.elems) +
                        ") live [" + Str(other.first_def) + ", " +
                        Str(other.last_use) +
                        "] shares arena bytes with " + ValueRef(id) + " [" +
                        Str(lo) + ", " + Str(hi) + ") live [" +
                        Str(v.first_def) + ", " + Str(v.last_use) + "]");
      }
      ++a;
    }
    active.push_back({id, lo, hi, v.last_use});
  }

  return {};
}

}  // namespace adamove::nn::plan
