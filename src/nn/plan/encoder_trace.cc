#include "nn/plan/encoder_trace.h"

#include <utility>

#include "common/check.h"
#include "nn/stacked.h"

namespace adamove::nn::plan {

namespace {

// Each tracer re-emits the corresponding Forward() from rnn.cc op for op:
// the same kernel choices, the same broadcast flags (ops.cc derives
// broadcast as `b.rows() == 1 && a.rows() > 1`), and plain offsets where
// graph mode materializes Row/SliceCols copies. Step-local temps are fresh
// SSA values each iteration; Finalize's lifetime analysis folds them back
// into a handful of arena slots.

// h_t = tanh(x_t W_ih + h_{t-1} W_hh + b) — rnn.cc RnnEncoder::Forward.
void TraceRnn(const RnnEncoder& rnn, PlanBuilder& b, ValueId x, int64_t t_len,
              ValueId dst) {
  const int64_t in = rnn.input_size();
  const int64_t hs = rnn.hidden_size();
  const ValueId w_ih = b.Weight(rnn.w_ih());
  const ValueId w_hh = b.Weight(rnn.w_hh());
  const ValueId bias = b.Weight(rnn.bias());
  const ValueId mm_x = b.Temp(t_len * hs);
  b.MatMul(x, 0, w_ih, mm_x, 0, t_len, in, hs);
  const ValueId xw = b.Temp(t_len * hs);
  b.Add(mm_x, 0, bias, 0, xw, 0, t_len, hs, /*broadcast=*/t_len > 1);
  const ValueId h0 = b.Temp(hs);
  b.Zero(h0, 0, hs);
  for (int64_t t = 0; t < t_len; ++t) {
    const ValueId hp = t == 0 ? h0 : dst;
    const int64_t hp_off = t == 0 ? 0 : (t - 1) * hs;
    const ValueId mm_h = b.Temp(hs);
    b.MatMul(hp, hp_off, w_hh, mm_h, 0, 1, hs, hs);
    b.AddTanh(xw, t * hs, mm_h, 0, dst, t * hs, 1, hs, /*broadcast=*/false);
  }
}

// Standard i,f,g,o LSTM — rnn.cc LstmEncoder::Forward.
void TraceLstm(const LstmEncoder& lstm, PlanBuilder& b, ValueId x,
               int64_t t_len, ValueId dst) {
  const int64_t in = lstm.input_size();
  const int64_t hs = lstm.hidden_size();
  const ValueId w_ih = b.Weight(lstm.w_ih());
  const ValueId w_hh = b.Weight(lstm.w_hh());
  const ValueId bias = b.Weight(lstm.bias());
  const ValueId mm_x = b.Temp(t_len * 4 * hs);
  b.MatMul(x, 0, w_ih, mm_x, 0, t_len, in, 4 * hs);
  const ValueId xw = b.Temp(t_len * 4 * hs);
  b.Add(mm_x, 0, bias, 0, xw, 0, t_len, 4 * hs, /*broadcast=*/t_len > 1);
  const ValueId h0 = b.Temp(hs);
  b.Zero(h0, 0, hs);
  ValueId c_prev = b.Temp(hs);
  b.Zero(c_prev, 0, hs);
  for (int64_t t = 0; t < t_len; ++t) {
    const ValueId hp = t == 0 ? h0 : dst;
    const int64_t hp_off = t == 0 ? 0 : (t - 1) * hs;
    const ValueId mm_h = b.Temp(4 * hs);
    b.MatMul(hp, hp_off, w_hh, mm_h, 0, 1, hs, 4 * hs);
    const ValueId gates = b.Temp(4 * hs);
    b.Add(xw, t * 4 * hs, mm_h, 0, gates, 0, 1, 4 * hs, /*broadcast=*/false);
    const ValueId i = b.Temp(hs);
    b.Sigmoid(gates, 0, i, 0, hs);
    const ValueId f = b.Temp(hs);
    b.Sigmoid(gates, hs, f, 0, hs);
    const ValueId g = b.Temp(hs);
    b.Tanh(gates, 2 * hs, g, 0, hs);
    const ValueId o = b.Temp(hs);
    b.Sigmoid(gates, 3 * hs, o, 0, hs);
    const ValueId fc = b.Temp(hs);
    b.Mul(f, 0, c_prev, 0, fc, 0, hs);
    const ValueId ig = b.Temp(hs);
    b.Mul(i, 0, g, 0, ig, 0, hs);
    const ValueId c = b.Temp(hs);
    b.Add(fc, 0, ig, 0, c, 0, 1, hs, /*broadcast=*/false);
    const ValueId tc = b.Temp(hs);
    b.Tanh(c, 0, tc, 0, hs);
    b.Mul(o, 0, tc, 0, dst, t * hs, hs);
    c_prev = c;
  }
}

// r,z,n GRU — rnn.cc GruEncoder::Forward, including the two-rounding
// (1 - z) computed as ScalarAdd(ScalarMul(z, -1), 1).
void TraceGru(const GruEncoder& gru, PlanBuilder& b, ValueId x, int64_t t_len,
              ValueId dst) {
  const int64_t in = gru.input_size();
  const int64_t hs = gru.hidden_size();
  const ValueId w_ih = b.Weight(gru.w_ih());
  const ValueId w_hh = b.Weight(gru.w_hh());
  const ValueId b_ih = b.Weight(gru.b_ih());
  const ValueId b_hh = b.Weight(gru.b_hh());
  const ValueId mm_x = b.Temp(t_len * 3 * hs);
  b.MatMul(x, 0, w_ih, mm_x, 0, t_len, in, 3 * hs);
  const ValueId xw = b.Temp(t_len * 3 * hs);
  b.Add(mm_x, 0, b_ih, 0, xw, 0, t_len, 3 * hs, /*broadcast=*/t_len > 1);
  const ValueId h0 = b.Temp(hs);
  b.Zero(h0, 0, hs);
  for (int64_t t = 0; t < t_len; ++t) {
    const ValueId hp = t == 0 ? h0 : dst;
    const int64_t hp_off = t == 0 ? 0 : (t - 1) * hs;
    const ValueId mm_h = b.Temp(3 * hs);
    b.MatMul(hp, hp_off, w_hh, mm_h, 0, 1, hs, 3 * hs);
    const ValueId hw = b.Temp(3 * hs);
    b.Add(mm_h, 0, b_hh, 0, hw, 0, 1, 3 * hs, /*broadcast=*/false);
    const ValueId r = b.Temp(hs);
    b.AddSigmoid(xw, t * 3 * hs, hw, 0, r, 0, 1, hs, /*broadcast=*/false);
    const ValueId z = b.Temp(hs);
    b.AddSigmoid(xw, t * 3 * hs + hs, hw, hs, z, 0, 1, hs,
                 /*broadcast=*/false);
    const ValueId rh = b.Temp(hs);
    b.Mul(r, 0, hw, 2 * hs, rh, 0, hs);
    const ValueId n = b.Temp(hs);
    b.AddTanh(xw, t * 3 * hs + 2 * hs, rh, 0, n, 0, 1, hs,
              /*broadcast=*/false);
    const ValueId zneg = b.Temp(hs);
    b.ScalarMul(z, 0, zneg, 0, hs, -1.0f);
    const ValueId omz = b.Temp(hs);
    b.ScalarAdd(zneg, 0, omz, 0, hs, 1.0f);
    const ValueId a1 = b.Temp(hs);
    b.Mul(omz, 0, n, 0, a1, 0, hs);
    const ValueId a2 = b.Temp(hs);
    b.Mul(z, 0, hp, hp_off, a2, 0, hs);
    b.Add(a1, 0, a2, 0, dst, t * hs, 1, hs, /*broadcast=*/false);
  }
}

// Maps value `x` ({t_len, x_cols}) through `layer` into `dst`
// ({t_len, layer.hidden_size()}). Returns false on an unknown encoder type
// (the trace is abandoned; callers fall back to graph mode).
bool TraceLayer(const SequenceEncoder& layer, PlanBuilder& b, ValueId x,
                int64_t x_cols, int64_t t_len, ValueId dst) {
  if (const auto* rnn = dynamic_cast<const RnnEncoder*>(&layer)) {
    ADAMOVE_CHECK_EQ(x_cols, rnn->input_size());
    TraceRnn(*rnn, b, x, t_len, dst);
    return true;
  }
  if (const auto* lstm = dynamic_cast<const LstmEncoder*>(&layer)) {
    ADAMOVE_CHECK_EQ(x_cols, lstm->input_size());
    TraceLstm(*lstm, b, x, t_len, dst);
    return true;
  }
  if (const auto* gru = dynamic_cast<const GruEncoder*>(&layer)) {
    ADAMOVE_CHECK_EQ(x_cols, gru->input_size());
    TraceGru(*gru, b, x, t_len, dst);
    return true;
  }
  if (const auto* stacked = dynamic_cast<const StackedEncoder*>(&layer)) {
    ValueId cur = x;
    int64_t cur_cols = x_cols;
    const auto& layers = stacked->layers();
    for (size_t i = 0; i < layers.size(); ++i) {
      const bool last = i + 1 == layers.size();
      const int64_t out_cols = layers[i]->hidden_size();
      const ValueId layer_dst = last ? dst : b.Temp(t_len * out_cols);
      if (!TraceLayer(*layers[i], b, cur, cur_cols, t_len, layer_dst)) {
        return false;
      }
      cur = layer_dst;
      cur_cols = out_cols;
    }
    return true;
  }
  return false;  // transformer or future encoder: graph fallback
}

// Mirrors TraceLayer's Weight() registration order exactly.
bool CollectLayerWeights(const SequenceEncoder& layer,
                         std::vector<const float*>* out) {
  if (const auto* rnn = dynamic_cast<const RnnEncoder*>(&layer)) {
    out->push_back(rnn->w_ih().data().data());
    out->push_back(rnn->w_hh().data().data());
    out->push_back(rnn->bias().data().data());
    return true;
  }
  if (const auto* lstm = dynamic_cast<const LstmEncoder*>(&layer)) {
    out->push_back(lstm->w_ih().data().data());
    out->push_back(lstm->w_hh().data().data());
    out->push_back(lstm->bias().data().data());
    return true;
  }
  if (const auto* gru = dynamic_cast<const GruEncoder*>(&layer)) {
    out->push_back(gru->w_ih().data().data());
    out->push_back(gru->w_hh().data().data());
    out->push_back(gru->b_ih().data().data());
    out->push_back(gru->b_hh().data().data());
    return true;
  }
  if (const auto* stacked = dynamic_cast<const StackedEncoder*>(&layer)) {
    for (const auto& inner : stacked->layers()) {
      if (!CollectLayerWeights(*inner, out)) return false;
    }
    return true;
  }
  return false;
}

// Cursor-based variant of CollectLayerWeights that compares instead of
// collecting — no allocation, so it is safe inside zero-alloc scopes.
bool MatchLayerWeights(const SequenceEncoder& layer,
                       const float* const* fingerprint, size_t n,
                       size_t* cursor) {
  auto match = [&](const Tensor& t) {
    if (*cursor >= n) return false;
    return fingerprint[(*cursor)++] == t.data().data();
  };
  if (const auto* rnn = dynamic_cast<const RnnEncoder*>(&layer)) {
    return match(rnn->w_ih()) && match(rnn->w_hh()) && match(rnn->bias());
  }
  if (const auto* lstm = dynamic_cast<const LstmEncoder*>(&layer)) {
    return match(lstm->w_ih()) && match(lstm->w_hh()) && match(lstm->bias());
  }
  if (const auto* gru = dynamic_cast<const GruEncoder*>(&layer)) {
    return match(gru->w_ih()) && match(gru->w_hh()) && match(gru->b_ih()) &&
           match(gru->b_hh());
  }
  if (const auto* stacked = dynamic_cast<const StackedEncoder*>(&layer)) {
    for (const auto& inner : stacked->layers()) {
      if (!MatchLayerWeights(*inner, fingerprint, n, cursor)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

std::shared_ptr<const CompiledPlan> CompileEncoderForward(
    const std::vector<const Embedding*>& embeddings,
    const SequenceEncoder& seq, int64_t seq_len) {
  if (seq_len <= 0 || embeddings.empty()) return nullptr;
  PlanBuilder b;
  int64_t in_total = 0;
  for (const Embedding* e : embeddings) in_total += e->dim();

  // Index inputs and embedding tables, in caller order — graph mode's
  // EmbeddingLookup + ConcatCols becomes strided gathers into one x buffer
  // (both are pure copies, so values are identical).
  std::vector<int32_t> inputs;
  std::vector<ValueId> tables;
  for (const Embedding* e : embeddings) {
    inputs.push_back(b.IndexInput());
    tables.push_back(b.Weight(e->weight()));
  }
  const ValueId x = b.Temp(seq_len * in_total);
  const ValueId out = b.Output(seq_len, seq.hidden_size());
  int64_t col = 0;
  for (size_t i = 0; i < embeddings.size(); ++i) {
    b.Gather(inputs[i], tables[i], embeddings[i]->num_embeddings(),
             embeddings[i]->dim(), seq_len, x, col, in_total);
    col += embeddings[i]->dim();
  }
  if (!TraceLayer(seq, b, x, in_total, seq_len, out)) return nullptr;
  CompiledPlan plan = std::move(b).Finalize();
  plan.seq_len = seq_len;
  return std::make_shared<const CompiledPlan>(std::move(plan));
}

std::vector<const float*> EncoderWeightPointers(
    const std::vector<const Embedding*>& embeddings,
    const SequenceEncoder& seq) {
  std::vector<const float*> out;
  for (const Embedding* e : embeddings) {
    out.push_back(e->weight().data().data());
  }
  if (!CollectLayerWeights(seq, &out)) out.clear();
  return out;
}

bool EncoderWeightsMatch(const std::vector<const Embedding*>& embeddings,
                         const SequenceEncoder& seq,
                         const float* const* fingerprint, size_t n) {
  size_t cursor = 0;
  for (const Embedding* e : embeddings) {
    if (cursor >= n) return false;
    if (fingerprint[cursor++] != e->weight().data().data()) return false;
  }
  if (!MatchLayerWeights(seq, fingerprint, n, &cursor)) return false;
  return cursor == n;
}

}  // namespace adamove::nn::plan
