#ifndef ADAMOVE_NN_PLAN_PLAN_H_
#define ADAMOVE_NN_PLAN_PLAN_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace adamove::nn::plan {

/// Static forward-plan IR (DESIGN.md §14).
///
/// A CompiledPlan is the encoder inference graph traced once per model
/// shape into a topologically ordered op list over flat float buffers. The
/// graph-walking path (nn/ops.cc) stays the bit-identical reference; a plan
/// re-expresses exactly the same arithmetic — the same scalar loops for the
/// backend-independent ops, the same KernelTable entry points for the
/// backend-dispatched ones — minus the per-request TensorImpl/shared_ptr
/// traffic. Intermediates are lifetime-analyzed and packed into one
/// pre-sized arena so executing a plan performs zero heap allocations.

using ValueId = int32_t;
inline constexpr ValueId kNoValue = -1;

enum class ValueKind : uint8_t {
  kWeight,  // borrows the model tensor's storage (no copy)
  kTemp,    // lives in the arena at a planner-assigned offset
  kOutput,  // the caller-provided output buffer
};

struct Value {
  ValueKind kind = ValueKind::kTemp;
  int64_t elems = 0;
  const float* weight_data = nullptr;  // kWeight
  int64_t arena_offset = -1;           // kTemp, assigned by Finalize
  // Live interval in op indices (closed on both ends), from lifetime
  // analysis. Two temps may share arena bytes only if their intervals are
  // disjoint; the closed-interval rule also forbids an op's input aliasing
  // its freshly defined output.
  int32_t first_def = -1;
  int32_t last_use = -1;
};

/// Op kinds mirror the graph ops they were traced from, split into two
/// arithmetic classes (DESIGN.md §13):
///  - backend-independent scalar loops, replicated verbatim from ops.cc
///    (kAdd, kMul, kScalarMul, kScalarAdd, kTanh, kSigmoid, copies);
///  - backend-dispatched kernels, invoked through the same KernelTable
///    entry points as graph mode (kMatMul -> MatMulNN, kAddTanh ->
///    BiasTanh, kAddSigmoid -> BiasSigmoid), so plan-vs-graph bit-identity
///    holds per backend.
enum class OpKind : uint8_t {
  kZero,        // dst[0..cols) = 0 (recurrent initial state, each Run)
  kGather,      // embedding-lookup rows scattered into strided dst columns
  kMatMul,      // dst = a {rows,k} x b {k,cols}; zero-fill + MatMulNN
  kAdd,         // dst = a + b, optional row-broadcast of b (ops.cc loop)
  kMul,         // dst = a * b elementwise over cols elems
  kScalarMul,   // dst = a * scalar
  kScalarAdd,   // dst = a + scalar
  kTanh,        // dst = tanh(a), scalar loop (backend-independent)
  kSigmoid,     // dst = 1/(1+exp(-a)), scalar loop (backend-independent)
  kAddTanh,     // dst = tanh(a + b) via kernels::BiasTanh
  kAddSigmoid,  // dst = sigmoid(a + b) via kernels::BiasSigmoid
};

struct Op {
  OpKind kind;
  ValueId a = kNoValue;
  ValueId b = kNoValue;
  ValueId dst = kNoValue;
  // Element offsets into the respective values: plans use offsets where
  // graph mode materializes Row/SliceCols copies (every slice the encoder
  // traces take is row-contiguous, so an offset fully describes it).
  int64_t a_off = 0;
  int64_t b_off = 0;
  int64_t dst_off = 0;
  // Shape fields. Elementwise ops use rows=1, cols=element count. kMatMul
  // uses {rows, k} x {k, cols}. kGather uses rows=lookups, cols=row width,
  // k=table rows (bounds check), dst_stride=dst row stride.
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t k = 0;
  int64_t dst_stride = 0;
  int32_t index_input = -1;  // kGather: which int64 input array
  bool broadcast = false;    // kAdd/kAddTanh/kAddSigmoid row-broadcast of b
  float scalar = 0.0f;       // kScalarMul/kScalarAdd
};

struct CompiledPlan {
  std::vector<Value> values;
  std::vector<Op> ops;
  int64_t arena_elems = 0;  // floats; executor sizes its arena once
  ValueId output = kNoValue;
  int64_t out_rows = 0;
  int64_t out_cols = 0;
  int32_t num_index_inputs = 0;
  int64_t seq_len = 0;  // the T this plan was traced for (cache key)
  // Raw data pointers of every registered weight, in registration order.
  // Plans borrow weight storage; a checkpoint hot-swap that reallocates a
  // tensor's buffer changes its pointer, so comparing this fingerprint
  // against the live model detects staleness (see core::ForwardPlanner).
  std::vector<const float*> weight_fingerprint;
};

/// Records values and ops during a trace, then finalizes lifetimes and
/// arena placement. Build-time only — the builder allocates freely; the
/// executor that runs the finished plan does not.
class PlanBuilder {
 public:
  /// Registers a borrowed model weight (adds it to the fingerprint).
  ValueId Weight(const Tensor& t);
  /// Registers an arena intermediate of `elems` floats.
  ValueId Temp(int64_t elems);
  /// Registers the external {rows, cols} output buffer (once per plan).
  ValueId Output(int64_t rows, int64_t cols);
  /// Declares the next int64 index-input array slot (embedding lookups).
  int32_t IndexInput();

  void Zero(ValueId dst, int64_t dst_off, int64_t elems);
  void Gather(int32_t index_input, ValueId table, int64_t table_rows,
              int64_t table_cols, int64_t lookups, ValueId dst,
              int64_t dst_col, int64_t dst_stride);
  void MatMul(ValueId a, int64_t a_off, ValueId b, ValueId dst,
              int64_t dst_off, int64_t n, int64_t k, int64_t m);
  void Add(ValueId a, int64_t a_off, ValueId b, int64_t b_off, ValueId dst,
           int64_t dst_off, int64_t rows, int64_t cols, bool broadcast);
  void Mul(ValueId a, int64_t a_off, ValueId b, int64_t b_off, ValueId dst,
           int64_t dst_off, int64_t elems);
  void ScalarMul(ValueId a, int64_t a_off, ValueId dst, int64_t dst_off,
                 int64_t elems, float s);
  void ScalarAdd(ValueId a, int64_t a_off, ValueId dst, int64_t dst_off,
                 int64_t elems, float s);
  void Tanh(ValueId a, int64_t a_off, ValueId dst, int64_t dst_off,
            int64_t elems);
  void Sigmoid(ValueId a, int64_t a_off, ValueId dst, int64_t dst_off,
               int64_t elems);
  void AddTanh(ValueId a, int64_t a_off, ValueId b, int64_t b_off, ValueId dst,
               int64_t dst_off, int64_t rows, int64_t cols, bool broadcast);
  void AddSigmoid(ValueId a, int64_t a_off, ValueId b, int64_t b_off,
                  ValueId dst, int64_t dst_off, int64_t rows, int64_t cols,
                  bool broadcast);

  /// Runs lifetime analysis over the recorded ops, packs temps into the
  /// arena (greedy size-descending first-fit over disjoint live intervals,
  /// offsets aligned to 64 bytes), and returns the finished plan. The
  /// builder is consumed.
  CompiledPlan Finalize() &&;

 private:
  void Push(Op op);

  CompiledPlan plan_;
};

}  // namespace adamove::nn::plan

#endif  // ADAMOVE_NN_PLAN_PLAN_H_
