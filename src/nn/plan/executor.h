#ifndef ADAMOVE_NN_PLAN_EXECUTOR_H_
#define ADAMOVE_NN_PLAN_EXECUTOR_H_

#include <cstdint>
#include <memory>

#include "common/aligned_buffer.h"
#include "nn/plan/plan.h"

namespace adamove::nn::plan {

/// Runs a CompiledPlan. Bind() sizes the arena once per plan; every
/// subsequent Run() is a straight-line interpretation of the op list with
/// zero heap allocations — the property the `plan`-labeled alloc-probe
/// tests pin. scripts/lint.sh rejects allocation idioms (Tensor
/// construction, naked new, container growth) in this file's hot path.
///
/// Not thread-safe: the arena is the executor's mutable state, so each
/// serving worker (or test thread) owns its own executor. Plans themselves
/// are immutable and shared.
class PlanExecutor {
 public:
  PlanExecutor() = default;

  /// Binds `plan` and sizes the arena for it (the only allocating step;
  /// re-binding to a smaller plan keeps the larger arena).
  void Bind(std::shared_ptr<const CompiledPlan> plan);

  /// The bound plan, or nullptr before the first Bind.
  const CompiledPlan* plan() const { return plan_.get(); }

  /// Executes the bound plan. `index_inputs` holds
  /// plan()->num_index_inputs arrays of plan()->seq_len indices each; `out`
  /// receives the {out_rows, out_cols} result. Kernels run inline
  /// (common::SerialKernelRegion) — pool submission heap-allocates, and by
  /// the determinism contract chunking never changes values.
  void Run(const int64_t* const* index_inputs, float* out);

 private:
  const float* Src(ValueId id, const float* out) const;
  float* Dst(ValueId id, float* out);

  std::shared_ptr<const CompiledPlan> plan_;
  common::AlignedBuffer<float> arena_;
};

}  // namespace adamove::nn::plan

#endif  // ADAMOVE_NN_PLAN_EXECUTOR_H_
