#include "nn/plan/executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel_for.h"
#include "nn/kernels.h"

namespace adamove::nn::plan {

void PlanExecutor::Bind(std::shared_ptr<const CompiledPlan> plan) {
  ADAMOVE_CHECK(plan != nullptr);
  plan_ = std::move(plan);
  // The one allocating step: size the arena for the plan's packed temps.
  arena_.Resize(  // NOLINT(plan-executor-alloc): rebind, not the hot path
      static_cast<size_t>(plan_->arena_elems));
}

const float* PlanExecutor::Src(ValueId id, const float* out) const {
  const Value& v = plan_->values[static_cast<size_t>(id)];
  switch (v.kind) {
    case ValueKind::kWeight:
      return v.weight_data;
    case ValueKind::kTemp:
      return arena_.data() + v.arena_offset;
    case ValueKind::kOutput:
      return out;
  }
  return nullptr;  // unreachable
}

float* PlanExecutor::Dst(ValueId id, float* out) {
  const Value& v = plan_->values[static_cast<size_t>(id)];
  ADAMOVE_CHECK(v.kind != ValueKind::kWeight);
  if (v.kind == ValueKind::kOutput) return out;
  return arena_.data() + v.arena_offset;
}

void PlanExecutor::Run(const int64_t* const* index_inputs, float* out) {
  ADAMOVE_CHECK(plan_ != nullptr);
  // Pin kernels inline for the whole run: ParallelFor's pool path allocates
  // its future list, and by the determinism contract (DESIGN.md §13)
  // chunking is scheduling, never arithmetic, so values are unchanged.
  common::SerialKernelRegion serial;
  for (const Op& op : plan_->ops) {
    switch (op.kind) {
      case OpKind::kZero: {
        std::fill_n(Dst(op.dst, out) + op.dst_off, op.cols, 0.0f);
        break;
      }
      case OpKind::kGather: {
        const int64_t* idx = index_inputs[op.index_input];
        const float* table = Src(op.a, out);
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t r = 0; r < op.rows; ++r) {
          const int64_t row = idx[r];
          ADAMOVE_CHECK_GE(row, 0);
          ADAMOVE_CHECK_LT(row, op.k);
          std::copy_n(table + row * op.cols, op.cols,
                      dst + r * op.dst_stride);
        }
        break;
      }
      case OpKind::kMatMul: {
        // Graph mode always computes a matmul into a fresh zero-filled
        // node and lets MatMulNN accumulate; zero-fill + the same kernel
        // reproduces it bit for bit on every backend.
        const float* a = Src(op.a, out) + op.a_off;
        const float* b = Src(op.b, out) + op.b_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        std::fill_n(dst, op.rows * op.cols, 0.0f);
        kernels::MatMulNN(a, b, dst, op.rows, op.k, op.cols);
        break;
      }
      case OpKind::kAdd: {
        // Verbatim ops.cc Add loop, offsets standing in for the row/slice
        // copies graph mode materializes.
        const float* a = Src(op.a, out) + op.a_off;
        const float* b = Src(op.b, out) + op.b_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t r = 0; r < op.rows; ++r) {
          const int64_t ao = r * op.cols;
          const int64_t bo = op.broadcast ? 0 : ao;
          for (int64_t c = 0; c < op.cols; ++c) {
            dst[ao + c] = a[ao + c] + b[bo + c];
          }
        }
        break;
      }
      case OpKind::kMul: {
        const float* a = Src(op.a, out) + op.a_off;
        const float* b = Src(op.b, out) + op.b_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t i = 0; i < op.cols; ++i) dst[i] = a[i] * b[i];
        break;
      }
      case OpKind::kScalarMul: {
        const float* a = Src(op.a, out) + op.a_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t i = 0; i < op.cols; ++i) dst[i] = a[i] * op.scalar;
        break;
      }
      case OpKind::kScalarAdd: {
        const float* a = Src(op.a, out) + op.a_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t i = 0; i < op.cols; ++i) dst[i] = a[i] + op.scalar;
        break;
      }
      case OpKind::kTanh: {
        // Backend-independent scalar loop, replicated from ops.cc UnaryOp —
        // deliberately NOT a kernel call, so plan mode agrees with graph
        // mode under every backend.
        const float* a = Src(op.a, out) + op.a_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t i = 0; i < op.cols; ++i) dst[i] = std::tanh(a[i]);
        break;
      }
      case OpKind::kSigmoid: {
        const float* a = Src(op.a, out) + op.a_off;
        float* dst = Dst(op.dst, out) + op.dst_off;
        for (int64_t i = 0; i < op.cols; ++i) {
          dst[i] = 1.0f / (1.0f + std::exp(-a[i]));
        }
        break;
      }
      case OpKind::kAddTanh: {
        kernels::BiasTanh(Src(op.a, out) + op.a_off,
                          Src(op.b, out) + op.b_off,
                          Dst(op.dst, out) + op.dst_off, op.rows, op.cols,
                          op.broadcast);
        break;
      }
      case OpKind::kAddSigmoid: {
        kernels::BiasSigmoid(Src(op.a, out) + op.a_off,
                             Src(op.b, out) + op.b_off,
                             Dst(op.dst, out) + op.dst_off, op.rows, op.cols,
                             op.broadcast);
        break;
      }
    }
  }
}

}  // namespace adamove::nn::plan
