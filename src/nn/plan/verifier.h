#ifndef ADAMOVE_NN_PLAN_VERIFIER_H_
#define ADAMOVE_NN_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>

#include "nn/plan/plan.h"

namespace adamove::nn::plan {

/// Static plan verifier (DESIGN.md §15).
///
/// A CompiledPlan drives raw-pointer arithmetic over one shared arena with
/// no per-op bounds or lifetime checks at run time — the zero-allocation
/// contract (§14) deliberately strips them. The price is that a single bad
/// lifetime interval or arena offset is silent memory corruption that the
/// runtime suites only catch for the shapes they happen to exercise.
/// VerifyPlan is the machine check that closes that gap: a one-shot pass
/// over a finished plan that proves, for *this* plan, every invariant the
/// executor assumes. It runs once per compile (zero per-request cost);
/// core::ForwardPlanner rejects a failing plan and serves the graph walk
/// instead.
///
/// Proven invariants:
///  1. Structure: non-empty op list, exactly one kOutput value whose elems
///     match {out_rows, out_cols}, every operand id in range, no op writes
///     a weight, every kGather index slot within num_index_inputs.
///  2. SSA over elements: each element of a temp/output is written by
///     exactly one op (single definition) and every element an op reads
///     was written by an earlier op (definition before use — which also
///     makes the op order a topological order of the dataflow).
///  3. Shapes: each op's read/write extents are re-derived from its kind
///     and {rows, cols, k, offsets, stride} fields and cross-checked
///     against the traced Value::elems — no access past a value's end.
///  4. Weights: non-null data, positive size, gather tables exactly
///     {k, cols}, and the registration-ordered weight_fingerprint covers
///     every kWeight value (what revalidation compares against).
///  5. Memory plan: every temp's [arena_offset, arena_offset + elems) is
///     64-byte aligned and inside [0, arena_elems); no two temps with
///     intersecting live intervals share arena bytes; recorded intervals
///     equal the intervals re-derived from the op list (the packer's
///     input was honest); no op's input aliases the bytes of its freshly
///     defined output, within a value or across the arena.
///
/// Any violation yields a diagnostic naming the check, the offending op
/// index/kind and value id — precise enough for the mutation suite
/// (tests/nn/plan_verifier_test.cc) to pin each corruption class.

/// When plans are verified (ADAMOVE_PLAN_VERIFY, default kCompile):
///  - kOff: never (trust the tracer; the bit-identity suites still gate);
///  - kCompile: once per plan compile — zero steady-state cost;
///  - kParanoid: additionally on every cached-plan revalidation. A debug
///    mode: it puts the verifier (and its allocations) on the request
///    path, forfeiting the zero-alloc contract while hunting corruption.
enum class VerifyMode : uint8_t { kOff, kCompile, kParanoid };

/// Reads ADAMOVE_PLAN_VERIFY (``off`` | ``compile`` | ``paranoid``).
/// Unknown values fall back to kCompile — verification is the safe default.
VerifyMode PlanVerifyModeFromEnv();

/// Diagnostic name of one op kind (e.g. "MatMul"), for messages and tests.
const char* OpKindName(OpKind kind);

struct VerifyResult {
  bool ok = true;
  /// Empty when ok; otherwise "plan-verify[<check>]: <detail>" where
  /// <check> is one of: structure, output, value, weight, fingerprint,
  /// arena-bounds, arena-align, arena-overlap, shape, bounds, single-def,
  /// use-before-def, alias, interval.
  std::string message;
  explicit operator bool() const { return ok; }
};

/// Verifies `plan` against every invariant above. Pure function of the
/// plan; allocates freely (diagnostics, range bookkeeping) — callers keep
/// it off the zero-alloc request path unless in kParanoid mode.
VerifyResult VerifyPlan(const CompiledPlan& plan);

}  // namespace adamove::nn::plan

#endif  // ADAMOVE_NN_PLAN_VERIFIER_H_
