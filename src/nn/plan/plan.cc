#include "nn/plan/plan.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace adamove::nn::plan {

namespace {

// Arena offsets are rounded to the AlignedBuffer cache-line contract so
// every temp's base pointer gets the same alignment class as a standalone
// buffer head (a performance contract, not a correctness one).
constexpr int64_t kAlignElems = 16;  // 16 floats = 64 bytes

int64_t AlignUp(int64_t n) {
  return (n + kAlignElems - 1) / kAlignElems * kAlignElems;
}

bool Intersects(const Value& a, const Value& b) {
  return a.first_def <= b.last_use && b.first_def <= a.last_use;
}

}  // namespace

ValueId PlanBuilder::Weight(const Tensor& t) {
  ADAMOVE_CHECK(t.defined());
  Value v;
  v.kind = ValueKind::kWeight;
  v.elems = static_cast<int64_t>(t.data().size());
  v.weight_data = t.data().data();
  plan_.values.push_back(v);
  plan_.weight_fingerprint.push_back(v.weight_data);
  return static_cast<ValueId>(plan_.values.size() - 1);
}

ValueId PlanBuilder::Temp(int64_t elems) {
  ADAMOVE_CHECK_GT(elems, 0);
  Value v;
  v.kind = ValueKind::kTemp;
  v.elems = elems;
  plan_.values.push_back(v);
  return static_cast<ValueId>(plan_.values.size() - 1);
}

ValueId PlanBuilder::Output(int64_t rows, int64_t cols) {
  ADAMOVE_CHECK_EQ(plan_.output, kNoValue);  // one output per plan
  Value v;
  v.kind = ValueKind::kOutput;
  v.elems = rows * cols;
  plan_.values.push_back(v);
  plan_.output = static_cast<ValueId>(plan_.values.size() - 1);
  plan_.out_rows = rows;
  plan_.out_cols = cols;
  return plan_.output;
}

int32_t PlanBuilder::IndexInput() { return plan_.num_index_inputs++; }

void PlanBuilder::Push(Op op) {
  const int32_t idx = static_cast<int32_t>(plan_.ops.size());
  for (ValueId id : {op.a, op.b, op.dst}) {
    if (id == kNoValue) continue;
    ADAMOVE_CHECK_LT(static_cast<size_t>(id), plan_.values.size());
    Value& v = plan_.values[static_cast<size_t>(id)];
    if (v.first_def < 0) v.first_def = idx;
    v.last_use = idx;
  }
  ADAMOVE_CHECK(op.dst != kNoValue);
  ADAMOVE_CHECK(plan_.values[static_cast<size_t>(op.dst)].kind !=
                ValueKind::kWeight);
  plan_.ops.push_back(op);
}

void PlanBuilder::Zero(ValueId dst, int64_t dst_off, int64_t elems) {
  Op op;
  op.kind = OpKind::kZero;
  op.dst = dst;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  Push(op);
}

void PlanBuilder::Gather(int32_t index_input, ValueId table,
                         int64_t table_rows, int64_t table_cols,
                         int64_t lookups, ValueId dst, int64_t dst_col,
                         int64_t dst_stride) {
  ADAMOVE_CHECK_GE(index_input, 0);
  ADAMOVE_CHECK_LT(index_input, plan_.num_index_inputs);
  Op op;
  op.kind = OpKind::kGather;
  op.a = table;
  op.dst = dst;
  op.dst_off = dst_col;
  op.rows = lookups;
  op.cols = table_cols;
  op.k = table_rows;
  op.dst_stride = dst_stride;
  op.index_input = index_input;
  Push(op);
}

void PlanBuilder::MatMul(ValueId a, int64_t a_off, ValueId b, ValueId dst,
                         int64_t dst_off, int64_t n, int64_t k, int64_t m) {
  Op op;
  op.kind = OpKind::kMatMul;
  op.a = a;
  op.b = b;
  op.dst = dst;
  op.a_off = a_off;
  op.dst_off = dst_off;
  op.rows = n;
  op.cols = m;
  op.k = k;
  Push(op);
}

void PlanBuilder::Add(ValueId a, int64_t a_off, ValueId b, int64_t b_off,
                      ValueId dst, int64_t dst_off, int64_t rows, int64_t cols,
                      bool broadcast) {
  Op op;
  op.kind = OpKind::kAdd;
  op.a = a;
  op.b = b;
  op.dst = dst;
  op.a_off = a_off;
  op.b_off = b_off;
  op.dst_off = dst_off;
  op.rows = rows;
  op.cols = cols;
  op.broadcast = broadcast;
  Push(op);
}

void PlanBuilder::Mul(ValueId a, int64_t a_off, ValueId b, int64_t b_off,
                      ValueId dst, int64_t dst_off, int64_t elems) {
  Op op;
  op.kind = OpKind::kMul;
  op.a = a;
  op.b = b;
  op.dst = dst;
  op.a_off = a_off;
  op.b_off = b_off;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  Push(op);
}

void PlanBuilder::ScalarMul(ValueId a, int64_t a_off, ValueId dst,
                            int64_t dst_off, int64_t elems, float s) {
  Op op;
  op.kind = OpKind::kScalarMul;
  op.a = a;
  op.dst = dst;
  op.a_off = a_off;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  op.scalar = s;
  Push(op);
}

void PlanBuilder::ScalarAdd(ValueId a, int64_t a_off, ValueId dst,
                            int64_t dst_off, int64_t elems, float s) {
  Op op;
  op.kind = OpKind::kScalarAdd;
  op.a = a;
  op.dst = dst;
  op.a_off = a_off;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  op.scalar = s;
  Push(op);
}

void PlanBuilder::Tanh(ValueId a, int64_t a_off, ValueId dst, int64_t dst_off,
                       int64_t elems) {
  Op op;
  op.kind = OpKind::kTanh;
  op.a = a;
  op.dst = dst;
  op.a_off = a_off;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  Push(op);
}

void PlanBuilder::Sigmoid(ValueId a, int64_t a_off, ValueId dst,
                          int64_t dst_off, int64_t elems) {
  Op op;
  op.kind = OpKind::kSigmoid;
  op.a = a;
  op.dst = dst;
  op.a_off = a_off;
  op.dst_off = dst_off;
  op.rows = 1;
  op.cols = elems;
  Push(op);
}

void PlanBuilder::AddTanh(ValueId a, int64_t a_off, ValueId b, int64_t b_off,
                          ValueId dst, int64_t dst_off, int64_t rows,
                          int64_t cols, bool broadcast) {
  Op op;
  op.kind = OpKind::kAddTanh;
  op.a = a;
  op.b = b;
  op.dst = dst;
  op.a_off = a_off;
  op.b_off = b_off;
  op.dst_off = dst_off;
  op.rows = rows;
  op.cols = cols;
  op.broadcast = broadcast;
  Push(op);
}

void PlanBuilder::AddSigmoid(ValueId a, int64_t a_off, ValueId b,
                             int64_t b_off, ValueId dst, int64_t dst_off,
                             int64_t rows, int64_t cols, bool broadcast) {
  Op op;
  op.kind = OpKind::kAddSigmoid;
  op.a = a;
  op.b = b;
  op.dst = dst;
  op.a_off = a_off;
  op.b_off = b_off;
  op.dst_off = dst_off;
  op.rows = rows;
  op.cols = cols;
  op.broadcast = broadcast;
  Push(op);
}

CompiledPlan PlanBuilder::Finalize() && {
  ADAMOVE_CHECK(plan_.output != kNoValue);
  ADAMOVE_CHECK(!plan_.ops.empty());

  // Memory planning (the memonger-style sharing pass): each temp is live on
  // the closed op interval [first_def, last_use]; temps with disjoint
  // intervals may occupy the same arena bytes. Greedy first-fit in
  // size-descending order is the classic heuristic — big buffers claim low
  // offsets first, small step-local temps fill the gaps left between
  // lifetimes.
  std::vector<size_t> temps;
  for (size_t i = 0; i < plan_.values.size(); ++i) {
    if (plan_.values[i].kind == ValueKind::kTemp) {
      // A temp never touched by any op would have an open interval; the
      // tracers always define what they allocate.
      ADAMOVE_CHECK_GE(plan_.values[i].first_def, 0);
      temps.push_back(i);
    }
  }
  std::sort(temps.begin(), temps.end(), [this](size_t a, size_t b) {
    const Value& va = plan_.values[a];
    const Value& vb = plan_.values[b];
    if (va.elems != vb.elems) return va.elems > vb.elems;
    return a < b;  // deterministic tie-break
  });

  std::vector<size_t> placed;
  int64_t arena_end = 0;
  for (size_t id : temps) {
    Value& v = plan_.values[id];
    const int64_t need = AlignUp(v.elems);
    // Collect the occupied [start, end) ranges of lifetime-overlapping
    // placed temps, then scan for the lowest aligned gap that fits.
    std::vector<std::pair<int64_t, int64_t>> busy;
    for (size_t other : placed) {
      const Value& o = plan_.values[other];
      if (Intersects(v, o)) {
        busy.emplace_back(o.arena_offset, o.arena_offset + AlignUp(o.elems));
      }
    }
    std::sort(busy.begin(), busy.end());
    int64_t offset = 0;
    for (const auto& [start, end] : busy) {
      if (offset + need <= start) break;
      offset = std::max(offset, end);
    }
    v.arena_offset = offset;
    arena_end = std::max(arena_end, offset + need);
    placed.push_back(id);
  }
  plan_.arena_elems = arena_end;
  return std::move(plan_);
}

}  // namespace adamove::nn::plan
