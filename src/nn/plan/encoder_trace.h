#ifndef ADAMOVE_NN_PLAN_ENCODER_TRACE_H_
#define ADAMOVE_NN_PLAN_ENCODER_TRACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/plan/plan.h"
#include "nn/rnn.h"

namespace adamove::nn::plan {

/// Traces the inference forward of `seq` applied to the column-concatenated
/// lookups of `embeddings` — the trajectory-encoder shape: one int64 index
/// input per table (in order), x = concat_cols(table_i[indices_i]),
/// y = seq(x) — into a CompiledPlan for sequences of exactly `seq_len`
/// steps. The trace re-emits the graph ops of rnn.cc verbatim (same
/// broadcast flags, same fused kernels, same scalar loops), so executing
/// the plan is bit-identical to graph mode on every backend.
///
/// Returns nullptr when `seq` contains an encoder the tracer does not know
/// (e.g. the transformer) — callers keep the graph path as fallback.
std::shared_ptr<const CompiledPlan> CompileEncoderForward(
    const std::vector<const Embedding*>& embeddings,
    const SequenceEncoder& seq, int64_t seq_len);

/// The raw weight data pointers a CompileEncoderForward trace would borrow,
/// in registration order (embedding tables, then per-layer weights). Empty
/// when `seq` is untraceable. core::ForwardPlanner compares this against a
/// cached plan's weight_fingerprint: a checkpoint hot-swap that reallocated
/// tensor storage changes pointers and invalidates the plan.
std::vector<const float*> EncoderWeightPointers(
    const std::vector<const Embedding*>& embeddings,
    const SequenceEncoder& seq);

/// True when the live encoder's weight pointers equal `fingerprint` (length
/// `n`) — i.e. a plan carrying that fingerprint still borrows valid
/// storage. Allocation-free, so cached-plan revalidation stays inside the
/// zero-alloc steady state.
bool EncoderWeightsMatch(const std::vector<const Embedding*>& embeddings,
                         const SequenceEncoder& seq,
                         const float* const* fingerprint, size_t n);

}  // namespace adamove::nn::plan

#endif  // ADAMOVE_NN_PLAN_ENCODER_TRACE_H_
