#ifndef ADAMOVE_NN_AUTOGRAD_MODE_H_
#define ADAMOVE_NN_AUTOGRAD_MODE_H_

namespace adamove::nn {

/// Whether ops currently record the autograd tape (default true).
bool GradModeEnabled();

namespace internal_autograd {
void SetGradMode(bool enabled);
}  // namespace internal_autograd

/// RAII guard disabling gradient recording in its scope — inference paths
/// (Scores, PTTA prefix encoding, evaluation) wrap themselves in this to
/// skip tape construction entirely.
class NoGradGuard {
 public:
  NoGradGuard() : prev_(GradModeEnabled()) {
    internal_autograd::SetGradMode(false);
  }
  ~NoGradGuard() { internal_autograd::SetGradMode(prev_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_AUTOGRAD_MODE_H_
