#ifndef ADAMOVE_NN_SERIALIZE_H_
#define ADAMOVE_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/durable_io.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::nn {

/// Checkpoint formats (DESIGN.md §11). v2 is the only format written today:
/// a durable_io framed file (magic, then length+CRC frames) whose first
/// frame is a header {version, tensor count} and every following frame is
/// one tensor {name, shape, float payload}. Torn writes are impossible on
/// the write side (atomic replace) and detected on the read side (CRC +
/// torn-tail scan). v1 — the legacy unchecksummed dump — is still loaded,
/// read-only, through a hardened bounds-checked parser.
inline constexpr uint32_t kCheckpointMagicV1 = 0xADA30001;
inline constexpr uint32_t kCheckpointMagicV2 = 0xADA30002;

/// Writes named parameters as a v2 checkpoint via durable_io's atomic
/// commit: the destination either keeps its previous content or holds the
/// complete new checkpoint — never a torn mix.
common::IoResult SaveParametersStatus(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Loads a checkpoint into an existing parameter list: every entry in
/// `named_params` must be present in the file with a matching shape. The
/// format is sniffed from the leading magic (v2 framed, or legacy v1).
/// All reads are strictly bounds-checked — corrupt count/length/shape
/// fields fail with an error naming the offending entry instead of driving
/// allocations. No tensor is mutated unless the whole file parses and
/// every entry matches: a failed load never leaves a half-loaded model.
common::IoResult LoadParametersStatus(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Legacy v1 writer, kept only so migration tests can produce v1 files and
/// prove the v1 -> load -> v2 save path preserves the model bit-for-bit.
/// Production code writes v2 (SaveParametersStatus).
common::IoResult SaveParametersV1(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Bool-returning wrappers (log the structured error to stderr) — the
/// original API surface, preserved for existing call sites.
bool SaveParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);
bool LoadParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Convenience wrappers over Module::NamedParameters().
bool SaveModule(const std::string& path, const Module& module);
bool LoadModule(const std::string& path, const Module& module);
common::IoResult SaveModuleStatus(const std::string& path,
                                  const Module& module);
common::IoResult LoadModuleStatus(const std::string& path,
                                  const Module& module);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_SERIALIZE_H_
