#ifndef ADAMOVE_NN_SERIALIZE_H_
#define ADAMOVE_NN_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::nn {

/// Writes named parameters to a simple binary checkpoint (magic, count,
/// then per-entry name / shape / float payload). Returns false on IO error.
bool SaveParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Loads a checkpoint into an existing parameter list: every entry in
/// `named_params` must be present in the file with a matching shape.
/// Returns false on IO error, missing entry, or shape mismatch.
bool LoadParameters(
    const std::string& path,
    const std::vector<std::pair<std::string, Tensor>>& named_params);

/// Convenience wrappers over Module::NamedParameters().
bool SaveModule(const std::string& path, const Module& module);
bool LoadModule(const std::string& path, const Module& module);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_SERIALIZE_H_
