// The NEON backend: float32x4 variants of the bandwidth-bound kernels that
// can stay bit-identical to scalar (explicit vmulq+vaddq, never vfmaq, and
// per-element accumulation order preserved), scalar table entries for
// everything else. Conservative by design — ARM hosts get the contiguous
// column loads that dominate PTTA serving without this repo carrying an
// unverifiable transcendental approximation for a second ISA.

#include "nn/kernels_backend.h"

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "common/cpu_features.h"
#include "common/parallel_for.h"
#include "nn/kernels.h"

namespace adamove::nn::kernels {

namespace {

void MatMulNNNeon(const float* a, const float* b, float* c, int64_t n,
                  int64_t k, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * m;
      int64_t j = 0;
      for (; j + 8 <= m; j += 8) {
        float32x4_t acc0 = vld1q_f32(crow + j);
        float32x4_t acc1 = vld1q_f32(crow + j + 4);
        for (int64_t p = 0; p < k; ++p) {
          const float32x4_t av = vdupq_n_f32(arow[p]);
          const float* brow = b + p * m + j;
          acc0 = vaddq_f32(acc0, vmulq_f32(av, vld1q_f32(brow)));
          acc1 = vaddq_f32(acc1, vmulq_f32(av, vld1q_f32(brow + 4)));
        }
        vst1q_f32(crow + j, acc0);
        vst1q_f32(crow + j + 4, acc1);
      }
      for (; j < m; ++j) {
        float acc = crow[j];
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * b[p * m + j];
        crow[j] = acc;
      }
    }
  });
}

void VecMatColsNeon(const float* x, const float* w, float* out, int64_t n,
                    int64_t m, bool skip_zero) {
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    int64_t l = c0;
    for (; l + 4 <= c1; l += 4) {
      float32x4_t acc = vdupq_n_f32(0.0f);
      for (int64_t i = 0; i < n; ++i) {
        const float xv = x[i];
        if (skip_zero && xv == 0.0f) continue;
        acc = vaddq_f32(acc, vmulq_f32(vdupq_n_f32(xv),
                                       vld1q_f32(w + i * m + l)));
      }
      vst1q_f32(out + l, acc);
    }
    for (; l < c1; ++l) {
      float acc = 0.0f;
      const float* col = w + l;
      if (skip_zero) {
        for (int64_t i = 0; i < n; ++i) {
          const float xv = x[i];
          if (xv == 0.0f) continue;
          acc += xv * col[i * m];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) acc += x[i] * col[i * m];
      }
      out[l] = acc;
    }
  });
}

void AxpyNeon(int64_t n, float alpha, const float* x, float* y) {
  common::ParallelFor(0, n, GrainForWork(1), [=](int64_t lo, int64_t hi) {
    const float32x4_t av = vdupq_n_f32(alpha);
    int64_t i = lo;
    for (; i + 4 <= hi; i += 4) {
      vst1q_f32(y + i,
                vaddq_f32(vld1q_f32(y + i), vmulq_f32(av, vld1q_f32(x + i))));
    }
    for (; i < hi; ++i) y[i] += alpha * x[i];
  });
}

}  // namespace

const KernelTable* NeonTableOrNull() {
  if (!common::CpuHasNeon()) return nullptr;
  static const KernelTable table = [] {
    KernelTable t = ScalarTable();
    t.matmul_nn = MatMulNNNeon;
    t.vec_mat_cols = VecMatColsNeon;
    t.axpy = AxpyNeon;
    return t;
  }();
  return &table;
}

}  // namespace adamove::nn::kernels

#else  // non-ARM build

namespace adamove::nn::kernels {
const KernelTable* NeonTableOrNull() { return nullptr; }
}  // namespace adamove::nn::kernels

#endif
