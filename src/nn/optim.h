#ifndef ADAMOVE_NN_OPTIM_H_
#define ADAMOVE_NN_OPTIM_H_

#include <vector>

#include "nn/tensor.h"

namespace adamove::nn {

/// Optimizer interface over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  std::vector<Tensor> params_;
  double lr_ = 1e-2;
};

/// Plain stochastic gradient descent with optional gradient clipping.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double clip = 0.0);
  void Step() override;

 private:
  double clip_;
};

/// Adam (Kingma & Ba, 2014) — the paper's optimizer (initial lr 1e-2).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double clip = 5.0);
  void Step() override;

 private:
  double beta1_, beta2_, eps_, clip_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// The paper's LR schedule: the learning rate decays when validation
/// accuracy fails to improve, and training stops once lr <= min_lr (1e-4).
class PlateauDecay {
 public:
  PlateauDecay(double factor = 0.5, double min_lr = 1e-4, int patience = 1)
      : factor_(factor), min_lr_(min_lr), patience_(patience) {}

  /// Reports a new validation accuracy; decays `opt`'s lr after `patience`
  /// consecutive non-improving epochs. Returns true while training should
  /// continue (lr above min_lr).
  bool Update(double val_accuracy, Optimizer& opt);

  double best() const { return best_; }

 private:
  double factor_;
  double min_lr_;
  int patience_;
  int bad_epochs_ = 0;
  double best_ = -1.0;
};

/// Clips the global L2 norm of a gradient set to `max_norm` (no-op if 0).
void ClipGradNorm(std::vector<Tensor>& params, double max_norm);

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_OPTIM_H_
