#ifndef ADAMOVE_NN_TENSOR_H_
#define ADAMOVE_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace adamove::nn {

/// Storage + autograd node for a Tensor. Users interact with the `Tensor`
/// handle below; TensorImpl is exposed only because op implementations in
/// ops.cc build the autograd graph from it.
struct TensorImpl {
  std::vector<float> data;
  std::vector<float> grad;          // allocated lazily, same size as data
  std::vector<int64_t> shape;
  bool requires_grad = false;
  // Reverse-mode hook: accumulates this node's grad into its parents' grads.
  std::function<void()> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  int64_t size() const {
    int64_t n = 1;
    for (int64_t d : shape) n *= d;
    return n;
  }
  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// A dense float tensor with reverse-mode automatic differentiation on a
/// dynamic tape. Tensor is a cheap shared handle (copying shares storage).
///
/// Supported ranks: the library is written for the 1-D / 2-D shapes used in
/// sequence models; a 2-D tensor of shape {rows, cols} is row-major.
class Tensor {
 public:
  /// Default-constructed handle is empty; most APIs CHECK on defined().
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  // -- factories -------------------------------------------------------------

  /// All-zeros tensor of the given shape.
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);

  /// All-`value` tensor of the given shape.
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);

  /// Tensor initialized from an explicit value vector (size must match).
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values,
                           bool requires_grad = false);

  /// Gaussian-initialized tensor (mean 0, given stddev).
  static Tensor Randn(std::vector<int64_t> shape, common::Rng& rng,
                      float stddev = 1.0f, bool requires_grad = false);

  /// Uniform(-bound, bound)-initialized tensor.
  static Tensor RandUniform(std::vector<int64_t> shape, common::Rng& rng,
                            float bound, bool requires_grad = false);

  /// Scalar tensor of shape {1}.
  static Tensor Scalar(float value, bool requires_grad = false);

  // -- accessors ---------------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t size() const;
  /// Rows/cols of a 2-D tensor; a 1-D tensor is treated as a single row.
  int64_t rows() const;
  int64_t cols() const;
  bool requires_grad() const;

  std::vector<float>& data();
  const std::vector<float>& data() const;
  std::vector<float>& grad();
  const std::vector<float>& grad() const;

  /// Element access for 2-D tensors.
  float at(int64_t r, int64_t c) const;
  void set(int64_t r, int64_t c, float v);
  /// Element access for flat offsets.
  float item(int64_t i = 0) const;

  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  // -- autograd ---------------------------------------------------------------

  /// Runs reverse-mode autodiff from this (scalar) tensor: seeds d(this)=1
  /// and accumulates gradients into every reachable parameter's grad buffer.
  void Backward();

  /// Zeroes this tensor's grad buffer (allocating it if needed).
  void ZeroGrad();

  /// Detaches from the autograd graph: returns a tensor sharing no history
  /// (fresh copy of the data, requires_grad=false).
  Tensor Detach() const;

  /// Human-readable dump (small tensors only; for debugging/tests).
  std::string ToString() const;

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_TENSOR_H_
