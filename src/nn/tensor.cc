#include "nn/tensor.h"

#include <sstream>
#include <unordered_set>

#include "common/check.h"

namespace adamove::nn {

namespace {

std::shared_ptr<TensorImpl> MakeImpl(std::vector<int64_t> shape,
                                     bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  int64_t n = impl->size();
  ADAMOVE_CHECK_GE(n, 0);
  impl->data.assign(static_cast<size_t>(n), 0.0f);
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Tensor(MakeImpl(std::move(shape), requires_grad));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) v = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  ADAMOVE_CHECK_EQ(static_cast<int64_t>(values.size()), impl->size());
  impl->data = std::move(values);
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(std::vector<int64_t> shape, common::Rng& rng,
                     float stddev, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, common::Rng& rng,
                           float bound, bool requires_grad) {
  auto impl = MakeImpl(std::move(shape), requires_grad);
  for (auto& v : impl->data) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full({1}, value, requires_grad);
}

const std::vector<int64_t>& Tensor::shape() const {
  ADAMOVE_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::size() const {
  ADAMOVE_CHECK(defined());
  return impl_->size();
}

int64_t Tensor::rows() const {
  const auto& s = shape();
  if (s.size() == 1) return 1;
  ADAMOVE_CHECK_EQ(s.size(), 2u);
  return s[0];
}

int64_t Tensor::cols() const {
  const auto& s = shape();
  if (s.size() == 1) return s[0];
  ADAMOVE_CHECK_EQ(s.size(), 2u);
  return s[1];
}

bool Tensor::requires_grad() const {
  ADAMOVE_CHECK(defined());
  return impl_->requires_grad;
}

std::vector<float>& Tensor::data() {
  ADAMOVE_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::data() const {
  ADAMOVE_CHECK(defined());
  return impl_->data;
}

std::vector<float>& Tensor::grad() {
  ADAMOVE_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

const std::vector<float>& Tensor::grad() const {
  ADAMOVE_CHECK(defined());
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::at(int64_t r, int64_t c) const {
  ADAMOVE_CHECK_GE(r, 0);
  ADAMOVE_CHECK_LT(r, rows());
  ADAMOVE_CHECK_GE(c, 0);
  ADAMOVE_CHECK_LT(c, cols());
  return data()[static_cast<size_t>(r * cols() + c)];
}

void Tensor::set(int64_t r, int64_t c, float v) {
  ADAMOVE_CHECK_GE(r, 0);
  ADAMOVE_CHECK_LT(r, rows());
  ADAMOVE_CHECK_GE(c, 0);
  ADAMOVE_CHECK_LT(c, cols());
  data()[static_cast<size_t>(r * cols() + c)] = v;
}

float Tensor::item(int64_t i) const {
  ADAMOVE_CHECK_GE(i, 0);
  ADAMOVE_CHECK_LT(i, size());
  return data()[static_cast<size_t>(i)];
}

void Tensor::Backward() {
  ADAMOVE_CHECK(defined());
  ADAMOVE_CHECK_EQ(size(), 1);  // backward only from scalars (losses)
  // Topological order over the reachable graph.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  std::vector<std::pair<TensorImpl*, size_t>> stack;  // node, next-child index
  stack.emplace_back(impl_.get(), 0);
  visited.insert(impl_.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      TensorImpl* parent = node->parents[idx].get();
      ++idx;
      if (visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order now lists parents before children; traverse in reverse so each
  // node's grad is complete before it propagates to its parents.
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) node->backward_fn();
  }
}

void Tensor::ZeroGrad() {
  ADAMOVE_CHECK(defined());
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

Tensor Tensor::Detach() const {
  ADAMOVE_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream oss;
  oss << "Tensor(shape=[";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i > 0) oss << ",";
    oss << shape()[i];
  }
  oss << "], data=[";
  int64_t n = std::min<int64_t>(size(), 32);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) oss << ",";
    oss << data()[static_cast<size_t>(i)];
  }
  if (size() > n) oss << ",...";
  oss << "])";
  return oss.str();
}

}  // namespace adamove::nn
