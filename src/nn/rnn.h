#ifndef ADAMOVE_NN_RNN_H_
#define ADAMOVE_NN_RNN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace adamove::nn {

/// Interface for causal sequence encoders: given a {T, in} sequence of step
/// embeddings, produce a {T, H} matrix whose row t encodes the prefix
/// x[0..t]. The causal (prefix) property is what lets PTTA obtain every
/// prefix representation from a single forward pass.
class SequenceEncoder : public Module {
 public:
  virtual Tensor Forward(const Tensor& x, bool training) = 0;
  virtual int64_t hidden_size() const = 0;
};

/// Vanilla (Elman) RNN: h_t = tanh(x_t W_ih + h_{t-1} W_hh + b).
class RnnEncoder : public SequenceEncoder {
 public:
  RnnEncoder(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  int64_t hidden_size() const override { return hidden_size_; }

  /// Weight accessors for the static forward-plan compiler (src/nn/plan),
  /// which re-expresses Forward as a flat op list over these tensors.
  int64_t input_size() const { return input_size_; }
  const Tensor& w_ih() const { return w_ih_; }
  const Tensor& w_hh() const { return w_hh_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;
  Tensor w_hh_;
  Tensor bias_;
};

/// Single-layer LSTM with the standard i,f,g,o gate layout.
class LstmEncoder : public SequenceEncoder {
 public:
  LstmEncoder(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  int64_t hidden_size() const override { return hidden_size_; }

  /// Weight accessors for the static forward-plan compiler (src/nn/plan).
  int64_t input_size() const { return input_size_; }
  const Tensor& w_ih() const { return w_ih_; }
  const Tensor& w_hh() const { return w_hh_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;  // {in, 4H}
  Tensor w_hh_;  // {H, 4H}
  Tensor bias_;  // {1, 4H}
};

/// Single-layer GRU (reset/update/new-gate layout r,z,n).
class GruEncoder : public SequenceEncoder {
 public:
  GruEncoder(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  Tensor Forward(const Tensor& x, bool training) override;
  int64_t hidden_size() const override { return hidden_size_; }

  /// Weight accessors for the static forward-plan compiler (src/nn/plan).
  int64_t input_size() const { return input_size_; }
  const Tensor& w_ih() const { return w_ih_; }
  const Tensor& w_hh() const { return w_hh_; }
  const Tensor& b_ih() const { return b_ih_; }
  const Tensor& b_hh() const { return b_hh_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_ih_;  // {in, 3H}
  Tensor w_hh_;  // {H, 3H}
  Tensor b_ih_;  // {1, 3H}
  Tensor b_hh_;  // {1, 3H}
};

}  // namespace adamove::nn

#endif  // ADAMOVE_NN_RNN_H_
