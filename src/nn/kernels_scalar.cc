// The scalar reference backend: the historical portable loops, verbatim.
// This translation unit is compiled for the baseline ISA and defines the
// repo's arithmetic ground truth — every golden pin and bit-identity test
// runs against these semantics (force with ADAMOVE_KERNEL_BACKEND=scalar).

#include <algorithm>
#include <cmath>

#include "common/parallel_for.h"
#include "nn/kernels.h"
#include "nn/kernels_backend.h"

namespace adamove::nn::kernels {

namespace {

// Micro-panel of C rows that share one streamed B stripe (fits registers /
// L1 comfortably at the hidden sizes this repo uses).
constexpr int64_t kRowTile = 8;
// Width (in floats) of the B stripe kept hot across a row micro-panel.
constexpr int64_t kColTile = 128;

void MatMulNNScalar(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kRowTile) {
      const int64_t i1 = std::min(i0 + kRowTile, r1);
      for (int64_t j0 = 0; j0 < m; j0 += kColTile) {
        const int64_t j1 = std::min(j0 + kColTile, m);
        for (int64_t p = 0; p < k; ++p) {
          const float* brow = b + p * m;
          for (int64_t i = i0; i < i1; ++i) {
            const float av = a[i * k + p];
            if (av == 0.0f) continue;
            float* crow = c + i * m;
            for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void MatMulTNScalar(const float* a, const float* b, float* c, int64_t k,
                    int64_t n, int64_t m) {
  // Output rows i index the columns of A; each thread owns a contiguous
  // range of them, streaming all k rows of A and B.
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t j0 = 0; j0 < m; j0 += kColTile) {
      const int64_t j1 = std::min(j0 + kColTile, m);
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * n;
        const float* brow = b + p * m;
        for (int64_t i = r0; i < r1; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* crow = c + i * m;
          for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulNTScalar(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kRowTile) {
      const int64_t i1 = std::min(i0 + kRowTile, r1);
      // j outer / i inner reuses each B row across the whole micro-panel.
      for (int64_t j = 0; j < m; ++j) {
        const float* brow = b + j * k;
        for (int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
          c[i * m + j] += acc;
        }
      }
    }
  });
}

void VecMatColsScalar(const float* x, const float* w, float* out, int64_t n,
                      int64_t m, bool skip_zero) {
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    for (int64_t l = c0; l < c1; ++l) {
      float acc = 0.0f;
      const float* col = w + l;
      if (skip_zero) {
        for (int64_t i = 0; i < n; ++i) {
          const float xv = x[i];
          if (xv == 0.0f) continue;
          acc += xv * col[i * m];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) acc += x[i] * col[i * m];
      }
      out[l] = acc;
    }
  });
}

void VecMatColsF64Scalar(const float* x, const float* w, float* out,
                         int64_t n, int64_t m) {
  // Ascending-i double accumulation per column — the frozen-classifier
  // scoring semantics OnlineAdapter has always used.
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    for (int64_t l = c0; l < c1; ++l) {
      const float* col = w + l;
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        acc += static_cast<double>(x[i]) * col[i * m];
      }
      out[l] = static_cast<float>(acc);
    }
  });
}

void BiasTanhScalar(const float* x, const float* b, float* out, int64_t rows,
                    int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::tanh(xrow[c] + brow[c]);
      }
    }
  });
}

void BiasSigmoidScalar(const float* x, const float* b, float* out,
                       int64_t rows, int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = 1.0f / (1.0f + std::exp(-(xrow[c] + brow[c])));
      }
    }
  });
}

void AxpyScalar(int64_t n, float alpha, const float* x, float* y) {
  common::ParallelFor(0, n, GrainForWork(1), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void MaskedSoftmaxRowsScalar(const float* x, float* out, int64_t rows,
                             int64_t cols, const int64_t* valid) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t v = valid[r];
      const float* xrow = x + r * cols;
      float* orow = out + r * cols;
      float mx = xrow[0];
      for (int64_t c = 1; c < v; ++c) mx = std::max(mx, xrow[c]);
      float denom = 0.0f;
      for (int64_t c = 0; c < v; ++c) {
        const float e = std::exp(xrow[c] - mx);
        orow[c] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < v; ++c) orow[c] *= inv;
      for (int64_t c = v; c < cols; ++c) orow[c] = 0.0f;
    }
  });
}

void SoftmaxRowsScalar(const float* x, float* out, int64_t rows,
                       int64_t cols) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      float* orow = out + r * cols;
      float mx = xrow[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xrow[c]);
      float denom = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        const float e = std::exp(xrow[c] - mx);
        orow[c] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

float SoftmaxEntropyScalar(const float* logits, int64_t n) {
  // The historical PTTA importance loop: double accumulation, max-subtract,
  // p > 1e-12 guard.
  float mx = logits[0];
  for (int64_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double denom = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    denom += std::exp(static_cast<double>(logits[i] - mx));
  }
  double entropy = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double p = std::exp(static_cast<double>(logits[i] - mx)) / denom;
    if (p > 1e-12) entropy -= p * std::log(p);
  }
  return static_cast<float>(entropy);
}

double PttaCentroidDotScalar(const float* query, const float* wcol,
                             int64_t wstride, const float* patterns,
                             int64_t keep, int64_t h) {
  // Per element i: θ first, then patterns in arrival order, then one
  // multiply into the ascending-i dot — exactly the order the historical
  // centroid loops used, so this is bit-identical to materializing the
  // centroid vector first.
  double acc = 0.0;
  for (int64_t i = 0; i < h; ++i) {
    double ci = wcol[i * wstride];
    for (int64_t k = 0; k < keep; ++k) ci += patterns[k * h + i];
    acc += static_cast<double>(query[i]) * ci;
  }
  return acc;
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      MatMulNNScalar,     MatMulTNScalar,        MatMulNTScalar,
      VecMatColsScalar,   VecMatColsF64Scalar,   BiasTanhScalar,
      BiasSigmoidScalar,  AxpyScalar,            MaskedSoftmaxRowsScalar,
      SoftmaxRowsScalar,  SoftmaxEntropyScalar,  PttaCentroidDotScalar,
  };
  return table;
}

}  // namespace adamove::nn::kernels
