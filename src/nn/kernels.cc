#include "nn/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_for.h"

namespace adamove::nn::kernels {

namespace {

// Micro-panel of C rows that share one streamed B stripe (fits registers /
// L1 comfortably at the hidden sizes this repo uses).
constexpr int64_t kRowTile = 8;
// Width (in floats) of the B stripe kept hot across a row micro-panel.
constexpr int64_t kColTile = 128;

}  // namespace

int64_t GrainForWork(int64_t per_item_work) {
  constexpr int64_t kMinTaskWork = 1 << 15;
  per_item_work = std::max<int64_t>(per_item_work, 1);
  return std::max<int64_t>(1, kMinTaskWork / per_item_work);
}

void MatMulNN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kRowTile) {
      const int64_t i1 = std::min(i0 + kRowTile, r1);
      for (int64_t j0 = 0; j0 < m; j0 += kColTile) {
        const int64_t j1 = std::min(j0 + kColTile, m);
        for (int64_t p = 0; p < k; ++p) {
          const float* brow = b + p * m;
          for (int64_t i = i0; i < i1; ++i) {
            const float av = a[i * k + p];
            if (av == 0.0f) continue;
            float* crow = c + i * m;
            for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  });
}

void MatMulTN(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t m) {
  // Output rows i index the columns of A; each thread owns a contiguous
  // range of them, streaming all k rows of A and B.
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t j0 = 0; j0 < m; j0 += kColTile) {
      const int64_t j1 = std::min(j0 + kColTile, m);
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * n;
        const float* brow = b + p * m;
        for (int64_t i = r0; i < r1; ++i) {
          const float av = arow[i];
          if (av == 0.0f) continue;
          float* crow = c + i * m;
          for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
}

void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  common::ParallelFor(0, n, GrainForWork(k * m), [=](int64_t r0, int64_t r1) {
    for (int64_t i0 = r0; i0 < r1; i0 += kRowTile) {
      const int64_t i1 = std::min(i0 + kRowTile, r1);
      // j outer / i inner reuses each B row across the whole micro-panel.
      for (int64_t j = 0; j < m; ++j) {
        const float* brow = b + j * k;
        for (int64_t i = i0; i < i1; ++i) {
          const float* arow = a + i * k;
          float acc = 0.0f;
          for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
          c[i * m + j] += acc;
        }
      }
    }
  });
}

void TransposeInto(const float* a, float* out, int64_t n, int64_t m,
                   bool accumulate) {
  // Parallel over output rows (columns of a); each out element is written
  // exactly once.
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t r0, int64_t r1) {
    for (int64_t j = r0; j < r1; ++j) {
      float* orow = out + j * n;
      const float* acol = a + j;
      if (accumulate) {
        for (int64_t i = 0; i < n; ++i) orow[i] += acol[i * m];
      } else {
        for (int64_t i = 0; i < n; ++i) orow[i] = acol[i * m];
      }
    }
  });
}

void VecMatCols(const float* x, const float* w, float* out, int64_t n,
                int64_t m, bool skip_zero) {
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t c0, int64_t c1) {
    for (int64_t l = c0; l < c1; ++l) {
      float acc = 0.0f;
      const float* col = w + l;
      if (skip_zero) {
        for (int64_t i = 0; i < n; ++i) {
          const float xv = x[i];
          if (xv == 0.0f) continue;
          acc += xv * col[i * m];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) acc += x[i] * col[i * m];
      }
      out[l] = acc;
    }
  });
}

void BiasTanh(const float* x, const float* b, float* out, int64_t rows,
              int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::tanh(xrow[c] + brow[c]);
      }
    }
  });
}

void BiasSigmoid(const float* x, const float* b, float* out, int64_t rows,
                 int64_t cols, bool broadcast_bias) {
  common::ParallelFor(0, rows, GrainForWork(cols), [=](int64_t r0,
                                                       int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      const float* brow = broadcast_bias ? b : b + r * cols;
      float* orow = out + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = 1.0f / (1.0f + std::exp(-(xrow[c] + brow[c])));
      }
    }
  });
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  common::ParallelFor(0, n, GrainForWork(1), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) y[i] += alpha * x[i];
  });
}

void MaskedSoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols,
                       const int64_t* valid) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t v = valid[r];
      const float* xrow = x + r * cols;
      float* orow = out + r * cols;
      float mx = xrow[0];
      for (int64_t c = 1; c < v; ++c) mx = std::max(mx, xrow[c]);
      float denom = 0.0f;
      for (int64_t c = 0; c < v; ++c) {
        const float e = std::exp(xrow[c] - mx);
        orow[c] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < v; ++c) orow[c] *= inv;
      for (int64_t c = v; c < cols; ++c) orow[c] = 0.0f;
    }
  });
}

void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols) {
  common::ParallelFor(0, rows, GrainForWork(2 * cols), [=](int64_t r0,
                                                           int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* xrow = x + r * cols;
      float* orow = out + r * cols;
      float mx = xrow[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, xrow[c]);
      float denom = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        const float e = std::exp(xrow[c] - mx);
        orow[c] = e;
        denom += e;
      }
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

}  // namespace adamove::nn::kernels
