// The kernel dispatch layer: selects a backend table once (lazily, from
// ADAMOVE_KERNEL_BACKEND + CPU feature detection) and forwards every public
// kernel through it. TransposeInto and GrainForWork live here directly —
// pure data movement / scheduling policy, identical for all backends.

#include "nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "common/cpu_features.h"
#include "common/mutex.h"
#include "common/parallel_for.h"
#include "nn/kernels_backend.h"

namespace adamove::nn::kernels {

namespace {

// Selected table + backend tag. The table pointer is the synchronization
// point: published with release after the tag, read with acquire. nullptr
// means "not yet selected".
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_backend{static_cast<int>(Backend::kScalar)};
common::Mutex g_select_mu;

const KernelTable* SimdTableOrNull() {
  if (const KernelTable* t = Avx2TableOrNull()) return t;
  if (const KernelTable* t = NeonTableOrNull()) return t;
  return nullptr;
}

struct Selection {
  Backend backend;
  const KernelTable* table;
};

Selection Resolve(Backend requested) {
  if (requested == Backend::kSimd) {
    if (const KernelTable* simd = SimdTableOrNull()) {
      return {Backend::kSimd, simd};
    }
  }
  return {Backend::kScalar, &ScalarTable()};
}

Selection SelectFromEnv() {
  const char* env = std::getenv("ADAMOVE_KERNEL_BACKEND");
  const std::string requested = env == nullptr ? "" : env;
  if (requested == "scalar") return Resolve(Backend::kScalar);
  // "simd", unset, or anything unrecognized: the dispatcher default — the
  // best backend this host can execute.
  return Resolve(Backend::kSimd);
}

void InstallLocked(Selection s) {
  g_backend.store(static_cast<int>(s.backend), std::memory_order_relaxed);
  g_table.store(s.table, std::memory_order_release);
}

const KernelTable& Table() {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t == nullptr) {
    common::MutexLock lock(g_select_mu);
    t = g_table.load(std::memory_order_acquire);
    if (t == nullptr) {
      InstallLocked(SelectFromEnv());
      t = g_table.load(std::memory_order_acquire);
    }
  }
  return *t;
}

}  // namespace

Backend ActiveBackend() {
  Table();  // force selection on first query
  return static_cast<Backend>(g_backend.load(std::memory_order_relaxed));
}

const char* BackendName(Backend backend) {
  return backend == Backend::kScalar ? "scalar" : "simd";
}

std::string BackendDescription() {
  if (ActiveBackend() == Backend::kScalar) return "scalar";
  return std::string("simd (") + common::CpuFeatureString() + ")";
}

Backend RefreshBackendFromEnv() {
  common::MutexLock lock(g_select_mu);
  InstallLocked(SelectFromEnv());
  return static_cast<Backend>(g_backend.load(std::memory_order_relaxed));
}

void SetBackendForTest(Backend backend) {
  common::MutexLock lock(g_select_mu);
  InstallLocked(Resolve(backend));
}

int64_t GrainForWork(int64_t per_item_work) {
  constexpr int64_t kMinTaskWork = 1 << 15;
  per_item_work = std::max<int64_t>(per_item_work, 1);
  return std::max<int64_t>(1, kMinTaskWork / per_item_work);
}

void MatMulNN(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  Table().matmul_nn(a, b, c, n, k, m);
}

void MatMulTN(const float* a, const float* b, float* c, int64_t k, int64_t n,
              int64_t m) {
  Table().matmul_tn(a, b, c, k, n, m);
}

void MatMulNT(const float* a, const float* b, float* c, int64_t n, int64_t k,
              int64_t m) {
  Table().matmul_nt(a, b, c, n, k, m);
}

void TransposeInto(const float* a, float* out, int64_t n, int64_t m,
                   bool accumulate) {
  // Parallel over output rows (columns of a); each out element is written
  // exactly once.
  common::ParallelFor(0, m, GrainForWork(n), [=](int64_t r0, int64_t r1) {
    for (int64_t j = r0; j < r1; ++j) {
      float* orow = out + j * n;
      const float* acol = a + j;
      if (accumulate) {
        for (int64_t i = 0; i < n; ++i) orow[i] += acol[i * m];
      } else {
        for (int64_t i = 0; i < n; ++i) orow[i] = acol[i * m];
      }
    }
  });
}

void VecMatCols(const float* x, const float* w, float* out, int64_t n,
                int64_t m, bool skip_zero) {
  Table().vec_mat_cols(x, w, out, n, m, skip_zero);
}

void VecMatColsF64(const float* x, const float* w, float* out, int64_t n,
                   int64_t m) {
  Table().vec_mat_cols_f64(x, w, out, n, m);
}

void BiasTanh(const float* x, const float* b, float* out, int64_t rows,
              int64_t cols, bool broadcast_bias) {
  Table().bias_tanh(x, b, out, rows, cols, broadcast_bias);
}

void BiasSigmoid(const float* x, const float* b, float* out, int64_t rows,
                 int64_t cols, bool broadcast_bias) {
  Table().bias_sigmoid(x, b, out, rows, cols, broadcast_bias);
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  Table().axpy(n, alpha, x, y);
}

void MaskedSoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols,
                       const int64_t* valid) {
  Table().masked_softmax_rows(x, out, rows, cols, valid);
}

void SoftmaxRows(const float* x, float* out, int64_t rows, int64_t cols) {
  Table().softmax_rows(x, out, rows, cols);
}

float SoftmaxEntropy(const float* logits, int64_t n) {
  return Table().softmax_entropy(logits, n);
}

double PttaCentroidDot(const float* query, const float* wcol, int64_t wstride,
                       const float* patterns, int64_t keep, int64_t h) {
  return Table().ptta_centroid_dot(query, wcol, wstride, patterns, keep, h);
}

}  // namespace adamove::nn::kernels
