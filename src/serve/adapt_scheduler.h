#ifndef ADAMOVE_SERVE_ADAPT_SCHEDULER_H_
#define ADAMOVE_SERVE_ADAPT_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/annotations.h"
#include "common/mutex.h"

namespace adamove::serve {

/// How the service schedules per-user adaptation work (DESIGN.md §16).
enum class AdaptMode : uint8_t {
  /// Resolve from ADAMOVE_ADAPT_MODE at service construction (the default;
  /// the env default is `inline`, so an unconfigured service is
  /// bit-identical to the pre-scheduler path).
  kAuto,
  /// Legacy behaviour: every KB ingest and adjusted-column rebuild runs
  /// inline in the request's batch, regardless of load.
  kInline,
  /// Pressure-driven: inline while the service is calm, deferred (buffered
  /// ingests + cached-rebuild predicts) while the pressure gauge reads
  /// overload, with hysteresis between the two.
  kElastic,
  /// Every adapt-path request is deferred — the deterministic mode the
  /// parity tests pin and the bench's worst-case staleness probe.
  kDeferredAlways,
};

/// Knobs of the elastic adaptation scheduler. Each field can be overridden
/// at service construction by an ADAMOVE_ADAPT_* environment variable (see
/// Resolve); explicit env values win over the config struct so deployments
/// and the check.sh smoke can retune without a rebuild.
struct AdaptSchedulerConfig {
  AdaptMode mode = AdaptMode::kAuto;  // ADAMOVE_ADAPT_MODE: inline|elastic|deferred
  /// Pressure at or above which the gauge trips into deferred adaptation.
  double high_watermark = 0.75;  // ADAMOVE_ADAPT_HIGH
  /// Pressure at or below which it recovers to inline (hysteresis band:
  /// low < high, so the gauge cannot flap on a noisy boundary load).
  double low_watermark = 0.35;  // ADAMOVE_ADAPT_LOW
  /// EWMA smoothing factor in (0, 1]; 1 = raw instantaneous pressure.
  double ewma_alpha = 0.3;  // ADAMOVE_ADAPT_EWMA
  /// Per-user pending-delta bound: a deferred predict that finds this many
  /// buffered deltas is forced inline (drain + fresh rebuild) instead, so
  /// staleness depth is bounded by construction.
  size_t max_stale = 256;  // ADAMOVE_ADAPT_MAX_STALE
  /// Dirty users the worker drains in the background after each batch while
  /// the gauge reads calm (0 disables background draining).
  size_t drain_users_per_batch = 4;  // ADAMOVE_ADAPT_DRAIN_USERS

  /// Applies the ADAMOVE_ADAPT_* environment overrides and resolves kAuto
  /// to a concrete mode. Unknown ADAMOVE_ADAPT_MODE strings fall back to
  /// `inline` (fail safe: the legacy bit-identical path).
  AdaptSchedulerConfig Resolve() const;
};

/// The per-service load signal: a queue-pressure EWMA with hysteresis.
///
/// Each batch formation reports two saturation ratios — queue depth over
/// capacity, and the oldest queued request's wait over its deadline slack —
/// and the gauge folds max(both) into an EWMA. Crossing high_watermark trips
/// `deferred()`; it stays tripped until the EWMA falls back to
/// low_watermark, so a load hovering at the boundary cannot flap the
/// scheduler (the classic hysteresis band).
///
/// deferred() is one relaxed-ish atomic load, so the worker hot path reads
/// it for free; Update runs under a private mutex (workers race to report,
/// the EWMA just folds their reports in arrival order).
class PressureGauge {
 public:
  explicit PressureGauge(const AdaptSchedulerConfig& config)
      : config_(config) {}

  /// Folds one batch-formation observation into the gauge.
  /// `oldest_wait_us` is how long the oldest request of the batch queued;
  /// `slack_ref_us` is the wait considered fully saturated (the deadline
  /// when one is configured, else a multiple of max_wait_us).
  void Update(size_t queue_depth, size_t queue_capacity,
              double oldest_wait_us, double slack_ref_us);

  /// Whether the scheduler is currently in deferred adaptation.
  bool deferred() const { return deferred_.load(std::memory_order_acquire); }

  /// Current smoothed pressure (diagnostics; racy snapshot).
  double pressure() const {
    common::MutexLock lock(mu_);
    return ewma_;
  }

  /// Inline<->deferred transitions so far (diagnostics).
  uint64_t mode_switches() const {
    return switches_.load(std::memory_order_relaxed);
  }

 private:
  AdaptSchedulerConfig config_;
  mutable common::Mutex mu_;
  double ewma_ ADAMOVE_GUARDED_BY(mu_) = 0.0;
  std::atomic<bool> deferred_{false};
  std::atomic<uint64_t> switches_{0};
};

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_ADAPT_SCHEDULER_H_
