#ifndef ADAMOVE_SERVE_PREDICTION_SERVICE_H_
#define ADAMOVE_SERVE_PREDICTION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/latency_histogram.h"
#include "common/mutex.h"
#include "core/forward_plan.h"
#include "core/model.h"
#include "data/dataset.h"
#include "serve/adapt_scheduler.h"
#include "serve/session_store.h"

namespace adamove::serve {

/// What the service does when a request arrives and the admission queue is
/// already at capacity.
enum class OverflowPolicy : uint8_t {
  /// Submit blocks until space frees up (backpressure onto the caller).
  kBlock,
  /// Submit resolves the request immediately as shed (no scores) — the
  /// load-shedding posture for callers that prefer fast failure to queueing.
  kShed,
};

/// How one request was ultimately answered. Every submitted request ends in
/// exactly one of these states; ServiceStats accounts for all of them.
enum class RequestOutcome : uint8_t {
  /// Fully adapted prediction from fresh per-user state.
  kOk,
  /// A valid real-model prediction produced through a degradation path
  /// (base-model fallback or stale knowledge base) because something on the
  /// adapted path faulted.
  kDegraded,
  /// The per-request deadline expired before adaptation could run; the
  /// base-model fallback was served instead (scores are still valid).
  kTimedOut,
  /// Rejected at admission (queue full under OverflowPolicy::kShed, or a
  /// TrySubmit that returned false). No scores.
  kShed,
};

/// Which encode path the serving workers use (DESIGN.md §14).
enum class ServiceForwardMode : uint8_t {
  /// Defer to ADAMOVE_FORWARD at service construction (the default).
  kAuto,
  /// Force the autograd graph walk (the bit-identical reference path).
  kGraph,
  /// Force compiled static forward plans (zero-allocation steady state;
  /// per-request failures fall back to the graph walk — see
  /// ServiceStats::plan_fallbacks).
  kPlan,
};

struct ServiceConfig {
  /// Serving worker threads; each forms and executes whole micro-batches.
  int workers = 4;
  /// Flush a micro-batch at this many requests…
  int max_batch = 8;
  /// …or when the oldest queued request has waited this long, whichever
  /// comes first (the classic size-or-deadline policy).
  int64_t max_wait_us = 1000;
  /// Bounded admission queue; `overflow` picks what happens at capacity.
  size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Per-request deadline measured from enqueue (0 = none). A request whose
  /// deadline has passed when its adapt stage would start skips adaptation
  /// and is served the base-model fallback as kTimedOut.
  int64_t deadline_us = 0;
  /// Encode path selection (see ServiceForwardMode).
  ServiceForwardMode forward = ServiceForwardMode::kAuto;
  /// Elastic adaptation scheduling (DESIGN.md §16). Resolved at service
  /// construction against the ADAMOVE_ADAPT_* environment knobs; the
  /// default resolves to AdaptMode::kInline, the legacy bit-identical path.
  AdaptSchedulerConfig adapt;
};

/// One served prediction plus its per-stage wall-clock breakdown.
struct Prediction {
  std::vector<float> scores;  // empty iff outcome == kShed
  RequestOutcome outcome = RequestOutcome::kOk;
  /// RequestOutcome-adjacent deferral signal: the answer is a valid adapted
  /// prediction served from slightly stale per-user state (this request's
  /// observations were buffered, the rebuild was the user's cached one).
  /// Orthogonal to `outcome` — a stale_adapt response is still kOk: it was
  /// on time and came from the real adapted model, just not the freshest
  /// state (DESIGN.md §16's deferral rung sits between full adaptation and
  /// the frozen fallback).
  bool stale_adapt = false;
  /// Pending-delta depth the prediction was served at (0 unless
  /// stale_adapt) — bounded by the scheduler's max_stale knob.
  uint32_t stale_depth = 0;
  double queue_us = 0;   // enqueue -> picked up by a worker
  double encode_us = 0;  // encoder forward (share of the batched stage)
  double adapt_us = 0;   // PTTA observe + adapted predict
};

/// Aggregated serving statistics (merged across workers). The availability
/// ledger balances: every submitted request is either delivered with scores
/// (`completed` = ok + degraded_requests + timeouts) or shed.
struct ServiceStats {
  common::LatencyHistogram queue_us;
  common::LatencyHistogram encode_us;
  common::LatencyHistogram adapt_us;
  /// Requests delivered with valid scores (any non-shed outcome).
  uint64_t completed = 0;
  uint64_t batches = 0;
  /// Delivered through a degradation path (RequestOutcome::kDegraded).
  uint64_t degraded_requests = 0;
  /// Subset of degraded_requests: answered by the frozen base model because
  /// a warm start was in flight and the user's durable state had not been
  /// restored yet (AdaptStatus::kWarmStartPending).
  uint64_t warm_start_fallbacks = 0;
  /// Delivered past their deadline via the fallback (kTimedOut).
  uint64_t timeouts = 0;
  /// Rejected at admission (kShed) — never received scores.
  uint64_t shed_requests = 0;
  /// Plan-mode encode fallbacks: the static-plan execute stage failed for a
  /// request (armed `serve.plan_execute` fault, or an untraceable encoder
  /// family) and the graph walk answered instead. The fallback result is
  /// bit-identical to the plan's, so these requests still count as kOk —
  /// this counter is visibility into the plan→graph rung of the
  /// degradation ladder, not a degradation tally.
  uint64_t plan_fallbacks = 0;
  /// Compiled plans the static verifier rejected (DESIGN.md §15): the
  /// tracer produced a plan that failed an IR invariant (SSA, shape,
  /// lifetime, or arena proof), so it was never executed and the graph
  /// walk serves that sequence length instead. Any non-zero value is a
  /// compiler bug made visible — the requests themselves stay correct
  /// (and kOk), they just are not allocation-free.
  uint64_t plan_verify_rejects = 0;
  /// Elastic-adaptation ledger (DESIGN.md §16; all zero on an inline-mode
  /// service): requests answered from deferred (stale) state, transitions
  /// buffered instead of ingested, buffered deltas dropped by exact
  /// coalescing, pending queues drained by an inline predict, deferred
  /// requests forced inline by the max_stale bound, and users drained in
  /// the background once pressure subsided.
  uint64_t stale_adapt_requests = 0;
  uint64_t deferred_ingests = 0;
  uint64_t coalesced_ingests = 0;
  uint64_t lazy_rebuilds = 0;
  uint64_t forced_inline_rebuilds = 0;
  uint64_t background_drains = 0;
  /// Pressure-gauge inline<->deferred transitions (hysteresis crossings).
  uint64_t adapt_mode_switches = 0;
  /// Staleness depth distribution: one sample per stale_adapt request,
  /// valued at the pending-delta depth it was served at. (The histogram is
  /// log-bucketed for latencies but exact in count/sum/max, which is what
  /// the bounded-staleness gate reads.)
  common::LatencyHistogram stale_depth;
  /// Fully adapted, on-time responses.
  uint64_t ok_requests() const {
    return completed - degraded_requests - timeouts;
  }
  /// Every request the service has accounted for, in any state.
  uint64_t accounted() const { return completed + shed_requests; }
  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

/// The online request path: a bounded queue feeding worker threads that
/// flush dynamic micro-batches (on max_batch or max_wait_us). A batch runs
/// the encoder forwards back-to-back — one cache-warm pass over the model
/// weights instead of interleaving them with per-request adapter work —
/// then the PTTA adjustment for the whole batch goes through
/// SessionStore::BatchObserveAndPredictEncoded: per-user knowledge-base
/// updates still run in request order under their shard locks (per-user
/// state semantics are preserved exactly), but the adjusted-column rebuilds
/// are collected into one flat pattern arena and scored in a single
/// lock-free vectorized sweep.
///
/// Failure semantics (DESIGN.md §9): the service never crashes on an armed
/// fault and never fabricates scores. Faults on the adapted path (session
/// lookup, pattern generation, batch flush) degrade the affected requests
/// to the base model's frozen logits; encoder faults are retried a bounded
/// number of times before the local deterministic recompute; deadline
/// overruns skip adaptation and serve the fallback as kTimedOut; queue
/// overflow sheds or blocks per OverflowPolicy. Every request lands in
/// exactly one RequestOutcome and ServiceStats balances: submitted =
/// completed + shed. With no fault points armed the instrumented path is
/// bit-identical to the pre-fault-layer service.
///
/// Concurrency contract: the model is only ever *read* after construction
/// (inference forwards build no autograd tape and draw no RNG — dropout is
/// identity outside training), so any number of workers share it without
/// synchronization. All mutable state lives in the SessionStore shards.
class PredictionService {
 public:
  PredictionService(core::AdaptableModel& model, SessionStore& store,
                    const ServiceConfig& config);

  /// Drains the queue and joins workers; every submitted future resolves.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Enqueues one request. At capacity, blocks (OverflowPolicy::kBlock) or
  /// resolves the returned future immediately as kShed (kShed policy).
  /// sample.recent must be non-empty. `on_complete`, when set, runs exactly
  /// once after the request has been accounted and its promise fulfilled —
  /// in the worker for served requests, in the caller for shed ones. The
  /// shard layer hangs its drain barrier off this hook (every per-request
  /// state effect has happened by the time it fires).
  std::future<Prediction> Submit(data::Sample sample,
                                 std::function<void()> on_complete = nullptr);

  /// Non-blocking variant: false (and no enqueue) when the queue is full;
  /// the rejection is counted in ServiceStats::shed_requests. On success
  /// `*out` is assigned *before* the request becomes visible to workers, so
  /// an `on_complete` that reads the future through shared state cannot
  /// race the assignment (the open-loop LoadGen leans on this). On false,
  /// `*out` is untouched and `on_complete` never fires.
  bool TrySubmit(data::Sample sample, std::future<Prediction>* out,
                 std::function<void()> on_complete = nullptr);

  /// Frozen-only admission: the request flows through the normal queue and
  /// encode stage, but the adapt stage is skipped — the frozen base model
  /// answers and the request is accounted kDegraded. No per-user state is
  /// read or written, which is the property the shard layer leans on: a
  /// user whose state is mid-migration (or a mis-routed request under the
  /// `serve.router_lookup` fault) gets a valid real-model answer without
  /// forking state on the wrong shard group (DESIGN.md §12). `on_complete`
  /// as in Submit.
  std::future<Prediction> SubmitFrozen(
      data::Sample sample, std::function<void()> on_complete = nullptr);

  /// Stops accepting requests, drains the queue, joins workers (including
  /// an in-flight warm-start restore). Idempotent; also run by the
  /// destructor.
  void Shutdown();

  /// Begins restoring serving state from a snapshot at `path` in a
  /// background thread while the service keeps answering: users whose
  /// frames have already landed get the adapted path, everyone else is
  /// served the frozen base model as kDegraded (counted in
  /// warm_start_fallbacks) until their state arrives — the degradation
  /// ladder's warm-start rung (DESIGN.md §11). At most one warm start may
  /// be in flight.
  void WarmStartAsync(const std::string& path);

  /// Blocks until the warm start launched by WarmStartAsync finishes and
  /// returns its IoResult (restore accounting via `stats`). Ok with no
  /// warm start in flight.
  common::IoResult WaitWarmStart(SnapshotStats* stats = nullptr);

  /// Per-stage latency distributions merged across workers. Safe to call
  /// concurrently with serving (workers guard their stats with a mutex).
  ServiceStats Stats() const;

  /// Drops every cached forward plan — the checkpoint hot-swap hook: call
  /// after overwriting model weights so the next request re-traces against
  /// the new storage. (Plans are also revalidated per use against a
  /// weight-pointer fingerprint, so a swap that *reallocates* tensor
  /// storage is caught even without this call; an in-place overwrite keeps
  /// plans valid and needs neither.)
  void InvalidatePlans() { planner_.InvalidateAll(); }

  /// The encode path this service resolved at construction.
  core::ForwardMode forward_mode() const { return forward_mode_; }

  /// The adaptation schedule this service resolved at construction
  /// (ADAMOVE_ADAPT_* applied, kAuto replaced by a concrete mode).
  const AdaptSchedulerConfig& adapt_config() const { return adapt_config_; }

  /// Whether the pressure gauge currently schedules adaptation deferred
  /// (always false outside AdaptMode::kElastic unless forced).
  bool adapt_deferred() const { return gauge_.deferred(); }

  /// Current smoothed queue pressure (diagnostics).
  double adapt_pressure() const { return gauge_.pressure(); }

  const ServiceConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::Sample sample;
    std::promise<Prediction> promise;
    Clock::time_point enqueue;
    /// SubmitFrozen admission: skip the adapt stage, answer frozen.
    bool frozen_only = false;
    /// Fired exactly once, after the promise is fulfilled (may be empty).
    std::function<void()> on_complete;
  };

  std::future<Prediction> SubmitInternal(data::Sample sample,
                                         bool frozen_only,
                                         std::function<void()> on_complete);

  /// Per-worker stage histograms; merged on demand by Stats().
  struct WorkerStats {
    mutable common::Mutex mu;
    ServiceStats stats ADAMOVE_GUARDED_BY(mu);
  };

  /// Per-worker encode scratch: one PlanScratch per batch slot, so a
  /// worker's steady-state plan encodes reuse arena/vector capacity and
  /// allocate nothing (graph-mode workers never touch it).
  struct WorkerScratch {
    std::vector<core::PlanScratch> plan;
  };

  void WorkerLoop(int worker_index);
  /// `queue_depth` is the admission-queue size observed right after this
  /// batch was extracted — the gauge's backlog signal.
  void ProcessBatch(std::vector<Request>& batch, size_t queue_depth,
                    WorkerStats& stats, WorkerScratch& scratch);

  core::AdaptableModel& model_;
  SessionStore& store_;
  ServiceConfig config_;
  /// Resolved adaptation schedule (ServiceConfig::adapt + ADAMOVE_ADAPT_*).
  AdaptSchedulerConfig adapt_config_;
  /// The per-service pressure signal driving elastic scheduling.
  PressureGauge gauge_;
  /// Resolved encode path (ServiceForwardMode::kAuto → ADAMOVE_FORWARD).
  core::ForwardMode forward_mode_;
  /// Service-owned plan cache, shared by all workers (thread-safe; keyed by
  /// sequence length, revalidated against the live weights per use).
  core::ForwardPlanner planner_;

  common::Mutex mu_;
  common::CondVar not_empty_;
  common::CondVar not_full_;
  std::deque<Request> queue_ ADAMOVE_GUARDED_BY(mu_);
  bool stop_ ADAMOVE_GUARDED_BY(mu_) = false;

  /// Admission-side rejections (kShed); workers never touch this.
  std::atomic<uint64_t> shed_requests_{0};

  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::vector<std::thread> workers_;

  /// Warm-start restore thread plus its outcome (read by WaitWarmStart).
  std::thread warm_thread_;
  mutable common::Mutex warm_mu_;
  common::IoResult warm_result_ ADAMOVE_GUARDED_BY(warm_mu_);
  SnapshotStats warm_stats_ ADAMOVE_GUARDED_BY(warm_mu_);
};

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_PREDICTION_SERVICE_H_
