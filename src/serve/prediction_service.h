#ifndef ADAMOVE_SERVE_PREDICTION_SERVICE_H_
#define ADAMOVE_SERVE_PREDICTION_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/latency_histogram.h"
#include "core/model.h"
#include "data/dataset.h"
#include "serve/session_store.h"

namespace adamove::serve {

struct ServiceConfig {
  /// Serving worker threads; each forms and executes whole micro-batches.
  int workers = 4;
  /// Flush a micro-batch at this many requests…
  int max_batch = 8;
  /// …or when the oldest queued request has waited this long, whichever
  /// comes first (the classic size-or-deadline policy).
  int64_t max_wait_us = 1000;
  /// Bounded admission queue; Submit blocks when full (backpressure).
  size_t queue_capacity = 1024;
};

/// One served prediction plus its per-stage wall-clock breakdown.
struct Prediction {
  std::vector<float> scores;
  double queue_us = 0;   // enqueue -> picked up by a worker
  double encode_us = 0;  // encoder forward (share of the batched stage)
  double adapt_us = 0;   // PTTA observe + adapted predict
};

/// Aggregated serving statistics (merged across workers).
struct ServiceStats {
  common::LatencyHistogram queue_us;
  common::LatencyHistogram encode_us;
  common::LatencyHistogram adapt_us;
  uint64_t completed = 0;
  uint64_t batches = 0;
  double MeanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches);
  }
};

/// The online request path: a bounded queue feeding worker threads that
/// flush dynamic micro-batches (on max_batch or max_wait_us). A batch runs
/// the encoder forwards back-to-back — one cache-warm pass over the model
/// weights instead of interleaving them with per-request adapter work —
/// while the PTTA adjustment stays strictly per-request against the sharded
/// SessionStore, preserving per-user state semantics.
///
/// Concurrency contract: the model is only ever *read* after construction
/// (inference forwards build no autograd tape and draw no RNG — dropout is
/// identity outside training), so any number of workers share it without
/// synchronization. All mutable state lives in the SessionStore shards.
class PredictionService {
 public:
  PredictionService(core::AdaptableModel& model, SessionStore& store,
                    const ServiceConfig& config);

  /// Drains the queue and joins workers; every submitted future resolves.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Enqueues one request; blocks while the queue is at capacity.
  /// sample.recent must be non-empty.
  std::future<Prediction> Submit(data::Sample sample);

  /// Non-blocking variant: false (and no enqueue) when the queue is full.
  bool TrySubmit(data::Sample sample, std::future<Prediction>* out);

  /// Stops accepting requests, drains the queue, joins workers. Idempotent;
  /// also run by the destructor.
  void Shutdown();

  /// Per-stage latency distributions merged across workers. Safe to call
  /// concurrently with serving (workers guard their stats with a mutex).
  ServiceStats Stats() const;

  const ServiceConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    data::Sample sample;
    std::promise<Prediction> promise;
    Clock::time_point enqueue;
  };

  /// Per-worker stage histograms; merged on demand by Stats().
  struct WorkerStats {
    mutable std::mutex mu;
    ServiceStats stats;
  };

  void WorkerLoop(int worker_index);
  void ProcessBatch(std::vector<Request>& batch, WorkerStats& stats);

  core::AdaptableModel& model_;
  SessionStore& store_;
  ServiceConfig config_;

  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> queue_;
  bool stop_ = false;

  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::vector<std::thread> workers_;
};

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_PREDICTION_SERVICE_H_
