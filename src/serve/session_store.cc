#include "serve/session_store.h"

#include <functional>

#include "common/check.h"
#include "common/fault_injection.h"

namespace adamove::serve {

SessionStore::SessionStore(const SessionStoreConfig& config)
    : config_(config) {
  ADAMOVE_CHECK_GT(config.num_shards, 0);
  if (config.max_resident_users > 0) {
    per_shard_cap_ =
        (config.max_resident_users +
         static_cast<size_t>(config.num_shards) - 1) /
        static_cast<size_t>(config.num_shards);
  }
  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config.ptta, config.max_age_seconds));
  }
}

int SessionStore::ShardOf(int64_t user) const {
  return static_cast<int>(std::hash<int64_t>{}(user) % shards_.size());
}

void SessionStore::TouchLocked(Shard& shard, int64_t user) {
  auto it = shard.lru_pos.find(user);
  if (it != shard.lru_pos.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(user);
  shard.lru_pos[user] = shard.lru.begin();
  if (per_shard_cap_ > 0 && shard.lru.size() > per_shard_cap_) {
    const int64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.lru_pos.erase(victim);
    shard.adapter.Forget(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionStore::Observe(int64_t user, const std::vector<float>& pattern,
                           int64_t next_location, int64_t timestamp) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  TouchLocked(shard, user);
  shard.adapter.Observe(user, pattern, next_location, timestamp);
}

std::vector<float> SessionStore::Predict(const core::AdaptableModel& model,
                                         int64_t user,
                                         const std::vector<float>& query,
                                         int64_t query_time) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  TouchLocked(shard, user);
  return shard.adapter.Predict(model, user, query, query_time);
}

std::vector<float> SessionStore::PredictFrozen(
    const core::AdaptableModel& model, const nn::Tensor& reps) const {
  const int64_t hidden = reps.cols();
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  return core::OnlineAdapter::PredictFrozen(model, query);
}

std::vector<float> SessionStore::ObserveAndPredictEncoded(
    const core::AdaptableModel& model, const data::Sample& sample,
    const nn::Tensor& reps, AdaptStatus* status) {
  const int64_t t = reps.rows();
  const int64_t hidden = reps.cols();
  ADAMOVE_CHECK_EQ(static_cast<size_t>(t), sample.recent.size());
  if (status != nullptr) *status = AdaptStatus::kAdapted;
  // Simulated session-state loss (cache miss, shard failover): no per-user
  // state is touched; the base model still answers.
  if (common::FaultPoint("serve.session_lookup")) {
    if (status != nullptr) *status = AdaptStatus::kStateUnavailable;
    return PredictFrozen(model, reps);
  }
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(sample.user))];
  common::MutexLock lock(shard.mu);
  TouchLocked(shard, sample.user);
  // Mirrors OnlineAdapter::ObserveAndPredict exactly (the determinism test
  // depends on bit-identical arithmetic): each prefix representation is a
  // labeled pattern for the *next* point, the final row is the query.
  // A `serve.ptta_generate` fault skips ingestion of this request's
  // transitions — the prediction below then answers from stale state.
  if (!common::FaultPoint("serve.ptta_generate")) {
    for (int64_t k = 0; k + 1 < t; ++k) {
      std::vector<float> pattern(reps.data().begin() + k * hidden,
                                 reps.data().begin() + (k + 1) * hidden);
      shard.adapter.Observe(
          sample.user, pattern,
          sample.recent[static_cast<size_t>(k + 1)].location,
          sample.recent[static_cast<size_t>(k + 1)].timestamp);
    }
  } else if (status != nullptr) {
    *status = AdaptStatus::kStaleState;
  }
  std::vector<float> query(reps.data().end() - hidden, reps.data().end());
  return shard.adapter.Predict(model, sample.user, query,
                               sample.target.timestamp);
}

void SessionStore::Forget(int64_t user) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  auto it = shard.lru_pos.find(user);
  if (it == shard.lru_pos.end()) return;
  shard.lru.erase(it->second);
  shard.lru_pos.erase(it);
  shard.adapter.Forget(user);
}

size_t SessionStore::UserCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->adapter.UserCount();
  }
  return n;
}

size_t SessionStore::PatternCount(int64_t user) const {
  const Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  return shard.adapter.PatternCount(user);
}

}  // namespace adamove::serve
