#include "serve/session_store.h"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "common/aligned_buffer.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/parallel_for.h"
#include "common/qfloat.h"
#include "nn/kernels.h"

namespace adamove::serve {

SessionStore::SessionStore(const SessionStoreConfig& config)
    : config_(config) {
  ADAMOVE_CHECK_GT(config.num_shards, 0);
  if (config.max_resident_users > 0) {
    per_shard_cap_ =
        (config.max_resident_users +
         static_cast<size_t>(config.num_shards) - 1) /
        static_cast<size_t>(config.num_shards);
  }
  shards_.reserve(static_cast<size_t>(config.num_shards));
  for (int i = 0; i < config.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config.ptta, config.max_age_seconds));
  }
}

int SessionStore::ShardOf(int64_t user) const {
  return static_cast<int>(std::hash<int64_t>{}(user) % shards_.size());
}

void SessionStore::TouchLocked(Shard& shard, int64_t user) {
  auto it = shard.lru_pos.find(user);
  if (it != shard.lru_pos.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(user);
  shard.lru_pos[user] = shard.lru.begin();
  if (per_shard_cap_ > 0 && shard.lru.size() > per_shard_cap_) {
    const int64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.lru_pos.erase(victim);
    // With a cold tier the victim is dehydrated, not lost: its complete
    // state moves to the compact representation and comes back via
    // EnsureResidentLocked on the next touch.
    if (config_.cold_tier != nullptr) {
      config_.cold_tier->Accept(shard.adapter.ExportUser(victim));
      dehydrations_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.adapter.Forget(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SessionStore::EnsureResidentLocked(Shard& shard, int64_t user) {
  if (config_.cold_tier == nullptr) return true;
  if (shard.adapter.HasUser(user)) return true;
  // Simulated hydration failure (cold-tier read error): probed before the
  // tier is touched, so nothing moves and nothing is lost — the request
  // degrades to the frozen path and the user's compact state stays intact
  // for the next attempt.
  if (common::FaultPoint("core.state_hydrate")) return false;
  core::OnlineAdapter::UserSnapshot snap;
  if (config_.cold_tier->Take(user, &snap)) {
    shard.adapter.Adopt(std::move(snap));
    hydrations_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void SessionStore::Observe(int64_t user, const std::vector<float>& pattern,
                           int64_t next_location, int64_t timestamp) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  // A blocked hydration must not mutate state; ingesting into a fresh
  // knowledge base here would fork the user's history against the compact
  // copy, so the observation is dropped (the degradation the chaos tests
  // pin is "stale or frozen, never forked").
  if (!EnsureResidentLocked(shard, user)) return;
  TouchLocked(shard, user);
  if (config_.canonicalize_patterns) {
    std::vector<float> canonical(pattern);
    common::QfloatCanonicalize(&canonical);
    shard.adapter.Observe(user, canonical, next_location, timestamp);
    return;
  }
  shard.adapter.Observe(user, pattern, next_location, timestamp);
}

std::vector<float> SessionStore::Predict(const core::AdaptableModel& model,
                                         int64_t user,
                                         const std::vector<float>& query,
                                         int64_t query_time) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  // Blocked hydration: no LRU touch, no tier change — the adapter simply
  // has no state for the user and answers with frozen-equivalent scores.
  if (EnsureResidentLocked(shard, user)) TouchLocked(shard, user);
  return shard.adapter.Predict(model, user, query, query_time);
}

std::vector<float> SessionStore::PredictFrozen(
    const core::AdaptableModel& model, const nn::Tensor& reps) const {
  return PredictFrozen(model, RepsView(reps));
}

std::vector<float> SessionStore::PredictFrozen(
    const core::AdaptableModel& model, RepsView reps) const {
  std::vector<float> scores;
  core::OnlineAdapter::PredictFrozenInto(model, reps.query(), reps.cols,
                                         &scores);
  return scores;
}

std::vector<float> SessionStore::ObserveAndPredictEncoded(
    const core::AdaptableModel& model, const data::Sample& sample,
    const nn::Tensor& reps, AdaptStatus* status) {
  BatchRequest request;
  request.sample = &sample;
  request.reps = RepsView(reps);
  std::vector<AdaptStatus> statuses;
  std::vector<std::vector<float>> scores =
      BatchObserveAndPredictEncoded(model, {request}, &statuses);
  if (status != nullptr) *status = statuses[0];
  return std::move(scores[0]);
}

std::vector<std::vector<float>> SessionStore::BatchObserveAndPredictEncoded(
    const core::AdaptableModel& model,
    const std::vector<BatchRequest>& requests,
    std::vector<AdaptStatus>* statuses) {
  return BatchObserveAndPredictEncoded(model, requests, BatchAdaptOptions{},
                                       statuses, nullptr);
}

std::vector<std::vector<float>> SessionStore::BatchObserveAndPredictEncoded(
    const core::AdaptableModel& model,
    const std::vector<BatchRequest>& requests,
    const BatchAdaptOptions& options, std::vector<AdaptStatus>* statuses,
    BatchAdaptStats* adapt_stats) {
  const size_t n = requests.size();
  if (statuses != nullptr) {
    statuses->assign(n, AdaptStatus::kAdapted);
  }
  if (adapt_stats != nullptr) {
    adapt_stats->stale_depth.assign(n, 0);
  }
  // Phase 1 state per request: the rebuild jobs collected under the shard
  // lock. The query pattern is read in place from the request's RepsView
  // (last row; the view is borrowed and must outlive the call, so phase 2
  // can read it too). Every kept pattern is *copied* into the shared arena
  // at collect time, so phase 2 is immune to anything that happens to
  // adapter state afterwards — including a later request of this very batch
  // observing more patterns for the same user (sequential semantics:
  // request i's prediction must not see request i+1's ingestion).
  common::AlignedBuffer<float> arena;
  std::vector<std::vector<core::OnlineAdapter::RebuildJob>> jobs(n);
  // Ranking scratch shared across the whole batch's collect calls.
  std::vector<std::pair<float, const core::OnlineAdapter::Entry*>> fresh;

  for (size_t r = 0; r < n; ++r) {
    const data::Sample& sample = *requests[r].sample;
    const RepsView& reps = requests[r].reps;
    const int64_t t = reps.rows;
    const int64_t hidden = reps.cols;
    ADAMOVE_CHECK_EQ(static_cast<size_t>(t), sample.recent.size());

    // Simulated session-state loss (cache miss, shard failover): no
    // per-user state is touched; the base model still answers.
    if (common::FaultPoint("serve.session_lookup")) {
      if (statuses != nullptr) (*statuses)[r] = AdaptStatus::kStateUnavailable;
      continue;
    }
    // Warm-start gate: while a Restore is in flight, a user whose durable
    // state has not landed yet is served the frozen base model and writes
    // nothing — growing fresh state here would be clobbered by the user's
    // snapshot frame. Users already restored fall through to the normal
    // adapted path (progressive recovery).
    if (warming_.load(std::memory_order_acquire)) {
      Shard& gate_shard = *shards_[static_cast<size_t>(ShardOf(sample.user))];
      bool resident;
      {
        common::MutexLock lock(gate_shard.mu);
        resident = gate_shard.adapter.HasUser(sample.user);
      }
      if (!resident) {
        if (statuses != nullptr) {
          (*statuses)[r] = AdaptStatus::kWarmStartPending;
        }
        continue;
      }
    }
    Shard& shard = *shards_[static_cast<size_t>(ShardOf(sample.user))];
    common::MutexLock lock(shard.mu);
    // Cold-tier hydration failure: same degraded outcome as a
    // session-lookup fault — the base model answers, and by the hydrate
    // contract no state (hot, cold, or LRU) has been touched.
    if (!EnsureResidentLocked(shard, sample.user)) {
      if (statuses != nullptr) (*statuses)[r] = AdaptStatus::kStateUnavailable;
      continue;
    }
    TouchLocked(shard, sample.user);
    // A `serve.ptta_generate` fault drops this request's transitions in
    // every exec mode (nothing is ingested *or* buffered) — fault precedence
    // over scheduling, so deferral never smuggles a faulted request's
    // patterns in later.
    const bool generate_fault = common::FaultPoint("serve.ptta_generate");
    if (generate_fault && statuses != nullptr) {
      (*statuses)[r] = AdaptStatus::kStaleState;
    }
    // Scheduler decision: a deferred-mode request stays deferred only while
    // its pending depth is under the max_stale bound; at the bound it is
    // forced inline (drain + fresh rebuild), so staleness is bounded by
    // construction.
    bool defer = options.mode == AdaptExecMode::kDeferred;
    if (defer && shard.adapter.PendingCount(sample.user) >= options.max_stale) {
      defer = false;
      if (adapt_stats != nullptr) adapt_stats->forced_inline += 1;
    }

    if (defer) {
      if (!generate_fault) {
        uint64_t coalesced = 0;
        for (int64_t k = 0; k + 1 < t; ++k) {
          std::vector<float> pattern(reps.data + k * hidden,
                                     reps.data + (k + 1) * hidden);
          if (config_.canonicalize_patterns) {
            common::QfloatCanonicalize(&pattern);
          }
          coalesced += shard.adapter.ObserveDeferred(
              sample.user, std::move(pattern),
              sample.recent[static_cast<size_t>(k + 1)].location,
              sample.recent[static_cast<size_t>(k + 1)].timestamp);
        }
        if (adapt_stats != nullptr) {
          adapt_stats->deferred_ingests +=
              t > 1 ? static_cast<uint64_t>(t - 1) : 0;
          adapt_stats->coalesced_ingests += coalesced;
        }
        if (statuses != nullptr) (*statuses)[r] = AdaptStatus::kStaleAdapt;
      }
      // Predict from the last cached rebuild — no ranking, one block copy.
      // An empty cache contributes zero jobs: the frozen scores stand,
      // through the same phase-2 sweep.
      shard.adapter.CollectCachedJobs(sample.user, &arena, &jobs[r]);
      if (adapt_stats != nullptr) {
        adapt_stats->stale_depth[r] = static_cast<uint32_t>(
            std::min<size_t>(shard.adapter.PendingCount(sample.user),
                             UINT32_MAX));
      }
      continue;
    }

    // Inline path. Any pending deltas from an earlier deferral drain first
    // (the lazy rebuild), so an inline predict always answers from fully
    // caught-up state; on a store that never deferred this is a no-op map
    // probe and the path below is byte-for-byte the historical one.
    if (shard.adapter.PendingCount(sample.user) > 0) {
      shard.adapter.DrainPending(sample.user);
      if (adapt_stats != nullptr) adapt_stats->lazy_rebuilds += 1;
    }
    // Mirrors OnlineAdapter::ObserveAndPredict exactly (the determinism
    // test depends on bit-identical arithmetic): each prefix representation
    // is a labeled pattern for the *next* point, the final row is the
    // query. A `serve.ptta_generate` fault skips ingestion of this
    // request's transitions — the prediction then answers from stale state.
    if (!generate_fault) {
      for (int64_t k = 0; k + 1 < t; ++k) {
        std::vector<float> pattern(reps.data + k * hidden,
                                   reps.data + (k + 1) * hidden);
        // Canonical ingest projects the stored pattern onto the q8 grid
        // (the query stays untouched — it is never stored), making every
        // later dehydrate→rehydrate cycle of this entry bit-exact.
        if (config_.canonicalize_patterns) {
          common::QfloatCanonicalize(&pattern);
        }
        shard.adapter.Observe(
            sample.user, pattern,
            sample.recent[static_cast<size_t>(k + 1)].location,
            sample.recent[static_cast<size_t>(k + 1)].timestamp);
      }
    }
    shard.adapter.CollectRebuildJobs(sample.user, reps.query(), hidden,
                                     sample.target.timestamp, &arena,
                                     &jobs[r], &fresh);
    // In an elastic service the fresh rebuild doubles as the user's stale
    // cache for later deferred predicts. Pure kInline skips this entirely,
    // so the legacy path keeps its exact memory behaviour.
    if (options.mode != AdaptExecMode::kInline) {
      shard.adapter.StoreRebuildCache(sample.user, jobs[r], arena);
    }
  }

  // Phase 2: one contiguous scoring sweep, outside every shard lock. Each
  // request is frozen column scores + its collected adjusted columns + bias
  // — Predict's exact arithmetic, batched. Parallel across requests; the
  // per-request kernels run serial inside ScoreCollectedJobsInto
  // (value-neutral — DESIGN.md §13 — and allocation-free).
  const int64_t hidden = model.classifier().in_features();
  const int64_t num_loc = model.classifier().out_features();
  std::vector<std::vector<float>> scores(n);
  common::ParallelFor(
      0, static_cast<int64_t>(n),
      nn::kernels::GrainForWork(hidden * num_loc),
      [&](int64_t r0, int64_t r1) {
        for (int64_t r = r0; r < r1; ++r) {
          core::OnlineAdapter::ScoreCollectedJobsInto(
              model, requests[static_cast<size_t>(r)].reps.query(), hidden,
              jobs[static_cast<size_t>(r)], arena,
              &scores[static_cast<size_t>(r)]);
        }
      });
  return scores;
}

size_t SessionStore::DrainDirtyUsers(size_t max_users) {
  size_t drained = 0;
  for (const auto& shard : shards_) {
    if (max_users > 0 && drained >= max_users) break;
    common::MutexLock lock(shard->mu);
    drained += shard->adapter.DrainSomePending(
        max_users == 0 ? 0 : max_users - drained);
  }
  return drained;
}

size_t SessionStore::DirtyUserCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->adapter.DirtyUserCount();
  }
  return n;
}

size_t SessionStore::PendingDeltaCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->adapter.PendingTotal();
  }
  return n;
}

void SessionStore::Forget(int64_t user) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  // The cold tier may hold a dehydrated copy even when the hot tier does
  // not — drop both so "forget" really means gone.
  if (config_.cold_tier != nullptr) {
    core::OnlineAdapter::UserSnapshot discard;
    config_.cold_tier->Take(user, &discard);
  }
  auto it = shard.lru_pos.find(user);
  if (it == shard.lru_pos.end()) return;
  shard.lru.erase(it->second);
  shard.lru_pos.erase(it);
  shard.adapter.Forget(user);
}

bool SessionStore::ExtractUser(int64_t user,
                               core::OnlineAdapter::UserSnapshot* out) {
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  if (shard.adapter.HasUser(user)) {
    *out = shard.adapter.ExportUser(user);
    auto it = shard.lru_pos.find(user);
    if (it != shard.lru_pos.end()) {
      shard.lru.erase(it->second);
      shard.lru_pos.erase(it);
    }
    shard.adapter.Forget(user);
    return true;
  }
  return config_.cold_tier != nullptr && config_.cold_tier->Take(user, out);
}

void SessionStore::InjectUser(core::OnlineAdapter::UserSnapshot&& snap) {
  // A user whose only state is a pending buffer is still a user — dropping
  // the snapshot would lose deferred observations across a migration.
  if (snap.locations.empty() && snap.pending.empty()) return;
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(snap.user))];
  common::MutexLock lock(shard.mu);
  TouchLocked(shard, snap.user);
  shard.adapter.Adopt(std::move(snap));
}

bool SessionStore::EvictToCold(int64_t user) {
  if (config_.cold_tier == nullptr) return false;
  Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  if (!shard.adapter.HasUser(user)) return false;
  config_.cold_tier->Accept(shard.adapter.ExportUser(user));
  dehydrations_.fetch_add(1, std::memory_order_relaxed);
  auto it = shard.lru_pos.find(user);
  if (it != shard.lru_pos.end()) {
    shard.lru.erase(it->second);
    shard.lru_pos.erase(it);
  }
  shard.adapter.Forget(user);
  return true;
}

std::vector<int64_t> SessionStore::ResidentUsers() const {
  std::vector<int64_t> users;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    const std::vector<int64_t> shard_users = shard->adapter.Users();
    users.insert(users.end(), shard_users.begin(), shard_users.end());
  }
  std::sort(users.begin(), users.end());
  return users;
}

size_t SessionStore::ResidentBytes() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    bytes += shard->adapter.ResidentBytes();
  }
  return bytes;
}

size_t SessionStore::UserCount() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->adapter.UserCount();
  }
  return n;
}

size_t SessionStore::PatternCount(int64_t user) const {
  const Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
  common::MutexLock lock(shard.mu);
  return shard.adapter.PatternCount(user);
}

common::IoResult SessionStore::Snapshot(const std::string& path,
                                        SnapshotStats* stats) const {
  // Export one shard at a time under its own mutex: serving on every other
  // shard proceeds untouched, and each user frame is a state the shard
  // really held at some instant of this pass (crash-consistent per user).
  std::vector<std::string> frames;
  size_t users = 0;
  size_t patterns = 0;
  uint32_t pattern_dim = 0;
  for (const auto& shard : shards_) {
    std::vector<core::OnlineAdapter::UserSnapshot> exported;
    {
      common::MutexLock lock(shard->mu);
      for (int64_t user : shard->adapter.Users()) {
        exported.push_back(shard->adapter.ExportUser(user));
      }
    }
    // Encode outside the lock — byte work doesn't need the shard.
    for (const auto& snap : exported) {
      if (snap.locations.empty() && snap.pending.empty()) continue;
      std::string frame;
      core::OnlineAdapter::EncodeUser(snap, &frame);
      frames.push_back(std::move(frame));
      ++users;
      for (const auto& [location, entries] : snap.locations) {
        patterns += entries.size();
        if (pattern_dim == 0 && !entries.empty()) {
          pattern_dim =
              static_cast<uint32_t>(entries.front().pattern.size());
        }
      }
      // A dirty user's buffered deltas persist too (frozen mid-deferral is
      // still durable); they can carry the dimension when the user holds
      // nothing else yet.
      if (pattern_dim == 0 && !snap.pending.empty()) {
        pattern_dim =
            static_cast<uint32_t>(snap.pending.front().pattern.size());
      }
    }
  }
  common::FramedFileWriter writer(kSnapshotMagic);
  std::string header;
  common::AppendU32(&header, 1);  // snapshot format version
  common::AppendU32(&header, pattern_dim);
  common::AppendU64(&header, static_cast<uint64_t>(users));
  writer.AddFrame(header);
  for (const std::string& frame : frames) writer.AddFrame(frame);
  if (stats != nullptr) {
    stats->users = users;
    stats->patterns = patterns;
    stats->bytes = writer.byte_size();
    stats->torn_tail = false;
  }
  return writer.Commit(path);
}

common::IoResult SessionStore::Restore(const std::string& path,
                                       SnapshotStats* stats) {
  common::FramedRead framed;
  common::IoResult read =
      common::ReadFramedFile(path, kSnapshotMagic, &framed);
  // On a CRC/decode error mid-file the verified prefix in framed.frames is
  // still imported below — recovery salvages every intact user — and the
  // structured error is returned so the caller knows the file was cut short
  // by corruption rather than a torn tail.
  if (framed.frames.empty()) {
    if (stats != nullptr) *stats = SnapshotStats{};
    if (!read) return read;
    return common::IoResult::Fail(path + ": snapshot has no header frame");
  }
  common::WireReader header(framed.frames[0]);
  uint32_t version = 0;
  uint32_t pattern_dim = 0;
  uint64_t declared_users = 0;
  if (!header.ReadU32(&version) || !header.ReadU32(&pattern_dim) ||
      !header.ReadU64(&declared_users) || !header.AtEnd()) {
    if (stats != nullptr) *stats = SnapshotStats{};
    return common::IoResult::Fail(path + ": malformed snapshot header");
  }
  if (version != 1) {
    if (stats != nullptr) *stats = SnapshotStats{};
    return common::IoResult::Fail(
        path + ": unsupported snapshot version " + std::to_string(version));
  }
  size_t users = 0;
  size_t patterns = 0;
  uint64_t bytes = 0;
  for (size_t f = 1; f < framed.frames.size(); ++f) {
    core::OnlineAdapter::UserSnapshot snap;
    const common::IoResult decoded =
        core::OnlineAdapter::DecodeUser(framed.frames[f], &snap);
    if (!decoded) {
      if (stats != nullptr) {
        stats->users = users;
        stats->patterns = patterns;
        stats->bytes = bytes;
        stats->torn_tail = framed.torn_tail;
      }
      return common::IoResult::Fail(path + ": frame " + std::to_string(f) +
                                    ": " + decoded.error);
    }
    // Every pattern must match the header's dimension: a mixed-dim user
    // would abort in the cosine kernel at query time, so reject it at the
    // door instead (prior imports stand — each user is all-or-nothing).
    size_t user_patterns = 0;
    bool dim_ok = true;
    for (const auto& [location, entries] : snap.locations) {
      for (const auto& entry : entries) {
        if (entry.pattern.size() != pattern_dim) dim_ok = false;
        ++user_patterns;
      }
    }
    for (const auto& delta : snap.pending) {
      if (delta.pattern.size() != pattern_dim) dim_ok = false;
    }
    if (!dim_ok) {
      if (stats != nullptr) {
        stats->users = users;
        stats->patterns = patterns;
        stats->bytes = bytes;
        stats->torn_tail = framed.torn_tail;
      }
      return common::IoResult::Fail(
          path + ": frame " + std::to_string(f) + ": user " +
          std::to_string(snap.user) + " has a pattern whose dimension " +
          "does not match the snapshot header");
    }
    if (snap.locations.empty() && snap.pending.empty()) {
      continue;  // nothing to install
    }
    const int64_t user = snap.user;
    bytes += framed.frames[f].size();
    patterns += user_patterns;
    ++users;
    // Lock only this user's shard: restore runs frame by frame while the
    // other shards keep serving. TouchLocked keeps the residency cap honest
    // even when the snapshot holds more users than the cap allows.
    Shard& shard = *shards_[static_cast<size_t>(ShardOf(user))];
    common::MutexLock lock(shard.mu);
    TouchLocked(shard, user);
    shard.adapter.Adopt(std::move(snap));
  }
  if (stats != nullptr) {
    stats->users = users;
    stats->patterns = patterns;
    stats->bytes = bytes;
    stats->torn_tail = framed.torn_tail;
  }
  // Only a file that read back clean end-to-end owes us the declared user
  // count; a torn or corrupt file already reports its own condition.
  if (read && !framed.torn_tail &&
      framed.frames.size() - 1 != declared_users) {
    return common::IoResult::Fail(
        path + ": header declares " + std::to_string(declared_users) +
        " users but the file holds " +
        std::to_string(framed.frames.size() - 1) + " user frames");
  }
  return read;
}

}  // namespace adamove::serve
