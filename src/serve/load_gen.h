#ifndef ADAMOVE_SERVE_LOAD_GEN_H_
#define ADAMOVE_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "common/latency_histogram.h"
#include "data/dataset.h"
#include "serve/prediction_service.h"

namespace adamove::serve {

struct LoadGenConfig {
  /// Offered load across all clients; 0 = closed-loop maximum speed (each
  /// client fires its next request the moment the previous one resolves).
  double target_qps = 0.0;
  /// Concurrent closed-loop client threads. Client i replays stream
  /// positions i, i + clients, i + 2·clients, … so one user's check-ins
  /// stay in order whenever the stream is per-user ordered and clients = 1.
  int clients = 8;
  /// Stop after this many requests (0 = one full pass over the stream).
  size_t max_requests = 0;
};

struct LoadGenResult {
  /// Requests delivered with scores (outcome ok / degraded / timed out).
  size_t completed = 0;
  /// Per-outcome tallies of the delivered + rejected requests; completed +
  /// shed equals the number of submissions.
  size_t degraded = 0;
  size_t timed_out = 0;
  size_t shed = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// End-to-end (submit -> future resolved) latency per delivered request
  /// (shed responses resolve immediately and are excluded).
  common::LatencyHistogram e2e_us;
};

/// Replays a check-in stream against a PredictionService and measures
/// throughput + tail latency from the caller's side. Closed-loop: a client
/// never has more than one request in flight, so offered concurrency equals
/// `clients` and the service's queue cannot grow without bound. With
/// target_qps > 0 each client paces itself on a steady_clock schedule
/// (sleep-until-send), i.e. open-loop arrival times capped by closed-loop
/// concurrency.
LoadGenResult RunLoadGen(PredictionService& service,
                         const std::vector<data::Sample>& stream,
                         const LoadGenConfig& config);

/// Builds the serving replay stream from a dataset split: samples ordered
/// by target timestamp (global arrival order), repeated in whole passes
/// until at least `min_requests` entries exist (0 = a single pass).
std::vector<data::Sample> BuildReplayStream(
    const std::vector<data::Sample>& samples, size_t min_requests);

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_LOAD_GEN_H_
