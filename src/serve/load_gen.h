#ifndef ADAMOVE_SERVE_LOAD_GEN_H_
#define ADAMOVE_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <vector>

#include "common/latency_histogram.h"
#include "data/dataset.h"
#include "serve/prediction_service.h"

namespace adamove::serve {

struct LoadGenConfig {
  /// Offered load across all clients; 0 = closed-loop maximum speed (each
  /// client fires its next request the moment the previous one resolves).
  double target_qps = 0.0;
  /// Concurrent closed-loop client threads. Client i replays stream
  /// positions i, i + clients, i + 2·clients, … so one user's check-ins
  /// stay in order whenever the stream is per-user ordered and clients = 1.
  int clients = 8;
  /// Stop after this many requests (0 = one full pass over the stream).
  size_t max_requests = 0;
  /// True open-loop arrivals (requires target_qps > 0): a client fires each
  /// request at its scheduled instant whether or not earlier ones resolved,
  /// so offered load is genuinely uncapped by service throughput — the only
  /// bound is `max_in_flight`. This is what makes overload reachable: a
  /// closed loop self-throttles to the service's capacity by construction.
  bool open_loop = false;
  /// Open loop only: arrivals finding this many requests outstanding are
  /// dropped at the source and counted exactly (dropped_arrivals), so
  /// memory stays bounded without hiding the overload.
  size_t max_in_flight = 4096;
  /// Score each delivered prediction against its sample's true next
  /// location (hit@1) — the accuracy axis of the accuracy-vs-QPS frontier.
  bool track_hits = false;
};

struct LoadGenResult {
  /// Scheduled arrival attempts. Balance (both loop shapes):
  /// arrivals == completed + shed + dropped_arrivals.
  size_t arrivals = 0;
  /// Requests delivered with scores (outcome ok / degraded / timed out).
  size_t completed = 0;
  /// Per-outcome tallies of the delivered + rejected requests.
  size_t degraded = 0;
  size_t timed_out = 0;
  /// Rejected by the service (queue full): shed at admission.
  size_t shed = 0;
  /// Open loop only: dropped at the generator's own in-flight limit —
  /// never submitted, never seen by the service.
  size_t dropped_arrivals = 0;
  /// Delivered from deferred (stale) adapter state (Prediction::stale_adapt).
  size_t stale_adapt = 0;
  /// Maximum staleness depth observed across delivered requests.
  uint32_t max_stale_depth = 0;
  /// hit@1 accounting (track_hits only): delivered requests whose argmax
  /// score matched the true next location, over those scored.
  size_t hits = 0;
  size_t scored = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// End-to-end (submit -> future resolved) latency per delivered request
  /// (shed responses resolve immediately and are excluded).
  common::LatencyHistogram e2e_us;
};

/// Replays a check-in stream against a PredictionService and measures
/// throughput + tail latency from the caller's side.
///
/// Closed loop (default): a client never has more than one request in
/// flight, so offered concurrency equals `clients` and the service's queue
/// cannot grow without bound. With target_qps > 0 each client paces itself
/// on a steady_clock schedule (sleep-until-send), i.e. open-loop arrival
/// *times* capped by closed-loop concurrency.
///
/// Open loop (config.open_loop, target_qps > 0): arrivals fire on schedule
/// regardless of completions (TrySubmit + completion callback), bounded
/// only by max_in_flight, with exact shed / drop accounting — the overload
/// harness for the elastic-adaptation bench and chaos tests.
LoadGenResult RunLoadGen(PredictionService& service,
                         const std::vector<data::Sample>& stream,
                         const LoadGenConfig& config);

/// Builds the serving replay stream from a dataset split: samples ordered
/// by target timestamp (global arrival order), repeated in whole passes
/// until at least `min_requests` entries exist (0 = a single pass).
std::vector<data::Sample> BuildReplayStream(
    const std::vector<data::Sample>& samples, size_t min_requests);

}  // namespace adamove::serve

#endif  // ADAMOVE_SERVE_LOAD_GEN_H_
